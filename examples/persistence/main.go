// Persistence: a pointer-rich data structure (a binary search tree) built
// by one process survives that process's exit — and, via checkpoint and
// restore, a whole machine reboot — and is traversed afterwards through
// the very same pointers: no serialization, no pointer swizzling (§2.2,
// §5.4, §7). The segment lives in the machine's persistent NVM tier, and
// the heap that owns the nodes is an mspace whose state is itself inside
// the segment.
package main

import (
	"fmt"
	"log"

	"spacejmp"
	"spacejmp/internal/mem"
	"spacejmp/internal/mspace"
)

const (
	segBase = spacejmp.GlobalBase
	segSize = 16 << 20
	// Node layout: [key][left][right], three 8-byte words.
	nodeSize = 24
)

func main() {
	cfg := spacejmp.DefaultMachine()
	cfg.Mem.NVMSuperblock = 1 << 20 // reserve a persistent superblock
	machine := spacejmp.NewMachine(cfg)
	sys := spacejmp.NewDragonFlyOn(machine)
	sys.SetSegmentTier(mem.TierNVM) // segments go to persistent memory

	rootSlot := buildTree(sys, []uint64{50, 30, 70, 20, 40, 60, 80, 65, 75})
	fmt.Println("--- searching in the same boot ---")
	searchTree(sys, rootSlot, []uint64{65, 33, 80})

	// Checkpoint the VAS registry to NVM, power-cycle the machine (all
	// DRAM dies), boot a fresh OS instance, and restore (§7).
	if err := sys.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	machine.PM.PowerCycle()
	sys2 := spacejmp.NewDragonFlyOn(machine)
	if err := sys2.Restore(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- searching after a machine reboot ---")
	searchTree(sys2, rootSlot, []uint64{65, 33, 80})
}

// buildTree runs as the first process: create the VAS, format a heap in
// the segment, insert keys, park the root pointer, and exit.
func buildTree(sys *spacejmp.System, keys []uint64) spacejmp.VirtAddr {
	proc, err := sys.NewProcess(spacejmp.Creds{UID: 1, GID: 1})
	if err != nil {
		log.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	vid, err := th.VASCreate("bst", 0o666)
	if err != nil {
		log.Fatal(err)
	}
	sid, err := th.SegAlloc("bst.heap", segBase, segSize, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, spacejmp.PermRW); err != nil {
		log.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		log.Fatal(err)
	}
	alloc := mspace.NewVASAllocator(th)
	heap, err := alloc.InitHeap(h, segBase, segSize)
	if err != nil {
		log.Fatal(err)
	}
	// The first allocation is the root slot; later processes re-derive it
	// by re-opening the heap (deterministic first-alloc address).
	rootSlot, err := heap.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range keys {
		insert(th, heap, rootSlot, k)
	}
	fmt.Printf("builder: inserted %d keys, root slot at %v\n", len(keys), rootSlot)
	if err := th.VASSwitch(spacejmp.PrimaryHandle); err != nil {
		log.Fatal(err)
	}
	proc.Exit()
	fmt.Println("builder process exited; the VAS and its heap live on")
	return rootSlot
}

func insert(th *spacejmp.Thread, heap *mspace.Space, slot spacejmp.VirtAddr, key uint64) {
	cur, _ := th.Load64(slot)
	if cur == 0 {
		node, err := heap.Alloc(nodeSize)
		if err != nil {
			log.Fatal(err)
		}
		th.Store64(node, key)
		th.Store64(node+8, 0)
		th.Store64(node+16, 0)
		th.Store64(slot, uint64(node))
		return
	}
	node := spacejmp.VirtAddr(cur)
	k, _ := th.Load64(node)
	if key < k {
		insert(th, heap, node+8, key)
	} else {
		insert(th, heap, node+16, key)
	}
}

// searchTree runs as a later process: find the VAS by name, switch in, and
// chase the raw pointers left by the builder.
func searchTree(sys *spacejmp.System, rootSlot spacejmp.VirtAddr, probes []uint64) {
	proc, err := sys.NewProcess(spacejmp.Creds{UID: 2, GID: 1})
	if err != nil {
		log.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	vid, err := th.VASFind("bst")
	if err != nil {
		log.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		log.Fatal(err)
	}
	// Re-open the heap (its allocator state is inside the segment too, so
	// this process could keep inserting).
	if _, err := mspace.Open(th, segBase); err != nil {
		log.Fatal(err)
	}
	for _, probe := range probes {
		depth := 0
		cur, _ := th.Load64(rootSlot)
		found := false
		for cur != 0 {
			node := spacejmp.VirtAddr(cur)
			k, _ := th.Load64(node)
			if k == probe {
				found = true
				break
			}
			depth++
			if probe < k {
				cur, _ = th.Load64(node + 8)
			} else {
				cur, _ = th.Load64(node + 16)
			}
		}
		fmt.Printf("searcher: key %d found=%v (depth %d)\n", probe, found, depth)
	}
}
