// Quickstart: the paper's Figure 4 workflow on the public API — create a
// virtual address space and a segment, attach the segment, then find the
// VAS from a "different" process, switch into it, and use the memory.
package main

import (
	"fmt"
	"log"

	"spacejmp"
)

func main() {
	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())

	// Producer process: create VAS "v0" with a 64 MiB segment at a chosen
	// virtual address (the paper uses 1<<35 bytes; sizes are configurable).
	producer, err := sys.NewProcess(spacejmp.Creds{UID: 1000, GID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	pt, err := producer.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	va := spacejmp.GlobalBase
	vid, err := pt.VASCreate("v0", 0o660)
	if err != nil {
		log.Fatal(err)
	}
	sid, err := pt.SegAlloc("s0", va, 64<<20, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	if err := pt.SegAttachVAS(vid, sid, spacejmp.PermRW); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created vas %d with segment %d at %v\n", vid, sid, va)

	// Consumer process (same group): vas_find, vas_attach, vas_switch.
	consumer, err := sys.NewProcess(spacejmp.Creds{UID: 1001, GID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	ct, err := consumer.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	found, err := ct.VASFind("v0")
	if err != nil {
		log.Fatal(err)
	}
	vh, err := ct.VASAttach(found)
	if err != nil {
		log.Fatal(err)
	}
	if err := ct.VASSwitch(vh); err != nil {
		log.Fatal(err)
	}
	// t = malloc(...); *t = 42 — here a direct store into the segment.
	if err := ct.Store64(va, 42); err != nil {
		log.Fatal(err)
	}
	v, err := ct.Load64(va)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inside vas %q: *%v = %d\n", "v0", va, v)

	// Back in the consumer's own address space the segment is absent.
	if err := ct.VASSwitch(spacejmp.PrimaryHandle); err != nil {
		log.Fatal(err)
	}
	if _, err := ct.Load64(va); err != nil {
		fmt.Printf("back in the primary space, %v is unmapped (as it should be)\n", va)
	}
	fmt.Printf("switch cost: the thread spent %d simulated cycles total\n", ct.Core.Cycles())
}
