// Tenants: multi-tenant serving over per-tenant VAS views — the §4.2
// protection story (lockable segments guarded by ACLs on named VASes)
// turned into a serving feature. Each tenant AUTHs into its own view of
// the shared store; the registry holds a capability set per tenant, minted
// from the root CSpace, and every command's keys are checked against it at
// admission. A tenant addressing a peer's view gets a typed -NOPERM — never
// a silent miss — until the owner grants read access, and a revocation
// closes the window again on live connections. Quotas (keys here) reject
// over-budget writes with -QUOTA before they touch a shard.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"os"

	"spacejmp/internal/caps"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
	"spacejmp/internal/tenant"
)

func main() {
	m := hw.NewMachine(hw.M1())
	sys := kernel.New(m)
	sys.EnableStats(1024)

	// Two tenants with their own credentials; acme also gets a tight key
	// quota so the budget rejection is visible below.
	reg := tenant.New(tenant.Config{Nodes: 1, Stats: m.Observer()})
	if _, err := reg.Register("acme", "sesame", tenant.Quotas{MaxKeys: 4}); err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Register("globex", "hunter2", tenant.Quotas{}); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(sys, ln, server.Config{Shards: 2, Tenants: reg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s on %s\n\n", reg, srv.Addr())

	acme := dial(srv.Addr().String(), "acme", "sesame")
	globex := dial(srv.Addr().String(), "globex", "hunter2")

	// Each view sees only itself: the same logical key holds different
	// values per tenant, and neither can see the other's.
	acme.must("SET", "invoice:1", "net-30")
	globex.must("SET", "invoice:1", "net-90")
	fmt.Printf("acme   GET invoice:1        -> %q\n", acme.must("GET", "invoice:1"))
	fmt.Printf("globex GET invoice:1        -> %q\n", globex.must("GET", "invoice:1"))

	// Addressing the peer's view explicitly is a typed denial, not a miss.
	_, err = globex.do("GET", "t:acme:invoice:1")
	fmt.Printf("globex GET t:acme:invoice:1 -> %v\n\n", err)

	// The owner grants read access: the registry mints a read-only child
	// of acme's capabilities into globex's CSpace, and the generation bump
	// makes live connections re-check.
	if err := reg.Grant("acme", "globex", caps.RightRead); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Grant(acme -> globex, read):\n")
	fmt.Printf("globex GET t:acme:invoice:1 -> %q\n", globex.must("GET", "t:acme:invoice:1"))
	_, err = globex.do("SET", "t:acme:invoice:1", "tampered")
	fmt.Printf("globex SET t:acme:invoice:1 -> %v (grant carried read only)\n\n", err)

	// Revocation kills every minted child transitively — the same live
	// connection loses access without redialing.
	if err := reg.Revoke("acme"); err != nil {
		log.Fatal(err)
	}
	_, err = globex.do("GET", "t:acme:invoice:1")
	fmt.Printf("after Revoke(acme):\nglobex GET t:acme:invoice:1 -> %v\n\n", err)

	// acme's key quota is 4; invoice:1 is already charged, so three more
	// keys fit and the fifth write bounces with -QUOTA.
	for i := 2; i <= 5; i++ {
		k := fmt.Sprintf("invoice:%d", i)
		if _, err := acme.do("SET", k, "net-30"); err != nil {
			fmt.Printf("acme SET %s -> %v\n", k, err)
		} else {
			fmt.Printf("acme SET %s -> OK\n", k)
		}
	}
	fmt.Println()

	for _, info := range reg.List() {
		fmt.Printf("tenant %-6s usage: %d keys, %d bytes (quota %+v)\n",
			info.ID, info.Keys, info.Bytes, info.Quotas)
	}

	acme.close()
	globex.close()
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if snap := sys.Stats(); snap != nil && len(snap.Tenants) > 0 {
		fmt.Println()
		snap.WriteText(os.Stdout)
	}
}

// client is a minimal RESP client bound to one tenant identity.
type client struct {
	nc net.Conn
	br *bufio.Reader
}

func dial(addr, id, secret string) *client {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	c := &client{nc: nc, br: bufio.NewReader(nc)}
	if v, err := c.do("AUTH", id, secret); err != nil || v != "OK" {
		log.Fatalf("AUTH %s: %q %v", id, v, err)
	}
	return c
}

func (c *client) do(args ...string) (string, error) {
	if _, err := c.nc.Write(redis.EncodeCommand(args...)); err != nil {
		log.Fatal(err)
	}
	v, _, err := redis.ReadReply(c.br)
	return string(v), err
}

func (c *client) must(args ...string) string {
	v, err := c.do(args...)
	if err != nil {
		log.Fatalf("%v: %v", args, err)
	}
	return v
}

func (c *client) close() { c.nc.Close() }
