// Fault injection: rehearsing the failure modes a multi-VAS operating
// system must survive. A deterministic fault registry (package fault) is
// attached to the simulated machine and armed point by point to stage
// three recoveries:
//
//  1. a process crashes while holding a segment write lock — the kernel
//     reaper releases the lock, wakes a blocked switcher, and returns
//     every frame the dead process owned;
//  2. power fails mid-checkpoint, tearing an NVM write — Restore boots
//     the previous intact checkpoint generation;
//  3. an RPC channel drops messages — Endpoint.Call retries with
//     backoff and at-most-once semantics until the reply lands.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"spacejmp"
	"spacejmp/internal/urpc"
)

const (
	segBase = spacejmp.GlobalBase
	segSize = 1 << 20
)

func main() {
	cfg := spacejmp.DefaultMachine()
	cfg.Mem.NVMSuperblock = 1 << 20
	machine := spacejmp.NewMachine(cfg)
	faults := spacejmp.NewFaults(42)
	machine.SetFaults(faults)
	sys := spacejmp.NewDragonFlyOn(machine)
	sys.SetSegmentTier(spacejmp.TierNVM)

	crashWhileLocked(sys)
	tornCheckpoint(machine, sys, faults)
	lossyRPC(machine, faults)
}

// spawn starts a fresh process with one thread.
func spawn(sys *spacejmp.System, uid uint32) (*spacejmp.Process, *spacejmp.Thread) {
	proc, err := sys.NewProcess(spacejmp.Creds{UID: uid, GID: 1})
	if err != nil {
		log.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	return proc, th
}

// crashWhileLocked kills a process that is switched into a VAS holding its
// lockable segment exclusively. The reaper must release the lock so the
// blocked second process gets in, and the dead process's memory must all
// come back.
func crashWhileLocked(sys *spacejmp.System) {
	fmt.Println("--- scenario 1: crash while holding a write lock ---")
	_, owner := spawn(sys, 1)
	vid, err := owner.VASCreate("shared", 0o666)
	if err != nil {
		log.Fatal(err)
	}
	sid, err := owner.SegAlloc("shared.seg", segBase, segSize, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.SegAttachVAS(vid, sid, spacejmp.PermRW); err != nil {
		log.Fatal(err)
	}
	seg, err := sys.SegByID(sid)
	if err != nil {
		log.Fatal(err)
	}

	// The waiter attaches and touches the segment once, so its page tables
	// exist before we take the leak baseline.
	_, waiter := spawn(sys, 2)
	wh, err := waiter.VASAttach(vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := waiter.VASSwitch(wh); err != nil {
		log.Fatal(err)
	}
	if _, err := waiter.Load64(segBase); err != nil {
		log.Fatal(err)
	}
	if err := waiter.VASSwitch(spacejmp.PrimaryHandle); err != nil {
		log.Fatal(err)
	}
	baseline := sys.M.PM.AllocatedBytes()

	victim, vt := spawn(sys, 3)
	vh, err := vt.VASAttach(vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := vt.VASSwitch(vh); err != nil { // takes the write lock
		log.Fatal(err)
	}
	if err := vt.Store64(segBase, 0xC0FFEE); err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim: switched in, wrote 0xC0FFEE, holding the write lock")

	// The waiter blocks trying to switch in.
	done := make(chan error, 1)
	go func() { done <- waiter.VASSwitch(wh) }()
	for seg.LockContentions() < 1 {
		time.Sleep(time.Millisecond)
	}

	fmt.Println("victim: crashing without releasing anything")
	victim.Crash()

	if err := <-done; err != nil {
		log.Fatal(err)
	}
	v, err := waiter.Load64(segBase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waiter: acquired the lock, read %#x (victim's committed write)\n", v)
	if err := waiter.VASSwitch(spacejmp.PrimaryHandle); err != nil {
		log.Fatal(err)
	}
	if err := sys.M.PM.CheckLeaks(baseline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reaper: all of the victim's frames returned, no leaks")
	if _, err := vt.VASFind("shared"); errors.Is(err, spacejmp.ErrProcessDead) {
		fmt.Println("victim: later syscalls fail with ErrProcessDead")
	}
	fmt.Println()
}

// tornCheckpoint tears an NVM write in the middle of a checkpoint, power
// cycles the machine, and shows Restore falling back to the previous
// generation.
func tornCheckpoint(machine *spacejmp.Machine, sys *spacejmp.System, faults *spacejmp.FaultRegistry) {
	fmt.Println("--- scenario 2: power loss tears a checkpoint write ---")
	if err := sys.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint A committed (VAS \"shared\" inside)")

	_, th := spawn(sys, 4)
	if _, err := th.VASCreate("doomed", 0o600); err != nil {
		log.Fatal(err)
	}
	// The second NVM write of the next checkpoint — the commit header —
	// stops halfway, as a power cut would leave it.
	faults.Enable(spacejmp.FaultMemWriteTorn, spacejmp.FaultOnNth(2))
	err := sys.Checkpoint()
	faults.Disable(spacejmp.FaultMemWriteTorn)
	fmt.Printf("checkpoint B torn mid-commit: %v\n", err)

	machine.PM.PowerCycle()
	sys2 := spacejmp.NewDragonFlyOn(machine)
	if err := sys2.Restore(); err != nil {
		log.Fatal(err)
	}
	_, th2 := spawn(sys2, 5)
	if _, err := th2.VASFind("shared"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after reboot: checkpoint A restored, VAS \"shared\" intact")
	if _, err := th2.VASFind("doomed"); errors.Is(err, spacejmp.ErrNotFound) {
		fmt.Println("after reboot: the half-committed generation is invisible")
	}
	fmt.Println()
}

// lossyRPC drops a third of all RPC messages and shows Call's
// retry-with-backoff completing every request exactly once anyway.
func lossyRPC(machine *spacejmp.Machine, faults *spacejmp.FaultRegistry) {
	fmt.Println("--- scenario 3: RPC over a lossy channel ---")
	calls := 0
	ep := urpc.Connect(machine, 0, 1, 8, func(req []byte) []byte {
		calls++ // not idempotent: double execution would show here
		return []byte{req[0] + 1}
	})
	faults.Enable(spacejmp.FaultURPCDrop, spacejmp.FaultProbability(0.3))
	for i := 0; i < 20; i++ {
		resp, err := ep.Call([]byte{byte(i)})
		if err != nil {
			log.Fatal(err)
		}
		if resp[0] != byte(i)+1 {
			log.Fatalf("call %d: wrong response %d", i, resp[0])
		}
	}
	faults.Disable(spacejmp.FaultURPCDrop)
	req, resp := ep.ChannelStats()
	fmt.Printf("20 calls completed; handler ran %d times (at-most-once)\n", calls)
	fmt.Printf("dropped %d messages, %d retries absorbed the loss\n",
		req.Drops+resp.Drops, ep.Retries())

	// With the channel fully dead, Call gives up with a typed timeout.
	faults.Enable(spacejmp.FaultURPCDrop, spacejmp.FaultAlways())
	_, err := ep.Call([]byte{0})
	faults.Disable(spacejmp.FaultURPCDrop)
	fmt.Printf("dead channel: %v (errors.Is ErrTimeout: %v)\n",
		err, errors.Is(err, urpc.ErrTimeout))
}
