// Serving: boot the RESP/TCP serving layer in-process, drive it with the
// closed-loop load generator over a real loopback socket, then drain
// gracefully and print the serving-layer stats — per-shard connection and
// command counters, backpressure rejections, and latency percentiles.
//
// This is the RedisJMP result (§5.3) made operational: each worker shard
// owns a simulated core and serves every command by switching into the
// shared server VAS, taking the store segment's lock shared for GETs and
// exclusive for SETs.
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/server"
)

func main() {
	m := hw.NewMachine(hw.M1())
	sys := kernel.New(m)
	sys.EnableStats(4096)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := m.PM.AllocatedBytes()
	srv, err := server.New(sys, ln, server.Config{Shards: 4, QueueDepth: 64, PipelineDepth: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s with 4 shards (4 simulated cores)\n\n", srv.Addr())

	res, err := server.RunLoad(server.LoadConfig{
		Addr:       srv.Addr().String(),
		Conns:      32,
		Pipeline:   8,
		Requests:   256,
		SetPercent: 20,
		ValueSize:  128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load: %d commands (%d GET / %d SET) at %.0f cmd/s\n",
		res.Commands, res.Gets, res.Sets, res.Throughput())
	fmt.Printf("load: p50 ≤%dns p99 ≤%dns, %d busy, %d errors, %d mismatches\n\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.99),
		res.Busy, res.Errors, res.Mismatches)

	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := m.PM.CheckLeaks(base); err != nil {
		log.Fatalf("leak after drain: %v", err)
	}
	fmt.Println("drained: all workers exited, all simulated frames reclaimed")

	if snap := sys.Stats(); snap != nil {
		fmt.Println()
		snap.WriteText(os.Stdout)
	}
}
