// Largemem: address more memory than one virtual address range by placing
// data windows in separate address spaces and switching between them — the
// GUPS pattern (§5.2, "SpaceJMP solves the problem of insufficient VA bits
// by allowing a process to place data in multiple address spaces").
//
// Every window occupies the SAME virtual address in its own VAS, so the
// program's pointers into the current window are identical regardless of
// which window is active.
package main

import (
	"fmt"
	"log"

	"spacejmp"
)

const (
	windows    = 8
	windowSize = 8 << 20 // per-window bytes; scale at will
	windowBase = spacejmp.GlobalBase
)

func main() {
	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())
	proc, err := sys.NewProcess(spacejmp.Creds{UID: 1, GID: 1})
	if err != nil {
		log.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}

	// One VAS per window, each holding a window segment at windowBase.
	handles := make([]spacejmp.Handle, windows)
	for w := 0; w < windows; w++ {
		vid, err := th.VASCreate(fmt.Sprintf("window.%d", w), 0o600)
		if err != nil {
			log.Fatal(err)
		}
		sid, err := th.SegAlloc(fmt.Sprintf("window.seg.%d", w), windowBase, windowSize, spacejmp.PermRW)
		if err != nil {
			log.Fatal(err)
		}
		if err := th.SegAttachVAS(vid, sid, spacejmp.PermRW); err != nil {
			log.Fatal(err)
		}
		// Tag the VAS so switching retains TLB entries (§4.4).
		if err := th.VASCtl(vid, spacejmp.SetTag()); err != nil {
			log.Fatal(err)
		}
		if handles[w], err = th.VASAttach(vid); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d windows x %d MiB = %d MiB addressable through one fixed range\n",
		windows, windowSize>>20, windows*windowSize>>20)

	// Write a signature at the same VA in every window...
	for w, h := range handles {
		if err := th.VASSwitch(h); err != nil {
			log.Fatal(err)
		}
		if err := th.Store64(windowBase, uint64(0xAA00+w)); err != nil {
			log.Fatal(err)
		}
	}
	// ...and read them back: same pointer, different data per VAS.
	for w, h := range handles {
		if err := th.VASSwitch(h); err != nil {
			log.Fatal(err)
		}
		v, err := th.Load64(windowBase)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: *%v = %#x\n", w, windowBase, v)
	}
	st := th.Core.Stats()
	fmt.Printf("switches=%d, TLB misses=%d (tags keep translations across switches)\n",
		sys.Switches(), st.TLBMisses)
}
