// Sharing: several client processes operate on one shared, lockable
// segment by switching into a common VAS — the RedisJMP pattern (§5.3).
// Read-only attachments take the segment lock shared; the writable
// attachment takes it exclusively, so readers run concurrently and writers
// serialize, with no server process anywhere.
package main

import (
	"fmt"
	"log"
	"sync"

	"spacejmp"
)

const counterAddr = spacejmp.GlobalBase

func main() {
	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())

	// First client bootstraps the shared state: one segment, two VASes
	// over it (read-only and read-write views).
	boot, err := sys.NewProcess(spacejmp.Creds{UID: 1, GID: 100})
	if err != nil {
		log.Fatal(err)
	}
	bt, err := boot.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	sid, err := bt.SegAlloc("shared.data", counterAddr, 1<<20, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	readVAS, err := bt.VASCreate("shared.read", 0o666)
	if err != nil {
		log.Fatal(err)
	}
	if err := bt.SegAttachVAS(readVAS, sid, spacejmp.PermRead); err != nil {
		log.Fatal(err)
	}
	writeVAS, err := bt.VASCreate("shared.write", 0o666)
	if err != nil {
		log.Fatal(err)
	}
	if err := bt.SegAttachVAS(writeVAS, sid, spacejmp.PermRW); err != nil {
		log.Fatal(err)
	}

	// Writer: increments a counter under the exclusive lock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		proc, err := sys.NewProcess(spacejmp.Creds{UID: 2, GID: 100})
		if err != nil {
			log.Fatal(err)
		}
		th, err := proc.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		vid, _ := th.VASFind("shared.write")
		h, err := th.VASAttach(vid)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := th.VASSwitch(h); err != nil { // takes the lock exclusively
				log.Fatal(err)
			}
			v, _ := th.Load64(counterAddr)
			if err := th.Store64(counterAddr, v+1); err != nil {
				log.Fatal(err)
			}
			if err := th.VASSwitch(spacejmp.PrimaryHandle); err != nil { // releases
				log.Fatal(err)
			}
		}
	}()

	// Readers: poll the counter under the shared lock, concurrently.
	results := make(chan uint64, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			proc, err := sys.NewProcess(spacejmp.Creds{UID: uint32(10 + id), GID: 100})
			if err != nil {
				log.Fatal(err)
			}
			th, err := proc.NewThread()
			if err != nil {
				log.Fatal(err)
			}
			vid, _ := th.VASFind("shared.read")
			h, err := th.VASAttach(vid)
			if err != nil {
				log.Fatal(err)
			}
			var last uint64
			for i := 0; i < 200; i++ {
				if err := th.VASSwitch(h); err != nil { // shared lock
					log.Fatal(err)
				}
				last, _ = th.Load64(counterAddr)
				if err := th.VASSwitch(spacejmp.PrimaryHandle); err != nil {
					log.Fatal(err)
				}
			}
			results <- last
		}(r)
	}
	wg.Wait()
	close(results)
	for v := range results {
		fmt.Printf("reader observed counter = %d\n", v)
	}

	// Verify the final value through a fresh attachment.
	vid, _ := bt.VASFind("shared.write")
	h, err := bt.VASAttach(vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := bt.VASSwitch(h); err != nil {
		log.Fatal(err)
	}
	final, _ := bt.Load64(counterAddr)
	fmt.Printf("final counter = %d (want 100)\n", final)
	fmt.Printf("total vas_switch operations: %d\n", sys.Switches())
}
