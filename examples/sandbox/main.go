// Sandbox: the paper's §7 sketch — "another potential application is
// sandboxing, using different address spaces to limit access only to
// trusted code." A host process holds a secret in one segment and gives an
// untrusted plugin a restricted VAS that maps only the plugin's own arena:
// while switched into the sandbox, the secret simply does not exist in the
// address space, whatever addresses the plugin probes.
package main

import (
	"fmt"
	"log"

	"spacejmp"
	"spacejmp/internal/arch"
)

var (
	secretBase = spacejmp.GlobalBase
	arenaBase  = spacejmp.GlobalBase + spacejmp.VirtAddr(arch.LevelCoverage(3))
)

func main() {
	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())
	host, err := sys.NewProcess(spacejmp.Creds{UID: 1, GID: 1})
	if err != nil {
		log.Fatal(err)
	}
	th, err := host.NewThread()
	if err != nil {
		log.Fatal(err)
	}

	// Host state: a secret segment and the plugin's arena.
	secretSeg, err := th.SegAlloc("host.secret", secretBase, 1<<20, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	arenaSeg, err := th.SegAlloc("plugin.arena", arenaBase, 1<<20, spacejmp.PermRW)
	if err != nil {
		log.Fatal(err)
	}

	// The host's working VAS maps both; the sandbox VAS maps only the arena.
	hostVAS, err := th.VASCreate("host.vas", 0o600)
	if err != nil {
		log.Fatal(err)
	}
	for _, sid := range []spacejmp.SegID{secretSeg, arenaSeg} {
		if err := th.SegAttachVAS(hostVAS, sid, spacejmp.PermRW); err != nil {
			log.Fatal(err)
		}
	}
	sandboxVAS, err := th.VASCreate("sandbox.vas", 0o600)
	if err != nil {
		log.Fatal(err)
	}
	if err := th.SegAttachVAS(sandboxVAS, arenaSeg, spacejmp.PermRW); err != nil {
		log.Fatal(err)
	}

	hostH, err := th.VASAttach(hostVAS)
	if err != nil {
		log.Fatal(err)
	}
	sandboxH, err := th.VASAttach(sandboxVAS)
	if err != nil {
		log.Fatal(err)
	}

	// Host writes the secret and some work for the plugin.
	if err := th.VASSwitch(hostH); err != nil {
		log.Fatal(err)
	}
	if err := th.Store64(secretBase, 0x5EC12E7); err != nil {
		log.Fatal(err)
	}
	if err := th.Store64(arenaBase, 21); err != nil { // plugin input
		log.Fatal(err)
	}

	// "Call" the untrusted plugin: jump into the sandbox first.
	if err := th.VASSwitch(sandboxH); err != nil {
		log.Fatal(err)
	}
	runPlugin(th)
	if err := th.VASSwitch(hostH); err != nil {
		log.Fatal(err)
	}
	result, err := th.Load64(arenaBase + 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: plugin computed %d; secret is still %#x\n",
		result, mustLoad(th, secretBase))
}

// runPlugin is the untrusted code: it does its job, then tries to steal the
// secret — the address is valid in the host's VAS, but inside the sandbox
// there is nothing mapped there.
func runPlugin(th *spacejmp.Thread) {
	in, _ := th.Load64(arenaBase)
	th.Store64(arenaBase+8, in*2) // the legitimate work

	if v, err := th.Load64(secretBase); err != nil {
		fmt.Printf("plugin: probing %v -> fault (%v)\n", secretBase, err)
	} else {
		fmt.Printf("plugin: STOLE THE SECRET %#x — sandbox broken!\n", v)
	}
}

func mustLoad(th *spacejmp.Thread, va spacejmp.VirtAddr) uint64 {
	v, err := th.Load64(va)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
