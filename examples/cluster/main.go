// Cluster: run the keyspace-sharded cluster layer in both of its serving
// modes back to back and print the Figure 7 comparison. In vas mode every
// shard node is co-resident with the router, so each command is one VAS
// switch onto the shard's lockable segment; in urpc mode every node is
// remote, so each command is serialized to RESP and moved over cache-line
// channels to the shard's core and back. The same MGET-heavy load runs
// against both, and the per-mode worker-core cycle distributions come out
// of the stats sink side by side — switching should beat messaging, most
// visibly on multi-key commands (§5.3, Figure 7).
package main

import (
	"fmt"
	"log"
	"net"

	"spacejmp/internal/cluster"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/server"
	"spacejmp/internal/stats"
)

const (
	nodes   = 3
	workers = 2
)

func main() {
	vas := runMode(cluster.ModeVAS)
	urpc := runMode(cluster.ModeURPC)

	fmt.Println("Figure 7 shape — per-command worker-core cycles by serving mode:")
	fmt.Printf("  %-22s %12s %12s %12s\n", "mode", "mean", "p50", "p99")
	row := func(name string, h stats.HistSnap) {
		fmt.Printf("  %-22s %12.0f %12d %12d\n", name, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
	}
	row("vas (switch)", vas.LocalCycles)
	row("urpc (message)", urpc.RemoteCycles)
	row("urpc call alone", urpc.URPCCallCycles)

	speedup := urpc.RemoteCycles.Mean() / vas.LocalCycles.Mean()
	fmt.Printf("\nVAS switching is %.1fx cheaper per command than urpc messaging\n", speedup)
	if speedup <= 1 {
		log.Fatal("expected the shared-VAS fast path to beat message passing (Figure 7)")
	}
	fmt.Println("(the paper's Figure 7 finds the same ordering: switching wins, and the")
	fmt.Println(" gap widens with the keys per command, because extra keys cost memory")
	fmt.Println(" accesses on the switching side but cache-line transfers on the other)")
}

// runMode boots a fresh machine, serves one MGET-heavy load through the
// cluster in the given mode, drains, checks for leaks, and returns the
// cluster counters.
func runMode(mode cluster.Mode) *stats.ClusterSnap {
	m := hw.NewMachine(hw.M1())
	sys := kernel.New(m)
	sys.EnableStats(0)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := m.PM.AllocatedBytes()
	router, err := cluster.New(sys, cluster.Config{Nodes: nodes, Workers: workers, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.NewWithBackend(sys, ln, server.Config{}, router)
	fmt.Print(router)

	res, err := server.RunLoad(server.LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       8,
		Pipeline:    4,
		Requests:    256,
		SetPercent:  20,
		MGetPercent: 30,
		MGetKeys:    4,
		ValueSize:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors > 0 || res.Mismatches > 0 {
		log.Fatalf("mode %s: %d errors, %d mismatches", mode, res.Errors, res.Mismatches)
	}
	fmt.Printf("  load: %d commands (%d GET / %d SET / %d MGET), %d busy\n",
		res.Commands, res.Gets, res.Sets, res.MGets, res.Busy)

	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := m.PM.CheckLeaks(base); err != nil {
		log.Fatalf("mode %s: leak after drain: %v", mode, err)
	}
	fmt.Println("  drained: frames reclaimed, urpc channels empty")
	fmt.Println()

	snap := sys.Stats()
	if snap == nil || snap.Cluster == nil {
		log.Fatalf("mode %s: no cluster stats", mode)
	}
	return snap.Cluster
}
