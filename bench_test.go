package spacejmp

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablations for the design choices listed in DESIGN.md. Each benchmark
// drives the corresponding experiment and reports the figure's headline
// quantity as custom metrics (simulated cycles, MUPS, requests/second, or
// simulated milliseconds). cmd/spacejmp-bench prints the full series.

import (
	"fmt"
	"strings"
	"testing"

	"spacejmp/internal/experiments"
	"spacejmp/internal/gups"
	"spacejmp/internal/sam"
)

// BenchmarkFig1MmapCost reproduces Figure 1: page-table construction and
// removal cost versus region size, with and without cached translations.
func BenchmarkFig1MmapCost(b *testing.B) {
	for _, pow := range []int{20, 25, 30} {
		b.Run(fmt.Sprintf("size=2^%d", pow), func(b *testing.B) {
			var last experiments.Fig1Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig1(pow)
				if err != nil {
					b.Fatal(err)
				}
				last = pts[len(pts)-1]
			}
			b.ReportMetric(last.MapMs, "map-ms")
			b.ReportMetric(last.UnmapMs, "unmap-ms")
			b.ReportMetric(last.MapCachedMs, "map-cached-ms")
			b.ReportMetric(last.UnmapCachedMs, "unmap-cached-ms")
		})
	}
}

// BenchmarkTable2SwitchBreakdown reproduces Table 2: the cycle breakdown of
// vas_switch on both OS personalities, tags off and on.
func BenchmarkTable2SwitchBreakdown(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Operation == "vas_switch" {
			b.ReportMetric(float64(r.DragonFly), "dfly-cycles")
			b.ReportMetric(float64(r.DragonFlyT), "dfly-tagged-cycles")
			b.ReportMetric(float64(r.Barrelfish), "bfish-cycles")
			b.ReportMetric(float64(r.BarrelfishT), "bfish-tagged-cycles")
		}
	}
}

// BenchmarkFig6TLBTagging reproduces Figure 6: page-touch latency under CR3
// switching with tags off/on versus no switching.
func BenchmarkFig6TLBTagging(b *testing.B) {
	for _, pages := range []int{128, 1024, 2048} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			var p experiments.Fig6Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig6([]int{pages}, 500)
				if err != nil {
					b.Fatal(err)
				}
				p = pts[0]
			}
			b.ReportMetric(p.SwitchTagOff, "tag-off-cycles/touch")
			b.ReportMetric(p.SwitchTagOn, "tag-on-cycles/touch")
			b.ReportMetric(p.NoSwitch, "no-switch-cycles/touch")
		})
	}
}

// BenchmarkFig7RPC reproduces Figure 7: SpaceJMP versus URPC latency across
// transfer sizes.
func BenchmarkFig7RPC(b *testing.B) {
	for _, size := range []int{4, 64, 4096, 262144} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			var p experiments.Fig7Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig7([]int{size})
				if err != nil {
					b.Fatal(err)
				}
				p = pts[0]
			}
			b.ReportMetric(float64(p.URPCLocal), "urpc-local-cycles")
			b.ReportMetric(float64(p.URPCCross), "urpc-cross-cycles")
			b.ReportMetric(float64(p.SpaceJMP), "spacejmp-cycles")
		})
	}
}

func benchGUPSConfig() gups.Config {
	return gups.Config{WindowSize: 4 << 20, UpdateSet: 64, Visits: 128, Seed: 42}
}

// BenchmarkFig8GUPS reproduces Figure 8: GUPS MUPS for the three designs
// across window counts.
func BenchmarkFig8GUPS(b *testing.B) {
	for _, windows := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("windows=%d", windows), func(b *testing.B) {
			var p experiments.Fig8Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig8([]int{windows}, []int{64}, benchGUPSConfig())
				if err != nil {
					b.Fatal(err)
				}
				p = pts[0]
			}
			b.ReportMetric(p.SpaceJMP, "spacejmp-MUPS")
			b.ReportMetric(p.MP, "mp-MUPS")
			b.ReportMetric(p.MAP, "map-MUPS")
		})
	}
}

// BenchmarkFig9GUPSRates reproduces Figure 9: VAS-switch and TLB-miss rates
// of the SpaceJMP GUPS run.
func BenchmarkFig9GUPSRates(b *testing.B) {
	for _, windows := range []int{4, 8} {
		b.Run(fmt.Sprintf("windows=%d", windows), func(b *testing.B) {
			var p experiments.Fig9Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig9([]int{windows}, []int{64}, benchGUPSConfig())
				if err != nil {
					b.Fatal(err)
				}
				p = pts[0]
			}
			b.ReportMetric(p.SwitchK, "switches-k/s")
			b.ReportMetric(p.TLBMissK, "tlb-misses-k/s")
		})
	}
}

func fig10(b *testing.B) *experiments.Fig10 {
	b.Helper()
	var f *experiments.Fig10
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.RunFig10(16 << 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkFig10aRedisGET reproduces Figure 10a: GET throughput by client
// count for RedisJMP (tags off/on), Redis, and Redis 6x.
func BenchmarkFig10aRedisGET(b *testing.B) {
	f := fig10(b)
	last := len(f.Clients) - 1
	b.ReportMetric(f.GetJmp[0].RPS, "jmp-1client-rps")
	b.ReportMetric(f.GetRedis[0].RPS, "redis-1client-rps")
	b.ReportMetric(f.GetJmp[last].RPS, "jmp-100clients-rps")
	b.ReportMetric(f.GetJmpTags[last].RPS, "jmp-tags-100clients-rps")
	b.ReportMetric(f.GetRedis6x[last].RPS, "redis6x-100clients-rps")
}

// BenchmarkFig10bRedisSET reproduces Figure 10b: SET throughput by client
// count.
func BenchmarkFig10bRedisSET(b *testing.B) {
	f := fig10(b)
	last := len(f.Clients) - 1
	b.ReportMetric(f.SetJmp[0].RPS, "jmp-1client-rps")
	b.ReportMetric(f.SetJmp[last].RPS, "jmp-100clients-rps")
	b.ReportMetric(f.SetRedis[last].RPS, "redis-100clients-rps")
}

// BenchmarkFig10cRedisMix reproduces Figure 10c: throughput versus SET
// percentage at full client load.
func BenchmarkFig10cRedisMix(b *testing.B) {
	f := fig10(b)
	for i, pct := range f.MixPcts {
		if pct == 0 || pct == 10 || pct == 100 {
			b.ReportMetric(f.MixJmp[i].RPS, fmt.Sprintf("jmp-%dpct-rps", pct))
		}
	}
	b.ReportMetric(f.MixRedis[0].RPS, "redis-rps")
}

// BenchmarkFig11SAMTools reproduces Figure 11: SAM and BAM serialization
// workflows versus SpaceJMP per operation.
func BenchmarkFig11SAMTools(b *testing.B) {
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig11(400, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Op == sam.OpFlagstat || r.Op == sam.OpCoordSort {
			b.ReportMetric(r.SAM*1e3, string(r.Op)+"-sam-ms")
			b.ReportMetric(r.BAM*1e3, string(r.Op)+"-bam-ms")
			b.ReportMetric(r.SpaceJMP*1e3, string(r.Op)+"-jmp-ms")
		}
	}
}

// BenchmarkFig12SAMToolsMmap reproduces Figure 12: mmap'ed region files
// versus SpaceJMP per operation.
func BenchmarkFig12SAMToolsMmap(b *testing.B) {
	var rows []experiments.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig12(400, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Op == sam.OpFlagstat || r.Op == sam.OpQnameSort {
			b.ReportMetric(r.Mmap*1e3, string(r.Op)+"-mmap-ms")
			b.ReportMetric(r.SpaceJMP*1e3, string(r.Op)+"-jmp-ms")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md). ---

func reportAblation(b *testing.B, rows []experiments.AblationRow) {
	b.Helper()
	clean := strings.NewReplacer(" ", "-", ",", "", ":", "", "^", "")
	for _, r := range rows {
		b.ReportMetric(r.Value, clean.Replace(r.Label)+"-"+clean.Replace(r.Unit))
	}
}

// BenchmarkAblationTagPolicy: never-tag vs always-tag on GUPS.
func BenchmarkAblationTagPolicy(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationTagPolicy(benchGUPSConfig().WithWindows(4))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationSegCache: per-page attach vs cached translation subtrees.
func BenchmarkAblationSegCache(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationSegCache([]int{24})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationLockGranularity: per-segment locks vs one shared lock set.
func BenchmarkAblationLockGranularity(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationLockGranularity()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationPopulate: eager vs fault-driven mapping population.
func BenchmarkAblationPopulate(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPopulate(24)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationPageSize: 4 KiB vs 2 MiB backing pages.
func BenchmarkAblationPageSize(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPageSize(26, 2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkVASSwitch measures the raw switch primitive end to end through
// the public API (the number Table 2 decomposes).
func BenchmarkVASSwitch(b *testing.B) {
	sys := NewDragonFly(DefaultMachine())
	proc, err := sys.NewProcess(Creds{UID: 1, GID: 1})
	if err != nil {
		b.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	vid, err := th.VASCreate("bench", 0o600)
	if err != nil {
		b.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		b.Fatal(err)
	}
	start := th.Core.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.VASSwitch(h); err != nil {
			b.Fatal(err)
		}
		if err := th.VASSwitch(PrimaryHandle); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(th.Core.Cycles()-start)/float64(2*b.N), "sim-cycles/switch")
}
