package mem

import (
	"testing"

	"spacejmp/internal/arch"
)

func TestSuperblockReservation(t *testing.T) {
	pm := New(Config{DRAMSize: 16 << 20, NVMSize: 8 << 20, NVMSuperblock: 1 << 20})
	base, size := pm.Superblock()
	if uint64(base) != 16<<20 || size != 1<<20 {
		t.Fatalf("superblock = %v +%d", base, size)
	}
	// The allocator never hands out superblock frames.
	seen := map[arch.PhysAddr]bool{}
	for {
		pa, err := pm.AllocFrames(0, TierNVM)
		if err != nil {
			break
		}
		if uint64(pa) < uint64(base)+size {
			t.Fatalf("allocator handed out superblock frame %v", pa)
		}
		seen[pa] = true
	}
	if len(seen) != int((8<<20-1<<20)/arch.PageSize) {
		t.Errorf("NVM frames available = %d", len(seen))
	}
}

func TestSuperblockSurvivesPowerCycle(t *testing.T) {
	pm := New(Config{DRAMSize: 16 << 20, NVMSize: 8 << 20, NVMSuperblock: 1 << 20})
	base, _ := pm.Superblock()
	if err := pm.WriteAt(base, []byte("superblock payload")); err != nil {
		t.Fatal(err)
	}
	pm.PowerCycle()
	buf := make([]byte, 18)
	if err := pm.ReadAt(base, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "superblock payload" {
		t.Errorf("superblock lost: %q", buf)
	}
}

func TestSuperblockClampedToNVM(t *testing.T) {
	pm := New(Config{DRAMSize: 16 << 20, NVMSize: 1 << 20, NVMSuperblock: 4 << 20})
	_, size := pm.Superblock()
	if size != 1<<20 {
		t.Errorf("superblock size = %d, want clamped to NVM size", size)
	}
	if _, err := pm.AllocFrames(0, TierNVM); err == nil {
		t.Error("NVM fully reserved but allocation succeeded")
	}
}

func TestNoSuperblockByDefault(t *testing.T) {
	pm := New(Config{DRAMSize: 16 << 20, NVMSize: 8 << 20})
	if _, size := pm.Superblock(); size != 0 {
		t.Errorf("unexpected superblock size %d", size)
	}
}
