// Package mem simulates the physical memory of the machine: a flat physical
// address space carved into 4 KiB frames, managed by a buddy allocator, and
// optionally split into a volatile DRAM tier and a persistent NVM tier.
//
// Frame contents are materialized lazily as Go byte slices, so a simulated
// machine can expose a physical address space much larger than the memory
// the test process actually touches — mirroring the paper's premise (§2.1)
// that physical capacity outgrows what a process can comfortably map.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
	"spacejmp/internal/stats"
)

// ErrTornWrite reports a write that was cut short mid-flight by an injected
// power loss (fault.MemWriteTorn): a prefix of the buffer reached memory,
// the rest did not. Recovery code must treat the destination as suspect.
var ErrTornWrite = errors.New("mem: torn write (simulated power loss)")

// Tier identifies the class of physical memory a frame lives in.
type Tier int

const (
	// TierDRAM is the volatile performance tier.
	TierDRAM Tier = iota
	// TierNVM is the persistent capacity tier (byte-addressable NVM). Its
	// frames survive PhysMem.PowerCycle, which models a reboot.
	TierNVM

	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierNVM:
		return "nvm"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// MaxOrder is the largest buddy order: order 0 is one 4 KiB frame, so
// MaxOrder 18 is a 1 GiB contiguous block.
const MaxOrder = 18

// Config sizes the two memory tiers in bytes. NVM may be zero.
// NVMSuperblock reserves the first bytes of the NVM tier outside the
// allocator: a well-known persistent region where the OS keeps the
// metadata needed to rebuild state after a power cycle (paper §7,
// persistent VASes).
type Config struct {
	DRAMSize      uint64
	NVMSize       uint64
	NVMSuperblock uint64
}

// Stats reports allocator and content activity.
type Stats struct {
	AllocatedBytes uint64 // currently allocated
	PeakBytes      uint64 // high-water mark
	Allocs         uint64
	Frees          uint64
	FailedAllocs   uint64
	ZeroedPages    uint64 // frames whose content was materialized (zeroed)
}

// PhysMem is the machine's simulated physical memory.
type PhysMem struct {
	mu    sync.Mutex
	tiers [numTiers]*buddy
	cfg   Config

	pages  map[uint64]*[arch.PageSize]byte // PFN -> content, lazy
	stats  Stats
	faults *fault.Registry
	obs    *stats.Sink
}

// SetFaults installs a fault-injection registry. The memory consults it at
// frame allocation (fault.MemAlloc) and on writes (fault.MemWriteTorn). A
// nil registry disables injection.
func (pm *PhysMem) SetFaults(r *fault.Registry) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.faults = r
}

// SetObserver installs the machine-wide stats sink; the memory records
// writes landing in the NVM tier into it. Nil disables observation.
func (pm *PhysMem) SetObserver(s *stats.Sink) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.obs = s
}

// New creates a physical memory with the given tier sizes. Sizes are rounded
// down to whole frames. DRAM occupies physical addresses [0, DRAMSize) and
// NVM [DRAMSize, DRAMSize+NVMSize).
func New(cfg Config) *PhysMem {
	cfg.DRAMSize &^= arch.PageSize - 1
	cfg.NVMSize &^= arch.PageSize - 1
	cfg.NVMSuperblock = arch.PagesIn(cfg.NVMSuperblock) * arch.PageSize
	if cfg.NVMSuperblock > cfg.NVMSize {
		cfg.NVMSuperblock = cfg.NVMSize
	}
	pm := &PhysMem{cfg: cfg, pages: make(map[uint64]*[arch.PageSize]byte)}
	pm.tiers[TierDRAM] = newBuddy(0, cfg.DRAMSize/arch.PageSize)
	pm.tiers[TierNVM] = newBuddy((cfg.DRAMSize+cfg.NVMSuperblock)/arch.PageSize,
		(cfg.NVMSize-cfg.NVMSuperblock)/arch.PageSize)
	return pm
}

// Superblock returns the reserved persistent region's base and size
// (size 0 when no superblock is configured). Its contents survive
// PowerCycle like all NVM.
func (pm *PhysMem) Superblock() (arch.PhysAddr, uint64) {
	return arch.PhysAddr(pm.cfg.DRAMSize), pm.cfg.NVMSuperblock
}

// Size returns the total physical memory size in bytes.
func (pm *PhysMem) Size() uint64 { return pm.cfg.DRAMSize + pm.cfg.NVMSize }

// TierOf returns the tier containing pa.
func (pm *PhysMem) TierOf(pa arch.PhysAddr) Tier {
	if uint64(pa) < pm.cfg.DRAMSize {
		return TierDRAM
	}
	return TierNVM
}

// Contains reports whether pa is a valid physical address.
func (pm *PhysMem) Contains(pa arch.PhysAddr) bool { return uint64(pa) < pm.Size() }

// AllocFrames allocates a naturally aligned contiguous block of 2^order
// frames from the given tier and returns its base physical address. The
// block's contents read as zero until written.
func (pm *PhysMem) AllocFrames(order int, tier Tier) (arch.PhysAddr, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("mem: invalid order %d", order)
	}
	if tier < 0 || tier >= numTiers {
		return 0, fmt.Errorf("mem: invalid tier %d", tier)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.faults.Fire(fault.MemAlloc) {
		pm.stats.FailedAllocs++
		return 0, fmt.Errorf("mem: out of %v memory (order %d, injected)", tier, order)
	}
	pfn, ok := pm.tiers[tier].alloc(order)
	if !ok {
		pm.stats.FailedAllocs++
		return 0, fmt.Errorf("mem: out of %v memory (order %d)", tier, order)
	}
	pm.stats.Allocs++
	pm.stats.AllocatedBytes += (uint64(1) << order) * arch.PageSize
	if pm.stats.AllocatedBytes > pm.stats.PeakBytes {
		pm.stats.PeakBytes = pm.stats.AllocatedBytes
	}
	return arch.PhysAddr(pfn * arch.PageSize), nil
}

// AllocPage allocates a single 4 KiB DRAM frame.
func (pm *PhysMem) AllocPage() (arch.PhysAddr, error) { return pm.AllocFrames(0, TierDRAM) }

// Free returns a block previously obtained from AllocFrames with the same
// order. The content of the block is discarded.
func (pm *PhysMem) Free(pa arch.PhysAddr, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("mem: invalid order %d", order)
	}
	pfn := uint64(pa) / arch.PageSize
	pm.mu.Lock()
	defer pm.mu.Unlock()
	tier := pm.TierOf(pa)
	if err := pm.tiers[tier].free(pfn, order); err != nil {
		return err
	}
	n := uint64(1) << order
	for i := uint64(0); i < n; i++ {
		delete(pm.pages, pfn+i)
	}
	pm.stats.Frees++
	pm.stats.AllocatedBytes -= n * arch.PageSize
	return nil
}

// page returns the backing array for a PFN, materializing it if needed.
// Caller holds pm.mu.
func (pm *PhysMem) page(pfn uint64) *[arch.PageSize]byte {
	p := pm.pages[pfn]
	if p == nil {
		p = new([arch.PageSize]byte)
		pm.pages[pfn] = p
		pm.stats.ZeroedPages++
	}
	return p
}

// ReadAt copies len(buf) bytes of physical memory starting at pa into buf.
// Reads may cross frame boundaries.
func (pm *PhysMem) ReadAt(pa arch.PhysAddr, buf []byte) error {
	if uint64(pa)+uint64(len(buf)) > pm.Size() {
		return fmt.Errorf("mem: read [%v,+%d) out of range", pa, len(buf))
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	off := uint64(pa)
	for len(buf) > 0 {
		pfn, po := off/arch.PageSize, off%arch.PageSize
		n := copy(buf, pm.page(pfn)[po:])
		buf = buf[n:]
		off += uint64(n)
	}
	return nil
}

// WriteAt copies buf into physical memory starting at pa. Under an armed
// fault.MemWriteTorn point the write may be torn: only the first half of buf
// lands and ErrTornWrite is returned, as if power failed mid-write.
func (pm *PhysMem) WriteAt(pa arch.PhysAddr, buf []byte) error {
	if uint64(pa)+uint64(len(buf)) > pm.Size() {
		return fmt.Errorf("mem: write [%v,+%d) out of range", pa, len(buf))
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var torn error
	if pm.faults.Fire(fault.MemWriteTorn) {
		buf = buf[:len(buf)/2]
		torn = fmt.Errorf("%w: [%v,+%d)", ErrTornWrite, pa, len(buf))
	}
	if pm.obs != nil && pm.TierOf(pa) == TierNVM {
		pm.obs.NVMWrite(len(buf))
	}
	off := uint64(pa)
	for len(buf) > 0 {
		pfn, po := off/arch.PageSize, off%arch.PageSize
		n := copy(pm.page(pfn)[po:], buf)
		buf = buf[n:]
		off += uint64(n)
	}
	return torn
}

// Load64 reads a little-endian uint64 at pa, which must be 8-byte aligned.
// This is the accessor the page walker and allocators use.
func (pm *PhysMem) Load64(pa arch.PhysAddr) (uint64, error) {
	if pa&7 != 0 {
		return 0, fmt.Errorf("mem: unaligned Load64 at %v", pa)
	}
	if uint64(pa)+8 > pm.Size() {
		return 0, fmt.Errorf("mem: Load64 at %v out of range", pa)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p := pm.page(uint64(pa) / arch.PageSize)
	po := uint64(pa) % arch.PageSize
	return binary.LittleEndian.Uint64(p[po : po+8]), nil
}

// Store64 writes a little-endian uint64 at pa, which must be 8-byte aligned.
func (pm *PhysMem) Store64(pa arch.PhysAddr, v uint64) error {
	if pa&7 != 0 {
		return fmt.Errorf("mem: unaligned Store64 at %v", pa)
	}
	if uint64(pa)+8 > pm.Size() {
		return fmt.Errorf("mem: Store64 at %v out of range", pa)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.obs != nil && pm.TierOf(pa) == TierNVM {
		pm.obs.NVMWrite(8)
	}
	p := pm.page(uint64(pa) / arch.PageSize)
	po := uint64(pa) % arch.PageSize
	binary.LittleEndian.PutUint64(p[po:po+8], v)
	return nil
}

// Zero clears size bytes starting at pa.
func (pm *PhysMem) Zero(pa arch.PhysAddr, size uint64) error {
	if uint64(pa)+size > pm.Size() {
		return fmt.Errorf("mem: zero [%v,+%d) out of range", pa, size)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	off := uint64(pa)
	for size > 0 {
		pfn, po := off/arch.PageSize, off%arch.PageSize
		n := arch.PageSize - po
		if n > size {
			n = size
		}
		p := pm.page(pfn)
		clear(p[po : po+n])
		off += n
		size -= n
	}
	return nil
}

// PowerCycle models a reboot: DRAM contents are lost (and its allocations
// reset), NVM contents and allocations survive. Persistent VASes (paper §7)
// are rebuilt from NVM after a power cycle.
func (pm *PhysMem) PowerCycle() {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	dramFrames := pm.cfg.DRAMSize / arch.PageSize
	for pfn := range pm.pages {
		if pfn < dramFrames {
			delete(pm.pages, pfn)
		}
	}
	freed := pm.tiers[TierDRAM].reset()
	pm.stats.AllocatedBytes -= freed * arch.PageSize
}

// Stats returns a snapshot of allocator statistics.
func (pm *PhysMem) Stats() Stats {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.stats
}

// FreeBytes returns the number of unallocated bytes in a tier.
func (pm *PhysMem) FreeBytes(tier Tier) uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.tiers[tier].freeFrames * arch.PageSize
}

// AllocatedBytes returns the bytes currently allocated across all tiers —
// the number a leak check compares before and after a process lifetime.
func (pm *PhysMem) AllocatedBytes() uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.stats.AllocatedBytes
}

// CheckLeaks verifies the allocator invariants and that exactly want bytes
// are allocated. It is the post-crash assertion that the reaper returned
// every frame a dead process held.
func (pm *PhysMem) CheckLeaks(want uint64) error {
	if err := pm.VerifyInvariants(); err != nil {
		return err
	}
	if got := pm.AllocatedBytes(); got != want {
		return fmt.Errorf("mem: %d bytes allocated, want %d (leaked %d)", got, want, int64(got)-int64(want))
	}
	return nil
}

// VerifyInvariants checks the buddy allocators' internal consistency: free
// and allocated blocks tile each tier exactly with no overlap, free lists
// hold only aligned in-range blocks, and the byte accounting matches the
// allocators' view. It is O(live+free blocks) and intended for tests.
func (pm *PhysMem) VerifyInvariants() error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var allocated uint64
	for t := Tier(0); t < numTiers; t++ {
		b := pm.tiers[t]
		if err := b.check(); err != nil {
			return fmt.Errorf("mem: %v tier: %w", t, err)
		}
		allocated += (b.frames - b.freeFrames) * arch.PageSize
	}
	if allocated != pm.stats.AllocatedBytes {
		return fmt.Errorf("mem: stats say %d bytes allocated, allocators say %d",
			pm.stats.AllocatedBytes, allocated)
	}
	return nil
}
