package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
)

func testPM() *PhysMem {
	return New(Config{DRAMSize: 64 << 20, NVMSize: 16 << 20})
}

func TestAllocFreeRoundTrip(t *testing.T) {
	pm := testPM()
	pa, err := pm.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Contains(pa) {
		t.Fatalf("allocated frame %v outside memory", pa)
	}
	if pm.TierOf(pa) != TierDRAM {
		t.Errorf("AllocPage tier = %v, want dram", pm.TierOf(pa))
	}
	if err := pm.Free(pa, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignment(t *testing.T) {
	pm := testPM()
	for order := 0; order <= 10; order++ {
		pa, err := pm.AllocFrames(order, TierDRAM)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		align := uint64(arch.PageSize) << order
		if uint64(pa)%align != 0 {
			t.Errorf("order %d block at %v not naturally aligned", order, pa)
		}
	}
}

func TestNVMTierPlacement(t *testing.T) {
	pm := testPM()
	pa, err := pm.AllocFrames(0, TierNVM)
	if err != nil {
		t.Fatal(err)
	}
	if pm.TierOf(pa) != TierNVM {
		t.Errorf("NVM frame %v classified as %v", pa, pm.TierOf(pa))
	}
	if uint64(pa) < 64<<20 {
		t.Errorf("NVM frame %v below DRAM boundary", pa)
	}
}

func TestExhaustion(t *testing.T) {
	pm := New(Config{DRAMSize: 4 * arch.PageSize})
	var got []arch.PhysAddr
	for {
		pa, err := pm.AllocPage()
		if err != nil {
			break
		}
		got = append(got, pa)
	}
	if len(got) != 4 {
		t.Fatalf("allocated %d frames from 4-frame memory", len(got))
	}
	if pm.Stats().FailedAllocs != 1 {
		t.Errorf("FailedAllocs = %d, want 1", pm.Stats().FailedAllocs)
	}
	for _, pa := range got {
		if err := pm.Free(pa, 0); err != nil {
			t.Fatal(err)
		}
	}
	if free := pm.FreeBytes(TierDRAM); free != 4*arch.PageSize {
		t.Errorf("FreeBytes after release = %d", free)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocPage()
	if err := pm.Free(pa, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.Free(pa, 0); err == nil {
		t.Error("double free not rejected")
	}
}

func TestFreeOrderMismatchRejected(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocFrames(2, TierDRAM)
	if err := pm.Free(pa, 1); err == nil {
		t.Error("order-mismatched free not rejected")
	}
	if err := pm.Free(pa, 2); err != nil {
		t.Error(err)
	}
}

func TestCoalescing(t *testing.T) {
	pm := New(Config{DRAMSize: 1 << 20}) // 256 frames
	// Fragment completely, then free everything; a full-size block must be
	// allocatable again, proving buddies re-coalesced.
	var all []arch.PhysAddr
	for {
		pa, err := pm.AllocPage()
		if err != nil {
			break
		}
		all = append(all, pa)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, pa := range all {
		if err := pm.Free(pa, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pm.AllocFrames(8, TierDRAM); err != nil { // 256 frames
		t.Errorf("memory did not coalesce: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocFrames(1, TierDRAM) // 2 frames so we can cross a boundary
	msg := []byte("spacejmp crossing a frame boundary")
	off := arch.PhysAddr(uint64(pa) + arch.PageSize - 10)
	if err := pm.WriteAt(off, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := pm.ReadAt(off, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("read back %q", got)
	}
}

func TestFreshFramesReadZero(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocPage()
	buf := make([]byte, arch.PageSize)
	if err := pm.ReadAt(pa, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh frame byte %d = %#x", i, b)
		}
	}
}

func TestLoadStore64(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocPage()
	if err := pm.Store64(pa+8, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := pm.Load64(pa + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFEF00D {
		t.Errorf("Load64 = %#x", v)
	}
	if _, err := pm.Load64(pa + 3); err == nil {
		t.Error("unaligned Load64 not rejected")
	}
	if err := pm.Store64(pa+3, 1); err == nil {
		t.Error("unaligned Store64 not rejected")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	pm := New(Config{DRAMSize: arch.PageSize})
	if err := pm.WriteAt(arch.PhysAddr(arch.PageSize-4), make([]byte, 8)); err == nil {
		t.Error("overflowing write not rejected")
	}
	if _, err := pm.Load64(arch.PhysAddr(arch.PageSize)); err == nil {
		t.Error("out-of-range Load64 not rejected")
	}
}

func TestZero(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocFrames(1, TierDRAM)
	buf := make([]byte, 2*arch.PageSize)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := pm.WriteAt(pa, buf); err != nil {
		t.Fatal(err)
	}
	if err := pm.Zero(arch.PhysAddr(uint64(pa)+100), arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReadAt(pa, buf); err != nil {
		t.Fatal(err)
	}
	if buf[99] != 0xFF || buf[100] != 0 || buf[100+arch.PageSize-1] != 0 || buf[100+arch.PageSize] != 0xFF {
		t.Error("Zero cleared wrong range")
	}
}

func TestPowerCycle(t *testing.T) {
	pm := testPM()
	dram, _ := pm.AllocPage()
	nvm, _ := pm.AllocFrames(0, TierNVM)
	if err := pm.WriteAt(dram, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteAt(nvm, []byte{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	pm.PowerCycle()
	buf := make([]byte, 3)
	if err := pm.ReadAt(nvm, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 4 || buf[1] != 5 || buf[2] != 6 {
		t.Errorf("NVM content lost across power cycle: %v", buf)
	}
	// DRAM allocations were reset: the same frame is allocatable again and
	// reads as zero.
	if free := pm.FreeBytes(TierDRAM); free != 64<<20 {
		t.Errorf("DRAM not fully reclaimed: %d free", free)
	}
	if err := pm.ReadAt(dram, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("DRAM content survived power cycle")
	}
}

func TestStatsAccounting(t *testing.T) {
	pm := testPM()
	pa, _ := pm.AllocFrames(3, TierDRAM)
	st := pm.Stats()
	if st.AllocatedBytes != 8*arch.PageSize {
		t.Errorf("AllocatedBytes = %d", st.AllocatedBytes)
	}
	if err := pm.Free(pa, 3); err != nil {
		t.Fatal(err)
	}
	st = pm.Stats()
	if st.AllocatedBytes != 0 || st.PeakBytes != 8*arch.PageSize {
		t.Errorf("after free: allocated=%d peak=%d", st.AllocatedBytes, st.PeakBytes)
	}
}

// Property: any interleaving of allocs and frees never hands out
// overlapping blocks, and freeing everything restores the full capacity.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := New(Config{DRAMSize: 4 << 20}) // 1024 frames
		type blk struct {
			pa    arch.PhysAddr
			order int
		}
		var live []blk
		owned := make(map[uint64]bool) // PFN -> owned
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				order := rng.Intn(6)
				pa, err := pm.AllocFrames(order, TierDRAM)
				if err != nil {
					continue
				}
				base := uint64(pa) / arch.PageSize
				for i := uint64(0); i < 1<<order; i++ {
					if owned[base+i] {
						return false // overlap!
					}
					owned[base+i] = true
				}
				live = append(live, blk{pa, order})
			} else {
				i := rng.Intn(len(live))
				b := live[i]
				if pm.Free(b.pa, b.order) != nil {
					return false
				}
				base := uint64(b.pa) / arch.PageSize
				for j := uint64(0); j < 1<<b.order; j++ {
					delete(owned, base+j)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, b := range live {
			if pm.Free(b.pa, b.order) != nil {
				return false
			}
		}
		return pm.FreeBytes(TierDRAM) == 4<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInjectedAllocFailure(t *testing.T) {
	pm := testPM()
	reg := fault.New(1)
	pm.SetFaults(reg)
	reg.Enable(fault.MemAlloc, fault.OnNth(2))
	if _, err := pm.AllocPage(); err != nil {
		t.Fatalf("first alloc (not yet armed hit): %v", err)
	}
	if _, err := pm.AllocPage(); err == nil {
		t.Fatal("second alloc survived injection")
	}
	if got := pm.Stats().FailedAllocs; got != 1 {
		t.Errorf("FailedAllocs = %d, want 1", got)
	}
	// The point fires once; allocation recovers and invariants hold.
	pa, err := pm.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := pm.Free(pa, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTornWriteWritesPrefixOnly(t *testing.T) {
	pm := testPM()
	reg := fault.New(1)
	pm.SetFaults(reg)
	pa, err := pm.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 64)
	for i := range full {
		full[i] = 0xAB
	}
	reg.Enable(fault.MemWriteTorn, fault.OnNth(1))
	if err := pm.WriteAt(pa, full); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write returned %v, want ErrTornWrite", err)
	}
	got := make([]byte, 64)
	if err := pm.ReadAt(pa, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0)
		if i < 32 {
			want = 0xAB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (half-write semantics)", i, b, want)
		}
	}
}

func TestCheckLeaksCatchesLeak(t *testing.T) {
	pm := testPM()
	if err := pm.CheckLeaks(0); err != nil {
		t.Fatalf("fresh allocator reported leak: %v", err)
	}
	pa, err := pm.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.CheckLeaks(0); err == nil {
		t.Error("outstanding page not reported as leak")
	}
	if err := pm.CheckLeaks(arch.PageSize); err != nil {
		t.Errorf("exact accounting rejected: %v", err)
	}
	if err := pm.Free(pa, 0); err != nil {
		t.Fatal(err)
	}
	if err := pm.CheckLeaks(0); err != nil {
		t.Errorf("after free: %v", err)
	}
}

func TestVerifyInvariantsUnderChurn(t *testing.T) {
	pm := New(Config{DRAMSize: 2 << 20})
	rng := rand.New(rand.NewSource(99))
	type block struct {
		pa    arch.PhysAddr
		order int
	}
	var live []block
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 && len(live) > 0 {
			j := rng.Intn(len(live))
			if err := pm.Free(live[j].pa, live[j].order); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		} else {
			order := rng.Intn(4)
			pa, err := pm.AllocFrames(order, TierDRAM)
			if err != nil {
				continue // exhaustion is fine; invariants still must hold
			}
			live = append(live, block{pa, order})
		}
		if i%50 == 0 {
			if err := pm.VerifyInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	var want uint64
	for _, b := range live {
		want += arch.PageSize << b.order
	}
	if err := pm.CheckLeaks(want); err != nil {
		t.Fatal(err)
	}
}
