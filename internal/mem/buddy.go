package mem

import (
	"fmt"
	"sort"
)

// buddy is a classic binary buddy allocator over frame numbers. Order 0 is a
// single 4 KiB frame; order k is a naturally aligned run of 2^k frames.
type buddy struct {
	base   uint64 // first PFN managed
	frames uint64 // number of frames managed

	// free[k] holds the base PFNs (relative to base) of free order-k
	// blocks. Sets give O(1) buddy lookup during coalescing.
	freeLists [MaxOrder + 1]map[uint64]struct{}

	// allocated tracks live blocks (relative base PFN -> order) so Free can
	// validate double-frees and mismatched orders.
	allocated map[uint64]int

	freeFrames uint64
}

func newBuddy(base, frames uint64) *buddy {
	b := &buddy{base: base, frames: frames, allocated: make(map[uint64]int)}
	for k := range b.freeLists {
		b.freeLists[k] = make(map[uint64]struct{})
	}
	// Seed the free lists greedily with the largest aligned blocks.
	pfn := uint64(0)
	for pfn < frames {
		k := MaxOrder
		for k > 0 && (pfn&(1<<k-1) != 0 || pfn+1<<k > frames) {
			k--
		}
		b.freeLists[k][pfn] = struct{}{}
		pfn += 1 << k
	}
	b.freeFrames = frames
	return b
}

// alloc returns the absolute base PFN of a free order-k block.
func (b *buddy) alloc(order int) (uint64, bool) {
	k := order
	for k <= MaxOrder && len(b.freeLists[k]) == 0 {
		k++
	}
	if k > MaxOrder {
		return 0, false
	}
	var blk uint64
	for blk = range b.freeLists[k] {
		break
	}
	delete(b.freeLists[k], blk)
	// Split down to the requested order, freeing the upper buddies.
	for k > order {
		k--
		b.freeLists[k][blk+1<<k] = struct{}{}
	}
	b.allocated[blk] = order
	b.freeFrames -= 1 << order
	return b.base + blk, true
}

// free releases the block at absolute PFN pfn with the given order,
// coalescing with free buddies.
func (b *buddy) free(pfn uint64, order int) error {
	if pfn < b.base || pfn-b.base >= b.frames {
		return fmt.Errorf("mem: free of PFN %d outside tier", pfn)
	}
	blk := pfn - b.base
	got, ok := b.allocated[blk]
	if !ok {
		return fmt.Errorf("mem: double free or bad base PFN %d", pfn)
	}
	if got != order {
		return fmt.Errorf("mem: free order %d mismatches allocation order %d", order, got)
	}
	delete(b.allocated, blk)
	b.freeFrames += 1 << order
	k := order
	for k < MaxOrder {
		bud := blk ^ (1 << k)
		if _, ok := b.freeLists[k][bud]; !ok {
			break
		}
		delete(b.freeLists[k], bud)
		if bud < blk {
			blk = bud
		}
		k++
	}
	b.freeLists[k][blk] = struct{}{}
	return nil
}

// check verifies the allocator's structural invariants: every free-list and
// allocated block is naturally aligned and in range, blocks do not overlap,
// free+allocated blocks tile the tier exactly, and freeFrames matches the
// free lists.
func (b *buddy) check() error {
	type blk struct {
		start uint64
		size  uint64
	}
	var blocks []blk
	var free uint64
	for k, list := range b.freeLists {
		for start := range list {
			if start&(1<<k-1) != 0 {
				return fmt.Errorf("buddy: free order-%d block at %d misaligned", k, start)
			}
			blocks = append(blocks, blk{start, 1 << k})
			free += 1 << k
		}
	}
	if free != b.freeFrames {
		return fmt.Errorf("buddy: freeFrames %d, free lists hold %d", b.freeFrames, free)
	}
	for start, order := range b.allocated {
		if start&(1<<order-1) != 0 {
			return fmt.Errorf("buddy: allocated order-%d block at %d misaligned", order, start)
		}
		blocks = append(blocks, blk{start, 1 << order})
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].start < blocks[j].start })
	next := uint64(0)
	for _, bl := range blocks {
		if bl.start != next {
			return fmt.Errorf("buddy: gap or overlap at frame %d (expected %d)", bl.start, next)
		}
		next = bl.start + bl.size
	}
	if next != b.frames {
		return fmt.Errorf("buddy: blocks cover %d of %d frames", next, b.frames)
	}
	return nil
}

// reset frees every live allocation and returns how many frames it released.
func (b *buddy) reset() uint64 {
	var released uint64
	for blk, order := range b.allocated {
		released += 1 << order
		// Reuse free() for coalescing; it cannot fail for a live block.
		if err := b.free(b.base+blk, order); err != nil {
			panic("mem: reset: " + err.Error())
		}
	}
	return released
}
