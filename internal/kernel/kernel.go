// Package kernel implements the DragonFly BSD personality of SpaceJMP
// (paper §4.1): VAS and segment management live in the kernel, reached
// through system calls, with access control via Unix-style modes and ACLs.
//
// The cycle constants reproduce the DragonFly column of Table 2: a system
// call costs 357 cycles, and a vas_switch totals 1127 cycles untagged or
// 807 cycles tagged once the CR3 write (130/224 cycles, charged by the
// hardware model) is added to syscall entry and kernel bookkeeping.
package kernel

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
)

// Table 2 calibration (DragonFly BSD on M2, cycles).
const (
	// SyscallCycles is the cost of entering and leaving the kernel.
	SyscallCycles = 357
	// bookkeeping = vas_switch total - syscall - CR3 load.
	bookkeepingTagged   = 807 - SyscallCycles - 224
	bookkeepingUntagged = 1127 - SyscallCycles - 130
)

// ACL is a DragonFly-style access control record: Unix owner/group/other
// mode bits plus explicit per-UID entries, the mechanism the paper uses to
// restrict access to segments and address spaces (§3.2).
type ACL struct {
	mu      sync.Mutex
	Owner   core.Creds
	Mode    uint16 // e.g. 0o640
	entries map[uint32]arch.Perm
}

// NewACL builds an ACL from an owner and mode bits.
func NewACL(owner core.Creds, mode uint16) *ACL {
	return &ACL{Owner: owner, Mode: mode, entries: map[uint32]arch.Perm{}}
}

// Grant adds an explicit per-UID entry.
func (a *ACL) Grant(uid uint32, perm arch.Perm) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries[uid] = perm
}

// Revoke removes a per-UID entry.
func (a *ACL) Revoke(uid uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.entries, uid)
}

// modePerm converts a 3-bit rwx mode group to permissions.
func modePerm(bits uint16) arch.Perm {
	var p arch.Perm
	if bits&4 != 0 {
		p |= arch.PermRead
	}
	if bits&2 != 0 {
		p |= arch.PermWrite
	}
	if bits&1 != 0 {
		p |= arch.PermExec
	}
	return p
}

// Check authorizes creds for the wanted permissions.
func (a *ACL) Check(creds core.Creds, want arch.Perm) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var granted arch.Perm
	switch {
	case creds.UID == a.Owner.UID:
		granted = modePerm(a.Mode >> 6)
	case creds.GID == a.Owner.GID:
		granted = modePerm(a.Mode >> 3)
	default:
		granted = modePerm(a.Mode)
	}
	if extra, ok := a.entries[creds.UID]; ok {
		granted |= extra
	}
	if !granted.Allows(want) {
		return fmt.Errorf("%w: uid %d wants %v, granted %v", core.ErrDenied, creds.UID, want, granted)
	}
	return nil
}

// Personality is the DragonFly BSD OS personality.
type Personality struct{}

var _ core.Personality = Personality{}

// Name identifies the personality.
func (Personality) Name() string { return "dragonfly" }

// ControlCycles is the syscall cost for management operations.
func (Personality) ControlCycles() uint64 { return SyscallCycles }

// SwitchCycles is the syscall cost of vas_switch.
func (Personality) SwitchCycles() uint64 { return SyscallCycles }

// SwitchBookkeeping is the in-kernel work of a switch: vmspace lookup and
// lock management, which costs more untagged because the kernel's own
// translations were flushed (Table 2).
func (Personality) SwitchBookkeeping(tagged bool) uint64 {
	if tagged {
		return bookkeepingTagged
	}
	return bookkeepingUntagged
}

// CheckVAS consults the VAS's ACL.
func (Personality) CheckVAS(creds core.Creds, v *core.VAS, want arch.Perm) error {
	acl, ok := v.Security.(*ACL)
	if !ok {
		return fmt.Errorf("%w: vas %q has no ACL", core.ErrDenied, v.Name)
	}
	return acl.Check(creds, want)
}

// CheckSeg consults the segment's ACL.
func (Personality) CheckSeg(creds core.Creds, s *core.Segment, want arch.Perm) error {
	acl, ok := s.Security.(*ACL)
	if !ok {
		return fmt.Errorf("%w: segment %q has no ACL", core.ErrDenied, s.Name)
	}
	return acl.Check(creds, want)
}

// VASCreated attaches an ACL built from the creation mode.
func (Personality) VASCreated(creds core.Creds, v *core.VAS) {
	v.Security = NewACL(creds, v.Mode)
}

// SegCreated attaches an ACL. Segments inherit a permissive owner mode and
// group read-write, refined via VASCtl/ACL grants.
func (Personality) SegCreated(creds core.Creds, s *core.Segment) {
	s.Security = NewACL(creds, 0o660)
}

// New boots a SpaceJMP system with the DragonFly personality on machine m.
func New(m *hw.Machine) *core.System {
	return core.NewSystem(m, Personality{})
}
