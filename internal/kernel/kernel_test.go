package kernel

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
)

func TestACLModeBits(t *testing.T) {
	owner := core.Creds{UID: 100, GID: 10}
	acl := NewACL(owner, 0o640)
	cases := []struct {
		name  string
		creds core.Creds
		want  arch.Perm
		ok    bool
	}{
		{"owner rw", owner, arch.PermRW, true},
		{"owner exec", owner, arch.PermExec, false},
		{"group read", core.Creds{UID: 200, GID: 10}, arch.PermRead, true},
		{"group write", core.Creds{UID: 200, GID: 10}, arch.PermWrite, false},
		{"other read", core.Creds{UID: 300, GID: 30}, arch.PermRead, false},
	}
	for _, c := range cases {
		err := acl.Check(c.creds, c.want)
		if c.ok && err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: allowed", c.name)
		}
	}
}

func TestACLGrantRevoke(t *testing.T) {
	acl := NewACL(core.Creds{UID: 100, GID: 10}, 0o600)
	stranger := core.Creds{UID: 300, GID: 30}
	if acl.Check(stranger, arch.PermRead) == nil {
		t.Fatal("stranger allowed before grant")
	}
	acl.Grant(300, arch.PermRead)
	if err := acl.Check(stranger, arch.PermRead); err != nil {
		t.Fatalf("after grant: %v", err)
	}
	if acl.Check(stranger, arch.PermWrite) == nil {
		t.Error("grant over-approximated")
	}
	acl.Revoke(300)
	if acl.Check(stranger, arch.PermRead) == nil {
		t.Error("revoke ineffective")
	}
}

func TestTable2DragonFlyCalibration(t *testing.T) {
	p := Personality{}
	// vas_switch total = syscall + bookkeeping + CR3 load (Table 2, M2).
	untagged := p.SwitchCycles() + p.SwitchBookkeeping(false) + hw.DefaultCost.CR3Load
	tagged := p.SwitchCycles() + p.SwitchBookkeeping(true) + hw.DefaultCost.CR3LoadTagged
	if untagged != 1127 {
		t.Errorf("untagged vas_switch = %d cycles, Table 2 says 1127", untagged)
	}
	if tagged != 807 {
		t.Errorf("tagged vas_switch = %d cycles, Table 2 says 807", tagged)
	}
	if p.ControlCycles() != 357 {
		t.Errorf("syscall = %d, Table 2 says 357", p.ControlCycles())
	}
}

func TestEndToEndACLEnforcement(t *testing.T) {
	sys := New(hw.NewMachine(hw.SmallTest()))
	owner, err := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	if err != nil {
		t.Fatal(err)
	}
	ot, err := owner.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	// Mode 0o600: owner-only.
	vid, err := ot.VASCreate("private", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ot.VASAttach(vid); err != nil {
		t.Fatalf("owner attach: %v", err)
	}

	otherProc, err := sys.NewProcess(core.Creds{UID: 300, GID: 30})
	if err != nil {
		t.Fatal(err)
	}
	other, err := otherProc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.VASAttach(vid); !errors.Is(err, core.ErrDenied) {
		t.Errorf("stranger attach to 0600 VAS: %v", err)
	}

	// Group-readable VAS admits a group member.
	gvid, err := ot.VASCreate("groupshare", 0o660)
	if err != nil {
		t.Fatal(err)
	}
	mateProc, err := sys.NewProcess(core.Creds{UID: 200, GID: 10})
	if err != nil {
		t.Fatal(err)
	}
	mate, err := mateProc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mate.VASAttach(gvid); err != nil {
		t.Errorf("group member attach: %v", err)
	}
}

func TestSegmentACLOnAttach(t *testing.T) {
	sys := New(hw.NewMachine(hw.SmallTest()))
	p1, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	t1, _ := p1.NewThread()
	vid, _ := t1.VASCreate("v", 0o666)
	sid, err := t1.SegAlloc("s", core.GlobalBase, 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// Stranger may not attach the owner's segment into a VAS (segment ACL
	// is 0660 and stranger is not in the group).
	p2, _ := sys.NewProcess(core.Creds{UID: 999, GID: 999})
	t2, _ := p2.NewThread()
	if err := t2.SegAttachVAS(vid, sid, arch.PermRW); !errors.Is(err, core.ErrDenied) {
		t.Errorf("stranger seg_attach: %v", err)
	}
	// The owner grants the stranger read access explicitly via ACL.
	seg := segOf(t, sys, t1, "s")
	seg.Security.(*ACL).Grant(999, arch.PermRead)
	if err := t2.SegAttachVAS(vid, sid, arch.PermRead); err != nil {
		t.Errorf("granted read attach: %v", err)
	}
}

func segOf(t *testing.T, sys *core.System, th *core.Thread, name string) *core.Segment {
	t.Helper()
	sid, err := th.SegFind(name)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := sys.SegByID(sid)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestSwitchCostEndToEnd(t *testing.T) {
	sys := New(hw.NewMachine(hw.SmallTest()))
	p, _ := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	th, _ := p.NewThread()
	vid, _ := th.VASCreate("v", 0o600)
	h, _ := th.VASAttach(vid)
	before := th.Core.Cycles()
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if got := th.Core.Cycles() - before; got != 1127 {
		t.Errorf("end-to-end untagged vas_switch = %d cycles, want 1127", got)
	}
}
