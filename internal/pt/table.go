package pt

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
	"spacejmp/internal/stats"
)

// Stats counts page-table activity, used by the Figure 1 reproduction.
// WalkRefs accumulates the table nodes the hardware walker referenced
// across all walks — the paper's "page-table nodes touched" metric.
type Stats struct {
	TablesAllocated uint64
	TablesFreed     uint64
	EntriesSet      uint64
	EntriesCleared  uint64
	Walks           uint64
	WalkRefs        uint64
}

// Table is one address space's translation structure: a root (PML4) frame
// plus the intermediate tables it owns. Tables reached through linked
// subtrees (segment translation caches, Barrelfish shared page tables) are
// not owned and are neither descended into for teardown nor freed.
type Table struct {
	pm    *mem.PhysMem
	root  arch.PhysAddr
	owned map[arch.PhysAddr]struct{}
	stats Stats
	obs   *stats.PTCounters // optional machine-wide counters (nil = off)
}

// New allocates an empty page table.
func New(pm *mem.PhysMem) (*Table, error) {
	root, err := pm.AllocPage()
	if err != nil {
		return nil, fmt.Errorf("pt: allocating root: %w", err)
	}
	t := &Table{pm: pm, root: root, owned: map[arch.PhysAddr]struct{}{root: {}}}
	t.stats.TablesAllocated++
	return t, nil
}

// SetObserver mirrors this table's subsequent activity into the machine-wide
// page-table counters (stats.Sink.PT). A nil observer disables mirroring;
// activity before the call is not backfilled.
func (t *Table) SetObserver(o *stats.PTCounters) { t.obs = o }

// Root returns the physical address of the root table — the value a core
// loads into CR3 to activate this address space.
func (t *Table) Root() arch.PhysAddr { return t.root }

// Stats returns a snapshot of the table's activity counters.
func (t *Table) Stats() Stats { return t.stats }

// OwnedTables returns the number of table nodes this Table owns.
func (t *Table) OwnedTables() int { return len(t.owned) }

func (t *Table) load(table arch.PhysAddr, idx uint64) PTE {
	v, err := t.pm.Load64(table + arch.PhysAddr(idx*8))
	if err != nil {
		panic("pt: table frame vanished: " + err.Error())
	}
	return PTE(v)
}

func (t *Table) store(table arch.PhysAddr, idx uint64, e PTE) {
	if err := t.pm.Store64(table+arch.PhysAddr(idx*8), uint64(e)); err != nil {
		panic("pt: table frame vanished: " + err.Error())
	}
}

func (t *Table) allocTable() (arch.PhysAddr, error) {
	pa, err := t.pm.AllocPage()
	if err != nil {
		return 0, fmt.Errorf("pt: allocating table: %w", err)
	}
	t.owned[pa] = struct{}{}
	t.stats.TablesAllocated++
	t.obs.TableAllocated()
	return pa, nil
}

// ensurePath walks from the root down to (but not including) leafLevel,
// allocating intermediate tables as needed, and returns the physical address
// of the table at leafLevel.
func (t *Table) ensurePath(va arch.VirtAddr, leafLevel int) (arch.PhysAddr, error) {
	table := t.root
	for level := arch.PTLevels - 1; level > leafLevel; level-- {
		idx := va.Index(level)
		e := t.load(table, idx)
		if !e.Present() {
			child, err := t.allocTable()
			if err != nil {
				return 0, err
			}
			t.store(table, idx, makeTablePTE(child))
			t.stats.EntriesSet++
			t.obs.EntrySet()
			table = child
			continue
		}
		if e.Huge() {
			return 0, fmt.Errorf("pt: %v already mapped by a level-%d large page", va, level)
		}
		table = e.Addr()
	}
	return table, nil
}

// MapPage installs a single translation va -> pa of the given page size.
// Both addresses must be aligned to pageSize. Mapping over an existing
// translation is an error: unlike Linux mmap (paper §2.4), the simulator
// refuses to silently overwrite.
func (t *Table) MapPage(va arch.VirtAddr, pa arch.PhysAddr, pageSize uint64, perm arch.Perm, global bool) error {
	ll, err := leafLevel(pageSize)
	if err != nil {
		return err
	}
	if uint64(va)%pageSize != 0 || uint64(pa)%pageSize != 0 {
		return fmt.Errorf("pt: map %v -> %v not aligned to %d", va, pa, pageSize)
	}
	if !va.Canonical() {
		return fmt.Errorf("pt: non-canonical %v", va)
	}
	table, err := t.ensurePath(va, ll)
	if err != nil {
		return err
	}
	idx := va.Index(ll)
	if t.load(table, idx).Present() {
		return fmt.Errorf("pt: %v already mapped", va)
	}
	var extra PTE
	if ll > 0 {
		extra |= FlagHuge
	}
	if global {
		extra |= FlagGlobal
	}
	t.store(table, idx, MakePTE(pa, perm, extra))
	t.stats.EntriesSet++
	t.obs.EntrySet()
	return nil
}

// Map installs translations for size bytes starting at va, backed by
// contiguous physical memory starting at pa, using pages of pageSize.
func (t *Table) Map(va arch.VirtAddr, pa arch.PhysAddr, size, pageSize uint64, perm arch.Perm, global bool) error {
	if size%pageSize != 0 {
		return fmt.Errorf("pt: map size %d not a multiple of page size %d", size, pageSize)
	}
	for off := uint64(0); off < size; off += pageSize {
		if err := t.MapPage(va+arch.VirtAddr(off), pa+arch.PhysAddr(off), pageSize, perm, global); err != nil {
			return err
		}
	}
	return nil
}

// WalkResult is the outcome of a successful page-table walk.
type WalkResult struct {
	PA       arch.PhysAddr // translation of the queried address
	Perm     arch.Perm     // leaf permissions
	PageSize uint64        // size of the mapping's page
	Global   bool          // leaf has the global bit set
	Refs     int           // memory references the hardware walker issued
}

// Walk translates va. On failure the returned WalkResult still carries the
// number of walker references issued, so the MMU can charge miss cycles.
func (t *Table) Walk(va arch.VirtAddr) (WalkResult, error) {
	t.stats.Walks++
	var r WalkResult
	defer func() {
		t.stats.WalkRefs += uint64(r.Refs)
		t.obs.Walk(r.Refs)
	}()
	table := t.root
	for level := arch.PTLevels - 1; level >= 0; level-- {
		r.Refs++
		e := t.load(table, va.Index(level))
		if !e.Present() {
			return r, &NotMappedError{VA: va, Level: level}
		}
		if level == 0 || e.Huge() {
			r.PageSize = arch.LevelCoverage(level)
			r.PA = e.Addr() + arch.PhysAddr(uint64(va)%r.PageSize)
			r.Perm = e.Perm()
			r.Global = e.Global()
			return r, nil
		}
		table = e.Addr()
	}
	panic("pt: unreachable")
}

// NotMappedError reports a translation failure — the simulator's page fault.
type NotMappedError struct {
	VA    arch.VirtAddr
	Level int
}

func (e *NotMappedError) Error() string {
	return fmt.Sprintf("pt: %v not mapped (miss at level %d)", e.VA, e.Level)
}

// Protect changes the permissions of every mapping in [va, va+size). All
// pages in the range must be mapped.
func (t *Table) Protect(va arch.VirtAddr, size uint64, perm arch.Perm) error {
	end := uint64(va) + size
	for cur := uint64(va); cur < end; {
		table, level, err := t.leafFor(arch.VirtAddr(cur))
		if err != nil {
			return err
		}
		idx := arch.VirtAddr(cur).Index(level)
		e := t.load(table, idx)
		t.store(table, idx, MakePTE(e.Addr(), perm, e&(FlagHuge|FlagGlobal)))
		cur += arch.LevelCoverage(level)
	}
	return nil
}

// leafFor returns the table and level holding the leaf entry for va.
func (t *Table) leafFor(va arch.VirtAddr) (arch.PhysAddr, int, error) {
	table := t.root
	for level := arch.PTLevels - 1; level >= 0; level-- {
		e := t.load(table, va.Index(level))
		if !e.Present() {
			return 0, 0, &NotMappedError{VA: va, Level: level}
		}
		if level == 0 || e.Huge() {
			return table, level, nil
		}
		table = e.Addr()
	}
	panic("pt: unreachable")
}

// Unmap removes every translation inside [va, va+size) and frees owned
// table nodes that become empty. Large pages must be unmapped whole.
func (t *Table) Unmap(va arch.VirtAddr, size uint64) error {
	if size == 0 {
		return nil
	}
	_, err := t.unmapLevel(t.root, arch.PTLevels-1, 0, uint64(va), uint64(va)+size)
	return err
}

// unmapLevel clears the range [lo, hi) within the table at tablePA, whose
// entry i covers [base + i*cover, base + (i+1)*cover). Returns whether the
// table ended up empty.
func (t *Table) unmapLevel(tablePA arch.PhysAddr, level int, base, lo, hi uint64) (bool, error) {
	cover := arch.LevelCoverage(level)
	first := uint64(0)
	if lo > base {
		first = (lo - base) / cover
	}
	for i := first; i < arch.PTEntries; i++ {
		entryBase := base + i*cover
		if entryBase >= hi {
			break
		}
		e := t.load(tablePA, i)
		if !e.Present() {
			continue
		}
		if level == 0 || e.Huge() {
			if entryBase < lo || entryBase+cover > hi {
				return false, fmt.Errorf("pt: partial unmap of %d-byte page at va:%#x", cover, entryBase)
			}
			t.store(tablePA, i, 0)
			t.stats.EntriesCleared++
			continue
		}
		child := e.Addr()
		if _, ours := t.owned[child]; !ours {
			// Linked subtree (shared translation cache): detach only if the
			// range covers the whole entry; never descend into it.
			if entryBase >= lo && entryBase+cover <= hi {
				t.store(tablePA, i, 0)
				t.stats.EntriesCleared++
			}
			continue
		}
		empty, err := t.unmapLevel(child, level-1, entryBase, lo, hi)
		if err != nil {
			return false, err
		}
		if empty {
			t.store(tablePA, i, 0)
			t.stats.EntriesCleared++
			t.freeTable(child)
		}
	}
	return t.tableEmpty(tablePA), nil
}

func (t *Table) tableEmpty(tablePA arch.PhysAddr) bool {
	for i := uint64(0); i < arch.PTEntries; i++ {
		if t.load(tablePA, i).Present() {
			return false
		}
	}
	return true
}

func (t *Table) freeTable(pa arch.PhysAddr) {
	delete(t.owned, pa)
	if err := t.pm.Free(pa, 0); err != nil {
		panic("pt: freeing table: " + err.Error())
	}
	t.stats.TablesFreed++
	t.obs.TableFreed()
}

// LinkSubtree installs an entry at the given level pointing to an externally
// owned table subtree (a segment's cached translations, or another address
// space's shared tables). va must be aligned to the coverage of one entry at
// that level. level is the level of the entry (e.g. 3 links a PDPT into the
// PML4; 2 links a PD into a PDPT).
func (t *Table) LinkSubtree(va arch.VirtAddr, level int, subtree arch.PhysAddr) error {
	if level < 1 || level >= arch.PTLevels {
		return fmt.Errorf("pt: cannot link at level %d", level)
	}
	if uint64(va)%arch.LevelCoverage(level) != 0 {
		return fmt.Errorf("pt: %v not aligned for level-%d link", va, level)
	}
	table, err := t.ensurePath(va, level)
	if err != nil {
		return err
	}
	idx := va.Index(level)
	if t.load(table, idx).Present() {
		return fmt.Errorf("pt: %v already mapped; cannot link subtree", va)
	}
	t.store(table, idx, makeTablePTE(subtree))
	t.stats.EntriesSet++
	t.obs.EntrySet()
	return nil
}

// UnlinkSubtree removes an entry installed by LinkSubtree without touching
// the subtree itself.
func (t *Table) UnlinkSubtree(va arch.VirtAddr, level int) error {
	table := t.root
	for l := arch.PTLevels - 1; l > level; l-- {
		e := t.load(table, va.Index(l))
		if !e.Present() || e.Huge() {
			return fmt.Errorf("pt: no subtree linked at %v", va)
		}
		table = e.Addr()
	}
	idx := va.Index(level)
	e := t.load(table, idx)
	if !e.Present() {
		return fmt.Errorf("pt: no subtree linked at %v", va)
	}
	if _, ours := t.owned[e.Addr()]; ours {
		return fmt.Errorf("pt: entry at %v is an owned table, not a linked subtree", va)
	}
	t.store(table, idx, 0)
	t.stats.EntriesCleared++
	t.obs.EntryCleared()
	return nil
}

// Destroy frees every table node this Table owns. Linked subtrees are left
// intact. The Table must not be used afterwards.
func (t *Table) Destroy() {
	for pa := range t.owned {
		delete(t.owned, pa)
		if err := t.pm.Free(pa, 0); err != nil {
			panic("pt: destroy: " + err.Error())
		}
		t.stats.TablesFreed++
		t.obs.TableFreed()
	}
}
