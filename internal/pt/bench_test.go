package pt

import (
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
)

func BenchmarkMapPage(b *testing.B) {
	pm := mem.New(mem.Config{DRAMSize: 2 << 30})
	tbl, err := New(pm)
	if err != nil {
		b.Fatal(err)
	}
	frame, _ := pm.AllocPage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(uint64(i+1) * arch.PageSize)
		if err := tbl.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	tbl, _ := New(pm)
	frame, _ := pm.AllocPage()
	const pages = 1024
	for i := 0; i < pages; i++ {
		if err := tbl.MapPage(arch.VirtAddr(uint64(i)*arch.PageSize), frame, arch.PageSize, arch.PermRW, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Walk(arch.VirtAddr(uint64(i%pages) * arch.PageSize)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapUnmapRegion(b *testing.B) {
	pm := mem.New(mem.Config{DRAMSize: 2 << 30})
	tbl, _ := New(pm)
	frames, _ := pm.AllocFrames(10, mem.TierDRAM) // 4 MiB contiguous
	const size = 4 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Map(0x40000000, frames, size, arch.PageSize, arch.PermRW, false); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Unmap(0x40000000, size); err != nil {
			b.Fatal(err)
		}
	}
}
