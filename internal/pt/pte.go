// Package pt implements x86-64-style four-level radix page tables over the
// simulated physical memory. Table nodes are real 4 KiB frames allocated
// from mem.PhysMem and entries are read and written through physical loads
// and stores, so the cost of constructing, walking, and destroying
// translations has the same shape as on hardware (paper Figure 1, §2.4).
package pt

import (
	"fmt"

	"spacejmp/internal/arch"
)

// PTE is a page-table entry in the x86-64 layout: low flag bits, a 40-bit
// frame number, and the NX bit at position 63.
type PTE uint64

// PTE flag bits (x86-64 encoding).
const (
	FlagPresent PTE = 1 << 0
	FlagWrite   PTE = 1 << 1
	FlagUser    PTE = 1 << 2
	FlagHuge    PTE = 1 << 7 // PS: entry maps a large page (PD/PDPT level)
	FlagGlobal  PTE = 1 << 8 // survives non-tagged TLB flushes
	FlagNX      PTE = 1 << 63

	addrMask PTE = 0x000F_FFFF_FFFF_F000
)

// MakePTE builds a leaf entry mapping pa with the given permissions.
func MakePTE(pa arch.PhysAddr, perm arch.Perm, extra PTE) PTE {
	e := PTE(pa)&addrMask | FlagPresent | FlagUser | extra
	if perm.CanWrite() {
		e |= FlagWrite
	}
	if !perm.CanExec() {
		e |= FlagNX
	}
	return e
}

// makeTablePTE builds a non-leaf entry pointing at a child table. Non-leaf
// entries are maximally permissive; leaves carry the effective permissions.
func makeTablePTE(pa arch.PhysAddr) PTE {
	return PTE(pa)&addrMask | FlagPresent | FlagWrite | FlagUser
}

// Present reports whether the entry is valid.
func (e PTE) Present() bool { return e&FlagPresent != 0 }

// Huge reports whether the entry maps a large page rather than a child table.
func (e PTE) Huge() bool { return e&FlagHuge != 0 }

// Global reports whether the translation survives untagged TLB flushes.
func (e PTE) Global() bool { return e&FlagGlobal != 0 }

// Addr returns the physical address the entry points at (child table for
// non-leaf entries, mapped frame for leaves).
func (e PTE) Addr() arch.PhysAddr { return arch.PhysAddr(e & addrMask) }

// Perm decodes the effective permissions of a leaf entry.
func (e PTE) Perm() arch.Perm {
	if !e.Present() {
		return 0
	}
	p := arch.PermRead
	if e&FlagWrite != 0 {
		p |= arch.PermWrite
	}
	if e&FlagNX == 0 {
		p |= arch.PermExec
	}
	return p
}

func (e PTE) String() string {
	if !e.Present() {
		return "pte:<absent>"
	}
	s := fmt.Sprintf("pte:%v %v", e.Addr(), e.Perm())
	if e.Huge() {
		s += " huge"
	}
	if e.Global() {
		s += " global"
	}
	return s
}

// leafLevel returns the table level at which a page of the given size is
// mapped: 0 (PT) for 4 KiB, 1 (PD) for 2 MiB, 2 (PDPT) for 1 GiB.
func leafLevel(pageSize uint64) (int, error) {
	switch pageSize {
	case arch.PageSize:
		return 0, nil
	case arch.HugePageSize:
		return 1, nil
	case arch.GiantPageSize:
		return 2, nil
	default:
		return 0, fmt.Errorf("pt: unsupported page size %d", pageSize)
	}
}

// TablesFor returns how many page-table nodes (including the root) are
// needed to map a region of the given size at base va with 4 KiB pages.
// This is the analytical counterpart of the paper's observation that an
// 8 KiB segment spanning a PML4 boundary needs 7 tables (§4.4).
func TablesFor(va arch.VirtAddr, size uint64) int {
	if size == 0 {
		return 0
	}
	total := 1 // root
	for level := 2; level >= 0; level-- {
		cover := arch.LevelCoverage(level + 1) // bytes covered per table at this level
		first := uint64(va) / cover
		last := (uint64(va) + size - 1) / cover
		total += int(last - first + 1)
	}
	return total
}
