package pt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
)

func testTable(t *testing.T) (*Table, *mem.PhysMem) {
	t.Helper()
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	tbl, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, pm
}

func TestMapWalkRoundTrip(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	va := arch.VirtAddr(0xC0DE000)
	if err := tbl.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Walk(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if r.PA != frame+0x123 {
		t.Errorf("walk pa = %v, want %v", r.PA, frame+0x123)
	}
	if r.Perm != arch.PermRW {
		t.Errorf("walk perm = %v", r.Perm)
	}
	if r.PageSize != arch.PageSize {
		t.Errorf("walk page size = %d", r.PageSize)
	}
	if r.Refs != 4 {
		t.Errorf("4 KiB walk refs = %d, want 4", r.Refs)
	}
}

func TestWalkUnmapped(t *testing.T) {
	tbl, _ := testTable(t)
	_, err := tbl.Walk(0xBAD000)
	var nm *NotMappedError
	if !errors.As(err, &nm) {
		t.Fatalf("want NotMappedError, got %v", err)
	}
	if nm.VA != 0xBAD000 {
		t.Errorf("fault va = %v", nm.VA)
	}
}

func TestHugePageMapping(t *testing.T) {
	tbl, pm := testTable(t)
	frames, err := pm.AllocFrames(9, mem.TierDRAM) // 2 MiB
	if err != nil {
		t.Fatal(err)
	}
	va := arch.VirtAddr(arch.HugePageSize * 5)
	if err := tbl.MapPage(va, frames, arch.HugePageSize, arch.PermRead, false); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Walk(va + 0x12345)
	if err != nil {
		t.Fatal(err)
	}
	if r.PageSize != arch.HugePageSize {
		t.Errorf("size = %d", r.PageSize)
	}
	if r.Refs != 3 {
		t.Errorf("2 MiB walk refs = %d, want 3", r.Refs)
	}
	if r.PA != frames+0x12345 {
		t.Errorf("pa = %v", r.PA)
	}
}

func TestMisalignedMapRejected(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1001, frame, arch.PageSize, arch.PermRW, false); err == nil {
		t.Error("misaligned va accepted")
	}
	if err := tbl.MapPage(0x200000, frame, arch.HugePageSize, arch.PermRW, false); err == nil {
		t.Error("misaligned pa for huge page accepted")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	tbl, pm := testTable(t)
	f1, _ := pm.AllocPage()
	f2, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, f1, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapPage(0x1000, f2, arch.PageSize, arch.PermRW, false); err == nil {
		t.Error("overlapping map accepted; the simulator must refuse, unlike legacy mmap")
	}
}

func TestNonCanonicalRejected(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(arch.VirtAddr(arch.VASize), frame, arch.PageSize, arch.PermRW, false); err == nil {
		t.Error("non-canonical va accepted")
	}
}

func TestTableAllocationCounts(t *testing.T) {
	tbl, pm := testTable(t)
	// Mapping one 4 KiB page from an empty root allocates PDPT, PD, PT.
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Stats().TablesAllocated; got != 4 { // root + 3
		t.Errorf("tables allocated = %d, want 4", got)
	}
	// A second page in the same PT allocates nothing.
	f2, _ := pm.AllocPage()
	if err := tbl.MapPage(0x2000, f2, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Stats().TablesAllocated; got != 4 {
		t.Errorf("tables allocated after 2nd page = %d, want 4", got)
	}
}

// The paper (§4.4) notes an 8 KiB segment straddling a PML4 boundary needs
// 7 page tables: one PML4, two each of PDPT, PD, PT.
func TestPML4BoundaryCost(t *testing.T) {
	boundary := arch.VirtAddr(arch.LevelCoverage(3)) // first byte of PML4 slot 1
	if got := TablesFor(boundary-arch.PageSize, 2*arch.PageSize); got != 7 {
		t.Errorf("TablesFor straddling PML4 boundary = %d, want 7", got)
	}
	if got := TablesFor(0x1000, 2*arch.PageSize); got != 4 {
		t.Errorf("TablesFor small aligned region = %d, want 4", got)
	}

	tbl, pm := testTable(t)
	f1, _ := pm.AllocPage()
	f2, _ := pm.AllocPage()
	if err := tbl.MapPage(boundary-arch.PageSize, f1, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapPage(boundary, f2, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Stats().TablesAllocated; got != 7 {
		t.Errorf("straddling 8 KiB segment allocated %d tables, want 7", got)
	}
}

func TestUnmapFreesEmptyTables(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x1000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Walk(0x1000); err == nil {
		t.Error("unmapped page still walks")
	}
	if got := tbl.Stats().TablesFreed; got != 3 {
		t.Errorf("tables freed = %d, want 3 (PDPT, PD, PT)", got)
	}
	if tbl.OwnedTables() != 1 {
		t.Errorf("owned tables = %d, want 1 (root)", tbl.OwnedTables())
	}
}

func TestUnmapKeepsNeighbours(t *testing.T) {
	tbl, pm := testTable(t)
	f1, _ := pm.AllocPage()
	f2, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, f1, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapPage(0x2000, f2, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x1000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Walk(0x2000); err != nil {
		t.Errorf("neighbour unmapped too: %v", err)
	}
	if got := tbl.Stats().TablesFreed; got != 0 {
		t.Errorf("tables freed = %d, want 0 (PT still in use)", got)
	}
}

func TestPartialHugeUnmapRejected(t *testing.T) {
	tbl, pm := testTable(t)
	frames, _ := pm.AllocFrames(9, mem.TierDRAM)
	if err := tbl.MapPage(0, frames, arch.HugePageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0, arch.PageSize); err == nil {
		t.Error("partial huge-page unmap accepted")
	}
}

func TestProtect(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Protect(0x1000, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Walk(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Perm != arch.PermRead {
		t.Errorf("perm after protect = %v", r.Perm)
	}
	if err := tbl.Protect(0x5000, arch.PageSize, arch.PermRead); err == nil {
		t.Error("protect of unmapped range accepted")
	}
}

func TestGlobalFlagSurvives(t *testing.T) {
	tbl, pm := testTable(t)
	frame, _ := pm.AllocPage()
	if err := tbl.MapPage(0x1000, frame, arch.PageSize, arch.PermRead, true); err != nil {
		t.Fatal(err)
	}
	table, level, err := tbl.leafFor(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if e := tbl.load(table, arch.VirtAddr(0x1000).Index(level)); !e.Global() {
		t.Error("global bit lost")
	}
}

func TestLinkSubtreeSharesTranslations(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	owner, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	// Owner builds translations inside one PML4 slot.
	frame, _ := pm.AllocPage()
	va := arch.VirtAddr(arch.LevelCoverage(3)) // PML4 slot 1
	if err := owner.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	// Find the PDPT the owner allocated for slot 1 and link it into a
	// second table, as Barrelfish shares all tables below the root (§4.2).
	pdpt := owner.load(owner.Root(), va.Index(3)).Addr()

	other, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LinkSubtree(va, 3, pdpt); err != nil {
		t.Fatal(err)
	}
	r, err := other.Walk(va)
	if err != nil {
		t.Fatalf("walk through linked subtree: %v", err)
	}
	if r.PA != frame {
		t.Errorf("linked walk pa = %v, want %v", r.PA, frame)
	}

	// Destroying the linking table must not free the owner's subtree.
	other.Destroy()
	if _, err := owner.Walk(va); err != nil {
		t.Errorf("owner translation destroyed by linker teardown: %v", err)
	}
}

func TestUnlinkSubtree(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	owner, _ := New(pm)
	frame, _ := pm.AllocPage()
	va := arch.VirtAddr(arch.LevelCoverage(3))
	if err := owner.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	pdpt := owner.load(owner.Root(), va.Index(3)).Addr()

	other, _ := New(pm)
	if err := other.LinkSubtree(va, 3, pdpt); err != nil {
		t.Fatal(err)
	}
	if err := other.UnlinkSubtree(va, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Walk(va); err == nil {
		t.Error("translation survived unlink")
	}
	if _, err := owner.Walk(va); err != nil {
		t.Errorf("owner broken by unlink: %v", err)
	}
	if err := other.UnlinkSubtree(va, 3); err == nil {
		t.Error("double unlink accepted")
	}
}

func TestDestroyReturnsFrames(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 16 << 20})
	before := pm.Stats().AllocatedBytes
	tbl, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := pm.AllocPage()
	for i := 0; i < 16; i++ {
		va := arch.VirtAddr(uint64(i) * arch.LevelCoverage(1)) // spread over PDs
		if err := tbl.MapPage(va, frame, arch.PageSize, arch.PermRead, false); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Destroy()
	if err := pm.Free(frame, 0); err != nil {
		t.Fatal(err)
	}
	if after := pm.Stats().AllocatedBytes; after != before {
		t.Errorf("leak: %d bytes still allocated", after-before)
	}
}

// Property: mapping a random set of distinct pages then walking each returns
// exactly the frame it was mapped to, and unmapping everything frees all
// tables except the root.
func TestPropertyMapWalkUnmap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := mem.New(mem.Config{DRAMSize: 64 << 20})
		tbl, err := New(pm)
		if err != nil {
			return false
		}
		mappings := make(map[arch.VirtAddr]arch.PhysAddr)
		for i := 0; i < 64; i++ {
			va := arch.VirtAddr(uint64(rng.Intn(1<<20)) * arch.PageSize)
			if _, dup := mappings[va]; dup {
				continue
			}
			frame, err := pm.AllocPage()
			if err != nil {
				return false
			}
			if err := tbl.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
				return false
			}
			mappings[va] = frame
		}
		for va, want := range mappings {
			r, err := tbl.Walk(va)
			if err != nil || r.PA != want {
				return false
			}
		}
		for va := range mappings {
			if err := tbl.Unmap(va, arch.PageSize); err != nil {
				return false
			}
		}
		return tbl.OwnedTables() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTablesForMatchesActual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := mem.New(mem.Config{DRAMSize: 512 << 20})
		tbl, err := New(pm)
		if err != nil {
			return false
		}
		va := arch.VirtAddr(uint64(rng.Intn(1<<24)) * arch.PageSize)
		pages := uint64(rng.Intn(2048) + 1)
		frame, err := pm.AllocFrames(11, mem.TierDRAM) // 2048 contiguous frames
		if err != nil {
			return false
		}
		if err := tbl.Map(va, frame, pages*arch.PageSize, arch.PageSize, arch.PermRW, false); err != nil {
			return false
		}
		return int(tbl.Stats().TablesAllocated) == TablesFor(va, pages*arch.PageSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
