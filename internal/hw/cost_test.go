package hw

import (
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/pt"
)

func TestChargePTAccounting(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	before := c.Cycles()
	c.ChargePT(pt.Stats{TablesAllocated: 2, TablesFreed: 1, EntriesSet: 10, EntriesCleared: 5})
	want := 2*DefaultCost.TableAlloc + 1*DefaultCost.TableFree +
		10*DefaultCost.PTESet + 5*DefaultCost.PTEClear
	if got := c.Cycles() - before; got != want {
		t.Errorf("ChargePT = %d cycles, want %d", got, want)
	}
}

func TestDeltaPT(t *testing.T) {
	a := pt.Stats{TablesAllocated: 5, TablesFreed: 1, EntriesSet: 100, EntriesCleared: 10, Walks: 7}
	b := pt.Stats{TablesAllocated: 8, TablesFreed: 3, EntriesSet: 150, EntriesCleared: 30, Walks: 9}
	d := DeltaPT(a, b)
	if d.TablesAllocated != 3 || d.TablesFreed != 2 || d.EntriesSet != 50 ||
		d.EntriesCleared != 20 || d.Walks != 2 {
		t.Errorf("delta = %+v", d)
	}
}

func TestExecPermissionPath(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl, _ := pt.New(m.PM)
	frame, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x4000, frame, arch.PageSize, arch.PermRead|arch.PermExec, false); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush)
	if _, err := c.Translate(0x4000, arch.AccessExec); err != nil {
		t.Errorf("exec fetch from r-x page: %v", err)
	}
	if err := c.Store64(0x4000, 1); err == nil {
		t.Error("store to r-x page succeeded")
	}
	// NX page denies exec.
	f2, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x8000, f2, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Translate(0x8000, arch.AccessExec); err == nil {
		t.Error("exec fetch from NX page succeeded")
	}
}

func TestPermissionUpgradeSelfHeals(t *testing.T) {
	// After a PTE permission upgrade, the stale TLB entry must not keep
	// denying: the MMU drops it and re-walks (the x86 behaviour COW
	// upgrades rely on).
	m := testMachine(t)
	c := m.Cores[0]
	tbl, _ := pt.New(m.PM)
	frame, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x4000, frame, arch.PageSize, arch.PermRead, false); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush)
	if _, err := c.Load64(0x4000); err != nil { // caches r-- in the TLB
		t.Fatal(err)
	}
	if err := tbl.Protect(0x4000, arch.PageSize, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := c.Store64(0x4000, 1); err != nil {
		t.Errorf("store after PTE upgrade: %v", err)
	}
}
