package hw

import (
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/pt"
)

// benchCore maps a window of pages and returns the core to drive. The
// window exceeds the SmallTest TLB so the loop exercises both the hit and
// the miss/walk paths — the two hot paths the observability hooks sit on.
func benchCore(b *testing.B, m *Machine, pages int) *Core {
	b.Helper()
	tbl, err := pt.New(m.PM)
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < pages; p++ {
		frame, err := m.PM.AllocPage()
		if err != nil {
			b.Fatal(err)
		}
		va := arch.VirtAddr(0x4000 + uint64(p)*arch.PageSize)
		if err := tbl.MapPage(va, frame, arch.PageSize, arch.PermRW, false); err != nil {
			b.Fatal(err)
		}
	}
	c := m.Cores[0]
	c.LoadCR3(tbl, arch.ASIDFlush)
	return c
}

func runAccessLoop(b *testing.B, c *Core, pages int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(0x4000 + uint64(i%pages)*arch.PageSize)
		if err := c.Store64(va, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Load64(va); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessStatsOff measures the MMU access path with observability
// disabled — the nil fast path. Compare against BenchmarkAccessStatsOn; the
// design contract is that Off stays within 2% of the pre-observability
// baseline (the hooks reduce to one pointer comparison).
func BenchmarkAccessStatsOff(b *testing.B) {
	const pages = 512
	m := NewMachine(SmallTest())
	c := benchCore(b, m, pages)
	b.ResetTimer()
	runAccessLoop(b, c, pages)
}

// BenchmarkAccessStatsOn measures the same loop with counters enabled
// (atomic adds on hit, miss, walk, and data charge).
func BenchmarkAccessStatsOn(b *testing.B) {
	const pages = 512
	m := NewMachine(SmallTest())
	m.EnableStats(0)
	c := benchCore(b, m, pages)
	b.ResetTimer()
	runAccessLoop(b, c, pages)
}

// BenchmarkAccessStatsTraced adds a trace ring on top of the counters; the
// access path itself records no events, so this isolates the tracer's
// atomic-pointer load.
func BenchmarkAccessStatsTraced(b *testing.B) {
	const pages = 512
	m := NewMachine(SmallTest())
	m.EnableStats(4096)
	c := benchCore(b, m, pages)
	b.ResetTimer()
	runAccessLoop(b, c, pages)
}

// TestStatsToggle: enabling attaches a sink, disabling detaches it, and the
// hardware keeps running through both transitions.
func TestStatsToggle(t *testing.T) {
	m := NewMachine(SmallTest())
	if m.Observer() != nil || m.StatsSnapshot() != nil {
		t.Fatal("observer present before EnableStats")
	}
	s := m.EnableStats(0)
	if s == nil || m.Observer() != s {
		t.Fatal("EnableStats did not install the sink")
	}
	tbl, err := pt.New(m.PM)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x4000, frame, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.LoadCR3(tbl, arch.ASIDFlush)
	if err := c.Store64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	snap := m.StatsSnapshot()
	if snap.TLB.Misses == 0 {
		t.Error("no miss recorded on first touch")
	}
	if snap.Cores[0].Cycles == 0 || len(snap.Cores[0].ByCat) == 0 {
		t.Errorf("core cycles not attributed: %+v", snap.Cores[0])
	}
	m.DisableStats()
	if m.Observer() != nil || m.StatsSnapshot() != nil {
		t.Error("observer survived DisableStats")
	}
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
}
