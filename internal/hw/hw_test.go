package hw

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/pt"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	return NewMachine(SmallTest())
}

func mapped(t *testing.T, m *Machine, va arch.VirtAddr, perm arch.Perm) *pt.Table {
	t.Helper()
	tbl, err := pt.New(m.PM)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := m.PM.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapPage(va, frame, arch.PageSize, perm, false); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMachineTopology(t *testing.T) {
	m := testMachine(t)
	if len(m.Cores) != 4 {
		t.Fatalf("cores = %d", len(m.Cores))
	}
	if !m.SameSocket(0, 1) || m.SameSocket(0, 2) {
		t.Error("socket layout wrong")
	}
}

func TestTable1Configs(t *testing.T) {
	for _, cfg := range []MachineConfig{M1(), M2(), M3()} {
		m := NewMachine(cfg)
		if len(m.Cores) != cfg.Sockets*cfg.CoresPerSocket {
			t.Errorf("%s: cores = %d", cfg.Name, len(m.Cores))
		}
		if m.PM.Size() != cfg.Mem.DRAMSize {
			t.Errorf("%s: memory = %d", cfg.Name, m.PM.Size())
		}
	}
	// Spot-check Table 1 figures.
	if M3().CoresPerSocket != 18 || M3().GHz != 2.30 || M3().Mem.DRAMSize != 512<<30 {
		t.Error("M3 does not match Table 1")
	}
}

func TestLoadStoreThroughMMU(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl := mapped(t, m, 0x4000, arch.PermRW)
	c.LoadCR3(tbl, arch.ASIDFlush)
	if err := c.Store64(0x4008, 0xFEEDFACE); err != nil {
		t.Fatal(err)
	}
	v, err := c.Load64(0x4008)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFEEDFACE {
		t.Errorf("Load64 = %#x", v)
	}
}

func TestTLBFillOnMiss(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl := mapped(t, m, 0x4000, arch.PermRW)
	c.LoadCR3(tbl, arch.ASIDFlush)
	c.ResetStats()
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load64(0x4010); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.TLBMisses != 1 || s.TLBHits != 1 {
		t.Errorf("misses=%d hits=%d, want 1/1", s.TLBMisses, s.TLBHits)
	}
}

func TestCR3FlushSemantics(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl := mapped(t, m, 0x4000, arch.PermRW)
	c.LoadCR3(tbl, arch.ASIDFlush)
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	// Untagged reload flushes: next access misses again.
	c.LoadCR3(tbl, arch.ASIDFlush)
	c.ResetStats()
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TLBMisses != 1 {
		t.Error("untagged CR3 load did not flush the TLB")
	}
	// Tagged reload retains: access hits.
	c.LoadCR3(tbl, 5)
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, 5)
	c.ResetStats()
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TLBMisses != 0 {
		t.Error("tagged CR3 load flushed the TLB")
	}
}

func TestCR3LoadCosts(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl := mapped(t, m, 0x4000, arch.PermRW)
	before := c.Cycles()
	c.LoadCR3(tbl, arch.ASIDFlush)
	if got := c.Cycles() - before; got != DefaultCost.CR3Load {
		t.Errorf("untagged CR3 load cost = %d, want %d", got, DefaultCost.CR3Load)
	}
	before = c.Cycles()
	c.LoadCR3(tbl, 1)
	if got := c.Cycles() - before; got != DefaultCost.CR3LoadTagged {
		t.Errorf("tagged CR3 load cost = %d, want %d", got, DefaultCost.CR3LoadTagged)
	}
}

func TestPermissionFault(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl := mapped(t, m, 0x4000, arch.PermRead)
	c.LoadCR3(tbl, arch.ASIDFlush)
	err := c.Store64(0x4000, 1)
	var f *PageFault
	if !errors.As(err, &f) {
		t.Fatalf("want PageFault, got %v", err)
	}
	if f.Access != arch.AccessWrite || f.VA != 0x4000 {
		t.Errorf("fault = %+v", f)
	}
	// TLB-resident translations must also enforce permissions.
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	if err := c.Store64(0x4000, 1); err == nil {
		t.Error("write through read-only TLB entry allowed")
	}
}

func TestFaultHandlerRetries(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl, err := pt.New(m.PM)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush)
	calls := 0
	c.OnFault = func(core *Core, f *PageFault) error {
		calls++
		frame, err := m.PM.AllocPage()
		if err != nil {
			return err
		}
		return tbl.MapPage(arch.AlignDown(f.VA, arch.PageSize), frame, arch.PageSize, arch.PermRW, false)
	}
	if err := c.Store64(0x8000, 42); err != nil {
		t.Fatalf("demand paging failed: %v", err)
	}
	if calls != 1 {
		t.Errorf("fault handler calls = %d", calls)
	}
	if c.Stats().Faults != 1 {
		t.Errorf("fault count = %d", c.Stats().Faults)
	}
}

func TestFaultWithoutHandlerFails(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl, _ := pt.New(m.PM)
	c.LoadCR3(tbl, arch.ASIDFlush)
	var f *PageFault
	if err := c.Store64(0x8000, 42); !errors.As(err, &f) {
		t.Fatalf("want PageFault, got %v", err)
	}
}

func TestReadWriteSpansPages(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl, _ := pt.New(m.PM)
	f1, _ := m.PM.AllocPage()
	f2, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x1000, f1, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MapPage(0x2000, f2, arch.PageSize, arch.PermRW, false); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush)
	msg := []byte("crossing the page boundary, virtually")
	if err := c.Write(0x1ff0, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := c.Read(0x1ff0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("read back %q", got)
	}
	// Verify the bytes really landed in the two distinct frames.
	var head [16]byte
	if err := m.PM.ReadAt(f1+0xff0, head[:]); err != nil {
		t.Fatal(err)
	}
	if string(head[:]) != string(msg[:16]) {
		t.Errorf("first frame holds %q", head)
	}
}

func TestSwitchingIsolatesAddressSpaces(t *testing.T) {
	// The essence of SpaceJMP: the same virtual address resolves to
	// different data after a CR3 switch.
	m := testMachine(t)
	c := m.Cores[0]
	va := arch.VirtAddr(0xC0DE000)
	t1 := mapped(t, m, va, arch.PermRW)
	t2 := mapped(t, m, va, arch.PermRW)

	c.LoadCR3(t1, arch.ASIDFlush)
	if err := c.Store64(va, 111); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(t2, arch.ASIDFlush)
	if err := c.Store64(va, 222); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(t1, arch.ASIDFlush)
	v, err := c.Load64(va)
	if err != nil {
		t.Fatal(err)
	}
	if v != 111 {
		t.Errorf("VAS 1 sees %d at %v, want 111", v, va)
	}
}

func TestTaggedSwitchingKeepsBothTranslations(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	va := arch.VirtAddr(0xC0DE000)
	t1 := mapped(t, m, va, arch.PermRW)
	t2 := mapped(t, m, va, arch.PermRW)
	c.LoadCR3(t1, 1)
	if _, err := c.Load64(va); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(t2, 2)
	if _, err := c.Load64(va); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	c.LoadCR3(t1, 1)
	if _, err := c.Load64(va); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(t2, 2)
	if _, err := c.Load64(va); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.TLBMisses != 0 {
		t.Errorf("tagged ping-pong missed %d times", s.TLBMisses)
	}
}

func TestCyclesToNs(t *testing.T) {
	m := NewMachine(M2()) // 2.5 GHz
	if got := m.CyclesToNs(2500); got != 1000 {
		t.Errorf("2500 cycles at 2.5GHz = %v ns, want 1000", got)
	}
}

func TestGlobalEntriesSurviveUntaggedSwitch(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	tbl, _ := pt.New(m.PM)
	frame, _ := m.PM.AllocPage()
	if err := tbl.MapPage(0x4000, frame, arch.PageSize, arch.PermRead, true); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush)
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	c.LoadCR3(tbl, arch.ASIDFlush) // flush
	c.ResetStats()
	if _, err := c.Load64(0x4000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TLBMisses != 0 {
		t.Error("global (kernel) translation did not survive the flush")
	}
}
