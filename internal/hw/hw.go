// Package hw models the hardware the SpaceJMP prototypes ran on: multi-core,
// dual-socket machines (paper Table 1) whose cores each hold a CR3 root
// pointer and a tagged TLB, with a deterministic cycle cost model calibrated
// to the paper's Table 2 measurements.
//
// All simulated work is charged to a per-core cycle counter; benchmarks
// convert cycles to time using the machine's clock frequency, which lets the
// reproduction report the same units the paper does regardless of the speed
// of the host running the simulation.
package hw

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
	"spacejmp/internal/mem"
	"spacejmp/internal/pt"
	"spacejmp/internal/stats"
	"spacejmp/internal/tlb"
)

// CostModel holds the hardware cycle costs. The CR3 constants come straight
// from Table 2 (measured on M2): loading CR3 costs 130 cycles untagged and
// 224 cycles with PCID tagging enabled, because the tagged write activates
// extra TLB circuitry.
type CostModel struct {
	CR3Load       uint64 // write to CR3, untagged
	CR3LoadTagged uint64 // write to CR3 with a PCID tag
	TLBHit        uint64 // translation served from the TLB
	WalkRef       uint64 // one page-walker memory reference
	MemAccess     uint64 // one cache-line data access
	CacheLineXfer uint64 // cache-line transfer between cores, same socket
	CacheLineXSoc uint64 // cache-line transfer across sockets (coherence round trip)

	// Kernel page-table manipulation costs (Figure 1's mmap/munmap cost
	// model): writing one PTE, allocating+zeroing one table node, and
	// freeing one.
	PTESet     uint64
	PTEClear   uint64
	TableAlloc uint64
	TableFree  uint64
}

// DefaultCost is the cost model used by every machine config.
var DefaultCost = CostModel{
	CR3Load:       130,
	CR3LoadTagged: 224,
	TLBHit:        1,
	WalkRef:       40,
	MemAccess:     4,
	CacheLineXfer: 100,
	CacheLineXSoc: 450,
	PTESet:        45,
	PTEClear:      25,
	TableAlloc:    600,
	TableFree:     300,
}

// MachineConfig describes a simulated platform.
type MachineConfig struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	GHz            float64
	Mem            mem.Config
	TLB            tlb.Config
	Cost           CostModel
}

// The three large-memory platforms of Table 1. Physical memory is lazily
// materialized, so the full capacities are simulated faithfully.
func M1() MachineConfig {
	// The Xeon X5650 is a 6-core part; §5.3 calls M1 "the twelve core
	// machine" (SMT disabled), i.e. 2 sockets x 6 cores.
	return MachineConfig{Name: "M1", Sockets: 2, CoresPerSocket: 6, GHz: 2.66,
		Mem: mem.Config{DRAMSize: 92 << 30}, TLB: tlb.DefaultConfig, Cost: DefaultCost}
}

func M2() MachineConfig {
	return MachineConfig{Name: "M2", Sockets: 2, CoresPerSocket: 10, GHz: 2.50,
		Mem: mem.Config{DRAMSize: 256 << 30}, TLB: tlb.DefaultConfig, Cost: DefaultCost}
}

func M3() MachineConfig {
	return MachineConfig{Name: "M3", Sockets: 2, CoresPerSocket: 18, GHz: 2.30,
		Mem: mem.Config{DRAMSize: 512 << 30}, TLB: tlb.DefaultConfig, Cost: DefaultCost}
}

// SmallTest returns a small machine for unit tests.
func SmallTest() MachineConfig {
	return MachineConfig{Name: "test", Sockets: 2, CoresPerSocket: 2, GHz: 2.0,
		Mem: mem.Config{DRAMSize: 512 << 20, NVMSize: 128 << 20}, TLB: tlb.Config{Sets: 16, Ways: 4}, Cost: DefaultCost}
}

// NamedConfig resolves a machine name as commands and scenario specs use
// them: the paper's M1/M2/M3 platforms, or "small" (the unit-test machine).
func NamedConfig(name string) (MachineConfig, error) {
	switch name {
	case "M1":
		return M1(), nil
	case "M2":
		return M2(), nil
	case "M3":
		return M3(), nil
	case "small", "":
		return SmallTest(), nil
	}
	return MachineConfig{}, fmt.Errorf("hw: unknown machine %q (want M1, M2, M3, or small)", name)
}

// Machine is a simulated platform instance.
type Machine struct {
	Cfg   MachineConfig
	PM    *mem.PhysMem
	Cores []*Core

	// Faults is the machine-wide fault-injection registry (nil when fault
	// injection is off). Install it with SetFaults so physical memory and
	// everything built on the machine share one scope.
	Faults *fault.Registry

	obs *stats.Sink
}

// SetFaults installs a fault-injection registry on the machine and its
// physical memory. Pass nil to disable injection.
func (m *Machine) SetFaults(r *fault.Registry) {
	m.Faults = r
	m.PM.SetFaults(r)
	m.wireFaultObserver()
}

// EnableStats turns on machine-wide observability: per-core cycle accounting
// by category, per-ASID TLB counters, page-table and NVM activity. When
// traceCap > 0 a bounded trace ring of that capacity is installed too. The
// returned sink is live; take point-in-time copies with StatsSnapshot.
func (m *Machine) EnableStats(traceCap int) *stats.Sink {
	s := stats.NewSink(len(m.Cores))
	if traceCap > 0 {
		s.SetTracer(stats.NewTracer(traceCap))
	}
	m.setObserver(s)
	return s
}

// DisableStats turns observability back off; subsequent hardware activity
// reduces to the nil fast path.
func (m *Machine) DisableStats() { m.setObserver(nil) }

// Observer returns the installed stats sink, or nil when observability is
// off. Components built on the machine (vm, the OS personalities, urpc)
// record their own events through it.
func (m *Machine) Observer() *stats.Sink { return m.obs }

func (m *Machine) setObserver(s *stats.Sink) {
	m.obs = s
	m.PM.SetObserver(s)
	for _, c := range m.Cores {
		c.sink = s
		c.cobs = s.Core(c.ID)
	}
	m.wireFaultObserver()
}

func (m *Machine) wireFaultObserver() {
	if m.Faults == nil {
		return
	}
	if s := m.obs; s != nil {
		m.Faults.SetObserver(func(name string) { s.FaultFired(name) })
	} else {
		m.Faults.SetObserver(nil)
	}
}

// StatsSnapshot returns an immutable copy of every observability counter,
// completed with the per-core totals (cycle counter, MMU event counts) the
// hardware owns. Returns nil when observability is off.
func (m *Machine) StatsSnapshot() *stats.Snapshot {
	s := m.obs
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	for i, c := range m.Cores {
		if i >= len(snap.Cores) {
			break
		}
		cs := &snap.Cores[i]
		cs.Cycles = c.cycles
		cs.TLBHits = c.stats.TLBHits
		cs.TLBMisses = c.stats.TLBMisses
		cs.Faults = c.stats.Faults
		cs.CR3Loads = c.stats.CR3Loads
	}
	return snap
}

// NewMachine boots a machine: physical memory plus one Core per hardware
// thread (SMT is disabled in the paper's setup).
func NewMachine(cfg MachineConfig) *Machine {
	m := &Machine{Cfg: cfg, PM: mem.New(cfg.Mem)}
	n := cfg.Sockets * cfg.CoresPerSocket
	for i := 0; i < n; i++ {
		m.Cores = append(m.Cores, &Core{
			ID:      i,
			Socket:  i / cfg.CoresPerSocket,
			machine: m,
			TLB:     tlb.New(cfg.TLB),
		})
	}
	return m
}

// SameSocket reports whether two cores share a socket (Figure 7's URPC L
// vs URPC X distinction).
func (m *Machine) SameSocket(a, b int) bool {
	return m.Cores[a].Socket == m.Cores[b].Socket
}

// CyclesToNs converts a cycle count to nanoseconds at this machine's clock.
func (m *Machine) CyclesToNs(cycles uint64) float64 {
	return float64(cycles) / m.Cfg.GHz
}

// CoreStats counts per-core MMU events.
type CoreStats struct {
	TLBHits   uint64
	TLBMisses uint64
	Faults    uint64
	CR3Loads  uint64
}

// PageFault is delivered when a translation is absent or permissions are
// insufficient. The OS personality's fault handler decides whether to
// populate the mapping and retry.
type PageFault struct {
	VA     arch.VirtAddr
	Access arch.Access
	Cause  error // underlying pt.NotMappedError or permission violation
}

func (f *PageFault) Error() string {
	return fmt.Sprintf("hw: page fault: %v %v (%v)", f.Access, f.VA, f.Cause)
}

// FaultHandler resolves a page fault, typically by establishing a mapping.
// Returning a non-nil error aborts the faulting access.
type FaultHandler func(c *Core, f *PageFault) error

// Core is one hardware thread: CR3, an ASID, a private TLB, and a cycle
// counter. A Core is driven by exactly one simulated OS thread at a time.
type Core struct {
	ID     int
	Socket int
	TLB    *tlb.TLB

	machine *Machine
	table   *pt.Table // the address space CR3 points at
	asid    arch.ASID
	cycles  uint64
	stats   CoreStats

	// sink/cobs mirror machine.obs; both are nil-safe, so every charge site
	// records unconditionally and observability off costs one nil check.
	sink *stats.Sink
	cobs *stats.CoreCounters

	// OnFault is invoked on page faults; nil means faults are fatal to the
	// access. The OS personality installs its handler here.
	OnFault FaultHandler
}

// Machine returns the machine this core belongs to.
func (c *Core) Machine() *Machine { return c.machine }

// Cycles returns the core's consumed cycle count.
func (c *Core) Cycles() uint64 { return c.cycles }

// AddCycles charges work to the core (used by OS personalities for syscall
// and bookkeeping costs). Cycles charged this way are attributed to the
// stats.CatOther category; use AddCyclesCat to attribute them precisely.
func (c *Core) AddCycles(n uint64) { c.AddCyclesCat(stats.CatOther, n) }

// AddCyclesCat charges work to the core, attributing it to the given
// cycle-accounting category when observability is enabled.
func (c *Core) AddCyclesCat(cat stats.Cat, n uint64) {
	c.cycles += n
	c.cobs.AddCycles(cat, n)
}

// Stats returns a snapshot of the core's MMU counters.
func (c *Core) Stats() CoreStats { return c.stats }

// ResetStats clears the MMU counters.
func (c *Core) ResetStats() { c.stats = CoreStats{}; c.TLB.ResetStats() }

// ASID returns the currently loaded address-space tag.
func (c *Core) ASID() arch.ASID { return c.asid }

// CR3 returns the root of the currently active page table, or 0 if none.
func (c *Core) CR3() arch.PhysAddr {
	if c.table == nil {
		return 0
	}
	return c.table.Root()
}

// Table returns the active page table object.
func (c *Core) Table() *pt.Table { return c.table }

// LoadCR3 activates an address space. With the reserved flush tag (ASID 0),
// all non-global TLB entries are invalidated, as on pre-PCID x86; with a
// real tag the TLB is retained and the write costs more cycles (Table 2).
func (c *Core) LoadCR3(t *pt.Table, asid arch.ASID) {
	cost := &c.machine.Cfg.Cost
	if asid == arch.ASIDFlush {
		// The untagged write's cost is dominated by the implicit full TLB
		// invalidation, so its cycles are attributed to the flush category.
		c.cycles += cost.CR3Load
		c.cobs.AddCycles(stats.CatFlush, cost.CR3Load)
		c.sink.TLBFlush(c.TLB.FlushAll())
	} else {
		c.cycles += cost.CR3LoadTagged
		c.cobs.AddCycles(stats.CatSwitch, cost.CR3LoadTagged)
	}
	c.table = t
	c.asid = asid
	c.stats.CR3Loads++
}

// Translate resolves va for the given access kind, charging TLB and walk
// cycles. On a miss it walks the active page table and fills the TLB. On a
// translation or permission failure it raises a page fault: if OnFault is
// set and resolves the fault, the translation is retried once.
func (c *Core) Translate(va arch.VirtAddr, access arch.Access) (arch.PhysAddr, error) {
	pa, err := c.translateOnce(va, access)
	if err == nil {
		return pa, nil
	}
	f, ok := err.(*PageFault)
	if !ok || c.OnFault == nil {
		return 0, err
	}
	c.stats.Faults++
	if herr := c.OnFault(c, f); herr != nil {
		return 0, herr
	}
	return c.translateOnce(va, access)
}

func (c *Core) translateOnce(va arch.VirtAddr, access arch.Access) (arch.PhysAddr, error) {
	cost := &c.machine.Cfg.Cost
	c.cycles += cost.TLBHit
	c.cobs.AddCycles(stats.CatTLBProbe, cost.TLBHit)
	if e, ok := c.TLB.Lookup(c.asid, va); ok {
		if e.Perm.Allows(access.Perm()) {
			c.stats.TLBHits++
			c.sink.TLBHit(c.asid)
			return e.Frame + arch.PhysAddr(uint64(va)%e.PageSize), nil
		}
		// Permission violation on a cached translation: as on x86, the
		// entry may be stale after a PTE upgrade, so drop it and re-walk
		// the paging structures before raising the fault.
		if n := c.TLB.FlushPage(c.asid, va); n > 0 {
			c.sink.TLBFlush(n)
		}
	}
	c.stats.TLBMisses++
	c.sink.TLBMiss(c.asid)
	if c.table == nil {
		return 0, &PageFault{VA: va, Access: access, Cause: fmt.Errorf("no address space loaded")}
	}
	r, err := c.table.Walk(va)
	walk := uint64(r.Refs) * cost.WalkRef
	c.cycles += walk
	c.cobs.AddCycles(stats.CatWalk, walk)
	if err != nil {
		return 0, &PageFault{VA: va, Access: access, Cause: err}
	}
	if !r.Perm.Allows(access.Perm()) {
		return 0, &PageFault{VA: va, Access: access, Cause: fmt.Errorf("%v mapping denies %v", r.Perm, access)}
	}
	base := arch.AlignDown(va, r.PageSize)
	frame := r.PA - arch.PhysAddr(uint64(va)-uint64(base))
	if victim, evicted := c.TLB.Insert(c.asid, base, frame, r.PageSize, r.Perm, r.Global); evicted {
		c.sink.TLBEvict(victim)
	}
	return r.PA, nil
}

// Read copies size bytes of virtual memory at va into buf, translating page
// by page and charging one MemAccess per cache line touched.
func (c *Core) Read(va arch.VirtAddr, buf []byte) error {
	return c.access(va, buf, arch.AccessRead)
}

// Write copies buf into virtual memory at va.
func (c *Core) Write(va arch.VirtAddr, buf []byte) error {
	return c.access(va, buf, arch.AccessWrite)
}

func (c *Core) access(va arch.VirtAddr, buf []byte, kind arch.Access) error {
	cost := &c.machine.Cfg.Cost
	for len(buf) > 0 {
		pa, err := c.Translate(va, kind)
		if err != nil {
			return err
		}
		n := arch.PageSize - int(va.PageOffset())
		if n > len(buf) {
			n = len(buf)
		}
		dc := cost.MemAccess * uint64((n+arch.CacheLineSize-1)/arch.CacheLineSize)
		c.cycles += dc
		if c.cobs != nil {
			cat := stats.CatData
			if kind == arch.AccessWrite && c.machine.PM.TierOf(pa) == mem.TierNVM {
				cat = stats.CatNVMWrite
			}
			c.cobs.AddCycles(cat, dc)
		}
		if kind == arch.AccessWrite {
			err = c.machine.PM.WriteAt(pa, buf[:n])
		} else {
			err = c.machine.PM.ReadAt(pa, buf[:n])
		}
		if err != nil {
			return err
		}
		buf = buf[n:]
		va += arch.VirtAddr(n)
	}
	return nil
}

// ChargePT charges the core for kernel page-table manipulation described by
// a pt.Stats delta (entries written/cleared, table nodes allocated/freed) —
// the in-kernel work of mmap, munmap, and segment attach.
func (c *Core) ChargePT(delta pt.Stats) {
	cost := &c.machine.Cfg.Cost
	n := delta.EntriesSet*cost.PTESet +
		delta.EntriesCleared*cost.PTEClear +
		delta.TablesAllocated*cost.TableAlloc +
		delta.TablesFreed*cost.TableFree
	c.cycles += n
	c.cobs.AddCycles(stats.CatPT, n)
}

// DeltaPT subtracts two pt.Stats snapshots.
func DeltaPT(before, after pt.Stats) pt.Stats {
	return pt.Stats{
		TablesAllocated: after.TablesAllocated - before.TablesAllocated,
		TablesFreed:     after.TablesFreed - before.TablesFreed,
		EntriesSet:      after.EntriesSet - before.EntriesSet,
		EntriesCleared:  after.EntriesCleared - before.EntriesCleared,
		Walks:           after.Walks - before.Walks,
		WalkRefs:        after.WalkRefs - before.WalkRefs,
	}
}

// Load64 reads an aligned uint64 at va.
func (c *Core) Load64(va arch.VirtAddr) (uint64, error) {
	pa, err := c.Translate(va, arch.AccessRead)
	if err != nil {
		return 0, err
	}
	c.cycles += c.machine.Cfg.Cost.MemAccess
	c.cobs.AddCycles(stats.CatData, c.machine.Cfg.Cost.MemAccess)
	return c.machine.PM.Load64(pa)
}

// Store64 writes an aligned uint64 at va.
func (c *Core) Store64(va arch.VirtAddr, v uint64) error {
	pa, err := c.Translate(va, arch.AccessWrite)
	if err != nil {
		return err
	}
	c.cycles += c.machine.Cfg.Cost.MemAccess
	if c.cobs != nil {
		cat := stats.CatData
		if c.machine.PM.TierOf(pa) == mem.TierNVM {
			cat = stats.CatNVMWrite
		}
		c.cobs.AddCycles(cat, c.machine.Cfg.Cost.MemAccess)
	}
	return c.machine.PM.Store64(pa, v)
}
