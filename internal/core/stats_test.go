package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/stats"
)

func TestStatsDisabledByDefault(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	if sys.Stats() != nil || sys.Tracer() != nil {
		t.Fatal("stats enabled without EnableStats")
	}
	// The whole syscall surface runs on the nil fast path.
	vid, err := th.VASCreate("off", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc("off.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0), 7); err != nil {
		t.Fatal(err)
	}
	if sys.Stats() != nil {
		t.Error("stats appeared mid-run")
	}
}

// TestSwitchesMatchTraceCount is the regression the trace ring is specified
// against: the syscall layer's switch counter and the tracer's per-kind
// count are incremented together, so they must agree exactly — including
// under concurrency and after the ring has overflowed.
func TestSwitchesMatchTraceCount(t *testing.T) {
	sys := testSystem(t)
	sys.EnableStats(8) // tiny ring: most events are overwritten
	const threads = 4
	const switchesPerThread = 25
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, th := spawn(t, sys)
			vid, err := th.VASCreate(fmt.Sprintf("sw%d", i), 0o600)
			if err != nil {
				t.Error(err)
				return
			}
			h, err := th.VASAttach(vid)
			if err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < switchesPerThread; s++ {
				if err := th.VASSwitch(h); err != nil {
					t.Error(err)
					return
				}
				if err := th.VASSwitch(PrimaryHandle); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	want := uint64(threads * switchesPerThread * 2)
	if got := sys.Switches(); got != want {
		t.Errorf("Switches() = %d, want %d", got, want)
	}
	if got := sys.Tracer().Count(stats.EvVASSwitch); got != sys.Switches() {
		t.Errorf("traced switches %d != Switches() %d", got, sys.Switches())
	}
	snap := sys.Stats()
	if snap.Switches != want {
		t.Errorf("snapshot switches = %d, want %d", snap.Switches, want)
	}
	if snap.TraceDropped == 0 {
		t.Error("ring of 8 did not overflow under 200 switches")
	}
	if h := snap.Syscalls[stats.OpVASSwitch.String()]; h.Count != want {
		t.Errorf("vas_switch latency count = %d, want %d", h.Count, want)
	}
}

// TestStatsEndToEnd drives a small workload with observability on and
// checks every counter family saw the activity it should have.
func TestStatsEndToEnd(t *testing.T) {
	sys := testSystem(t)
	sys.EnableStats(64) // before any process exists, so all PTs are observed
	_, th := spawn(t, sys)

	vid, err := th.VASCreate("e2e", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc("e2e.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 1<<20; off += arch.PageSize {
		if err := th.Store64(segBase(0)+arch.VirtAddr(off), off); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Stats()

	if snap.TLB.Hits+snap.TLB.Misses == 0 {
		t.Error("no TLB probes recorded")
	}
	if snap.PT.NodesAllocated == 0 || snap.PT.NodesTouched == 0 || snap.PT.EntriesSet == 0 {
		t.Errorf("page-table counters empty: %+v", snap.PT)
	}
	if snap.VM.Maps == 0 {
		t.Error("no VM maps recorded")
	}
	for _, op := range []stats.Op{stats.OpVASCreate, stats.OpSegAlloc, stats.OpSegAttach, stats.OpVASAttach, stats.OpVASSwitch} {
		if snap.Syscalls[op.String()].Count == 0 {
			t.Errorf("no latency recorded for %s", op)
		}
	}
	if len(snap.Cycles) == 0 {
		t.Fatal("no cycles attributed")
	}
	var byCat uint64
	for _, v := range snap.Cycles {
		byCat += v
	}
	// Every charged cycle is attributed to a category: the per-core totals
	// (owned by hw) and the category decomposition must agree, since stats
	// were on from boot.
	var total uint64
	for _, c := range snap.Cores {
		total += c.Cycles
	}
	if byCat != total {
		t.Errorf("cycles by category %d != core totals %d", byCat, total)
	}

	// The attaches were traced.
	if got := sys.Tracer().Count(stats.EvSegAttach); got != 1 {
		t.Errorf("seg-attach trace count = %d, want 1", got)
	}

	// The text exporter mentions the headline counters.
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cycles by category", "tlb", "hit-rate", "nodes-touched", "vas_switch"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}

	// The snapshot is a copy: more activity must not move it.
	hits := snap.TLB.Hits
	if _, err := th.Load64(segBase(0)); err != nil {
		t.Fatal(err)
	}
	if snap.TLB.Hits != hits {
		t.Error("snapshot mutated by later activity")
	}
	if sys.Stats().TLB.Hits+sys.Stats().TLB.Misses <= hits {
		t.Error("live counters did not advance")
	}
}

// TestStatsLockHistograms: contended switches must record lock wait and
// hold observations.
func TestStatsLockHistograms(t *testing.T) {
	sys := testSystem(t)
	sys.EnableStats(0)
	_, a := spawn(t, sys)
	_, b := spawn(t, sys)
	vid, _ := a.VASCreate("locks", 0o666)
	sid, _ := a.SegAlloc("locks.seg", segBase(0), 1<<20, arch.PermRW)
	if err := a.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	ha, _ := a.VASAttach(vid)
	hb, _ := b.VASAttach(vid)
	if err := a.VASSwitch(ha); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.VASSwitch(hb) }() // blocks until a leaves
	if err := a.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := sys.Stats()
	if snap.LockWaitNs.Count == 0 {
		t.Error("no lock-wait observations")
	}
	if snap.LockHoldCycles.Count == 0 {
		t.Error("no lock-hold observations")
	}
}
