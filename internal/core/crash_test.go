package core

import (
	"errors"
	"testing"
	"time"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
)

// lockableSeg builds a VAS with one lockable RW segment and returns
// (vid, segment).
func lockableSeg(t *testing.T, th *Thread, vasName, segName string) (VASID, *Segment) {
	t.Helper()
	vid, err := th.VASCreate(vasName, 0o660)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc(segName, segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	seg, err := th.Proc.System().SegByID(sid)
	if err != nil {
		t.Fatal(err)
	}
	return vid, seg
}

// waitContention polls until the segment has seen at least n blocked
// acquisitions.
func waitContention(t *testing.T, seg *Segment, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for seg.LockContentions() < n {
		if time.Now().After(deadline) {
			t.Fatalf("no contention after 5s (contentions=%d)", seg.LockContentions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashWhileHoldingWriteLock is the headline recovery scenario: a
// process dies abruptly while switched into a VAS whose lockable segment it
// holds exclusively. The reaper must release the lock (waking a blocked
// acquirer on another core) and return every frame the dead process owned.
func TestCrashWhileHoldingWriteLock(t *testing.T) {
	sys := testSystem(t)
	pm := sys.M.PM
	_, owner := spawn(t, sys)
	vid, seg := lockableSeg(t, owner, "crash.vas", "crash.seg")

	// The waiter exists (and is attached) before the baseline so that only
	// the victim's footprint is at stake across the crash. It also touches
	// the segment once now, so its lazily-installed page-table frames are
	// part of the baseline rather than appearing after the crash.
	_, waiter := spawn(t, sys)
	wh, err := waiter.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := waiter.VASSwitch(wh); err != nil {
		t.Fatal(err)
	}
	if _, err := waiter.Load64(segBase(0) + 8); err != nil {
		t.Fatal(err)
	}
	if err := waiter.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	baseline := pm.AllocatedBytes()

	victim, vt := spawn(t, sys)
	vh, err := vt.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := vt.VASSwitch(vh); err != nil {
		t.Fatal(err)
	}
	if err := vt.Store64(segBase(0)+8, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if r, w := seg.LockHolders(); r != 0 || w != 1 {
		t.Fatalf("victim holders = (%d, %d), want (0, 1)", r, w)
	}

	// The waiter blocks in Segment.acquire on another goroutine.
	done := make(chan error, 1)
	go func() { done <- waiter.VASSwitch(wh) }()
	waitContention(t, seg, 1)

	victim.Crash()

	if err := <-done; err != nil {
		t.Fatalf("waiter switch after crash: %v", err)
	}
	if r, w := seg.LockHolders(); r != 0 || w != 1 {
		t.Fatalf("post-crash holders = (%d, %d), want waiter (0, 1)", r, w)
	}
	// The victim's committed write survives in the first-class segment.
	if v, err := waiter.Load64(segBase(0) + 8); err != nil || v != 0xDEAD {
		t.Fatalf("waiter read = %d, %v; want 0xDEAD", v, err)
	}
	if err := waiter.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if r, w := seg.LockHolders(); r != 0 || w != 0 {
		t.Fatalf("final holders = (%d, %d), want (0, 0)", r, w)
	}
	// Every frame the victim owned came back.
	if err := pm.CheckLeaks(baseline); err != nil {
		t.Fatal(err)
	}
	// The dead process is inert.
	if !victim.Dead() {
		t.Error("victim not marked dead")
	}
	if _, err := victim.NewThread(); !errors.Is(err, ErrProcessDead) {
		t.Errorf("NewThread on dead process: %v", err)
	}
	if _, err := vt.VASCreate("x", 0o600); !errors.Is(err, ErrProcessDead) {
		t.Errorf("syscall on dead process: %v", err)
	}
	if err := vt.VASSwitch(PrimaryHandle); !errors.Is(err, ErrProcessDead) {
		t.Errorf("switch on dead process: %v", err)
	}
}

// TestExitRacesBlockedAcquire: Exit on one thread while another process's
// thread is blocked in Segment.acquire. The exit path releases the lock via
// the ordinary switch path, the waiter wakes, and once the waiter leaves
// too the holder counts return to zero.
func TestExitRacesBlockedAcquire(t *testing.T) {
	sys := testSystem(t)
	_, owner := spawn(t, sys)
	vid, seg := lockableSeg(t, owner, "race.vas", "race.seg")

	holderProc, holder := spawn(t, sys)
	hh, err := holder.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.VASSwitch(hh); err != nil {
		t.Fatal(err)
	}

	_, waiter := spawn(t, sys)
	wh, err := waiter.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- waiter.VASSwitch(wh) }()
	waitContention(t, seg, 1)

	holderProc.Exit()

	if err := <-done; err != nil {
		t.Fatalf("waiter switch after exit: %v", err)
	}
	if err := waiter.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if r, w := seg.LockHolders(); r != 0 || w != 0 {
		t.Fatalf("holders = (%d, %d) after both leave, want (0, 0)", r, w)
	}
}

// TestInjectedSyscallCrash arms the syscall-boundary crash point: the Nth
// syscall kills the process mid-entry, and the reaper cleans up exactly as
// for an explicit Crash.
func TestInjectedSyscallCrash(t *testing.T) {
	sys := testSystem(t)
	reg := fault.New(1)
	sys.M.SetFaults(reg)
	pm := sys.M.PM

	_, owner := spawn(t, sys)
	vid, seg := lockableSeg(t, owner, "inj.vas", "inj.seg")
	baseline := pm.AllocatedBytes()

	victim, vt := spawn(t, sys)
	vh, err := vt.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := vt.VASSwitch(vh); err != nil {
		t.Fatal(err)
	}

	// Crash on the next syscall the victim makes.
	reg.Enable(fault.CoreSyscallCrash, fault.OnNth(1))
	_, err = vt.VASFind("inj.vas")
	if !errors.Is(err, ErrProcessDead) {
		t.Fatalf("injected crash returned %v, want ErrProcessDead", err)
	}
	reg.Disable(fault.CoreSyscallCrash)

	if !victim.Dead() {
		t.Fatal("victim survived injected crash")
	}
	if r, w := seg.LockHolders(); r != 0 || w != 0 {
		t.Fatalf("holders = (%d, %d) after injected crash, want (0, 0)", r, w)
	}
	if err := pm.CheckLeaks(baseline); err != nil {
		t.Fatal(err)
	}
	// The surviving owner still works: faults are per-point, not global.
	if _, err := owner.VASFind("inj.vas"); err != nil {
		t.Errorf("owner syscall after victim crash: %v", err)
	}
}

// TestExitIsIdempotent: Exit and Crash on an already-dead process are
// no-ops, in any order.
func TestExitIsIdempotent(t *testing.T) {
	sys := testSystem(t)
	p, th := spawn(t, sys)
	vid, _ := lockableSeg(t, th, "idem.vas", "idem.seg")
	h, err := th.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	p.Exit()
	p.Crash()
	if !p.Dead() {
		t.Error("process not dead after Exit")
	}
	// The core is back in the pool: a fresh process can claim all 4.
	p2, err := sys.NewProcess(Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sys.M.Cores); i++ {
		if _, err := p2.NewThread(); err != nil {
			t.Fatalf("core %d not reclaimed: %v", i, err)
		}
	}
}
