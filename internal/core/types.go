// Package core implements the SpaceJMP object model and API (paper §3):
// virtual address spaces (VASes) as first-class OS objects that processes
// create, attach to, and switch between, and lockable segments as the unit
// of memory sharing and protection.
//
// The package is personality-neutral: the DragonFly BSD kernel
// implementation (internal/kernel) and the Barrelfish user-space
// implementation (internal/caps) plug in through the Personality interface,
// which supplies the control-path costs and the security model (§4.1, §4.2).
package core

import (
	"errors"

	"spacejmp/internal/arch"
)

// VASID names a virtual address space, global to the system.
type VASID uint64

// SegID names a segment, global to the system.
type SegID uint64

// Handle identifies one process's attachment to a VAS (the paper's vh).
type Handle uint64

// PrimaryHandle addresses the process's original address space, so a thread
// can switch back out of every SpaceJMP VAS.
const PrimaryHandle Handle = 0

// Creds identify a subject for access control decisions.
type Creds struct {
	UID uint32
	GID uint32
}

// API errors.
var (
	ErrNotFound = errors.New("spacejmp: no such object")
	ErrExists   = errors.New("spacejmp: name already exists")
	ErrDenied   = errors.New("spacejmp: access denied")
	ErrBusy     = errors.New("spacejmp: object busy")
	ErrLayout   = errors.New("spacejmp: address layout violation")
	// ErrInvalid reports a malformed syscall argument (a nil ctl command, a
	// machine missing required configuration).
	ErrInvalid = errors.New("spacejmp: invalid argument")
	// ErrProcessDead reports a syscall made by (or an injected crash of) a
	// process that has exited or crashed; the kernel reaper has already
	// reclaimed its cores, locks, and memory.
	ErrProcessDead = errors.New("spacejmp: process dead")
	// ErrNoSpace reports an allocation that cannot fit: a full segment
	// heap, an exhausted physical memory tier. Higher layers wrap it so
	// errors.Is recognizes "out of space" end to end.
	ErrNoSpace = errors.New("spacejmp: out of space")
	// ErrTimeout reports an operation that gave up waiting: a urpc call
	// whose retries were exhausted, a remote shard that never answered.
	// Transports wrap it so routing layers can tell a retryable timeout
	// from a payload error with one errors.Is test.
	ErrTimeout = errors.New("spacejmp: timed out")
)

// Conventional process layout. Process-private segments (text, globals,
// stack — the "common region" of §3.3) live below PrivateTop; globally
// visible segments must be allocated at or above GlobalBase. Keeping the two
// disjoint is how the DragonFly prototype avoids collisions between private
// and global segments on attach (§4.1).
const (
	TextBase    arch.VirtAddr = 0x0000_0000_0040_0000
	TextSize    uint64        = 2 << 20
	GlobalsBase arch.VirtAddr = 0x0000_0000_0080_0000
	GlobalsSize uint64        = 4 << 20
	StackBase   arch.VirtAddr = 0x0000_7F00_0000_0000
	StackSize   uint64        = 8 << 20

	// PrivateTop bounds process-private segments other than the stack.
	PrivateTop arch.VirtAddr = 0x0000_0010_0000_0000
	// GlobalBase is the lowest address a global segment may occupy. It is
	// PML4-slot aligned so segment translation caches can be linked whole.
	GlobalBase arch.VirtAddr = 0x0000_8000_0000_0000
)

// Personality abstracts the host OS design under the SpaceJMP model: what a
// control-path operation costs, what a switch costs beyond the CR3 write,
// and how access decisions are made. It reproduces the paper's two
// implementations (§4) as two values of one interface.
type Personality interface {
	// Name identifies the personality ("dragonfly", "barrelfish").
	Name() string
	// ControlCycles is the cost of entering the OS for a management
	// operation (vas_create, seg_attach, ...): a syscall in DragonFly, an
	// RPC to the user-space service in Barrelfish.
	ControlCycles() uint64
	// SwitchCycles is the cost of entering the OS for vas_switch,
	// excluding the CR3 load itself: syscall entry in DragonFly, one
	// capability invocation in Barrelfish.
	SwitchCycles() uint64
	// SwitchBookkeeping is the kernel/runtime work performed during a
	// switch (lock bookkeeping, vmspace lookup). Untagged switches pay
	// more because the OS's own translations are flushed too (Table 2).
	SwitchBookkeeping(tagged bool) uint64
	// CheckVAS authorizes access to a VAS at the given rights.
	CheckVAS(creds Creds, vas *VAS, want arch.Perm) error
	// CheckSeg authorizes access to a segment at the given rights.
	CheckSeg(creds Creds, seg *Segment, want arch.Perm) error
	// VASCreated and SegCreated let the personality attach its own
	// security state (ACLs, capabilities) to new objects.
	VASCreated(creds Creds, vas *VAS)
	SegCreated(creds Creds, seg *Segment)
}
