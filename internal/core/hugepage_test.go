package core

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
)

func TestHugePageSegment(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("huge.vas", 0o660)
	sid, err := th.SegAlloc("huge.seg", segBase(0), 8<<20, arch.PermRW, WithPageSize(arch.HugePageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	// Store/load across the segment.
	for off := uint64(0); off < 8<<20; off += arch.HugePageSize {
		if err := th.Store64(segBase(0)+arch.VirtAddr(off)+8, off); err != nil {
			t.Fatalf("store at +%#x: %v", off, err)
		}
	}
	for off := uint64(0); off < 8<<20; off += arch.HugePageSize {
		if v, _ := th.Load64(segBase(0) + arch.VirtAddr(off) + 8); v != off {
			t.Errorf("+%#x = %d", off, v)
		}
	}
	// The mapping really is 2 MiB: the leaf walk resolves with 3 refs and
	// reports the huge page size.
	r, err := th.Space().Table().Walk(segBase(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.PageSize != arch.HugePageSize || r.Refs != 3 {
		t.Errorf("walk = pagesize %d refs %d, want 2 MiB / 3 refs", r.PageSize, r.Refs)
	}
}

func TestHugeSegmentTLBReach(t *testing.T) {
	// 8 MiB with 2 MiB pages needs just 4 TLB entries: after the warm
	// pass, a sweep is all hits. With 4 KiB pages the same sweep would
	// need 2048 entries (beyond the test TLB's 64).
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("reach.vas", 0o660)
	sid, err := th.SegAlloc("reach.seg", segBase(0), 8<<20, arch.PermRW, WithPageSize(arch.HugePageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	sweep := func() {
		for off := uint64(0); off < 8<<20; off += arch.PageSize * 16 {
			if _, err := th.Load64(segBase(0) + arch.VirtAddr(off)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sweep()
	th.Core.ResetStats()
	sweep()
	if m := th.Core.Stats().TLBMisses; m != 0 {
		t.Errorf("huge-page sweep missed %d times after warmup", m)
	}
}

func TestHugeSegmentAlignmentRules(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	// Base not 2 MiB aligned.
	if _, err := th.SegAlloc("bad.base", segBase(0)+arch.PageSize, 4<<20, arch.PermRW, WithPageSize(arch.HugePageSize)); !errors.Is(err, ErrLayout) {
		t.Errorf("misaligned huge base: %v", err)
	}
	// Bogus page size.
	if _, err := th.SegAlloc("bad.ps", segBase(0), 4<<20, arch.PermRW, WithPageSize(8192)); !errors.Is(err, ErrLayout) {
		t.Errorf("bogus page size: %v", err)
	}
	// Size rounds up to whole huge pages.
	sid, err := th.SegAlloc("round", segBase(0), 3<<20, arch.PermRW, WithPageSize(arch.HugePageSize))
	if err != nil {
		t.Fatal(err)
	}
	seg := mustSeg(t, sys, sid)
	if seg.Size != 4<<20 {
		t.Errorf("size = %d, want rounded 4 MiB", seg.Size)
	}
}

func TestHugeSegmentCloneAndCache(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	sid, err := th.SegAlloc("hc.seg", segBase(0), 4<<20, arch.PermRW, WithPageSize(arch.HugePageSize))
	if err != nil {
		t.Fatal(err)
	}
	// Translation caching works at huge granularity.
	if err := th.SegCtl(sid, CacheTranslations()); err != nil {
		t.Fatal(err)
	}
	// Write through a local mapping, clone, verify the copy.
	if err := th.SegAttachLocal(PrimaryHandle, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0)+arch.HugePageSize+128, 777); err != nil {
		t.Fatal(err)
	}
	cid, err := th.SegClone(sid, "hc.copy")
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegDetachLocal(PrimaryHandle, sid); err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachLocal(PrimaryHandle, cid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0) + arch.HugePageSize + 128); v != 777 {
		t.Errorf("huge clone holds %d", v)
	}
}
