package core

import (
	"fmt"
	"sync"
	"time"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/stats"
	"spacejmp/internal/vm"
)

// Process is a SpaceJMP-aware process: the traditional process state (text,
// globals, stack — its private segments) plus any number of VAS attachments
// it can switch its threads between (Figure 2).
type Process struct {
	PID   int
	Creds Creds

	sys *System

	mu         sync.Mutex
	priv       []SegMapping // text, globals, stack: the common region
	primary    *vm.Space
	atts       map[Handle]*Attachment
	nextHandle Handle
	threads    []*Thread
	dead       bool

	// primaryTag is the TLB tag of the primary address space (ASIDFlush
	// unless System.SetTagPrimaries was enabled at process creation).
	primaryTag arch.ASID
}

// Attachment is one process's instantiation of a VAS: a private vmspace
// holding the process's common region plus the VAS's global segments
// (§4.1: "attaching creates a new process-private instance of a vmspace").
type Attachment struct {
	H     Handle
	VAS   *VAS
	Space *vm.Space
	proc  *Process

	// linked records segments installed by linking their cached
	// translation subtree rather than by per-page mappings.
	linked []*Segment
}

// Thread is an execution context bound to a simulated core. Every SpaceJMP
// API call is made by a thread, and the control-path cost is charged to its
// core's cycle counter.
type Thread struct {
	Proc *Process
	Core *hw.Core

	cur  *Attachment  // nil when running in the primary address space
	held []SegMapping // lockable segments currently locked by this thread

	// lockStart is the core's cycle count when the held lock set was
	// acquired, feeding the lock-hold histogram on release.
	lockStart uint64
}

// System returns the owning system.
func (p *Process) System() *System { return p.sys }

// Primary returns the process's original address space.
func (p *Process) Primary() *vm.Space { return p.primary }

// attachment resolves a handle. PrimaryHandle yields (nil, nil).
func (p *Process) attachment(h Handle) (*Attachment, error) {
	if h == PrimaryHandle {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.atts[h]
	if !ok {
		return nil, fmt.Errorf("%w: handle %d", ErrNotFound, h)
	}
	return a, nil
}

// Attachments returns the handles of every attached VAS.
func (p *Process) Attachments() []Handle {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Handle, 0, len(p.atts))
	for h := range p.atts {
		out = append(out, h)
	}
	return out
}

// NewThread creates a thread bound to a free core, starting in the primary
// address space.
func (p *Process) NewThread() (*Thread, error) {
	if p.Dead() {
		return nil, fmt.Errorf("%w: pid %d", ErrProcessDead, p.PID)
	}
	core, err := p.sys.claimCore()
	if err != nil {
		return nil, err
	}
	t := &Thread{Proc: p, Core: core}
	core.LoadCR3(p.primary.Table(), p.primaryTag)
	core.OnFault = p.primary.Handler()
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		p.sys.releaseCore(core)
		return nil, fmt.Errorf("%w: pid %d", ErrProcessDead, p.PID)
	}
	p.threads = append(p.threads, t)
	p.mu.Unlock()
	return t, nil
}

// Dead reports whether the process has exited or crashed.
func (p *Process) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// Exit tears the process down cleanly: threads leave their VASes (releasing
// segment locks through the ordinary switch path), then the kernel reaper
// reclaims cores, attachments, and private segments. VASes and global
// segments survive — they are first-class and independent of the process
// (§3.2). Exit on a dead process is a no-op.
func (p *Process) Exit() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	threads := append([]*Thread(nil), p.threads...)
	p.mu.Unlock()
	for _, t := range threads {
		if t.cur != nil {
			_ = t.Switch(PrimaryHandle)
		}
	}
	p.terminate()
}

// Crash models abrupt process death — a kill mid-syscall, a panic while
// switched into a VAS. No polite lock release happens: the process dies
// holding whatever segment locks its threads took, and the kernel reaper
// (System.reap) forcibly releases them, wakes blocked acquirers, and
// reclaims every frame the process owned. Crash on a dead process is a
// no-op.
func (p *Process) Crash() {
	p.terminate()
}

// terminate marks the process dead exactly once and hands its remains to
// the reaper.
func (p *Process) terminate() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	threads := p.threads
	p.threads = nil
	atts := make([]*Attachment, 0, len(p.atts))
	for _, a := range p.atts {
		atts = append(atts, a)
	}
	p.atts = map[Handle]*Attachment{}
	p.mu.Unlock()
	p.sys.reap(p, threads, atts)
}

// destroy unmaps and releases an attachment's vmspace.
func (a *Attachment) destroy() {
	a.VAS.dropAttachment(a)
	for _, seg := range a.linked {
		_ = a.Space.Table().UnlinkSubtree(seg.Base, 3)
	}
	a.Space.Destroy()
}

// installSeg maps a segment into the attachment's vmspace, preferring the
// segment's cached translation subtree when one exists at matching
// permissions and the slot is free.
func (a *Attachment) installSeg(seg *Segment, mapPerm arch.Perm) error {
	if sub, ok := seg.cacheSubtree(a.proc.sys.M.PM, mapPerm); ok {
		if err := a.Space.Table().LinkSubtree(arch.AlignDown(seg.Base, arch.LevelCoverage(3)), 3, sub); err == nil {
			a.linked = append(a.linked, seg)
			return nil
		}
		// Slot conflict: fall back to per-page mappings.
	}
	_, err := a.Space.Map(seg.Base, seg.Size, mapPerm, seg.Obj, 0, vm.MapFixed)
	return err
}

// removeSeg undoes installSeg.
func (a *Attachment) removeSeg(seg *Segment) error {
	for i, s := range a.linked {
		if s == seg {
			a.linked = append(a.linked[:i], a.linked[i+1:]...)
			if err := a.Space.Table().UnlinkSubtree(arch.AlignDown(seg.Base, arch.LevelCoverage(3)), 3); err != nil {
				return err
			}
			if a.Space.Shootdown != nil {
				a.Space.Shootdown(seg.Base, seg.Size)
			}
			return nil
		}
	}
	return a.Space.Unmap(seg.Base, seg.Size)
}

// Current returns the handle of the VAS the thread is switched into.
func (t *Thread) Current() Handle {
	if t.cur == nil {
		return PrimaryHandle
	}
	return t.cur.H
}

// Switch moves the thread into the address space identified by h — the
// paper's vas_switch. The sequence is: enter the OS, release the segment
// locks of the space being left, acquire the locks of the space being
// entered (shared for read-only mappings, exclusive for writable ones,
// blocking until granted), then overwrite CR3 (§3.1, §4.1).
func (t *Thread) Switch(h Handle) error {
	sys := t.Proc.sys
	obs := sys.M.Observer()
	t.Core.AddCyclesCat(stats.CatSwitch, sys.P.SwitchCycles())
	a, err := t.Proc.attachment(h)
	if err != nil {
		return err
	}
	if obs != nil && len(t.held) > 0 {
		obs.LockHold(t.Core.Cycles() - t.lockStart)
	}
	for i := len(t.held) - 1; i >= 0; i-- {
		t.held[i].Seg.release(t.held[i].Perm)
	}
	t.held = t.held[:0]

	var space *vm.Space
	tag := t.Proc.primaryTag
	if a == nil {
		space = t.Proc.primary
	} else {
		locks := a.VAS.lockSet()
		// Lock wait is measured in real nanoseconds: simulated cycles do
		// not advance while a goroutine blocks on another thread's lock.
		var waitStart time.Time
		if obs != nil && len(locks) > 0 {
			waitStart = time.Now()
		}
		for _, m := range locks {
			m.Seg.acquire(m.Perm)
		}
		if obs != nil && len(locks) > 0 {
			obs.LockWait(uint64(time.Since(waitStart)))
		}
		t.lockStart = t.Core.Cycles()
		t.held = locks
		space = a.Space
		tag = a.VAS.Tag()
	}
	t.Core.AddCyclesCat(stats.CatSwitch, sys.P.SwitchBookkeeping(tag != arch.ASIDFlush))
	t.Core.LoadCR3(space.Table(), tag)
	t.Core.OnFault = space.Handler()
	t.cur = a
	return nil
}

// Space returns the vmspace the thread currently runs in.
func (t *Thread) Space() *vm.Space {
	if t.cur == nil {
		return t.Proc.primary
	}
	return t.cur.Space
}

// Load64 reads an aligned word in the thread's current address space.
func (t *Thread) Load64(va arch.VirtAddr) (uint64, error) { return t.Core.Load64(va) }

// Store64 writes an aligned word in the thread's current address space.
func (t *Thread) Store64(va arch.VirtAddr, v uint64) error { return t.Core.Store64(va, v) }

// Read copies memory out of the thread's current address space.
func (t *Thread) Read(va arch.VirtAddr, buf []byte) error { return t.Core.Read(va, buf) }

// Write copies memory into the thread's current address space.
func (t *Thread) Write(va arch.VirtAddr, buf []byte) error { return t.Core.Write(va, buf) }
