package core

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/stats"
)

// Snapshotting and copy-on-write cloning — the address-space creation
// optimizations the paper lists as ongoing work in §7 ("copy-on-write,
// snapshotting, and versioning").

// SegCloneCOW creates a copy-on-write clone of a segment: the clone shares
// the original's frames until either side writes (writes to the original
// are prevented by dropping its... no — both sides keep full rights; the
// clone's pages are copied on its own first write, and writes to the
// original are immediately visible to the clone only for pages the clone
// has not yet written).
//
// Note the sharing direction: this gives the *clone* stable private pages
// on write, which is the cheap-copy primitive. For a true point-in-time
// snapshot that also isolates writes made to the original, snapshot the
// VAS instead (VASSnapshot freezes the original's segments by cloning and
// swapping).
func (t *Thread) SegCloneCOW(sid SegID, newName string) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.seg(sid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	sys.mu.Lock()
	if _, dup := sys.segByName[newName]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: segment %q", ErrExists, newName)
	}
	id := sys.nextSeg
	sys.nextSeg++
	sys.mu.Unlock()
	dst := &Segment{
		ID: id, Name: newName, Base: src.Base, Size: src.Size,
		Obj: src.Obj.CloneCOW(newName), Owner: t.Proc.Creds,
		perm: src.Perm(), lockable: src.Lockable(),
	}
	sys.mu.Lock()
	sys.segs[dst.ID] = dst
	sys.segByName[newName] = dst
	sys.mu.Unlock()
	sys.P.SegCreated(t.Proc.Creds, dst)
	return dst.ID, nil
}

// SegForkFrozen splits an immutable point-in-time view off a live segment:
// the returned segment owns the source's current frames (read-only, not
// lockable), and the source becomes a copy-on-write child of it — writes to
// the live segment after the fork break into private frames and never reach
// the frozen view. This is the fork side of a BGSAVE-style snapshot: the
// frozen segment can be attached read-only or have its image extracted
// (System.SegmentImageOf) while the original keeps serving writes.
//
// The caller must quiesce writers of the source for the duration of the call
// (the cluster holds the node mutex across it); SegForkFrozen downgrades
// every installed writable translation of the source afterwards so resumed
// writers fault and break COW instead of storing through stale PTEs.
//
// Segments with cached translation subtrees are refused: the cache holds
// writable PTEs pointing at what are now frozen frames and cannot be
// downgraded per-space.
func (t *Thread) SegForkFrozen(sid SegID, newName string) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.seg(sid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, src, arch.PermWrite); err != nil {
		return 0, err
	}
	if src.HasCache() {
		return 0, fmt.Errorf("%w: segment %q has cached translations; cannot fork frozen", ErrInvalid, src.Name)
	}
	sys.mu.Lock()
	if _, dup := sys.segByName[newName]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: segment %q", ErrExists, newName)
	}
	id := sys.nextSeg
	sys.nextSeg++
	vases := make([]*VAS, 0, len(sys.vases))
	for _, v := range sys.vases {
		vases = append(vases, v)
	}
	sys.mu.Unlock()
	dst := &Segment{
		ID: id, Name: newName, Base: src.Base, Size: src.Size,
		Obj: src.Obj.ForkFrozen(newName), Owner: t.Proc.Creds,
		perm: arch.PermRead, lockable: false, ephemeral: true,
	}
	// The live object's frames map is now empty; installed writable PTEs
	// still point at the frozen frames. Downgrade them everywhere the source
	// is mapped writable so the next store faults and breaks COW.
	for _, v := range vases {
		for _, m := range v.Mappings() {
			if m.Seg.ID != src.ID || !m.Perm.CanWrite() {
				continue
			}
			for _, a := range v.attachments() {
				if err := a.Space.DowngradeWrites(src.Base, src.Size); err != nil {
					dst.Obj.Unref()
					src.Obj.CollapseCOW()
					return 0, fmt.Errorf("spacejmp: downgrading writers of %q: %w", src.Name, err)
				}
			}
		}
	}
	sys.mu.Lock()
	sys.segs[dst.ID] = dst
	sys.segByName[newName] = dst
	sys.mu.Unlock()
	sys.P.SegCreated(t.Proc.Creds, dst)
	return dst.ID, nil
}

// VASSnapshot creates a point-in-time copy of a VAS: a new VAS whose
// segments are copy-on-write clones of the original's, named
// "<segment>@<snapshot>". The snapshot is immediately attachable; its
// memory cost is one frame per page *written* through it, not the full
// footprint (§7's snapshotting optimization).
//
// The snapshot diverges from the original on the snapshot's writes. Writes
// to the original after the snapshot remain visible through the snapshot's
// unwritten pages; freeze the original (map it read-only in its VAS, or
// quiesce writers via the segment locks) if a strict point-in-time image
// is required — the RedisJMP pattern of taking snapshots while holding the
// exclusive lock does exactly that.
func (t *Thread) VASSnapshot(vid VASID, snapName string) (VASID, error) {
	sys, done, err := t.enter(stats.OpVASClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.vas(vid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	newVID, err := t.VASCreate(snapName, src.Mode)
	if err != nil {
		return 0, err
	}
	for _, m := range src.Mappings() {
		cloneID, err := t.SegCloneCOW(m.Seg.ID, fmt.Sprintf("%s@%s", m.Seg.Name, snapName))
		if err != nil {
			return 0, err
		}
		if err := t.SegAttachVAS(newVID, cloneID, m.Perm); err != nil {
			return 0, err
		}
	}
	return newVID, nil
}
