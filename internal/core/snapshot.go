package core

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/stats"
)

// Snapshotting and copy-on-write cloning — the address-space creation
// optimizations the paper lists as ongoing work in §7 ("copy-on-write,
// snapshotting, and versioning").

// SegCloneCOW creates a copy-on-write clone of a segment: the clone shares
// the original's frames until either side writes (writes to the original
// are prevented by dropping its... no — both sides keep full rights; the
// clone's pages are copied on its own first write, and writes to the
// original are immediately visible to the clone only for pages the clone
// has not yet written).
//
// Note the sharing direction: this gives the *clone* stable private pages
// on write, which is the cheap-copy primitive. For a true point-in-time
// snapshot that also isolates writes made to the original, snapshot the
// VAS instead (VASSnapshot freezes the original's segments by cloning and
// swapping).
func (t *Thread) SegCloneCOW(sid SegID, newName string) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.seg(sid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	sys.mu.Lock()
	if _, dup := sys.segByName[newName]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: segment %q", ErrExists, newName)
	}
	id := sys.nextSeg
	sys.nextSeg++
	sys.mu.Unlock()
	dst := &Segment{
		ID: id, Name: newName, Base: src.Base, Size: src.Size,
		Obj: src.Obj.CloneCOW(newName), Owner: t.Proc.Creds,
		perm: src.Perm(), lockable: src.Lockable(),
	}
	sys.mu.Lock()
	sys.segs[dst.ID] = dst
	sys.segByName[newName] = dst
	sys.mu.Unlock()
	sys.P.SegCreated(t.Proc.Creds, dst)
	return dst.ID, nil
}

// VASSnapshot creates a point-in-time copy of a VAS: a new VAS whose
// segments are copy-on-write clones of the original's, named
// "<segment>@<snapshot>". The snapshot is immediately attachable; its
// memory cost is one frame per page *written* through it, not the full
// footprint (§7's snapshotting optimization).
//
// The snapshot diverges from the original on the snapshot's writes. Writes
// to the original after the snapshot remain visible through the snapshot's
// unwritten pages; freeze the original (map it read-only in its VAS, or
// quiesce writers via the segment locks) if a strict point-in-time image
// is required — the RedisJMP pattern of taking snapshots while holding the
// exclusive lock does exactly that.
func (t *Thread) VASSnapshot(vid VASID, snapName string) (VASID, error) {
	sys, done, err := t.enter(stats.OpVASClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.vas(vid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	newVID, err := t.VASCreate(snapName, src.Mode)
	if err != nil {
		return 0, err
	}
	for _, m := range src.Mappings() {
		cloneID, err := t.SegCloneCOW(m.Seg.ID, fmt.Sprintf("%s@%s", m.Seg.Name, snapName))
		if err != nil {
			return 0, err
		}
		if err := t.SegAttachVAS(newVID, cloneID, m.Perm); err != nil {
			return 0, err
		}
	}
	return newVID, nil
}
