package core

import (
	"strings"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
	"spacejmp/internal/tlb"
)

func persistentMachine() *hw.Machine {
	return hw.NewMachine(hw.MachineConfig{
		Name: "persist-test", Sockets: 1, CoresPerSocket: 2, GHz: 2.0,
		Mem: mem.Config{DRAMSize: 256 << 20, NVMSize: 128 << 20, NVMSuperblock: 1 << 20},
		TLB: tlb.Config{Sets: 16, Ways: 4}, Cost: hw.DefaultCost,
	})
}

func TestCheckpointRestoreAcrossPowerCycle(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)

	vid, err := th.VASCreate("durable.vas", 0o660)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc("durable.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.VASCtl(CtlSetTag, vid, nil); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0)+64, 0xD00DFEED); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}

	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Reboot: DRAM dies, a fresh OS instance boots on the same machine.
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}

	p2, err := sys2.NewProcess(Creds{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	found, err := t2.VASFind("durable.vas")
	if err != nil {
		t.Fatalf("restored VAS not findable: %v", err)
	}
	if found != vid {
		t.Errorf("restored VAS id = %d, want %d", found, vid)
	}
	h2, err := t2.VASAttach(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	v, err := t2.Load64(segBase(0) + 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xD00DFEED {
		t.Errorf("data after reboot = %#x", v)
	}
	// The restored VAS kept its tag and the segment its properties.
	rv, _ := sys2.vas(found)
	if rv.Tag() == arch.ASIDFlush {
		t.Error("TLB tag lost across reboot")
	}
	rs, err := sys2.SegByID(sid)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Lockable() || rs.Perm() != arch.PermRW || rs.Base != segBase(0) {
		t.Errorf("segment properties lost: %+v", rs)
	}
	// And the restored system keeps allocating fresh, non-colliding IDs.
	nvid, err := t2.VASCreate("new.vas", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if nvid <= vid {
		t.Errorf("post-restore VAS id %d collides with restored id space", nvid)
	}
}

func TestDRAMSegmentsNotPersisted(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("mixed.vas", 0o660)
	// DRAM segment (default tier).
	dram, err := th.SegAlloc("volatile.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, dram, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	// NVM segment.
	sys.SetSegmentTier(mem.TierNVM)
	nvm, err := th.SegAlloc("durable.seg", segBase(1), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, nvm, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.SegByID(nvm); err != nil {
		t.Errorf("NVM segment not restored: %v", err)
	}
	if _, err := sys2.SegByID(dram); err == nil {
		t.Error("DRAM segment restored; its content died with the power")
	}
	v, err := sys2.vas(vid)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Mappings()) != 1 || v.Mappings()[0].Seg.ID != nvm {
		t.Errorf("restored VAS mappings = %+v", v.Mappings())
	}
}

func TestRestoreGuards(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	// No checkpoint written yet.
	if err := sys.Restore(); err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Errorf("restore without checkpoint: %v", err)
	}
	// A machine without a superblock cannot checkpoint.
	plain := NewSystem(hw.NewMachine(hw.SmallTest()), testPersonality{})
	if err := plain.Checkpoint(); err == nil {
		t.Error("checkpoint without superblock accepted")
	}
	// Restore into a non-empty system is refused.
	_, th := spawn(t, sys)
	if _, err := th.VASCreate("x", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(); err == nil {
		t.Error("restore into live system accepted")
	}
}

func TestCheckpointIsIdempotentAndUpdatable(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)
	if _, err := th.VASCreate("v1", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.VASCreate("v2", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil { // overwrite with newer image
		t.Fatal(err)
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	_, th2 := spawn(t, sys2)
	if _, err := th2.VASFind("v2"); err != nil {
		t.Errorf("second checkpoint not effective: %v", err)
	}
}
