package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
	"spacejmp/internal/tlb"
)

func persistentMachine() *hw.Machine {
	return hw.NewMachine(hw.MachineConfig{
		Name: "persist-test", Sockets: 1, CoresPerSocket: 2, GHz: 2.0,
		Mem: mem.Config{DRAMSize: 256 << 20, NVMSize: 128 << 20, NVMSuperblock: 1 << 20},
		TLB: tlb.Config{Sets: 16, Ways: 4}, Cost: hw.DefaultCost,
	})
}

func TestCheckpointRestoreAcrossPowerCycle(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)

	vid, err := th.VASCreate("durable.vas", 0o660)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc("durable.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.VASCtl(vid, SetTag()); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0)+64, 0xD00DFEED); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}

	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Reboot: DRAM dies, a fresh OS instance boots on the same machine.
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}

	p2, err := sys2.NewProcess(Creds{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	found, err := t2.VASFind("durable.vas")
	if err != nil {
		t.Fatalf("restored VAS not findable: %v", err)
	}
	if found != vid {
		t.Errorf("restored VAS id = %d, want %d", found, vid)
	}
	h2, err := t2.VASAttach(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	v, err := t2.Load64(segBase(0) + 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xD00DFEED {
		t.Errorf("data after reboot = %#x", v)
	}
	// The restored VAS kept its tag and the segment its properties.
	rv, _ := sys2.vas(found)
	if rv.Tag() == arch.ASIDFlush {
		t.Error("TLB tag lost across reboot")
	}
	rs, err := sys2.SegByID(sid)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Lockable() || rs.Perm() != arch.PermRW || rs.Base != segBase(0) {
		t.Errorf("segment properties lost: %+v", rs)
	}
	// And the restored system keeps allocating fresh, non-colliding IDs.
	nvid, err := t2.VASCreate("new.vas", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if nvid <= vid {
		t.Errorf("post-restore VAS id %d collides with restored id space", nvid)
	}
}

func TestDRAMSegmentsNotPersisted(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("mixed.vas", 0o660)
	// DRAM segment (default tier).
	dram, err := th.SegAlloc("volatile.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, dram, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	// NVM segment.
	sys.SetSegmentTier(mem.TierNVM)
	nvm, err := th.SegAlloc("durable.seg", segBase(1), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, nvm, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.SegByID(nvm); err != nil {
		t.Errorf("NVM segment not restored: %v", err)
	}
	if _, err := sys2.SegByID(dram); err == nil {
		t.Error("DRAM segment restored; its content died with the power")
	}
	v, err := sys2.vas(vid)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Mappings()) != 1 || v.Mappings()[0].Seg.ID != nvm {
		t.Errorf("restored VAS mappings = %+v", v.Mappings())
	}
}

func TestRestoreGuards(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	// No checkpoint written yet: the typed error lets callers reformat.
	if err := sys.Restore(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("restore without checkpoint: %v", err)
	}
	// A machine without a superblock cannot checkpoint.
	plain := NewSystem(hw.NewMachine(hw.SmallTest()), testPersonality{})
	if err := plain.Checkpoint(); err == nil {
		t.Error("checkpoint without superblock accepted")
	}
	// Restore into a non-empty system is refused.
	_, th := spawn(t, sys)
	if _, err := th.VASCreate("x", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(); err == nil {
		t.Error("restore into live system accepted")
	}
}

func TestCheckpointIsIdempotentAndUpdatable(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)
	if _, err := th.VASCreate("v1", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.VASCreate("v2", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil { // overwrite with newer image
		t.Fatal(err)
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	_, th2 := spawn(t, sys2)
	if _, err := th2.VASFind("v2"); err != nil {
		t.Errorf("second checkpoint not effective: %v", err)
	}
}

// checkpointWithVAS creates a system on m with one NVM-backed VAS named
// name and checkpoints it.
func checkpointWithVAS(t *testing.T, m *hw.Machine, name string) *System {
	t.Helper()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)
	if _, err := th.VASCreate(name, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// tornCheckpoint arms the torn-NVM-write point on the nth WriteAt of the
// next Checkpoint (1 = payload, 2 = commit header), runs a second
// checkpoint containing VAS "gen2", and verifies that after the implied
// power loss Restore boots the previous generation.
func tornCheckpoint(t *testing.T, nth uint64) {
	t.Helper()
	m := persistentMachine()
	reg := fault.New(7)
	m.SetFaults(reg)
	sys := checkpointWithVAS(t, m, "gen1")

	_, th := spawn(t, sys)
	if _, err := th.VASCreate("gen2", 0o600); err != nil {
		t.Fatal(err)
	}
	reg.Enable(fault.MemWriteTorn, fault.OnNth(nth))
	err := sys.Checkpoint()
	reg.Disable(fault.MemWriteTorn)
	if !errors.Is(err, mem.ErrTornWrite) {
		t.Fatalf("torn checkpoint returned %v, want ErrTornWrite", err)
	}

	// Power cut at the torn write: DRAM gone, NVM holds a half-written
	// generation plus the intact previous one.
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatalf("restore after torn write: %v", err)
	}
	_, th2 := spawn(t, sys2)
	if _, err := th2.VASFind("gen1"); err != nil {
		t.Errorf("previous generation lost: %v", err)
	}
	if _, err := th2.VASFind("gen2"); !errors.Is(err, ErrNotFound) {
		t.Errorf("half-committed generation visible: %v", err)
	}
}

func TestTornPayloadWriteKeepsPreviousGeneration(t *testing.T) { tornCheckpoint(t, 1) }
func TestTornHeaderWriteKeepsPreviousGeneration(t *testing.T)  { tornCheckpoint(t, 2) }

func TestCheckpointAlternatesSlotsUnderRepeatedTearing(t *testing.T) {
	// Generations ping-pong between the two slots: tearing checkpoint N
	// never threatens checkpoint N-1, round after round.
	m := persistentMachine()
	reg := fault.New(3)
	m.SetFaults(reg)
	sys := checkpointWithVAS(t, m, "round0")
	_, th := spawn(t, sys)
	for round := 1; round <= 4; round++ {
		name := fmt.Sprintf("round%d", round)
		if _, err := th.VASCreate(name, 0o600); err != nil {
			t.Fatal(err)
		}
		reg.Enable(fault.MemWriteTorn, fault.OnNth(uint64(1+round%2)))
		if err := sys.Checkpoint(); !errors.Is(err, mem.ErrTornWrite) {
			t.Fatalf("round %d: %v", round, err)
		}
		reg.Disable(fault.MemWriteTorn)
		if err := sys.Checkpoint(); err != nil { // retry succeeds
			t.Fatalf("round %d retry: %v", round, err)
		}
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	_, th2 := spawn(t, sys2)
	if _, err := th2.VASFind("round4"); err != nil {
		t.Errorf("newest retried generation not restored: %v", err)
	}
}

func TestRestoreCorruptCheckpoint(t *testing.T) {
	m := persistentMachine()
	sys := checkpointWithVAS(t, m, "v")
	_ = sys
	// Scribble over the committed payload: the header still carries the
	// magic, so this is damage, not fresh NVM.
	sbBase, sbSize := m.PM.Superblock()
	for i := 0; i < 2; i++ {
		slotBase := sbBase + arch.PhysAddr(uint64(i)*(sbSize/2))
		if err := m.PM.WriteAt(slotBase+40, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	m.PM.PowerCycle()
	sys2 := NewSystem(m, testPersonality{})
	if err := sys2.Restore(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("restore of scribbled checkpoint: %v", err)
	}
}

func TestCheckpointSegmentRoundTrip(t *testing.T) {
	m := persistentMachine()
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)

	vid, err := th.VASCreate("img.vas", 0o660)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc("img.seg", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	// Touch two distinct pages so content survives round trip.
	if err := th.Store64(segBase(0)+8, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0)+3*arch.PageSize+16, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}

	if _, err := sys.CheckpointSegment("img.seg"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("before any checkpoint: err = %v, want ErrNoCheckpoint", err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	img, err := sys.CheckpointSegment("img.seg")
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "img.seg" || img.Size != 1<<20 || !img.Lockable || img.Seq == 0 {
		t.Fatalf("image metadata = %+v", img)
	}
	if want := int((1 << 20) / arch.PageSize); len(img.Pages) != want {
		t.Fatalf("image holds %d pages, want all %d backing pages", len(img.Pages), want)
	}
	word := func(page []byte, off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(page[off+i]) << (8 * i)
		}
		return v
	}
	if p := img.Pages[0]; p == nil || word(p, 8) != 0xAABBCCDD {
		t.Errorf("page 0 content wrong")
	}
	if p := img.Pages[3]; p == nil || word(p, 16) != 0x11223344 {
		t.Errorf("page 3 content wrong")
	}

	if _, err := sys.CheckpointSegment("no.such.seg"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown segment: err = %v, want ErrNotFound", err)
	}
}

func TestCheckpointSegmentCorrupt(t *testing.T) {
	// Every checkpoint tears its header write (a custom policy firing on the
	// second WriteAt of each attempt), so no generation ever validates:
	// magic-but-invalid headers must surface as ErrCorruptCheckpoint, never
	// as a silent empty image.
	m := persistentMachine()
	reg := fault.New(3)
	m.SetFaults(reg)
	sys := NewSystem(m, testPersonality{})
	sys.SetSegmentTier(mem.TierNVM)
	_, th := spawn(t, sys)
	if _, err := th.VASCreate("corrupt.vas", 0o600); err != nil {
		t.Fatal(err)
	}
	// Hit 1 of each checkpoint is the payload write, hit 2 the commit
	// header: tearing every second write corrupts every header ever
	// committed, so no slot validates.
	reg.Enable(fault.MemWriteTorn, func(hit uint64, _ *rand.Rand) bool { return hit%2 == 0 })
	if err := sys.Checkpoint(); err == nil {
		t.Fatal("torn checkpoint reported success")
	}
	if _, err := sys.CheckpointSegment("corrupt.seg"); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}
