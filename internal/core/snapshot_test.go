package core

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
)

func TestSegCloneCOWSharesUntilWrite(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	sid, err := th.SegAlloc("cow.src", segBase(0), 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// Write through a VAS attachment.
	vid, _ := th.VASCreate("cow.v", 0o660)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0), 111); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}

	before := sys.M.PM.Stats().AllocatedBytes
	cid, err := th.SegCloneCOW(sid, "cow.copy")
	if err != nil {
		t.Fatal(err)
	}
	if grown := sys.M.PM.Stats().AllocatedBytes - before; grown != 0 {
		t.Errorf("COW clone allocated %d bytes up front", grown)
	}
	// Read through the clone: shares the source's data.
	cv, _ := th.VASCreate("cow.cv", 0o660)
	if err := th.SegAttachVAS(cv, cid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	ch, _ := th.VASAttach(cv)
	if err := th.VASSwitch(ch); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0)); v != 111 {
		t.Errorf("clone reads %d, want shared 111", v)
	}
	// Write through the clone: breaks COW for that page only.
	if err := th.Store64(segBase(0), 222); err != nil {
		t.Fatalf("COW write: %v", err)
	}
	if v, _ := th.Load64(segBase(0)); v != 222 {
		t.Errorf("clone reads %d after its own write", v)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0)); v != 111 {
		t.Errorf("original sees %d after clone write, want 111", v)
	}
	// Exactly one page was copied.
	seg, _ := sys.seg(cid)
	if res := seg.Obj.Resident(); res != 1 {
		t.Errorf("clone resident pages = %d, want 1", res)
	}
}

func TestVASSnapshot(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("live", 0o660)
	sid, _ := th.SegAlloc("data", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := th.Store64(segBase(0)+arch.VirtAddr(i*8), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}

	snapID, err := th.VASSnapshot(vid, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot has its own segment objects mapped at the same bases.
	sh, err := th.VASAttach(snapID)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(sh); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if v, _ := th.Load64(segBase(0) + arch.VirtAddr(i*8)); v != uint64(100+i) {
			t.Errorf("snapshot word %d = %d", i, v)
		}
	}
	// Writes through the snapshot do not leak into the live VAS.
	if err := th.Store64(segBase(0), 999); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0)); v != 100 {
		t.Errorf("live VAS sees snapshot write: %d", v)
	}
	// The snapshot's segment is registered under a derived name.
	if _, err := th.SegFind("data@snap1"); err != nil {
		t.Errorf("snapshot segment not registered: %v", err)
	}
	if _, err := th.VASSnapshot(vid, "snap1"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate snapshot name: %v", err)
	}
}

func TestSnapshotIsCheap(t *testing.T) {
	sys := NewSystem(hw.NewMachine(hw.SmallTest()), testPersonality{})
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("big", 0o660)
	sid, _ := th.SegAlloc("bigseg", segBase(0), 8<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	before := sys.M.PM.Stats().AllocatedBytes
	if _, err := th.VASSnapshot(vid, "cheap"); err != nil {
		t.Fatal(err)
	}
	grown := sys.M.PM.Stats().AllocatedBytes - before
	if grown > 1<<16 { // metadata only, nowhere near the 8 MiB footprint
		t.Errorf("snapshot of 8 MiB VAS allocated %d bytes", grown)
	}
}
