package core

import (
	"spacejmp/internal/mem"
)

// segConfig collects the optional knobs of SegAlloc. The zero value is not
// meaningful; SegAlloc seeds the defaults (4 KiB pages, the system's segment
// tier, lockable) before applying options.
type segConfig struct {
	pageSize uint64
	tier     mem.Tier
	tierSet  bool
	lockable bool
}

// SegOption configures SegAlloc.
type SegOption func(*segConfig)

// WithPageSize selects the backing page size (arch.PageSize or
// arch.HugePageSize). Huge segments use 2 MiB leaf translations: three-level
// walks and far larger TLB reach, the trade-off discussed in the paper's
// related work (§6, large pages).
func WithPageSize(pageSize uint64) SegOption {
	return func(c *segConfig) { c.pageSize = pageSize }
}

// WithTier overrides the memory tier backing the segment for this allocation
// only (mem.TierDRAM or mem.TierNVM), independent of
// System.SetSegmentTier's system-wide default.
func WithTier(t mem.Tier) SegOption {
	return func(c *segConfig) { c.tier = t; c.tierSet = true }
}

// WithLockable sets whether switches must take the segment's reader/writer
// lock (§3.1). Segments are lockable by default.
func WithLockable(v bool) SegOption {
	return func(c *segConfig) { c.lockable = v }
}
