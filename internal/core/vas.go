package core

import (
	"sort"
	"sync"

	"spacejmp/internal/arch"
)

// SegMapping is one segment's membership in a VAS, carrying the permissions
// it is mapped with there. The same segment can be mapped read-only in one
// VAS and writable in another (the RedisJMP pattern, §5.3), which in turn
// decides the lock mode taken on switch.
type SegMapping struct {
	Seg  *Segment
	Perm arch.Perm
}

// VAS is a first-class virtual address space: a named set of non-overlapping
// global segments, independent of any process (§3.2). Processes attach to a
// VAS to obtain a concrete, process-private address space instance
// (an Attachment wrapping a vmspace) they can switch into.
type VAS struct {
	ID    VASID
	Name  string
	Owner Creds
	Mode  uint16 // Unix-style permission bits, interpreted by the personality

	// Security is personality state (ACL record, capability).
	Security any

	mu   sync.Mutex
	segs []SegMapping
	tag  arch.ASID // TLB tag; ASIDFlush means untagged (§4.4)
	atts map[*Attachment]struct{}
}

// Tag returns the VAS's TLB tag (ASIDFlush if untagged).
func (v *VAS) Tag() arch.ASID {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.tag
}

func (v *VAS) setTag(t arch.ASID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tag = t
}

// Mappings returns a snapshot of the VAS's segment list.
func (v *VAS) Mappings() []SegMapping {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]SegMapping, len(v.segs))
	copy(out, v.segs)
	return out
}

// lockSet returns the lockable mappings in deterministic (SegID) order, the
// order every switch acquires locks in, which rules out lock-order
// deadlocks between concurrent switchers.
func (v *VAS) lockSet() []SegMapping {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []SegMapping
	for _, m := range v.segs {
		if m.Seg.Lockable() {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seg.ID < out[j].Seg.ID })
	return out
}

// overlapsLocked reports whether [base, base+size) intersects any mapped
// segment. Caller holds v.mu.
func (v *VAS) overlapsLocked(base arch.VirtAddr, size uint64) bool {
	end := base + arch.VirtAddr(size)
	for _, m := range v.segs {
		if m.Seg.Base < end && base < m.Seg.End() {
			return true
		}
	}
	return false
}

// addSeg registers a mapping; the segment must not overlap existing ones.
func (v *VAS) addSeg(m SegMapping) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.overlapsLocked(m.Seg.Base, m.Seg.Size) {
		return false
	}
	v.segs = append(v.segs, m)
	return true
}

// removeSeg unregisters a segment; reports whether it was mapped.
func (v *VAS) removeSeg(id SegID) (SegMapping, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, m := range v.segs {
		if m.Seg.ID == id {
			v.segs = append(v.segs[:i], v.segs[i+1:]...)
			return m, true
		}
	}
	return SegMapping{}, false
}

// attachments returns a snapshot of current attachments.
func (v *VAS) attachments() []*Attachment {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Attachment, 0, len(v.atts))
	for a := range v.atts {
		out = append(out, a)
	}
	return out
}

func (v *VAS) addAttachment(a *Attachment) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.atts[a] = struct{}{}
}

func (v *VAS) dropAttachment(a *Attachment) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.atts, a)
}

// AttachCount returns the number of processes currently attached.
func (v *VAS) AttachCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.atts)
}
