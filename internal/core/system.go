package core

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
	"spacejmp/internal/stats"
	"spacejmp/internal/vm"
)

// System is the OS-side SpaceJMP state: the registries of first-class VASes
// and segments, the process table, and the TLB tag allocator, bound to a
// simulated machine and an OS personality.
type System struct {
	M *hw.Machine
	P Personality

	mu           sync.Mutex
	vases        map[VASID]*VAS
	vasByName    map[string]*VAS
	segs         map[SegID]*Segment
	segByName    map[string]*Segment
	nextVAS      VASID
	nextSeg      SegID
	nextPID      int
	nextASID     arch.ASID
	coreInUse    []bool
	segTier      mem.Tier
	tagPrimaries bool
	switchures   uint64 // total vas_switch count (Figure 9's switch rate)
}

// NewSystem boots a SpaceJMP system on the given machine with the given
// personality.
func NewSystem(m *hw.Machine, p Personality) *System {
	return &System{
		M: m, P: p,
		vases: map[VASID]*VAS{}, vasByName: map[string]*VAS{},
		segs: map[SegID]*Segment{}, segByName: map[string]*Segment{},
		nextVAS: 1, nextSeg: 1, nextPID: 1, nextASID: 1,
		coreInUse: make([]bool, len(m.Cores)),
		segTier:   mem.TierDRAM,
	}
}

// SetSegmentTier selects the memory tier backing subsequently created
// segments (TierNVM gives segments that survive power cycles, §7).
func (sys *System) SetSegmentTier(t mem.Tier) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	sys.segTier = t
}

// SetTagPrimaries makes subsequently created processes' primary address
// spaces TLB-tagged, so switching between a tagged VAS and the process's
// own space retains translations in both directions — the configuration
// behind the paper's tagged measurements (Table 2, Figure 10a).
func (sys *System) SetTagPrimaries(v bool) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	sys.tagPrimaries = v
}

// allocTag hands out a fresh, never-reused TLB tag.
func (sys *System) allocTag() (arch.ASID, error) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	if sys.nextASID >= arch.MaxASID {
		return 0, fmt.Errorf("%w: out of TLB tags", ErrBusy)
	}
	tag := sys.nextASID
	sys.nextASID++
	return tag, nil
}

// installShootdown arranges TLB invalidation across all cores when
// translations are removed from the space. tagOf yields the tag the space's
// entries are cached under at invalidation time.
func (sys *System) installShootdown(space *vm.Space, tagOf func() arch.ASID) {
	space.Shootdown = func(va arch.VirtAddr, size uint64) {
		pages := arch.PagesIn(size)
		tag := tagOf()
		entries := 0
		for _, c := range sys.M.Cores {
			if pages > 64 {
				entries += c.TLB.FlushASID(tag)
				if tag != arch.ASIDFlush {
					continue
				}
				entries += c.TLB.FlushAll()
				continue
			}
			for i := uint64(0); i < pages; i++ {
				a := va + arch.VirtAddr(i*arch.PageSize)
				entries += c.TLB.FlushPage(tag, a)
				if tag != arch.ASIDFlush {
					entries += c.TLB.FlushPage(arch.ASIDFlush, a)
				}
			}
		}
		sys.M.Observer().Shootdown(pages, entries)
	}
}

// Switches returns the number of vas_switch operations performed.
func (sys *System) Switches() uint64 {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	return sys.switchures
}

func (sys *System) countSwitch(t *Thread, h Handle) {
	sys.mu.Lock()
	sys.switchures++
	sys.mu.Unlock()
	sys.M.Observer().VASSwitch(t.Core.ID, t.Proc.PID, uint64(h))
}

// EnableStats turns on machine-wide observability (see hw.Machine.EnableStats)
// and returns the live sink. Address spaces built after this call also feed
// the page-table counters; enable stats before creating processes and
// segments for complete accounting.
func (sys *System) EnableStats(traceCap int) *stats.Sink {
	return sys.M.EnableStats(traceCap)
}

// Stats returns an immutable snapshot of every observability counter,
// completed with the syscall-layer totals, or nil when stats are disabled.
func (sys *System) Stats() *stats.Snapshot {
	snap := sys.M.StatsSnapshot()
	if snap != nil {
		snap.Switches = sys.Switches()
	}
	return snap
}

// Tracer returns the installed trace ring, or nil when tracing is off.
func (sys *System) Tracer() *stats.Tracer {
	return sys.M.Observer().Tracer()
}

// claimCore reserves a free core for a thread.
func (sys *System) claimCore() (*hw.Core, error) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	for i, used := range sys.coreInUse {
		if !used {
			sys.coreInUse[i] = true
			return sys.M.Cores[i], nil
		}
	}
	return nil, fmt.Errorf("%w: all %d cores busy", ErrBusy, len(sys.coreInUse))
}

func (sys *System) releaseCore(c *hw.Core) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	sys.coreInUse[c.ID] = false
}

// NewProcess creates a process with the traditional private segments (text,
// globals, stack) mapped into a primary address space.
func (sys *System) NewProcess(creds Creds) (*Process, error) {
	sys.mu.Lock()
	pid := sys.nextPID
	sys.nextPID++
	sys.mu.Unlock()

	p := &Process{PID: pid, Creds: creds, sys: sys, atts: map[Handle]*Attachment{}, nextHandle: 1}
	sys.mu.Lock()
	tagIt := sys.tagPrimaries
	sys.mu.Unlock()
	if tagIt {
		tag, err := sys.allocTag()
		if err != nil {
			return nil, err
		}
		p.primaryTag = tag
	}
	layout := []struct {
		name string
		base arch.VirtAddr
		size uint64
		perm arch.Perm
	}{
		{"text", TextBase, TextSize, arch.PermRead | arch.PermExec},
		{"globals", GlobalsBase, GlobalsSize, arch.PermRW},
		{"stack", StackBase, StackSize, arch.PermRW},
	}
	for _, l := range layout {
		seg := sys.newSegmentLocked(fmt.Sprintf("pid%d.%s", pid, l.name), l.base, l.size, l.perm, creds, false)
		p.priv = append(p.priv, SegMapping{Seg: seg, Perm: l.perm})
	}
	space, err := sys.buildSpace(p, nil)
	if err != nil {
		return nil, err
	}
	p.primary = space
	return p, nil
}

// newSegmentLocked constructs a segment without registering it by name
// (used for process-private segments). Global registration happens in
// SegAlloc.
func (sys *System) newSegmentLocked(name string, base arch.VirtAddr, size uint64, perm arch.Perm, owner Creds, lockable bool) *Segment {
	return sys.newSegment(name, base, size, perm, owner, segConfig{pageSize: arch.PageSize, lockable: lockable})
}

func (sys *System) newSegment(name string, base arch.VirtAddr, size uint64, perm arch.Perm, owner Creds, cfg segConfig) *Segment {
	sys.mu.Lock()
	id := sys.nextSeg
	sys.nextSeg++
	tier := sys.segTier
	sys.mu.Unlock()
	if cfg.tierSet {
		tier = cfg.tier
	}
	size = (size + cfg.pageSize - 1) &^ (cfg.pageSize - 1)
	return &Segment{
		ID: id, Name: name, Base: base, Size: size,
		Obj: vm.NewObjectPages(sys.M.PM, name, size, tier, cfg.pageSize), Owner: owner,
		perm: perm, lockable: cfg.lockable,
	}
}

// buildSpace creates a vmspace holding the process's private segments plus,
// if vas is non-nil, the VAS's global segments.
func (sys *System) buildSpace(p *Process, a *Attachment) (*vm.Space, error) {
	space, err := vm.NewSpace(sys.M.PM)
	if err != nil {
		return nil, err
	}
	space.SetObserver(sys.M.Observer())
	if a != nil {
		vas := a.VAS
		sys.installShootdown(space, vas.Tag)
	} else {
		tag := p.primaryTag
		sys.installShootdown(space, func() arch.ASID { return tag })
	}
	for _, m := range p.priv {
		if _, err := space.Map(m.Seg.Base, m.Seg.Size, m.Perm, m.Seg.Obj, 0, vm.MapFixed); err != nil {
			space.Destroy()
			return nil, fmt.Errorf("mapping private segment %q: %w", m.Seg.Name, err)
		}
	}
	if a != nil {
		a.Space = space
		for _, m := range a.VAS.Mappings() {
			if err := a.installSeg(m.Seg, m.Perm); err != nil {
				space.Destroy()
				return nil, fmt.Errorf("mapping segment %q: %w", m.Seg.Name, err)
			}
		}
	}
	return space, nil
}

// --- The VAS API (Figure 3), charged to the calling thread's core. ---

// gate is the syscall-boundary check every API entry makes after paying the
// entry cost: a dead process cannot make syscalls, and an armed
// fault.CoreSyscallCrash point kills the process right here — after entry,
// before the operation — leaving locks held and attachments live for the
// reaper to clean up.
func (t *Thread) gate(sys *System) error {
	if t.Proc.Dead() {
		return fmt.Errorf("%w: pid %d", ErrProcessDead, t.Proc.PID)
	}
	if sys.M.Faults.Fire(fault.CoreSyscallCrash) {
		t.Proc.Crash()
		return fmt.Errorf("%w: pid %d crashed at syscall entry (injected)", ErrProcessDead, t.Proc.PID)
	}
	return nil
}

// enter charges the personality's control-path cost and runs the syscall
// gate. The returned done func records the syscall's simulated-cycle latency
// into the per-op histogram; callers defer it so the measurement covers the
// whole operation. When observability is off done is a shared no-op.
func (t *Thread) enter(op stats.Op) (*System, func(), error) {
	sys := t.Proc.sys
	done := noopDone
	if obs := sys.M.Observer(); obs != nil {
		core, start := t.Core, t.Core.Cycles()
		done = func() { obs.Syscall(op, core.Cycles()-start) }
	}
	t.Core.AddCyclesCat(stats.CatSyscall, sys.P.ControlCycles())
	return sys, done, t.gate(sys)
}

var noopDone = func() {}

// VASCreate creates a named first-class address space (vas_create).
func (t *Thread) VASCreate(name string, mode uint16) (VASID, error) {
	sys, done, err := t.enter(stats.OpVASCreate)
	if err != nil {
		return 0, err
	}
	defer done()
	sys.mu.Lock()
	defer sys.mu.Unlock()
	if _, dup := sys.vasByName[name]; dup {
		return 0, fmt.Errorf("%w: vas %q", ErrExists, name)
	}
	v := &VAS{ID: sys.nextVAS, Name: name, Owner: t.Proc.Creds, Mode: mode, atts: map[*Attachment]struct{}{}}
	sys.nextVAS++
	sys.vases[v.ID] = v
	sys.vasByName[name] = v
	sys.P.VASCreated(t.Proc.Creds, v)
	return v.ID, nil
}

// VASFind looks up a VAS by name (vas_find).
func (t *Thread) VASFind(name string) (VASID, error) {
	sys, done, err := t.enter(stats.OpVASFind)
	if err != nil {
		return 0, err
	}
	defer done()
	sys.mu.Lock()
	defer sys.mu.Unlock()
	v, ok := sys.vasByName[name]
	if !ok {
		return 0, fmt.Errorf("%w: vas %q", ErrNotFound, name)
	}
	return v.ID, nil
}

func (sys *System) vas(id VASID) (*VAS, error) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	v, ok := sys.vases[id]
	if !ok {
		return nil, fmt.Errorf("%w: vas %d", ErrNotFound, id)
	}
	return v, nil
}

func (sys *System) seg(id SegID) (*Segment, error) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	s, ok := sys.segs[id]
	if !ok {
		return nil, fmt.Errorf("%w: segment %d", ErrNotFound, id)
	}
	return s, nil
}

// VASByID returns the VAS object for inspection (ACL edits, tag queries).
func (sys *System) VASByID(id VASID) (*VAS, error) { return sys.vas(id) }

// SegByID returns the segment object for inspection.
func (sys *System) SegByID(id SegID) (*Segment, error) { return sys.seg(id) }

// VASAttach attaches the calling process to a VAS, building the
// process-private vmspace instance (vas_attach).
func (t *Thread) VASAttach(vid VASID) (Handle, error) {
	sys, done, err := t.enter(stats.OpVASAttach)
	if err != nil {
		return 0, err
	}
	defer done()
	v, err := sys.vas(vid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, v, arch.PermRead); err != nil {
		return 0, err
	}
	p := t.Proc
	a := &Attachment{VAS: v, proc: p}
	if _, err := sys.buildSpace(p, a); err != nil {
		return 0, err
	}
	p.mu.Lock()
	a.H = p.nextHandle
	p.nextHandle++
	p.atts[a.H] = a
	p.mu.Unlock()
	v.addAttachment(a)
	return a.H, nil
}

// VASDetach drops an attachment (vas_detach). The VAS itself survives.
func (t *Thread) VASDetach(h Handle) error {
	_, done, err := t.enter(stats.OpVASDetach)
	if err != nil {
		return err
	}
	defer done()
	if h == PrimaryHandle {
		return fmt.Errorf("%w: cannot detach the primary address space", ErrDenied)
	}
	p := t.Proc
	p.mu.Lock()
	a, ok := p.atts[h]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: handle %d", ErrNotFound, h)
	}
	for _, th := range p.threads {
		if th.cur == a {
			p.mu.Unlock()
			return fmt.Errorf("%w: a thread is switched into handle %d", ErrBusy, h)
		}
	}
	delete(p.atts, h)
	p.mu.Unlock()
	a.destroy()
	return nil
}

// VASSwitch is the thread-level switch entry point (vas_switch). Like every
// syscall it passes the crash gate: an injected crash here dies while the
// thread still holds the locks of the space it is leaving.
func (t *Thread) VASSwitch(h Handle) error {
	sys := t.Proc.sys
	start := t.Core.Cycles()
	if err := t.gate(sys); err != nil {
		return err
	}
	sys.countSwitch(t, h)
	err := t.Switch(h)
	if obs := sys.M.Observer(); obs != nil {
		obs.Syscall(stats.OpVASSwitch, t.Core.Cycles()-start)
	}
	return err
}

// VASClone creates a new VAS sharing the original's segments — combined
// with VASCtl it implements permission-changed views and snapshots
// (vas_clone).
func (t *Thread) VASClone(vid VASID, newName string) (VASID, error) {
	sys, done, err := t.enter(stats.OpVASClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.vas(vid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	sys.mu.Lock()
	if _, dup := sys.vasByName[newName]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: vas %q", ErrExists, newName)
	}
	v := &VAS{ID: sys.nextVAS, Name: newName, Owner: t.Proc.Creds, Mode: src.Mode, atts: map[*Attachment]struct{}{}}
	sys.nextVAS++
	sys.vases[v.ID] = v
	sys.vasByName[newName] = v
	sys.mu.Unlock()
	v.segs = src.Mappings()
	sys.P.VASCreated(t.Proc.Creds, v)
	return v.ID, nil
}

// VASCtl manipulates VAS metadata (vas_ctl). Commands are typed values
// built with SetTag, ClearTag, or SetMode, applied in order; an ill-typed
// argument is now a compile error rather than a runtime one.
func (t *Thread) VASCtl(vid VASID, cmds ...VASCmd) error {
	sys, done, err := t.enter(stats.OpVASCtl)
	if err != nil {
		return err
	}
	defer done()
	v, err := sys.vas(vid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, v, arch.PermWrite); err != nil {
		return err
	}
	for _, cmd := range cmds {
		if cmd == nil {
			return fmt.Errorf("%w: vas_ctl: nil command", ErrInvalid)
		}
		if err := cmd.applyVAS(sys, v); err != nil {
			return err
		}
	}
	return nil
}

// VASDestroy removes an unattached VAS from the system. Its segments
// survive (they are independently named objects). This is the reclamation
// path the paper leaves to vas_ctl.
func (t *Thread) VASDestroy(vid VASID) error {
	sys, done, err := t.enter(stats.OpVASDestroy)
	if err != nil {
		return err
	}
	defer done()
	v, err := sys.vas(vid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, v, arch.PermWrite); err != nil {
		return err
	}
	if v.AttachCount() > 0 {
		return fmt.Errorf("%w: vas %q has attachments", ErrBusy, v.Name)
	}
	sys.mu.Lock()
	delete(sys.vases, v.ID)
	delete(sys.vasByName, v.Name)
	sys.mu.Unlock()
	return nil
}

// --- The segment API (Figure 3). ---

// SegAlloc creates a named global segment at a fixed base address with
// physical memory reserved up front (seg_alloc). Global segments must live
// at or above GlobalBase, disjoint from every process's private range.
// Options select the backing page size (WithPageSize), memory tier
// (WithTier), and lockability (WithLockable); the defaults are 4 KiB pages,
// the system's segment tier, lockable.
func (t *Thread) SegAlloc(name string, base arch.VirtAddr, size uint64, perm arch.Perm, opts ...SegOption) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegAlloc)
	if err != nil {
		return 0, err
	}
	defer done()
	cfg := segConfig{pageSize: arch.PageSize, lockable: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.pageSize != arch.PageSize && cfg.pageSize != arch.HugePageSize {
		return 0, fmt.Errorf("%w: segment %q: unsupported page size %d", ErrLayout, name, cfg.pageSize)
	}
	if base < GlobalBase || !(base + arch.VirtAddr(size)).Canonical() {
		return 0, fmt.Errorf("%w: global segment %q must lie in [%v, 2^48)", ErrLayout, name, GlobalBase)
	}
	if uint64(base)%cfg.pageSize != 0 || size == 0 {
		return 0, fmt.Errorf("%w: segment %q base/size not aligned to %d-byte pages", ErrLayout, name, cfg.pageSize)
	}
	sys.mu.Lock()
	if _, dup := sys.segByName[name]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: segment %q", ErrExists, name)
	}
	sys.mu.Unlock()
	seg := sys.newSegment(name, base, size, perm, t.Proc.Creds, cfg)
	if err := seg.Obj.Populate(); err != nil {
		seg.Obj.Unref()
		return 0, err
	}
	sys.mu.Lock()
	sys.segs[seg.ID] = seg
	sys.segByName[name] = seg
	sys.mu.Unlock()
	sys.P.SegCreated(t.Proc.Creds, seg)
	return seg.ID, nil
}

// SegAllocPages is SegAlloc with a positional page size.
//
// Deprecated: use SegAlloc with WithPageSize.
func (t *Thread) SegAllocPages(name string, base arch.VirtAddr, size uint64, perm arch.Perm, pageSize uint64) (SegID, error) {
	return t.SegAlloc(name, base, size, perm, WithPageSize(pageSize))
}

// SegFind looks a segment up by name (seg_find).
func (t *Thread) SegFind(name string) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegFind)
	if err != nil {
		return 0, err
	}
	defer done()
	sys.mu.Lock()
	defer sys.mu.Unlock()
	s, ok := sys.segByName[name]
	if !ok {
		return 0, fmt.Errorf("%w: segment %q", ErrNotFound, name)
	}
	return s.ID, nil
}

// SegAttachVAS maps a segment into a VAS for every attached process, with
// the given mapping permissions (seg_attach with a vid). The mapping
// permissions may not exceed the segment's own.
func (t *Thread) SegAttachVAS(vid VASID, sid SegID, mapPerm arch.Perm) error {
	sys, done, err := t.enter(stats.OpSegAttach)
	if err != nil {
		return err
	}
	defer done()
	v, err := sys.vas(vid)
	if err != nil {
		return err
	}
	seg, err := sys.seg(sid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, v, arch.PermWrite); err != nil {
		return err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, seg, mapPerm); err != nil {
		return err
	}
	if !seg.Perm().Allows(mapPerm) {
		return fmt.Errorf("%w: mapping %v exceeds segment perm %v", ErrDenied, mapPerm, seg.Perm())
	}
	if !v.addSeg(SegMapping{Seg: seg, Perm: mapPerm}) {
		return fmt.Errorf("%w: segment %q overlaps a segment in vas %q", ErrLayout, seg.Name, v.Name)
	}
	// Propagate to existing attachments, rolling back on failure.
	installed := []*Attachment{}
	for _, a := range v.attachments() {
		if err := a.installSeg(seg, mapPerm); err != nil {
			for _, d := range installed {
				_ = d.removeSeg(seg)
			}
			v.removeSeg(sid)
			return err
		}
		installed = append(installed, a)
	}
	sys.M.Observer().SegAttach(t.Core.ID, t.Proc.PID, uint64(vid), uint64(sid))
	return nil
}

// SegAttachLocal maps a segment into only the calling process's attachment
// (seg_attach with a vh) — process-specific installation.
func (t *Thread) SegAttachLocal(h Handle, sid SegID, mapPerm arch.Perm) error {
	sys, done, err := t.enter(stats.OpSegAttach)
	if err != nil {
		return err
	}
	defer done()
	seg, err := sys.seg(sid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, seg, mapPerm); err != nil {
		return err
	}
	if !seg.Perm().Allows(mapPerm) {
		return fmt.Errorf("%w: mapping %v exceeds segment perm %v", ErrDenied, mapPerm, seg.Perm())
	}
	a, err := t.Proc.attachment(h)
	if err != nil {
		return err
	}
	if a == nil {
		_, err := t.Proc.primary.Map(seg.Base, seg.Size, mapPerm, seg.Obj, 0, vm.MapFixed)
		return err
	}
	return a.installSeg(seg, mapPerm)
}

// SegDetachVAS removes a segment from a VAS and from every attachment
// (seg_detach with a vid).
func (t *Thread) SegDetachVAS(vid VASID, sid SegID) error {
	sys, done, err := t.enter(stats.OpSegDetach)
	if err != nil {
		return err
	}
	defer done()
	v, err := sys.vas(vid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckVAS(t.Proc.Creds, v, arch.PermWrite); err != nil {
		return err
	}
	m, ok := v.removeSeg(sid)
	if !ok {
		return fmt.Errorf("%w: segment %d not in vas %q", ErrNotFound, sid, v.Name)
	}
	for _, a := range v.attachments() {
		if err := a.removeSeg(m.Seg); err != nil {
			return err
		}
	}
	return nil
}

// SegDetachLocal unmaps a segment from the calling process's attachment
// (seg_detach with a vh).
func (t *Thread) SegDetachLocal(h Handle, sid SegID) error {
	sys, done, err := t.enter(stats.OpSegDetach)
	if err != nil {
		return err
	}
	defer done()
	seg, err := sys.seg(sid)
	if err != nil {
		return err
	}
	a, err := t.Proc.attachment(h)
	if err != nil {
		return err
	}
	if a == nil {
		return t.Proc.primary.Unmap(seg.Base, seg.Size)
	}
	return a.removeSeg(seg)
}

// SegClone deep-copies a segment's content into a new segment with a new
// name at the same base address (seg_clone). Cloning plus SegCtl implements
// permission-changed copies (§3.2).
func (t *Thread) SegClone(sid SegID, newName string) (SegID, error) {
	sys, done, err := t.enter(stats.OpSegClone)
	if err != nil {
		return 0, err
	}
	defer done()
	src, err := sys.seg(sid)
	if err != nil {
		return 0, err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, src, arch.PermRead); err != nil {
		return 0, err
	}
	sys.mu.Lock()
	if _, dup := sys.segByName[newName]; dup {
		sys.mu.Unlock()
		return 0, fmt.Errorf("%w: segment %q", ErrExists, newName)
	}
	sys.mu.Unlock()
	dst := sys.newSegment(newName, src.Base, src.Size, src.Perm(), t.Proc.Creds,
		segConfig{pageSize: src.Obj.PageSize, lockable: src.Lockable()})
	if err := dst.Obj.Populate(); err != nil {
		dst.Obj.Unref()
		return 0, err
	}
	// Copy content frame by frame through physical memory.
	buf := make([]byte, src.Obj.PageSize)
	for idx := uint64(0); idx < src.Obj.Pages(); idx++ {
		sf, err := src.Obj.Frame(idx)
		if err != nil {
			dst.Obj.Unref()
			return 0, err
		}
		df, err := dst.Obj.Frame(idx)
		if err != nil {
			dst.Obj.Unref()
			return 0, err
		}
		if err := sys.M.PM.ReadAt(sf, buf); err != nil {
			dst.Obj.Unref()
			return 0, err
		}
		if err := sys.M.PM.WriteAt(df, buf); err != nil {
			dst.Obj.Unref()
			return 0, err
		}
	}
	sys.mu.Lock()
	sys.segs[dst.ID] = dst
	sys.segByName[newName] = dst
	sys.mu.Unlock()
	sys.P.SegCreated(t.Proc.Creds, dst)
	return dst.ID, nil
}

// SegCtl manipulates segment metadata (seg_ctl). Commands are typed values
// built with SetPerm, SetLockable, or CacheTranslations, applied in order.
func (t *Thread) SegCtl(sid SegID, cmds ...SegCmd) error {
	sys, done, err := t.enter(stats.OpSegCtl)
	if err != nil {
		return err
	}
	defer done()
	seg, err := sys.seg(sid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, seg, arch.PermWrite); err != nil {
		return err
	}
	for _, cmd := range cmds {
		if cmd == nil {
			return fmt.Errorf("%w: seg_ctl: nil command", ErrInvalid)
		}
		if err := cmd.applySeg(sys, seg); err != nil {
			return err
		}
	}
	return nil
}

// SegFree removes an unmapped global segment and releases its memory.
func (t *Thread) SegFree(sid SegID) error {
	sys, done, err := t.enter(stats.OpSegFree)
	if err != nil {
		return err
	}
	defer done()
	seg, err := sys.seg(sid)
	if err != nil {
		return err
	}
	if err := sys.P.CheckSeg(t.Proc.Creds, seg, arch.PermWrite); err != nil {
		return err
	}
	sys.mu.Lock()
	for _, v := range sys.vases {
		v.mu.Lock()
		for _, m := range v.segs {
			if m.Seg == seg {
				v.mu.Unlock()
				sys.mu.Unlock()
				return fmt.Errorf("%w: segment %q mapped in vas %q", ErrBusy, seg.Name, v.Name)
			}
		}
		v.mu.Unlock()
	}
	delete(sys.segs, seg.ID)
	delete(sys.segByName, seg.Name)
	sys.mu.Unlock()
	seg.destroy()
	return nil
}
