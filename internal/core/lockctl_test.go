package core

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
)

func TestSetLockableFalseDisablesLocking(t *testing.T) {
	sys := testSystem(t)
	_, a := spawn(t, sys)
	_, b := spawn(t, sys)
	vid, _ := a.VASCreate("nolock", 0o666)
	sid, _ := a.SegAlloc("nolock.seg", segBase(0), 1<<20, arch.PermRW)
	if err := a.SegCtl(sid, SetLockable(false)); err != nil {
		t.Fatal(err)
	}
	if err := a.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	ha, _ := a.VASAttach(vid)
	hb, _ := b.VASAttach(vid)
	if err := a.VASSwitch(ha); err != nil {
		t.Fatal(err)
	}
	// With locking off, a second writer enters immediately (the paper's
	// lockable bit is opt-in; unlocked segments leave synchronization to
	// the application).
	done := make(chan error, 1)
	go func() { done <- b.VASSwitch(hb) }()
	if err := <-done; err != nil {
		t.Fatalf("second writer blocked or failed on non-lockable segment: %v", err)
	}
	seg := mustSeg(t, sys, sid)
	if r, w := seg.LockHolders(); r != 0 || w != 0 {
		t.Errorf("lock holders on non-lockable segment: %d/%d", r, w)
	}
}

func TestSegCtlPermNarrowingBlocksNewMappings(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("narrow", 0o660)
	sid, _ := th.SegAlloc("narrow.seg", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegCtl(sid, SetPerm(arch.PermRead)); err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); !errors.Is(err, ErrDenied) {
		t.Errorf("RW mapping of read-only segment: %v", err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRead); err != nil {
		t.Errorf("read mapping: %v", err)
	}
}

func TestCtlNilCommandRejected(t *testing.T) {
	// Argument validation moved to the type system: a SegCmd cannot carry a
	// VAS command or an ill-typed payload. The one remaining runtime error
	// is a nil command, which must fail cleanly with ErrInvalid.
	sys := testSystem(t)
	_, th := spawn(t, sys)
	sid, _ := th.SegAlloc("args.seg", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegCtl(sid, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil seg_ctl command: %v", err)
	}
	vid, _ := th.VASCreate("args.vas", 0o600)
	if err := th.VASCtl(vid, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil vas_ctl command: %v", err)
	}
	// Multiple commands apply in order.
	if err := th.SegCtl(sid, SetPerm(arch.PermRead), SetLockable(false)); err != nil {
		t.Fatal(err)
	}
	seg := mustSeg(t, sys, sid)
	if seg.Perm() != arch.PermRead || seg.Lockable() {
		t.Errorf("batched seg_ctl not applied: perm=%v lockable=%v", seg.Perm(), seg.Lockable())
	}
}

func TestCacheRequiresSinglePML4Slot(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	// A segment straddling two PML4 slots cannot cache translations.
	cover := arch.LevelCoverage(3)
	base := GlobalBase + arch.VirtAddr(cover) - arch.PageSize
	sid, err := th.SegAlloc("straddle", base, 2*arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegCtl(sid, CacheTranslations()); !errors.Is(err, ErrLayout) {
		t.Errorf("cache across PML4 slots: %v", err)
	}
}

func TestAttachReadOnlyUsesPerPageWhenCacheIsRW(t *testing.T) {
	// The cached subtree carries the segment's full (RW) permissions, so a
	// read-only attachment must fall back to per-page mappings — sharing
	// the RW subtree would leak write access.
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("ro", 0o660)
	sid, _ := th.SegAlloc("ro.seg", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegCtl(sid, CacheTranslations()); err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0), 1); err == nil {
		t.Fatal("write through read-only attachment succeeded — cache leaked write access")
	}
	if _, err := th.Load64(segBase(0)); err != nil {
		t.Errorf("read: %v", err)
	}
}
