package core

// The kernel reaper: crash-path cleanup for a process that died without
// releasing what it held. SpaceJMP's central promise is that VASes and
// lockable segments outlive the processes using them (§3.2, §7) — which is
// only safe if a process death cannot strand a segment lock, leak the frames
// of its private segments and page tables, or leave dangling attachment
// state on a surviving VAS. The reaper runs synchronously from
// Process.Exit/Process.Crash (the simulator's equivalent of the kernel's
// do_exit) and restores every one of those invariants:
//
//   - segment locks held by the dead process's threads are forcibly
//     released in reverse acquisition order, waking any thread blocked in
//     Segment.acquire on another core;
//   - the threads' cores are returned to the scheduler pool;
//   - attachments are destroyed: the VAS drops the attachment record, linked
//     translation subtrees are unlinked, and the attachment's vmspace frees
//     its page-table frames and VM-object references;
//   - the primary vmspace and the private text/globals/stack segments are
//     freed, returning their frames to the allocator.
//
// PhysMem.CheckLeaks/VerifyInvariants is the test-side witness that the
// reaper returns the machine to its pre-process frame accounting.

// reap reclaims a dead process's resources. threads and atts are the
// snapshots terminate() took while marking the process dead; the process's
// own lists are already empty, so reap owns them exclusively.
func (sys *System) reap(p *Process, threads []*Thread, atts []*Attachment) {
	for _, t := range threads {
		// Forcibly release orphaned segment locks in reverse acquisition
		// order. A waiter blocked in acquire on another core resumes as
		// soon as the lock it wants drops.
		for i := len(t.held) - 1; i >= 0; i-- {
			t.held[i].Seg.release(t.held[i].Perm)
		}
		t.held = nil
		t.cur = nil
		sys.releaseCore(t.Core)
	}
	for _, a := range atts {
		a.destroy()
	}
	p.primary.Destroy()
	for _, m := range p.priv {
		m.Seg.destroy()
	}
}
