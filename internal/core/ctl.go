package core

import (
	"spacejmp/internal/arch"
)

// VASCmd is a typed vas_ctl command. Commands are constructed with the
// exported constructors (SetTag, ClearTag, SetMode), so an ill-typed
// argument is a compile error rather than a runtime one.
type VASCmd interface {
	applyVAS(sys *System, v *VAS) error
}

// SegCmd is a typed seg_ctl command, constructed with SetPerm, SetLockable,
// or CacheTranslations.
type SegCmd interface {
	applySeg(sys *System, s *Segment) error
}

type setTagCmd struct{}

// SetTag requests a TLB tag (ASID) for a VAS; a fresh tag is assigned
// (paper §4.4: the user passes hints to the kernel to request a tag).
// Applying it to an already-tagged VAS keeps the existing tag.
func SetTag() VASCmd { return setTagCmd{} }

func (setTagCmd) applyVAS(sys *System, v *VAS) error {
	if v.Tag() == arch.ASIDFlush {
		tag, err := sys.allocTag()
		if err != nil {
			return err
		}
		v.setTag(tag)
	}
	return nil
}

type clearTagCmd struct{}

// ClearTag reverts a VAS to the reserved flush tag.
func ClearTag() VASCmd { return clearTagCmd{} }

func (clearTagCmd) applyVAS(_ *System, v *VAS) error {
	v.setTag(arch.ASIDFlush)
	return nil
}

type setModeCmd struct{ mode uint16 }

// SetMode changes a VAS's permission mode bits.
func SetMode(mode uint16) VASCmd { return setModeCmd{mode: mode} }

func (c setModeCmd) applyVAS(_ *System, v *VAS) error {
	v.mu.Lock()
	v.Mode = c.mode
	v.mu.Unlock()
	return nil
}

type setPermCmd struct{ perm arch.Perm }

// SetPerm changes a segment's maximum permissions.
func SetPerm(p arch.Perm) SegCmd { return setPermCmd{perm: p} }

func (c setPermCmd) applySeg(_ *System, s *Segment) error {
	s.setPerm(c.perm)
	return nil
}

type setLockableCmd struct{ v bool }

// SetLockable toggles a segment's lockable bit.
func SetLockable(v bool) SegCmd { return setLockableCmd{v: v} }

func (c setLockableCmd) applySeg(_ *System, s *Segment) error {
	s.SetLockable(c.v)
	return nil
}

type cacheTranslationsCmd struct{}

// CacheTranslations builds a segment's cached translation subtree (§4.1: "a
// segment may contain a set of cached translations to accelerate attachment
// to an address space").
func CacheTranslations() SegCmd { return cacheTranslationsCmd{} }

func (cacheTranslationsCmd) applySeg(sys *System, s *Segment) error {
	return s.buildCache(sys.M.PM, sys.M.Observer().PTObs())
}
