package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
)

// testPersonality is a permissive OS personality with nominal costs.
type testPersonality struct {
	denyVAS bool
	denySeg bool
}

func (testPersonality) Name() string          { return "test" }
func (testPersonality) ControlCycles() uint64 { return 100 }
func (testPersonality) SwitchCycles() uint64  { return 100 }
func (testPersonality) SwitchBookkeeping(tagged bool) uint64 {
	if tagged {
		return 25
	}
	return 50
}
func (p testPersonality) CheckVAS(Creds, *VAS, arch.Perm) error {
	if p.denyVAS {
		return ErrDenied
	}
	return nil
}
func (p testPersonality) CheckSeg(Creds, *Segment, arch.Perm) error {
	if p.denySeg {
		return ErrDenied
	}
	return nil
}
func (testPersonality) VASCreated(Creds, *VAS)     {}
func (testPersonality) SegCreated(Creds, *Segment) {}

func testSystem(t *testing.T) *System {
	t.Helper()
	return NewSystem(hw.NewMachine(hw.SmallTest()), testPersonality{})
}

func spawn(t *testing.T, sys *System) (*Process, *Thread) {
	t.Helper()
	p, err := sys.NewProcess(Creds{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return p, th
}

// segBase returns a global-segment base in PML4 slot 256+i.
func segBase(i int) arch.VirtAddr {
	return GlobalBase + arch.VirtAddr(uint64(i)*arch.LevelCoverage(3))
}

func TestProcessHasCommonRegion(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	// Stack and globals are writable in the primary space.
	if err := th.Store64(GlobalsBase+16, 42); err != nil {
		t.Fatalf("store to globals: %v", err)
	}
	if err := th.Store64(StackBase+arch.VirtAddr(StackSize/2), 7); err != nil {
		t.Fatalf("store to stack: %v", err)
	}
	// Text is not writable.
	if err := th.Store64(TextBase, 1); err == nil {
		t.Error("store to text succeeded")
	}
}

func TestFigure4Workflow(t *testing.T) {
	// The canonical usage example from Figure 4: create a VAS, allocate a
	// 2^35-byte segment at a chosen address, attach it, then another
	// process finds the VAS, attaches, switches, and uses the memory.
	sys := testSystem(t)
	_, creator := spawn(t, sys)

	va := segBase(0)
	sz := uint64(1) << 24 // scaled from the paper's 1<<35 for test speed
	vid, err := creator.VASCreate("v0", 0o660)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := creator.SegAlloc("s0", va, sz, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := creator.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}

	_, user := spawn(t, sys)
	found, err := user.VASFind("v0")
	if err != nil {
		t.Fatal(err)
	}
	if found != vid {
		t.Fatalf("found vid %d, want %d", found, vid)
	}
	vh, err := user.VASAttach(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := user.VASSwitch(vh); err != nil {
		t.Fatal(err)
	}
	if err := user.Store64(va+8, 42); err != nil {
		t.Fatalf("store in attached VAS: %v", err)
	}
	v, err := user.Load64(va + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("loaded %d", v)
	}
	if err := user.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	// Back in the primary space the segment is not mapped.
	if _, err := user.Load64(va + 8); err == nil {
		t.Error("global segment visible in primary space")
	}
}

func TestDataSharedAcrossProcesses(t *testing.T) {
	sys := testSystem(t)
	_, a := spawn(t, sys)
	_, b := spawn(t, sys)

	vid, _ := a.VASCreate("shared", 0o666)
	sid, _ := a.SegAlloc("data", segBase(0), 1<<20, arch.PermRW)
	if err := a.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	ha, _ := a.VASAttach(vid)
	hb, _ := b.VASAttach(vid)

	if err := a.VASSwitch(ha); err != nil {
		t.Fatal(err)
	}
	if err := a.Store64(segBase(0), 1234); err != nil {
		t.Fatal(err)
	}
	if err := a.VASSwitch(PrimaryHandle); err != nil { // release the write lock
		t.Fatal(err)
	}
	if err := b.VASSwitch(hb); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load64(segBase(0))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1234 {
		t.Errorf("process B sees %d, want 1234", v)
	}
}

func TestCommonRegionVisibleInEveryVAS(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	h, _ := th.VASAttach(vid)
	if err := th.Store64(GlobalsBase, 99); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	v, err := th.Load64(GlobalsBase)
	if err != nil {
		t.Fatalf("globals unreachable after switch: %v", err)
	}
	if v != 99 {
		t.Errorf("globals hold %d after switch, want 99", v)
	}
	// Writes made inside the VAS to the common region persist outside.
	if err := th.Store64(GlobalsBase+8, 100); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(GlobalsBase + 8); v != 100 {
		t.Errorf("common-region write lost across switch: %d", v)
	}
}

func TestWriterLockExclusive(t *testing.T) {
	sys := testSystem(t)
	_, a := spawn(t, sys)
	_, b := spawn(t, sys)
	vid, _ := a.VASCreate("v", 0o666)
	sid, _ := a.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := a.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	ha, _ := a.VASAttach(vid)
	hb, _ := b.VASAttach(vid)

	if err := a.VASSwitch(ha); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	go func() {
		_ = b.VASSwitch(hb) // must block until a leaves
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second writer entered while first held the segment")
	default:
	}
	if err := a.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	<-entered // must now complete
	if r, w := mustSeg(t, sys, sid).LockHolders(); r != 0 || w != 1 {
		t.Errorf("lock holders = %d readers %d writers", r, w)
	}
}

func mustSeg(t *testing.T, sys *System, sid SegID) *Segment {
	t.Helper()
	s, err := sys.seg(sid)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReaderLockShared(t *testing.T) {
	sys := testSystem(t)
	_, owner := spawn(t, sys)
	vid, _ := owner.VASCreate("v", 0o666)
	sid, _ := owner.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := owner.SegAttachVAS(vid, sid, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		_, th := spawn(t, sys)
		h, err := th.VASAttach(vid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = th.VASSwitch(h)
		}()
	}
	wg.Wait() // both readers enter concurrently; no deadlock
	if r, w := mustSeg(t, sys, sid).LockHolders(); r != 2 || w != 0 {
		t.Errorf("lock holders = %d readers %d writers, want 2/0", r, w)
	}
}

func TestReadOnlyMappingRejectsWrites(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	sid, _ := th.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0), 1); err == nil {
		t.Error("write through read-only VAS mapping succeeded")
	}
	if _, err := th.Load64(segBase(0)); err != nil {
		t.Errorf("read failed: %v", err)
	}
}

func TestVASPersistsBeyondCreator(t *testing.T) {
	sys := testSystem(t)
	creatorProc, creator := spawn(t, sys)
	vid, _ := creator.VASCreate("durable", 0o666)
	sid, _ := creator.SegAlloc("d", segBase(0), 1<<20, arch.PermRW)
	if err := creator.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := creator.VASAttach(vid)
	if err := creator.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := creator.Store64(segBase(0)+128, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if err := creator.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	creatorProc.Exit()

	// A later process finds the VAS and the data is still there —
	// pointer-rich structures outlive the process (§2.2, SAMTools §5.4).
	_, later := spawn(t, sys)
	found, err := later.VASFind("durable")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := later.VASAttach(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := later.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	v, err := later.Load64(segBase(0) + 128)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Errorf("data after creator exit = %#x", v)
	}
}

func TestSegAttachPropagatesToAttachedProcesses(t *testing.T) {
	sys := testSystem(t)
	_, a := spawn(t, sys)
	_, b := spawn(t, sys)
	vid, _ := a.VASCreate("v", 0o666)
	hb, _ := b.VASAttach(vid)
	// Segment attached *after* b attached the VAS must appear in b's view.
	sid, _ := a.SegAlloc("late", segBase(1), 1<<20, arch.PermRW)
	if err := a.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := b.VASSwitch(hb); err != nil {
		t.Fatal(err)
	}
	if err := b.Store64(segBase(1), 5); err != nil {
		t.Errorf("late-attached segment not visible: %v", err)
	}
}

func TestSegDetachVAS(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	sid, _ := th.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.SegDetachVAS(vid, sid); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Load64(segBase(0)); err == nil {
		t.Error("detached segment still mapped")
	}
}

func TestOverlappingSegmentsRejected(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	s1, _ := th.SegAlloc("s1", segBase(0), 1<<21, arch.PermRW)
	s2, _ := th.SegAlloc("s2", segBase(0)+1<<20, 1<<21, arch.PermRW)
	if err := th.SegAttachVAS(vid, s1, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, s2, arch.PermRW); !errors.Is(err, ErrLayout) {
		t.Errorf("overlapping attach: %v", err)
	}
}

func TestSegmentLayoutRules(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	// Below GlobalBase: collides with private ranges.
	if _, err := th.SegAlloc("low", 0x10000, 1<<20, arch.PermRW); !errors.Is(err, ErrLayout) {
		t.Errorf("low segment: %v", err)
	}
	if _, err := th.SegAlloc("dup", segBase(0), 1<<20, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := th.SegAlloc("dup", segBase(1), 1<<20, arch.PermRW); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate name: %v", err)
	}
}

func TestVASCtlTagging(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	// Two VASes over distinct segments; the thread ping-pongs between them.
	var vids [2]VASID
	var hs [2]Handle
	for i := 0; i < 2; i++ {
		vid, err := th.VASCreate(fmt.Sprintf("v%d", i), 0o660)
		if err != nil {
			t.Fatal(err)
		}
		sid, err := th.SegAlloc(fmt.Sprintf("s%d", i), segBase(i), 1<<20, arch.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
			t.Fatal(err)
		}
		vids[i] = vid
		if hs[i], err = th.VASAttach(vid); err != nil {
			t.Fatal(err)
		}
	}
	pingPongMisses := func() uint64 {
		// Warm both, then measure a round trip.
		for _, i := range []int{0, 1, 0, 1} {
			if err := th.VASSwitch(hs[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := th.Load64(segBase(i)); err != nil {
				t.Fatal(err)
			}
		}
		th.Core.ResetStats()
		for _, i := range []int{0, 1} {
			if err := th.VASSwitch(hs[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := th.Load64(segBase(i)); err != nil {
				t.Fatal(err)
			}
		}
		return th.Core.Stats().TLBMisses
	}

	if m := pingPongMisses(); m == 0 {
		t.Error("untagged ping-pong retained translations")
	}
	for _, vid := range vids {
		if err := th.VASCtl(vid, SetTag()); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := sys.vas(vids[0])
	if v.Tag() == arch.ASIDFlush {
		t.Fatal("tag not assigned")
	}
	if m := pingPongMisses(); m != 0 {
		t.Errorf("tagged ping-pong missed %d times", m)
	}
	// Tag is sticky; clearing reverts to the flush tag.
	tag := v.Tag()
	if err := th.VASCtl(vids[0], SetTag()); err != nil {
		t.Fatal(err)
	}
	if v.Tag() != tag {
		t.Error("second CtlSetTag reassigned the tag")
	}
	if err := th.VASCtl(vids[0], ClearTag()); err != nil {
		t.Fatal(err)
	}
	if v.Tag() != arch.ASIDFlush {
		t.Error("CtlClearTag did not clear")
	}
}

func TestTaggedPrimaries(t *testing.T) {
	sys := testSystem(t)
	sys.SetTagPrimaries(true)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	sid, _ := th.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.VASCtl(vid, SetTag()); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	// Warm both directions of the primary <-> VAS round trip.
	for i := 0; i < 2; i++ {
		if err := th.VASSwitch(h); err != nil {
			t.Fatal(err)
		}
		if _, err := th.Load64(segBase(0)); err != nil {
			t.Fatal(err)
		}
		if err := th.VASSwitch(PrimaryHandle); err != nil {
			t.Fatal(err)
		}
		if _, err := th.Load64(GlobalsBase); err != nil {
			t.Fatal(err)
		}
	}
	th.Core.ResetStats()
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Load64(segBase(0)); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Load64(GlobalsBase); err != nil {
		t.Fatal(err)
	}
	if m := th.Core.Stats().TLBMisses; m != 0 {
		t.Errorf("tagged primary round trip missed %d times", m)
	}
}

func TestCachedTranslationsAttach(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	sid, _ := th.SegAlloc("s", segBase(2), 1<<20, arch.PermRW)
	if err := th.SegCtl(sid, CacheTranslations()); err != nil {
		t.Fatal(err)
	}
	if !mustSeg(t, sys, sid).HasCache() {
		t.Fatal("cache not built")
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	// Access works through the linked subtree with no page faults at all.
	th.Core.ResetStats()
	if err := th.Store64(segBase(2)+64, 9); err != nil {
		t.Fatal(err)
	}
	if f := th.Core.Stats().Faults; f != 0 {
		t.Errorf("faults through cached translations = %d", f)
	}
	// And the space's own page table allocated no leaf tables for it.
	st := th.Space().Stats()
	if st.PagesMaped != 0 {
		t.Errorf("cached attach still mapped %d pages", st.PagesMaped)
	}
}

func TestDetachWhileSwitchedInRejected(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.VASDetach(h); !errors.Is(err, ErrBusy) {
		t.Errorf("detach while switched in: %v", err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if err := th.VASDetach(h); err != nil {
		t.Errorf("detach after leaving: %v", err)
	}
}

func TestVASClone(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("orig", 0o660)
	sid, _ := th.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	cid, err := th.VASClone(vid, "clone")
	if err != nil {
		t.Fatal(err)
	}
	// The clone shares the same segment: a write through it is visible in
	// the original.
	hc, _ := th.VASAttach(cid)
	if err := th.VASSwitch(hc); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0), 31337); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	ho, _ := th.VASAttach(vid)
	if err := th.VASSwitch(ho); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0)); v != 31337 {
		t.Errorf("original sees %d", v)
	}
}

func TestSegClone(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	sid, _ := th.SegAlloc("src", segBase(0), 1<<16, arch.PermRW)
	// Write through a local attachment to the primary space.
	if err := th.SegAttachLocal(PrimaryHandle, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segBase(0)+40, 777); err != nil {
		t.Fatal(err)
	}
	cid, err := th.SegClone(sid, "copy")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the original; the clone must keep the old value.
	if err := th.Store64(segBase(0)+40, 888); err != nil {
		t.Fatal(err)
	}
	if err := th.SegDetachLocal(PrimaryHandle, sid); err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachLocal(PrimaryHandle, cid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segBase(0) + 40); v != 777 {
		t.Errorf("clone holds %d, want snapshot 777", v)
	}
}

func TestPersonalityDenial(t *testing.T) {
	sys := NewSystem(hw.NewMachine(hw.SmallTest()), testPersonality{denyVAS: true})
	_, th := spawn(t, sys)
	vid, err := th.VASCreate("v", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.VASAttach(vid); !errors.Is(err, ErrDenied) {
		t.Errorf("attach with denying personality: %v", err)
	}
}

func TestSwitchCostAccounting(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	h, _ := th.VASAttach(vid)
	before := th.Core.Cycles()
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	got := th.Core.Cycles() - before
	want := uint64(100) + 50 + hw.DefaultCost.CR3Load // switch syscall + bookkeeping + CR3
	if got != want {
		t.Errorf("untagged switch cost = %d, want %d", got, want)
	}
	if err := th.VASCtl(vid, SetTag()); err != nil {
		t.Fatal(err)
	}
	before = th.Core.Cycles()
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	// The tagged inbound switch costs syscall + tagged bookkeeping + tagged CR3.
	taggedCost := uint64(100) + 25 + hw.DefaultCost.CR3LoadTagged
	untaggedCost := uint64(100) + 50 + hw.DefaultCost.CR3Load
	if got := th.Core.Cycles() - before; got != taggedCost+untaggedCost {
		t.Errorf("round trip cost = %d, want %d", got, taggedCost+untaggedCost)
	}
}

func TestSegFreeGuards(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	sid, _ := th.SegAlloc("s", segBase(0), 1<<20, arch.PermRW)
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := th.SegFree(sid); !errors.Is(err, ErrBusy) {
		t.Errorf("freeing mapped segment: %v", err)
	}
	if err := th.SegDetachVAS(vid, sid); err != nil {
		t.Fatal(err)
	}
	if err := th.SegFree(sid); err != nil {
		t.Errorf("freeing unmapped segment: %v", err)
	}
	if _, err := th.SegFind("s"); !errors.Is(err, ErrNotFound) {
		t.Error("freed segment still findable")
	}
}

func TestVASDestroyGuards(t *testing.T) {
	sys := testSystem(t)
	_, th := spawn(t, sys)
	vid, _ := th.VASCreate("v", 0o660)
	h, _ := th.VASAttach(vid)
	if err := th.VASDestroy(vid); !errors.Is(err, ErrBusy) {
		t.Errorf("destroying attached VAS: %v", err)
	}
	if err := th.VASDetach(h); err != nil {
		t.Fatal(err)
	}
	if err := th.VASDestroy(vid); err != nil {
		t.Errorf("destroy: %v", err)
	}
	if _, err := th.VASFind("v"); !errors.Is(err, ErrNotFound) {
		t.Error("destroyed VAS still findable")
	}
}

func TestManyAddressSpacesOneThread(t *testing.T) {
	// The GUPS pattern (§5.2): one thread cycling through many VASes, each
	// holding a window segment at the same virtual address.
	sys := testSystem(t)
	_, th := spawn(t, sys)
	const n = 8
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		vid, err := th.VASCreate(fmt.Sprintf("win%d", i), 0o660)
		if err != nil {
			t.Fatal(err)
		}
		sid, err := th.SegAlloc(fmt.Sprintf("wseg%d", i), segBase(0), 1<<16, arch.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
			t.Fatal(err)
		}
		if handles[i], err = th.VASAttach(vid); err != nil {
			t.Fatal(err)
		}
	}
	// Same VA, different VAS, different data.
	for i, h := range handles {
		if err := th.VASSwitch(h); err != nil {
			t.Fatal(err)
		}
		if err := th.Store64(segBase(0), uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range handles {
		if err := th.VASSwitch(h); err != nil {
			t.Fatal(err)
		}
		v, err := th.Load64(segBase(0))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(1000+i) {
			t.Errorf("window %d holds %d", i, v)
		}
	}
	if sys.Switches() != 2*n {
		t.Errorf("switch count = %d, want %d", sys.Switches(), 2*n)
	}
}
