package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
	"spacejmp/internal/vm"
)

// Persistence of VASes across reboots (paper §7: "we also plan to address
// other issues such as the persistency of multiple virtual address spaces
// (for example, across reboots)").
//
// Checkpoint serializes the registries of NVM-backed segments and the
// VASes over them into the machine's NVM superblock. After a power cycle —
// which destroys all DRAM content and allocations but preserves NVM — a
// fresh System Restores from the superblock: segments reattach their
// surviving frames, VASes reattach their segment lists, and processes can
// vas_find and switch into them as if nothing happened.
//
// The superblock is crash-consistent: it holds two generation slots, each a
// header (magic, version, sequence number, payload length, CRC32) followed
// by a gob payload. Checkpoint writes the new generation into the slot NOT
// holding the newest valid image — payload first, committing header last —
// so a power cut at any byte leaves the previous generation intact. Restore
// validates both slots and boots from the newest one whose CRC checks out.

const (
	checkpointMagic   uint64 = 0x53504a4d50533031 // "SPJMPS01"
	checkpointVersion uint64 = 2

	// Slot header layout (all little-endian uint64):
	// magic, version, seq, payload length, CRC32 of payload.
	hdrMagic   = 0
	hdrVersion = 8
	hdrSeq     = 16
	hdrLen     = 24
	hdrCRC     = 32
	hdrSize    = 40

	numGenerations = 2
)

// Checkpoint/Restore errors. Callers distinguish fresh NVM (no image was
// ever committed) from a damaged image (a header is present but no
// generation validates).
var (
	ErrNoCheckpoint      = errors.New("spacejmp: no checkpoint in superblock")
	ErrCorruptCheckpoint = errors.New("spacejmp: corrupt checkpoint")
)

// Gob-friendly snapshots of the persistable state.
type persistSeg struct {
	ID       SegID
	Name     string
	Base     arch.VirtAddr
	Size     uint64
	Perm     arch.Perm
	Lockable bool
	Owner    Creds
	PageSize uint64
	Frames   map[uint64]arch.PhysAddr
}

type persistVASMapping struct {
	Seg  SegID
	Perm arch.Perm
}

type persistVAS struct {
	ID    VASID
	Name  string
	Owner Creds
	Mode  uint16
	Tag   arch.ASID
	Segs  []persistVASMapping
}

type persistImage struct {
	Segs     []persistSeg
	Vases    []persistVAS
	NextVAS  VASID
	NextSeg  SegID
	NextASID arch.ASID
}

// generation describes one validated superblock slot.
type generation struct {
	slot  int
	base  arch.PhysAddr // slot base (header)
	seq   uint64
	size  uint64
	valid bool
	magic bool // slot carries the checkpoint magic (valid or not)
}

// slotGeometry returns the base and capacity of slot i within the
// superblock [sbBase, sbBase+sbSize).
func slotGeometry(sbBase arch.PhysAddr, sbSize uint64, i int) (arch.PhysAddr, uint64) {
	per := sbSize / numGenerations
	return sbBase + arch.PhysAddr(uint64(i)*per), per
}

// readGeneration validates slot i's header and payload CRC.
func (sys *System) readGeneration(sbBase arch.PhysAddr, sbSize uint64, i int) (generation, error) {
	base, slotCap := slotGeometry(sbBase, sbSize, i)
	g := generation{slot: i, base: base}
	if slotCap < hdrSize {
		return g, nil
	}
	head := make([]byte, hdrSize)
	if err := sys.M.PM.ReadAt(base, head); err != nil {
		return g, err
	}
	if binary.LittleEndian.Uint64(head[hdrMagic:]) != checkpointMagic {
		return g, nil
	}
	g.magic = true
	if binary.LittleEndian.Uint64(head[hdrVersion:]) != checkpointVersion {
		return g, nil
	}
	g.seq = binary.LittleEndian.Uint64(head[hdrSeq:])
	g.size = binary.LittleEndian.Uint64(head[hdrLen:])
	if g.size == 0 || g.size+hdrSize > slotCap {
		return g, nil
	}
	payload := make([]byte, g.size)
	if err := sys.M.PM.ReadAt(base+hdrSize, payload); err != nil {
		return g, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != binary.LittleEndian.Uint64(head[hdrCRC:]) {
		return g, nil
	}
	g.valid = true
	return g, nil
}

// generations reads and validates both slots.
func (sys *System) generations(sbBase arch.PhysAddr, sbSize uint64) ([numGenerations]generation, error) {
	var gens [numGenerations]generation
	for i := range gens {
		g, err := sys.readGeneration(sbBase, sbSize, i)
		if err != nil {
			return gens, err
		}
		gens[i] = g
	}
	return gens, nil
}

// newestValid returns the valid generation with the highest sequence
// number, or ok=false when no slot validates.
func newestValid(gens [numGenerations]generation) (generation, bool) {
	best, ok := generation{}, false
	for _, g := range gens {
		if g.valid && (!ok || g.seq > best.seq) {
			best, ok = g, true
		}
	}
	return best, ok
}

// Checkpoint writes the persistable state into the NVM superblock as a new
// generation. Only segments backed by the NVM tier are included (DRAM
// contents would not survive the power cycle anyway); VAS segment lists are
// filtered accordingly. Attachments and processes are inherently volatile
// and are not part of the image.
//
// The commit is atomic with respect to power loss: the previous generation's
// slot is untouched, the new payload lands first, and the header (whose CRC
// makes the slot valid) is written last. A torn write surfaces as an error
// and leaves the previous generation the newest valid one.
func (sys *System) Checkpoint() error {
	sbBase, sbSize := sys.M.PM.Superblock()
	if sbSize == 0 {
		return fmt.Errorf("%w: machine has no NVM superblock; configure mem.Config.NVMSuperblock", ErrInvalid)
	}
	sys.mu.Lock()
	img := persistImage{NextVAS: sys.nextVAS, NextSeg: sys.nextSeg, NextASID: sys.nextASID}
	persisted := map[SegID]bool{}
	ephemeral := map[SegID]bool{}
	for _, seg := range sys.segs {
		if seg.Ephemeral() {
			// Frozen fork views are transient: their frames belong to a live
			// segment's COW chain and are already covered by that segment's
			// resolved frame map below.
			ephemeral[seg.ID] = true
			continue
		}
		if seg.Obj.Tier != mem.TierNVM {
			continue
		}
		// ResolvedFrameMap, not FrameMap: after a frozen fork the live
		// object's own map holds only pages written since the fork — the
		// rest live up the COW parent chain and must still be persisted.
		img.Segs = append(img.Segs, persistSeg{
			ID: seg.ID, Name: seg.Name, Base: seg.Base, Size: seg.Size,
			Perm: seg.Perm(), Lockable: seg.Lockable(), Owner: seg.Owner,
			PageSize: seg.Obj.PageSize, Frames: seg.Obj.ResolvedFrameMap(),
		})
		persisted[seg.ID] = true
	}
	for _, v := range sys.vases {
		pv := persistVAS{ID: v.ID, Name: v.Name, Owner: v.Owner, Mode: v.Mode, Tag: v.Tag()}
		skip := false
		for _, m := range v.Mappings() {
			if ephemeral[m.Seg.ID] {
				skip = true
				break
			}
			if persisted[m.Seg.ID] {
				pv.Segs = append(pv.Segs, persistVASMapping{Seg: m.Seg.ID, Perm: m.Perm})
			}
		}
		if skip {
			// VASes over frozen views die with the fork; restoring them
			// would resurrect a window onto nothing.
			continue
		}
		img.Vases = append(img.Vases, pv)
	}
	sys.mu.Unlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return fmt.Errorf("spacejmp: encoding checkpoint: %w", err)
	}
	_, slotCap := slotGeometry(sbBase, sbSize, 0)
	if uint64(buf.Len())+hdrSize > slotCap {
		return fmt.Errorf("%w: checkpoint (%d B) exceeds generation slot (%d B); grow mem.Config.NVMSuperblock",
			ErrLayout, buf.Len(), slotCap)
	}

	// Pick the slot NOT holding the newest valid generation.
	gens, err := sys.generations(sbBase, sbSize)
	if err != nil {
		return err
	}
	target, seq := 0, uint64(1)
	if cur, ok := newestValid(gens); ok {
		target = (cur.slot + 1) % numGenerations
		seq = cur.seq + 1
	}
	slotBase, _ := slotGeometry(sbBase, sbSize, target)

	// Payload first; the slot stays invalid (old header, new payload → CRC
	// mismatch) until the header commits it.
	if err := sys.M.PM.WriteAt(slotBase+hdrSize, buf.Bytes()); err != nil {
		return fmt.Errorf("spacejmp: writing checkpoint payload: %w", err)
	}
	head := make([]byte, hdrSize)
	binary.LittleEndian.PutUint64(head[hdrMagic:], checkpointMagic)
	binary.LittleEndian.PutUint64(head[hdrVersion:], checkpointVersion)
	binary.LittleEndian.PutUint64(head[hdrSeq:], seq)
	binary.LittleEndian.PutUint64(head[hdrLen:], uint64(buf.Len()))
	binary.LittleEndian.PutUint64(head[hdrCRC:], uint64(crc32.ChecksumIEEE(buf.Bytes())))
	if err := sys.M.PM.WriteAt(slotBase, head); err != nil {
		return fmt.Errorf("spacejmp: committing checkpoint header: %w", err)
	}
	return nil
}

// SegmentImage is one segment's content as recorded by a checkpoint
// generation: the metadata needed to rebuild the segment elsewhere plus the
// bytes of every page the segment had materialized. Pages is sparse — a
// page index absent from the map was never touched and reads as zeros, so
// an applier that skips it reproduces the same contents.
type SegmentImage struct {
	Name     string
	Size     uint64
	PageSize uint64
	Lockable bool
	Seq      uint64            // generation the image came from
	Pages    map[uint64][]byte // page index → page contents
}

// CheckpointSegment reads one segment's image out of the newest valid
// checkpoint generation without restoring anything locally — the reader a
// replica peer uses to ship a generation's payload over the interconnect.
// It returns ErrNoCheckpoint on fresh NVM, ErrCorruptCheckpoint when
// headers are present but no generation validates, and ErrNotFound when the
// generation holds no segment of that name.
func (sys *System) CheckpointSegment(name string) (*SegmentImage, error) {
	sbBase, sbSize := sys.M.PM.Superblock()
	if sbSize == 0 {
		return nil, fmt.Errorf("%w: machine has no NVM superblock", ErrInvalid)
	}
	gens, err := sys.generations(sbBase, sbSize)
	if err != nil {
		return nil, err
	}
	best, ok := newestValid(gens)
	if !ok {
		for _, g := range gens {
			if g.magic {
				return nil, fmt.Errorf("%w: headers present but no generation validates", ErrCorruptCheckpoint)
			}
		}
		return nil, ErrNoCheckpoint
	}
	data := make([]byte, best.size)
	if err := sys.M.PM.ReadAt(best.base+hdrSize, data); err != nil {
		return nil, err
	}
	var img persistImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("%w: decoding generation %d: %v", ErrCorruptCheckpoint, best.seq, err)
	}
	for _, ps := range img.Segs {
		if ps.Name != name {
			continue
		}
		pageSize := ps.PageSize
		if pageSize == 0 {
			pageSize = arch.PageSize
		}
		out := &SegmentImage{
			Name: ps.Name, Size: ps.Size, PageSize: pageSize,
			Lockable: ps.Lockable, Seq: best.seq,
			Pages: make(map[uint64][]byte, len(ps.Frames)),
		}
		for idx, pa := range ps.Frames {
			page := make([]byte, pageSize)
			if err := sys.M.PM.ReadAt(pa, page); err != nil {
				return nil, fmt.Errorf("spacejmp: reading checkpointed page %d: %w", idx, err)
			}
			out.Pages[idx] = page
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: generation %d holds no segment %q", ErrNotFound, best.seq, name)
}

// SegmentImageOf reads a live segment's current content into a SegmentImage
// without going through the NVM superblock — the extraction path for frozen
// fork segments, whose frames are immutable by construction. Pages are
// resolved through the object's COW parent chain (a second-generation frozen
// view owns only the pages written since the previous fork; older content
// lives upstream), so the image is always complete. seq stamps the image's
// generation for the applier.
//
// The read never mutates the object: unmaterialized pages are simply absent
// from the sparse map and read as zeros on apply.
func (sys *System) SegmentImageOf(name string, seq uint64) (*SegmentImage, error) {
	sys.mu.Lock()
	seg, ok := sys.segByName[name]
	sys.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: segment %q", ErrNotFound, name)
	}
	obj := seg.Obj
	out := &SegmentImage{
		Name: seg.Name, Size: seg.Size, PageSize: obj.PageSize,
		Lockable: seg.Lockable(), Seq: seq,
		Pages: make(map[uint64][]byte),
	}
	for idx := uint64(0); idx < obj.Pages(); idx++ {
		pa, ok := obj.ResolveFrame(idx)
		if !ok {
			continue
		}
		page := make([]byte, obj.PageSize)
		if err := sys.M.PM.ReadAt(pa, page); err != nil {
			return nil, fmt.Errorf("spacejmp: reading page %d of %q: %w", idx, name, err)
		}
		out.Pages[idx] = page
	}
	return out, nil
}

// Restore rebuilds the registries from the newest valid checkpoint
// generation in the NVM superblock into this (freshly booted) System. It
// must be called before any VASes or global segments are created, so
// restored IDs cannot collide.
//
// It returns ErrNoCheckpoint when the superblock has never held a committed
// image (fresh NVM) and ErrCorruptCheckpoint when headers are present but no
// generation validates — callers can reformat in the first case and must
// not silently discard data in the second.
func (sys *System) Restore() error {
	sbBase, sbSize := sys.M.PM.Superblock()
	if sbSize == 0 {
		return fmt.Errorf("%w: machine has no NVM superblock", ErrInvalid)
	}
	gens, err := sys.generations(sbBase, sbSize)
	if err != nil {
		return err
	}
	best, ok := newestValid(gens)
	if !ok {
		for _, g := range gens {
			if g.magic {
				return fmt.Errorf("%w: headers present but no generation validates", ErrCorruptCheckpoint)
			}
		}
		return ErrNoCheckpoint
	}
	data := make([]byte, best.size)
	if err := sys.M.PM.ReadAt(best.base+hdrSize, data); err != nil {
		return err
	}
	var img persistImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("%w: decoding generation %d: %v", ErrCorruptCheckpoint, best.seq, err)
	}

	sys.mu.Lock()
	defer sys.mu.Unlock()
	if len(sys.segs) > 0 || len(sys.vases) > 0 {
		return fmt.Errorf("%w: restore into a non-empty system", ErrBusy)
	}
	segByID := map[SegID]*Segment{}
	for _, ps := range img.Segs {
		pageSize := ps.PageSize
		if pageSize == 0 {
			pageSize = arch.PageSize
		}
		seg := &Segment{
			ID: ps.ID, Name: ps.Name, Base: ps.Base, Size: ps.Size,
			Obj:   vm.NewObjectFromFramesPages(sys.M.PM, ps.Name, ps.Size, mem.TierNVM, pageSize, ps.Frames),
			Owner: ps.Owner, perm: ps.Perm, lockable: ps.Lockable,
		}
		sys.segs[seg.ID] = seg
		sys.segByName[seg.Name] = seg
		segByID[seg.ID] = seg
		sys.P.SegCreated(ps.Owner, seg)
	}
	for _, pv := range img.Vases {
		v := &VAS{ID: pv.ID, Name: pv.Name, Owner: pv.Owner, Mode: pv.Mode,
			tag: pv.Tag, atts: map[*Attachment]struct{}{}}
		for _, m := range pv.Segs {
			seg, ok := segByID[m.Seg]
			if !ok {
				return fmt.Errorf("%w: generation %d references missing segment %d", ErrCorruptCheckpoint, best.seq, m.Seg)
			}
			v.segs = append(v.segs, SegMapping{Seg: seg, Perm: m.Perm})
		}
		sys.vases[v.ID] = v
		sys.vasByName[v.Name] = v
		sys.P.VASCreated(pv.Owner, v)
	}
	if img.NextVAS > sys.nextVAS {
		sys.nextVAS = img.NextVAS
	}
	if img.NextSeg > sys.nextSeg {
		sys.nextSeg = img.NextSeg
	}
	if img.NextASID > sys.nextASID {
		sys.nextASID = img.NextASID
	}
	return nil
}
