package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
	"spacejmp/internal/vm"
)

// Persistence of VASes across reboots (paper §7: "we also plan to address
// other issues such as the persistency of multiple virtual address spaces
// (for example, across reboots)").
//
// Checkpoint serializes the registries of NVM-backed segments and the
// VASes over them into the machine's NVM superblock. After a power cycle —
// which destroys all DRAM content and allocations but preserves NVM — a
// fresh System Restores from the superblock: segments reattach their
// surviving frames, VASes reattach their segment lists, and processes can
// vas_find and switch into them as if nothing happened.

const checkpointMagic uint64 = 0x53504a4d50533031 // "SPJMPS01"

// Gob-friendly snapshots of the persistable state.
type persistSeg struct {
	ID       SegID
	Name     string
	Base     arch.VirtAddr
	Size     uint64
	Perm     arch.Perm
	Lockable bool
	Owner    Creds
	PageSize uint64
	Frames   map[uint64]arch.PhysAddr
}

type persistVASMapping struct {
	Seg  SegID
	Perm arch.Perm
}

type persistVAS struct {
	ID    VASID
	Name  string
	Owner Creds
	Mode  uint16
	Tag   arch.ASID
	Segs  []persistVASMapping
}

type persistImage struct {
	Segs     []persistSeg
	Vases    []persistVAS
	NextVAS  VASID
	NextSeg  SegID
	NextASID arch.ASID
}

// Checkpoint writes the persistable state into the NVM superblock. Only
// segments backed by the NVM tier are included (DRAM contents would not
// survive the power cycle anyway); VAS segment lists are filtered
// accordingly. Attachments and processes are inherently volatile and are
// not part of the image.
func (sys *System) Checkpoint() error {
	sbBase, sbSize := sys.M.PM.Superblock()
	if sbSize == 0 {
		return fmt.Errorf("spacejmp: machine has no NVM superblock; configure mem.Config.NVMSuperblock")
	}
	sys.mu.Lock()
	img := persistImage{NextVAS: sys.nextVAS, NextSeg: sys.nextSeg, NextASID: sys.nextASID}
	persisted := map[SegID]bool{}
	for _, seg := range sys.segs {
		if seg.Obj.Tier != mem.TierNVM {
			continue
		}
		img.Segs = append(img.Segs, persistSeg{
			ID: seg.ID, Name: seg.Name, Base: seg.Base, Size: seg.Size,
			Perm: seg.Perm(), Lockable: seg.Lockable(), Owner: seg.Owner,
			PageSize: seg.Obj.PageSize, Frames: seg.Obj.FrameMap(),
		})
		persisted[seg.ID] = true
	}
	for _, v := range sys.vases {
		pv := persistVAS{ID: v.ID, Name: v.Name, Owner: v.Owner, Mode: v.Mode, Tag: v.Tag()}
		for _, m := range v.Mappings() {
			if persisted[m.Seg.ID] {
				pv.Segs = append(pv.Segs, persistVASMapping{Seg: m.Seg.ID, Perm: m.Perm})
			}
		}
		img.Vases = append(img.Vases, pv)
	}
	sys.mu.Unlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return fmt.Errorf("spacejmp: encoding checkpoint: %w", err)
	}
	if uint64(buf.Len())+16 > sbSize {
		return fmt.Errorf("spacejmp: checkpoint (%d B) exceeds superblock (%d B)", buf.Len(), sbSize)
	}
	head := make([]byte, 16)
	binary.LittleEndian.PutUint64(head, checkpointMagic)
	binary.LittleEndian.PutUint64(head[8:], uint64(buf.Len()))
	if err := sys.M.PM.WriteAt(sbBase, head); err != nil {
		return err
	}
	return sys.M.PM.WriteAt(sbBase+16, buf.Bytes())
}

// Restore rebuilds the registries from the NVM superblock into this
// (freshly booted) System. It must be called before any VASes or global
// segments are created, so restored IDs cannot collide.
func (sys *System) Restore() error {
	sbBase, sbSize := sys.M.PM.Superblock()
	if sbSize == 0 {
		return fmt.Errorf("spacejmp: machine has no NVM superblock")
	}
	head := make([]byte, 16)
	if err := sys.M.PM.ReadAt(sbBase, head); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(head) != checkpointMagic {
		return fmt.Errorf("spacejmp: no checkpoint in superblock")
	}
	length := binary.LittleEndian.Uint64(head[8:])
	if length+16 > sbSize {
		return fmt.Errorf("spacejmp: corrupt checkpoint length %d", length)
	}
	data := make([]byte, length)
	if err := sys.M.PM.ReadAt(sbBase+16, data); err != nil {
		return err
	}
	var img persistImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("spacejmp: decoding checkpoint: %w", err)
	}

	sys.mu.Lock()
	defer sys.mu.Unlock()
	if len(sys.segs) > 0 || len(sys.vases) > 0 {
		return fmt.Errorf("%w: restore into a non-empty system", ErrBusy)
	}
	segByID := map[SegID]*Segment{}
	for _, ps := range img.Segs {
		pageSize := ps.PageSize
		if pageSize == 0 {
			pageSize = arch.PageSize
		}
		seg := &Segment{
			ID: ps.ID, Name: ps.Name, Base: ps.Base, Size: ps.Size,
			Obj:   vm.NewObjectFromFramesPages(sys.M.PM, ps.Name, ps.Size, mem.TierNVM, pageSize, ps.Frames),
			Owner: ps.Owner, perm: ps.Perm, lockable: ps.Lockable,
		}
		sys.segs[seg.ID] = seg
		sys.segByName[seg.Name] = seg
		segByID[seg.ID] = seg
		sys.P.SegCreated(ps.Owner, seg)
	}
	for _, pv := range img.Vases {
		v := &VAS{ID: pv.ID, Name: pv.Name, Owner: pv.Owner, Mode: pv.Mode,
			tag: pv.Tag, atts: map[*Attachment]struct{}{}}
		for _, m := range pv.Segs {
			seg, ok := segByID[m.Seg]
			if !ok {
				return fmt.Errorf("spacejmp: checkpoint references missing segment %d", m.Seg)
			}
			v.segs = append(v.segs, SegMapping{Seg: seg, Perm: m.Perm})
		}
		sys.vases[v.ID] = v
		sys.vasByName[v.Name] = v
		sys.P.VASCreated(pv.Owner, v)
	}
	if img.NextVAS > sys.nextVAS {
		sys.nextVAS = img.NextVAS
	}
	if img.NextSeg > sys.nextSeg {
		sys.nextSeg = img.NextSeg
	}
	if img.NextASID > sys.nextASID {
		sys.nextASID = img.NextASID
	}
	return nil
}
