package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
	"spacejmp/internal/pt"
	"spacejmp/internal/stats"
	"spacejmp/internal/vm"
)

// Segment is SpaceJMP's unit of sharing: a single contiguous area of
// virtual memory with a fixed start address and size, backed by reserved
// physical frames, plus metadata (name, protection, lock state). It wraps a
// BSD VM object exactly as the DragonFly prototype does (§4.1).
type Segment struct {
	ID   SegID
	Name string
	Base arch.VirtAddr
	Size uint64
	Obj  *vm.Object

	// Owner is the creating subject; personalities use it for access
	// decisions. Security is an opaque slot for personality state (an ACL
	// or a capability record).
	Owner    Creds
	Security any

	mu       sync.Mutex
	perm     arch.Perm // maximum permissions
	lockable bool
	lock     segLock

	// ephemeral marks transient derived segments (frozen fork views) that
	// must never be persisted: their frames belong to a live segment's COW
	// chain and their lifetime is bounded by the fork that created them.
	ephemeral bool

	// cache is the segment's cached translation subtree: a private page
	// table whose single PML4 entry covers the segment, whose PDPT can be
	// linked into attaching address spaces in O(1) (§4.1, §4.4).
	cache *pt.Table
}

// segLock is the reader/writer lock guarding a lockable segment. Acquisition
// mode follows the mapping permissions: read-only attachments share the
// lock, writable attachments hold it exclusively (§3.1).
type segLock struct {
	rw        sync.RWMutex
	readers   atomic.Int64
	writers   atomic.Int64
	contended atomic.Int64 // acquisitions that had to block
}

// Perm returns the segment's maximum permissions.
func (s *Segment) Perm() arch.Perm {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perm
}

// Lockable reports whether switches must take the segment's lock.
func (s *Segment) Lockable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lockable
}

// SetLockable toggles lock enforcement.
func (s *Segment) SetLockable(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockable = v
}

// setPerm updates the maximum permissions (seg_ctl).
func (s *Segment) setPerm(p arch.Perm) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perm = p
}

// acquire takes the segment lock in the mode implied by the mapping
// permissions, blocking until granted. Non-lockable segments are a no-op.
func (s *Segment) acquire(mapPerm arch.Perm) {
	if !s.Lockable() {
		return
	}
	if mapPerm.CanWrite() {
		if !s.lock.rw.TryLock() {
			s.lock.contended.Add(1)
			s.lock.rw.Lock()
		}
		s.lock.writers.Add(1)
	} else {
		if !s.lock.rw.TryRLock() {
			s.lock.contended.Add(1)
			s.lock.rw.RLock()
		}
		s.lock.readers.Add(1)
	}
}

// release drops the lock taken by acquire with the same mapping perms.
func (s *Segment) release(mapPerm arch.Perm) {
	if !s.Lockable() {
		return
	}
	if mapPerm.CanWrite() {
		s.lock.writers.Add(-1)
		s.lock.rw.Unlock()
	} else {
		s.lock.readers.Add(-1)
		s.lock.rw.RUnlock()
	}
}

// LockHolders returns the current (readers, writers) holding the lock, for
// tests and introspection.
func (s *Segment) LockHolders() (readers, writers int64) {
	return s.lock.readers.Load(), s.lock.writers.Load()
}

// LockContentions returns how many lock acquisitions had to block — the
// serialization the exclusive path imposes (§5.3's SET bottleneck).
func (s *Segment) LockContentions() int64 {
	return s.lock.contended.Load()
}

// Ephemeral reports whether the segment is a transient derived view
// (a frozen fork) excluded from checkpoints.
func (s *Segment) Ephemeral() bool { return s.ephemeral }

// End returns the first address past the segment.
func (s *Segment) End() arch.VirtAddr { return s.Base + arch.VirtAddr(s.Size) }

// pml4Slot returns the PML4 index the segment occupies, and whether it fits
// entirely within that one slot (the precondition for translation caching).
func (s *Segment) pml4Slot() (uint64, bool) {
	cover := arch.LevelCoverage(3)
	first := uint64(s.Base) / cover
	last := (uint64(s.End()) - 1) / cover
	return first, first == last
}

// HasCache reports whether cached translations are built.
func (s *Segment) HasCache() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache != nil
}

// buildCache constructs the cached translation subtree: every page of the
// segment is mapped (at its maximum permissions) into a private table whose
// PDPT is then shareable. Requires the segment to fit in one PML4 slot.
// obs (which may be nil) feeds the observability layer's page-table counters.
func (s *Segment) buildCache(pm *mem.PhysMem, obs *stats.PTCounters) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		return nil
	}
	if _, ok := s.pml4Slot(); !ok {
		return fmt.Errorf("%w: segment %q spans PML4 slots; cannot cache translations", ErrLayout, s.Name)
	}
	table, err := pt.New(pm)
	if err != nil {
		return err
	}
	table.SetObserver(obs)
	ps := s.Obj.PageSize
	for off := uint64(0); off < s.Size; off += ps {
		frame, err := s.Obj.Frame(off / ps)
		if err != nil {
			table.Destroy()
			return err
		}
		if err := table.MapPage(s.Base+arch.VirtAddr(off), frame, ps, s.perm, false); err != nil {
			table.Destroy()
			return err
		}
	}
	s.cache = table
	return nil
}

// cacheSubtree returns the PDPT of the cached translations (the table the
// segment's PML4 entry points at), or false if no cache is built or the
// requested permissions differ from the cached ones.
func (s *Segment) cacheSubtree(pm *mem.PhysMem, mapPerm arch.Perm) (arch.PhysAddr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil || mapPerm != s.perm {
		return 0, false
	}
	slot, _ := s.pml4Slot()
	// The cache's root has exactly one present entry, at our slot.
	v, err := pm.Load64(s.cache.Root() + arch.PhysAddr(slot*8))
	if err != nil || !pt.PTE(v).Present() {
		return 0, false
	}
	return pt.PTE(v).Addr(), true
}

// CacheSubtree exposes a segment's cached-translation subtree (the PDPT
// its private PML4 entry points at) for tooling and experiments. Returns
// false if no cache is built.
func CacheSubtree(pm *mem.PhysMem, seg *Segment) (arch.PhysAddr, bool) {
	return seg.cacheSubtree(pm, seg.Perm())
}

// destroy releases the segment's storage. Caller must hold no mappings.
func (s *Segment) destroy() {
	s.mu.Lock()
	if s.cache != nil {
		s.cache.Destroy()
		s.cache = nil
	}
	s.mu.Unlock()
	s.Obj.Unref()
}
