// Package sam reproduces the paper's SAMTools experiment (§5.4, Figures 11
// and 12): DNA alignment records processed by a chain of tools (flagstat,
// name sort, coordinate sort, index), comparing serialization-based
// workflows (SAM text and BAM binary files) against keeping the pointer-rich
// in-memory representation alive — in an mmap'ed region file, or in a
// SpaceJMP VAS that successive processes switch into.
//
// The paper uses real sequencing data; this reproduction generates
// deterministic synthetic alignments with a realistic field mix, which
// exercises the identical parse/serialize/sort/index code paths
// (substitution documented in DESIGN.md).
package sam

import (
	"fmt"
	"math/rand"
)

// SAM flag bits (SAM spec §1.4).
const (
	FlagPaired       = 0x1
	FlagProperPair   = 0x2
	FlagUnmapped     = 0x4
	FlagMateUnmapped = 0x8
	FlagReverse      = 0x10
	FlagRead1        = 0x40
	FlagRead2        = 0x80
	FlagSecondary    = 0x100
	FlagQCFail       = 0x200
	FlagDuplicate    = 0x400
)

// Record is one alignment line (the mandatory SAM fields).
type Record struct {
	QName string
	Flag  uint16
	RName string
	Pos   int32
	MapQ  uint8
	CIGAR string
	RNext string
	PNext int32
	TLen  int32
	Seq   string
	Qual  string
}

// References lists the synthetic reference sequences.
var References = []string{"chr1", "chr2", "chr3", "chrX", "*"}

const bases = "ACGT"

// Generate produces n deterministic synthetic alignments.
func Generate(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		readLen := 36 + rng.Intn(65)
		seq := make([]byte, readLen)
		qual := make([]byte, readLen)
		for j := range seq {
			seq[j] = bases[rng.Intn(4)]
			qual[j] = byte('!' + rng.Intn(40))
		}
		flag := uint16(FlagPaired)
		ref := References[rng.Intn(len(References)-1)]
		pos := int32(rng.Intn(50_000_000) + 1)
		switch rng.Intn(10) {
		case 0: // unmapped
			flag |= FlagUnmapped
			ref, pos = "*", 0
		case 1:
			flag |= FlagDuplicate | FlagProperPair
		case 2:
			flag |= FlagSecondary
		default:
			flag |= FlagProperPair
		}
		if rng.Intn(2) == 0 {
			flag |= FlagRead1
		} else {
			flag |= FlagRead2
		}
		if rng.Intn(2) == 0 {
			flag |= FlagReverse
		}
		out[i] = Record{
			QName: fmt.Sprintf("read.%08d", rng.Intn(n*2)),
			Flag:  flag,
			RName: ref,
			Pos:   pos,
			MapQ:  uint8(rng.Intn(61)),
			CIGAR: fmt.Sprintf("%dM", readLen),
			RNext: "=",
			PNext: pos + int32(rng.Intn(500)),
			TLen:  int32(rng.Intn(1000) - 500),
			Seq:   string(seq),
			Qual:  string(qual),
		}
	}
	return out
}

// FlagstatResult is samtools flagstat's summary.
type FlagstatResult struct {
	Total      int
	Mapped     int
	Paired     int
	ProperPair int
	Duplicates int
	Secondary  int
	QCFail     int
	Read1      int
	Read2      int
}

// Flagstat computes flag statistics over native records.
func Flagstat(recs []Record) FlagstatResult {
	var r FlagstatResult
	for i := range recs {
		f := recs[i].Flag
		r.Total++
		if f&FlagUnmapped == 0 {
			r.Mapped++
		}
		if f&FlagPaired != 0 {
			r.Paired++
		}
		if f&FlagProperPair != 0 {
			r.ProperPair++
		}
		if f&FlagDuplicate != 0 {
			r.Duplicates++
		}
		if f&FlagSecondary != 0 {
			r.Secondary++
		}
		if f&FlagQCFail != 0 {
			r.QCFail++
		}
		if f&FlagRead1 != 0 {
			r.Read1++
		}
		if f&FlagRead2 != 0 {
			r.Read2++
		}
	}
	return r
}

// CoordLess orders records by (reference, position), unmapped last — the
// samtools coordinate sort order.
func CoordLess(a, b *Record) bool {
	ra, rb := refRank(a.RName), refRank(b.RName)
	if ra != rb {
		return ra < rb
	}
	return a.Pos < b.Pos
}

func refRank(name string) int {
	for i, r := range References {
		if r == name {
			return i
		}
	}
	return len(References)
}

// IndexBinSize is the position granularity of the index (16 KiB of
// reference, like BAI linear index bins).
const IndexBinSize = 16384

// Index maps (reference rank, pos/IndexBinSize) to the first record index
// at or past that bin in a coordinate-sorted set.
type Index map[[2]int32]int32

// BuildIndex indexes coordinate-sorted records.
func BuildIndex(recs []Record) Index {
	idx := Index{}
	for i := range recs {
		if recs[i].Flag&FlagUnmapped != 0 {
			continue
		}
		key := [2]int32{int32(refRank(recs[i].RName)), recs[i].Pos / IndexBinSize}
		if _, ok := idx[key]; !ok {
			idx[key] = int32(i)
		}
	}
	return idx
}

// Lookup returns the index of the first record at or past the bin holding
// (ref, pos), and whether the bin is populated.
func (idx Index) Lookup(ref string, pos int32) (int32, bool) {
	first, ok := idx[[2]int32{int32(refRank(ref)), pos / IndexBinSize}]
	return first, ok
}
