package sam

import (
	"fmt"
	"sort"

	"spacejmp/internal/arch"
	"spacejmp/internal/mspace"
)

// MemStore is the pointer-rich in-memory representation the SpaceJMP and
// mmap workflows keep alive between tool executions: an array of record
// pointers plus per-record chunks and string data, all inside one segment
// (or region file) and addressed by stable virtual addresses. Tools
// operating on it never serialize — they chase the pointers directly,
// which is exactly what Figures 11 and 12 measure.
type MemStore struct {
	mem  mspace.Accessor
	heap *mspace.Space
	base arch.VirtAddr
	root arch.VirtAddr
}

// Root header words.
const (
	msCount = 0 // number of records
	msArray = 8 // VA of the record-pointer array
	msIndex = 16
	msSize  = 24
)

// Record chunk words.
const (
	rFlag  = 0 // flag | mapq<<16
	rPos   = 8
	rPNext = 16
	rTLen  = 24
	rQName = 32 // VA of string chunk
	rRName = 40
	rCIGAR = 48
	rRNext = 56
	rSeq   = 64
	rQual  = 72
	rSize  = 80
)

const memHeapOff = arch.PageSize

// CreateMemStore formats a segment and loads recs into it.
func CreateMemStore(mem mspace.Accessor, base arch.VirtAddr, size uint64, recs []Record) (ms *MemStore, err error) {
	defer guard(&err)
	heap, err := mspace.Init(mem, base+memHeapOff, size-memHeapOff)
	if err != nil {
		return nil, err
	}
	s := &MemStore{mem: mem, heap: heap, base: base}
	root, err := heap.Alloc(msSize)
	if err != nil {
		return nil, err
	}
	s.root = root
	arr, err := heap.Alloc(uint64(len(recs)) * 8)
	if err != nil {
		return nil, err
	}
	s.put(root+msCount, uint64(len(recs)))
	s.put(root+msArray, uint64(arr))
	s.put(root+msIndex, 0)
	for i := range recs {
		rec, err := s.writeRecord(&recs[i])
		if err != nil {
			return nil, err
		}
		s.put(arr+arch.VirtAddr(i*8), uint64(rec))
	}
	s.put(base, uint64(root))
	return s, nil
}

// OpenMemStore attaches to an existing store (another process's view).
func OpenMemStore(mem mspace.Accessor, base arch.VirtAddr) (ms *MemStore, err error) {
	defer guard(&err)
	heap, err := mspace.Open(mem, base+memHeapOff)
	if err != nil {
		return nil, err
	}
	rootWord, err := mem.Load64(base)
	if err != nil {
		return nil, err
	}
	if rootWord == 0 {
		return nil, fmt.Errorf("sam: no store at %v", base)
	}
	return &MemStore{mem: mem, heap: heap, base: base, root: arch.VirtAddr(rootWord)}, nil
}

func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("sam: store access failed: %v", r)
	}
}

func (s *MemStore) get(va arch.VirtAddr) uint64 {
	v, err := s.mem.Load64(va)
	if err != nil {
		panic(err)
	}
	return v
}

func (s *MemStore) put(va arch.VirtAddr, v uint64) {
	if err := s.mem.Store64(va, v); err != nil {
		panic(err)
	}
}

// writeString allocates a length-prefixed string chunk.
func (s *MemStore) writeString(str string) (arch.VirtAddr, error) {
	va, err := s.heap.Alloc(8 + uint64(len(str)))
	if err != nil {
		return 0, err
	}
	s.put(va, uint64(len(str)))
	b := []byte(str)
	for off := 0; off < len(b); off += 8 {
		var w uint64
		for k := 0; k < 8 && off+k < len(b); k++ {
			w |= uint64(b[off+k]) << (8 * k)
		}
		s.put(va+8+arch.VirtAddr(off), w)
	}
	return va, nil
}

func (s *MemStore) readString(va arch.VirtAddr) string {
	n := s.get(va)
	out := make([]byte, n)
	for off := uint64(0); off < n; off += 8 {
		w := s.get(va + 8 + arch.VirtAddr(off))
		for k := uint64(0); k < 8 && off+k < n; k++ {
			out[off+k] = byte(w >> (8 * k))
		}
	}
	return string(out)
}

func (s *MemStore) writeRecord(r *Record) (arch.VirtAddr, error) {
	rec, err := s.heap.Alloc(rSize)
	if err != nil {
		return 0, err
	}
	s.put(rec+rFlag, uint64(r.Flag)|uint64(r.MapQ)<<16)
	s.put(rec+rPos, uint64(uint32(r.Pos)))
	s.put(rec+rPNext, uint64(uint32(r.PNext)))
	s.put(rec+rTLen, uint64(uint32(r.TLen)))
	for off, str := range map[arch.VirtAddr]string{
		rQName: r.QName, rRName: r.RName, rCIGAR: r.CIGAR,
		rRNext: r.RNext, rSeq: r.Seq, rQual: r.Qual,
	} {
		sv, err := s.writeString(str)
		if err != nil {
			return 0, err
		}
		s.put(rec+off, uint64(sv))
	}
	return rec, nil
}

// Count returns the number of records.
func (s *MemStore) Count() (n uint64, err error) {
	defer guard(&err)
	return s.get(s.root + msCount), nil
}

// record returns the address of record i.
func (s *MemStore) record(i uint64) arch.VirtAddr {
	arr := arch.VirtAddr(s.get(s.root + msArray))
	return arch.VirtAddr(s.get(arr + arch.VirtAddr(i*8)))
}

// ReadRecord materializes record i as a native value (for verification).
func (s *MemStore) ReadRecord(i uint64) (out Record, err error) {
	defer guard(&err)
	rec := s.record(i)
	fl := s.get(rec + rFlag)
	out = Record{
		Flag: uint16(fl), MapQ: uint8(fl >> 16),
		Pos:   int32(uint32(s.get(rec + rPos))),
		PNext: int32(uint32(s.get(rec + rPNext))),
		TLen:  int32(uint32(s.get(rec + rTLen))),
		QName: s.readString(arch.VirtAddr(s.get(rec + rQName))),
		RName: s.readString(arch.VirtAddr(s.get(rec + rRName))),
		CIGAR: s.readString(arch.VirtAddr(s.get(rec + rCIGAR))),
		RNext: s.readString(arch.VirtAddr(s.get(rec + rRNext))),
		Seq:   s.readString(arch.VirtAddr(s.get(rec + rSeq))),
		Qual:  s.readString(arch.VirtAddr(s.get(rec + rQual))),
	}
	return out, nil
}

// Flagstat walks every record in segment memory.
func (s *MemStore) Flagstat() (res FlagstatResult, err error) {
	defer guard(&err)
	n := s.get(s.root + msCount)
	for i := uint64(0); i < n; i++ {
		f := uint16(s.get(s.record(i) + rFlag))
		res.Total++
		if f&FlagUnmapped == 0 {
			res.Mapped++
		}
		if f&FlagPaired != 0 {
			res.Paired++
		}
		if f&FlagProperPair != 0 {
			res.ProperPair++
		}
		if f&FlagDuplicate != 0 {
			res.Duplicates++
		}
		if f&FlagSecondary != 0 {
			res.Secondary++
		}
		if f&FlagQCFail != 0 {
			res.QCFail++
		}
		if f&FlagRead1 != 0 {
			res.Read1++
		}
		if f&FlagRead2 != 0 {
			res.Read2++
		}
	}
	return res, nil
}

// SortQName reorders the pointer array by query name. Comparisons chase
// pointers through segment memory — no data is copied or serialized.
func (s *MemStore) SortQName() (err error) {
	defer guard(&err)
	return s.sortBy(func(a, b arch.VirtAddr) bool {
		return s.readString(arch.VirtAddr(s.get(a+rQName))) < s.readString(arch.VirtAddr(s.get(b+rQName)))
	})
}

// SortCoord reorders by (reference, position), unmapped last.
func (s *MemStore) SortCoord() (err error) {
	defer guard(&err)
	rank := func(rec arch.VirtAddr) int {
		return refRank(s.readString(arch.VirtAddr(s.get(rec + rRName))))
	}
	return s.sortBy(func(a, b arch.VirtAddr) bool {
		ra, rb := rank(a), rank(b)
		if ra != rb {
			return ra < rb
		}
		return int32(uint32(s.get(a+rPos))) < int32(uint32(s.get(b+rPos)))
	})
}

func (s *MemStore) sortBy(less func(a, b arch.VirtAddr) bool) error {
	n := s.get(s.root + msCount)
	arr := arch.VirtAddr(s.get(s.root + msArray))
	ptrs := make([]arch.VirtAddr, n)
	for i := range ptrs {
		ptrs[i] = arch.VirtAddr(s.get(arr + arch.VirtAddr(i*8)))
	}
	sort.SliceStable(ptrs, func(i, j int) bool { return less(ptrs[i], ptrs[j]) })
	for i, p := range ptrs {
		s.put(arr+arch.VirtAddr(i*8), uint64(p))
	}
	return nil
}

// BuildIndex builds the linear index inside the segment: an array of
// (refRank, bin, firstIdx) triples over the coordinate-sorted records,
// linked from the root so later processes find it.
func (s *MemStore) BuildIndex() (bins int, err error) {
	defer guard(&err)
	n := s.get(s.root + msCount)
	type key struct{ rank, bin int32 }
	seen := map[key]bool{}
	var triples []uint64
	for i := uint64(0); i < n; i++ {
		rec := s.record(i)
		if uint16(s.get(rec+rFlag))&FlagUnmapped != 0 {
			continue
		}
		k := key{
			int32(refRank(s.readString(arch.VirtAddr(s.get(rec + rRName))))),
			int32(uint32(s.get(rec+rPos))) / IndexBinSize,
		}
		if !seen[k] {
			seen[k] = true
			triples = append(triples, uint64(uint32(k.rank))<<32|uint64(uint32(k.bin)), uint64(i))
		}
	}
	idx, err := s.heap.Alloc(8 + uint64(len(triples))*8)
	if err != nil {
		return 0, err
	}
	s.put(idx, uint64(len(triples)/2))
	for i, w := range triples {
		s.put(idx+8+arch.VirtAddr(i*8), w)
	}
	// Replace any previous index.
	if old := s.get(s.root + msIndex); old != 0 {
		if err := s.heap.Free(arch.VirtAddr(old)); err != nil {
			return 0, err
		}
	}
	s.put(s.root+msIndex, uint64(idx))
	return len(triples) / 2, nil
}

// IndexBins returns the number of bins in the stored index (0 if none).
func (s *MemStore) IndexBins() (n int, err error) {
	defer guard(&err)
	idx := s.get(s.root + msIndex)
	if idx == 0 {
		return 0, nil
	}
	return int(s.get(arch.VirtAddr(idx))), nil
}

// QueryIndex resolves (ref, pos) through the segment-resident index,
// returning the index of the first record in the bin — the random-access
// path a downstream viewer uses without parsing anything.
func (s *MemStore) QueryIndex(ref string, pos int32) (first int32, ok bool, err error) {
	defer guard(&err)
	idx := arch.VirtAddr(s.get(s.root + msIndex))
	if idx == 0 {
		return 0, false, fmt.Errorf("sam: no index built")
	}
	want := uint64(uint32(refRank(ref)))<<32 | uint64(uint32(pos/IndexBinSize))
	n := s.get(idx)
	for i := uint64(0); i < n; i++ {
		key := s.get(idx + 8 + arch.VirtAddr(i*16))
		if key == want {
			return int32(uint32(s.get(idx + 8 + arch.VirtAddr(i*16+8)))), true, nil
		}
	}
	return 0, false, nil
}
