package sam

import (
	"sort"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/kernel"
)

func TestIndexLookupAgreesWithScan(t *testing.T) {
	recs := Generate(300, 21)
	sort.SliceStable(recs, func(i, j int) bool { return CoordLess(&recs[i], &recs[j]) })
	idx := BuildIndex(recs)
	for _, probe := range []struct {
		ref string
		pos int32
	}{{"chr1", 1_000_000}, {"chr2", 25_000_000}, {"chrX", 40_000_000}} {
		first, ok := idx.Lookup(probe.ref, probe.pos)
		// Independent linear scan for the same bin.
		wantOK := false
		var want int32
		for i := range recs {
			if recs[i].Flag&FlagUnmapped != 0 {
				continue
			}
			if recs[i].RName == probe.ref && recs[i].Pos/IndexBinSize == probe.pos/IndexBinSize {
				want, wantOK = int32(i), true
				break
			}
		}
		if ok != wantOK || (ok && first != want) {
			t.Errorf("Lookup(%s,%d) = (%d,%v), scan says (%d,%v)", probe.ref, probe.pos, first, ok, want, wantOK)
		}
	}
}

func TestMemStoreQueryIndexMatchesNative(t *testing.T) {
	recs := Generate(200, 22)
	sys := kernel.New(samMachine())
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	vid, _ := th.VASCreate("idx.vas", 0o600)
	sid, err := th.SegAlloc("idx.seg", memBase, storeSegSize(len(recs)), arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	ms, err := CreateMemStore(th, memBase, storeSegSize(len(recs)), recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.SortCoord(); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	// Native reference on the identically sorted slice.
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return CoordLess(&sorted[i], &sorted[j]) })
	native := BuildIndex(sorted)

	for _, probe := range []struct {
		ref string
		pos int32
	}{{"chr1", 5_000_000}, {"chr3", 30_000_000}, {"chrX", 10_000_000}} {
		got, ok, err := ms.QueryIndex(probe.ref, probe.pos)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := native.Lookup(probe.ref, probe.pos)
		if ok != wantOK || (ok && got != want) {
			t.Errorf("QueryIndex(%s,%d) = (%d,%v), native (%d,%v)", probe.ref, probe.pos, got, ok, want, wantOK)
		}
		if ok {
			rec, err := ms.ReadRecord(uint64(got))
			if err != nil {
				t.Fatal(err)
			}
			if rec.RName != probe.ref {
				t.Errorf("record at index points to %s, want %s", rec.RName, probe.ref)
			}
		}
	}
	if _, _, err := ms.QueryIndex("chr1", 59_000_000); err != nil {
		t.Errorf("miss query errored: %v", err)
	}
}
