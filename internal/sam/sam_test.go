package sam

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/mem"
	"spacejmp/internal/tlb"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 1)
	b := Generate(100, 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("generation not deterministic")
	}
	c := Generate(100, 2)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical data")
	}
}

func TestSAMRoundTrip(t *testing.T) {
	recs := Generate(200, 3)
	got, err := DecodeSAM(EncodeSAM(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("SAM round trip mismatch")
	}
}

func TestBAMRoundTrip(t *testing.T) {
	recs := Generate(200, 4)
	enc, err := EncodeBAM(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBAM(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("BAM round trip mismatch")
	}
}

func TestBAMSmallerThanSAM(t *testing.T) {
	recs := Generate(500, 5)
	samBytes := EncodeSAM(recs)
	bamBytes, err := EncodeBAM(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bamBytes) >= len(samBytes) {
		t.Errorf("BAM (%d B) not smaller than SAM (%d B)", len(bamBytes), len(samBytes))
	}
}

func TestBAMRejectsGarbage(t *testing.T) {
	if _, err := DecodeBAM([]byte("not a bam")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestSAMPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		recs := Generate(int(n%50)+1, seed)
		got, err := DecodeSAM(EncodeSAM(recs))
		return err == nil && reflect.DeepEqual(recs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFlagstatCounts(t *testing.T) {
	recs := []Record{
		{Flag: FlagPaired | FlagRead1},
		{Flag: FlagPaired | FlagUnmapped | FlagRead2},
		{Flag: FlagPaired | FlagDuplicate | FlagProperPair | FlagRead1},
	}
	r := Flagstat(recs)
	if r.Total != 3 || r.Mapped != 2 || r.Paired != 3 || r.Duplicates != 1 ||
		r.ProperPair != 1 || r.Read1 != 2 || r.Read2 != 1 {
		t.Errorf("flagstat = %+v", r)
	}
}

func samMachine() *hw.Machine {
	return hw.NewMachine(hw.MachineConfig{
		Name: "sam-test", Sockets: 1, CoresPerSocket: 4, GHz: 2.5,
		Mem: mem.Config{DRAMSize: 1 << 30}, TLB: tlb.DefaultConfig, Cost: hw.DefaultCost,
	})
}

func TestMemStoreRoundTrip(t *testing.T) {
	m := samMachine()
	sys := kernel.New(m)
	recs := Generate(50, 6)
	res, err := RunSpaceJMP(sys, recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagstat != Flagstat(recs) {
		t.Errorf("memstore flagstat %+v != native %+v", res.Flagstat, Flagstat(recs))
	}
}

func TestAllModesAgree(t *testing.T) {
	recs := Generate(120, 7)

	native := Flagstat(recs)
	coordSorted := append([]Record(nil), recs...)
	sort.SliceStable(coordSorted, func(i, j int) bool { return CoordLess(&coordSorted[i], &coordSorted[j]) })
	wantFirst := coordSorted[0].Pos
	wantBins := len(BuildIndex(coordSorted))

	samRes, err := RunSAM(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	bamRes, err := RunBAM(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	mmapRes, err := RunMmap(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	jmpRes, err := RunSpaceJMP(kernel.New(samMachine()), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{samRes, bamRes, mmapRes, jmpRes} {
		if r.Flagstat != native {
			t.Errorf("%s flagstat %+v != native %+v", r.Mode, r.Flagstat, native)
		}
		if r.FirstPos != wantFirst {
			t.Errorf("%s coordinate sort first pos = %d, want %d", r.Mode, r.FirstPos, wantFirst)
		}
		if r.Bins != wantBins {
			t.Errorf("%s index bins = %d, want %d", r.Mode, r.Bins, wantBins)
		}
		for _, op := range Ops {
			if r.Cycles[op] == 0 {
				t.Errorf("%s %s reported zero cycles", r.Mode, op)
			}
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	// SpaceJMP avoids serialization entirely: every operation must beat
	// both file formats significantly.
	recs := Generate(400, 8)
	samRes, err := RunSAM(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	bamRes, err := RunBAM(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	jmpRes, err := RunSpaceJMP(kernel.New(samMachine()), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range Ops {
		if jmpRes.Cycles[op] >= samRes.Cycles[op] {
			t.Errorf("%s: SpaceJMP (%d) not faster than SAM (%d)", op, jmpRes.Cycles[op], samRes.Cycles[op])
		}
		if jmpRes.Cycles[op] >= bamRes.Cycles[op] {
			t.Errorf("%s: SpaceJMP (%d) not faster than BAM (%d)", op, jmpRes.Cycles[op], bamRes.Cycles[op])
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	// SpaceJMP is comparable to mmap overall, and flagstat (the shortest
	// op) shows the largest relative gain for SpaceJMP because the mmap
	// page-table construction dominates it.
	recs := Generate(400, 9)
	mmapRes, err := RunMmap(samMachine(), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	jmpRes, err := RunSpaceJMP(kernel.New(samMachine()), append([]Record(nil), recs...))
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(op Op) float64 {
		return float64(jmpRes.Cycles[op]) / float64(mmapRes.Cycles[op])
	}
	for _, op := range Ops {
		if r := ratio(op); r > 1.3 {
			t.Errorf("%s: SpaceJMP/mmap = %.2f, want comparable (<=1.3)", op, r)
		}
	}
	if ratio(OpFlagstat) >= ratio(OpQnameSort) {
		t.Errorf("flagstat ratio (%.2f) should show the largest SpaceJMP gain vs qname sort (%.2f)",
			ratio(OpFlagstat), ratio(OpQnameSort))
	}
}
