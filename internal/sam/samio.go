package sam

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// SAM text codec: tab-separated mandatory fields with an @HD header, as in
// the SAM specification.

// EncodeSAM renders records as SAM text.
func EncodeSAM(recs []Record) []byte {
	var b bytes.Buffer
	b.WriteString("@HD\tVN:1.6\n")
	for _, ref := range References {
		if ref != "*" {
			fmt.Fprintf(&b, "@SQ\tSN:%s\tLN:%d\n", ref, 60_000_000)
		}
	}
	for i := range recs {
		r := &recs[i]
		fmt.Fprintf(&b, "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s\n",
			r.QName, r.Flag, r.RName, r.Pos, r.MapQ, r.CIGAR, r.RNext, r.PNext, r.TLen, r.Seq, r.Qual)
	}
	return b.Bytes()
}

// DecodeSAM parses SAM text.
func DecodeSAM(data []byte) ([]Record, error) {
	var out []Record
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) < 11 {
			return nil, fmt.Errorf("sam: line %d has %d fields", ln+1, len(f))
		}
		flag, err := strconv.ParseUint(f[1], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("sam: line %d flag: %w", ln+1, err)
		}
		pos, err := strconv.ParseInt(f[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sam: line %d pos: %w", ln+1, err)
		}
		mapq, err := strconv.ParseUint(f[4], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("sam: line %d mapq: %w", ln+1, err)
		}
		pnext, err := strconv.ParseInt(f[7], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sam: line %d pnext: %w", ln+1, err)
		}
		tlen, err := strconv.ParseInt(f[8], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sam: line %d tlen: %w", ln+1, err)
		}
		out = append(out, Record{
			QName: f[0], Flag: uint16(flag), RName: f[2], Pos: int32(pos),
			MapQ: uint8(mapq), CIGAR: f[5], RNext: f[6], PNext: int32(pnext),
			TLen: int32(tlen), Seq: f[9], Qual: f[10],
		})
	}
	return out, nil
}
