package sam

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// BAM-like binary codec: records are encoded little-endian with
// length-prefixed strings, and the stream is DEFLATE-compressed (BGZF is
// gzip blocks; a single flate stream preserves the compress-and-binary
// cost structure without the block framing).

var bamMagic = [4]byte{'B', 'A', 'M', 1}

// EncodeBAM renders records as compressed binary.
func EncodeBAM(recs []Record) ([]byte, error) {
	var raw bytes.Buffer
	raw.Write(bamMagic[:])
	if err := binary.Write(&raw, binary.LittleEndian, uint32(len(recs))); err != nil {
		return nil, err
	}
	for i := range recs {
		r := &recs[i]
		if err := binary.Write(&raw, binary.LittleEndian, struct {
			Flag  uint16
			MapQ  uint8
			_     uint8
			Pos   int32
			PNext int32
			TLen  int32
		}{Flag: r.Flag, MapQ: r.MapQ, Pos: r.Pos, PNext: r.PNext, TLen: r.TLen}); err != nil {
			return nil, err
		}
		for _, s := range []string{r.QName, r.RName, r.CIGAR, r.RNext, r.Seq, r.Qual} {
			if err := binary.Write(&raw, binary.LittleEndian, uint32(len(s))); err != nil {
				return nil, err
			}
			raw.WriteString(s)
		}
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// DecodeBAM parses compressed binary records.
func DecodeBAM(data []byte) ([]Record, error) {
	r := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bam: decompress: %w", err)
	}
	buf := bytes.NewReader(raw)
	var magic [4]byte
	if _, err := io.ReadFull(buf, magic[:]); err != nil || magic != bamMagic {
		return nil, fmt.Errorf("bam: bad magic")
	}
	var n uint32
	if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	out := make([]Record, n)
	for i := range out {
		var fixed struct {
			Flag  uint16
			MapQ  uint8
			_     uint8
			Pos   int32
			PNext int32
			TLen  int32
		}
		if err := binary.Read(buf, binary.LittleEndian, &fixed); err != nil {
			return nil, fmt.Errorf("bam: record %d: %w", i, err)
		}
		strs := make([]string, 6)
		for k := range strs {
			var sl uint32
			if err := binary.Read(buf, binary.LittleEndian, &sl); err != nil {
				return nil, fmt.Errorf("bam: record %d string %d: %w", i, k, err)
			}
			b := make([]byte, sl)
			if _, err := io.ReadFull(buf, b); err != nil {
				return nil, err
			}
			strs[k] = string(b)
		}
		out[i] = Record{
			QName: strs[0], Flag: fixed.Flag, RName: strs[1], Pos: fixed.Pos,
			MapQ: fixed.MapQ, CIGAR: strs[2], RNext: strs[3], PNext: fixed.PNext,
			TLen: fixed.TLen, Seq: strs[4], Qual: strs[5],
		}
	}
	return out, nil
}
