package sam

import (
	"fmt"
	"sort"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
	"spacejmp/internal/vm"
)

// Op is one tool execution in the workflow chain.
type Op string

// The paper's four operations (Figure 11/12 x-axis).
const (
	OpFlagstat  Op = "flagstat"
	OpQnameSort Op = "qname-sort"
	OpCoordSort Op = "coordinate-sort"
	OpIndex     Op = "index"
)

// Ops is the workflow order: stats, name sort, coordinate sort, index.
var Ops = []Op{OpFlagstat, OpQnameSort, OpCoordSort, OpIndex}

// Serialization and native-operation cycle costs. File data lives in an
// in-memory file system (as in the paper, which factors disk out), so
// costs are CPU work per byte/record.
const (
	samParsePerByte   = 5  // text scan + field conversion
	samWritePerByte   = 3  // formatting
	bamInflatePerByte = 12 // DEFLATE decompression
	bamDeflatePerByte = 30 // DEFLATE compression
	bamParsePerByte   = 1  // binary field decode
	fsCopyPerByte     = 1  // in-memory fs read+write

	natFlagstatPerRec = 8
	natSortCmp        = 50
	natIndexPerRec    = 60

	mmapSyscall = 357
)

// Result maps each operation to its simulated duration.
type Result struct {
	Mode    string
	Cycles  map[Op]uint64
	Seconds map[Op]float64

	// Final state for cross-mode verification.
	Flagstat FlagstatResult
	FirstPos int32 // first record's position after coordinate sort
	Bins     int   // index bins built
}

func newResult(mode string) *Result {
	return &Result{Mode: mode, Cycles: map[Op]uint64{}, Seconds: map[Op]float64{}}
}

func (r *Result) finish(m *hw.Machine) *Result {
	for op, c := range r.Cycles {
		r.Seconds[op] = m.CyclesToNs(c) / 1e9
	}
	return r
}

// nativePipeline runs one op on native records, returning op-model cycles.
func nativeOp(op Op, recs []Record, r *Result) uint64 {
	n := uint64(len(recs))
	switch op {
	case OpFlagstat:
		r.Flagstat = Flagstat(recs)
		return n * natFlagstatPerRec
	case OpQnameSort:
		var cmps uint64
		sort.SliceStable(recs, func(i, j int) bool { cmps++; return recs[i].QName < recs[j].QName })
		return cmps * natSortCmp
	case OpCoordSort:
		var cmps uint64
		sort.SliceStable(recs, func(i, j int) bool { cmps++; return CoordLess(&recs[i], &recs[j]) })
		if len(recs) > 0 {
			r.FirstPos = recs[0].Pos
		}
		return cmps * natSortCmp
	case OpIndex:
		r.Bins = len(BuildIndex(recs))
		return n * natIndexPerRec
	}
	panic("sam: unknown op " + string(op))
}

// RunSAM runs the workflow over SAM text files: every tool parses the
// file, operates, and serializes the result back (the paper's "SAM" bars).
func RunSAM(m *hw.Machine, recs []Record) (*Result, error) {
	r := newResult("SAM")
	file := EncodeSAM(recs)
	for _, op := range Ops {
		cycles := uint64(len(file)) * (samParsePerByte + fsCopyPerByte)
		parsed, err := DecodeSAM(file)
		if err != nil {
			return nil, fmt.Errorf("sam mode: %w", err)
		}
		cycles += nativeOp(op, parsed, r)
		file = EncodeSAM(parsed)
		cycles += uint64(len(file)) * (samWritePerByte + fsCopyPerByte)
		r.Cycles[op] = cycles
	}
	return r.finish(m), nil
}

// RunBAM runs the workflow over compressed binary files.
func RunBAM(m *hw.Machine, recs []Record) (*Result, error) {
	r := newResult("BAM")
	file, err := EncodeBAM(recs)
	if err != nil {
		return nil, err
	}
	for _, op := range Ops {
		cycles := uint64(len(file))*fsCopyPerByte + uint64(len(file))*bamInflatePerByte
		parsed, err := DecodeBAM(file)
		if err != nil {
			return nil, fmt.Errorf("bam mode: %w", err)
		}
		cycles += uint64(len(parsed)) * 64 * bamParsePerByte // fixed+string headers
		cycles += nativeOp(op, parsed, r)
		if file, err = EncodeBAM(parsed); err != nil {
			return nil, err
		}
		cycles += uint64(len(file))*(bamDeflatePerByte) + uint64(len(file))*fsCopyPerByte
		r.Cycles[op] = cycles
	}
	return r.finish(m), nil
}

// memOp runs one op against a MemStore through an accessor-backed store.
func memOp(op Op, ms *MemStore, r *Result) error {
	switch op {
	case OpFlagstat:
		res, err := ms.Flagstat()
		if err != nil {
			return err
		}
		r.Flagstat = res
	case OpQnameSort:
		return ms.SortQName()
	case OpCoordSort:
		if err := ms.SortCoord(); err != nil {
			return err
		}
		rec, err := ms.ReadRecord(0)
		if err != nil {
			return err
		}
		r.FirstPos = rec.Pos
	case OpIndex:
		bins, err := ms.BuildIndex()
		if err != nil {
			return err
		}
		r.Bins = bins
	}
	return nil
}

// storeSegSize sizes the region/segment holding the MemStore.
func storeSegSize(n int) uint64 {
	size := uint64(n)*1024 + (4 << 20)
	return arch.PagesIn(size) * arch.PageSize
}

// memBase is where the region file / segment is mapped in both in-memory
// modes.
const memBase = core.GlobalBase

// RunMmap keeps the MemStore in a region file that every tool mmaps: no
// serialization, but page tables are constructed (and torn down) per tool
// execution (the paper's "MMAP" bars, Figure 12).
func RunMmap(m *hw.Machine, recs []Record) (*Result, error) {
	r := newResult("MMAP")
	segSize := storeSegSize(len(recs))
	// The region file: a persistent VM object in the in-memory fs.
	file := vm.NewObject(m.PM, "sam.region", segSize, mem.TierDRAM)
	defer file.Unref()
	if err := file.Populate(); err != nil {
		return nil, err
	}
	c := m.Cores[0]

	// Region-based build (setup, not measured — the paper measures tool
	// executions against an existing region file).
	setup, err := vm.NewSpace(m.PM)
	if err != nil {
		return nil, err
	}
	if _, err := setup.Map(memBase, segSize, arch.PermRW, file, 0, vm.MapFixed|vm.MapPopulate); err != nil {
		return nil, err
	}
	c.LoadCR3(setup.Table(), arch.ASIDFlush)
	c.OnFault = setup.Handler()
	if _, err := CreateMemStore(c, memBase, segSize, recs); err != nil {
		return nil, err
	}
	setup.Destroy()

	for _, op := range Ops {
		// Each tool execution is a fresh process: mmap the region file,
		// operate in place, munmap. Timers exclude unmap, as the paper
		// stops timers before process exit to exclude implicit unmapping.
		space, err := vm.NewSpace(m.PM)
		if err != nil {
			return nil, err
		}
		start := c.Cycles()
		before := space.Table().Stats()
		if _, err := space.Map(memBase, segSize, arch.PermRW, file, 0, vm.MapFixed|vm.MapPopulate); err != nil {
			return nil, err
		}
		c.ChargePT(hw.DeltaPT(before, space.Table().Stats()))
		c.AddCycles(mmapSyscall)
		c.LoadCR3(space.Table(), arch.ASIDFlush)
		c.OnFault = space.Handler()
		ms, err := OpenMemStore(c, memBase)
		if err != nil {
			return nil, err
		}
		if err := memOp(op, ms, r); err != nil {
			return nil, err
		}
		r.Cycles[op] = c.Cycles() - start
		space.Destroy()
	}
	return r.finish(m), nil
}

// RunSpaceJMP keeps the MemStore in a VAS that each tool process attaches
// to and switches into (the paper's "SpaceJMP" bars).
func RunSpaceJMP(sys *core.System, recs []Record) (*Result, error) {
	r := newResult("SpaceJMP")
	segSize := storeSegSize(len(recs))

	// Setup process builds the store and exits; the VAS outlives it.
	setup, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := setup.NewThread()
	if err != nil {
		return nil, err
	}
	vid, err := th.VASCreate("sam.vas", 0o666)
	if err != nil {
		return nil, err
	}
	sid, err := th.SegAlloc("sam.data", memBase, segSize, arch.PermRW)
	if err != nil {
		return nil, err
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		return nil, err
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		return nil, err
	}
	if err := th.VASSwitch(h); err != nil {
		return nil, err
	}
	if _, err := CreateMemStore(th, memBase, segSize, recs); err != nil {
		return nil, err
	}
	if err := th.VASSwitch(core.PrimaryHandle); err != nil {
		return nil, err
	}
	setup.Exit()

	for _, op := range Ops {
		proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
		if err != nil {
			return nil, err
		}
		th, err := proc.NewThread()
		if err != nil {
			return nil, err
		}
		start := th.Core.Cycles()
		vid, err := th.VASFind("sam.vas")
		if err != nil {
			return nil, err
		}
		h, err := th.VASAttach(vid)
		if err != nil {
			return nil, err
		}
		if err := th.VASSwitch(h); err != nil {
			return nil, err
		}
		ms, err := OpenMemStore(th, memBase)
		if err != nil {
			return nil, err
		}
		if err := memOp(op, ms, r); err != nil {
			return nil, err
		}
		r.Cycles[op] = th.Core.Cycles() - start
		if err := th.VASSwitch(core.PrimaryHandle); err != nil {
			return nil, err
		}
		proc.Exit()
	}
	return r.finish(sys.M), nil
}
