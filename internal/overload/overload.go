// Package overload implements the cluster's overload-protection
// primitives: cycle-denominated request deadline budgets and per-node
// circuit breakers.
//
// Both types are deliberately free of simulator dependencies — a Budget is
// arithmetic over a core's cycle counter readings, a Breaker is a small
// state machine over wall-clock time — so the router, the urpc retry loop
// and the tests all share one implementation. The integration contract:
//
//   - A request that carries a deadline arms a Budget against the serving
//     worker's core cycle counter when execution starts. Every layer that
//     is about to wait (a remote dispatch, a retry backoff) asks the budget
//     what remains and refuses or caps the wait accordingly, so a request
//     fails fast with a typed retryable -DEADLINE instead of queueing
//     doomed work behind a slow node.
//
//   - A Breaker guards one remote node. Call outcomes and health-monitor
//     probe evidence feed Failure/Success; the closed→open→half-open
//     machine decides admission. An open breaker sheds writes immediately
//     (-SHARDTIMEOUT, retryable) while reads degrade to the node's frozen
//     fork view; half-open admits exactly one probe call whose outcome
//     recloses or reopens the breaker.
package overload

import (
	"sync"
	"time"
)

// Budget tracks one request's remaining cycle allowance as it crosses
// serving layers. It is armed against a core's monotonic cycle counter:
// the cycles the core burns while serving the request — edge charges, VAS
// switches, urpc busy-waits, retry backoff — are exactly what drains it.
// A Budget with Total == 0 carries no deadline and never expires.
//
// Budget is a value type owned by one worker goroutine per request; it
// needs no locking.
type Budget struct {
	// Total is the request's full cycle allowance; 0 means no deadline.
	Total uint64
	// start is the core's cycle reading when the budget was armed.
	start uint64
}

// Arm binds a cycle allowance to a core's current cycle reading. total == 0
// arms an inactive budget (no deadline).
func Arm(total, nowCycles uint64) Budget {
	return Budget{Total: total, start: nowCycles}
}

// Active reports whether the request carries a deadline at all.
func (b Budget) Active() bool { return b.Total != 0 }

// Spent returns the cycles consumed since the budget was armed.
func (b Budget) Spent(nowCycles uint64) uint64 {
	if nowCycles < b.start {
		return 0
	}
	return nowCycles - b.start
}

// Remaining returns the cycles left before the deadline, 0 when exhausted.
// An inactive budget reports 0 — callers must gate on Active first.
func (b Budget) Remaining(nowCycles uint64) uint64 {
	if !b.Active() {
		return 0
	}
	spent := b.Spent(nowCycles)
	if spent >= b.Total {
		return 0
	}
	return b.Total - spent
}

// Exhausted reports whether an active budget has run dry.
func (b Budget) Exhausted(nowCycles uint64) bool {
	return b.Active() && b.Spent(nowCycles) >= b.Total
}

// Covers reports whether the budget can still afford a wait of the given
// cycles. An inactive budget covers everything.
func (b Budget) Covers(nowCycles, cycles uint64) bool {
	return !b.Active() || b.Remaining(nowCycles) >= cycles
}

// Cycles converts a wall-clock allowance to cycles at a clock rate in GHz
// (cycles per nanosecond) — the machine configs' unit. Non-positive inputs
// yield 0 (no deadline).
func Cycles(d time.Duration, ghz float64) uint64 {
	if d <= 0 || ghz <= 0 {
		return 0
	}
	return uint64(float64(d.Nanoseconds()) * ghz)
}

// State is a circuit breaker's position.
type State int32

const (
	// Closed admits every call; consecutive failures count toward the trip
	// threshold, any success resets the count.
	Closed State = iota
	// Open fails every call fast until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe call; its outcome recloses or
	// reopens the breaker.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state(?)"
}

// BreakerConfig sizes a circuit breaker. Zero values take the defaults.
type BreakerConfig struct {
	// Threshold is the consecutive failures that trip a closed breaker
	// open. Default 5.
	Threshold int
	// Cooldown is how long an open breaker fails fast before admitting a
	// half-open probe. Default 100ms.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	return c
}

// Breaker is one remote node's circuit breaker. Multiple workers and the
// health monitor feed it concurrently; a mutex keeps the state machine
// consistent. The optional onChange hook fires inside the state lock on
// every transition — keep it cheap (the router uses it to bump counters
// and trace the transition).
type Breaker struct {
	cfg      BreakerConfig
	onChange func(from, to State)

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: the single probe slot is taken
}

// NewBreaker builds a closed breaker. onChange may be nil.
func NewBreaker(cfg BreakerConfig, onChange func(from, to State)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onChange: onChange}
}

// State returns the breaker's current position without advancing it: an
// open breaker past its cooldown still reports Open until a call asks for
// admission. Use Allow on the call path.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks to admit one call now. ok reports admission; probe reports
// that the call was admitted as the half-open probe — the caller must
// report its outcome via Success or Failure, which recloses or reopens
// the breaker.
func (b *Breaker) Allow() (ok, probe bool) { return b.allowAt(time.Now()) }

func (b *Breaker) allowAt(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.transition(HalfOpen)
		b.probing = true
		return true, true
	case HalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// Success reports a completed call (or a successful health probe).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.transition(Closed)
	case Open:
		// A straggler from before the trip: ignored. The breaker only
		// recloses through a half-open probe.
	}
}

// ProbeSuccess reports a successful health probe. Unlike Success, probe
// evidence may reclose an open breaker directly: the monitor keeps probing
// nodes the data path is shedding, so its success is exactly the half-open
// probe a fully-degraded read path would never get to send. The cooldown
// still gates reclosure — one lucky probe mid-storm must not flap the
// breaker — and the transition goes through half-open so the trace shows
// the same recovery path a data-path probe would.
func (b *Breaker) ProbeSuccess() { b.probeSuccessAt(time.Now()) }

func (b *Breaker) probeSuccessAt(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.transition(Closed)
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return
		}
		b.transition(HalfOpen)
		b.transition(Closed)
	}
}

// Failure reports a failed call or a failed health probe.
func (b *Breaker) Failure() { b.failureAt(time.Now()) }

func (b *Breaker) failureAt(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.openedAt = now
			b.transition(Open)
		}
	case HalfOpen:
		// The probe failed (or straggler evidence arrived): reopen and
		// restart the cooldown.
		b.probing = false
		b.openedAt = now
		b.transition(Open)
	case Open:
		// Stragglers while open don't extend the cooldown — admitted calls
		// stopped at the trip, so this is in-flight residue.
	}
}

// transition flips the state and fires the hook. Caller holds b.mu.
func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}
