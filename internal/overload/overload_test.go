package overload

import (
	"testing"
	"time"
)

func TestBudgetInactive(t *testing.T) {
	b := Arm(0, 1000)
	if b.Active() {
		t.Fatal("zero-total budget must be inactive")
	}
	if b.Exhausted(1 << 40) {
		t.Fatal("inactive budget must never exhaust")
	}
	if !b.Covers(1<<40, 1<<40) {
		t.Fatal("inactive budget must cover any wait")
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := Arm(1000, 5000) // 1000 cycles, armed at reading 5000
	if !b.Active() {
		t.Fatal("armed budget must be active")
	}
	if got := b.Remaining(5000); got != 1000 {
		t.Fatalf("remaining at arm time = %d, want 1000", got)
	}
	if got := b.Remaining(5600); got != 400 {
		t.Fatalf("remaining after 600 cycles = %d, want 400", got)
	}
	if !b.Covers(5600, 400) || b.Covers(5600, 401) {
		t.Fatal("Covers must compare against exact remaining")
	}
	if b.Exhausted(5999) {
		t.Fatal("not exhausted at 999 spent")
	}
	if !b.Exhausted(6000) {
		t.Fatal("exhausted at 1000 spent")
	}
	if got := b.Remaining(7000); got != 0 {
		t.Fatalf("remaining past exhaustion = %d, want 0", got)
	}
	// A cycle reading below the arm point (never happens on a monotonic
	// counter, but don't wrap) reads as nothing spent.
	if got := b.Spent(4000); got != 0 {
		t.Fatalf("spent on rewound counter = %d, want 0", got)
	}
}

func TestCyclesConversion(t *testing.T) {
	// 1ms at 2 GHz = 2e6 cycles.
	if got := Cycles(time.Millisecond, 2.0); got != 2_000_000 {
		t.Fatalf("Cycles(1ms, 2GHz) = %d, want 2000000", got)
	}
	if got := Cycles(0, 2.0); got != 0 {
		t.Fatalf("Cycles(0) = %d, want 0", got)
	}
	if got := Cycles(time.Second, 0); got != 0 {
		t.Fatalf("Cycles with zero clock = %d, want 0", got)
	}
}

// transitions collects breaker state changes for assertion.
type transitions struct{ log []string }

func (tr *transitions) hook(from, to State) {
	tr.log = append(tr.log, from.String()+"->"+to.String())
}

func TestBreakerTripAndReclose(t *testing.T) {
	tr := &transitions{}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}, tr.hook)
	t0 := time.Unix(100, 0)

	if ok, probe := b.allowAt(t0); !ok || probe {
		t.Fatal("closed breaker must admit plainly")
	}
	// Two failures: still closed; a success resets the streak.
	b.failureAt(t0)
	b.failureAt(t0)
	if b.State() != Closed {
		t.Fatal("below threshold must stay closed")
	}
	b.Success()
	b.failureAt(t0)
	b.failureAt(t0)
	if b.State() != Closed {
		t.Fatal("success must reset the failure streak")
	}
	// Third consecutive failure trips it open.
	b.failureAt(t0)
	if b.State() != Open {
		t.Fatal("threshold consecutive failures must open the breaker")
	}
	if ok, _ := b.allowAt(t0.Add(10 * time.Millisecond)); ok {
		t.Fatal("open breaker inside cooldown must refuse")
	}
	// Cooldown elapsed: exactly one probe admitted.
	ok, probe := b.allowAt(t0.Add(60 * time.Millisecond))
	if !ok || !probe {
		t.Fatal("cooldown elapsed must admit a half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatal("probe admission must move to half-open")
	}
	if ok, _ := b.allowAt(t0.Add(61 * time.Millisecond)); ok {
		t.Fatal("half-open must admit only one probe at a time")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("probe success must reclose the breaker")
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(tr.log) != len(want) {
		t.Fatalf("transitions = %v, want %v", tr.log, want)
	}
	for i := range want {
		if tr.log[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, tr.log[i], want[i])
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond}, nil)
	t0 := time.Unix(100, 0)
	b.failureAt(t0)
	if b.State() != Open {
		t.Fatal("threshold 1 must open on first failure")
	}
	ok, probe := b.allowAt(t0.Add(60 * time.Millisecond))
	if !ok || !probe {
		t.Fatal("must admit half-open probe after cooldown")
	}
	b.failureAt(t0.Add(61 * time.Millisecond))
	if b.State() != Open {
		t.Fatal("probe failure must reopen")
	}
	// The cooldown restarted at the probe failure, not the original trip.
	if ok, _ := b.allowAt(t0.Add(100 * time.Millisecond)); ok {
		t.Fatal("reopened breaker must restart its cooldown")
	}
	if ok, _ := b.allowAt(t0.Add(120 * time.Millisecond)); !ok {
		t.Fatal("restarted cooldown must elapse and admit again")
	}
}

func TestBreakerProbeSuccessRecloses(t *testing.T) {
	tr := &transitions{}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond}, tr.hook)
	t0 := time.Unix(100, 0)
	b.failureAt(t0)
	if b.State() != Open {
		t.Fatal("threshold 1 must open on first failure")
	}
	// A lucky probe inside the cooldown must not flap the breaker shut.
	b.probeSuccessAt(t0.Add(10 * time.Millisecond))
	if b.State() != Open {
		t.Fatal("probe success inside cooldown must not reclose")
	}
	// Past the cooldown, probe evidence recloses directly — the degraded
	// read path may never send the half-open probe itself — and the
	// transition goes through half-open so the trace shows the recovery.
	b.probeSuccessAt(t0.Add(60 * time.Millisecond))
	if b.State() != Closed {
		t.Fatal("probe success past cooldown must reclose")
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(tr.log) != len(want) {
		t.Fatalf("transitions = %v, want %v", tr.log, want)
	}
	for i := range want {
		if tr.log[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, tr.log[i], want[i])
		}
	}
	// While half-open with the probe slot taken, a probe success closes and
	// frees the slot.
	b.failureAt(t0.Add(100 * time.Millisecond))
	if ok, probe := b.allowAt(t0.Add(160 * time.Millisecond)); !ok || !probe {
		t.Fatal("must admit half-open probe after cooldown")
	}
	b.ProbeSuccess()
	if b.State() != Closed {
		t.Fatal("probe success while half-open must reclose")
	}
	if ok, probe := b.allowAt(t0.Add(161 * time.Millisecond)); !ok || probe {
		t.Fatal("reclosed breaker must admit plainly")
	}
}

func TestBreakerProbeSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}, nil)
	t0 := time.Unix(100, 0)
	b.failureAt(t0)
	b.failureAt(t0)
	b.probeSuccessAt(t0)
	b.failureAt(t0)
	b.failureAt(t0)
	if b.State() != Closed {
		t.Fatal("probe success must reset the closed failure streak")
	}
}

func TestBreakerStragglersWhileOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond}, nil)
	t0 := time.Unix(100, 0)
	b.failureAt(t0)
	// In-flight stragglers report after the trip: neither a late success
	// nor a late failure may move an open breaker or extend its cooldown.
	b.Success()
	b.failureAt(t0.Add(40 * time.Millisecond))
	if b.State() != Open {
		t.Fatal("stragglers must not move an open breaker")
	}
	if ok, _ := b.allowAt(t0.Add(55 * time.Millisecond)); !ok {
		t.Fatal("original cooldown must still elapse on time")
	}
}
