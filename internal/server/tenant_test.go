package server

import (
	"bufio"
	"errors"
	"net"
	"testing"

	"spacejmp/internal/caps"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/redis"
	"spacejmp/internal/tenant"
)

// startTenantServer boots a single-store server fronted by a demo tenant
// registry sharing the machine's stats sink.
func startTenantServer(t *testing.T, tenants int, q tenant.Quotas) (*core.System, *Server, *tenant.Registry) {
	t.Helper()
	m := hw.NewMachine(hw.SmallTest())
	sys := kernel.New(m)
	sys.EnableStats(4096)
	reg, err := tenant.NewDemo(tenants, tenant.Config{Nodes: 1, Stats: m.Observer()}, q)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, ln, Config{Shards: 1, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv, reg
}

func dialTenant(t *testing.T, srv *Server, id, secret string) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br := bufio.NewReader(nc)
	if id != "" {
		if v, _, err := roundTrip(t, nc, br, "AUTH", id, secret); err != nil || string(v) != "OK" {
			t.Fatalf("AUTH %s: %q %v", id, v, err)
		}
	}
	return nc, br
}

// TestTenantAuthGate: with a registry attached, data commands are denied
// until AUTH binds the connection, store-less commands pass, and bad
// credentials are the same typed denial as a missing capability.
func TestTenantAuthGate(t *testing.T) {
	_, srv, _ := startTenantServer(t, 1, tenant.Quotas{})
	defer srv.Shutdown()
	nc, br := dialTenant(t, srv, "", "")

	if v, _, err := roundTrip(t, nc, br, "PING"); err != nil || string(v) != "PONG" {
		t.Fatalf("unauthenticated PING: %q %v", v, err)
	}
	if _, _, err := roundTrip(t, nc, br, "GET", "k"); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("unauthenticated GET: err = %v, want redis.ErrNoPerm", err)
	}
	if _, _, err := roundTrip(t, nc, br, "SET", "k", "v"); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("unauthenticated SET: err = %v, want redis.ErrNoPerm", err)
	}
	if _, _, err := roundTrip(t, nc, br, "AUTH", "t0", "wrong"); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("bad AUTH: err = %v, want redis.ErrNoPerm", err)
	}
	if _, _, err := roundTrip(t, nc, br, "AUTH", "t0"); err == nil {
		t.Fatal("AUTH with bad arity succeeded")
	}
	if v, _, err := roundTrip(t, nc, br, "AUTH", "t0", "s0"); err != nil || string(v) != "OK" {
		t.Fatalf("AUTH: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", "k", "v"); err != nil || string(v) != "OK" {
		t.Fatalf("authenticated SET: %q %v", v, err)
	}
}

// TestTenantIsolation is the acceptance test for the capability boundary:
// two tenants write the same logical key without collision, and a
// cross-tenant address fails with the typed -NOPERM sentinel — a denial,
// never a missing-key nil.
func TestTenantIsolation(t *testing.T) {
	_, srv, _ := startTenantServer(t, 2, tenant.Quotas{})
	defer srv.Shutdown()

	nc0, br0 := dialTenant(t, srv, "t0", "s0")
	nc1, br1 := dialTenant(t, srv, "t1", "s1")

	if v, _, err := roundTrip(t, nc0, br0, "SET", "shared", "zero"); err != nil || string(v) != "OK" {
		t.Fatalf("t0 SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc1, br1, "SET", "shared", "one"); err != nil || string(v) != "OK" {
		t.Fatalf("t1 SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc0, br0, "GET", "shared"); err != nil || string(v) != "zero" {
		t.Fatalf("t0 view: %q %v, want zero", v, err)
	}
	if v, _, err := roundTrip(t, nc1, br1, "GET", "shared"); err != nil || string(v) != "one" {
		t.Fatalf("t1 view: %q %v, want one", v, err)
	}

	// The cross-view address is denied with the typed sentinel, not served
	// and not answered nil: a key t1 cannot see is different from a key
	// that does not exist.
	_, isNil, err := roundTrip(t, nc1, br1, "GET", redis.TenantKey("t0", "shared"))
	if !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("cross-view GET: err = %v (nil=%v), want redis.ErrNoPerm", err, isNil)
	}
	if _, _, err := roundTrip(t, nc1, br1, "SET", redis.TenantKey("t0", "shared"), "stomp"); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("cross-view SET: err = %v, want redis.ErrNoPerm", err)
	}
	if _, _, err := roundTrip(t, nc1, br1, "MGET", "shared", redis.TenantKey("t0", "shared")); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("cross-view MGET: err = %v, want redis.ErrNoPerm", err)
	}
	// NOPERM is terminal, not retryable: a client must not loop on it.
	if _, _, err := roundTrip(t, nc1, br1, "GET", redis.TenantKey("t0", "shared")); retryable(err) {
		t.Fatal("cross-view denial classified retryable")
	}
	// The denied writes left t0's data untouched.
	if v, _, err := roundTrip(t, nc0, br0, "GET", "shared"); err != nil || string(v) != "zero" {
		t.Fatalf("t0 view after denials: %q %v, want zero", v, err)
	}
	// A tenant addressing its own view explicitly is allowed.
	if v, _, err := roundTrip(t, nc0, br0, "GET", redis.TenantKey("t0", "shared")); err != nil || string(v) != "zero" {
		t.Fatalf("explicit own-view GET: %q %v", v, err)
	}
}

// TestTenantGrantRevoke drives a live grant and revocation through serving
// connections: a read grant opens exactly read access mid-connection, and
// the revoke slams it shut again without a redial — the generation-keyed
// attachment cache re-checks.
func TestTenantGrantRevoke(t *testing.T) {
	_, srv, reg := startTenantServer(t, 2, tenant.Quotas{})
	defer srv.Shutdown()

	nc0, br0 := dialTenant(t, srv, "t0", "s0")
	nc1, br1 := dialTenant(t, srv, "t1", "s1")

	if v, _, err := roundTrip(t, nc0, br0, "SET", "doc", "body"); err != nil || string(v) != "OK" {
		t.Fatalf("t0 SET: %q %v", v, err)
	}
	crossKey := redis.TenantKey("t0", "doc")
	if _, _, err := roundTrip(t, nc1, br1, "GET", crossKey); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("pre-grant GET: err = %v, want redis.ErrNoPerm", err)
	}

	if err := reg.Grant("t0", "t1", caps.RightRead); err != nil {
		t.Fatal(err)
	}
	if v, _, err := roundTrip(t, nc1, br1, "GET", crossKey); err != nil || string(v) != "body" {
		t.Fatalf("granted GET: %q %v, want body", v, err)
	}
	// Read grant, write denied.
	if _, _, err := roundTrip(t, nc1, br1, "SET", crossKey, "stomp"); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("write through read grant: err = %v, want redis.ErrNoPerm", err)
	}
	if _, _, err := roundTrip(t, nc1, br1, "DEL", crossKey); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("DEL through read grant: err = %v, want redis.ErrNoPerm", err)
	}

	if err := reg.Revoke("t0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := roundTrip(t, nc1, br1, "GET", crossKey); !errors.Is(err, redis.ErrNoPerm) {
		t.Fatalf("post-revoke GET: err = %v, want redis.ErrNoPerm", err)
	}
	// The owner's own access is untouched by revoking its grants.
	if v, _, err := roundTrip(t, nc0, br0, "GET", "doc"); err != nil || string(v) != "body" {
		t.Fatalf("owner after revoke: %q %v", v, err)
	}
}

// TestTenantQuotaEnforcement drives the byte/key budgets end to end: the
// rejection is the typed -QUOTA reply, a DEL frees budget, a failed charge
// never leaks usage, and the rejection lands in the tenant's stats block.
func TestTenantQuotaEnforcement(t *testing.T) {
	sys, srv, reg := startTenantServer(t, 1, tenant.Quotas{MaxKeys: 2, MaxBytes: 64})
	defer srv.Shutdown()
	nc, br := dialTenant(t, srv, "t0", "s0")

	if v, _, err := roundTrip(t, nc, br, "SET", "a", "1"); err != nil || string(v) != "OK" {
		t.Fatalf("SET a: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", "b", "2"); err != nil || string(v) != "OK" {
		t.Fatalf("SET b: %q %v", v, err)
	}
	if _, _, err := roundTrip(t, nc, br, "SET", "c", "3"); !errors.Is(err, redis.ErrQuota) {
		t.Fatalf("over key budget: err = %v, want redis.ErrQuota", err)
	}
	if _, _, err := roundTrip(t, nc, br, "SET", "a", string(make([]byte, 65))); !errors.Is(err, redis.ErrQuota) {
		t.Fatalf("over byte budget: err = %v, want redis.ErrQuota", err)
	}
	// Reads are never byte/key-gated.
	if v, _, err := roundTrip(t, nc, br, "GET", "a"); err != nil || string(v) != "1" {
		t.Fatalf("GET under quota pressure: %q %v", v, err)
	}
	// DEL frees the key's budget; the next SET fits again.
	if v, _, err := roundTrip(t, nc, br, "DEL", "b"); err != nil || string(v) != "1" {
		t.Fatalf("DEL b: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", "c", "3"); err != nil || string(v) != "OK" {
		t.Fatalf("SET after DEL: %q %v", v, err)
	}

	t0, _ := reg.Lookup("t0")
	if b, k := t0.Usage(); k != 2 || b != 2 {
		t.Fatalf("usage = (%d bytes, %d keys), want (2, 2)", b, k)
	}
	snap := sys.Stats()
	if snap == nil || len(snap.Tenants) != 1 {
		t.Fatalf("snapshot tenants = %+v, want one block", snap.Tenants)
	}
	ts := snap.Tenants[0]
	if ts.QuotaRejections != 2 || ts.Commands == 0 {
		t.Fatalf("tenant snap = %+v, want 2 quota rejections and counted commands", ts)
	}
}

// TestTenantRateLimit drives the command-rate bucket through the wire: a
// burst-2 tenant gets two commands through and the third is a typed,
// non-retryable -QUOTA.
func TestTenantRateLimit(t *testing.T) {
	_, srv, _ := startTenantServer(t, 1, tenant.Quotas{Rate: 0.001, Burst: 2})
	defer srv.Shutdown()
	nc, br := dialTenant(t, srv, "t0", "s0")

	for i := 0; i < 2; i++ {
		if v, _, err := roundTrip(t, nc, br, "SET", "k", "v"); err != nil || string(v) != "OK" {
			t.Fatalf("SET %d: %q %v", i, v, err)
		}
	}
	_, _, err := roundTrip(t, nc, br, "GET", "k")
	if !errors.Is(err, redis.ErrQuota) {
		t.Fatalf("rate-limited GET: err = %v, want redis.ErrQuota", err)
	}
	if retryable(err) {
		t.Fatal("quota rejection classified retryable")
	}
}

// retryable reports whether err is a RESP error reply the retry loop would
// spin on.
func retryable(err error) bool {
	var re redis.ReplyError
	return errors.As(err, &re) && redis.IsRetryableReply(re)
}

// TestTenantLoadGeneratorProbes runs the tenant-aware load generator
// against a tenant server: both views verify independently, every
// cross-view probe is denied, and none leak.
func TestTenantLoadGeneratorProbes(t *testing.T) {
	_, srv, _ := startTenantServer(t, 2, tenant.Quotas{})
	defer srv.Shutdown()

	res, err := RunLoad(LoadConfig{
		Addr:  srv.Addr().String(),
		Conns: 4, Pipeline: 2, Requests: 64,
		SetPercent: 30, Keys: 32,
		Tenants: 2, Auth: true, CrossCheckEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.Errors != 0 {
		t.Fatalf("load: %d mismatches, %d errors", res.Mismatches, res.Errors)
	}
	if res.CrossDenied == 0 {
		t.Fatal("no cross-view probes were denied; probes did not run")
	}
	if res.CrossLeaks != 0 {
		t.Fatalf("%d cross-view leaks", res.CrossLeaks)
	}
}
