package server

import (
	"bytes"
	"strings"

	"spacejmp/internal/caps"
	"spacejmp/internal/redis"
	"spacejmp/internal/tenant"
)

// Multi-tenant admission (paper §4.2). When the server carries a tenant
// registry, every connection starts unauthenticated: data commands are
// denied until AUTH <tenant> <secret> binds the connection to a tenant.
// From then on the connection addresses keys inside that tenant's view —
// plain keys are qualified with the tenant's prefix before they reach the
// backend, so the physical keyspace the backend shards, replicates, and
// migrates is already view-scoped and both the VAS-switch path and the
// urpc path resolve keys inside the caller's view with no extra state.
//
// A key written literally as "t:<other>:<key>" addresses another tenant's
// view. That is the segment attach the capability system guards: the
// caller's cspace must hold capabilities for the target view's VAS and
// segment objects, or the command dies here with a typed -NOPERM — before
// any store lookup, so a denial is never a missing-key miss. Successful
// attaches are cached per connection keyed by the registry generation;
// grants and revokes bump the generation and force re-checks, which is how
// a revocation takes effect on live connections.
//
// All of this runs in the connection reader goroutine — registry state is
// plain Go, never simulated state, so the worker-core monopoly holds.

// connTenant is one connection's tenant session.
type connTenant struct {
	reg *tenant.Registry
	t   *tenant.Tenant // nil until AUTH succeeds

	// attached caches successful view attachments: (target, rights) →
	// registry generation at check time.
	attached map[attachKey]uint64
}

type attachKey struct {
	target string
	want   caps.Right
}

func newConnTenant(reg *tenant.Registry) *connTenant {
	if reg == nil {
		return nil
	}
	return &connTenant{reg: reg, attached: map[attachKey]uint64{}}
}

var delOneReply = []byte(":1\r\n")

// admit runs tenant admission for one parsed command, rewriting key args
// into the caller's view in place. A non-nil inline reply answers the
// command at admission (AUTH result, denial, quota rejection) and nothing
// reaches the backend. Otherwise settle — if non-nil — must be called with
// the reply bytes once the backend finishes, to commit or roll back the
// quota charge.
func (ct *connTenant) admit(args []string) (inline []byte, settle func([]byte)) {
	name := strings.ToUpper(args[0])
	switch name {
	case "AUTH":
		return ct.auth(args), nil
	case "GET", "MGET", "SET", "DEL":
		// Data commands are tenant-scoped; fall through.
	default:
		// Store-less commands (PING, ECHO) and admin commands (CLUSTER)
		// carry no keys and pass through unauthenticated.
		return nil, nil
	}
	if ct.t == nil {
		return redis.EncodeNoPerm("authentication required"), nil
	}
	want := caps.RightRead
	if name == "SET" || name == "DEL" {
		want = caps.RightWrite
	}
	lastKey := len(args) - 1
	if name == "SET" {
		lastKey = 1 // args[2] is the value
	}
	for i := 1; i <= lastKey && i < len(args); i++ {
		if id, _, ok := redis.SplitTenantKey(args[i]); ok {
			// Explicitly cross-view address: the §4.2 capability check.
			if err := ct.attach(id, want); err != nil {
				return redis.EncodeNoPerm(err.Error()), nil
			}
		} else {
			args[i] = redis.TenantKey(ct.t.ID(), args[i])
		}
	}
	// Quota admission: the caller pays the command-rate token; byte and
	// key budgets bill the view the key lives in (its owner admitted the
	// bytes into its segments, whoever wrote them).
	if err := ct.t.TakeToken(); err != nil {
		return redis.EncodeQuota(err.Error()), nil
	}
	var payload int
	for _, a := range args[1:] {
		payload += len(a)
	}
	ct.t.Count(payload)
	if name != "SET" && name != "DEL" {
		return nil, nil
	}
	if len(args) < 2 {
		return nil, nil // let the backend render the arity error
	}
	billed := ct.t
	key := args[1]
	if owner, _, ok := redis.SplitTenantKey(key); ok && owner != ct.t.ID() {
		if t, found := ct.reg.Lookup(owner); found {
			billed = t
		}
	}
	switch name {
	case "SET":
		if len(args) != 3 {
			return nil, nil
		}
		undo, err := billed.ChargeSet(key, len(args[2]))
		if err != nil {
			return redis.EncodeQuota(err.Error()), nil
		}
		return nil, func(resp []byte) {
			if len(resp) > 0 && resp[0] == '-' {
				undo() // the store rejected the write; release the charge
			}
		}
	default: // DEL
		return nil, func(resp []byte) {
			if bytes.Equal(resp, delOneReply) {
				billed.SettleDel(key)
			}
		}
	}
}

// auth handles AUTH <tenant> <secret>, binding the connection's identity.
func (ct *connTenant) auth(args []string) []byte {
	if len(args) != 3 {
		return redis.EncodeWrongArity(args[0])
	}
	t, err := ct.reg.Authenticate(args[1], args[2])
	if err != nil {
		return redis.EncodeNoPerm("invalid tenant credentials")
	}
	ct.t = t
	// A re-AUTH switches identity; the previous identity's attachments
	// must not carry over.
	ct.attached = map[attachKey]uint64{}
	return redis.EncodeSimple("OK")
}

// attach authorizes addressing target's view, consulting the per-connection
// cache first. Cache entries are keyed by registry generation, so a grant
// or revoke anywhere invalidates every cached attachment at once.
func (ct *connTenant) attach(target string, want caps.Right) error {
	k := attachKey{target, want}
	gen := ct.reg.Generation()
	if g, ok := ct.attached[k]; ok && g == gen {
		return nil
	}
	if err := ct.reg.Attach(ct.t, target, want); err != nil {
		delete(ct.attached, k)
		return err
	}
	ct.attached[k] = gen
	return nil
}
