package server

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"spacejmp/internal/fault"
	"spacejmp/internal/redis"
)

var busyReply = redis.EncodeBusy("server busy: shard queue full, retry")

// serveConn runs one connection: this goroutine reads and parses commands
// and submits them to the backend; a companion writer goroutine sends
// replies back in arrival order, flushing only when the pipeline goes idle
// so pipelined clients get batched writes. Neither goroutine ever touches
// simulated state — that is the backend workers' monopoly.
func (s *Server) serveConn(id uint64, nc net.Conn) {
	defer s.connWG.Done()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	replies := make(chan *Request, s.cfg.PipelineDepth)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		var werr error
		for r := range replies {
			resp := r.Wait()
			if r.settle != nil {
				// Commit or roll back the tenant quota charge now that the
				// outcome is known (registry state only — never simulated).
				r.settle(resp)
			}
			if werr != nil {
				continue // keep draining so the reader never wedges
			}
			if _, err := bw.Write(resp); err != nil {
				werr = err
				continue
			}
			if len(replies) == 0 {
				werr = bw.Flush()
			}
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	ct := newConnTenant(s.cfg.Tenants)
	var commands uint64
	var readonly bool // READONLY/READWRITE toggle, stamped onto each request
	// Per-connection deadline budget, stamped onto each request in cycles:
	// the server-wide default until the client overrides it with DEADLINE.
	deadline := s.cfg.DeadlineCycles
	for {
		if s.faults.Fire(fault.SrvConnStall) {
			time.Sleep(500 * time.Microsecond)
		}
		args, err := redis.ReadCommand(br)
		if err != nil {
			if errors.Is(err, redis.ErrProtocol) {
				replies <- inlineReply(redis.EncodeError("protocol error: " + err.Error()))
			}
			break // clean close, truncation, or drain deadline
		}
		if s.faults.Fire(fault.SrvConnDrop) {
			nc.Close() // mid-command partition: no reply, no goodbye
			break
		}
		commands++
		if len(args) == 1 && strings.EqualFold(args[0], "QUIT") {
			replies <- inlineReply(redis.EncodeSimple("OK"))
			break
		}
		if len(args) == 1 && (strings.EqualFold(args[0], "READONLY") || strings.EqualFold(args[0], "READWRITE")) {
			// Per-connection follower-read opt-in, answered inline like QUIT:
			// it flips reader-goroutine state only, so it never needs a worker.
			readonly = strings.EqualFold(args[0], "READONLY")
			s.obs.ServerPipeline(len(replies) + 1)
			replies <- inlineReply(redis.EncodeSimple("OK"))
			continue
		}
		if len(args) == 2 && strings.EqualFold(args[0], "DEADLINE") {
			// Per-connection deadline override in milliseconds, answered
			// inline like READONLY: 0 clears back to no deadline. The
			// wall-clock allowance converts to a cycle budget at the
			// machine's clock so every downstream layer spends one currency.
			ms, perr := strconv.ParseUint(args[1], 10, 32)
			if perr != nil {
				replies <- inlineReply(redis.EncodeError("DEADLINE wants milliseconds: " + args[1]))
				continue
			}
			deadline = ms * s.cfg.CyclesPerMilli
			s.obs.ServerPipeline(len(replies) + 1)
			replies <- inlineReply(redis.EncodeSimple("OK"))
			continue
		}
		var settle func([]byte)
		if ct != nil {
			var inline []byte
			if inline, settle = ct.admit(args); inline != nil {
				// Answered at admission: AUTH, a capability denial, or a
				// quota rejection. Nothing reaches the backend.
				s.obs.ServerPipeline(len(replies) + 1)
				replies <- inlineReply(inline)
				continue
			}
		}
		r := NewRequest(args)
		r.Readonly = readonly
		r.Deadline = deadline
		r.settle = settle
		if !s.backend.Submit(id, r) {
			// Backpressure: the backend is saturated. Fail fast with an
			// error reply instead of buffering without bound.
			s.obs.ServerBusy()
			r.resp = busyReply
			r.done = closedDone
		}
		s.obs.ServerPipeline(len(replies) + 1)
		// A full pipeline blocks here (never in a worker) until the
		// writer catches up — TCP flow control does the rest.
		replies <- r
	}
	close(replies)
	writerWG.Wait()
	s.dropConn(nc)
	s.obs.ConnClosed(id, commands)
}
