package server

import (
	"errors"
	"strings"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
)

// Modeled cost of moving one command across the network edge into a worker,
// mirroring the baseline's socket model: one kernel crossing plus a
// per-cache-line copy of the payload. The RedisJMP fast path still elides
// the *server-side* socket hop the paper measures — this is only the edge
// the real TCP front-end adds — but charging it keeps the simulated cycle
// accounts honest about where bytes went.
const (
	netSyscall = 357 // enter/leave the kernel per recv or send
	netPerLine = 200 // copy one cache line through the kernel
)

// shard is one worker: a goroutine that owns a simulated core (via its
// Thread) and executes requests from a bounded queue. Only this goroutine
// ever drives the thread — core cycle counters are not atomic, and the
// segment lock discipline (shared for GET, exclusive for SET) assumes one
// execution context per core.
type shard struct {
	id    int
	queue chan *request
	ctr   *stats.ShardCounters

	proc   *core.Process
	client *redis.Client
	err    error // first teardown error, read after workerWG.Wait
}

func (s *Server) newShard(id int, ctr *stats.ShardCounters) (*shard, error) {
	proc, err := s.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	client, err := redis.NewClient(th, s.cfg.SegSize)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	if s.cfg.Tags && id == 0 {
		if err := client.EnableTags(); err != nil {
			proc.Exit()
			return nil, err
		}
	}
	sh := &shard{
		id:     id,
		queue:  make(chan *request, s.cfg.QueueDepth),
		ctr:    ctr,
		proc:   proc,
		client: client,
	}
	s.workerWG.Add(1)
	go s.runShard(sh, th)
	return sh, nil
}

// runShard is the worker loop: drain the queue until it closes, then
// detach from the shared state and exit the process so the kernel reaper
// reclaims the core and private segments.
func (s *Server) runShard(sh *shard, th *core.Thread) {
	defer s.workerWG.Done()
	for r := range sh.queue {
		sh.ctr.Command()
		r.resp = s.exec(sh, th, r.args)
		s.obs.ServerCommand(uint64(time.Since(r.start).Nanoseconds()))
		close(r.done)
	}
	sh.err = sh.client.Close()
	sh.proc.Exit()
}

// exec runs one already-parsed command on the worker's thread. The worker
// charges its core for the network receive and reply (cache-line copies
// through the kernel) before running the RedisJMP fast path.
func (s *Server) exec(sh *shard, th *core.Thread, args []string) []byte {
	var n int
	for _, a := range args {
		n += len(a)
	}
	th.Core.AddCycles(netSyscall + urpc.Lines(n)*netPerLine)
	resp := s.exec1(sh, args)
	th.Core.AddCycles(netSyscall + urpc.Lines(len(resp))*netPerLine)
	return resp
}

func (s *Server) exec1(sh *shard, args []string) []byte {
	if len(args) == 0 {
		return redis.EncodeError("empty command")
	}
	switch strings.ToUpper(args[0]) {
	case "GET":
		if len(args) != 2 {
			return redis.EncodeWrongArity(args[0])
		}
		v, ok, err := sh.client.Get(args[1])
		if err != nil {
			return redis.EncodeError(err.Error())
		}
		if !ok {
			return redis.EncodeBulk(nil)
		}
		return redis.EncodeBulk(v)
	case "SET":
		if len(args) != 3 {
			return redis.EncodeWrongArity(args[0])
		}
		if err := sh.client.Set(args[1], []byte(args[2])); err != nil {
			if errors.Is(err, redis.ErrStoreFull) {
				return redis.EncodeError("OOM store segment full")
			}
			return redis.EncodeError(err.Error())
		}
		return redis.EncodeSimple("OK")
	case "DEL":
		if len(args) != 2 {
			return redis.EncodeWrongArity(args[0])
		}
		found, err := sh.client.Del(args[1])
		if err != nil {
			return redis.EncodeError(err.Error())
		}
		if found {
			return redis.EncodeInt(1)
		}
		return redis.EncodeInt(0)
	case "PING":
		if len(args) > 2 {
			return redis.EncodeWrongArity(args[0])
		}
		if len(args) == 2 {
			return redis.EncodeBulk([]byte(args[1]))
		}
		return redis.EncodeSimple("PONG")
	case "ECHO":
		if len(args) != 2 {
			return redis.EncodeWrongArity(args[0])
		}
		return redis.EncodeBulk([]byte(args[1]))
	default:
		return redis.EncodeUnknownCommand(args[0])
	}
}
