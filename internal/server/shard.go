package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
)

// Modeled cost of moving one command across the network edge into a worker,
// mirroring the baseline's socket model: one kernel crossing plus a
// per-cache-line copy of the payload. The RedisJMP fast path still elides
// the *server-side* socket hop the paper measures — this is only the edge
// the real TCP front-end adds — but charging it keeps the simulated cycle
// accounts honest about where bytes went. Exported because the cluster
// router pays the same edge toll before deciding where a command runs.
const (
	NetSyscall = 357 // enter/leave the kernel per recv or send
	NetPerLine = 200 // copy one cache line through the kernel
)

// EdgeCycles is the modeled cost of moving n payload bytes across the
// network edge in one direction.
func EdgeCycles(n int) uint64 {
	return NetSyscall + urpc.Lines(n)*NetPerLine
}

// Pool is the single-store Backend of §5.3: a sharded worker pool in which
// every worker owns a simulated core (via its Thread) and attaches to the
// same shared RedisJMP store, so every command runs the paper's fast path —
// switch into the server VAS, operate on the lockable segment directly,
// switch out. Connections are striped across shards at Bind time.
type Pool struct {
	sys    *core.System
	obs    *stats.Sink
	shards []*shard

	workerWG  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// shard is one pool worker: a goroutine that owns a simulated core and
// executes requests from a bounded queue. Only this goroutine ever drives
// the thread — core cycle counters are not atomic, and the segment lock
// discipline (shared for GET, exclusive for SET) assumes one execution
// context per core.
type shard struct {
	id    int
	queue chan *Request
	ctr   *stats.ShardCounters

	proc   *core.Process
	client *redis.Client
	err    error // first teardown error, read after workerWG.Wait
}

// NewPool boots the worker pool on an already-running system: one worker
// process per shard, each claiming a simulated core and attaching to the
// shared RedisJMP state, creating it if absent.
func NewPool(sys *core.System, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{sys: sys, obs: sys.M.Observer()}
	ctrs := p.obs.InstallServerShards(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := p.newShard(i, cfg, ctrs[i])
		if err != nil {
			for _, prev := range p.shards {
				close(prev.queue)
			}
			p.workerWG.Wait()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

func (p *Pool) newShard(id int, cfg Config, ctr *stats.ShardCounters) (*shard, error) {
	proc, err := p.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	client, err := redis.NewClientNamed(th, cfg.SegSize, redis.DefaultNames)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	if cfg.Tags && id == 0 {
		if err := client.EnableTags(); err != nil {
			proc.Exit()
			return nil, err
		}
	}
	sh := &shard{
		id:     id,
		queue:  make(chan *Request, cfg.QueueDepth),
		ctr:    ctr,
		proc:   proc,
		client: client,
	}
	p.workerWG.Add(1)
	go p.runShard(sh, th)
	return sh, nil
}

// runShard is the worker loop: drain the queue until it closes, then
// detach from the shared state and exit the process so the kernel reaper
// reclaims the core and private segments.
func (p *Pool) runShard(sh *shard, th *core.Thread) {
	defer p.workerWG.Done()
	for r := range sh.queue {
		sh.ctr.Command()
		r.Finish(p.exec(sh, th, r.Args))
		p.obs.ServerCommand(uint64(time.Since(r.Start).Nanoseconds()))
	}
	sh.err = sh.client.Close()
	sh.proc.Exit()
}

// exec runs one already-parsed command on the worker's thread. The worker
// charges its core for the network receive and reply (cache-line copies
// through the kernel) before running the RedisJMP fast path.
func (p *Pool) exec(sh *shard, th *core.Thread, args []string) []byte {
	var n int
	for _, a := range args {
		n += len(a)
	}
	th.Core.AddCycles(EdgeCycles(n))
	resp := redis.Execute(sh.client, args)
	th.Core.AddCycles(EdgeCycles(len(resp)))
	return resp
}

// Bind stripes the connection onto a shard.
func (p *Pool) Bind(connID uint64) uint64 {
	sh := p.shards[int(connID)%len(p.shards)]
	sh.ctr.Conn()
	return uint64(sh.id)
}

// Submit enqueues the request on the connection's shard, failing fast when
// its queue is full.
func (p *Pool) Submit(connID uint64, r *Request) bool {
	sh := p.shards[int(connID)%len(p.shards)]
	select {
	case sh.queue <- r:
		d := len(sh.queue)
		sh.ctr.QueueDepth(d)
		p.obs.ServerQueue(d)
		return true
	default:
		sh.ctr.Busy()
		return false
	}
}

// Close lets each worker finish its backlog and tear itself down, then
// destroys the shared RedisJMP state. After Close returns, the only
// simulated memory still allocated is what existed before NewPool.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		for _, sh := range p.shards {
			close(sh.queue)
		}
		p.workerWG.Wait()
		for _, sh := range p.shards {
			if sh.err != nil {
				p.closeErr = errors.Join(p.closeErr, fmt.Errorf("shard %d: %w", sh.id, sh.err))
			}
		}
		if err := p.destroyShared(); err != nil {
			p.closeErr = errors.Join(p.closeErr, err)
		}
	})
	return p.closeErr
}

// destroyShared tears down the shared RedisJMP state through a short-lived
// admin process (every worker has already detached and exited).
func (p *Pool) destroyShared() error {
	proc, err := p.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return err
	}
	return redis.Destroy(th)
}
