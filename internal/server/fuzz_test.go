package server

import (
	"strings"
	"testing"

	"spacejmp/internal/redis"
	"spacejmp/internal/tenant"
)

// FuzzAuthCommand throws arbitrary commands at the tenant admission layer —
// the code every untrusted connection byte reaches first. Invariants: admit
// never panics, data commands without an identity are always answered
// inline with -NOPERM, every inline reply is one well-formed RESP reply,
// and after a successful AUTH every plain key arg is rewritten into the
// tenant's view so the prefix round-trips through SplitTenantKey.
func FuzzAuthCommand(f *testing.F) {
	f.Add("AUTH", "t0", "s0")
	f.Add("AUTH", "t0", "wrong")
	f.Add("AUTH", "", "")
	f.Add("GET", "k", "")
	f.Add("SET", "k", "v")
	f.Add("SET", "t:t1:k", "v")
	f.Add("DEL", "t:zz:x", "")
	f.Add("MGET", "a", "t:t0:b")
	f.Add("get", "t:", "")
	f.Add("Set", "t::", "t:t0")
	f.Add("PING", "", "")
	f.Add("QUIT", "\r\n", "\x00")
	f.Fuzz(func(t *testing.T, a0, a1, a2 string) {
		if a0 == "" {
			return // the conn layer never passes an empty command name
		}
		reg, err := tenant.NewDemo(2, tenant.Config{}, tenant.Quotas{})
		if err != nil {
			t.Fatal(err)
		}
		args := []string{a0, a1, a2}

		checkInline := func(resp []byte, tag string) {
			if resp == nil {
				return
			}
			if _, _, err := redis.DecodeReply(resp); err != nil {
				// Error replies decode to a ReplyError; that is well-formed.
				var re redis.ReplyError
				if !asReplyError(err, &re) {
					t.Fatalf("%s: inline reply %q is not one well-formed RESP reply: %v", tag, resp, err)
				}
			}
		}

		// Pass 1: unauthenticated. A data command must die inline with the
		// typed denial; nothing else may slip through to a backend.
		ct := newConnTenant(reg)
		unauth := append([]string(nil), args...)
		inline, settle := ct.admit(unauth)
		checkInline(inline, "unauthenticated")
		switch strings.ToUpper(a0) {
		case "GET", "MGET", "SET", "DEL":
			if inline == nil {
				t.Fatalf("unauthenticated %q reached the backend", args)
			}
			if !strings.HasPrefix(string(inline), "-NOPERM") {
				t.Fatalf("unauthenticated %q: inline reply %q, want -NOPERM", args, inline)
			}
			if settle != nil {
				t.Fatalf("unauthenticated %q produced a settle hook", args)
			}
		case "AUTH":
			if inline == nil {
				t.Fatalf("AUTH %q produced no inline reply", args)
			}
		}

		// Pass 2: authenticated as t0. Plain keys must be rewritten into
		// t0's view and round-trip through SplitTenantKey; explicit
		// cross-view keys are either denied inline or left untouched.
		ct = newConnTenant(reg)
		if resp := ct.auth([]string{"AUTH", tenant.DemoID(0), tenant.DemoSecret(0)}); string(resp) != "+OK\r\n" {
			t.Fatalf("demo AUTH failed: %q", resp)
		}
		authed := append([]string(nil), args...)
		inline, settle = ct.admit(authed)
		checkInline(inline, "authenticated")
		name := strings.ToUpper(a0)
		if name == "GET" || name == "MGET" || name == "SET" || name == "DEL" {
			lastKey := len(authed) - 1
			if name == "SET" {
				lastKey = 1
			}
			for i := 1; i <= lastKey; i++ {
				orig, rewritten := args[i], authed[i]
				id, rest, wasCross := redis.SplitTenantKey(orig)
				if inline != nil {
					// Denied or rejected at admission: args may be partially
					// rewritten but nothing reached a backend; nothing more
					// to hold.
					continue
				}
				if wasCross {
					if rewritten != orig {
						t.Fatalf("cross-view key %q (-> %s/%s) was rewritten to %q", orig, id, rest, rewritten)
					}
					continue
				}
				wantKey := redis.TenantKey(tenant.DemoID(0), orig)
				if rewritten != wantKey {
					t.Fatalf("key %q rewritten to %q, want %q", orig, rewritten, wantKey)
				}
				gotID, gotRest, ok := redis.SplitTenantKey(rewritten)
				if !ok || gotID != tenant.DemoID(0) || gotRest != orig {
					t.Fatalf("rewritten key %q does not round-trip: (%q, %q, %v)", rewritten, gotID, gotRest, ok)
				}
			}
		}
		if settle != nil {
			// The settle hook must tolerate any reply shape the backend
			// could produce, including errors and empty slices.
			settle(nil)
			settle = func([]byte) {}
		}
	})
}

func asReplyError(err error, re *redis.ReplyError) bool {
	e, ok := err.(redis.ReplyError)
	if ok {
		*re = e
	}
	return ok
}
