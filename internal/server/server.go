// Package server is the serving layer: a real TCP front-end speaking RESP
// over the SpaceJMP store. It is the point where true Go concurrency meets
// the simulated machine — many connection goroutines feed a sharded worker
// pool, and each worker owns a core.Thread attached to the shared RedisJMP
// VASes (§5.3), so every command runs the paper's fast path: switch into
// the server VAS, operate on the lockable segment directly, switch out.
//
// The concurrency contract with the simulator is strict: a simulated core's
// cycle counter is not atomic, so exactly one goroutine — the worker that
// claimed it — may ever drive a given Thread. Connection goroutines never
// touch simulated state; they parse RESP, hand requests to a shard over a
// bounded queue, and write replies in arrival order. A full queue is
// answered immediately with a RESP error (backpressure, never unbounded
// buffering); a full pipeline blocks the connection's reader, pushing the
// backpressure onto TCP itself.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
)

// Config sizes the server. Zero values take the defaults below.
type Config struct {
	// Shards is the number of worker shards; each claims one simulated
	// core for the lifetime of the server.
	Shards int
	// QueueDepth bounds each shard's request queue. An enqueue on a full
	// queue fails fast with a "server busy" reply.
	QueueDepth int
	// PipelineDepth bounds the commands in flight per connection. When a
	// connection has this many awaiting replies its reader blocks, so a
	// fast pipeliner is throttled by TCP flow control.
	PipelineDepth int
	// SegSize is the shared store segment size.
	SegSize uint64
	// Tags enables TLB tags on the server VASes (Figure 10a's tagged
	// series).
	Tags bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	if c.SegSize == 0 {
		c.SegSize = 16 << 20
	}
	return c
}

// request is one command in flight: filled in by a connection reader,
// executed by a shard worker, written back by the connection writer once
// done is closed. Replies preserve arrival order because the writer waits
// on requests in the order the reader issued them.
type request struct {
	args  []string
	resp  []byte
	start time.Time
	done  chan struct{}
}

// Server is a running RESP front-end.
type Server struct {
	cfg    Config
	sys    *core.System
	obs    *stats.Sink
	faults *fault.Registry

	ln       net.Listener
	shards   []*shard
	nextConn atomic.Uint64

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	shutdownOnce sync.Once
	shutdownErr  error
}

// New boots the serving layer on an already-running system: spawns one
// worker process per shard (each claiming a simulated core and attaching
// to the shared RedisJMP state, creating it if absent) and starts the
// accept loop on ln. The caller owns ln's address; the server owns closing
// it at Shutdown.
func New(sys *core.System, ln net.Listener, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		sys:    sys,
		obs:    sys.M.Observer(),
		faults: sys.M.Faults,
		ln:     ln,
		conns:  map[net.Conn]struct{}{},
	}
	ctrs := s.obs.InstallServerShards(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := s.newShard(i, ctrs[i])
		if err != nil {
			for _, prev := range s.shards {
				close(prev.queue)
			}
			s.workerWG.Wait()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatally broken
		}
		if s.faults.Fire(fault.SrvAccept) {
			nc.Close()
			continue
		}
		id := s.nextConn.Add(1)
		sh := s.shards[int(id)%len(s.shards)]
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.obs.ConnAccepted(id, uint64(sh.id))
		sh.ctr.Conn()
		s.connWG.Add(1)
		go s.serveConn(id, nc, sh)
	}
}

func (s *Server) dropConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	nc.Close()
}

// Shutdown drains the server: stop accepting, unblock connection readers,
// finish every in-flight command, stop the shard workers (each detaches
// from the shared VASes and exits its process, handing its core and private
// segments to the kernel reaper), and finally destroy the shared RedisJMP
// state itself. After Shutdown returns, the only simulated memory still
// allocated is what existed before New — the leak tests hold the server to
// exactly that.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.ln.Close()
		s.acceptWG.Wait()

		// Wake every connection reader blocked in Read; in-flight
		// requests still complete and their replies still flush.
		s.mu.Lock()
		for nc := range s.conns {
			nc.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.connWG.Wait()

		// No reader can enqueue anymore; closing the queues lets each
		// worker finish its backlog and tear itself down.
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.workerWG.Wait()
		for _, sh := range s.shards {
			if sh.err != nil {
				s.shutdownErr = errors.Join(s.shutdownErr, fmt.Errorf("shard %d: %w", sh.id, sh.err))
			}
		}

		// All clients are gone; destroy the shared VASes and store.
		if err := s.destroyShared(); err != nil {
			s.shutdownErr = errors.Join(s.shutdownErr, err)
		}
	})
	return s.shutdownErr
}

// destroyShared tears down the shared RedisJMP state through a short-lived
// admin process (every worker has already detached and exited).
func (s *Server) destroyShared() error {
	proc, err := s.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return err
	}
	return redis.Destroy(th)
}
