// Package server is the serving layer: a real TCP front-end speaking RESP
// over the SpaceJMP store. It is the point where true Go concurrency meets
// the simulated machine — many connection goroutines feed a Backend of
// workers, and each worker owns a core.Thread attached to RedisJMP VASes
// (§5.3), so every command runs the paper's fast path: switch into the
// server VAS, operate on the lockable segment directly, switch out. Two
// backends exist: the single-store worker Pool in this package, and the
// keyspace-sharded cluster router in internal/cluster.
//
// The concurrency contract with the simulator is strict: a simulated core's
// cycle counter is not atomic, so exactly one goroutine — the worker that
// claimed it — may ever drive a given Thread. Connection goroutines never
// touch simulated state; they parse RESP, hand requests to the backend over
// bounded queues, and write replies in arrival order. A saturated backend
// answers immediately with a RESP error (backpressure, never unbounded
// buffering); a full pipeline blocks the connection's reader, pushing the
// backpressure onto TCP itself.
package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/stats"
	"spacejmp/internal/tenant"
)

// Config sizes the server. Zero values take the defaults below.
type Config struct {
	// Shards is the number of worker shards; each claims one simulated
	// core for the lifetime of the server.
	Shards int
	// QueueDepth bounds each shard's request queue. An enqueue on a full
	// queue fails fast with a "server busy" reply.
	QueueDepth int
	// PipelineDepth bounds the commands in flight per connection. When a
	// connection has this many awaiting replies its reader blocks, so a
	// fast pipeliner is throttled by TCP flow control.
	PipelineDepth int
	// SegSize is the shared store segment size.
	SegSize uint64
	// Tags enables TLB tags on the server VASes (Figure 10a's tagged
	// series).
	Tags bool
	// Tenants, when set, turns on multi-tenant serving: connections must
	// AUTH against this registry, keys are qualified into the tenant's
	// view, cross-view addresses pass capability checks, and quotas gate
	// admission. Nil keeps the single-tenant behavior unchanged.
	Tenants *tenant.Registry

	// DeadlineCycles is the per-command default deadline budget, in
	// simulated-core cycles; 0 (the default) stamps no deadline. A
	// connection overrides it with the DEADLINE <ms> prefix command.
	DeadlineCycles uint64
	// CyclesPerMilli converts the DEADLINE command's millisecond argument
	// to cycles; set it from the machine's clock (GHz × 1e6). Defaults to
	// 2e6 — the small test machine's 2 GHz.
	CyclesPerMilli uint64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	if c.SegSize == 0 {
		c.SegSize = 16 << 20
	}
	if c.CyclesPerMilli == 0 {
		c.CyclesPerMilli = 2_000_000
	}
	return c
}

// Server is a running RESP front-end.
type Server struct {
	cfg     Config
	obs     *stats.Sink
	faults  *fault.Registry
	backend Backend

	ln       net.Listener
	nextConn atomic.Uint64

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	shutdownOnce sync.Once
	shutdownErr  error
}

// New boots the serving layer on an already-running system with the
// single-store worker Pool as its backend, and starts the accept loop on
// ln. The caller owns ln's address; the server owns closing it at Shutdown.
func New(sys *core.System, ln net.Listener, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(sys, cfg)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(sys, ln, cfg, pool), nil
}

// NewWithBackend boots the front-end over an already-constructed backend.
// The server takes ownership of the backend: Shutdown closes it.
func NewWithBackend(sys *core.System, ln net.Listener, cfg Config, b Backend) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		obs:     sys.M.Observer(),
		faults:  sys.M.Faults,
		backend: b,
		ln:      ln,
		conns:   map[net.Conn]struct{}{},
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatally broken
		}
		if s.faults.Fire(fault.SrvAccept) {
			nc.Close()
			continue
		}
		id := s.nextConn.Add(1)
		qid := s.backend.Bind(id)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.obs.ConnAccepted(id, qid)
		s.connWG.Add(1)
		go s.serveConn(id, nc)
	}
}

func (s *Server) dropConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	nc.Close()
}

// Shutdown drains the server: stop accepting, unblock connection readers,
// finish every in-flight command, then close the backend (its workers
// detach from shared state and exit their processes, handing cores and
// private segments to the kernel reaper, and the shared store itself is
// destroyed). After Shutdown returns, the only simulated memory still
// allocated is what existed before New — the leak tests hold the server to
// exactly that.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.ln.Close()
		s.acceptWG.Wait()

		// Wake every connection reader blocked in Read; in-flight
		// requests still complete and their replies still flush.
		s.mu.Lock()
		for nc := range s.conns {
			nc.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.connWG.Wait()

		// No reader can submit anymore; the backend drains its backlog
		// and tears down its simulated state.
		s.shutdownErr = s.backend.Close()
	})
	return s.shutdownErr
}
