package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
	"spacejmp/internal/tenant"
)

// Closed-loop load generator: N connections, each keeping a fixed pipeline
// of commands in flight — write a batch, read the batch's replies, repeat.
// Values are deterministic functions of their key (and deliberately contain
// CR/LF and NUL bytes), so every GET reply is verifiable without any shared
// bookkeeping between connections. cmd/spacejmp-load wraps this; the
// integration tests drive it directly.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	Addr       string
	Conns      int
	Pipeline   int
	Requests   int // commands per connection
	SetPercent int // portion of SETs in the mix, 0..100
	// MGetPercent is the portion of multi-key GETs in the mix, 0..100
	// (carved out of the GET share; SetPercent+MGetPercent ≤ 100). MGETs
	// are what separates the cluster's two serving modes: on the shared-VAS
	// path extra keys cost memory accesses, over urpc they cost transfers.
	MGetPercent int
	MGetKeys    int // keys per MGET
	Keys        int // keyspace size
	ValueSize   int // bytes per value
	Seed        int64
	// Reconnect makes a connection survive transport failure: instead of
	// aborting the run, it counts a disconnect, redials, and keeps working
	// through its remaining quota (abandoning the in-flight batch). This is
	// what lets the chaos scenarios sever connections — server.conn.drop,
	// server.accept — while still holding the run to zero verification
	// failures.
	Reconnect bool
	// Tenants with Auth runs the load multi-tenant against a server booted
	// with a demo registry: connection i authenticates as demo tenant
	// i%Tenants (re-authenticating after every redial) and works its own
	// view of the keyspace. Values are derived from the tenant-qualified
	// key, so per-tenant keyspaces verify independently and any cross-view
	// bleed is a value mismatch, not a silent match.
	Tenants int
	Auth    bool
	// CrossCheckEvery replaces every n'th command on a connection with a
	// probe GET explicitly addressed at another tenant's view. The only
	// correct answer is a -NOPERM denial; any other reply — nil included —
	// means the capability check did not fire and counts as a cross-tenant
	// leak (and a mismatch). 0 takes the default (32); <0 disables probes.
	// Probes need Auth and at least two tenants.
	CrossCheckEvery int
	// StaleReads opts every connection into follower reads (READONLY is
	// sent after each (re)dial, after AUTH) and interleaves staleness
	// probes into the mix: each connection owns one probe key it SETs with
	// monotonically versioned values, and each probe GET must come back as
	// either a version no older than StaleBound or the typed -STALE
	// refusal. A version older than the bound served without -STALE is a
	// StaleViolation — the server broke its bounded-staleness contract
	// silently, which is the one failure mode follower reads must not have.
	StaleReads bool
	// StaleBound is the verifying staleness bound for probe GETs. Set it to
	// the server's configured bound plus shipping slack; a violation is
	// only counted when a probe returns a version superseded earlier than
	// this long ago. 0 defaults to 1s.
	StaleBound time.Duration
	// StaleCheckEvery issues a probe (alternating SET and GET) every n'th
	// command on stale-read runs. 0 takes the default (8); <0 disables.
	StaleCheckEvery int
	// Deadline sets a per-command deadline budget on every connection: the
	// DEADLINE <ms> prefix command is sent after each (re)dial, so every
	// subsequent command carries the budget and an overloaded server
	// answers typed retryable -DEADLINE refusals (counted as Busy, never
	// as failures) instead of queueing the work. 0 sends nothing — the
	// server's own default applies.
	Deadline time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 64
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Requests <= 0 {
		c.Requests = 256
	}
	if c.SetPercent < 0 || c.SetPercent > 100 {
		c.SetPercent = 20
	}
	if c.MGetPercent < 0 || c.SetPercent+c.MGetPercent > 100 {
		c.MGetPercent = 0
	}
	if c.MGetKeys <= 0 {
		c.MGetKeys = 4
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tenants < 0 {
		c.Tenants = 0
	}
	if c.CrossCheckEvery == 0 {
		c.CrossCheckEvery = 32
	}
	if c.StaleBound <= 0 {
		c.StaleBound = time.Second
	}
	if c.StaleCheckEvery == 0 {
		c.StaleCheckEvery = 8
	}
	return c
}

// LoadResult aggregates a run.
type LoadResult struct {
	Commands    uint64
	Gets        uint64
	Sets        uint64
	MGets       uint64
	Busy        uint64 // backpressure rejections ("server busy")
	Errors      uint64 // any other error reply
	Mismatches  uint64 // GET replies that matched neither nil nor the key's value
	Disconnects uint64 // transport failures survived by reconnecting (Reconnect only)
	// Multi-tenant runs only.
	QuotaRejected uint64 // -QUOTA admission rejections (not counted as Errors)
	CrossDenied   uint64 // cross-view probes correctly denied with -NOPERM
	CrossLeaks    uint64 // cross-view probes answered any other way — isolation failures (also Mismatches)
	// Stale-read runs only.
	StaleProbes     uint64 // probe GETs answered with a value or nil
	StaleRejected   uint64 // probe GETs correctly refused with -STALE
	StaleViolations uint64 // probe GETs that returned a version older than the bound without -STALE
	Elapsed         time.Duration
	Latency         stats.HistSnap // per-command wall latency, nanoseconds
}

// Throughput returns commands per second over the run.
func (r *LoadResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commands) / r.Elapsed.Seconds()
}

// ValueFor returns the deterministic value stored under key: binary bytes
// (embedded CRLF and NUL included) padded to size.
func ValueFor(key string, size int) []byte {
	pattern := []byte("\r\n\x00\xff" + key + "|")
	out := make([]byte, size)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// StaleProbeValue encodes version seq of a staleness probe: a
// self-identifying header the verifier parses back, padded to size with the
// same binary pattern ordinary values use.
func StaleProbeValue(seq uint64, size int) []byte {
	hdr := fmt.Sprintf("stale|%d|", seq)
	if size < len(hdr) {
		return []byte(hdr)
	}
	out := make([]byte, size)
	copy(out, hdr)
	pad := []byte("\r\n\x00\xff")
	for i := len(hdr); i < size; i++ {
		out[i] = pad[(i-len(hdr))%len(pad)]
	}
	return out
}

// ParseStaleProbe recovers the version from a probe value.
func ParseStaleProbe(val []byte) (uint64, bool) {
	rest, ok := bytes.CutPrefix(val, []byte("stale|"))
	if !ok {
		return 0, false
	}
	end := bytes.IndexByte(rest, '|')
	if end <= 0 {
		return 0, false
	}
	var seq uint64
	for _, c := range rest[:end] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// RunLoad drives the server at cfg.Addr and blocks until every connection
// finishes its quota. Transport-level failures abort the run with an error
// unless cfg.Reconnect is set, in which case the connection redials and
// works through its remaining quota; error *replies* (busy, OOM) are
// counted, not fatal either way.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	res := &LoadResult{}
	var commands, gets, sets, mgets, busy, errCount, mismatches, disconnects atomic.Uint64
	var quotaRejected, crossDenied, crossLeaks atomic.Uint64
	var staleProbes, staleRejected, staleViolations atomic.Uint64
	var lat stats.Hist

	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))

			// Tenant identity: connection i works as demo tenant i%N. The
			// expected value of a key is derived from its tenant-qualified
			// form, so every tenant's keyspace verifies independently.
			var tid, secret, probeTarget string
			if cfg.Auth && cfg.Tenants > 0 {
				tid = tenant.DemoID(i % cfg.Tenants)
				secret = tenant.DemoSecret(i % cfg.Tenants)
				if cfg.Tenants > 1 {
					probeTarget = tenant.DemoID((i + 1) % cfg.Tenants)
				}
			}
			valKey := func(key string) string {
				if tid == "" {
					return key
				}
				return redis.TenantKey(tid, key)
			}

			var nc net.Conn
			var br *bufio.Reader
			var bw *bufio.Writer
			defer func() {
				if nc != nil {
					nc.Close()
				}
			}()
			// fail handles a transport-level failure: without Reconnect it
			// records the error and aborts this connection's run; with it,
			// the connection is abandoned (any unread in-flight replies with
			// it), the disconnect is counted, and the caller retries on a
			// fresh dial. The retry cap keeps a hard-down server from
			// spinning forever.
			const maxReconnects = 256
			reconnects := 0
			fail := func(err error) bool {
				if nc != nil {
					nc.Close()
					nc = nil
				}
				if !cfg.Reconnect || reconnects >= maxReconnects {
					errs[i] = err
					return false
				}
				reconnects++
				disconnects.Add(1)
				time.Sleep(2 * time.Millisecond)
				return true
			}

			const (
				opGet = iota
				opSet
				opMGet
				opProbe    // GET explicitly addressed at another tenant's view
				opStaleSet // versioned write to this connection's staleness probe key
				opStaleGet // read of the probe key: fresh version, bounded-old version, or -STALE
			)
			type sent struct {
				op   int
				keys []string // one key for GET/SET, several for MGET
				seq  uint64   // probe version (opStaleSet)
				at   time.Time
			}
			batch := make([]sent, 0, cfg.Pipeline)
			issued := 0

			// Staleness-probe state: this connection is the only writer of
			// its probe key, so acked versions totally order what any view of
			// the key may still legally serve. probeCommits holds acked
			// writes young enough to be servable; older ones fold into
			// floorSeq — the newest version every in-bound view must include.
			type probeCommit struct {
				seq uint64
				at  time.Time
			}
			probeKey := fmt.Sprintf("stale.c%03d", i)
			var probeCommits []probeCommit
			var probeSeq, floorSeq uint64
			probeWrite := true
			for remaining := cfg.Requests; remaining > 0; {
				if nc == nil {
					c, err := net.Dial("tcp", cfg.Addr)
					if err != nil {
						if fail(err) {
							continue
						}
						return
					}
					nc, br, bw = c, bufio.NewReader(c), bufio.NewWriter(c)
					if tid != "" {
						// Every (re)dial starts unauthenticated; bind the
						// tenant identity before any data command.
						if _, err := nc.Write(redis.EncodeCommand("AUTH", tid, secret)); err != nil {
							if fail(err) {
								continue
							}
							return
						}
						if _, _, err := redis.ReadReply(br); err != nil {
							var reply redis.ReplyError
							if errors.As(err, &reply) {
								// Rejected credentials are a configuration
								// error; redialing cannot help.
								errs[i] = fmt.Errorf("auth %s: %w", tid, err)
								return
							}
							if fail(err) {
								continue
							}
							return
						}
					}
					if cfg.StaleReads {
						// The follower-read opt-in is per connection, so every
						// redial must re-issue it (after AUTH, like a client
						// library would).
						if _, err := nc.Write(redis.EncodeCommand("READONLY")); err != nil {
							if fail(err) {
								continue
							}
							return
						}
						if _, _, err := redis.ReadReply(br); err != nil {
							var reply redis.ReplyError
							if errors.As(err, &reply) {
								errs[i] = fmt.Errorf("readonly: %w", err)
								return
							}
							if fail(err) {
								continue
							}
							return
						}
					}
					if cfg.Deadline > 0 {
						// The deadline budget is per connection too: re-stamp
						// it on every redial.
						ms := cfg.Deadline.Milliseconds()
						if ms <= 0 {
							ms = 1
						}
						if _, err := nc.Write(redis.EncodeCommand("DEADLINE", strconv.FormatInt(ms, 10))); err != nil {
							if fail(err) {
								continue
							}
							return
						}
						if _, _, err := redis.ReadReply(br); err != nil {
							var reply redis.ReplyError
							if errors.As(err, &reply) {
								errs[i] = fmt.Errorf("deadline: %w", err)
								return
							}
							if fail(err) {
								continue
							}
							return
						}
					}
				}
				n := cfg.Pipeline
				if n > remaining {
					n = remaining
				}
				batch = batch[:0]
				writeErr := error(nil)
				for j := 0; j < n; j++ {
					draw := rng.Intn(100)
					issued++
					var s sent
					var cmd []byte
					switch {
					case cfg.StaleReads && cfg.StaleCheckEvery > 0 && issued%cfg.StaleCheckEvery == 0:
						if probeWrite {
							probeSeq++
							s = sent{op: opStaleSet, keys: []string{probeKey}, seq: probeSeq}
							cmd = redis.EncodeCommand("SET", probeKey, string(StaleProbeValue(probeSeq, cfg.ValueSize)))
						} else {
							s = sent{op: opStaleGet, keys: []string{probeKey}}
							cmd = redis.EncodeCommand("GET", probeKey)
						}
						probeWrite = !probeWrite
					case probeTarget != "" && cfg.CrossCheckEvery > 0 && issued%cfg.CrossCheckEvery == 0:
						key := redis.TenantKey(probeTarget, fmt.Sprintf("k%06d", rng.Intn(cfg.Keys)))
						s = sent{op: opProbe, keys: []string{key}}
						cmd = redis.EncodeCommand("GET", key)
					case draw < cfg.SetPercent:
						key := fmt.Sprintf("k%06d", rng.Intn(cfg.Keys))
						s = sent{op: opSet, keys: []string{key}}
						cmd = redis.EncodeCommand("SET", key, string(ValueFor(valKey(key), cfg.ValueSize)))
					case draw < cfg.SetPercent+cfg.MGetPercent:
						keys := make([]string, cfg.MGetKeys)
						for k := range keys {
							keys[k] = fmt.Sprintf("k%06d", rng.Intn(cfg.Keys))
						}
						s = sent{op: opMGet, keys: keys}
						cmd = redis.EncodeCommand(append([]string{"MGET"}, keys...)...)
					default:
						key := fmt.Sprintf("k%06d", rng.Intn(cfg.Keys))
						s = sent{op: opGet, keys: []string{key}}
						cmd = redis.EncodeCommand("GET", key)
					}
					if _, err := bw.Write(cmd); err != nil {
						writeErr = err
						break
					}
					s.at = time.Now()
					batch = append(batch, s)
				}
				if writeErr == nil {
					writeErr = bw.Flush()
				}
				if writeErr != nil {
					// Nothing from this batch was consumed; a reconnect
					// retries the full remaining quota (with fresh draws —
					// values are functions of their key, so verification
					// does not care which commands land).
					if fail(writeErr) {
						continue
					}
					return
				}
				consumed := 0
				var transportErr error
				for _, s := range batch {
					var err error
					if s.op == opMGet {
						var vals [][]byte
						var nils []bool
						vals, nils, err = redis.ReadArrayReply(br)
						if err == nil {
							if len(vals) != len(s.keys) {
								mismatches.Add(1)
							} else {
								for k := range vals {
									if !nils[k] && !bytes.Equal(vals[k], ValueFor(valKey(s.keys[k]), cfg.ValueSize)) {
										mismatches.Add(1)
									}
								}
							}
						}
					} else {
						var val []byte
						var isNil bool
						val, isNil, err = redis.ReadReply(br)
						if err == nil && s.op == opGet && !isNil && !bytes.Equal(val, ValueFor(valKey(s.keys[0]), cfg.ValueSize)) {
							mismatches.Add(1)
						}
						if err == nil && s.op == opStaleGet {
							// Any version at or past the floor (the newest
							// write acked longer than the bound ago) is a
							// legal bounded-stale answer; older than that,
							// the server should have said -STALE instead.
							staleProbes.Add(1)
							now := time.Now()
							for len(probeCommits) > 0 && now.Sub(probeCommits[0].at) > cfg.StaleBound {
								if probeCommits[0].seq > floorSeq {
									floorSeq = probeCommits[0].seq
								}
								probeCommits = probeCommits[1:]
							}
							switch seq, ok := ParseStaleProbe(val); {
							case isNil:
								if floorSeq > 0 {
									staleViolations.Add(1)
								}
							case !ok:
								mismatches.Add(1)
							case seq < floorSeq:
								staleViolations.Add(1)
							}
						}
					}
					var reply redis.ReplyError
					switch {
					case errors.As(err, &reply):
						// Typed retryable refusals (-BUSY backpressure,
						// -SHARDTIMEOUT mid-failover) count as busy;
						// -QUOTA, -STALE, and a probe's expected -NOPERM
						// have their own buckets; anything else is a hard
						// error.
						switch {
						case s.op == opProbe && errors.Is(reply, redis.ErrNoPerm):
							crossDenied.Add(1)
						case errors.Is(reply, redis.ErrQuota):
							quotaRejected.Add(1)
						case errors.Is(reply, redis.ErrStale):
							// The honest refusal of a follower read past the
							// bound — the explicit alternative to serving a
							// too-old value.
							staleRejected.Add(1)
						case redis.IsRetryableReply(reply):
							busy.Add(1)
						default:
							errCount.Add(1)
						}
					case err != nil:
						transportErr = err
					default:
						if s.op == opProbe {
							// The store answered a cross-view address — the
							// capability check did not fire. Nil or not,
							// this is an isolation failure.
							crossLeaks.Add(1)
							mismatches.Add(1)
						}
						if s.op == opStaleSet {
							// Acked: from now on every in-bound view must
							// eventually include this version. The ack time
							// is read after the reply, which only overstates
							// the commit's age tolerance — never a false
							// violation.
							probeCommits = append(probeCommits, probeCommit{seq: s.seq, at: time.Now()})
						}
					}
					if transportErr != nil {
						break
					}
					lat.Observe(uint64(time.Since(s.at).Nanoseconds()))
					commands.Add(1)
					consumed++
					switch s.op {
					case opGet, opStaleGet:
						gets.Add(1)
					case opSet, opStaleSet:
						sets.Add(1)
					case opMGet:
						mgets.Add(1)
					}
				}
				remaining -= consumed
				if transportErr != nil {
					if fail(transportErr) {
						continue
					}
					return
				}
			}
			// Polite goodbye; the +OK confirms the server saw it.
			if nc != nil {
				if _, err := nc.Write(redis.EncodeCommand("QUIT")); err == nil {
					redis.ReadReply(br)
				}
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Commands = commands.Load()
	res.Gets = gets.Load()
	res.Sets = sets.Load()
	res.MGets = mgets.Load()
	res.Busy = busy.Load()
	res.Errors = errCount.Load()
	res.Mismatches = mismatches.Load()
	res.Disconnects = disconnects.Load()
	res.QuotaRejected = quotaRejected.Load()
	res.CrossDenied = crossDenied.Load()
	res.CrossLeaks = crossLeaks.Load()
	res.StaleProbes = staleProbes.Load()
	res.StaleRejected = staleRejected.Load()
	res.StaleViolations = staleViolations.Load()
	res.Latency = lat.Snap()
	return res, errors.Join(errs...)
}
