package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
)

// Closed-loop load generator: N connections, each keeping a fixed pipeline
// of commands in flight — write a batch, read the batch's replies, repeat.
// Values are deterministic functions of their key (and deliberately contain
// CR/LF and NUL bytes), so every GET reply is verifiable without any shared
// bookkeeping between connections. cmd/spacejmp-load wraps this; the
// integration tests drive it directly.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	Addr       string
	Conns      int
	Pipeline   int
	Requests   int // commands per connection
	SetPercent int // portion of SETs in the mix, 0..100
	Keys       int // keyspace size
	ValueSize  int // bytes per value
	Seed       int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 64
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Requests <= 0 {
		c.Requests = 256
	}
	if c.SetPercent < 0 || c.SetPercent > 100 {
		c.SetPercent = 20
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadResult aggregates a run.
type LoadResult struct {
	Commands   uint64
	Gets       uint64
	Sets       uint64
	Busy       uint64 // backpressure rejections ("server busy")
	Errors     uint64 // any other error reply
	Mismatches uint64 // GET replies that matched neither nil nor the key's value
	Elapsed    time.Duration
	Latency    stats.HistSnap // per-command wall latency, nanoseconds
}

// Throughput returns commands per second over the run.
func (r *LoadResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commands) / r.Elapsed.Seconds()
}

// ValueFor returns the deterministic value stored under key: binary bytes
// (embedded CRLF and NUL included) padded to size.
func ValueFor(key string, size int) []byte {
	pattern := []byte("\r\n\x00\xff" + key + "|")
	out := make([]byte, size)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// RunLoad drives the server at cfg.Addr and blocks until every connection
// finishes its quota. Transport-level failures abort the run with an error;
// error *replies* (busy, OOM) are counted, not fatal.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	res := &LoadResult{}
	var commands, gets, sets, busy, errCount, mismatches atomic.Uint64
	var lat stats.Hist

	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			nc, err := net.Dial("tcp", cfg.Addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			bw := bufio.NewWriter(nc)

			type sent struct {
				isGet bool
				key   string
				at    time.Time
			}
			batch := make([]sent, 0, cfg.Pipeline)
			for remaining := cfg.Requests; remaining > 0; {
				n := cfg.Pipeline
				if n > remaining {
					n = remaining
				}
				remaining -= n
				batch = batch[:0]
				for j := 0; j < n; j++ {
					key := fmt.Sprintf("k%06d", rng.Intn(cfg.Keys))
					isGet := rng.Intn(100) >= cfg.SetPercent
					var cmd []byte
					if isGet {
						cmd = redis.EncodeCommand("GET", key)
					} else {
						cmd = redis.EncodeCommand("SET", key, string(ValueFor(key, cfg.ValueSize)))
					}
					if _, err := bw.Write(cmd); err != nil {
						errs[i] = err
						return
					}
					batch = append(batch, sent{isGet: isGet, key: key, at: time.Now()})
				}
				if err := bw.Flush(); err != nil {
					errs[i] = err
					return
				}
				for _, s := range batch {
					val, isNil, err := redis.ReadReply(br)
					var reply redis.ReplyError
					switch {
					case errors.As(err, &reply):
						if strings.Contains(string(reply), "busy") {
							busy.Add(1)
						} else {
							errCount.Add(1)
						}
					case err != nil:
						errs[i] = err
						return
					case s.isGet && !isNil && !bytes.Equal(val, ValueFor(s.key, cfg.ValueSize)):
						mismatches.Add(1)
					}
					lat.Observe(uint64(time.Since(s.at).Nanoseconds()))
					commands.Add(1)
					if s.isGet {
						gets.Add(1)
					} else {
						sets.Add(1)
					}
				}
			}
			// Polite goodbye; the +OK confirms the server saw it.
			if _, err := nc.Write(redis.EncodeCommand("QUIT")); err == nil {
				redis.ReadReply(br)
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Commands = commands.Load()
	res.Gets = gets.Load()
	res.Sets = sets.Load()
	res.Busy = busy.Load()
	res.Errors = errCount.Load()
	res.Mismatches = mismatches.Load()
	res.Latency = lat.Snap()
	return res, errors.Join(errs...)
}
