package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"spacejmp/internal/core"
	"spacejmp/internal/stats"
)

// NodeHealth is one shard node's routing and failover status, as the
// cluster layer reports it (defined here so the admin surface does not
// import the cluster package, which imports this one).
type NodeHealth struct {
	Node          int    `json:"node"`
	Local         bool   `json:"local"`
	Replicated    bool   `json:"replicated,omitempty"`
	State         string `json:"state"`
	Promoted      bool   `json:"promoted,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	LostUpdates   uint64 `json:"lost_updates,omitempty"`
	DeltaBuffered int    `json:"delta_buffered,omitempty"`
	Detail        string `json:"detail,omitempty"`
}

// ClusterStatus is what the admin surface needs from a cluster router:
// live channel occupancy and per-node health. Pass nil when the server
// fronts a single store.
type ClusterStatus interface {
	PendingFrames() int
	Health() []NodeHealth
}

// AdminHandler serves the machine's live observability state over HTTP:
//
//	GET /stats    — the sink's counters as JSON (a stats.Snapshot), plus,
//	                when a cluster is attached, its live runtime state
//	                (pending urpc frames, per-node health)
//	GET /trace?n= — the most recent n retained trace events (default all)
//	GET /healthz  — liveness probe; 503 with per-node detail when any key
//	                range is degraded (failed, mid-promotion, or lost)
//
// /stats reads only the sink's atomic counters (stats.Sink.Snapshot), so it
// is safe to poll while workers drive the simulated cores. The per-core
// *total* cycle counters are deliberately absent: they are non-atomic by
// design (one goroutine per core), and only hw.Machine.StatsSnapshot — which
// requires quiescence — can fold them in. Category-attributed cycles, which
// the sink does own, are present and account for all charged work.
func AdminHandler(sys *core.System, cl ClusterStatus) http.Handler {
	obs := sys.M.Observer()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cl != nil {
			nodes := cl.Health()
			var degraded []NodeHealth
			for _, n := range nodes {
				if n.Degraded || n.LostUpdates > 0 {
					degraded = append(degraded, n)
				}
			}
			if len(degraded) > 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(struct {
					Status string       `json:"status"`
					Nodes  []NodeHealth `json:"nodes"`
				}{"degraded", degraded})
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		snap := obs.Snapshot()
		if snap == nil {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		if cl == nil {
			writeJSON(w, snap)
			return
		}
		writeJSON(w, struct {
			*stats.Snapshot
			Runtime clusterRuntime `json:"cluster_runtime"`
		}{snap, clusterRuntime{cl.PendingFrames(), cl.Health()}})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		t := obs.Tracer()
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		events := t.Events()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		out := make([]traceEvent, len(events))
		for i, e := range events {
			out[i] = traceEvent{Kind: e.Kind.String(), Event: e}
		}
		writeJSON(w, struct {
			Recorded uint64       `json:"recorded"`
			Dropped  uint64       `json:"dropped"`
			Events   []traceEvent `json:"events"`
		}{t.Recorded(), t.Dropped(), out})
	})
	return mux
}

// clusterRuntime is the live (non-counter) cluster state folded into /stats.
type clusterRuntime struct {
	PendingFrames int          `json:"pending_frames"`
	Nodes         []NodeHealth `json:"nodes"`
}

// traceEvent decorates a stats.Event with its kind's name — the numeric
// Kind is json:"-" on the inner type, so the name is the wire form.
type traceEvent struct {
	Kind string `json:"kind"`
	stats.Event
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
