package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/stats"
	"spacejmp/internal/tenant"
)

// NodeHealth is one shard node's routing and failover status, as the
// cluster layer reports it (defined here so the admin surface does not
// import the cluster package, which imports this one).
type NodeHealth struct {
	Node          int    `json:"node"`
	Local         bool   `json:"local"`
	Replicated    bool   `json:"replicated,omitempty"`
	State         string `json:"state"`
	Promoted      bool   `json:"promoted,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	LostUpdates   uint64 `json:"lost_updates,omitempty"`
	DeltaBuffered int    `json:"delta_buffered,omitempty"`
	Detail        string `json:"detail,omitempty"`
}

// SlotRangeInfo is one contiguous run of placement slots with one owner.
type SlotRangeInfo struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Node  int `json:"node"`
}

// PlacementInfo is the cluster's slot-table state for the admin surface:
// the table's version, the slot count, and the owned ranges.
type PlacementInfo struct {
	Version uint64          `json:"version"`
	Slots   int             `json:"slots"`
	Ranges  []SlotRangeInfo `json:"ranges"`
}

// ClusterStatus is what the admin surface needs from a cluster router:
// live channel occupancy, per-node health, and the slot-table placement.
// Pass nil when the server fronts a single store.
type ClusterStatus interface {
	PendingFrames() int
	Health() []NodeHealth
	PlacementInfo() PlacementInfo
}

// AdminHandler serves the machine's live observability state over HTTP:
//
//	GET /stats       — the sink's counters as JSON (a stats.Snapshot), plus
//	                   the armed fault rules (a "faults" block) and, when a
//	                   cluster is attached, its live runtime state (pending
//	                   urpc frames, per-node health)
//	GET /stats/delta — long-poll delta stream: the first call returns the
//	                   full snapshot and a cursor; each follow-up call with
//	                   ?cursor= blocks (up to ?wait=, default 10s) until any
//	                   counter changed, then returns the delta since the
//	                   cursor's snapshot and a new cursor. A watcher loops on
//	                   it to stream a running scenario's activity instead of
//	                   re-pulling and re-diffing full snapshots.
//	GET /trace?n=    — the most recent n retained trace events (default all)
//	GET /healthz     — liveness probe; JSON with the current placement table
//	                   version (so operators can correlate degraded ranges
//	                   with a recent slot flip); 503 with per-node detail
//	                   when any key range is degraded (failed, mid-promotion,
//	                   or lost)
//	GET /tenants     — multi-tenant registry listing: each tenant's quotas,
//	                   live usage, and serving counters (404 when the server
//	                   runs single-tenant)
//
// /stats reads only the sink's atomic counters (stats.Sink.Snapshot), so it
// is safe to poll while workers drive the simulated cores. The per-core
// *total* cycle counters are deliberately absent: they are non-atomic by
// design (one goroutine per core), and only hw.Machine.StatsSnapshot — which
// requires quiescence — can fold them in. Category-attributed cycles, which
// the sink does own, are present and account for all charged work.
func AdminHandler(sys *core.System, cl ClusterStatus, tenants *tenant.Registry) http.Handler {
	obs := sys.M.Observer()
	cursors := &deltaCursors{snaps: map[uint64]cursorSnap{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// healthBody carries the placement version alongside the verdict so
		// an operator can correlate a degraded range with a recent slot
		// flip without a second /topology round trip.
		type healthBody struct {
			Status           string       `json:"status"`
			PlacementVersion *uint64      `json:"placement_version,omitempty"`
			Nodes            []NodeHealth `json:"nodes,omitempty"`
		}
		body := healthBody{Status: "ok"}
		status := http.StatusOK
		if cl != nil {
			v := cl.PlacementInfo().Version
			body.PlacementVersion = &v
			for _, n := range cl.Health() {
				if n.Degraded || n.LostUpdates > 0 {
					body.Nodes = append(body.Nodes, n)
				}
			}
			if len(body.Nodes) > 0 {
				body.Status = "degraded"
				status = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		if tenants == nil {
			http.Error(w, "multi-tenant serving disabled", http.StatusNotFound)
			return
		}
		infos := tenants.List()
		var counters []stats.TenantSnap
		if snap := obs.Snapshot(); snap != nil {
			counters = snap.Tenants
		}
		type entry struct {
			tenant.Info
			Counters stats.TenantSnap `json:"counters"`
		}
		out := make([]entry, len(infos))
		for i, info := range infos {
			out[i] = entry{Info: info}
			if i < len(counters) {
				out[i].Counters = counters[i]
			}
		}
		writeJSON(w, struct {
			Generation uint64  `json:"generation"`
			Tenants    []entry `json:"tenants"`
		}{tenants.Generation(), out})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		snap := obs.Snapshot()
		if snap == nil {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		faults := sys.M.Faults.Points()
		if cl == nil {
			writeJSON(w, struct {
				*stats.Snapshot
				Faults []fault.PointStatus `json:"faults,omitempty"`
			}{snap, faults})
			return
		}
		writeJSON(w, struct {
			*stats.Snapshot
			Faults  []fault.PointStatus `json:"faults,omitempty"`
			Runtime clusterRuntime      `json:"cluster_runtime"`
		}{snap, faults, clusterRuntime{cl.PendingFrames(), cl.Health(), cl.PlacementInfo()}})
	})
	mux.HandleFunc("/stats/delta", func(w http.ResponseWriter, r *http.Request) {
		serveStatsDelta(w, r, obs, cursors)
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		if cl == nil {
			http.Error(w, "no cluster attached", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Placement PlacementInfo `json:"placement"`
			Nodes     []NodeHealth  `json:"nodes"`
		}{cl.PlacementInfo(), cl.Health()})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		t := obs.Tracer()
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		events := t.Events()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		out := make([]traceEvent, len(events))
		for i, e := range events {
			out[i] = traceEvent{Kind: e.Kind.String(), Event: e}
		}
		writeJSON(w, struct {
			Recorded uint64       `json:"recorded"`
			Dropped  uint64       `json:"dropped"`
			Events   []traceEvent `json:"events"`
		}{t.Recorded(), t.Dropped(), out})
	})
	return mux
}

// clusterRuntime is the live (non-counter) cluster state folded into /stats.
type clusterRuntime struct {
	PendingFrames int           `json:"pending_frames"`
	Nodes         []NodeHealth  `json:"nodes"`
	Placement     PlacementInfo `json:"placement"`
}

// traceEvent decorates a stats.Event with its kind's name — the numeric
// Kind is json:"-" on the inner type, so the name is the wire form.
type traceEvent struct {
	Kind string `json:"kind"`
	stats.Event
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- /stats/delta: long-poll streaming of snapshot deltas. ---

// cursorSnap is one registered baseline: the snapshot a future delta is
// taken against, plus its canonical JSON form — change detection compares
// marshaled bytes, which is sound because Go marshals map keys sorted.
type cursorSnap struct {
	snap *stats.Snapshot
	raw  []byte
}

// deltaCursors is the handler's baseline table. Cursors are cheap (one
// snapshot each) but unclaimed ones must not accumulate, so the table is
// bounded: past maxDeltaCursors the oldest (smallest id) is evicted, and a
// poll presenting it gets 410 Gone — the watcher restarts cursorless.
type deltaCursors struct {
	mu    sync.Mutex
	next  uint64
	snaps map[uint64]cursorSnap
}

const maxDeltaCursors = 64

func (c *deltaCursors) register(cs cursorSnap) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	c.snaps[c.next] = cs
	for len(c.snaps) > maxDeltaCursors {
		oldest := uint64(0)
		for id := range c.snaps {
			if oldest == 0 || id < oldest {
				oldest = id
			}
		}
		delete(c.snaps, oldest)
	}
	return c.next
}

func (c *deltaCursors) take(id uint64) (cursorSnap, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.snaps[id]
	if ok {
		// A cursor is single-use: the reply hands back a fresh one, so
		// dropping the old baseline keeps the table from filling with
		// spent entries.
		delete(c.snaps, id)
	}
	return cs, ok
}

// statsDelta is one long-poll reply: the next cursor, whether any counter
// changed within the wait window, and the delta itself (the full snapshot
// on a cursorless first call).
type statsDelta struct {
	Cursor  uint64          `json:"cursor"`
	Changed bool            `json:"changed"`
	Delta   *stats.Snapshot `json:"delta"`
}

func serveStatsDelta(w http.ResponseWriter, r *http.Request, obs *stats.Sink, cursors *deltaCursors) {
	snapshotNow := func() (cursorSnap, bool) {
		snap := obs.Snapshot()
		if snap == nil {
			return cursorSnap{}, false
		}
		raw, err := json.Marshal(snap)
		if err != nil {
			return cursorSnap{}, false
		}
		return cursorSnap{snap, raw}, true
	}

	cur, ok := snapshotNow()
	if !ok {
		http.Error(w, "observability disabled", http.StatusNotFound)
		return
	}
	cursorParam := r.URL.Query().Get("cursor")
	if cursorParam == "" {
		// First call: the full snapshot is the delta, and its baseline is
		// what the next poll diffs against.
		writeJSON(w, statsDelta{cursors.register(cur), true, cur.snap})
		return
	}
	id, err := strconv.ParseUint(cursorParam, 10, 64)
	if err != nil {
		http.Error(w, "bad cursor", http.StatusBadRequest)
		return
	}
	base, ok := cursors.take(id)
	if !ok {
		http.Error(w, "unknown cursor (expired?)", http.StatusGone)
		return
	}

	wait := 10 * time.Second
	if s := r.URL.Query().Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			http.Error(w, "bad wait", http.StatusBadRequest)
			return
		}
		wait = d
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}

	deadline := time.Now().Add(wait)
	changed := !bytes.Equal(cur.raw, base.raw)
	for !changed {
		if time.Now().After(deadline) {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
		if cur, ok = snapshotNow(); !ok {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		changed = !bytes.Equal(cur.raw, base.raw)
	}
	writeJSON(w, statsDelta{cursors.register(cur), changed, cur.snap.Delta(base.snap)})
}
