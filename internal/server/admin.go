package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"spacejmp/internal/core"
	"spacejmp/internal/stats"
)

// AdminHandler serves the machine's live observability state over HTTP:
//
//	GET /stats    — the sink's counters as JSON (a stats.Snapshot)
//	GET /trace?n= — the most recent n retained trace events (default all)
//	GET /healthz  — liveness probe
//
// /stats reads only the sink's atomic counters (stats.Sink.Snapshot), so it
// is safe to poll while workers drive the simulated cores. The per-core
// *total* cycle counters are deliberately absent: they are non-atomic by
// design (one goroutine per core), and only hw.Machine.StatsSnapshot — which
// requires quiescence — can fold them in. Category-attributed cycles, which
// the sink does own, are present and account for all charged work.
func AdminHandler(sys *core.System) http.Handler {
	obs := sys.M.Observer()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		snap := obs.Snapshot()
		if snap == nil {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		t := obs.Tracer()
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		events := t.Events()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		out := make([]traceEvent, len(events))
		for i, e := range events {
			out[i] = traceEvent{Kind: e.Kind.String(), Event: e}
		}
		writeJSON(w, struct {
			Recorded uint64       `json:"recorded"`
			Dropped  uint64       `json:"dropped"`
			Events   []traceEvent `json:"events"`
		}{t.Recorded(), t.Dropped(), out})
	})
	return mux
}

// traceEvent decorates a stats.Event with its kind's name — the numeric
// Kind is json:"-" on the inner type, so the name is the wire form.
type traceEvent struct {
	Kind string `json:"kind"`
	stats.Event
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
