package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/redis"
)

// startServer boots a small machine, a kernel, and a server, returning the
// system and server. The caller owns Shutdown.
func startServer(t *testing.T, cfg Config, reg *fault.Registry) (*core.System, *Server) {
	t.Helper()
	m := hw.NewMachine(hw.SmallTest())
	if reg != nil {
		m.SetFaults(reg)
	}
	sys := kernel.New(m)
	sys.EnableStats(4096)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

// roundTrip sends one command and reads one reply on an established conn.
func roundTrip(t *testing.T, nc net.Conn, br *bufio.Reader, args ...string) ([]byte, bool, error) {
	t.Helper()
	if _, err := nc.Write(redis.EncodeCommand(args...)); err != nil {
		t.Fatalf("write %v: %v", args, err)
	}
	return redis.ReadReply(br)
}

func TestServerBasicCommands(t *testing.T) {
	_, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	if v, _, err := roundTrip(t, nc, br, "PING"); err != nil || string(v) != "PONG" {
		t.Fatalf("PING: %q %v", v, err)
	}
	binary := "e\r\ncho\x00\xff"
	if v, _, err := roundTrip(t, nc, br, "ECHO", binary); err != nil || string(v) != binary {
		t.Fatalf("ECHO: %q %v", v, err)
	}
	val := "value\r\nwith\x00binary\xff"
	if v, _, err := roundTrip(t, nc, br, "SET", "k1", val); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}
	if v, isNil, err := roundTrip(t, nc, br, "GET", "k1"); err != nil || isNil || string(v) != val {
		t.Fatalf("GET: %q %v %v", v, isNil, err)
	}
	if v, _, err := roundTrip(t, nc, br, "DEL", "k1"); err != nil || string(v) != "1" {
		t.Fatalf("DEL: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "DEL", "k1"); err != nil || string(v) != "0" {
		t.Fatalf("second DEL: %q %v", v, err)
	}
	if _, isNil, err := roundTrip(t, nc, br, "GET", "k1"); err != nil || !isNil {
		t.Fatalf("GET after DEL: isNil=%v err=%v", isNil, err)
	}

	var re redis.ReplyError
	_, _, err = roundTrip(t, nc, br, "FLUSHALL")
	if !errors.As(err, &re) || !strings.Contains(string(re), "unknown command") {
		t.Fatalf("unknown command reply: %v", err)
	}
	_, _, err = roundTrip(t, nc, br, "GET")
	if !errors.As(err, &re) || !strings.Contains(string(re), "wrong number of arguments") {
		t.Fatalf("arity reply: %v", err)
	}

	if v, _, err := roundTrip(t, nc, br, "QUIT"); err != nil || string(v) != "OK" {
		t.Fatalf("QUIT: %q %v", v, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("after QUIT: got %v, want EOF", err)
	}
}

func TestServerProtocolErrorReply(t *testing.T) {
	_, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("HELLO inline\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	_, _, err = redis.ReadReply(br)
	var re redis.ReplyError
	if !errors.As(err, &re) || !strings.Contains(string(re), "protocol error") {
		t.Fatalf("protocol error reply: %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("conn not closed after protocol error: %v", err)
	}
}

// TestServerPipelinedLoad is the acceptance run: 64 concurrent connections,
// pipeline depth 8, mixed GET/SET with binary values, over real TCP.
func TestServerPipelinedLoad(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 2, QueueDepth: 128, PipelineDepth: 16}, nil)

	cfg := LoadConfig{
		Addr:       srv.Addr().String(),
		Conns:      64,
		Pipeline:   8,
		Requests:   64,
		SetPercent: 30,
		Keys:       256,
		ValueSize:  64,
		Seed:       42,
	}
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.Conns * cfg.Requests)
	if res.Commands != want {
		t.Errorf("commands = %d, want %d", res.Commands, want)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d GET replies did not match the deterministic value", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Errorf("%d unexpected error replies", res.Errors)
	}
	if res.Latency.Count != want {
		t.Errorf("latency observations = %d, want %d", res.Latency.Count, want)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := sys.Stats()
	if snap == nil || snap.Server == nil {
		t.Fatal("no server stats in snapshot")
	}
	s := snap.Server
	if s.ConnsAccepted != uint64(cfg.Conns) || s.ConnsClosed != s.ConnsAccepted {
		t.Errorf("conns accepted/closed = %d/%d, want %d/%d",
			s.ConnsAccepted, s.ConnsClosed, cfg.Conns, cfg.Conns)
	}
	// Every non-QUIT command was either executed by a worker or rejected
	// with a busy reply.
	if s.Commands+s.Busy != want {
		t.Errorf("executed %d + busy %d != %d issued", s.Commands, s.Busy, want)
	}
	if res.Busy != s.Busy {
		t.Errorf("client saw %d busy replies, server counted %d", res.Busy, s.Busy)
	}
	if s.LatencyNs.Count != s.Commands {
		t.Errorf("latency histogram has %d entries, want %d", s.LatencyNs.Count, s.Commands)
	}
	if len(s.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(s.Shards))
	}
	var shardCmds, shardConns uint64
	for _, sh := range s.Shards {
		shardCmds += sh.Commands
		shardConns += sh.Conns
	}
	if shardCmds != s.Commands {
		t.Errorf("per-shard commands sum %d != total %d", shardCmds, s.Commands)
	}
	if shardConns != s.ConnsAccepted {
		t.Errorf("per-shard conns sum %d != accepted %d", shardConns, s.ConnsAccepted)
	}
	if s.Pipeline.Max < 2 {
		t.Errorf("pipeline depth never exceeded 1 (max %d) despite pipelined load", s.Pipeline.Max)
	}
}

// TestServerDrainReleasesEverything verifies the drain protocol: after
// Shutdown, no server goroutines survive and the kernel reaper has
// reclaimed every simulated frame the serving layer allocated.
func TestServerDrainReleasesEverything(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	sys := kernel.New(m)
	sys.EnableStats(1024)
	base := m.PM.AllocatedBytes()
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, ln, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Real traffic, then leave the connection open mid-stream so Shutdown
	// has to unblock a parked reader.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "SET", "a", "b\r\nc"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "GET", "a"); err != nil || string(v) != "b\r\nc" {
		t.Fatalf("GET: %q %v", v, err)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Error("connection still open after drain")
	}

	// Zero leaked frames: everything the serving layer allocated (worker
	// processes, scratch heaps, the store segment, both VASes) is back.
	if err := m.PM.CheckLeaks(base); err != nil {
		t.Errorf("frame leak after drain: %v", err)
	}

	// Zero leaked goroutines: poll briefly while the runtime retires them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestServerBackpressure wedges the single shard behind the store's
// exclusive segment lock and verifies that a full queue answers with busy
// replies instead of buffering, then drains cleanly once unwedged.
func TestServerBackpressure(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1, QueueDepth: 1, PipelineDepth: 16}, nil)
	defer srv.Shutdown()

	// The blocker process attaches the write VAS and switches in, taking
	// the store segment's lock exclusively; the shard's next SET blocks.
	proc, err := sys.NewProcess(core.Creds{UID: 7, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	vid, err := th.VASFind(redis.WriteVASName)
	if err != nil {
		t.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	const n = 8
	var batch bytes.Buffer
	for i := 0; i < n; i++ {
		batch.Write(redis.EncodeCommand("SET", "x", "y"))
	}
	if _, err := nc.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}

	// With the worker wedged, at most two SETs can be absorbed (one in
	// the worker, one in the depth-1 queue); the rest must bounce. A full
	// Stats() snapshot would race against the running worker's core, so
	// poll the sink's atomic busy counter instead.
	deadline := time.Now().Add(5 * time.Second)
	for sys.M.Observer().ServerBusyTotal() < n-2 {
		if time.Now().After(deadline) {
			t.Fatal("busy rejections never showed up in stats")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unwedge: the blocked SET acquires the lock and the pipeline drains.
	if err := th.VASSwitch(core.PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	proc.Exit()

	br := bufio.NewReader(nc)
	var ok, busy int
	for i := 0; i < n; i++ {
		v, _, err := redis.ReadReply(br)
		var re redis.ReplyError
		switch {
		case errors.As(err, &re) && errors.Is(re, redis.ErrBusy):
			busy++
		case err == nil && string(v) == "OK":
			ok++
		default:
			t.Fatalf("reply %d: %q %v", i, v, err)
		}
	}
	if ok < 1 || busy < 1 {
		t.Errorf("ok=%d busy=%d, want at least one of each", ok, busy)
	}
	if ok+busy != n {
		t.Errorf("replies = %d, want %d", ok+busy, n)
	}
}

func TestServerFaultInjection(t *testing.T) {
	reg := fault.New(1)
	reg.Enable(fault.SrvAccept, fault.OnNth(1))
	_, srv := startServer(t, Config{Shards: 1}, reg)
	defer srv.Shutdown()

	// First accept is failed by injection: the conn closes without
	// serving a single command.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(nc).ReadByte(); err == nil {
		t.Error("injected accept failure did not close the connection")
	}
	nc.Close()

	// The server survives; the next connection works.
	nc2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	br := bufio.NewReader(nc2)
	if v, _, err := roundTrip(t, nc2, br, "PING"); err != nil || string(v) != "PONG" {
		t.Fatalf("PING after accept fault: %q %v", v, err)
	}

	// Mid-command disconnect: the very next command read severs the conn.
	reg.Enable(fault.SrvConnDrop, fault.OnNth(1))
	if _, err := nc2.Write(redis.EncodeCommand("GET", "a")); err != nil {
		t.Fatal(err)
	}
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Error("injected drop did not sever the connection")
	}

	// Stalls slow a connection but do not break it.
	reg.Enable(fault.SrvConnStall, fault.Always())
	nc3, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc3.Close()
	br3 := bufio.NewReader(nc3)
	if v, _, err := roundTrip(t, nc3, br3, "PING"); err != nil || string(v) != "PONG" {
		t.Fatalf("PING under stall: %q %v", v, err)
	}
	reg.Disable(fault.SrvConnStall)

	if reg.Fired(fault.SrvAccept) != 1 || reg.Fired(fault.SrvConnDrop) != 1 {
		t.Errorf("fired: accept=%d drop=%d, want 1 and 1",
			reg.Fired(fault.SrvAccept), reg.Fired(fault.SrvConnDrop))
	}
}
