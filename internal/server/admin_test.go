package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"testing"

	"spacejmp/internal/fault"
	"spacejmp/internal/stats"
)

// TestAdminEndpoints serves real traffic, then reads the live stats and
// trace over the admin HTTP surface while the server is still running —
// the handler must stay on the race-safe sink-only snapshot path.
func TestAdminEndpoints(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "SET", "k", "v"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "GET", "k"); err != nil || string(v) != "v" {
		t.Fatalf("GET: %q %v", v, err)
	}

	admin := httptest.NewServer(AdminHandler(sys, nil, nil))
	defer admin.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var health struct {
		Status           string  `json:"status"`
		PlacementVersion *uint64 `json:"placement_version"`
	}
	if err := json.Unmarshal(get("/healthz"), &health); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", health.Status)
	}
	if health.PlacementVersion != nil {
		t.Errorf("single-store healthz reported a placement version: %d", *health.PlacementVersion)
	}

	// Single-tenant server: the tenant listing is absent, loudly.
	if resp, err := admin.Client().Get(admin.URL + "/tenants"); err == nil {
		if resp.StatusCode != 404 {
			t.Errorf("/tenants without a registry: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	var snap stats.Snapshot
	if err := json.Unmarshal(get("/stats"), &snap); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if snap.Server == nil || snap.Server.Commands == 0 {
		t.Errorf("live stats missing server commands: %+v", snap.Server)
	}
	if snap.Server.ConnsAccepted == 0 {
		t.Error("live stats missing accepted connections")
	}

	var trace struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Kind string `json:"kind"`
			Seq  uint64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?n=8"), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if trace.Recorded == 0 || len(trace.Events) == 0 {
		t.Fatalf("trace empty: recorded=%d events=%d", trace.Recorded, len(trace.Events))
	}
	if len(trace.Events) > 8 {
		t.Errorf("asked for 8 events, got %d", len(trace.Events))
	}
	for _, e := range trace.Events {
		if e.Kind == "" {
			t.Errorf("event %d missing kind name", e.Seq)
		}
	}

	if resp, err := admin.Client().Get(admin.URL + "/trace?n=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad n: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestAdminStatsDelta drives the long-poll delta stream: the cursorless
// first call returns the full snapshot and a cursor; a follow-up with that
// cursor reports whether anything changed and hands back a fresh cursor;
// cursors are single-use (replay gets 410) and garbage gets 400. It also
// checks the /stats faults block reflects the armed registry rules.
func TestAdminStatsDelta(t *testing.T) {
	reg := fault.New(42)
	sys, srv := startServer(t, Config{Shards: 1}, reg)
	defer srv.Shutdown()
	reg.EnableAt(fault.SrvConnStall, fault.TargetAny, "p=0.5", fault.Probability(0.5))

	admin := httptest.NewServer(AdminHandler(sys, nil, nil))
	defer admin.Close()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil && resp.StatusCode == 200 {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("GET %s: bad JSON %v (body %q)", path, err, body)
			}
		}
		return resp.StatusCode
	}

	// The faults block mirrors the armed rule.
	var withFaults struct {
		Faults []struct {
			Name   string `json:"name"`
			Target int    `json:"target"`
			Policy string `json:"policy"`
		} `json:"faults"`
	}
	if code := getJSON("/stats", &withFaults); code != 200 {
		t.Fatalf("/stats status %d", code)
	}
	if len(withFaults.Faults) != 1 || withFaults.Faults[0].Name != fault.SrvConnStall ||
		withFaults.Faults[0].Policy != "p=0.5" {
		t.Fatalf("faults block = %+v, want the armed server.conn.stall rule", withFaults.Faults)
	}

	var first struct {
		Cursor  uint64 `json:"cursor"`
		Changed bool   `json:"changed"`
	}
	if code := getJSON("/stats/delta", &first); code != 200 {
		t.Fatalf("first delta call: status %d", code)
	}
	if first.Cursor == 0 || !first.Changed {
		t.Fatalf("first delta call = %+v, want a cursor and changed=true", first)
	}

	// Generate activity so the poll sees a change without waiting out the
	// window.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "SET", "dk", "dv"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}

	var second struct {
		Cursor  uint64          `json:"cursor"`
		Changed bool            `json:"changed"`
		Delta   *stats.Snapshot `json:"delta"`
	}
	url := "/stats/delta?wait=2s&cursor=" + strconv.FormatUint(first.Cursor, 10)
	if code := getJSON(url, &second); code != 200 {
		t.Fatalf("second delta call: status %d", code)
	}
	if !second.Changed || second.Delta == nil {
		t.Fatalf("second delta call = changed=%v delta=%v, want a changed delta", second.Changed, second.Delta)
	}
	if second.Delta.Server == nil || second.Delta.Server.Commands == 0 {
		t.Errorf("delta did not attribute the SET: %+v", second.Delta.Server)
	}

	// Cursors are single-use: replaying the consumed one is Gone.
	if code := getJSON(url, nil); code != 410 {
		t.Errorf("replayed cursor: status %d, want 410", code)
	}
	if code := getJSON("/stats/delta?cursor=bogus", nil); code != 400 {
		t.Errorf("bad cursor: status %d, want 400", code)
	}
	if code := getJSON("/stats/delta?cursor="+strconv.FormatUint(second.Cursor, 10)+"&wait=nope", nil); code != 400 {
		t.Errorf("bad wait: status %d, want 400", code)
	}
}

// stubCluster fakes a cluster router for the admin surface.
type stubCluster struct {
	frames int
	nodes  []NodeHealth
}

func (s *stubCluster) PendingFrames() int   { return s.frames }
func (s *stubCluster) Health() []NodeHealth { return s.nodes }
func (s *stubCluster) PlacementInfo() PlacementInfo {
	return PlacementInfo{Version: 1, Slots: 256, Ranges: []SlotRangeInfo{{Start: 0, End: 255, Node: 0}}}
}

// TestAdminClusterHealth drives the cluster-aware admin surface: /stats
// grows a cluster_runtime block, and /healthz flips to 503 with per-node
// JSON detail the moment any key range is degraded.
func TestAdminClusterHealth(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	cl := &stubCluster{frames: 7, nodes: []NodeHealth{
		{Node: 0, Local: true, State: "healthy"},
		{Node: 1, Replicated: true, State: "healthy"},
	}}
	admin := httptest.NewServer(AdminHandler(sys, cl, nil))
	defer admin.Close()

	resp, err := admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthy, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy cluster: /healthz status %d, want 200", resp.StatusCode)
	}
	var okBody struct {
		Status           string  `json:"status"`
		PlacementVersion *uint64 `json:"placement_version"`
	}
	if err := json.Unmarshal(healthy, &okBody); err != nil {
		t.Fatalf("healthz JSON: %v (body %q)", err, healthy)
	}
	if okBody.Status != "ok" || okBody.PlacementVersion == nil || *okBody.PlacementVersion != 1 {
		t.Fatalf("healthz = %+v, want ok with placement version 1", okBody)
	}

	var wrapped struct {
		Runtime struct {
			PendingFrames int          `json:"pending_frames"`
			Nodes         []NodeHealth `json:"nodes"`
		} `json:"cluster_runtime"`
	}
	resp, err = admin.Client().Get(admin.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &wrapped); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if wrapped.Runtime.PendingFrames != 7 || len(wrapped.Runtime.Nodes) != 2 {
		t.Fatalf("cluster_runtime = %+v, want 7 pending frames and 2 nodes", wrapped.Runtime)
	}

	cl.nodes[1] = NodeHealth{Node: 1, Replicated: true, State: "degraded", Degraded: true,
		LostUpdates: 3, Detail: "no recoverable replica"}
	resp, err = admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded cluster: /healthz status %d, want 503", resp.StatusCode)
	}
	var report struct {
		Status string       `json:"status"`
		Nodes  []NodeHealth `json:"nodes"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("healthz JSON: %v (body %q)", err, body)
	}
	if report.Status != "degraded" || len(report.Nodes) != 1 || report.Nodes[0].Node != 1 {
		t.Fatalf("healthz report = %+v, want node 1 degraded", report)
	}
	if report.Nodes[0].LostUpdates != 3 || report.Nodes[0].Detail == "" {
		t.Fatalf("healthz detail missing: %+v", report.Nodes[0])
	}
}
