package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"testing"

	"spacejmp/internal/stats"
)

// TestAdminEndpoints serves real traffic, then reads the live stats and
// trace over the admin HTTP surface while the server is still running —
// the handler must stay on the race-safe sink-only snapshot path.
func TestAdminEndpoints(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "SET", "k", "v"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "GET", "k"); err != nil || string(v) != "v" {
		t.Fatalf("GET: %q %v", v, err)
	}

	admin := httptest.NewServer(AdminHandler(sys, nil))
	defer admin.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if string(get("/healthz")) != "ok\n" {
		t.Error("healthz not ok")
	}

	var snap stats.Snapshot
	if err := json.Unmarshal(get("/stats"), &snap); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if snap.Server == nil || snap.Server.Commands == 0 {
		t.Errorf("live stats missing server commands: %+v", snap.Server)
	}
	if snap.Server.ConnsAccepted == 0 {
		t.Error("live stats missing accepted connections")
	}

	var trace struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Kind string `json:"kind"`
			Seq  uint64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?n=8"), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if trace.Recorded == 0 || len(trace.Events) == 0 {
		t.Fatalf("trace empty: recorded=%d events=%d", trace.Recorded, len(trace.Events))
	}
	if len(trace.Events) > 8 {
		t.Errorf("asked for 8 events, got %d", len(trace.Events))
	}
	for _, e := range trace.Events {
		if e.Kind == "" {
			t.Errorf("event %d missing kind name", e.Seq)
		}
	}

	if resp, err := admin.Client().Get(admin.URL + "/trace?n=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad n: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// stubCluster fakes a cluster router for the admin surface.
type stubCluster struct {
	frames int
	nodes  []NodeHealth
}

func (s *stubCluster) PendingFrames() int   { return s.frames }
func (s *stubCluster) Health() []NodeHealth { return s.nodes }

// TestAdminClusterHealth drives the cluster-aware admin surface: /stats
// grows a cluster_runtime block, and /healthz flips to 503 with per-node
// JSON detail the moment any key range is degraded.
func TestAdminClusterHealth(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	cl := &stubCluster{frames: 7, nodes: []NodeHealth{
		{Node: 0, Local: true, State: "healthy"},
		{Node: 1, Replicated: true, State: "healthy"},
	}}
	admin := httptest.NewServer(AdminHandler(sys, cl))
	defer admin.Close()

	resp, err := admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy cluster: /healthz status %d, want 200", resp.StatusCode)
	}

	var wrapped struct {
		Runtime struct {
			PendingFrames int          `json:"pending_frames"`
			Nodes         []NodeHealth `json:"nodes"`
		} `json:"cluster_runtime"`
	}
	resp, err = admin.Client().Get(admin.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &wrapped); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if wrapped.Runtime.PendingFrames != 7 || len(wrapped.Runtime.Nodes) != 2 {
		t.Fatalf("cluster_runtime = %+v, want 7 pending frames and 2 nodes", wrapped.Runtime)
	}

	cl.nodes[1] = NodeHealth{Node: 1, Replicated: true, State: "degraded", Degraded: true,
		LostUpdates: 3, Detail: "no recoverable replica"}
	resp, err = admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded cluster: /healthz status %d, want 503", resp.StatusCode)
	}
	var report struct {
		Status string       `json:"status"`
		Nodes  []NodeHealth `json:"nodes"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("healthz JSON: %v (body %q)", err, body)
	}
	if report.Status != "degraded" || len(report.Nodes) != 1 || report.Nodes[0].Node != 1 {
		t.Fatalf("healthz report = %+v, want node 1 degraded", report)
	}
	if report.Nodes[0].LostUpdates != 3 || report.Nodes[0].Detail == "" {
		t.Fatalf("healthz detail missing: %+v", report.Nodes[0])
	}
}
