package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"testing"

	"spacejmp/internal/stats"
)

// TestAdminEndpoints serves real traffic, then reads the live stats and
// trace over the admin HTTP surface while the server is still running —
// the handler must stay on the race-safe sink-only snapshot path.
func TestAdminEndpoints(t *testing.T) {
	sys, srv := startServer(t, Config{Shards: 1}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "SET", "k", "v"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "GET", "k"); err != nil || string(v) != "v" {
		t.Fatalf("GET: %q %v", v, err)
	}

	admin := httptest.NewServer(AdminHandler(sys))
	defer admin.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if string(get("/healthz")) != "ok\n" {
		t.Error("healthz not ok")
	}

	var snap stats.Snapshot
	if err := json.Unmarshal(get("/stats"), &snap); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if snap.Server == nil || snap.Server.Commands == 0 {
		t.Errorf("live stats missing server commands: %+v", snap.Server)
	}
	if snap.Server.ConnsAccepted == 0 {
		t.Error("live stats missing accepted connections")
	}

	var trace struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Kind string `json:"kind"`
			Seq  uint64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?n=8"), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if trace.Recorded == 0 || len(trace.Events) == 0 {
		t.Fatalf("trace empty: recorded=%d events=%d", trace.Recorded, len(trace.Events))
	}
	if len(trace.Events) > 8 {
		t.Errorf("asked for 8 events, got %d", len(trace.Events))
	}
	for _, e := range trace.Events {
		if e.Kind == "" {
			t.Errorf("event %d missing kind name", e.Seq)
		}
	}

	if resp, err := admin.Client().Get(admin.URL + "/trace?n=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad n: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
