package server

import "time"

// Request is one parsed command in flight through a Backend: filled in by a
// connection reader, executed by whatever goroutine the backend routes it
// to, and collected by the connection writer once Finish is called. Replies
// preserve arrival order because the writer waits on requests in the order
// the reader issued them.
type Request struct {
	// Args is the parsed command (name first).
	Args []string
	// Start is when the reader accepted the command; backends use it for
	// wall-latency accounting.
	Start time.Time
	// Readonly marks a request from a connection that opted into follower
	// reads via READONLY: backends may serve reads from a bounded-staleness
	// frozen view instead of the primary.
	Readonly bool
	// Deadline is the request's cycle budget: the simulated-core cycles the
	// backend may burn serving it before failing fast with a retryable
	// -DEADLINE instead of queueing doomed work. 0 means no deadline. Set
	// from the server's per-command default or the connection's DEADLINE
	// prefix command; the budget is armed against the serving worker's
	// cycle counter when execution starts (queue wait burns no cycles).
	Deadline uint64

	resp []byte
	done chan struct{}

	// settle, when set, runs in the connection writer with the finished
	// reply — the tenant layer's quota commit/rollback hook.
	settle func([]byte)
}

// NewRequest builds an in-flight request for a parsed command.
func NewRequest(args []string) *Request {
	return &Request{Args: args, Start: time.Now(), done: make(chan struct{})}
}

// Finish publishes the reply and releases the connection writer waiting on
// it. Exactly one Finish per request.
func (r *Request) Finish(resp []byte) {
	r.resp = resp
	close(r.done)
}

// Wait blocks until Finish and returns the reply bytes.
func (r *Request) Wait() []byte {
	<-r.done
	return r.resp
}

// closedDone is a pre-closed channel for requests answered without a
// backend (busy rejections, QUIT, protocol errors).
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// inlineReply builds an already-answered request.
func inlineReply(resp []byte) *Request {
	return &Request{resp: resp, done: closedDone}
}

// Backend executes parsed commands against simulated state. The front-end
// (accept loop, connection reader/writer goroutines) is backend-agnostic:
// the single-store worker pool of §5.3 and the sharded cluster router both
// plug in here.
//
// The concurrency contract carries over from the pool: Submit may be called
// from many connection goroutines at once, must never block on simulated
// state, and must return false instead of queueing without bound — the
// conn layer turns false into an immediate busy reply.
type Backend interface {
	// Bind associates a new connection with the backend and returns the
	// queue (shard, worker) id it landed on, for the accept trace.
	Bind(connID uint64) uint64
	// Submit hands a request to the backend. It returns false when the
	// backend is saturated; the request is then untouched and the caller
	// answers it busy.
	Submit(connID uint64, r *Request) bool
	// Close drains all in-flight requests, stops the backend's workers,
	// and destroys whatever simulated state it created. Called once, after
	// no further Submit can occur.
	Close() error
}
