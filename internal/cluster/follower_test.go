package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"spacejmp/internal/redis"
)

// waitForFork blocks until the fork engine has published a frozen view for
// the node (a ship completed) or the deadline passes.
func waitForFork(t *testing.T, r *Router, node int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.forks.Current(node) != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no frozen view published for node %d", node)
}

// TestFollowerReadsServeFromFork drives the whole follower-read path over
// the wire: a READONLY connection's GET and MGET against a replicated
// remote node are answered from the frozen fork left behind by checkpoint
// shipping, READWRITE flips the same connection back to the primary, and
// the served reads are attributed to the follower counter.
func TestFollowerReadsServeFromFork(t *testing.T) {
	m, r, srv := startCluster(t, Config{
		Nodes: 3, Workers: 1, Locals: 2, SegSize: 1 << 20,
		Replication: ReplicationConfig{
			Enabled: true, ShipEvery: 2,
			FollowerReads: true, StaleBound: time.Minute,
		},
	}, nil)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	// Two keys on the replicated remote node; enough writes to trip the
	// ShipEvery=2 trigger and get a fork published.
	var keys [2]string
	keys[0] = keyOnNode(t, r, 2)
	for i := 0; ; i++ {
		k := fmt.Sprintf("fkey-%d", i)
		if r.Owner(r.Slot(k)) == 2 && k != keys[0] {
			keys[1] = k
			break
		}
	}
	for i, k := range keys {
		want := fmt.Sprintf("fork-v%d", i)
		if v, err := send(nc, br, "SET", k, want); err != nil || string(v) != "OK" {
			t.Fatalf("SET %s: %q %v", k, v, err)
		}
	}
	waitForFork(t, r, 2)

	if v, err := send(nc, br, "READONLY"); err != nil || string(v) != "OK" {
		t.Fatalf("READONLY: %q %v", v, err)
	}
	for i, k := range keys {
		v, err := send(nc, br, "GET", k)
		if err != nil || string(v) != fmt.Sprintf("fork-v%d", i) {
			t.Fatalf("follower GET %s: %q %v", k, v, err)
		}
	}
	served := obs.ClusterFollowerReadsTotal()
	if served == 0 {
		t.Fatal("no reads attributed to the frozen view")
	}

	// MGET mixing both fork-served keys with a primary-served local key.
	local := keyOnNode(t, r, 0)
	if v, err := send(nc, br, "SET", local, "local-v"); err != nil || string(v) != "OK" {
		t.Fatalf("SET %s: %q %v", local, v, err)
	}
	if _, err := nc.Write(redis.EncodeCommand("MGET", keys[0], local, keys[1])); err != nil {
		t.Fatal(err)
	}
	vals, nils, err := redis.ReadArrayReply(br)
	if err != nil {
		t.Fatalf("follower MGET: %v", err)
	}
	want := []string{"fork-v0", "local-v", "fork-v1"}
	if len(vals) != len(want) {
		t.Fatalf("follower MGET returned %d values, want %d", len(vals), len(want))
	}
	for i, v := range vals {
		if nils[i] || string(v) != want[i] {
			t.Fatalf("follower MGET[%d] = %q (nil=%v), want %q", i, v, nils[i], want[i])
		}
	}
	if got := obs.ClusterFollowerReadsTotal(); got <= served {
		t.Fatalf("MGET not attributed to the frozen view: %d -> %d", served, got)
	}

	// A write on the frozen-view node after the fork must not be visible
	// through the view (the fork is a point-in-time image), but READWRITE
	// must route the same connection back to the fresh primary.
	if v, err := send(nc, br, "SET", keys[0], "fresh-v"); err != nil || string(v) != "OK" {
		t.Fatalf("post-fork SET: %q %v", v, err)
	}
	// The SET itself may have tripped another ship; pin the comparison to
	// whatever the view serves vs what the primary serves.
	followerVal, err := send(nc, br, "GET", keys[0])
	if err != nil {
		t.Fatalf("follower GET after write: %v", err)
	}
	if v, err := send(nc, br, "READWRITE"); err != nil || string(v) != "OK" {
		t.Fatalf("READWRITE: %q %v", v, err)
	}
	primaryVal, err := send(nc, br, "GET", keys[0])
	if err != nil || string(primaryVal) != "fresh-v" {
		t.Fatalf("primary GET after READWRITE: %q %v", primaryVal, err)
	}
	_ = followerVal // either generation is legal from the view; the primary must be fresh
}

// TestFollowerReadStaleBound pins the bound: with a nanosecond budget every
// published view is already too old, so a READONLY GET must answer the
// typed -STALE refusal (never silently serve), be counted, and leave the
// primary path untouched for READWRITE connections.
func TestFollowerReadStaleBound(t *testing.T) {
	m, r, srv := startCluster(t, Config{
		Nodes: 3, Workers: 1, Locals: 2, SegSize: 1 << 20,
		Replication: ReplicationConfig{
			Enabled: true, ShipEvery: 2,
			FollowerReads: true, StaleBound: time.Nanosecond,
		},
	}, nil)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	key := keyOnNode(t, r, 2)
	for i := 0; i < 3; i++ {
		if v, err := send(nc, br, "SET", key, "bounded"); err != nil || string(v) != "OK" {
			t.Fatalf("SET: %q %v", v, err)
		}
	}
	waitForFork(t, r, 2)

	if v, err := send(nc, br, "READONLY"); err != nil || string(v) != "OK" {
		t.Fatalf("READONLY: %q %v", v, err)
	}
	_, err = send(nc, br, "GET", key)
	if !errors.Is(err, redis.ErrStale) {
		t.Fatalf("GET past the bound: err=%v, want -STALE", err)
	}
	if got := obs.ClusterStaleRejectedTotal(); got == 0 {
		t.Fatal("stale refusal not counted")
	}
	if got := obs.ClusterFollowerReadsTotal(); got != 0 {
		t.Fatalf("%d reads served from a view that was past the bound", got)
	}

	// The same connection recovers by opting back out.
	if v, err := send(nc, br, "READWRITE"); err != nil || string(v) != "OK" {
		t.Fatalf("READWRITE: %q %v", v, err)
	}
	if v, err := send(nc, br, "GET", key); err != nil || string(v) != "bounded" {
		t.Fatalf("primary GET: %q %v", v, err)
	}
}
