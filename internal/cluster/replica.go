package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/redis"
)

// replica is the monitor's bookkeeping for one node's warm standby: a copy
// of the shard's lockable store segment, rebuilt from each shipped
// checkpoint generation into its own globally named segment/VAS pair
// (redis.StandbyNames). The standby lives in DRAM — it models a replica
// machine's RAM, and it must not itself be swept into the next checkpoint
// generation (which covers NVM segments only).
//
// Only the monitor goroutine touches replica fields; no lock needed.
type replica struct {
	applied bool   // the standby holds a validated generation
	seq     uint64 // generation sequence applied
	bytes   uint64 // page bytes in the applied image
}

// applyImage rebuilds node n's standby store from a checkpointed segment
// image: tear down any previous standby (Restore semantics — replace, not
// merge), allocate a fresh segment and read/write VAS pair under the
// standby names, copy the image's pages in through a write attachment, and
// validate the store root before declaring the standby warm.
func (m *monitor) applyImage(n *node, img *core.SegmentImage) error {
	th := m.th
	if n.rep.applied {
		n.rep.applied = false
		if err := redis.DestroyNamed(th, n.standby); err != nil && !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("standby teardown: %w", err)
		}
	}
	sid, err := th.SegAlloc(n.standby.Seg, redis.SegBase, img.Size, arch.PermRW, core.WithPageSize(img.PageSize))
	if err != nil {
		return fmt.Errorf("standby segment: %w", err)
	}
	vidW, err := th.VASCreate(n.standby.WriteVAS, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidW, sid, arch.PermRW); err != nil {
		return err
	}
	vidR, err := th.VASCreate(n.standby.ReadVAS, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidR, sid, arch.PermRead); err != nil {
		return err
	}
	h, err := th.VASAttach(vidW)
	if err != nil {
		return err
	}
	if err := th.VASSwitch(h); err != nil {
		return err
	}
	var total uint64
	for idx, page := range img.Pages {
		base := redis.SegBase + arch.VirtAddr(idx*img.PageSize)
		total += uint64(len(page))
		for off := 0; off+8 <= len(page); off += 8 {
			word := binary.LittleEndian.Uint64(page[off:])
			if word == 0 {
				continue // fresh frames read zero; skip the stores
			}
			if err := th.Store64(base+arch.VirtAddr(off), word); err != nil {
				_ = th.VASSwitch(core.PrimaryHandle)
				_ = th.VASDetach(h)
				return fmt.Errorf("standby page %d: %w", idx, err)
			}
		}
	}
	// Validate the rebuilt store root from inside the VAS, so a bad image
	// fails here (and degrades the node) instead of at first request.
	_, err = redis.OpenStore(th, redis.SegBase)
	if serr := th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if derr := th.VASDetach(h); err == nil {
		err = derr
	}
	if err != nil {
		return fmt.Errorf("standby validation: %w", err)
	}
	n.rep.applied, n.rep.seq, n.rep.bytes = true, img.Seq, total
	return nil
}
