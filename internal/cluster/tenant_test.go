package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"

	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
	"spacejmp/internal/tenant"
)

// startTenantCluster boots a cluster whose front-end carries a demo tenant
// registry spanning the cluster's shard stores.
func startTenantCluster(t *testing.T, cfg Config, tenants int) (*hw.Machine, *Router, *server.Server, *tenant.Registry) {
	t.Helper()
	m := hw.NewMachine(hw.SmallTest())
	sys := kernel.New(m)
	sys.EnableStats(4096)
	r, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.NewDemo(tenants, tenant.Config{Nodes: cfg.Nodes, Stats: m.Observer()}, tenant.Quotas{})
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	srv := server.NewWithBackend(sys, ln, server.Config{Tenants: reg}, r)
	return m, r, srv, reg
}

func dialAs(t *testing.T, srv *server.Server, i int) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	br := bufio.NewReader(nc)
	if v, _, err := roundTrip(t, nc, br, "AUTH", tenant.DemoID(i), tenant.DemoSecret(i)); err != nil || string(v) != "OK" {
		t.Fatalf("AUTH %s: %q %v", tenant.DemoID(i), v, err)
	}
	return nc, br
}

// TestClusterTenantBothModes routes two tenants' views across a mixed
// cluster: the tenant prefix rides the same slot hashing as any key, so
// view-scoped data lands on both the shared-VAS path and the urpc path and
// verifies on each — while a cross-view address is denied at admission
// with -NOPERM before it can reach either path.
func TestClusterTenantBothModes(t *testing.T) {
	m, _, srv, _ := startTenantCluster(t, Config{Nodes: 3, Workers: 2, Locals: 2}, 2)
	defer srv.Shutdown()

	nc0, br0 := dialAs(t, srv, 0)
	nc1, br1 := dialAs(t, srv, 1)

	// Enough keys to land on every node; the two views use the same logical
	// keys with different values, so any cross-view bleed is a visible
	// wrong answer, not a silent match.
	const n = 24
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, _, err := roundTrip(t, nc0, br0, "SET", k, "zero-"+k); err != nil || string(v) != "OK" {
			t.Fatalf("t0 SET %s: %q %v", k, v, err)
		}
		if v, _, err := roundTrip(t, nc1, br1, "SET", k, "one-"+k); err != nil || string(v) != "OK" {
			t.Fatalf("t1 SET %s: %q %v", k, v, err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, _, err := roundTrip(t, nc0, br0, "GET", k); err != nil || string(v) != "zero-"+k {
			t.Fatalf("t0 GET %s: %q %v", k, v, err)
		}
		if v, _, err := roundTrip(t, nc1, br1, "GET", k); err != nil || string(v) != "one-"+k {
			t.Fatalf("t1 GET %s: %q %v", k, v, err)
		}
	}
	// Cross-view denial holds regardless of which node would serve the key.
	for i := 0; i < n; i++ {
		k := redis.TenantKey(tenant.DemoID(0), fmt.Sprintf("key-%d", i))
		if _, _, err := roundTrip(t, nc1, br1, "GET", k); !errors.Is(err, redis.ErrNoPerm) {
			t.Fatalf("cross-view GET %s: err = %v, want redis.ErrNoPerm", k, err)
		}
	}

	snap := m.Observer().Snapshot()
	if snap.Cluster == nil || snap.Cluster.Local == 0 || snap.Cluster.Remote == 0 {
		t.Fatalf("cluster paths = %+v, want tenant traffic on both local and remote", snap.Cluster)
	}
	if len(snap.Tenants) != 2 || snap.Tenants[0].Commands == 0 || snap.Tenants[1].Commands == 0 {
		t.Fatalf("tenant snaps = %+v, want commands on both", snap.Tenants)
	}
	if snap.Tenants[1].CapDenials == 0 {
		t.Fatalf("tenant snaps = %+v, want t1's denials counted", snap.Tenants)
	}
}

// TestClusterTenantURPCOnly pins the remote path specifically: with every
// node behind urpc, tenant-qualified keys still verify per view and the
// denial stays typed — the capability check runs at admission, not on the
// shard, so no urpc round trip ever carries an unauthorized key.
func TestClusterTenantURPCOnly(t *testing.T) {
	m, _, srv, _ := startTenantCluster(t, Config{Nodes: 2, Workers: 1, Mode: ModeURPC}, 2)
	defer srv.Shutdown()

	nc0, br0 := dialAs(t, srv, 0)
	nc1, br1 := dialAs(t, srv, 1)

	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("rk-%d", i)
		if v, _, err := roundTrip(t, nc0, br0, "SET", k, "v0"); err != nil || string(v) != "OK" {
			t.Fatalf("SET %s: %q %v", k, v, err)
		}
		if _, _, err := roundTrip(t, nc1, br1, "GET", redis.TenantKey(tenant.DemoID(0), k)); !errors.Is(err, redis.ErrNoPerm) {
			t.Fatalf("cross-view GET %s: err = %v, want redis.ErrNoPerm", k, err)
		}
	}
	snap := m.Observer().Snapshot()
	if snap.Cluster == nil || snap.Cluster.Remote == 0 || snap.Cluster.Local != 0 {
		t.Fatalf("cluster paths = %+v, want urpc-only traffic", snap.Cluster)
	}
}
