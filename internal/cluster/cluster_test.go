package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
)

// startCluster boots a small machine, a kernel, a cluster router, and the
// RESP front-end over it. The caller owns srv.Shutdown (which closes the
// router).
func startCluster(t *testing.T, cfg Config, reg *fault.Registry) (*hw.Machine, *Router, *server.Server) {
	t.Helper()
	return startClusterSrvCfg(t, cfg, reg, server.Config{})
}

// startClusterSrvCfg is startCluster with an explicit front-end config —
// the overload tests stamp per-command deadline defaults there.
func startClusterSrvCfg(t *testing.T, cfg Config, reg *fault.Registry, srvCfg server.Config) (*hw.Machine, *Router, *server.Server) {
	t.Helper()
	hwCfg := hw.SmallTest()
	if cfg.Replicate || cfg.Replication.Enabled {
		// Checkpoint shipping needs somewhere durable to put generations;
		// the small test machine has NVM but no superblock by default.
		hwCfg.Mem.NVMSuperblock = 1 << 20
	}
	m := hw.NewMachine(hwCfg)
	if reg != nil {
		m.SetFaults(reg)
	}
	sys := kernel.New(m)
	sys.EnableStats(4096)
	r, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	srv := server.NewWithBackend(sys, ln, srvCfg, r)
	return m, r, srv
}

// keyOnNode finds a key whose slot is currently owned by the wanted node.
func keyOnNode(t *testing.T, r *Router, node int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.Owner(r.Slot(k)) == node {
			return k
		}
	}
	t.Fatalf("no key found for node %d", node)
	return ""
}

func roundTrip(t *testing.T, nc net.Conn, br *bufio.Reader, args ...string) ([]byte, bool, error) {
	t.Helper()
	if _, err := nc.Write(redis.EncodeCommand(args...)); err != nil {
		t.Fatalf("write %v: %v", args, err)
	}
	return redis.ReadReply(br)
}

// TestClusterRoutesBothModes drives every node of an auto-split cluster
// through single-key commands and checks both serving paths ran and were
// attributed.
func TestClusterRoutesBothModes(t *testing.T) {
	// 2 workers + 1 remote node = 3 cores on the 4-core test machine.
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2}, nil)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	for node := 0; node < 3; node++ {
		key := keyOnNode(t, r, node)
		val := fmt.Sprintf("v\r\n%d\x00", node)
		if v, _, err := roundTrip(t, nc, br, "SET", key, val); err != nil || string(v) != "OK" {
			t.Fatalf("SET on node %d: %q %v", node, v, err)
		}
		if v, isNil, err := roundTrip(t, nc, br, "GET", key); err != nil || isNil || string(v) != val {
			t.Fatalf("GET on node %d: %q %v %v", node, v, isNil, err)
		}
		if v, _, err := roundTrip(t, nc, br, "DEL", key); err != nil || string(v) != "1" {
			t.Fatalf("DEL on node %d: %q %v", node, v, err)
		}
	}
	if obs.ClusterLocalTotal() == 0 {
		t.Error("no commands took the shared-VAS path")
	}
	if obs.ClusterRemoteTotal() == 0 {
		t.Error("no commands took the urpc path")
	}
	// Nodes 0 and 1 are local, node 2 remote — the per-node counters in
	// the snapshot must agree with the placement.
	snap := obs.Snapshot()
	if snap.Cluster == nil || len(snap.Cluster.Nodes) != 3 {
		t.Fatalf("cluster snapshot: %+v", snap.Cluster)
	}
	for i, n := range snap.Cluster.Nodes {
		local := i < 2
		if local && (n.Local == 0 || n.Remote != 0) {
			t.Errorf("node %d (local): local=%d remote=%d", i, n.Local, n.Remote)
		}
		if !local && (n.Remote == 0 || n.Local != 0) {
			t.Errorf("node %d (remote): local=%d remote=%d", i, n.Local, n.Remote)
		}
	}
}

// TestClusterMGetSpansLocalAndRemote issues one MGET whose keys hash onto a
// co-resident node and a remote node, and verifies the merged reply keeps
// key order with per-key values and nils.
func TestClusterMGetSpansLocalAndRemote(t *testing.T) {
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2}, nil)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	kLocal := keyOnNode(t, r, 0)   // shared-VAS path
	kRemote := keyOnNode(t, r, 2)  // urpc path
	kMissing := keyOnNode(t, r, 1) // never set: must come back nil

	for _, kv := range [][2]string{{kLocal, "local\r\nval"}, {kRemote, "remote\x00val"}} {
		if v, _, err := roundTrip(t, nc, br, "SET", kv[0], kv[1]); err != nil || string(v) != "OK" {
			t.Fatalf("SET %q: %q %v", kv[0], v, err)
		}
	}
	localBefore, remoteBefore := obs.ClusterLocalTotal(), obs.ClusterRemoteTotal()

	if _, err := nc.Write(redis.EncodeCommand("MGET", kRemote, kMissing, kLocal)); err != nil {
		t.Fatal(err)
	}
	vals, nils, err := redis.ReadArrayReply(br)
	if err != nil {
		t.Fatalf("MGET reply: %v", err)
	}
	if len(vals) != 3 {
		t.Fatalf("MGET returned %d values, want 3", len(vals))
	}
	if nils[0] || string(vals[0]) != "remote\x00val" {
		t.Errorf("vals[0] = %q (nil=%v), want remote value", vals[0], nils[0])
	}
	if !nils[1] {
		t.Errorf("vals[1] = %q, want nil for missing key", vals[1])
	}
	if nils[2] || string(vals[2]) != "local\r\nval" {
		t.Errorf("vals[2] = %q (nil=%v), want local value", vals[2], nils[2])
	}

	// The one command crossed both paths.
	if obs.ClusterLocalTotal() == localBefore {
		t.Error("MGET did not touch the shared-VAS path")
	}
	if obs.ClusterRemoteTotal() == remoteBefore {
		t.Error("MGET did not touch the urpc path")
	}
}

// TestClusterVASBeatsURPC holds the cluster to Figure 7's ordering: a
// command served by switching into a co-resident shard's VAS costs fewer
// worker cycles than the same command served over message passing, because
// the urpc path pays cache-line transfers and dispatch on top of mirroring
// all the server-side work into the caller's busy-wait.
func TestClusterVASBeatsURPC(t *testing.T) {
	m, _, srv := startCluster(t, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2}, nil)
	defer srv.Shutdown()

	res, err := server.RunLoad(server.LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       8,
		Pipeline:    4,
		Requests:    128,
		SetPercent:  20,
		MGetPercent: 30,
		MGetKeys:    4,
		Keys:        256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.Errors != 0 {
		t.Fatalf("load: %d mismatches, %d errors", res.Mismatches, res.Errors)
	}
	if res.MGets == 0 {
		t.Fatal("load issued no MGETs")
	}

	snap := m.Observer().Snapshot()
	if snap.Cluster == nil {
		t.Fatal("no cluster stats")
	}
	local, remote := snap.Cluster.LocalCycles, snap.Cluster.RemoteCycles
	if local.Count == 0 || remote.Count == 0 {
		t.Fatalf("cycle samples: local %d, remote %d", local.Count, remote.Count)
	}
	if local.Mean() >= remote.Mean() {
		t.Errorf("Figure 7 ordering violated: VAS mean %.0f cycles ≥ urpc mean %.0f cycles",
			local.Mean(), remote.Mean())
	}
	if snap.Cluster.URPCCallCycles.Count == 0 {
		t.Error("urpc call latency histogram empty")
	}
}

// TestClusterLossyRemote runs real load while the interconnect drops and
// delays urpc messages. The at-most-once protocol must hide the loss:
// every reply correct, retries observed, no timeouts at this loss rate.
func TestClusterLossyRemote(t *testing.T) {
	reg := fault.New(7)
	m, _, srv := startCluster(t, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2}, reg)
	defer srv.Shutdown()
	reg.Enable(fault.URPCDrop, fault.Probability(0.15))
	reg.Enable(fault.URPCDelay, fault.Probability(0.10))

	res, err := server.RunLoad(server.LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       4,
		Pipeline:    4,
		Requests:    96,
		SetPercent:  25,
		MGetPercent: 25,
		MGetKeys:    3,
		Keys:        128,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Reset()
	if res.Mismatches != 0 {
		t.Errorf("%d mismatched replies under loss", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Errorf("%d error replies under loss", res.Errors)
	}
	snap := m.Observer().Snapshot()
	if snap.URPCRetries == 0 {
		t.Error("no urpc retries recorded despite 15%% drop rate")
	}
	if snap.FaultsInjected == 0 {
		t.Error("no injected faults recorded")
	}
}

// TestClusterRemoteTimeout partitions the remote node entirely and checks
// that its keys answer with a retryable timeout error while co-resident
// keys keep being served, with the timeouts attributed to the right node.
func TestClusterRemoteTimeout(t *testing.T) {
	reg := fault.New(1)
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Mode: ModeAuto, Locals: 2}, reg)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	kLocal, kRemote := keyOnNode(t, r, 0), keyOnNode(t, r, 2)
	reg.Enable(fault.URPCDrop, fault.Always())

	var re redis.ReplyError
	_, _, err = roundTrip(t, nc, br, "SET", kRemote, "x")
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrShardTimeout) {
		t.Fatalf("partitioned SET: want SHARDTIMEOUT error reply, got %v", err)
	}
	if !redis.IsRetryableReply(re) {
		t.Fatalf("shard timeout %q not classified retryable", re)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", kLocal, "y"); err != nil || string(v) != "OK" {
		t.Fatalf("local SET during partition: %q %v", v, err)
	}
	// An MGET touching the dead node fails whole; one avoiding it works.
	_, _, err = roundTrip(t, nc, br, "MGET", kLocal, kRemote)
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrShardTimeout) {
		t.Fatalf("MGET across partition: want SHARDTIMEOUT error reply, got %v", err)
	}
	reg.Reset()

	if v, isNil, err := roundTrip(t, nc, br, "GET", kRemote); err != nil || !isNil {
		t.Fatalf("GET after heal: %q %v %v (SET must not have been applied)", v, isNil, err)
	}

	snap := m.Observer().Snapshot()
	if snap.Cluster == nil || snap.Cluster.Timeouts == 0 {
		t.Fatal("no cluster timeouts recorded")
	}
	if snap.Cluster.Nodes[2].Timeouts == 0 {
		t.Error("timeouts not attributed to the partitioned node")
	}
}

// TestClusterDrainReleasesEverything holds the cluster to the serving
// layer's drain contract: after Shutdown no goroutines survive, no urpc
// frames sit in any ring, and the kernel reaper has reclaimed every
// simulated frame the cluster allocated — worker processes, node
// processes, every shard store, every scratch heap.
func TestClusterDrainReleasesEverything(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	sys := kernel.New(m)
	sys.EnableStats(1024)
	base := m.PM.AllocatedBytes()
	before := runtime.NumGoroutine()

	r, err := New(sys, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithBackend(sys, ln, server.Config{}, r)

	// Real traffic on both paths, then an open connection mid-stream so
	// Shutdown has to unblock a parked reader.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	for node := 0; node < 3; node++ {
		key := keyOnNode(t, r, node)
		v, _, err := roundTrip(t, nc, br, "SET", key, "drain\r\nme")
		if err != nil || !bytes.Equal(v, []byte("OK")) {
			t.Fatalf("SET node %d: %q %v", node, v, err)
		}
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := r.PendingFrames(); n != 0 {
		t.Errorf("%d urpc frames still queued after drain", n)
	}
	if err := m.PM.CheckLeaks(base); err != nil {
		t.Errorf("frame leak after drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
	if err := srv.Shutdown(); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestClusterSmoke is the CI smoke scenario: a 3-shard cluster under the
// stock load generator, asserting end-to-end health and a nonzero remote
// command count (the wire actually carried traffic).
func TestClusterSmoke(t *testing.T) {
	m, _, srv := startCluster(t, Config{Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2}, nil)
	defer srv.Shutdown()

	res, err := server.RunLoad(server.LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       8,
		Pipeline:    8,
		Requests:    64,
		MGetPercent: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(8 * 64)
	if res.Commands != want {
		t.Errorf("completed %d commands, want %d", res.Commands, want)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d mismatches", res.Mismatches)
	}
	obs := m.Observer()
	if obs.ClusterRemoteTotal() == 0 {
		t.Error("no remote commands served")
	}
	if obs.ClusterLocalTotal() == 0 {
		t.Error("no local commands served")
	}
}

// replicatedConfig is the smallest replicated cluster the 4-core test
// machine can host: 2 workers + 1 remote node + the health monitor claim
// every core, and the aggressive timers keep failover inside test budgets.
func replicatedConfig() Config {
	return Config{
		Nodes: 3, Workers: 2, Mode: ModeAuto, Locals: 2,
		SegSize:        1 << 20,
		Replicate:      true,
		ShipEvery:      8,
		ShipInterval:   25 * time.Millisecond,
		ProbeInterval:  2 * time.Millisecond,
		ProbeThreshold: 3,
		DeltaLog:       256,
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterFailoverUnderLoad is the headline failover scenario: a
// replicated cluster takes pipelined SET/GET/MGET load, the remote shard
// node is crashed mid-run by the cluster.node.crash fault point, and the
// health monitor promotes its warm standby. The load must finish with zero
// verification failures and zero hard errors (commands caught mid-failover
// come back as retryable timeouts, counted busy), and a key checkpointed
// before the crash must still read back correctly from the standby.
func TestClusterFailoverUnderLoad(t *testing.T) {
	reg := fault.New(11)
	cfg := replicatedConfig()
	m, r, srv := startCluster(t, cfg, reg)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	// Seed a durable key on the remote node and write past ShipEvery so a
	// checkpoint generation carrying it lands on the standby.
	kRemote := keyOnNode(t, r, 2)
	shipsBefore := obs.ClusterShipsTotal()
	for i := 0; i <= cfg.ShipEvery; i++ {
		if v, _, err := roundTrip(t, nc, br, "SET", kRemote, "survive\r\nme"); err != nil || string(v) != "OK" {
			t.Fatalf("seed SET: %q %v", v, err)
		}
	}
	waitFor(t, "checkpoint ship", func() bool { return obs.ClusterShipsTotal() > shipsBefore })

	// Run the load, then crash the primary a beat in so the generator is
	// mid-pipeline when the range fails over.
	type loadOut struct {
		res *server.LoadResult
		err error
	}
	done := make(chan loadOut, 1)
	go func() {
		res, err := server.RunLoad(server.LoadConfig{
			Addr:        srv.Addr().String(),
			Conns:       4,
			Pipeline:    4,
			Requests:    160,
			SetPercent:  25,
			MGetPercent: 20,
			MGetKeys:    3,
			Keys:        128,
			Seed:        11,
		})
		done <- loadOut{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	reg.Enable(fault.ClusterNodeCrash, fault.OnNth(1))
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Mismatches != 0 || out.res.Errors != 0 {
		t.Fatalf("load across failover: %d mismatches, %d hard errors (busy %d)",
			out.res.Mismatches, out.res.Errors, out.res.Busy)
	}

	waitFor(t, "standby promotion", func() bool { return obs.ClusterPromotionsTotal() == 1 })
	if v, isNil, err := roundTrip(t, nc, br, "GET", kRemote); err != nil || isNil || string(v) != "survive\r\nme" {
		t.Fatalf("checkpointed key after failover: %q nil=%v err=%v", v, isNil, err)
	}

	health := r.Health()
	if len(health) != 3 {
		t.Fatalf("health reports %d nodes", len(health))
	}
	h := health[2]
	if !h.Promoted || h.Degraded || h.State != "healthy" {
		t.Fatalf("failed-over node health: %+v", h)
	}
	snap := obs.Snapshot()
	rep := snap.Cluster.Replication
	if rep == nil || rep.Ships == 0 || rep.Promotions != 1 {
		t.Fatalf("replication snapshot: %+v", rep)
	}
	// Updates may be lost in the crash window, but the loss is bounded by
	// what was actually written after the last shipped checkpoint.
	if max := out.res.Sets + uint64(cfg.ShipEvery) + 1; rep.LostUpdates > max {
		t.Errorf("%d lost updates, more than the %d post-checkpoint writes", rep.LostUpdates, max)
	}
	if snap.FaultsInjected == 0 {
		t.Error("crash fault not recorded as injected")
	}
}

// TestClusterDoubleFaultDegrades tears every checkpoint write (the paper's
// torn-write power-failure model) so no generation ever validates, then
// kills the primary: promotion finds neither an applied standby image nor a
// recoverable checkpoint, and the range must degrade to typed errors — not
// panic, and not take the rest of the key space down.
func TestClusterDoubleFaultDegrades(t *testing.T) {
	reg := fault.New(3)
	// Each checkpoint is exactly two superblock writes — payload then
	// header — and nothing else in the serving path uses mem.WriteAt, so
	// the even-hit policy tears every header: magic lands, CRC doesn't.
	reg.Enable(fault.MemWriteTorn, func(hit uint64, _ *rand.Rand) bool { return hit%2 == 0 })
	cfg := replicatedConfig()
	cfg.ShipEvery = 4
	m, r, srv := startCluster(t, cfg, reg)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	kLocal, kRemote := keyOnNode(t, r, 0), keyOnNode(t, r, 2)
	for i := 0; i < cfg.ShipEvery; i++ {
		if v, _, err := roundTrip(t, nc, br, "SET", kRemote, "doomed"); err != nil || string(v) != "OK" {
			t.Fatalf("SET: %q %v", v, err)
		}
	}
	// Both superblock slots take a torn generation before the crash.
	waitFor(t, "two failed ships", func() bool {
		snap := obs.Snapshot()
		return snap.Cluster != nil && snap.Cluster.Replication != nil &&
			snap.Cluster.Replication.ShipFailures >= 2
	})

	if err := r.KillNode(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "range degraded", func() bool {
		return r.Health()[2].State == "degraded"
	})

	var re redis.ReplyError
	_, _, err = roundTrip(t, nc, br, "GET", kRemote)
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrShardDegraded) {
		t.Fatalf("degraded GET: want SHARDDEGRADED error reply, got %v", err)
	}
	if redis.IsRetryableReply(re) {
		t.Errorf("degraded reply %q classified retryable", re)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", kLocal, "alive"); err != nil || string(v) != "OK" {
		t.Fatalf("local SET while range degraded: %q %v", v, err)
	}

	h := r.Health()[2]
	if !h.Degraded || h.Promoted {
		t.Fatalf("degraded node health: %+v", h)
	}
	if !strings.Contains(h.Detail, "no recoverable replica") {
		t.Errorf("health detail %q does not explain the failed recovery", h.Detail)
	}
	if h.LostUpdates == 0 {
		t.Error("degraded range reports no lost updates despite buffered writes")
	}
	if obs.ClusterPromotionsTotal() != 0 {
		t.Error("promotion recorded despite unrecoverable replica")
	}
}

// TestClusterReplicatedDrain extends the drain contract to the replication
// machinery: with a monitor running, ships landed, a primary crashed and
// its standby promoted, Shutdown must still reclaim every goroutine, every
// urpc frame, and every simulated frame — including the crashed process's
// orphaned store and scratch heap and the standby's segment and VASes.
func TestClusterReplicatedDrain(t *testing.T) {
	hwCfg := hw.SmallTest()
	hwCfg.Mem.NVMSuperblock = 1 << 20
	m := hw.NewMachine(hwCfg)
	sys := kernel.New(m)
	sys.EnableStats(1024)
	base := m.PM.AllocatedBytes()
	before := runtime.NumGoroutine()
	obs := m.Observer()

	cfg := replicatedConfig()
	r, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithBackend(sys, ln, server.Config{}, r)

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	for node := 0; node < 3; node++ {
		key := keyOnNode(t, r, node)
		for i := 0; i <= cfg.ShipEvery; i++ {
			v, _, err := roundTrip(t, nc, br, "SET", key, "drain\r\nme")
			if err != nil || !bytes.Equal(v, []byte("OK")) {
				t.Fatalf("SET node %d: %q %v", node, v, err)
			}
		}
	}

	// Crash the replicated primary and serve from its promoted standby, so
	// teardown has real failover debris to reclaim.
	if err := r.KillNode(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "standby promotion", func() bool { return obs.ClusterPromotionsTotal() == 1 })
	kRemote := keyOnNode(t, r, 2)
	if v, isNil, err := roundTrip(t, nc, br, "GET", kRemote); err != nil || isNil || string(v) != "drain\r\nme" {
		t.Fatalf("GET from standby: %q nil=%v err=%v", v, isNil, err)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := r.PendingFrames(); n != 0 {
		t.Errorf("%d urpc frames still queued after drain", n)
	}
	if err := m.PM.CheckLeaks(base); err != nil {
		t.Errorf("frame leak after drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
	if err := srv.Shutdown(); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestParseMode pins the flag surface.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"vas", ModeVAS, true}, {"URPC", ModeURPC, true}, {"auto", ModeAuto, true},
		{"", ModeAuto, true}, {"both", "", false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseMode(%q) = %q, %v", tc.in, got, err)
		}
	}
}

// TestTopologyPlacement pins node placement per mode.
func TestTopologyPlacement(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	sys := kernel.New(m)
	r, err := New(sys, Config{Nodes: 3, Workers: 1, Mode: ModeURPC})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	topo := r.Topology()
	if len(topo) != 3 {
		t.Fatalf("topology has %d nodes", len(topo))
	}
	var cross int
	for _, n := range topo {
		if n.Local {
			t.Errorf("node %d local in urpc mode", n.ID)
		}
		if n.CrossSocket {
			cross++
		}
	}
	// Worker on core 0 (socket 0), nodes on cores 1..3: cores 2 and 3 sit
	// on the second socket, so two channels must be cross-socket.
	if cross != 2 {
		t.Errorf("%d cross-socket nodes, want 2 on the 2x2 test machine", cross)
	}
	if s := r.String(); !strings.Contains(s, "cross socket") {
		t.Errorf("String() lacks socket placement:\n%s", s)
	}
}
