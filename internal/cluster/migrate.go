package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/urpc"
)

// migration is one in-flight slot move, published in Router.migs while the
// copy runs. Workers that route a write onto the slot serialize through mu
// and append the applied command to delta — the bounded log the engine
// replays onto the target before flipping ownership. fenced flips just
// before the table install: from then on writes get the retryable -MOVED
// while reads keep serving the still-authoritative source.
type migration struct {
	slot, src, dst int

	fenced atomic.Bool

	// mu serializes writes on the migrating slot with the delta log, so
	// the log's order is exactly the source store's apply order.
	mu       sync.Mutex
	delta    [][]string
	overflow bool
}

// record appends one applied write. Called with mu held (the worker wraps
// execute+record in one critical section). On overflow the migration is
// poisoned — the engine aborts and rolls back rather than replay a
// truncated log.
func (m *migration) record(args []string, bound int) {
	if m.overflow || len(m.delta) >= bound {
		m.overflow = true
		return
	}
	m.delta = append(m.delta, args)
}

// drain takes the buffered window, reporting whether the log overflowed.
func (m *migration) drain() ([][]string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entries, of := m.delta, m.overflow
	m.delta = nil
	return entries, of
}

// engine is the migration agent: its own process, thread and core (claimed
// lazily at the first lifecycle operation), a private urpc endpoint per
// remote node (copies must not queue behind data traffic on the workers'
// channels) and a cached client per co-resident store. All use is
// serialized by Router.lifecycleMu.
type engine struct {
	r      *Router
	proc   *core.Process
	th     *core.Thread
	coreID int

	// epMu guards eps: the engine grows the map mid-migration while
	// PendingFrames reads it from outside.
	epMu sync.Mutex
	eps  map[int]*urpc.Endpoint

	locals map[int]*redis.Client // co-resident stores, attached lazily
}

// ensureEngine lazily claims the engine's core. Caller holds lifecycleMu.
// The publication into r.eng happens under topoMu so PendingFrames can
// read the pointer safely.
func (r *Router) ensureEngine() (*engine, error) {
	if r.eng != nil {
		return r.eng, nil
	}
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, fmt.Errorf("migration engine: %w", err)
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, fmt.Errorf("migration engine: %w", err)
	}
	e := &engine{
		r: r, proc: proc, th: th, coreID: th.Core.ID,
		eps:    map[int]*urpc.Endpoint{},
		locals: map[int]*redis.Client{},
	}
	r.topoMu.Lock()
	r.eng = e
	r.topoMu.Unlock()
	return e, nil
}

func (e *engine) close() error {
	var errs error
	for _, c := range e.locals {
		if err := c.Close(); err != nil {
			errs = errors.Join(errs, err)
		}
	}
	e.proc.Exit()
	return errs
}

// epFor returns (connecting on first use) the engine's endpoint to a
// remote node.
func (e *engine) epFor(n *node) *urpc.Endpoint {
	e.epMu.Lock()
	defer e.epMu.Unlock()
	if ep := e.eps[n.id]; ep != nil {
		return ep
	}
	ep := urpc.Connect(e.r.sys.M, e.coreID, n.coreID, e.r.cfg.Slots, n.handler)
	e.eps[n.id] = ep
	return ep
}

// existingEp returns the engine's endpoint to node id without connecting.
func (e *engine) existingEp(id int) *urpc.Endpoint {
	e.epMu.Lock()
	defer e.epMu.Unlock()
	return e.eps[id]
}

// clientFor resolves how the engine reaches a node's serving store on the
// VAS fast path, if it can: a cached client for a co-resident store, a
// transient client for a promoted standby (the primary is dead; release
// closes it). A nil client means "use urpc".
func (e *engine) clientFor(n *node) (c *redis.Client, release func(), err error) {
	noop := func() {}
	if n.local {
		if c := e.locals[n.id]; c != nil {
			return c, noop, nil
		}
		c, err := redis.NewClientNamed(e.th, e.r.cfg.SegSize, n.names)
		if err != nil {
			return nil, noop, fmt.Errorf("node %d store: %w", n.id, err)
		}
		e.locals[n.id] = c
		return c, noop, nil
	}
	if n.promoted.Load() {
		c, err := redis.NewClientNamed(e.th, e.r.cfg.SegSize, n.standby)
		if err != nil {
			return nil, noop, fmt.Errorf("node %d standby: %w", n.id, err)
		}
		return c, func() { c.Close() }, nil
	}
	return nil, noop, nil
}

// callCheck runs one command on a remote node through the engine's
// endpoint and surfaces an error reply as an error.
func (e *engine) callCheck(n *node, wire []byte) error {
	resp, _, err := n.call(e.epFor(n), wire, 0)
	if err != nil {
		return err
	}
	if len(resp) > 0 && resp[0] == '-' {
		return errors.New(strings.TrimSpace(string(resp[1:])))
	}
	return nil
}

// dumpSlot reads a slot's pairs off a node: DumpSlot on the fast path,
// CLUSTER.MIGRATE (bulk gob) over urpc.
func (e *engine) dumpSlot(n *node, slot int) ([]redis.KV, error) {
	c, release, err := e.clientFor(n)
	if err != nil {
		return nil, err
	}
	defer release()
	if c != nil {
		return c.DumpSlot(slot, NumSlots)
	}
	wire := redis.EncodeCommand(migrateCommand, strconv.Itoa(slot), strconv.Itoa(NumSlots))
	resp, err := n.callBulk(e.epFor(n), wire)
	if err != nil {
		return nil, err
	}
	payload, isNil, err := redis.DecodeReply(resp)
	if err != nil {
		return nil, err
	}
	if isNil {
		return nil, fmt.Errorf("migrate: nil dump reply from node %d", n.id)
	}
	var pairs []redis.KV
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pairs); err != nil {
		return nil, fmt.Errorf("migrate decode: %w", err)
	}
	return pairs, nil
}

// importChunkBytes is the flush threshold for one CLUSTER.IMPORT request:
// the whole request must fit the urpc ring, so pairs stream in chunks
// estimated well under it.
const importChunkBytes = 4 << 10

// importPairs replays a slot's pairs into the target: direct Sets on the
// fast path, chunked CLUSTER.IMPORT commands over urpc.
func (e *engine) importPairs(n *node, slot int, pairs []redis.KV) error {
	c, release, err := e.clientFor(n)
	if err != nil {
		return err
	}
	defer release()
	if c != nil {
		for _, kv := range pairs {
			if err := c.Set(string(kv.Key), kv.Val); err != nil {
				return err
			}
		}
		return nil
	}
	for start := 0; start < len(pairs); {
		end, est := start, 0
		for end < len(pairs) && (end == start || est < importChunkBytes) {
			est += len(pairs[end].Key) + len(pairs[end].Val) + 32
			end++
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(pairs[start:end]); err != nil {
			return fmt.Errorf("import encode: %w", err)
		}
		wire := redis.EncodeCommand(importCommand, strconv.Itoa(slot), buf.String())
		if err := e.callCheck(n, wire); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// applyEntry replays one delta-log write onto the target.
func (e *engine) applyEntry(n *node, args []string) error {
	c, release, err := e.clientFor(n)
	if err != nil {
		return err
	}
	defer release()
	if c != nil {
		resp := redis.Execute(c, args)
		if len(resp) > 0 && resp[0] == '-' {
			return errors.New(strings.TrimSpace(string(resp[1:])))
		}
		return nil
	}
	return e.callCheck(n, redis.EncodeCommand(args...))
}

// cleanupSlot deletes a node's copy of a slot (the source after a flip, or
// the target after a rollback).
func (e *engine) cleanupSlot(n *node, slot int) error {
	c, release, err := e.clientFor(n)
	if err != nil {
		return err
	}
	defer release()
	if c != nil {
		_, err := c.DelSlot(slot, NumSlots)
		return err
	}
	wire := redis.EncodeCommand(cleanupCommand, strconv.Itoa(slot), strconv.Itoa(NumSlots))
	return e.callCheck(n, wire)
}

// nodeActive reports whether a node can serve its slots right now: local
// stores always, a promoted standby, or a healthy/suspect remote primary.
func nodeActive(n *node) bool {
	if n.removed.Load() {
		return false
	}
	if n.local {
		return true
	}
	if n.promoted.Load() {
		return true
	}
	if n.crashed.Load() {
		return false
	}
	switch n.curState() {
	case StateFailed, StatePromoting, StateDegraded:
		return false
	}
	return true
}

// MigrateSlot moves one placement slot to node dst while the cluster keeps
// serving:
//
//  1. publish the migration, so every write on the slot is recorded in the
//     delta log (in store order) from before the copy starts;
//  2. copy the slot's pairs off the source (checkpointed first on a
//     replicated source) and stream them into the target in ring-sized
//     chunks;
//  3. replay the delta accumulated during the copy;
//  4. fence writes (-MOVED, retryable), take the topology write lock —
//     which waits out every in-flight command, so the log is complete —
//     replay the final delta, install the slot table with ownership
//     flipped and the version bumped;
//  5. delete the source's copy (best effort — the source no longer owns
//     the slot either way).
//
// Any copy/replay failure rolls back: the target's partial copy is
// deleted, the table stays as it was, and the source remains
// authoritative. A delta-log overflow (Config.MigrationDeltaLog) aborts
// the same way rather than replay a truncated log.
func (r *Router) MigrateSlot(slot, dst int) error {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	return r.migrateSlotLocked(slot, dst)
}

func (r *Router) migrateSlotLocked(slot, dst int) error {
	if r.ctx.Err() != nil {
		return fmt.Errorf("cluster: closed")
	}
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("cluster: no slot %d", slot)
	}
	dstN := r.nodeByID(dst)
	if dstN == nil {
		return fmt.Errorf("cluster: no node %d", dst)
	}
	src := r.Owner(slot)
	if src == dst {
		return nil
	}
	// An unserving endpoint is an operational failure (the operator asked
	// for a move that cannot happen), not a malformed request: it counts
	// against the slot-move failure totals like a mid-copy abort would.
	abort := func(cause error) error {
		r.obs.ClusterSlotMoveFailed(slot, src, dst, cause.Error())
		return fmt.Errorf("cluster: migrate slot %d (%d→%d): %w", slot, src, dst, cause)
	}
	if !nodeActive(dstN) {
		return abort(fmt.Errorf("target node %d not serving", dst))
	}
	srcN := r.nodeByID(src)
	if srcN == nil || !nodeActive(srcN) {
		return abort(fmt.Errorf("source node %d not serving", src))
	}
	e, err := r.ensureEngine()
	if err != nil {
		return err
	}

	mig := &migration{slot: slot, src: src, dst: dst}
	r.migs[slot].Store(mig)
	fail := func(imported bool, cause error) error {
		r.migs[slot].Store(nil)
		if imported {
			// Best-effort rollback of the target's partial copy; the table
			// never flipped, so the source stays authoritative either way.
			_ = e.cleanupSlot(dstN, slot)
		}
		r.obs.ClusterSlotMoveFailed(slot, src, dst, cause.Error())
		return fmt.Errorf("cluster: migrate slot %d (%d→%d): %w", slot, src, dst, cause)
	}

	pairs, err := e.dumpSlot(srcN, slot)
	if err != nil {
		return fail(false, fmt.Errorf("dump: %w", err))
	}
	var moved uint64
	for _, kv := range pairs {
		moved += uint64(len(kv.Key) + len(kv.Val))
	}
	if err := e.importPairs(dstN, slot, pairs); err != nil {
		return fail(true, fmt.Errorf("import: %w", err))
	}

	// Pre-drain: shrink the delta while writes still flow, so the fenced
	// window (where writers see -MOVED) stays short.
	var replayed uint64
	for i := 0; i < 8; i++ {
		entries, overflow := mig.drain()
		if overflow {
			return fail(true, errors.New("delta log overflow"))
		}
		for _, args := range entries {
			if err := e.applyEntry(dstN, args); err != nil {
				return fail(true, fmt.Errorf("replay: %w", err))
			}
		}
		replayed += uint64(len(entries))
		if len(entries) < 16 {
			break
		}
	}

	// Fence, then take the topology write lock: acquiring it waits out
	// every in-flight command (workers hold the read side end to end), so
	// after this the delta log is final.
	mig.fenced.Store(true)
	r.topoMu.Lock()
	entries, overflow := mig.drain()
	if overflow {
		r.topoMu.Unlock()
		return fail(true, errors.New("delta log overflow"))
	}
	for _, args := range entries {
		if err := e.applyEntry(dstN, args); err != nil {
			r.topoMu.Unlock()
			return fail(true, fmt.Errorf("final replay: %w", err))
		}
	}
	replayed += uint64(len(entries))
	t := r.Table().clone()
	t.Owners[slot] = dst
	r.installTable(t)
	r.migs[slot].Store(nil)
	r.topoMu.Unlock()

	// Ownership moved: frozen views of both ends predate the flip — the
	// source's views still carry the slot's keys it no longer owns, the
	// target's lack them entirely. Fence them off the follower-read path.
	r.forks.InvalidateNode(src, "slot-migration")
	r.forks.InvalidateNode(dst, "slot-migration")

	// The flip is durable; the source's copy is garbage now. Cleanup is
	// best effort — a failure leaves dead keys on a node that no longer
	// owns the slot, which the normal path never reads.
	_ = e.cleanupSlot(srcN, slot)
	r.obs.ClusterSlotMoved(slot, src, dst, uint64(len(pairs)), moved, replayed)
	return nil
}
