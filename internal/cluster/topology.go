package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Mode places shard nodes relative to the front-end machine.
type Mode string

const (
	// ModeVAS makes every node co-resident: all commands take the
	// shared-VAS fast path (Figure 7's switching side).
	ModeVAS Mode = "vas"
	// ModeURPC makes every node remote: all commands cross urpc channels
	// (Figure 7's message-passing side).
	ModeURPC Mode = "urpc"
	// ModeAuto splits the nodes — the first Locals co-resident, the rest
	// remote — so one run exercises both paths and multi-key commands span
	// them.
	ModeAuto Mode = "auto"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(strings.ToLower(s)) {
	case ModeVAS:
		return ModeVAS, nil
	case ModeURPC:
		return ModeURPC, nil
	case ModeAuto, "":
		return ModeAuto, nil
	}
	return "", fmt.Errorf("cluster: unknown mode %q (want vas, urpc, or auto)", s)
}

// Local reports whether node i is co-resident with the front-end under
// this mode.
func (m Mode) Local(i int, cfg Config) bool {
	switch m {
	case ModeVAS:
		return true
	case ModeURPC:
		return false
	default:
		return i < cfg.Locals
	}
}

// NodeFor hashes a key onto a shard node (FNV-1a, the usual pick for short
// keys with no adversarial input).
func (r *Router) NodeFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.nodes)))
}

// NodeInfo describes one node's placement for tooling and logs.
type NodeInfo struct {
	ID          int    `json:"id"`
	Local       bool   `json:"local"`
	Core        int    `json:"core,omitempty"`         // remote nodes: the core its handler runs on
	CrossSocket bool   `json:"cross_socket,omitempty"` // remote nodes: any worker reaches it across sockets
	Store       string `json:"store"`
	Replicated  bool   `json:"replicated,omitempty"` // a warm standby shadows this node
	State       string `json:"state,omitempty"`      // remote nodes: failover state
	Promoted    bool   `json:"promoted,omitempty"`   // the standby serves this range
}

// Topology returns the cluster's node placement.
func (r *Router) Topology() []NodeInfo {
	out := make([]NodeInfo, len(r.nodes))
	for i, n := range r.nodes {
		info := NodeInfo{ID: n.id, Local: n.local, Store: n.names.Seg}
		if !n.local {
			info.Core = n.coreID
			info.Replicated = n.replicated
			info.State = n.curState().String()
			info.Promoted = n.promoted.Load()
			for _, w := range r.workers {
				if ep := w.endpoints[n.id]; ep != nil && !r.sys.M.SameSocket(w.coreID, n.coreID) {
					info.CrossSocket = true
				}
			}
		}
		out[i] = info
	}
	return out
}

// String renders the topology one node per line.
func (r *Router) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, %d workers, mode %s\n", len(r.nodes), len(r.workers), r.cfg.Mode)
	for _, n := range r.Topology() {
		if n.Local {
			fmt.Fprintf(&b, "  node %d: local (shared VAS %s)\n", n.ID, n.Store)
		} else {
			x := "same socket"
			if n.CrossSocket {
				x = "cross socket"
			}
			rep := ""
			if n.Replicated {
				rep = ", replicated"
				if n.Promoted {
					rep = ", standby promoted"
				}
				if n.State != "" && n.State != "healthy" {
					rep += ", " + n.State
				}
			}
			fmt.Fprintf(&b, "  node %d: remote on core %d (urpc, %s%s)\n", n.ID, n.Core, x, rep)
		}
	}
	return b.String()
}
