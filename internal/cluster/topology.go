package cluster

import (
	"fmt"
	"strings"
)

// Mode places shard nodes relative to the front-end machine.
type Mode string

const (
	// ModeVAS makes every node co-resident: all commands take the
	// shared-VAS fast path (Figure 7's switching side).
	ModeVAS Mode = "vas"
	// ModeURPC makes every node remote: all commands cross urpc channels
	// (Figure 7's message-passing side).
	ModeURPC Mode = "urpc"
	// ModeAuto splits the nodes — the first Locals co-resident, the rest
	// remote — so one run exercises both paths and multi-key commands span
	// them.
	ModeAuto Mode = "auto"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(strings.ToLower(s)) {
	case ModeVAS:
		return ModeVAS, nil
	case ModeURPC:
		return ModeURPC, nil
	case ModeAuto, "":
		return ModeAuto, nil
	}
	return "", fmt.Errorf("cluster: unknown mode %q (want vas, urpc, or auto)", s)
}

// Local reports whether node i is co-resident with the front-end under
// this mode.
func (m Mode) Local(i int, cfg Config) bool {
	switch m {
	case ModeVAS:
		return true
	case ModeURPC:
		return false
	default:
		return i < cfg.Locals
	}
}

// NodeInfo describes one node's placement for tooling and logs.
type NodeInfo struct {
	ID          int    `json:"id"`
	Local       bool   `json:"local"`
	Core        int    `json:"core,omitempty"`         // remote nodes: the core its handler runs on
	CrossSocket bool   `json:"cross_socket,omitempty"` // remote nodes: any worker reaches it across sockets
	Store       string `json:"store"`
	Replicated  bool   `json:"replicated,omitempty"` // a warm standby shadows this node
	State       string `json:"state,omitempty"`      // remote nodes: failover state
	Promoted    bool   `json:"promoted,omitempty"`   // the standby serves this range
	Removed     bool   `json:"removed,omitempty"`    // decommissioned by RemoveNode; owns no slots
	Slots       int    `json:"slots"`                // placement slots this node currently owns
}

// Topology returns the cluster's node placement. Safe against concurrent
// AddNode: the node list is read under the topology lock.
func (r *Router) Topology() []NodeInfo {
	r.topoMu.RLock()
	nodes := r.nodes
	workers := r.workers
	r.topoMu.RUnlock()
	table := r.Table()
	out := make([]NodeInfo, len(nodes))
	for i, n := range nodes {
		info := NodeInfo{
			ID:      n.id,
			Local:   n.local,
			Store:   n.names.Seg,
			Removed: n.removed.Load(),
			Slots:   len(table.slotsOf(n.id)),
		}
		if !n.local && !info.Removed {
			info.Core = n.coreID
			info.Replicated = n.replicated
			info.State = n.curState().String()
			info.Promoted = n.promoted.Load()
			for _, w := range workers {
				if ep := w.endpoints[n.id]; ep != nil && !r.sys.M.SameSocket(w.coreID, n.coreID) {
					info.CrossSocket = true
				}
			}
		}
		out[i] = info
	}
	return out
}

// slotRanges renders a node's owned slots as compact ranges ("0-2,9,12-14").
func slotRanges(slots []int) string {
	if len(slots) == 0 {
		return "none"
	}
	var b strings.Builder
	for i := 0; i < len(slots); {
		j := i
		for j+1 < len(slots) && slots[j+1] == slots[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", slots[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", slots[i], slots[j])
		}
		i = j + 1
	}
	return b.String()
}

// String renders the topology one node per line, with each node's slot
// ranges from the current table epoch.
func (r *Router) String() string {
	table := r.Table()
	topo := r.Topology()
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, %d workers, mode %s, slot table v%d\n",
		len(topo), len(r.workers), r.cfg.Mode, table.Version)
	for _, n := range topo {
		slots := slotRanges(table.slotsOf(n.ID))
		switch {
		case n.Removed:
			fmt.Fprintf(&b, "  node %d: removed\n", n.ID)
		case n.Local:
			fmt.Fprintf(&b, "  node %d: local (shared VAS %s), slots %s\n", n.ID, n.Store, slots)
		default:
			x := "same socket"
			if n.CrossSocket {
				x = "cross socket"
			}
			rep := ""
			if n.Replicated {
				rep = ", replicated"
				if n.Promoted {
					rep = ", standby promoted"
				}
				if n.State != "" && n.State != "healthy" {
					rep += ", " + n.State
				}
			}
			fmt.Fprintf(&b, "  node %d: remote on core %d (urpc, %s%s), slots %s\n", n.ID, n.Core, x, rep, slots)
		}
	}
	return b.String()
}
