package cluster

import (
	"errors"
	"fmt"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/urpc"
)

// AddNode spins up a new remote shard node mid-run: it claims a core,
// bootstraps a store behind a urpc handler (replicated, with a standby,
// when replication is on), connects every worker to it, and appends it to
// the topology under the write lock. The new node owns zero slots — call
// RebalanceInto (or MigrateSlot) to give it load. Returns the new node's
// id.
func (r *Router) AddNode() (int, error) {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.ctx.Err() != nil {
		return 0, fmt.Errorf("cluster: closed")
	}
	// Node ids are stable list indices; only lifecycle ops append, and
	// lifecycleMu serializes them, so the length is stable here.
	id := len(r.nodes)
	n, err := r.newNode(id, false)
	if err != nil {
		return 0, fmt.Errorf("cluster: add node %d: %w", id, err)
	}
	// Grow the per-node counters before the node can serve, so its first
	// command never races the stats install.
	r.obs.EnsureClusterNodes(id + 1)
	eps := make([]*urpc.Endpoint, len(r.workers))
	for i, w := range r.workers {
		eps[i] = urpc.Connect(r.sys.M, w.coreID, n.coreID, r.cfg.Slots, n.handler)
	}
	r.topoMu.Lock()
	r.nodes = append(r.nodes, n)
	for i, w := range r.workers {
		w.endpoints[id] = eps[i]
	}
	r.topoMu.Unlock()
	if n.replicated && r.monCtl != nil && r.mon != nil {
		// Hand the node to the monitor: it wires a probe endpoint and
		// warms the standby with an initial ship.
		select {
		case r.monCtl <- id:
		case <-r.ctx.Done():
		}
	}
	r.obs.ClusterNodeAdded(id)
	return id, nil
}

// RemoveNode drains node id — migrating every slot it owns to the
// least-loaded remaining nodes — then decommissions it: the routing entry
// is tombstoned under the topology lock, the node's process exits and its
// store (and standby, unless the standby was promoted and is still the
// range's serving copy... which drain has just emptied) is destroyed. The
// node id is never reused.
func (r *Router) RemoveNode(id int) error {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.ctx.Err() != nil {
		return fmt.Errorf("cluster: closed")
	}
	n := r.nodeByID(id)
	if n == nil {
		return fmt.Errorf("cluster: no node %d", id)
	}
	if n.local {
		return fmt.Errorf("cluster: node %d is co-resident; it cannot be removed", id)
	}
	if !nodeActive(n) {
		return fmt.Errorf("cluster: node %d is not serving; its slots cannot be drained", id)
	}
	// Drain: move every owned slot to the active node with the fewest
	// slots, recomputed per move so the drain itself stays balanced.
	for {
		slots := r.Table().slotsOf(id)
		if len(slots) == 0 {
			break
		}
		dst, err := r.leastLoadedActive(id)
		if err != nil {
			return fmt.Errorf("cluster: remove node %d: %w", id, err)
		}
		if err := r.migrateSlotLocked(slots[0], dst); err != nil {
			return fmt.Errorf("cluster: remove node %d: %w", id, err)
		}
	}
	// Tombstone under the write lock: every in-flight command has
	// finished, no slot routes here anymore, and the health/stats paths
	// skip removed nodes from now on.
	r.topoMu.Lock()
	n.removed.Store(true)
	r.topoMu.Unlock()
	// Teardown. A promoted node's primary process already died at crash
	// time; otherwise the node's own client and process go down here. No
	// worker can reach the node (it owns no slots), so this goroutine may
	// drive its thread.
	n.mu.Lock()
	if !n.crashed.Load() {
		if n.client != nil {
			if err := n.client.Close(); err != nil {
				n.mu.Unlock()
				return fmt.Errorf("cluster: remove node %d: %w", id, err)
			}
		}
		if n.proc != nil {
			n.proc.Exit()
		}
	}
	n.mu.Unlock()
	// Destroy the stores through the engine's thread. Tolerate missing
	// segments — a crashed primary's store may already be gone.
	e, err := r.ensureEngine()
	if err != nil {
		return err
	}
	var errs error
	if derr := redis.DestroyNamed(e.th, redis.ShardNames(id)); derr != nil && !errors.Is(derr, core.ErrNotFound) {
		errs = errors.Join(errs, derr)
	}
	if n.replicated {
		if derr := redis.DestroyNamed(e.th, redis.StandbyNames(id)); derr != nil && !errors.Is(derr, core.ErrNotFound) {
			errs = errors.Join(errs, derr)
		}
	}
	r.obs.ClusterNodeRemoved(id)
	if errs != nil {
		return fmt.Errorf("cluster: remove node %d: %w", id, errs)
	}
	return nil
}

// leastLoadedActive returns the active node (excluding `exclude`) owning
// the fewest slots.
func (r *Router) leastLoadedActive(exclude int) (int, error) {
	t := r.Table()
	counts := map[int]int{}
	for _, n := range r.activeNodes() {
		if n.id != exclude {
			counts[n.id] = 0
		}
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("no other active node to take the slots")
	}
	for _, owner := range t.Owners {
		if _, ok := counts[owner]; ok {
			counts[owner]++
		}
	}
	best, bestCount := -1, NumSlots+1
	for id, c := range counts {
		if c < bestCount || (c == bestCount && id < best) {
			best, bestCount = id, c
		}
	}
	return best, nil
}

// activeNodes snapshots the nodes currently able to serve.
func (r *Router) activeNodes() []*node {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	var out []*node
	for _, n := range r.nodes {
		if nodeActive(n) {
			out = append(out, n)
		}
	}
	return out
}

// RebalanceInto migrates slots onto node id until it holds a fair share
// (NumSlots / active nodes), taking each slot from the currently
// most-loaded donor. Returns how many slots moved. The usual follow-up to
// AddNode.
func (r *Router) RebalanceInto(id int) (int, error) {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.ctx.Err() != nil {
		return 0, fmt.Errorf("cluster: closed")
	}
	n := r.nodeByID(id)
	if n == nil {
		return 0, fmt.Errorf("cluster: no node %d", id)
	}
	if !nodeActive(n) {
		return 0, fmt.Errorf("cluster: node %d not serving", id)
	}
	moved := 0
	for {
		actives := r.activeNodes()
		fair := NumSlots / len(actives)
		t := r.Table()
		if len(t.slotsOf(id)) >= fair {
			return moved, nil
		}
		donor, donorCount := -1, 0
		for _, a := range actives {
			if a.id == id {
				continue
			}
			if c := len(t.slotsOf(a.id)); c > donorCount {
				donor, donorCount = a.id, c
			}
		}
		if donor < 0 || donorCount <= fair {
			return moved, nil // nothing left to take without unbalancing a donor
		}
		if err := r.migrateSlotLocked(t.slotsOf(donor)[0], id); err != nil {
			return moved, err
		}
		moved++
	}
}
