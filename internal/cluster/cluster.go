// Package cluster is the multi-machine layer: a keyspace-sharded cluster of
// simulated machines behind the serving layer's RESP front-end. The key
// space is hashed across N shard nodes, each owning its own RedisJMP store
// (§5.3). What makes the layer a SpaceJMP experiment rather than plumbing
// is HOW a shard is reached, reproducing both sides of the paper's Figure 7
// comparison inside one process:
//
//   - Co-resident ("local") shards are served on the shared-VAS fast path:
//     the router worker switches its own thread into the shard's VAS and
//     operates on the lockable segment directly. Extra keys in a multi-key
//     command cost memory accesses, not messages.
//
//   - Remote shards are reached over urpc cache-line channels: the command
//     is serialized to RESP, moved line by line to the shard node's core
//     (dearer across sockets), executed there, and the reply moved back.
//     The router's at-most-once Call survives a lossy interconnect with
//     timeout/backoff/dedup, so loss degrades latency, never consistency.
//
// Every command's worker-core cycle delta is recorded per mode in
// internal/stats, so one run yields the local-vs-remote cost distributions
// side by side.
//
// The concurrency contract is the simulator's usual one, twice over: each
// router worker owns its front-end core, and each remote node's core is
// driven only under that node's mutex — urpc handlers execute inline in the
// calling worker's goroutine, so the mutex is what keeps two workers from
// driving one node core at once.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
)

// Config sizes the cluster. Zero values take the defaults below.
type Config struct {
	// Nodes is the number of shard nodes the key space is hashed across.
	Nodes int
	// Workers is the number of router workers; each claims one simulated
	// core on the front-end machine.
	Workers int
	// Mode places the nodes: all co-resident (vas), all remote (urpc), or
	// split (auto). See Mode.
	Mode Mode
	// Locals is how many nodes are co-resident in ModeAuto (nodes
	// 0..Locals-1); 0 means half, rounded up.
	Locals int
	// QueueDepth bounds each worker's request queue.
	QueueDepth int
	// SegSize is each node's store segment size.
	SegSize uint64
	// Slots is the ring capacity of each urpc channel, in cache lines.
	Slots int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Mode == "" {
		c.Mode = ModeAuto
	}
	if c.Locals <= 0 || c.Locals > c.Nodes {
		c.Locals = (c.Nodes + 1) / 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SegSize == 0 {
		c.SegSize = 8 << 20
	}
	if c.Slots <= 0 {
		c.Slots = 256
	}
	return c
}

// New builds the cluster on an already-running system: the shard nodes
// (remote ones each claim a core and bootstrap their store behind a urpc
// handler), then the router workers (each claims a front-end core, attaches
// a client to every co-resident node's store, and connects an endpoint to
// every remote node). The Router implements server.Backend, so it plugs
// directly into server.NewWithBackend.
//
// Core budget: Workers + the number of remote nodes must not exceed the
// machine's cores; claiming past the end fails here, not at runtime.
func New(sys *core.System, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{
		sys: sys,
		obs: sys.M.Observer(),
		cfg: cfg,
	}
	r.obs.InstallClusterNodes(cfg.Nodes)
	ctrs := r.obs.InstallServerShards(cfg.Workers)

	// Workers claim the first cores so they land on the first socket(s);
	// remote nodes claim after them, so with more nodes than fit on the
	// workers' socket the placement naturally yields both URPC L and
	// URPC X channels.
	for i := 0; i < cfg.Workers; i++ {
		w, err := r.newWorker(i, ctrs[i])
		if err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		r.workers = append(r.workers, w)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := r.newNode(i, cfg.Mode.Local(i, cfg))
		if err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		r.nodes = append(r.nodes, n)
	}
	// Attach every worker to every co-resident store, and connect an
	// endpoint to every remote node. The first attachment bootstraps the
	// node's store lazily, exactly as RedisJMP clients do.
	for _, w := range r.workers {
		if err := r.wireWorker(w); err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: wiring worker %d: %w", w.id, err)
		}
	}
	// Only now do the worker goroutines start driving their cores.
	for _, w := range r.workers {
		r.workerWG.Add(1)
		go r.runWorker(w)
	}
	return r, nil
}

// teardownPartial unwinds a half-built cluster after a construction error:
// no worker goroutine is running yet, so the constructor goroutine may
// drive every thread.
func (r *Router) teardownPartial() {
	for _, w := range r.workers {
		for _, c := range w.locals {
			if c != nil {
				c.Close()
			}
		}
		w.proc.Exit()
	}
	for _, n := range r.nodes {
		if n.client != nil {
			n.client.Close()
		}
		if n.proc != nil {
			n.proc.Exit()
		}
	}
	r.destroyStores()
}

// destroyStores removes every node store that exists, through a short-lived
// admin process.
func (r *Router) destroyStores() error {
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return err
	}
	var errs error
	for i := 0; i < r.cfg.Nodes; i++ {
		err := redis.DestroyNamed(th, redis.ShardNames(i))
		if err != nil && !errors.Is(err, core.ErrNotFound) {
			errs = errors.Join(errs, fmt.Errorf("node %d store: %w", i, err))
		}
	}
	return errs
}

// Close drains the cluster: the workers finish their backlogs, close their
// clients and exit (releasing front-end cores), then the remote node
// processes exit, and finally every node store is destroyed. After Close
// the only simulated memory left is what existed before New.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		for _, w := range r.workers {
			close(w.queue)
		}
		r.workerWG.Wait()
		for _, w := range r.workers {
			if w.err != nil {
				r.closeErr = errors.Join(r.closeErr, fmt.Errorf("worker %d: %w", w.id, w.err))
			}
		}
		// No worker can call into a node anymore; this goroutine may now
		// drive the node threads for teardown.
		for _, n := range r.nodes {
			if n.client != nil {
				if err := n.client.Close(); err != nil {
					r.closeErr = errors.Join(r.closeErr, fmt.Errorf("node %d: %w", n.id, err))
				}
			}
			if n.proc != nil {
				n.proc.Exit()
			}
		}
		if err := r.destroyStores(); err != nil {
			r.closeErr = errors.Join(r.closeErr, err)
		}
	})
	return r.closeErr
}

// PendingFrames returns the urpc frames sitting unconsumed across every
// worker↔node channel pair. On a loss-free interconnect a drained cluster
// reports zero; the drain test holds it to that.
func (r *Router) PendingFrames() int {
	var n int
	for _, w := range r.workers {
		for _, ep := range w.endpoints {
			n += ep.Pending()
		}
	}
	return n
}

// Router routes RESP commands to shard nodes. It implements server.Backend.
type Router struct {
	sys *core.System
	obs *stats.Sink
	cfg Config

	workers []*worker
	nodes   []*node

	workerWG  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}
