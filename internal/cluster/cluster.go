// Package cluster is the multi-machine layer: a keyspace-sharded cluster of
// simulated machines behind the serving layer's RESP front-end. The key
// space is hashed across N shard nodes, each owning its own RedisJMP store
// (§5.3). What makes the layer a SpaceJMP experiment rather than plumbing
// is HOW a shard is reached, reproducing both sides of the paper's Figure 7
// comparison inside one process:
//
//   - Co-resident ("local") shards are served on the shared-VAS fast path:
//     the router worker switches its own thread into the shard's VAS and
//     operates on the lockable segment directly. Extra keys in a multi-key
//     command cost memory accesses, not messages.
//
//   - Remote shards are reached over urpc cache-line channels: the command
//     is serialized to RESP, moved line by line to the shard node's core
//     (dearer across sockets), executed there, and the reply moved back.
//     The router's at-most-once Call survives a lossy interconnect with
//     timeout/backoff/dedup, so loss degrades latency, never consistency.
//
// With replication on, every remote node also gets a warm standby: the
// primary's store lives in NVM, checkpoint generations are shipped over
// urpc to a standby segment/VAS pair, and a health monitor promotes the
// standby when the primary dies — the paper's "data survives the process"
// claim (§5.3) stretched across simulated machines. See DESIGN.md,
// "Replication & failover".
//
// Every command's worker-core cycle delta is recorded per mode in
// internal/stats, so one run yields the local-vs-remote cost distributions
// side by side.
//
// The concurrency contract is the simulator's usual one, twice over: each
// router worker owns its front-end core, and each remote node's core is
// driven only under that node's mutex — urpc handlers execute inline in the
// calling worker's goroutine, so the mutex is what keeps two workers from
// driving one node core at once.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fork"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
)

// Config sizes the cluster. Zero values take the defaults below.
type Config struct {
	// Nodes is the number of shard nodes the key space is hashed across.
	Nodes int
	// Workers is the number of router workers; each claims one simulated
	// core on the front-end machine.
	Workers int
	// Mode places the nodes: all co-resident (vas), all remote (urpc), or
	// split (auto). See Mode.
	Mode Mode
	// Locals is how many nodes are co-resident in ModeAuto (nodes
	// 0..Locals-1); 0 means half, rounded up.
	Locals int
	// QueueDepth bounds each worker's request queue.
	QueueDepth int
	// SegSize is each node's store segment size.
	SegSize uint64
	// Slots is the ring capacity of each urpc channel, in cache lines.
	Slots int

	// Replication configures warm standbys, checkpoint shipping and
	// failover for remote nodes. See ReplicationConfig.
	Replication ReplicationConfig

	// Overload configures overload protection: per-node circuit breakers,
	// deadline-aware dispatch, and graceful read degradation to frozen fork
	// views. See OverloadConfig.
	Overload OverloadConfig

	// MigrationDeltaLog bounds the per-slot write buffer a live slot
	// migration accumulates while copying; on overflow the migration
	// aborts and rolls back rather than lose ordered replay.
	MigrationDeltaLog int

	// Deprecated: set Replication.Enabled. Kept as an alias for one
	// release; read only when Replication is entirely zero.
	Replicate bool
	// Deprecated: set Replication.ShipEvery.
	ShipEvery int
	// Deprecated: set Replication.ShipInterval.
	ShipInterval time.Duration
	// Deprecated: set Replication.ProbeInterval.
	ProbeInterval time.Duration
	// Deprecated: set Replication.ProbeThreshold.
	ProbeThreshold int
	// Deprecated: set Replication.DeltaLog.
	DeltaLog int
}

// ReplicationConfig groups the replication and failover knobs. Enabled
// gives every remote node a warm standby replica, kept fresh by checkpoint
// shipping over urpc, and a health monitor (one more core) that fails a
// dead node's key range over to it. Requires a machine with an NVM
// superblock (mem.Config.NVMSuperblock).
type ReplicationConfig struct {
	// Enabled turns replication on.
	Enabled bool
	// ShipEvery triggers a checkpoint ship after this many buffered
	// writes on a node.
	ShipEvery int
	// ShipInterval is the periodic ship cadence (ships are skipped while
	// a node has nothing buffered).
	ShipInterval time.Duration
	// ProbeInterval is the health monitor's probe cadence.
	ProbeInterval time.Duration
	// ProbeThreshold is the consecutive failures that declare a node dead.
	ProbeThreshold int
	// DeltaLog bounds the per-node post-checkpoint write buffer; on
	// overflow the node's failover degrades to checkpoint-only and the
	// overflowed updates are reported lost.
	DeltaLog int

	// FollowerReads routes read-only commands (GET/MGET) on connections
	// that opted in via READONLY to frozen fork views of remote replicated
	// nodes, provided the freshest view is within StaleBound. Reads past
	// the bound answer -STALE; nodes with no usable view serve from the
	// primary as usual.
	FollowerReads bool
	// StaleBound is the maximum age of a frozen view a follower read may
	// be served from. Defaults to 500ms when FollowerReads is on.
	StaleBound time.Duration
}

func (c ReplicationConfig) isZero() bool {
	return c == ReplicationConfig{}
}

// OverloadConfig groups the overload-protection knobs. Breakers guard the
// data path into each remote node; DegradedReads and QueueWatermark govern
// when reads degrade to bounded-staleness frozen views instead of queueing
// behind a saturated primary. Request deadline budgets arrive per request
// (server.Request.Deadline) and need no switch here — the router honors
// them whenever they are set.
type OverloadConfig struct {
	// Breakers arms a closed→open→half-open circuit breaker per remote
	// node, fed by data-call outcomes and health-probe evidence. An open
	// breaker fails dispatches fast with retryable -SHARDTIMEOUT instead
	// of queueing doomed calls; half-open admits a single probe call whose
	// outcome recloses or reopens it.
	Breakers bool
	// BreakerThreshold is the consecutive failures that trip a breaker
	// open. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe. Default 100ms.
	BreakerCooldown time.Duration
	// DegradedReads serves overload-degraded reads to every connection,
	// not only those that opted in via READONLY. Requires replication —
	// the fork engine provides the frozen views — and clients that
	// tolerate bounded staleness.
	DegradedReads bool
	// QueueWatermark is the worker queue depth at which reads start
	// degrading to frozen views — the local-node analogue of an open
	// breaker (a deep queue is the co-resident serving path's overload
	// signal). 0 disables the watermark. With a watermark set and
	// replication on, the monitor keeps a frozen view of every local node
	// fresh on the ship cadence so there is something to degrade to.
	QueueWatermark int
}

// active reports whether any overload-protection feature is switched on.
func (c OverloadConfig) active() bool {
	return c.Breakers || c.DegradedReads || c.QueueWatermark > 0
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Mode == "" {
		c.Mode = ModeAuto
	}
	if c.Locals <= 0 || c.Locals > c.Nodes {
		c.Locals = (c.Nodes + 1) / 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SegSize == 0 {
		c.SegSize = 8 << 20
	}
	if c.Slots <= 0 {
		c.Slots = 256
	}
	if c.MigrationDeltaLog <= 0 {
		c.MigrationDeltaLog = 4096
	}
	// Fold the deprecated flat replication knobs into the nested config
	// when the caller still uses them, then default and mirror back so
	// both views agree for the alias release.
	if c.Replication.isZero() {
		c.Replication = ReplicationConfig{
			Enabled:        c.Replicate,
			ShipEvery:      c.ShipEvery,
			ShipInterval:   c.ShipInterval,
			ProbeInterval:  c.ProbeInterval,
			ProbeThreshold: c.ProbeThreshold,
			DeltaLog:       c.DeltaLog,
		}
	}
	if c.Replication.ShipEvery <= 0 {
		c.Replication.ShipEvery = 128
	}
	if c.Replication.ShipInterval <= 0 {
		c.Replication.ShipInterval = 200 * time.Millisecond
	}
	if c.Replication.ProbeInterval <= 0 {
		c.Replication.ProbeInterval = 25 * time.Millisecond
	}
	if c.Replication.ProbeThreshold <= 0 {
		c.Replication.ProbeThreshold = 3
	}
	if c.Replication.DeltaLog <= 0 {
		c.Replication.DeltaLog = 1024
	}
	if c.Replication.StaleBound <= 0 {
		c.Replication.StaleBound = 500 * time.Millisecond
	}
	if c.Overload.BreakerThreshold <= 0 {
		c.Overload.BreakerThreshold = 5
	}
	if c.Overload.BreakerCooldown <= 0 {
		c.Overload.BreakerCooldown = 100 * time.Millisecond
	}
	c.Replicate = c.Replication.Enabled
	c.ShipEvery = c.Replication.ShipEvery
	c.ShipInterval = c.Replication.ShipInterval
	c.ProbeInterval = c.Replication.ProbeInterval
	c.ProbeThreshold = c.Replication.ProbeThreshold
	c.DeltaLog = c.Replication.DeltaLog
	return c
}

// New builds the cluster on an already-running system: the shard nodes
// (remote ones each claim a core and bootstrap their store behind a urpc
// handler), then the router workers (each claims a front-end core, attaches
// a client to every co-resident node's store, and connects an endpoint to
// every remote node), then — with replication on — the health monitor. The
// Router implements server.Backend, so it plugs directly into
// server.NewWithBackend.
//
// Core budget: Workers + remote nodes (+1 for the monitor when replicating
// with any remote node) must not exceed the machine's cores; claiming past
// the end fails here, not at runtime.
func New(sys *core.System, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{
		sys: sys,
		obs: sys.M.Observer(),
		cfg: cfg,
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	r.installTable(initialTable(cfg.Nodes))
	if cfg.Replication.Enabled {
		if _, sbSize := sys.M.PM.Superblock(); sbSize == 0 {
			r.cancel()
			return nil, fmt.Errorf("cluster: replication needs an NVM superblock (mem.Config.NVMSuperblock)")
		}
		// Headroom in the channel capacities for nodes added later.
		r.shipCh = make(chan int, cfg.Nodes*4)
		r.suspectCh = make(chan int, cfg.Nodes*16)
		r.monCtl = make(chan int, cfg.Nodes)
		r.forks = fork.New(sys, r.obs)
	}
	r.obs.InstallClusterNodes(cfg.Nodes)
	r.obs.InstallClusterSlots(NumSlots)
	ctrs := r.obs.InstallServerShards(cfg.Workers)

	// Workers claim the first cores so they land on the first socket(s);
	// remote nodes claim after them, so with more nodes than fit on the
	// workers' socket the placement naturally yields both URPC L and
	// URPC X channels.
	for i := 0; i < cfg.Workers; i++ {
		w, err := r.newWorker(i, ctrs[i])
		if err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		r.workers = append(r.workers, w)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := r.newNode(i, cfg.Mode.Local(i, cfg))
		if err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		r.nodes = append(r.nodes, n)
	}
	// Attach every worker to every co-resident store, and connect an
	// endpoint to every remote node. The first attachment bootstraps the
	// node's store lazily, exactly as RedisJMP clients do.
	for _, w := range r.workers {
		if err := r.wireWorker(w); err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: wiring worker %d: %w", w.id, err)
		}
	}
	if cfg.Replication.Enabled && len(r.replicatedNodes()) > 0 {
		if err := r.newMonitor(); err != nil {
			r.teardownPartial()
			return nil, fmt.Errorf("cluster: health monitor: %w", err)
		}
	}
	// Only now do the worker and monitor goroutines start driving their
	// cores.
	for _, w := range r.workers {
		r.workerWG.Add(1)
		go r.runWorker(w)
	}
	if r.mon != nil {
		r.mgrWG.Add(1)
		go r.runMonitor()
	}
	return r, nil
}

// teardownPartial unwinds a half-built cluster after a construction error:
// no worker or monitor goroutine is running yet, so the constructor
// goroutine may drive every thread.
func (r *Router) teardownPartial() {
	r.cancel()
	for _, w := range r.workers {
		for _, c := range w.locals {
			if c != nil {
				c.Close()
			}
		}
		w.proc.Exit()
	}
	if r.mon != nil {
		r.mon.proc.Exit()
	}
	for _, n := range r.nodes {
		if n.client != nil {
			n.client.Close()
		}
		if n.proc != nil {
			n.proc.Exit()
		}
	}
	r.destroyStores()
}

// destroyStores removes every node store (and standby replica) that exists,
// through a short-lived admin process, and frees the scratch heaps orphaned
// by crashed node processes — the reaper only reclaims private segments,
// and a crashed client's scratch heap is a named global one.
func (r *Router) destroyStores() error {
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return err
	}
	var errs error
	// Iterate the actual node list, not cfg.Nodes: AddNode grows it past
	// the configured size, and removed nodes' stores (already destroyed at
	// removal) fall through the ErrNotFound tolerance.
	for _, n := range r.nodes {
		err := redis.DestroyNamed(th, redis.ShardNames(n.id))
		if err != nil && !errors.Is(err, core.ErrNotFound) {
			errs = errors.Join(errs, fmt.Errorf("node %d store: %w", n.id, err))
		}
		err = redis.DestroyNamed(th, redis.StandbyNames(n.id))
		if err != nil && !errors.Is(err, core.ErrNotFound) {
			errs = errors.Join(errs, fmt.Errorf("node %d standby: %w", n.id, err))
		}
	}
	for _, n := range r.nodes {
		if n.proc == nil || !n.crashed.Load() {
			continue
		}
		if sid, err := th.SegFind(redis.ScratchName(n.names, n.proc.PID)); err == nil {
			if ferr := th.SegFree(sid); ferr != nil {
				errs = errors.Join(errs, fmt.Errorf("node %d scratch: %w", n.id, ferr))
			}
		}
	}
	return errs
}

// closeForks releases every outstanding frozen view through a short-lived
// admin process, exactly as destroyStores does for the stores themselves.
// Runs after the workers exited (their cores are free to claim, and no
// frozen-view attachments remain) and before destroyStores (a frozen view
// pins its live object as a COW parent; releasing first keeps the
// live-store teardown a plain free).
func (r *Router) closeForks() error {
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return err
	}
	return r.forks.Close(th)
}

// Close drains the cluster: the monitor stops (its timers die with the
// router context), the workers finish their backlogs, close their clients
// and exit (releasing front-end cores), then the migration engine and the
// remote node processes exit, and finally every node store is destroyed.
// After Close the only simulated memory left is what existed before New.
// The lifecycle lock is taken first, so an in-flight AddNode/RemoveNode/
// MigrateSlot finishes (or fails) before teardown starts.
func (r *Router) Close() error {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	r.closeOnce.Do(func() {
		r.cancel()
		r.mgrWG.Wait()
		for _, w := range r.workers {
			close(w.queue)
		}
		r.workerWG.Wait()
		for _, w := range r.workers {
			if w.err != nil {
				r.closeErr = errors.Join(r.closeErr, fmt.Errorf("worker %d: %w", w.id, w.err))
			}
		}
		if r.eng != nil {
			if err := r.eng.close(); err != nil {
				r.closeErr = errors.Join(r.closeErr, fmt.Errorf("migration engine: %w", err))
			}
			r.eng = nil
		}
		// Workers have detached from every frozen view; release them all
		// before the stores they were forked from are destroyed. An admin
		// thread drives the teardown — node threads may be dead from
		// crash injection.
		if r.forks != nil {
			if err := r.closeForks(); err != nil {
				r.closeErr = errors.Join(r.closeErr, fmt.Errorf("fork engine: %w", err))
			}
		}
		// No worker can call into a node anymore; this goroutine may now
		// drive the node threads for teardown. Crashed processes are
		// already gone — the reaper ran at crash time — and removed nodes
		// were torn down at removal.
		for _, n := range r.nodes {
			if n.crashed.Load() || n.removed.Load() {
				continue
			}
			if n.client != nil {
				if err := n.client.Close(); err != nil {
					r.closeErr = errors.Join(r.closeErr, fmt.Errorf("node %d: %w", n.id, err))
				}
			}
			if n.proc != nil {
				n.proc.Exit()
			}
		}
		if err := r.destroyStores(); err != nil {
			r.closeErr = errors.Join(r.closeErr, err)
		}
	})
	return r.closeErr
}

// PendingFrames returns the urpc frames sitting unconsumed across every
// channel into each remote node — the workers' data endpoints, the
// monitor's probe endpoints and the migration engine's copy endpoints. On
// a loss-free interconnect a drained cluster reports zero; the drain test
// holds it to that. Safe to call while the cluster serves: every channel
// into a node is only driven under that node's mutex, which this takes per
// node, and the node/endpoint lists are read under the topology lock (the
// monitor's endpoint map is additionally guarded per node: the monitor
// only grows it before the node's first probe, under monCtl handling).
func (r *Router) PendingFrames() int {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	var total int
	for _, n := range r.nodes {
		if n.local || n.removed.Load() {
			continue
		}
		n.mu.Lock()
		for _, w := range r.workers {
			if ep := w.endpoints[n.id]; ep != nil {
				total += ep.Pending()
			}
		}
		if r.mon != nil {
			if ep := r.mon.epFor(n.id); ep != nil {
				total += ep.Pending()
			}
		}
		if r.eng != nil {
			if ep := r.eng.existingEp(n.id); ep != nil {
				total += ep.Pending()
			}
		}
		n.mu.Unlock()
	}
	return total
}

// Router routes RESP commands to shard nodes. It implements server.Backend,
// server.ClusterStatus and Placement.
type Router struct {
	sys *core.System
	obs *stats.Sink
	cfg Config

	workers []*worker
	nodes   []*node // append-only; grown by AddNode under topoMu
	mon     *monitor

	// forks manages the frozen COW views behind non-blocking checkpoint
	// ships and follower reads. Nil when replication is off — every method
	// tolerates the nil receiver.
	forks *fork.Engine

	// table is the current slot-table epoch (see placement.go). Replaced
	// wholesale under topoMu; read lock-free for Owner/Table.
	table atomic.Pointer[SlotTable]

	// migs holds the in-flight migration per slot (nil when none). A
	// worker that routes a write onto a migrating slot serializes through
	// the migration's mutex so the delta log matches store order.
	migs [NumSlots]atomic.Pointer[migration]

	// eng is the lazily built migration engine (one core, claimed at the
	// first lifecycle operation). Guarded by lifecycleMu for mutation and
	// published under topoMu so PendingFrames can read it.
	eng *engine

	// lifecycleMu serializes cluster lifecycle operations — AddNode,
	// RemoveNode, MigrateSlot, Close — against each other.
	lifecycleMu sync.Mutex

	// ctx is the router's lifetime: the monitor's timers and waits hang
	// off it, so Close cancels them instead of leaking them.
	ctx    context.Context
	cancel context.CancelFunc

	// topoMu orders routing-entry flips (promotions, slot-table installs,
	// node appends) against the workers' command execution: a worker holds
	// the read side for a whole command, so a writer that holds the write
	// side has waited out every in-flight command.
	topoMu sync.RWMutex

	shipCh    chan int // monitor pokes: write-count ship triggers
	suspectCh chan int // monitor pokes: data-path timeout evidence
	monCtl    chan int // monitor pokes: wire a probe endpoint to a new node

	workerWG  sync.WaitGroup
	mgrWG     sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}
