package cluster

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"spacejmp/internal/fault"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
)

// TestClusterBreakerTimeoutStorm drives a deterministic timeout storm into
// the remote node (every urpc frame dropped, seeded registry) and walks the
// breaker through its whole life: closed while the first calls burn full
// retry ladders, open once the threshold trips (subsequent writes shed fast
// without touching the wire), half-open after the fault heals and the
// cooldown elapses, closed again when the probe call succeeds.
func TestClusterBreakerTimeoutStorm(t *testing.T) {
	reg := fault.New(1)
	cfg := Config{
		Nodes: 3, Workers: 1, Mode: ModeAuto, Locals: 2,
		Overload: OverloadConfig{
			Breakers: true, BreakerThreshold: 3,
			BreakerCooldown: 50 * time.Millisecond,
		},
	}
	m, r, srv := startCluster(t, cfg, reg)
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	kRemote := keyOnNode(t, r, 2)
	reg.Enable(fault.URPCDrop, fault.Always())

	// Threshold failures: each burns a full retry ladder and answers
	// -SHARDTIMEOUT; the breaker counts them but stays closed until the
	// last one trips it.
	var re redis.ReplyError
	for i := 0; i < 3; i++ {
		_, _, err := roundTrip(t, nc, br, "SET", kRemote, "x")
		if !errors.As(err, &re) || !errors.Is(re, redis.ErrShardTimeout) {
			t.Fatalf("storm SET %d: want SHARDTIMEOUT, got %v", i, err)
		}
	}
	if got := obs.ClusterBreakerOpensTotal(); got != 1 {
		t.Fatalf("breaker opens after threshold = %d, want 1", got)
	}

	// Open: the next write sheds before the wire — no new retries charged.
	retriesAtTrip := obs.Snapshot().URPCRetries
	_, _, err = roundTrip(t, nc, br, "SET", kRemote, "x")
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrShardTimeout) {
		t.Fatalf("shed SET: want SHARDTIMEOUT, got %v", err)
	}
	if !redis.IsRetryableReply(re) {
		t.Fatalf("shed reply %q not classified retryable", re)
	}
	snap := obs.Snapshot()
	if snap.URPCRetries != retriesAtTrip {
		t.Errorf("shed dispatch burned urpc retries: %d -> %d", retriesAtTrip, snap.URPCRetries)
	}
	if snap.Cluster == nil || snap.Cluster.Overload == nil {
		t.Fatal("no overload snapshot despite breaker activity")
	}
	if snap.Cluster.Overload.Shed == 0 {
		t.Error("no shed dispatches recorded")
	}
	if snap.Cluster.Overload.BreakerOpens != 1 {
		t.Errorf("snapshot breaker opens = %d, want 1", snap.Cluster.Overload.BreakerOpens)
	}

	// Heal the interconnect and let the cooldown elapse: the next write is
	// admitted as the half-open probe, succeeds, and recloses the breaker.
	reg.Reset()
	time.Sleep(60 * time.Millisecond)
	if v, _, err := roundTrip(t, nc, br, "SET", kRemote, "y"); err != nil || string(v) != "OK" {
		t.Fatalf("probe SET after heal: %q %v", v, err)
	}
	snap = obs.Snapshot()
	if snap.Cluster.Overload.BreakerCloses != 1 {
		t.Errorf("snapshot breaker closes = %d, want 1", snap.Cluster.Overload.BreakerCloses)
	}
	if v, isNil, err := roundTrip(t, nc, br, "GET", kRemote); err != nil || isNil || string(v) != "y" {
		t.Fatalf("GET after reclose: %q %v %v", v, isNil, err)
	}
}

// TestClusterDeadlineBudget pins the deadline-budget contract end to end: a
// default budget smaller than one urpc dispatch makes the router refuse
// every remote hop with a typed retryable -DEADLINE (local keys keep
// serving — their path needs no dispatch reservation), an MGET fanning out
// across local and remote nodes dies at the remote group instead of
// queueing doomed work, and a connection raising its budget with the
// DEADLINE prefix command gets the remote path back.
func TestClusterDeadlineBudget(t *testing.T) {
	cfg := Config{Nodes: 3, Workers: 1, Mode: ModeAuto, Locals: 2}
	m, r, srv := startClusterSrvCfg(t, cfg, nil, server.Config{
		// Less than one urpc dispatch reservation (DefaultTimeoutCycles
		// 1<<14): every remote hop is refused before it starts.
		DeadlineCycles: 8000,
	})
	defer srv.Shutdown()
	obs := m.Observer()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	kLocal, kRemote := keyOnNode(t, r, 0), keyOnNode(t, r, 2)

	// Local keys serve inside the budget's reach.
	if v, _, err := roundTrip(t, nc, br, "SET", kLocal, "l"); err != nil || string(v) != "OK" {
		t.Fatalf("local SET under deadline: %q %v", v, err)
	}

	// A remote hop cannot be afforded: typed, retryable refusal.
	var re redis.ReplyError
	_, _, err = roundTrip(t, nc, br, "SET", kRemote, "x")
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrDeadline) {
		t.Fatalf("remote SET under tiny deadline: want DEADLINE, got %v", err)
	}
	if !redis.IsRetryableReply(re) {
		t.Fatalf("deadline reply %q not classified retryable", re)
	}

	// MGET fan-out spanning both placements dies at the remote group.
	_, _, err = roundTrip(t, nc, br, "MGET", kLocal, kRemote)
	if !errors.As(err, &re) || !errors.Is(re, redis.ErrDeadline) {
		t.Fatalf("spanning MGET under tiny deadline: want DEADLINE, got %v", err)
	}
	snap := obs.Snapshot()
	if snap.Cluster == nil || snap.Cluster.Overload == nil {
		t.Fatal("no overload snapshot despite deadline refusals")
	}
	if got := snap.Cluster.Overload.DeadlineExpired; got < 2 {
		t.Errorf("deadline expirations = %d, want >= 2", got)
	}
	if snap.Cluster.Overload.BudgetRemaining.Count == 0 {
		t.Error("budget-remaining histogram never observed a request")
	}

	// The connection raises its own budget: remote serving resumes.
	if v, _, err := roundTrip(t, nc, br, "DEADLINE", "100"); err != nil || string(v) != "OK" {
		t.Fatalf("DEADLINE 100: %q %v", v, err)
	}
	if v, _, err := roundTrip(t, nc, br, "SET", kRemote, "x"); err != nil || string(v) != "OK" {
		t.Fatalf("remote SET with raised deadline: %q %v", v, err)
	}
	if _, err := nc.Write(redis.EncodeCommand("MGET", kLocal, kRemote)); err != nil {
		t.Fatal(err)
	}
	if vals, _, err := redis.ReadArrayReply(br); err != nil || len(vals) != 2 {
		t.Fatalf("spanning MGET with raised deadline: %v %v", vals, err)
	}

	// The SET refused under the tiny budget must not have been applied:
	// deadline refusal happens before dispatch, not after.
	if v, _, err := roundTrip(t, nc, br, "DEADLINE", "0"); err != nil || string(v) != "OK" {
		t.Fatalf("DEADLINE 0: %q %v", v, err)
	}
	if v, isNil, err := roundTrip(t, nc, br, "GET", kRemote); err != nil || isNil || string(v) != "x" {
		t.Fatalf("GET after deadline dance: %q %v %v", v, isNil, err)
	}
}
