package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fork"
	"spacejmp/internal/overload"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
)

// worker is one router worker: a goroutine owning a front-end core (via its
// Thread), a RedisJMP client on every co-resident node's store, and a urpc
// endpoint to every remote node. Only this goroutine drives the thread; the
// endpoints' inline handlers drive node cores, serialized by each node's
// mutex.
type worker struct {
	id    int
	queue chan *server.Request
	ctr   *stats.ShardCounters

	proc   *core.Process
	th     *core.Thread
	coreID int

	locals    map[int]*redis.Client  // co-resident nodes, by node id
	endpoints map[int]*urpc.Endpoint // remote nodes, by node id
	standbys  map[int]*redis.Client  // promoted standbys, attached lazily
	frozen    map[int]*frozenReader  // follower-read attachments, by node id
	err       error                  // first teardown error, read after workerWG.Wait

	// bud is the in-flight request's deadline budget, armed against this
	// worker's core cycle counter when execution starts. Only this
	// worker's goroutine touches it — one request at a time.
	bud overload.Budget
}

// frozenReader is one worker's attachment to a node's current frozen fork
// view: the VAS handle and a store bound inside it. Superseded or
// invalidated views are detached lazily on the next follower read, and
// unconditionally at worker teardown.
type frozenReader struct {
	view  *fork.View
	h     core.Handle
	store *redis.Store
}

// get reads one key from the frozen view: switch in, walk the table, switch
// out. The frozen segment is not lockable, so unlike the live read VAS no
// shared lock is taken — the frames are immutable.
func (f *frozenReader) get(th *core.Thread, key string) ([]byte, bool, error) {
	if err := th.VASSwitch(f.h); err != nil {
		return nil, false, err
	}
	val, ok, err := f.store.Get([]byte(key))
	if serr := th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// mget reads a key group on one switch into the frozen view — the same
// one-switch-many-walks fast path the live MGET uses, minus the lock.
func (f *frozenReader) mget(th *core.Thread, keys []string) ([][]byte, error) {
	if err := th.VASSwitch(f.h); err != nil {
		return nil, err
	}
	vals := make([][]byte, len(keys))
	var err error
	for i, k := range keys {
		var v []byte
		var ok bool
		if v, ok, err = f.store.Get([]byte(k)); err != nil {
			break
		}
		if ok {
			vals[i] = v
		}
	}
	if serr := th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	return vals, nil
}

func (r *Router) newWorker(id int, ctr *stats.ShardCounters) (*worker, error) {
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	return &worker{
		id:        id,
		queue:     make(chan *server.Request, r.cfg.QueueDepth),
		ctr:       ctr,
		proc:      proc,
		th:        th,
		coreID:    th.Core.ID,
		locals:    map[int]*redis.Client{},
		endpoints: map[int]*urpc.Endpoint{},
		standbys:  map[int]*redis.Client{},
		frozen:    map[int]*frozenReader{},
	}, nil
}

// wireWorker attaches the worker to every node: a client per co-resident
// store (the first attachment bootstraps it), an endpoint per remote node.
func (r *Router) wireWorker(w *worker) error {
	for _, n := range r.nodes {
		if n.local {
			c, err := redis.NewClientNamed(w.th, r.cfg.SegSize, n.names)
			if err != nil {
				return fmt.Errorf("node %d store: %w", n.id, err)
			}
			w.locals[n.id] = c
		} else {
			w.endpoints[n.id] = urpc.Connect(r.sys.M, w.coreID, n.coreID, r.cfg.Slots, n.handler)
		}
	}
	return nil
}

// runWorker drains the queue until it closes, then detaches from every
// co-resident store (and any promoted standby it attached) and exits the
// process.
func (r *Router) runWorker(w *worker) {
	defer r.workerWG.Done()
	for req := range w.queue {
		w.ctr.Command()
		req.Finish(r.exec(w, req))
		r.obs.ServerCommand(uint64(time.Since(req.Start).Nanoseconds()))
	}
	for _, fr := range w.frozen {
		if err := w.th.VASDetach(fr.h); err != nil && w.err == nil {
			w.err = err
		}
	}
	for _, c := range w.locals {
		if err := c.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	for _, c := range w.standbys {
		if err := c.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	w.proc.Exit()
}

// Bind stripes the connection onto a worker (server.Backend).
func (r *Router) Bind(connID uint64) uint64 {
	w := r.workers[int(connID)%len(r.workers)]
	w.ctr.Conn()
	return uint64(w.id)
}

// Submit enqueues the request on the connection's worker, failing fast when
// its queue is full (server.Backend).
func (r *Router) Submit(connID uint64, req *server.Request) bool {
	w := r.workers[int(connID)%len(r.workers)]
	select {
	case w.queue <- req:
		d := len(w.queue)
		w.ctr.QueueDepth(d)
		r.obs.ServerQueue(d)
		return true
	default:
		w.ctr.Busy()
		return false
	}
}

// exec charges the network edge, routes the command, charges the reply's
// way out. The cycle deltas recorded per mode sit between the two edge
// charges, so they compare the serving paths themselves. A request that
// carries a deadline has its cycle budget armed against this worker's core
// here — every cycle the worker burns on its behalf drains it — and the
// remaining allowance at completion feeds the budget histogram.
func (r *Router) exec(w *worker, req *server.Request) []byte {
	w.bud = overload.Arm(req.Deadline, w.th.Core.Cycles())
	args := req.Args
	var n int
	for _, a := range args {
		n += len(a)
	}
	w.th.Core.AddCycles(server.EdgeCycles(n))
	resp := r.route(w, args, req.Readonly)
	w.th.Core.AddCycles(server.EdgeCycles(len(resp)))
	if w.bud.Active() {
		r.obs.ClusterBudgetRemaining(w.bud.Remaining(w.th.Core.Cycles()))
	}
	return resp
}

// route sends single-key commands to the node owning their key's slot and
// fans multi-key commands out per owner; store-less commands run in place.
// Keyed commands hold the topology read lock end to end, so each command
// executes against one consistent slot-table epoch and node list — a slot
// flip or node append waits out every in-flight command before it lands.
func (r *Router) route(w *worker, args []string, readonly bool) []byte {
	if len(args) == 0 {
		return redis.EncodeError("empty command")
	}
	switch strings.ToUpper(args[0]) {
	case "GET", "SET", "DEL":
		if len(args) < 2 {
			return redis.EncodeWrongArity(args[0])
		}
		r.topoMu.RLock()
		defer r.topoMu.RUnlock()
		return r.exec1(w, args, readonly)
	case "MGET":
		if len(args) < 2 {
			return redis.EncodeWrongArity(args[0])
		}
		r.topoMu.RLock()
		defer r.topoMu.RUnlock()
		return r.mget(w, args[1:], readonly)
	case "CLUSTER":
		// Read-only introspection off the published table epoch; must not
		// take topoMu here (Topology takes its own read lock, and nesting
		// read locks around a waiting writer self-deadlocks).
		return r.clusterCommand(args[1:])
	default:
		return redis.Execute(nil, args) // PING, ECHO, unknown
	}
}

// path resolves how worker w reaches node n right now: a client for the
// VAS fast path (co-resident store, or a promoted standby), an endpoint
// for urpc, or a ready-made error reply when the range is fenced
// (crashed/failing: retryable timeout) or degraded (hard error). The
// caller holds the topology read lock — the promoted flip in promote is
// the failover's linearization point.
func (r *Router) path(w *worker, n *node) (*redis.Client, *urpc.Endpoint, []byte) {
	if n.local {
		return w.locals[n.id], nil, nil
	}
	promoted := n.promoted.Load()
	st := n.curState()
	if promoted {
		c, err := w.standbyClient(r, n)
		if err != nil {
			return nil, nil, redis.EncodeError("standby attach: " + err.Error())
		}
		return c, nil, nil
	}
	switch st {
	case StateDegraded:
		cause := "no recoverable replica"
		if p := n.cause.Load(); p != nil {
			cause = *p
		}
		return nil, nil, redis.EncodeShardDegraded(n.id, cause)
	case StateFailed, StatePromoting:
		r.obs.ClusterTimeout(n.id)
		return nil, nil, redis.EncodeShardTimeout(n.id)
	}
	if n.crashed.Load() {
		// Fenced before the call: don't burn a full retry ladder against
		// a node already known dead.
		r.obs.ClusterTimeout(n.id)
		r.noteSuspect(n)
		return nil, nil, redis.EncodeShardTimeout(n.id)
	}
	ep := w.endpoints[n.id]
	// Deadline: refuse a dispatch the remaining budget cannot cover. One
	// timeout window is the floor — a call that cannot even ride out its
	// first busy-wait is doomed work, better failed fast and retried with
	// a fresh budget.
	if w.bud.Active() {
		if rem := w.bud.Remaining(w.th.Core.Cycles()); rem < ep.TimeoutCycles {
			r.obs.ClusterDeadlineExpired()
			return nil, nil, redis.EncodeDeadline(fmt.Sprintf(
				"node %d: %d cycles left, dispatch needs %d, retry", n.id, rem, ep.TimeoutCycles))
		}
	}
	// Circuit breaker: an open breaker sheds the dispatch immediately with
	// the same retryable refusal a timed-out call would earn — minus the
	// timeout. Every admission (including the half-open probe) flows into
	// n.call, whose outcome feeds back via noteOutcome.
	if n.breaker != nil {
		if ok, _ := n.breaker.Allow(); !ok {
			r.obs.ClusterShed(n.id)
			return nil, nil, redis.EncodeShardTimeout(n.id)
		}
	}
	return nil, ep, nil
}

// callBudget returns the cycle cap to hand a remote call: the in-flight
// request's remaining allowance, floored at 1 so an armed budget that
// raced to zero between path's refusal check and the dispatch still caps
// the call (0 means unlimited to urpc.CallBudget).
func (w *worker) callBudget() uint64 {
	if !w.bud.Active() {
		return 0
	}
	rem := w.bud.Remaining(w.th.Core.Cycles())
	if rem == 0 {
		rem = 1
	}
	return rem
}

// degradedRead reports whether reads of node n should degrade to its
// frozen fork view right now: the caller must be eligible (the connection
// opted into bounded staleness via READONLY, or the cluster-wide
// DegradedReads mode covers everyone) and the node must look overloaded —
// its breaker open or half-open, or this worker's queue past the
// watermark (the co-resident serving path's saturation signal). This is
// what extends follower reads to local nodes: followerView waives its
// remote-replicated gate for a degraded read.
func (r *Router) degradedRead(w *worker, n *node, readonly bool) bool {
	if r.forks == nil {
		return false
	}
	oc := r.cfg.Overload
	if !readonly && !oc.DegradedReads {
		return false
	}
	if n.breaker != nil {
		if st := n.breaker.State(); st == overload.Open || st == overload.HalfOpen {
			return true
		}
	}
	return oc.QueueWatermark > 0 && len(w.queue) >= oc.QueueWatermark
}

// standbyClient lazily attaches this worker to node n's promoted standby.
// Only reached when promoted is set, which guarantees the standby store
// exists — NewClientNamed must find it, never bootstrap an empty one.
func (w *worker) standbyClient(r *Router, n *node) (*redis.Client, error) {
	if c := w.standbys[n.id]; c != nil {
		return c, nil
	}
	c, err := redis.NewClientNamed(w.th, r.cfg.SegSize, n.standby)
	if err != nil {
		return nil, err
	}
	w.standbys[n.id] = c
	return c, nil
}

// exec1 serves one single-key command on the node owning its slot. Caller
// holds the topology read lock. A write that lands on a migrating slot
// serializes through the migration's mutex — executed on the source and
// recorded in the delta log as one atomic step, so replay order on the
// target matches store order on the source exactly. Once the migration is
// fenced (the flip is imminent), writes get the retryable -MOVED; reads
// keep serving from the still-authoritative source until the flip, so no
// slot ever goes dark.
func (r *Router) exec1(w *worker, args []string, readonly bool) []byte {
	slot := r.Slot(args[1])
	nid := r.Owner(slot)
	var isWrite bool
	switch strings.ToUpper(args[0]) {
	case "SET", "DEL":
		isWrite = true
	}
	if !isWrite {
		n := r.nodes[nid]
		if degraded := r.degradedRead(w, n, readonly); readonly || degraded {
			if resp, served := r.followerGet(w, n, args[1], degraded); served {
				return resp
			}
		}
	}
	if mig := r.migs[slot].Load(); mig != nil && isWrite {
		if mig.fenced.Load() {
			r.obs.ClusterMovedRetry()
			return redis.EncodeMoved(slot, mig.dst)
		}
		mig.mu.Lock()
		defer mig.mu.Unlock()
		if mig.fenced.Load() { // fence raced the lock
			r.obs.ClusterMovedRetry()
			return redis.EncodeMoved(slot, mig.dst)
		}
		resp := r.execOn(w, nid, args)
		if len(resp) > 0 && resp[0] != '-' {
			mig.record(args, r.cfg.MigrationDeltaLog)
		}
		return resp
	}
	return r.execOn(w, nid, args)
}

// execOn runs one command on node nid, local or remote.
func (r *Router) execOn(w *worker, nid int, args []string) []byte {
	n := r.nodes[nid]
	c, ep, errReply := r.path(w, n)
	if errReply != nil {
		return errReply
	}
	if c != nil {
		before := w.th.Core.Cycles()
		resp := redis.Execute(c, args)
		r.obs.ClusterLocal(nid, w.th.Core.Cycles()-before)
		return resp
	}
	wire := redis.EncodeCommand(args...)
	before := w.th.Core.Cycles()
	resp, callCycles, err := n.call(ep, wire, w.callBudget())
	total := w.th.Core.Cycles() - before
	n.noteOutcome(err)
	if err != nil {
		return r.remoteError(nid, err)
	}
	r.obs.ClusterRemote(nid, total)
	r.obs.ClusterURPCCall(callCycles)
	r.bufferWrite(n, args, resp)
	return resp
}

// bufferWrite records a successfully applied remote write in the node's
// delta log (the post-checkpoint tail a promotion replays) and pokes the
// monitor when the window crosses the ship trigger. The append happens
// after the node's mutex is released, so an entry can land just after a
// concurrent ship truncated the window — harmless, because SET/DEL replay
// is idempotent.
func (r *Router) bufferWrite(n *node, args []string, resp []byte) {
	if !n.replicated || len(resp) == 0 || resp[0] == '-' {
		return
	}
	switch strings.ToUpper(args[0]) {
	case "SET", "DEL":
	default:
		return
	}
	if n.recordDelta(args, r.cfg.Replication.DeltaLog, r.cfg.Replication.ShipEvery) && r.shipCh != nil {
		select {
		case r.shipCh <- n.id:
		default:
		}
	}
}

// followerView returns the frozen view a follower read of node n may serve
// from. Three outcomes: a valid view within the staleness bound (serve it);
// a -STALE reply when the freshest view exceeds the bound (the explicit
// contract of READONLY — the client asked for bounded staleness and the
// bound cannot be met); or neither, when the node has no usable view at all
// (never forked, invalidated, promoted) — those reads fall through to the
// primary, which is always fresh.
//
// degraded marks an overload-degraded read: the node's breaker is open or
// the worker is saturated, and the caller is eligible for stale serving.
// It waives the plain path's gates — the FollowerReads switch and the
// remote-replicated requirement — so local saturated nodes degrade to
// their monitor-refreshed views exactly as remote ones do, within the same
// staleness bound.
func (r *Router) followerView(n *node, degraded bool) (*fork.View, []byte) {
	if n.promoted.Load() {
		return nil, nil
	}
	if !degraded && (!r.cfg.Replication.FollowerReads || n.local || !n.replicated) {
		return nil, nil
	}
	v := r.forks.Current(n.id)
	if v == nil {
		return nil, nil
	}
	bound := r.cfg.Replication.StaleBound
	if age := v.Age(); age > bound {
		r.obs.ClusterStaleRejected()
		return nil, redis.EncodeStale(fmt.Sprintf("node %d view age %s exceeds bound %s",
			n.id, age.Truncate(time.Millisecond), bound))
	}
	return v, nil
}

// followerGet serves one GET from node n's frozen view when the staleness
// bound allows. served=false falls through to the primary path.
func (r *Router) followerGet(w *worker, n *node, key string, degraded bool) (resp []byte, served bool) {
	v, stale := r.followerView(n, degraded)
	if stale != nil {
		return stale, true
	}
	if v == nil {
		return nil, false
	}
	fr := w.frozenReaderFor(r, n.id, v)
	if fr == nil {
		return nil, false
	}
	val, ok, err := fr.get(w.th, key)
	if err != nil {
		return nil, false
	}
	r.obs.ClusterFollowerRead()
	if degraded {
		r.obs.ClusterDegradedRead()
	}
	if !ok {
		return redis.EncodeBulk(nil), true
	}
	return redis.EncodeBulk(val), true
}

// followerMGet serves one MGET key group from node n's frozen view,
// writing hits into vals at idxs. served=false falls through to the
// primary; a non-nil stale reply fails the whole command — a partially
// bounded MGET would be indistinguishable from a fully bounded one.
func (r *Router) followerMGet(w *worker, n *node, keys []string, vals [][]byte, idxs []int, degraded bool) (served bool, stale []byte) {
	v, staleReply := r.followerView(n, degraded)
	if staleReply != nil {
		return false, staleReply
	}
	if v == nil {
		return false, nil
	}
	fr := w.frozenReaderFor(r, n.id, v)
	if fr == nil {
		return false, nil
	}
	got, err := fr.mget(w.th, keys)
	if err != nil {
		return false, nil
	}
	r.obs.ClusterFollowerRead()
	if degraded {
		r.obs.ClusterDegradedRead()
	}
	for j, i := range idxs {
		vals[i] = got[j]
	}
	return true, nil
}

// frozenReaderFor returns this worker's cached attachment to view v,
// rotating the cache when the node forked a newer view or the old one was
// invalidated. Returns nil (caller serves the primary) when the view
// cannot be attached — e.g. it was swept between the engine lookup and the
// attach. The re-check after attaching closes the release race: a view
// that is still the node's current one cannot be reclaimed while this
// attachment exists (VASDestroy refuses attached VASes), and a view
// retired in the window is dropped before any read goes through it.
func (w *worker) frozenReaderFor(r *Router, nid int, v *fork.View) *frozenReader {
	if fr := w.frozen[nid]; fr != nil {
		if fr.view == v && !v.Invalid() {
			return fr
		}
		_ = w.th.VASDetach(fr.h)
		delete(w.frozen, nid)
	}
	h, err := w.th.VASAttach(v.VID())
	if err != nil {
		return nil
	}
	if r.forks.Current(nid) != v {
		_ = w.th.VASDetach(h)
		return nil
	}
	if err := w.th.VASSwitch(h); err != nil {
		_ = w.th.VASDetach(h)
		return nil
	}
	store, err := redis.OpenStore(w.th, redis.SegBase)
	if serr := w.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		_ = w.th.VASDetach(h)
		return nil
	}
	fr := &frozenReader{view: v, h: h, store: store}
	w.frozen[nid] = fr
	return fr
}

// noteSuspect forwards dead-node evidence from the data path to the
// monitor, without blocking the worker.
func (r *Router) noteSuspect(n *node) {
	if r.suspectCh == nil || !n.replicated {
		return
	}
	select {
	case r.suspectCh <- n.id:
	default:
	}
}

// mget fans a multi-key GET out across the nodes owning its keys' slots
// and merges the replies back into key order. Local groups ride one VAS
// switch (one shared-lock acquisition, however many keys); remote groups
// ride one urpc round trip each. Any shard failure fails the whole
// command — partial MGET replies would be indistinguishable from missing
// keys. Caller holds the topology read lock, so every key resolves against
// one table epoch. Reads on migrating slots serve from the source, which
// stays authoritative until the flip.
func (r *Router) mget(w *worker, keys []string, readonly bool) []byte {
	groups := make(map[int][]int, len(r.nodes)) // node id → indices into keys
	for i, k := range keys {
		nid := r.Owner(r.Slot(k))
		groups[nid] = append(groups[nid], i)
	}
	vals := make([][]byte, len(keys))
	for nid := 0; nid < len(r.nodes); nid++ {
		idxs := groups[nid]
		if len(idxs) == 0 {
			continue
		}
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		n := r.nodes[nid]
		// A fan-out burns budget group by group; catch exhaustion between
		// groups so a slow early shard can't push later dispatches past the
		// deadline silently.
		if now := w.th.Core.Cycles(); w.bud.Exhausted(now) {
			r.obs.ClusterDeadlineExpired()
			return redis.EncodeDeadline(fmt.Sprintf(
				"budget exhausted after %d cycles mid-MGET, retry", w.bud.Spent(now)))
		}
		if degraded := r.degradedRead(w, n, readonly); readonly || degraded {
			served, stale := r.followerMGet(w, n, sub, vals, idxs, degraded)
			if stale != nil {
				return stale
			}
			if served {
				continue
			}
		}
		c, ep, errReply := r.path(w, n)
		if errReply != nil {
			return errReply
		}
		if c != nil {
			before := w.th.Core.Cycles()
			got, err := c.MGet(sub)
			r.obs.ClusterLocal(nid, w.th.Core.Cycles()-before)
			if err != nil {
				return redis.EncodeError(err.Error())
			}
			for j, i := range idxs {
				vals[i] = got[j]
			}
			continue
		}
		wire := redis.EncodeCommand(append([]string{"MGET"}, sub...)...)
		before := w.th.Core.Cycles()
		resp, callCycles, err := n.call(ep, wire, w.callBudget())
		total := w.th.Core.Cycles() - before
		n.noteOutcome(err)
		if err != nil {
			return r.remoteError(nid, err)
		}
		got, _, err := redis.DecodeArrayReply(resp)
		if err != nil {
			var re redis.ReplyError
			if errors.As(err, &re) {
				return []byte("-" + string(re) + "\r\n") // relay the shard's refusal
			}
			return redis.EncodeError("shard protocol error: " + err.Error())
		}
		if len(got) != len(idxs) {
			return redis.EncodeError("shard protocol error: short MGET reply")
		}
		r.obs.ClusterRemote(nid, total)
		r.obs.ClusterURPCCall(callCycles)
		for j, i := range idxs {
			vals[i] = got[j]
		}
	}
	return redis.EncodeArray(vals)
}

// clusterCommand serves the read-only CLUSTER introspection subcommands,
// Redis-compatible in shape, off the published slot-table epoch.
func (r *Router) clusterCommand(sub []string) []byte {
	if len(sub) == 0 {
		return redis.EncodeError("wrong number of arguments for 'cluster' command")
	}
	switch strings.ToUpper(sub[0]) {
	case "SLOTS":
		return r.clusterSlotsReply()
	case "NODES":
		return r.clusterNodesReply()
	}
	return redis.EncodeError("unknown CLUSTER subcommand: " + sub[0])
}

// clusterSlotsReply renders CLUSTER SLOTS: an array of slot ranges, each
// [start, end, [node-name, node-id]] — the Redis shape with the simulated
// node's name standing in for host:port.
func (r *Router) clusterSlotsReply() []byte {
	t := r.Table()
	type span struct{ start, end, owner int }
	var spans []span
	for s := 0; s < NumSlots; {
		e := s
		for e+1 < NumSlots && t.Owners[e+1] == t.Owners[s] {
			e++
		}
		spans = append(spans, span{s, e, t.Owners[s]})
		s = e + 1
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "*%d\r\n", len(spans))
	for _, sp := range spans {
		name := fmt.Sprintf("node-%d", sp.owner)
		fmt.Fprintf(&b, "*3\r\n:%d\r\n:%d\r\n*2\r\n$%d\r\n%s\r\n:%d\r\n",
			sp.start, sp.end, len(name), name, sp.owner)
	}
	return b.Bytes()
}

// clusterNodesReply renders CLUSTER NODES: one line per node in the Redis
// field order (id, address, flags, master, ping, pong, epoch, state, slot
// ranges), as a bulk string.
func (r *Router) clusterNodesReply() []byte {
	t := r.Table()
	var b strings.Builder
	for _, n := range r.Topology() {
		addr := fmt.Sprintf("core:%d", n.Core)
		if n.Local {
			addr = "local:vas"
		}
		flags := "master"
		if n.Promoted {
			flags = "master,standby-promoted"
		}
		state := "connected"
		switch {
		case n.Removed:
			addr, state = "-", "removed"
		case n.State != "" && n.State != "healthy":
			state = n.State
		}
		ranges := strings.ReplaceAll(slotRanges(t.slotsOf(n.ID)), ",", " ")
		if ranges == "none" {
			ranges = ""
		}
		line := fmt.Sprintf("node-%d %s %s - 0 0 %d %s %s", n.ID, addr, flags, t.Version, state, ranges)
		b.WriteString(strings.TrimRight(line, " ") + "\n")
	}
	return redis.EncodeBulk([]byte(b.String()))
}

// remoteError renders a failed remote call. A transport timeout — the typed
// urpc.TimeoutError, recognizable end to end via core.ErrTimeout — becomes
// the retryable SHARDTIMEOUT reply, a timeout count against the node, and
// dead-node evidence for the monitor; anything else is a hard shard error.
func (r *Router) remoteError(nid int, err error) []byte {
	if errors.Is(err, urpc.ErrBudget) {
		// Checked before ErrTimeout: a BudgetError unwraps to both, and the
		// distinction matters — the deadline ran out, not the node.
		r.obs.ClusterDeadlineExpired()
		return redis.EncodeDeadline(fmt.Sprintf("node %d: budget exhausted mid-call, retry", nid))
	}
	if errors.Is(err, urpc.ErrTimeout) {
		r.obs.ClusterTimeout(nid)
		r.noteSuspect(r.nodes[nid])
		return redis.EncodeShardTimeout(nid)
	}
	return redis.EncodeError(fmt.Sprintf("shard error: node %d: %s", nid, err))
}
