package cluster

import (
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
)

// NumSlots is the fixed number of placement slots the key space is divided
// into. Keys hash onto slots (redis.SlotForKey); slots map onto nodes via
// the versioned slot table. 256 slots over a handful of nodes keeps every
// rebalance granular without making the table big.
const NumSlots = 256

// SlotTable is one immutable placement epoch: which node owns each slot.
// The router publishes tables through an atomic pointer; readers get a
// consistent epoch for the whole command, and a migration flips ownership
// by installing a fresh copy with Version bumped — never by mutating a
// published table.
type SlotTable struct {
	// Version increments on every ownership change. Commands that raced a
	// flip see -MOVED and retry against the next version.
	Version uint64
	// Owners maps slot → node id.
	Owners [NumSlots]int
}

// clone returns a mutable copy with the version bumped, ready for edits
// before being installed as the next epoch.
func (t *SlotTable) clone() *SlotTable {
	cp := *t
	cp.Version++
	return &cp
}

// slotsOf returns the slots a node owns, ascending.
func (t *SlotTable) slotsOf(node int) []int {
	var out []int
	for s, o := range t.Owners {
		if o == node {
			out = append(out, s)
		}
	}
	return out
}

// Placement is the cluster's placement API: how keys map to slots and slots
// to nodes. The Router implements it; everything that needs a routing
// decision — workers, the migration engine, admin endpoints, CLUSTER
// commands — goes through it rather than hashing on its own.
type Placement interface {
	// Slot returns the placement slot a key hashes into (0..NumSlots-1).
	Slot(key string) int
	// Owner returns the node currently owning a slot.
	Owner(slot int) int
	// Table returns the current slot table epoch. The returned table is
	// immutable; callers may hold it across calls and compare Versions.
	Table() *SlotTable
}

var _ Placement = (*Router)(nil)

// Slot hashes a key onto its placement slot (Placement).
func (r *Router) Slot(key string) int {
	return redis.SlotForKey(key, NumSlots)
}

// Owner returns the node currently owning a slot (Placement).
func (r *Router) Owner(slot int) int {
	return r.table.Load().Owners[slot]
}

// Table returns the current slot table epoch (Placement).
func (r *Router) Table() *SlotTable {
	return r.table.Load()
}

// NodeFor resolves the node a key routes to right now.
//
// Deprecated: NodeFor predates the slot table — it answered placement when
// placement was "hash mod len(nodes)" and could never change. Use
// Slot/Owner (or Table for a stable epoch): a NodeFor answer is stale the
// moment a migration flips the key's slot.
func (r *Router) NodeFor(key string) int {
	return r.Owner(r.Slot(key))
}

// PlacementInfo renders the current table epoch for the admin surface
// (server.ClusterStatus).
func (r *Router) PlacementInfo() server.PlacementInfo {
	t := r.Table()
	info := server.PlacementInfo{Version: t.Version, Slots: NumSlots}
	for s := 0; s < NumSlots; {
		e := s
		for e+1 < NumSlots && t.Owners[e+1] == t.Owners[s] {
			e++
		}
		info.Ranges = append(info.Ranges, server.SlotRangeInfo{Start: s, End: e, Node: t.Owners[s]})
		s = e + 1
	}
	return info
}

// initialTable builds epoch 1: slots striped round-robin across the
// starting nodes, so every node begins with an equal share (±1).
func initialTable(nodes int) *SlotTable {
	t := &SlotTable{Version: 1}
	for s := range t.Owners {
		t.Owners[s] = s % nodes
	}
	return t
}

// installTable publishes the next epoch. Callers hold topoMu exclusively —
// the install is the linearization point of a flip.
func (r *Router) installTable(t *SlotTable) {
	r.table.Store(t)
}
