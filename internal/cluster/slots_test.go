package cluster

import (
	"strconv"
	"strings"
	"testing"
)

// slotSpan is one parsed CLUSTER SLOTS range.
type slotSpan struct{ start, end, owner int }

// parseSlotsReply decodes a clusterSlotsReply wire form. Each range is
// `*3\r\n:start\r\n:end\r\n*2\r\n$len\r\nnode-name\r\n:owner\r\n`.
func parseSlotsReply(t *testing.T, raw []byte) []slotSpan {
	t.Helper()
	lines := strings.Split(string(raw), "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "*") {
		t.Fatalf("slots reply header: %q", raw)
	}
	n, err := strconv.Atoi(lines[0][1:])
	if err != nil {
		t.Fatalf("slots reply count: %q", lines[0])
	}
	num := func(s, tag string) int {
		if !strings.HasPrefix(s, ":") {
			t.Fatalf("%s: want integer line, got %q", tag, s)
		}
		v, err := strconv.Atoi(s[1:])
		if err != nil {
			t.Fatalf("%s: %q", tag, s)
		}
		return v
	}
	spans := make([]slotSpan, 0, n)
	i := 1
	for r := 0; r < n; r++ {
		if lines[i] != "*3" {
			t.Fatalf("range %d: want *3, got %q", r, lines[i])
		}
		sp := slotSpan{start: num(lines[i+1], "start"), end: num(lines[i+2], "end")}
		if lines[i+3] != "*2" {
			t.Fatalf("range %d: want *2 node entry, got %q", r, lines[i+3])
		}
		name := lines[i+5] // the bulk payload after its $len line
		sp.owner = num(lines[i+6], "owner id")
		if name != "node-"+strconv.Itoa(sp.owner) {
			t.Fatalf("range %d: name %q does not match owner %d", r, name, sp.owner)
		}
		spans = append(spans, sp)
		i += 7
	}
	return spans
}

// checkCoverage asserts the spans tile [0, NumSlots) exactly: sorted,
// contiguous, no overlap, no gap, no wraparound past the last slot.
func checkCoverage(t *testing.T, spans []slotSpan) {
	t.Helper()
	next := 0
	for i, sp := range spans {
		if sp.start != next {
			t.Fatalf("span %d starts at %d, want %d (gap or overlap)", i, sp.start, next)
		}
		if sp.end < sp.start {
			t.Fatalf("span %d inverted: [%d,%d]", i, sp.start, sp.end)
		}
		next = sp.end + 1
	}
	if next != NumSlots {
		t.Fatalf("spans end at %d, want %d", next-1, NumSlots-1)
	}
}

// ownersOf maps slot -> owner from a span list.
func ownersOf(spans []slotSpan) map[int]int {
	out := map[int]int{}
	for _, sp := range spans {
		for s := sp.start; s <= sp.end; s++ {
			out[s] = sp.owner
		}
	}
	return out
}

// TestClusterSlotsSingleSlotRanges pins the merge logic's smallest case: a
// lone slot whose neighbours belong to other nodes must render as a
// one-slot range, and moving it away must re-merge its neighbours.
func TestClusterSlotsSingleSlotRanges(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	// Build a run of three slots on one owner, then punch out the middle:
	// the hole must split the run into [10,10] / [11,11] / [12,12] with the
	// middle on its own owner.
	owner := r.Owner(10)
	other := (owner + 1) % 3
	for s := 10; s <= 12; s++ {
		if r.Owner(s) != owner {
			if err := r.MigrateSlot(s, owner); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.MigrateSlot(11, other); err != nil {
		t.Fatal(err)
	}

	spans := parseSlotsReply(t, r.clusterSlotsReply())
	checkCoverage(t, spans)
	var hole *slotSpan
	for i := range spans {
		if spans[i].start == 11 {
			hole = &spans[i]
		}
	}
	if hole == nil || hole.end != 11 || hole.owner != other {
		t.Fatalf("punched slot 11 not a single-slot range for node %d: %+v", other, hole)
	}
	owners := ownersOf(spans)
	if owners[10] != owner || owners[12] != owner {
		t.Fatalf("neighbours of the hole moved: 10->%d 12->%d, want %d", owners[10], owners[12], owner)
	}
}

// TestClusterSlotsLastSlotBoundary exercises the table's edge: a range must
// close exactly at slot 255 whether the last slot shares its neighbour's
// owner or sits alone, and never wrap around.
func TestClusterSlotsLastSlotBoundary(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	last, prev := NumSlots-1, NumSlots-2
	// Case 1: the last slot differs from its neighbour — a single-slot
	// range must close the table.
	alone := (r.Owner(prev) + 1) % 3
	if err := r.MigrateSlot(last, alone); err != nil {
		t.Fatal(err)
	}
	spans := parseSlotsReply(t, r.clusterSlotsReply())
	checkCoverage(t, spans)
	tail := spans[len(spans)-1]
	if tail.start != last || tail.end != last || tail.owner != alone {
		t.Fatalf("tail span = %+v, want the lone slot %d on node %d", tail, last, alone)
	}

	// Case 2: the last slot merges into its neighbour's range and the
	// merged range still ends at 255.
	if err := r.MigrateSlot(last, r.Owner(prev)); err != nil {
		t.Fatal(err)
	}
	spans = parseSlotsReply(t, r.clusterSlotsReply())
	checkCoverage(t, spans)
	tail = spans[len(spans)-1]
	if tail.end != last || tail.start > prev || tail.owner != r.Owner(prev) {
		t.Fatalf("merged tail span = %+v, want [%d,%d] on node %d", tail, prev, last, r.Owner(prev))
	}
}

// TestClusterSlotsDrainedNodeAbsent removes a node and checks the rendered
// table: the drained node owns nothing, appears in no range, and the
// survivors still tile the whole keyspace.
func TestClusterSlotsDrainedNodeAbsent(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	// Node 2 is the remote one under Locals: 2; drain and retire it.
	if err := r.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	spans := parseSlotsReply(t, r.clusterSlotsReply())
	checkCoverage(t, spans)
	for _, sp := range spans {
		if sp.owner == 2 {
			t.Fatalf("drained node 2 still owns range %+v", sp)
		}
	}
}
