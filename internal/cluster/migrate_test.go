package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spacejmp/internal/fault"
	"spacejmp/internal/redis"
)

// send is roundTrip without the testing.T, safe to call from goroutines.
func send(nc net.Conn, br *bufio.Reader, args ...string) ([]byte, error) {
	if _, err := nc.Write(redis.EncodeCommand(args...)); err != nil {
		return nil, err
	}
	v, _, err := redis.ReadReply(br)
	return v, err
}

// keysInSlot collects n distinct keys hashing into one placement slot.
func keysInSlot(t *testing.T, slot, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n && i < 200000; i++ {
		k := fmt.Sprintf("mig-%d", i)
		if redis.SlotForKey(k, NumSlots) == slot {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d/%d keys for slot %d", len(keys), n, slot)
	}
	return keys
}

// TestPlacementTable pins the placement API's startup contract: epoch 1
// stripes slots round-robin, Slot/Owner agree with the deprecated NodeFor
// wrapper, and PlacementInfo covers the whole slot space.
func TestPlacementTable(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	tab := r.Table()
	if tab.Version != 1 {
		t.Fatalf("initial table version = %d, want 1", tab.Version)
	}
	for s, owner := range tab.Owners {
		if owner != s%3 {
			t.Fatalf("slot %d owned by %d, want %d", s, owner, s%3)
		}
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		if got, want := r.Owner(r.Slot(k)), r.NodeFor(k); got != want {
			t.Fatalf("key %q: Owner(Slot)=%d, NodeFor=%d", k, got, want)
		}
	}
	info := r.PlacementInfo()
	if info.Version != 1 || info.Slots != NumSlots {
		t.Fatalf("placement info = %+v", info)
	}
	covered := 0
	for _, rg := range info.Ranges {
		covered += rg.End - rg.Start + 1
	}
	if covered != NumSlots {
		t.Fatalf("placement ranges cover %d slots, want %d", covered, NumSlots)
	}
}

// TestMigrateSlot moves a populated slot local→remote and back: the data
// must follow, the table version must bump per move, and the migration
// counters must attribute both moves.
func TestMigrateSlot(t *testing.T) {
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	slot := 0 // owned by node 0 (local) at epoch 1
	keys := keysInSlot(t, slot, 8)
	for i, k := range keys {
		if v, err := send(nc, br, "SET", k, fmt.Sprintf("v-%d", i)); err != nil || string(v) != "OK" {
			t.Fatalf("SET %s: %q %v", k, v, err)
		}
	}

	verify := func(stage string) {
		t.Helper()
		for i, k := range keys {
			v, err := send(nc, br, "GET", k)
			if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("%s: GET %s = %q, %v", stage, k, v, err)
			}
		}
	}

	if err := r.MigrateSlot(slot, 2); err != nil {
		t.Fatalf("migrate %d → 2: %v", slot, err)
	}
	if got := r.Owner(slot); got != 2 {
		t.Fatalf("slot %d owned by %d after migrate, want 2", slot, got)
	}
	if v := r.Table().Version; v != 2 {
		t.Fatalf("table version = %d after one migrate, want 2", v)
	}
	verify("on remote node")

	if err := r.MigrateSlot(slot, 1); err != nil {
		t.Fatalf("migrate %d → 1: %v", slot, err)
	}
	if got, v := r.Owner(slot), r.Table().Version; got != 1 || v != 3 {
		t.Fatalf("slot %d: owner %d version %d, want owner 1 version 3", slot, got, v)
	}
	verify("back on a local node")

	// Migrating a slot to its current owner is a no-op, not an error.
	if err := r.MigrateSlot(slot, 1); err != nil {
		t.Fatalf("no-op migrate: %v", err)
	}
	if v := r.Table().Version; v != 3 {
		t.Fatalf("no-op migrate bumped the version to %d", v)
	}

	snap := m.Observer().Snapshot()
	if snap.Cluster == nil || snap.Cluster.Migration == nil {
		t.Fatalf("no migration stats: %+v", snap.Cluster)
	}
	mig := snap.Cluster.Migration
	if mig.SlotMoves != 2 || mig.SlotMoveFailures != 0 {
		t.Fatalf("migration counters = %+v, want 2 moves, 0 failures", mig)
	}
	if mig.KeysMoved < uint64(2*len(keys)) || mig.BytesMoved == 0 {
		t.Fatalf("migration volume = %+v, want >= %d keys", mig, 2*len(keys))
	}
}

// TestMigrateSlotUnderLoad races a writer against repeated ownership flips
// of its slot: every write must either apply exactly once or come back as
// a retryable refusal (-MOVED/-BUSY), and after the dust settles every key
// must read back the last acknowledged value — zero mismatches.
func TestMigrateSlotUnderLoad(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	slot := 0
	keys := keysInSlot(t, slot, 4)

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	stop := make(chan struct{})
	done := make(chan struct{})
	last := make(map[string]string)
	var mu sync.Mutex
	var writerErr error
	go func() {
		defer close(done)
		wc, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			writerErr = err
			return
		}
		defer wc.Close()
		wbr := bufio.NewReader(wc)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k, v := keys[i%len(keys)], fmt.Sprintf("w-%d", i)
			for {
				resp, err := send(wc, wbr, "SET", k, v)
				if err == nil && string(resp) == "OK" {
					mu.Lock()
					last[k] = v
					mu.Unlock()
					break
				}
				var re redis.ReplyError
				if errors.As(err, &re) && redis.IsRetryableReply(re) {
					continue // raced a flip; the retry routes on the new table
				}
				writerErr = fmt.Errorf("SET %s: %q %v", k, resp, err)
				return
			}
		}
	}()

	// Bounce the slot across every placement: local→remote, remote→local,
	// and again, with the writer hammering it the whole time.
	for _, dst := range []int{2, 1, 2, 0} {
		time.Sleep(10 * time.Millisecond)
		if err := r.MigrateSlot(slot, dst); err != nil {
			close(stop)
			<-done
			t.Fatalf("migrate slot %d → %d: %v", slot, dst, err)
		}
	}
	close(stop)
	<-done
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}

	mu.Lock()
	defer mu.Unlock()
	for k, want := range last {
		v, err := send(nc, br, "GET", k)
		if err != nil || string(v) != want {
			t.Fatalf("after flips: GET %s = %q %v, want %q", k, v, err, want)
		}
	}
	if v := r.Table().Version; v != 5 {
		t.Fatalf("table version = %d after 4 migrations, want 5", v)
	}
}

// TestAddRemoveNode grows the cluster by one node, rebalances a fair share
// of slots onto it, then drains and removes it — data intact end to end,
// membership visible in health, topology, and the counters.
func TestAddRemoveNode(t *testing.T) {
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	const n = 128
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("k-%d", i), fmt.Sprintf("v-%d", i)
		if resp, err := send(nc, br, "SET", k, v); err != nil || string(resp) != "OK" {
			t.Fatalf("SET %s: %q %v", k, resp, err)
		}
	}
	verify := func(stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			v, err := send(nc, br, "GET", fmt.Sprintf("k-%d", i))
			if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("%s: GET k-%d = %q, %v", stage, i, v, err)
			}
		}
	}

	id, err := r.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if id != 3 {
		t.Fatalf("AddNode id = %d, want 3", id)
	}
	moved, err := r.RebalanceInto(id)
	if err != nil {
		t.Fatalf("RebalanceInto: %v", err)
	}
	fair := NumSlots / 4
	if moved != fair {
		t.Fatalf("rebalance moved %d slots, want the fair share %d", moved, fair)
	}
	if got := len(r.Table().slotsOf(id)); got != fair {
		t.Fatalf("node %d owns %d slots after rebalance, want %d", id, got, fair)
	}
	verify("after add+rebalance")

	if err := r.RemoveNode(id); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if got := len(r.Table().slotsOf(id)); got != 0 {
		t.Fatalf("removed node still owns %d slots", got)
	}
	verify("after remove")

	// Removed nodes surface as such, and stay gone.
	var seen bool
	for _, h := range r.Health() {
		if h.Node == id {
			seen = true
			if h.State != "removed" {
				t.Fatalf("removed node health = %+v", h)
			}
		}
	}
	if !seen {
		t.Fatal("removed node missing from health report")
	}
	if s := r.String(); !strings.Contains(s, fmt.Sprintf("node %d: removed", id)) {
		t.Fatalf("topology does not mention the removed node:\n%s", s)
	}
	if err := r.RemoveNode(id); err == nil {
		t.Fatal("removing a removed node succeeded")
	}

	snap := m.Observer().Snapshot()
	mig := snap.Cluster.Migration
	if mig == nil || mig.NodesAdded != 1 || mig.NodesRemoved != 1 {
		t.Fatalf("membership counters = %+v, want 1 added / 1 removed", mig)
	}
	if mig.SlotMoves != uint64(2*fair) {
		t.Fatalf("slot moves = %d, want %d (in and back out)", mig.SlotMoves, 2*fair)
	}
}

// TestRemoveReplicatedNode drains a replicated remote node: its slots move
// to the survivors, and both its primary store and its standby are
// destroyed without wedging the monitor.
func TestRemoveReplicatedNode(t *testing.T) {
	_, r, srv := startCluster(t, Config{
		Nodes: 3, Workers: 1, Locals: 2,
		Replicate: true, ShipEvery: 4, SegSize: 1 << 20,
	}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	key := keyOnNode(t, r, 2)
	if v, err := send(nc, br, "SET", key, "replicated"); err != nil || string(v) != "OK" {
		t.Fatalf("SET: %q %v", v, err)
	}

	if err := r.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode(2): %v", err)
	}
	if got := r.Owner(r.Slot(key)); got == 2 {
		t.Fatal("key still routes to the removed node")
	}
	if v, err := send(nc, br, "GET", key); err != nil || string(v) != "replicated" {
		t.Fatalf("GET after remove: %q %v", v, err)
	}
}

// TestMigrateTargetCrashed points a migration at a node armed to crash on
// its next dispatch: the copy must abort and roll back, the source stays
// authoritative, and the failure is counted exactly once.
func TestMigrateTargetCrashed(t *testing.T) {
	reg := fault.New(1)
	m, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, reg)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	slot := 0
	keys := keysInSlot(t, slot, 4)
	for i, k := range keys {
		if v, err := send(nc, br, "SET", k, fmt.Sprintf("v-%d", i)); err != nil || string(v) != "OK" {
			t.Fatalf("SET %s: %q %v", k, v, err)
		}
	}

	reg.EnableAt(fault.ClusterNodeCrash, 2, "always", fault.Always())
	if err := r.MigrateSlot(slot, 2); err == nil {
		t.Fatal("migration into a crashing node succeeded")
	}
	if got, v := r.Owner(slot), r.Table().Version; got != 0 || v != 1 {
		t.Fatalf("after aborted migrate: owner %d version %d, want owner 0 version 1", got, v)
	}
	for i, k := range keys {
		v, err := send(nc, br, "GET", k)
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("source lost %s: %q %v", k, v, err)
		}
	}
	// A second attempt fails fast: the target is now known-crashed.
	if err := r.MigrateSlot(slot, 2); err == nil {
		t.Fatal("migration into a crashed node succeeded")
	}

	snap := m.Observer().Snapshot()
	mig := snap.Cluster.Migration
	if mig == nil || mig.SlotMoves != 0 || mig.SlotMoveFailures != 2 {
		t.Fatalf("migration counters = %+v, want 0 moves / 2 failures", mig)
	}
}

// TestClusterCommands drives the RESP introspection surface: CLUSTER NODES
// describes every node, CLUSTER SLOTS tracks the live table (ranges merge
// as neighbouring slots land on one owner), and unknown subcommands error.
func TestClusterCommands(t *testing.T) {
	_, r, srv := startCluster(t, Config{Nodes: 3, Workers: 1, Locals: 2}, nil)
	defer srv.Shutdown()

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	nodes, err := send(nc, br, "CLUSTER", "NODES")
	if err != nil {
		t.Fatalf("CLUSTER NODES: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(nodes)), "\n")
	if len(lines) != 3 {
		t.Fatalf("CLUSTER NODES listed %d nodes, want 3:\n%s", len(lines), nodes)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, fmt.Sprintf("node-%d ", i)) ||
			!strings.Contains(line, "master") || !strings.Contains(line, "connected") {
			t.Fatalf("CLUSTER NODES line %d: %q", i, line)
		}
	}

	// The striped initial table has no mergeable neighbours: 256 ranges.
	slots := r.clusterSlotsReply()
	if !strings.HasPrefix(string(slots), fmt.Sprintf("*%d\r\n", NumSlots)) {
		t.Fatalf("CLUSTER SLOTS header: %q", slots[:16])
	}
	// Moving slot 0 onto slot 1's owner merges them into one range.
	if err := r.MigrateSlot(0, r.Owner(1)); err != nil {
		t.Fatal(err)
	}
	slots = r.clusterSlotsReply()
	if !strings.HasPrefix(string(slots), fmt.Sprintf("*%d\r\n", NumSlots-1)) {
		t.Fatalf("CLUSTER SLOTS after merge: %q", slots[:16])
	}

	if _, err := send(nc, br, "CLUSTER", "FORGET"); err == nil {
		t.Fatal("unknown CLUSTER subcommand succeeded")
	}
}

// TestReplicationConfigAliases pins the config migration contract: the
// deprecated flat knobs fold into the nested ReplicationConfig, an
// explicitly nested config wins, and the flat fields mirror the resolved
// values either way.
func TestReplicationConfigAliases(t *testing.T) {
	flat := Config{Nodes: 3, Replicate: true, ShipEvery: 7, ProbeThreshold: 5}.withDefaults()
	if !flat.Replication.Enabled || flat.Replication.ShipEvery != 7 || flat.Replication.ProbeThreshold != 5 {
		t.Fatalf("flat aliases not folded: %+v", flat.Replication)
	}
	if flat.Replication.ShipInterval == 0 || flat.Replication.DeltaLog == 0 {
		t.Fatalf("nested defaults not applied: %+v", flat.Replication)
	}

	nested := Config{Nodes: 3, Replication: ReplicationConfig{Enabled: true, ShipEvery: 9}}.withDefaults()
	if nested.Replication.ShipEvery != 9 {
		t.Fatalf("nested config lost its value: %+v", nested.Replication)
	}
	if !nested.Replicate || nested.ShipEvery != 9 {
		t.Fatalf("flat mirror stale: Replicate=%v ShipEvery=%d", nested.Replicate, nested.ShipEvery)
	}

	if d := (Config{Nodes: 3}).withDefaults(); d.Replication.Enabled || d.Replicate {
		t.Fatal("replication enabled from nothing")
	}
	if d := (Config{Nodes: 3}).withDefaults(); d.MigrationDeltaLog == 0 {
		t.Fatal("migration delta log default missing")
	}
}
