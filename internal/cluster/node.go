package cluster

import (
	"bytes"
	"encoding/gob"
	"strings"
	"sync"
	"sync/atomic"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/mem"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
)

// NodeState is a remote node's position in the failover state machine. The
// health monitor owns every transition except crash fencing (the data path
// marks a node crashed the instant a call lands on a dead process).
//
//	healthy → suspect → (failed) → promoting → healthy   (standby serving)
//	                                         ↘ degraded  (no recoverable image)
type NodeState int32

const (
	// StateHealthy: the primary serves; probes answer.
	StateHealthy NodeState = iota
	// StateSuspect: probes are failing but the threshold hasn't been hit.
	StateSuspect
	// StateFailed: declared dead; promotion is about to start.
	StateFailed
	// StatePromoting: the standby is being rebuilt/replayed; the range
	// refuses commands (retryable) until the routing entry flips.
	StatePromoting
	// StateDegraded: both the primary and a recoverable replica image are
	// gone; the range returns hard errors. Terminal.
	StateDegraded
)

func (s NodeState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateFailed:
		return "failed"
	case StatePromoting:
		return "promoting"
	case StateDegraded:
		return "degraded"
	}
	return "state(?)"
}

// node is one shard of the key space. A local node is pure state: its store
// lives in globally named segments/VASes (redis.ShardNames) and every
// worker attaches its own client, so serving it is a VAS switch on the
// worker's core. A remote node models a separate machine: it claims its own
// core and process, bootstraps the store through its own thread, and is
// reachable only through urpc — its handler decodes a RESP command, runs it
// on the node's client, and returns the RESP reply.
type node struct {
	id    int
	local bool
	names redis.Names

	// Remote nodes only.
	proc   *core.Process
	client *redis.Client
	coreID int
	sys    *core.System

	// mu serializes the workers' calls into this node: urpc handlers run
	// inline in the calling goroutine, and the node's core and thread
	// tolerate exactly one driver at a time. The monitor's checkpoint ship
	// holds it too, so a shipped image is a quiescent-store snapshot.
	mu sync.Mutex

	// Replication and failover (replicated remote nodes only).
	replicated bool
	standby    redis.Names  // the warm replica's segment/VAS names
	state      atomic.Int32 // NodeState; monitor-owned transitions
	crashed    atomic.Bool  // process died; fences the data path immediately
	promoted   atomic.Bool  // the standby now serves this range (VAS fast path)
	lost       atomic.Uint64
	cause      atomic.Pointer[string] // degradation cause, for health reports
	rep        replica                // monitor-owned standby bookkeeping

	// delta buffers post-checkpoint writes for replay at promotion,
	// bounded by Config.DeltaLog; overflow switches the node's failover to
	// checkpoint-only and counts the updates that can no longer be
	// replayed in order.
	deltaMu      sync.Mutex
	delta        [][]string
	deltaDropped uint64
}

func (n *node) curState() NodeState { return NodeState(n.state.Load()) }

func (n *node) setState(s NodeState, obs *stats.Sink) {
	n.state.Store(int32(s))
	obs.ClusterNodeState(n.id, s.String())
}

func (r *Router) newNode(id int, local bool) (*node, error) {
	n := &node{id: id, local: local, names: redis.ShardNames(id), sys: r.sys}
	if local {
		// The store itself is bootstrapped lazily by the first worker
		// client that attaches (wireWorker).
		return n, nil
	}
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	var opts []core.SegOption
	if r.cfg.Replicate {
		// A replicated primary's store lives in NVM so checkpoint
		// generations (the replication transport) cover it.
		n.replicated = true
		n.standby = redis.StandbyNames(id)
		opts = append(opts, core.WithTier(mem.TierNVM))
	}
	client, err := redis.NewClientNamed(th, r.cfg.SegSize, n.names, opts...)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	n.proc, n.client, n.coreID = proc, client, th.Core.ID
	return n, nil
}

// shipCommand is the replication control command a node's handler answers
// with a checkpointed image of its own store segment.
const shipCommand = "CLUSTER.SHIP"

// handler is the node's urpc service routine: RESP in, RESP out. It runs
// with the node's core active (under n.mu), so the decode, the VAS
// switches, and the table walk are all charged to the node — and, because
// the urpc client busy-waits, mirrored into the calling worker's latency.
//
// The cluster.node.crash fault point fires here, at dispatch: the process
// dies between commands, never mid-mutation, which models a machine losing
// power with a consistent store in NVM (the paper's §5.3 survival claim).
func (n *node) handler(req []byte) []byte {
	if n.sys.M.Faults.FireAt(fault.ClusterNodeCrash, n.id) {
		n.crashed.Store(true)
		n.proc.Crash()
		return nil
	}
	args, err := redis.DecodeCommand(req)
	if err != nil {
		return redis.EncodeError("protocol error: " + err.Error())
	}
	if len(args) == 1 && strings.EqualFold(args[0], shipCommand) {
		return n.shipReply()
	}
	return redis.Execute(n.client, args)
}

// shipReply checkpoints the machine's NVM segments and returns this node's
// store segment image, gob-encoded in a bulk reply. Runs on the node's core
// with the store quiescent (the caller holds n.mu), so the image is a
// consistent snapshot.
func (n *node) shipReply() []byte {
	if err := n.sys.Checkpoint(); err != nil {
		return redis.EncodeError("ship: checkpoint: " + err.Error())
	}
	img, err := n.sys.CheckpointSegment(n.names.Seg)
	if err != nil {
		return redis.EncodeError("ship: " + err.Error())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return redis.EncodeError("ship: encode: " + err.Error())
	}
	return redis.EncodeBulk(buf.Bytes())
}

// call performs one serialized RPC into a remote node on the worker's
// endpoint, reporting the cycles the urpc round trip alone cost the worker.
//
// A crashed node is fenced here: calls against a node known dead fail
// without touching the channel, and a reply that raced with the crash — the
// handler's nil tombstone arrives as an empty frame, or the crash bit was
// set while the call was in flight — is refused as a timeout rather than
// trusted. Late replies from a fenced primary never reach a client.
func (n *node) call(ep *urpc.Endpoint, wire []byte) (resp []byte, cycles uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed.Load() {
		return nil, 0, &urpc.TimeoutError{}
	}
	before := ep.ClientCore().Cycles()
	resp, err = ep.Call(wire)
	cycles = ep.ClientCore().Cycles() - before
	if err == nil && (len(resp) == 0 || n.crashed.Load()) {
		return nil, cycles, &urpc.TimeoutError{}
	}
	return resp, cycles, err
}

// recordDelta buffers one applied write for replay at promotion. Returns
// true when the buffered count crosses a ship trigger. Once the window
// overflows the bound, order is unrecoverable: everything further is only
// counted, and promotion degrades to checkpoint-only.
func (n *node) recordDelta(args []string, bound, every int) (trigger bool) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	if n.deltaDropped > 0 || len(n.delta) >= bound {
		n.deltaDropped++
		return false
	}
	n.delta = append(n.delta, args)
	return every > 0 && len(n.delta)%every == 0
}

// takeDelta atomically drains the buffered window.
func (n *node) takeDelta() (entries [][]string, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	entries, dropped = n.delta, n.deltaDropped
	n.delta, n.deltaDropped = nil, 0
	return entries, dropped
}

// restoreDelta prepends a window taken by a ship whose apply then failed:
// the entries are still newer than the standby's image, so they must stay
// ahead of anything buffered since.
func (n *node) restoreDelta(entries [][]string, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	n.delta = append(entries, n.delta...)
	n.deltaDropped += dropped
}

func (n *node) deltaLen() (buffered int, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	return len(n.delta), n.deltaDropped
}

func (n *node) pendingWrites() bool {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	return len(n.delta) > 0 || n.deltaDropped > 0
}
