package cluster

import (
	"bytes"
	"encoding/gob"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/fork"
	"spacejmp/internal/mem"
	"spacejmp/internal/overload"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
)

// NodeState is a remote node's position in the failover state machine. The
// health monitor owns every transition except crash fencing (the data path
// marks a node crashed the instant a call lands on a dead process).
//
//	healthy → suspect → (failed) → promoting → healthy   (standby serving)
//	                                         ↘ degraded  (no recoverable image)
type NodeState int32

const (
	// StateHealthy: the primary serves; probes answer.
	StateHealthy NodeState = iota
	// StateSuspect: probes are failing but the threshold hasn't been hit.
	StateSuspect
	// StateFailed: declared dead; promotion is about to start.
	StateFailed
	// StatePromoting: the standby is being rebuilt/replayed; the range
	// refuses commands (retryable) until the routing entry flips.
	StatePromoting
	// StateDegraded: both the primary and a recoverable replica image are
	// gone; the range returns hard errors. Terminal.
	StateDegraded
)

func (s NodeState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateFailed:
		return "failed"
	case StatePromoting:
		return "promoting"
	case StateDegraded:
		return "degraded"
	}
	return "state(?)"
}

// node is one shard of the key space. A local node is pure state: its store
// lives in globally named segments/VASes (redis.ShardNames) and every
// worker attaches its own client, so serving it is a VAS switch on the
// worker's core. A remote node models a separate machine: it claims its own
// core and process, bootstraps the store through its own thread, and is
// reachable only through urpc — its handler decodes a RESP command, runs it
// on the node's client, and returns the RESP reply.
type node struct {
	id    int
	local bool
	names redis.Names

	// Remote nodes only.
	proc   *core.Process
	th     *core.Thread
	client *redis.Client
	coreID int
	sys    *core.System
	forks  *fork.Engine // shared fork engine; nil when replication is off

	// breaker is the node's circuit breaker, nil unless
	// Config.Overload.Breakers is on (remote nodes only). Fed by data-call
	// outcomes and health-probe evidence; consulted in path before every
	// remote dispatch.
	breaker *overload.Breaker

	// mu serializes the workers' calls into this node: urpc handlers run
	// inline in the calling goroutine, and the node's core and thread
	// tolerate exactly one driver at a time. The monitor's checkpoint ship
	// holds it too, so a shipped image is a quiescent-store snapshot.
	mu sync.Mutex

	// Replication and failover (replicated remote nodes only).
	replicated bool
	standby    redis.Names  // the warm replica's segment/VAS names
	state      atomic.Int32 // NodeState; monitor-owned transitions
	crashed    atomic.Bool  // process died; fences the data path immediately
	removed    atomic.Bool  // decommissioned by RemoveNode; owns no slots, resources released
	promoted   atomic.Bool  // the standby now serves this range (VAS fast path)
	lost       atomic.Uint64
	cause      atomic.Pointer[string] // degradation cause, for health reports
	rep        replica                // monitor-owned standby bookkeeping

	// delta buffers post-checkpoint writes for replay at promotion,
	// bounded by Config.DeltaLog; overflow switches the node's failover to
	// checkpoint-only and counts the updates that can no longer be
	// replayed in order.
	deltaMu      sync.Mutex
	delta        [][]string
	deltaDropped uint64
}

func (n *node) curState() NodeState { return NodeState(n.state.Load()) }

func (n *node) setState(s NodeState, obs *stats.Sink) {
	n.state.Store(int32(s))
	obs.ClusterNodeState(n.id, s.String())
}

func (r *Router) newNode(id int, local bool) (*node, error) {
	n := &node{id: id, local: local, names: redis.ShardNames(id), sys: r.sys}
	if local {
		// The store itself is bootstrapped lazily by the first worker
		// client that attaches (wireWorker).
		return n, nil
	}
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	var opts []core.SegOption
	if r.cfg.Replication.Enabled {
		// A replicated primary's store lives in NVM so checkpoint
		// generations (the replication transport) cover it.
		n.replicated = true
		n.standby = redis.StandbyNames(id)
		n.forks = r.forks
		opts = append(opts, core.WithTier(mem.TierNVM))
	}
	client, err := redis.NewClientNamed(th, r.cfg.SegSize, n.names, opts...)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	n.proc, n.th, n.client, n.coreID = proc, th, client, th.Core.ID
	if r.cfg.Overload.Breakers {
		obs := r.obs
		n.breaker = overload.NewBreaker(overload.BreakerConfig{
			Threshold: r.cfg.Overload.BreakerThreshold,
			Cooldown:  r.cfg.Overload.BreakerCooldown,
		}, func(from, to overload.State) {
			obs.ClusterBreaker(n.id, from.String(), to.String())
		})
	}
	return n, nil
}

// noteOutcome feeds one data-call outcome to the node's breaker: any error
// — a transport timeout, a budget exhaustion, a crash-fenced reply — is
// failure evidence; a delivered reply (even an error reply: the node
// answered) is success.
func (n *node) noteOutcome(err error) {
	if n.breaker == nil {
		return
	}
	if err != nil {
		n.breaker.Failure()
	} else {
		n.breaker.Success()
	}
}

// noteProbe feeds one health-probe outcome to the node's breaker. Probe
// successes use the stronger ProbeSuccess path: they may reclose an open
// breaker whose data traffic has fully degraded to stale reads (no data
// call left to take the half-open slot).
func (n *node) noteProbe(ok bool) {
	if n.breaker == nil {
		return
	}
	if ok {
		n.breaker.ProbeSuccess()
	} else {
		n.breaker.Failure()
	}
}

// Control commands a node's handler answers beyond the data plane:
// replication image shipping and the slot-migration copy protocol.
const (
	// forkCommand: fork a frozen COW view of the store and reply with the
	// fork generation (an integer reply). The expensive image extraction
	// happens later, off the node mutex, through the fork engine.
	forkCommand = "CLUSTER.FORK"
	// migrateCommand <slot> <nslots>: reply with the slot's key/value
	// pairs, gob-encoded in a bulk reply (the migration source side).
	migrateCommand = "CLUSTER.MIGRATE"
	// importCommand <slot> <gob-chunk>: replay a chunk of migrated pairs
	// into this node's store (the migration target side).
	importCommand = "CLUSTER.IMPORT"
	// cleanupCommand <slot> <nslots>: delete the slot's keys after its
	// ownership flipped away (the migration source side, post-flip).
	cleanupCommand = "CLUSTER.CLEANUP"
)

// handler is the node's urpc service routine: RESP in, RESP out. It runs
// with the node's core active (under n.mu), so the decode, the VAS
// switches, and the table walk are all charged to the node — and, because
// the urpc client busy-waits, mirrored into the calling worker's latency.
//
// The cluster.node.crash fault point fires here, at dispatch: the process
// dies between commands, never mid-mutation, which models a machine losing
// power with a consistent store in NVM (the paper's §5.3 survival claim).
func (n *node) handler(req []byte) []byte {
	if n.sys.M.Faults.FireAt(fault.ClusterNodeCrash, n.id) {
		n.crashed.Store(true)
		n.proc.Crash()
		return nil
	}
	args, err := redis.DecodeCommand(req)
	if err != nil {
		return redis.EncodeError("protocol error: " + err.Error())
	}
	switch {
	case len(args) == 1 && strings.EqualFold(args[0], forkCommand):
		return n.forkReply()
	case len(args) == 3 && strings.EqualFold(args[0], migrateCommand):
		return n.migrateReply(args[1], args[2])
	case len(args) == 3 && strings.EqualFold(args[0], importCommand):
		return n.importReply(args[1], args[2])
	case len(args) == 3 && strings.EqualFold(args[0], cleanupCommand):
		return n.cleanupReply(args[1], args[2])
	}
	return redis.Execute(n.client, args)
}

// migrateReply streams this node's share of a slot to the migration
// engine: checkpoint first when replicated (so the slot copy and the
// replication image can never disagree about frozen state), then dump the
// slot's pairs under the shared lock, gob-encoded in a bulk reply. Runs on
// the node's core with the store quiescent (the caller holds n.mu).
func (n *node) migrateReply(slotArg, nslotsArg string) []byte {
	slot, nslots, errReply := parseSlotArgs(slotArg, nslotsArg)
	if errReply != nil {
		return errReply
	}
	if n.replicated {
		if err := n.sys.Checkpoint(); err != nil {
			return redis.EncodeError("migrate: checkpoint: " + err.Error())
		}
		if _, err := n.sys.CheckpointSegment(n.names.Seg); err != nil {
			return redis.EncodeError("migrate: " + err.Error())
		}
	}
	pairs, err := n.client.DumpSlot(slot, nslots)
	if err != nil {
		return redis.EncodeError("migrate: dump: " + err.Error())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return redis.EncodeError("migrate: encode: " + err.Error())
	}
	return redis.EncodeBulk(buf.Bytes())
}

// importReply replays one gob chunk of migrated pairs into this node's
// store and replies with the count applied.
func (n *node) importReply(slotArg, chunk string) []byte {
	var pairs []redis.KV
	if err := gob.NewDecoder(strings.NewReader(chunk)).Decode(&pairs); err != nil {
		return redis.EncodeError("import: decode: " + err.Error())
	}
	for _, kv := range pairs {
		if err := n.client.Set(string(kv.Key), kv.Val); err != nil {
			return redis.EncodeError("import: set: " + err.Error())
		}
	}
	return redis.EncodeInt(int64(len(pairs)))
}

// cleanupReply deletes this node's copy of a slot after ownership flipped
// away, replying with the number of keys removed.
func (n *node) cleanupReply(slotArg, nslotsArg string) []byte {
	slot, nslots, errReply := parseSlotArgs(slotArg, nslotsArg)
	if errReply != nil {
		return errReply
	}
	removed, err := n.client.DelSlot(slot, nslots)
	if err != nil {
		return redis.EncodeError("cleanup: " + err.Error())
	}
	return redis.EncodeInt(int64(removed))
}

func parseSlotArgs(slotArg, nslotsArg string) (slot, nslots int, errReply []byte) {
	slot, err := strconv.Atoi(slotArg)
	if err != nil {
		return 0, 0, redis.EncodeError("bad slot: " + slotArg)
	}
	nslots, err = strconv.Atoi(nslotsArg)
	if err != nil || nslots <= 0 || slot < 0 || slot >= nslots {
		return 0, 0, redis.EncodeError("bad slot range: " + slotArg + "/" + nslotsArg)
	}
	return slot, nslots, nil
}

// forkReply takes the mutex-held half of a checkpoint ship: refresh the NVM
// superblock's metadata generation (cheap — frame addresses, not page
// contents; it keeps promotion's superblock fallback current), then fork a
// frozen COW view of the store and answer with its generation. Runs on the
// node's core with the store quiescent (the caller holds n.mu) — but unlike
// the old image-in-reply ship, the caller releases the mutex the moment
// this returns; page extraction reads the immutable frozen frames with the
// primary already serving again.
func (n *node) forkReply() []byte {
	if n.forks == nil {
		return redis.EncodeError("fork: replication disabled on this node")
	}
	if err := n.sys.Checkpoint(); err != nil {
		return redis.EncodeError("fork: checkpoint: " + err.Error())
	}
	v, err := n.forks.Fork(n.th, n.id, n.names.Seg)
	if err != nil {
		return redis.EncodeError("fork: " + err.Error())
	}
	return redis.EncodeInt(int64(v.Gen()))
}

// call performs one serialized RPC into a remote node on the worker's
// endpoint, reporting the cycles the urpc round trip alone cost the worker.
// budget, when nonzero, caps the cycles the retry loop may burn — the
// caller's remaining deadline allowance (see urpc.CallBudget).
//
// A crashed node is fenced here: calls against a node known dead fail
// without touching the channel, and a reply that raced with the crash — the
// handler's nil tombstone arrives as an empty frame, or the crash bit was
// set while the call was in flight — is refused as a timeout rather than
// trusted. Late replies from a fenced primary never reach a client.
func (n *node) call(ep *urpc.Endpoint, wire []byte, budget uint64) (resp []byte, cycles uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed.Load() {
		return nil, 0, &urpc.TimeoutError{}
	}
	before := ep.ClientCore().Cycles()
	resp, err = ep.CallBudget(wire, budget)
	cycles = ep.ClientCore().Cycles() - before
	if err == nil && (len(resp) == 0 || n.crashed.Load()) {
		return nil, cycles, &urpc.TimeoutError{}
	}
	return resp, cycles, err
}

// callBulk performs one serialized multi-slot RPC into a remote node —
// the migration engine's copy path — with the same crash fencing as call:
// a node known dead fails fast, and a reply racing the crash is refused.
func (n *node) callBulk(ep *urpc.Endpoint, wire []byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed.Load() {
		return nil, &urpc.TimeoutError{}
	}
	resp, err := ep.CallBulk(wire)
	if err == nil && (len(resp) == 0 || n.crashed.Load()) {
		return nil, &urpc.TimeoutError{}
	}
	return resp, err
}

// recordDelta buffers one applied write for replay at promotion. Returns
// true when the buffered count crosses a ship trigger. Once the window
// overflows the bound, order is unrecoverable: everything further is only
// counted, and promotion degrades to checkpoint-only.
func (n *node) recordDelta(args []string, bound, every int) (trigger bool) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	if n.deltaDropped > 0 || len(n.delta) >= bound {
		n.deltaDropped++
		return false
	}
	n.delta = append(n.delta, args)
	return every > 0 && len(n.delta)%every == 0
}

// takeDelta atomically drains the buffered window.
func (n *node) takeDelta() (entries [][]string, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	entries, dropped = n.delta, n.deltaDropped
	n.delta, n.deltaDropped = nil, 0
	return entries, dropped
}

// restoreDelta prepends a window taken by a ship whose apply then failed:
// the entries are still newer than the standby's image, so they must stay
// ahead of anything buffered since.
func (n *node) restoreDelta(entries [][]string, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	n.delta = append(entries, n.delta...)
	n.deltaDropped += dropped
}

func (n *node) deltaLen() (buffered int, dropped uint64) {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	return len(n.delta), n.deltaDropped
}

func (n *node) pendingWrites() bool {
	n.deltaMu.Lock()
	defer n.deltaMu.Unlock()
	return len(n.delta) > 0 || n.deltaDropped > 0
}
