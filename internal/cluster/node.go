package cluster

import (
	"sync"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/urpc"
)

// node is one shard of the key space. A local node is pure state: its store
// lives in globally named segments/VASes (redis.ShardNames) and every
// worker attaches its own client, so serving it is a VAS switch on the
// worker's core. A remote node models a separate machine: it claims its own
// core and process, bootstraps the store through its own thread, and is
// reachable only through urpc — its handler decodes a RESP command, runs it
// on the node's client, and returns the RESP reply.
type node struct {
	id    int
	local bool
	names redis.Names

	// Remote nodes only.
	proc   *core.Process
	client *redis.Client
	coreID int

	// mu serializes the workers' calls into this node: urpc handlers run
	// inline in the calling goroutine, and the node's core and thread
	// tolerate exactly one driver at a time.
	mu sync.Mutex
}

func (r *Router) newNode(id int, local bool) (*node, error) {
	n := &node{id: id, local: local, names: redis.ShardNames(id)}
	if local {
		// The store itself is bootstrapped lazily by the first worker
		// client that attaches (wireWorker).
		return n, nil
	}
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return nil, err
	}
	client, err := redis.NewClientNamed(th, r.cfg.SegSize, n.names)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	n.proc, n.client, n.coreID = proc, client, th.Core.ID
	return n, nil
}

// handler is the node's urpc service routine: RESP in, RESP out. It runs
// with the node's core active (under n.mu), so the decode, the VAS
// switches, and the table walk are all charged to the node — and, because
// the urpc client busy-waits, mirrored into the calling worker's latency.
func (n *node) handler(req []byte) []byte {
	args, err := redis.DecodeCommand(req)
	if err != nil {
		return redis.EncodeError("protocol error: " + err.Error())
	}
	return redis.Execute(n.client, args)
}

// call performs one serialized RPC into a remote node on the worker's
// endpoint, reporting the cycles the urpc round trip alone cost the worker.
func (n *node) call(ep *urpc.Endpoint, wire []byte) (resp []byte, cycles uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	before := ep.ClientCore().Cycles()
	resp, err = ep.Call(wire)
	return resp, ep.ClientCore().Cycles() - before, err
}
