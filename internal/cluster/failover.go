package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fork"
	"spacejmp/internal/redis"
)

// forkWire is the pre-encoded replication control command.
var forkWire = redis.EncodeCommand(forkCommand)

// ship moves one checkpoint generation from node n's primary to its
// standby, in two phases. Phase one holds the node's mutex just long enough
// for the primary to fork a frozen COW view of its store and for the delta
// window to be truncated: everything buffered before the fork is inside the
// frozen image, and nothing can slip between the fork and the truncation.
// Phase two runs with the mutex released — the primary is already serving
// writes again (they fault and break COW into private frames) while the
// monitor extracts the frozen image and rebuilds the standby from it. If
// the extraction or apply fails, the taken window is restored: those writes
// are still newer than whatever image the standby holds.
func (m *monitor) ship(r *Router, n *node) {
	if n.promoted.Load() || n.crashed.Load() || n.removed.Load() {
		return
	}
	switch n.curState() {
	case StateFailed, StatePromoting, StateDegraded:
		return
	}
	ep := m.epFor(n.id)
	if ep == nil {
		return
	}
	n.mu.Lock()
	if n.crashed.Load() {
		n.mu.Unlock()
		return
	}
	resp, err := ep.CallBulk(forkWire)
	if err != nil || len(resp) == 0 || n.crashed.Load() {
		n.mu.Unlock()
		r.obs.ClusterShipFailure(n.id)
		m.noteFailure(r, n)
		return
	}
	entries, dropped := n.takeDelta()
	n.mu.Unlock()

	gen, err := parseForkReply(resp)
	var view *fork.View
	if err == nil {
		if view = r.forks.Current(n.id); view == nil || view.Gen() != gen {
			err = fmt.Errorf("fork gen %d no longer current", gen)
		}
	}
	var shipped uint64
	start := time.Now()
	if err == nil {
		var img *core.SegmentImage
		if img, err = r.forks.Image(view); err == nil {
			shipped = uint64(len(img.Pages)) * img.PageSize
			err = m.applyImage(n, img)
		}
	}
	if err != nil {
		// The primary answered but could not produce (or we could not
		// apply) a usable view — a checkpoint fault, not dead-node
		// evidence. Keep the window for the next attempt.
		n.restoreDelta(entries, dropped)
		r.obs.ClusterShipFailure(n.id)
		return
	}
	r.obs.ClusterShipDuration(uint64(time.Since(start).Nanoseconds()))
	r.obs.ClusterShip(n.id, shipped)
}

// parseForkReply extracts the fork generation from the node's integer
// reply; a shard error reply surfaces as the contained ReplyError.
func parseForkReply(resp []byte) (uint64, error) {
	s := strings.TrimSuffix(string(resp), "\r\n")
	switch {
	case strings.HasPrefix(s, ":"):
		return strconv.ParseUint(s[1:], 10, 64)
	case strings.HasPrefix(s, "-"):
		return 0, redis.ReplyError(s[1:])
	}
	return 0, fmt.Errorf("unexpected fork reply %q", s)
}

// promote fails node n's range over to its standby. The standby is rebuilt
// from the last shipped generation (or, if no ship ever landed, from the
// newest generation still in the shared NVM superblock — the primary's
// store frames survive its process), the bounded post-checkpoint delta is
// replayed in order, and the routing entry flips under the topology lock.
// If the delta window overflowed, replaying a suffix would reorder history:
// promotion degrades to checkpoint-only and every buffered update is
// counted lost. If no valid image exists at all, the range is degraded.
func (m *monitor) promote(r *Router, n *node) {
	n.setState(StatePromoting, r.obs)
	// Fence outstanding frozen views first: once the standby takes over,
	// views of the dead primary are semantically stale in a way no
	// staleness bound covers — follower reads must fall back immediately.
	r.forks.InvalidateNode(n.id, "promotion")
	if !n.rep.applied {
		img, err := r.sys.CheckpointSegment(n.names.Seg)
		if err == nil {
			err = m.applyImage(n, img)
		}
		if err != nil {
			m.degrade(r, n, fmt.Errorf("no recoverable replica: %w", err))
			return
		}
	}
	entries, dropped := n.takeDelta()
	var replayed, lost uint64
	if dropped > 0 {
		lost = dropped + uint64(len(entries))
	} else if len(entries) > 0 {
		replayed, lost = m.replay(r, n, entries)
	}
	n.lost.Add(lost)
	r.topoMu.Lock()
	n.promoted.Store(true)
	n.state.Store(int32(StateHealthy))
	r.topoMu.Unlock()
	r.obs.ClusterNodeState(n.id, StateHealthy.String())
	r.obs.ClusterPromotion(n.id, replayed, lost)
}

// replay applies the buffered post-checkpoint writes onto the standby, in
// arrival order, through a temporary client on the monitor's thread.
func (m *monitor) replay(r *Router, n *node, entries [][]string) (replayed, lost uint64) {
	c, err := redis.NewClientNamed(m.th, r.cfg.SegSize, n.standby)
	if err != nil {
		return 0, uint64(len(entries))
	}
	defer c.Close()
	for _, args := range entries {
		resp := redis.Execute(c, args)
		if len(resp) > 0 && resp[0] == '-' {
			lost++
		} else {
			replayed++
		}
	}
	return replayed, lost
}

// KillNode crashes remote node id abruptly: the process dies with whatever
// it holds, exactly as the cluster.node.crash fault point does, and the
// data path is fenced. Local (co-resident) nodes share the front-end
// process and cannot be killed independently.
func (r *Router) KillNode(id int) error {
	n := r.nodeByID(id)
	if n == nil {
		return fmt.Errorf("cluster: no node %d", id)
	}
	if n.local || n.proc == nil {
		return fmt.Errorf("cluster: node %d is co-resident; kill the server instead", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed.Swap(true) {
		n.proc.Crash()
	}
	return nil
}
