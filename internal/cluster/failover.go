package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"

	"spacejmp/internal/core"
	"spacejmp/internal/redis"
)

// shipWire is the pre-encoded replication control command.
var shipWire = redis.EncodeCommand(shipCommand)

// ship moves one checkpoint generation from node n's primary to its
// standby: the primary checkpoints its store into the machine's NVM
// superblock and streams the validated generation's segment image back over
// the monitor's multi-slot urpc channel; the monitor rebuilds the standby
// from it.
//
// The node's mutex is held across the call AND the delta truncation:
// everything buffered before the checkpoint is inside the shipped image, and
// nothing can slip between the checkpoint and the truncation. If the apply
// then fails, the taken window is restored — those writes are still newer
// than whatever image the standby holds.
func (m *monitor) ship(r *Router, n *node) {
	if n.promoted.Load() || n.crashed.Load() || n.removed.Load() {
		return
	}
	switch n.curState() {
	case StateFailed, StatePromoting, StateDegraded:
		return
	}
	ep := m.epFor(n.id)
	if ep == nil {
		return
	}
	n.mu.Lock()
	if n.crashed.Load() {
		n.mu.Unlock()
		return
	}
	resp, err := ep.CallBulk(shipWire)
	if err != nil || len(resp) == 0 || n.crashed.Load() {
		n.mu.Unlock()
		r.obs.ClusterShipFailure(n.id)
		m.noteFailure(r, n)
		return
	}
	entries, dropped := n.takeDelta()
	n.mu.Unlock()

	payload, err := decodeShipReply(resp)
	if err == nil {
		var img core.SegmentImage
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); derr != nil {
			err = fmt.Errorf("ship decode: %w", derr)
		} else {
			err = m.applyImage(n, &img)
		}
	}
	if err != nil {
		// The primary answered but could not produce (or we could not
		// apply) a valid generation — a checkpoint fault, not dead-node
		// evidence. Keep the window for the next attempt.
		n.restoreDelta(entries, dropped)
		r.obs.ClusterShipFailure(n.id)
		return
	}
	r.obs.ClusterShip(n.id, uint64(len(payload)))
}

// decodeShipReply unwraps the RESP bulk carrying the gob image; a shard
// error reply surfaces as the contained ReplyError.
func decodeShipReply(resp []byte) ([]byte, error) {
	v, isNil, err := redis.ReadReply(bufio.NewReader(bytes.NewReader(resp)))
	if err != nil {
		return nil, err
	}
	if isNil || len(v) == 0 {
		return nil, fmt.Errorf("empty ship reply")
	}
	return v, nil
}

// promote fails node n's range over to its standby. The standby is rebuilt
// from the last shipped generation (or, if no ship ever landed, from the
// newest generation still in the shared NVM superblock — the primary's
// store frames survive its process), the bounded post-checkpoint delta is
// replayed in order, and the routing entry flips under the topology lock.
// If the delta window overflowed, replaying a suffix would reorder history:
// promotion degrades to checkpoint-only and every buffered update is
// counted lost. If no valid image exists at all, the range is degraded.
func (m *monitor) promote(r *Router, n *node) {
	n.setState(StatePromoting, r.obs)
	if !n.rep.applied {
		img, err := r.sys.CheckpointSegment(n.names.Seg)
		if err == nil {
			err = m.applyImage(n, img)
		}
		if err != nil {
			m.degrade(r, n, fmt.Errorf("no recoverable replica: %w", err))
			return
		}
	}
	entries, dropped := n.takeDelta()
	var replayed, lost uint64
	if dropped > 0 {
		lost = dropped + uint64(len(entries))
	} else if len(entries) > 0 {
		replayed, lost = m.replay(r, n, entries)
	}
	n.lost.Add(lost)
	r.topoMu.Lock()
	n.promoted.Store(true)
	n.state.Store(int32(StateHealthy))
	r.topoMu.Unlock()
	r.obs.ClusterNodeState(n.id, StateHealthy.String())
	r.obs.ClusterPromotion(n.id, replayed, lost)
}

// replay applies the buffered post-checkpoint writes onto the standby, in
// arrival order, through a temporary client on the monitor's thread.
func (m *monitor) replay(r *Router, n *node, entries [][]string) (replayed, lost uint64) {
	c, err := redis.NewClientNamed(m.th, r.cfg.SegSize, n.standby)
	if err != nil {
		return 0, uint64(len(entries))
	}
	defer c.Close()
	for _, args := range entries {
		resp := redis.Execute(c, args)
		if len(resp) > 0 && resp[0] == '-' {
			lost++
		} else {
			replayed++
		}
	}
	return replayed, lost
}

// KillNode crashes remote node id abruptly: the process dies with whatever
// it holds, exactly as the cluster.node.crash fault point does, and the
// data path is fenced. Local (co-resident) nodes share the front-end
// process and cannot be killed independently.
func (r *Router) KillNode(id int) error {
	n := r.nodeByID(id)
	if n == nil {
		return fmt.Errorf("cluster: no node %d", id)
	}
	if n.local || n.proc == nil {
		return fmt.Errorf("cluster: node %d is co-resident; kill the server instead", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed.Swap(true) {
		n.proc.Crash()
	}
	return nil
}
