package cluster

import (
	"fmt"
	"sync"
	"time"

	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/redis"
	"spacejmp/internal/server"
	"spacejmp/internal/urpc"
)

// monitor is the cluster's health-and-replication agent: one goroutine with
// its own process, thread and front-end core, plus a private urpc endpoint
// to every replicated node (probes must not queue behind data traffic on
// the workers' channels). It ships checkpoints to the standbys, probes the
// primaries, and drives the failover state machine.
type monitor struct {
	proc   *core.Process
	th     *core.Thread
	coreID int

	// epMu guards eps: the monitor goroutine grows the map when AddNode
	// hands it a new replicated node (monCtl), and PendingFrames reads it
	// from outside.
	epMu  sync.Mutex
	eps   map[int]*urpc.Endpoint // replicated remote nodes, by node id
	fails map[int]int            // consecutive probe failures
	skip  map[int]int            // probe-backoff ticks remaining
}

// epFor returns the monitor's probe endpoint to node id, if any.
func (m *monitor) epFor(id int) *urpc.Endpoint {
	m.epMu.Lock()
	defer m.epMu.Unlock()
	return m.eps[id]
}

// setEp installs a probe endpoint for a node wired after construction.
func (m *monitor) setEp(id int, ep *urpc.Endpoint) {
	m.epMu.Lock()
	defer m.epMu.Unlock()
	m.eps[id] = ep
}

// pingWire is the monitor's probe command, pre-encoded.
var pingWire = redis.EncodeCommand("PING")

// newMonitor claims a core for the health monitor and connects it to every
// replicated node. Called after workers and nodes, so the monitor's core
// lands after theirs.
func (r *Router) newMonitor() error {
	proc, err := r.sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return err
	}
	th, err := proc.NewThread()
	if err != nil {
		proc.Exit()
		return err
	}
	m := &monitor{
		proc: proc, th: th, coreID: th.Core.ID,
		eps:   map[int]*urpc.Endpoint{},
		fails: map[int]int{},
		skip:  map[int]int{},
	}
	for _, n := range r.nodes {
		if n.replicated {
			m.eps[n.id] = urpc.Connect(r.sys.M, m.coreID, n.coreID, r.cfg.Slots, n.handler)
		}
	}
	r.mon = m
	return nil
}

// runMonitor is the monitor goroutine: warm every standby with an initial
// ship, then alternate probe ticks, periodic ships, write-count-triggered
// ships, and worker timeout reports until the router closes. All timers are
// tied to the router-lifetime context, so Close never leaves one running.
func (r *Router) runMonitor() {
	defer r.mgrWG.Done()
	m := r.mon
	defer m.proc.Exit()
	probe := time.NewTicker(r.cfg.Replication.ProbeInterval)
	defer probe.Stop()
	ship := time.NewTicker(r.cfg.Replication.ShipInterval)
	defer ship.Stop()
	for _, n := range r.replicatedNodes() {
		m.ship(r, n)
	}
	for {
		select {
		case <-r.ctx.Done():
			return
		case nid := <-r.monCtl:
			// AddNode wired a new replicated node: connect a probe
			// endpoint and warm its standby with an initial ship.
			n := r.nodeByID(nid)
			if n == nil || !n.replicated {
				continue
			}
			m.setEp(nid, urpc.Connect(r.sys.M, m.coreID, n.coreID, r.cfg.Slots, n.handler))
			m.ship(r, n)
		case nid := <-r.shipCh:
			if n := r.nodeByID(nid); n != nil {
				m.ship(r, n)
			}
		case nid := <-r.suspectCh:
			// A worker's data call timed out: that is probe-grade
			// evidence, counted toward the failure threshold so detection
			// under load beats the probe cadence.
			if n := r.nodeByID(nid); n != nil {
				m.noteFailure(r, n)
			}
		case <-ship.C:
			for _, n := range r.replicatedNodes() {
				if n.pendingWrites() {
					m.ship(r, n)
				}
			}
			m.refreshLocalForks(r)
		case <-probe.C:
			for _, n := range r.replicatedNodes() {
				m.probe(r, n)
			}
		}
	}
}

// replicatedNodes snapshots the replicated, still-present nodes under the
// topology lock (AddNode appends concurrently; removed nodes are done).
func (r *Router) replicatedNodes() []*node {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	var out []*node
	for _, n := range r.nodes {
		if n.replicated && !n.removed.Load() {
			out = append(out, n)
		}
	}
	return out
}

// nodeByID resolves a node id against the live list, nil for out-of-range
// or removed ids (stale pokes on the monitor channels).
func (r *Router) nodeByID(id int) *node {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if id < 0 || id >= len(r.nodes) || r.nodes[id].removed.Load() {
		return nil
	}
	return r.nodes[id]
}

// probe sends one PING on the monitor's private endpoint. The
// cluster.probe.drop fault point models the probe lost in the interconnect;
// consecutive failures back off (skip fails-1 ticks) so a flapping node is
// not hammered while it is counted toward the threshold.
func (m *monitor) probe(r *Router, n *node) {
	if n.promoted.Load() {
		return
	}
	switch n.curState() {
	case StateFailed, StatePromoting, StateDegraded:
		return
	}
	if m.skip[n.id] > 0 {
		m.skip[n.id]--
		return
	}
	ep := m.epFor(n.id)
	if ep == nil {
		return
	}
	ok := false
	if !r.sys.M.Faults.FireAt(fault.ClusterProbeDrop, n.id) {
		_, _, err := n.call(ep, pingWire, 0)
		ok = err == nil
	}
	r.obs.ClusterProbe(ok)
	if ok {
		m.noteSuccess(r, n)
	} else {
		m.noteFailure(r, n)
	}
}

func (m *monitor) noteSuccess(r *Router, n *node) {
	m.fails[n.id], m.skip[n.id] = 0, 0
	n.noteProbe(true)
	if n.curState() == StateSuspect {
		n.setState(StateHealthy, r.obs)
	}
}

// noteFailure counts one piece of dead-node evidence and, at the
// threshold, declares the node failed and promotes its standby.
func (m *monitor) noteFailure(r *Router, n *node) {
	if !n.replicated || n.promoted.Load() {
		return
	}
	n.noteProbe(false)
	switch n.curState() {
	case StateFailed, StatePromoting, StateDegraded:
		return
	}
	m.fails[n.id]++
	m.skip[n.id] = m.fails[n.id] - 1
	if n.curState() == StateHealthy {
		n.setState(StateSuspect, r.obs)
	}
	if m.fails[n.id] >= r.cfg.Replication.ProbeThreshold {
		n.setState(StateFailed, r.obs)
		m.promote(r, n)
	}
}

// refreshLocalForks keeps a frozen fork view of every local node current so
// degraded reads have something to serve when the workers saturate. Remote
// nodes get views as a side effect of checkpoint shipping; local nodes have
// no ship path, so the monitor forks them here on the ship cadence, under
// the full topology lock — the write side of the lock every worker holds
// read-side per command, so the store is quiescent for the COW freeze
// exactly as a remote node's mutex-held forkReply is. Gated on the queue
// watermark: it is the only degradation trigger a local node has (breakers
// are remote-only), so without one the views would be dead weight.
func (m *monitor) refreshLocalForks(r *Router) {
	if r.cfg.Overload.QueueWatermark <= 0 {
		return
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	for _, n := range r.nodes {
		if !n.local || n.removed.Load() {
			continue
		}
		if v := r.forks.Current(n.id); v != nil && v.Age() <= r.cfg.Replication.ShipInterval {
			continue
		}
		if _, err := r.forks.Fork(m.th, n.id, n.names.Seg); err != nil {
			// The store may not exist yet (bootstrapped lazily by the
			// first worker client); try again next tick.
			continue
		}
	}
}

// degrade parks the node in the terminal degraded state: no serving copy of
// the range exists, and everything buffered for replay is lost.
func (m *monitor) degrade(r *Router, n *node, err error) {
	cause := err.Error()
	n.cause.Store(&cause)
	r.forks.InvalidateNode(n.id, "degraded")
	entries, dropped := n.takeDelta()
	lost := dropped + uint64(len(entries))
	n.lost.Add(lost)
	r.obs.ClusterLostUpdates(lost)
	n.setState(StateDegraded, r.obs)
}

// Health reports every node's routing/failover status (server.ClusterStatus).
func (r *Router) Health() []server.NodeHealth {
	r.topoMu.RLock()
	nodes := r.nodes
	r.topoMu.RUnlock()
	out := make([]server.NodeHealth, len(nodes))
	for i, n := range nodes {
		h := server.NodeHealth{Node: n.id, Local: n.local, State: StateHealthy.String()}
		if n.removed.Load() {
			h.State = "removed"
			out[i] = h
			continue
		}
		if !n.local {
			st := n.curState()
			h.State = st.String()
			h.Replicated = n.replicated
			h.Promoted = n.promoted.Load()
			h.LostUpdates = n.lost.Load()
			buffered, dropped := n.deltaLen()
			h.DeltaBuffered = buffered + int(dropped)
			if p := n.cause.Load(); p != nil {
				h.Detail = *p
			}
			switch st {
			case StateFailed, StatePromoting, StateDegraded:
				h.Degraded = true
			}
			if h.Degraded && h.Detail == "" {
				h.Detail = fmt.Sprintf("range %d not serving", n.id)
			}
		}
		out[i] = h
	}
	return out
}
