package vm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
)

func testSpace(t *testing.T) (*Space, *mem.PhysMem) {
	t.Helper()
	pm := mem.New(mem.Config{DRAMSize: 256 << 20, NVMSize: 32 << 20})
	s, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	return s, pm
}

func TestObjectLazyBacking(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	o := NewObject(pm, "o", 10*arch.PageSize, mem.TierDRAM)
	if o.Resident() != 0 {
		t.Error("fresh object has resident pages")
	}
	f1, err := o.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := o.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Frame not stable across calls")
	}
	if o.Resident() != 1 {
		t.Errorf("resident = %d", o.Resident())
	}
	if _, err := o.Frame(10); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestObjectRefCounting(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	o := NewObject(pm, "o", 4*arch.PageSize, mem.TierDRAM)
	if err := o.Populate(); err != nil {
		t.Fatal(err)
	}
	o.Ref()
	o.Unref()
	if pm.Stats().AllocatedBytes != 4*arch.PageSize {
		t.Error("frames freed while references remain")
	}
	o.Unref()
	if pm.Stats().AllocatedBytes != 0 {
		t.Error("frames leaked after last Unref")
	}
}

func TestObjectNVMTier(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20, NVMSize: 64 << 20})
	o := NewObject(pm, "persistent", arch.PageSize, mem.TierNVM)
	pa, err := o.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	if pm.TierOf(pa) != mem.TierNVM {
		t.Error("NVM object backed by DRAM frame")
	}
	o.Unref()
}

func TestMapFixedAndPopulate(t *testing.T) {
	s, _ := testSpace(t)
	base, err := s.MapAnon(0x10000, 4*arch.PageSize, arch.PermRW, MapFixed|MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0x10000 {
		t.Errorf("base = %v", base)
	}
	for off := uint64(0); off < 4*arch.PageSize; off += arch.PageSize {
		if _, err := s.Table().Walk(base + arch.VirtAddr(off)); err != nil {
			t.Errorf("page +%#x not populated: %v", off, err)
		}
	}
}

func TestMapFixedOverlapRejected(t *testing.T) {
	s, _ := testSpace(t)
	if _, err := s.MapAnon(0x10000, 4*arch.PageSize, arch.PermRW, MapFixed); err != nil {
		t.Fatal(err)
	}
	_, err := s.MapAnon(0x12000, 4*arch.PageSize, arch.PermRW, MapFixed)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping fixed map: %v", err)
	}
}

func TestMapHintPlacement(t *testing.T) {
	s, _ := testSpace(t)
	a, err := s.MapAnon(0, 2*arch.PageSize, arch.PermRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MapAnon(0, 2*arch.PageSize, arch.PermRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("hint mapping reused an occupied range")
	}
	if b < a+2*arch.PageSize && a < b+2*arch.PageSize {
		t.Errorf("regions overlap: %v %v", a, b)
	}
}

func TestSharedObjectTwoSpaces(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	obj := NewObject(pm, "shared", 2*arch.PageSize, mem.TierDRAM)
	defer obj.Unref()
	s1, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Map(0x10000, 2*arch.PageSize, arch.PermRW, obj, 0, MapFixed|MapPopulate); err != nil {
		t.Fatal(err)
	}
	// Map the same object at a different address in s2.
	if _, err := s2.Map(0x50000, 2*arch.PageSize, arch.PermRW, obj, 0, MapFixed|MapPopulate); err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Table().Walk(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Table().Walk(0x50000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PA != r2.PA {
		t.Error("shared object pages differ between spaces")
	}
}

func TestDemandPaging(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 256 << 20})
	m := hw.NewMachine(hw.SmallTest())
	_ = pm
	s, err := NewSpace(m.PM)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.MapAnon(0x10000, 16*arch.PageSize, arch.PermRW, MapFixed)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.LoadCR3(s.Table(), arch.ASIDFlush)
	c.OnFault = s.Handler()
	if err := c.Store64(base+8, 77); err != nil {
		t.Fatalf("demand-paged store: %v", err)
	}
	v, err := c.Load64(base + 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Errorf("load = %d", v)
	}
	if s.Stats().Faults != 1 {
		t.Errorf("faults = %d, want 1", s.Stats().Faults)
	}
	// Only the touched page became resident.
	if got := s.Regions()[0].Obj.Resident(); got != 1 {
		t.Errorf("resident pages = %d, want 1", got)
	}
}

func TestFaultOutsideRegions(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	s, _ := NewSpace(m.PM)
	c := m.Cores[0]
	c.LoadCR3(s.Table(), arch.ASIDFlush)
	c.OnFault = s.Handler()
	if err := c.Store64(0xDEAD000, 1); err == nil || !strings.Contains(err.Error(), "segmentation") {
		t.Errorf("stray store: %v", err)
	}
}

func TestProtectionFaultNotRetriedForever(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	s, _ := NewSpace(m.PM)
	base, err := s.MapAnon(0x10000, arch.PageSize, arch.PermRead, MapFixed|MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.LoadCR3(s.Table(), arch.ASIDFlush)
	c.OnFault = s.Handler()
	if err := c.Store64(base, 1); err == nil {
		t.Error("store to read-only region succeeded")
	}
}

func TestUnmapWhole(t *testing.T) {
	s, pm := testSpace(t)
	before := pm.Stats().AllocatedBytes
	base, err := s.MapAnon(0x10000, 4*arch.PageSize, arch.PermRW, MapFixed|MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base, 4*arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if len(s.Regions()) != 0 {
		t.Error("region survived unmap")
	}
	if _, err := s.Table().Walk(base); err == nil {
		t.Error("translation survived unmap")
	}
	// Anonymous object frames are released (page-table nodes may remain
	// until Destroy, so compare object memory via a fresh map/unmap).
	got := pm.Stats().AllocatedBytes - before
	if got > 16*arch.PageSize { // generous bound: only PT nodes remain
		t.Errorf("object frames leaked: %d bytes above baseline", got)
	}
}

func TestUnmapSplitsRegion(t *testing.T) {
	s, _ := testSpace(t)
	base, err := s.MapAnon(0x10000, 6*arch.PageSize, arch.PermRW, MapFixed|MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	// Punch a 2-page hole in the middle.
	if err := s.Unmap(base+2*arch.PageSize, 2*arch.PageSize); err != nil {
		t.Fatal(err)
	}
	regs := s.Regions()
	if len(regs) != 2 {
		t.Fatalf("regions after split = %d, want 2", len(regs))
	}
	if regs[0].Start != base || regs[0].Size != 2*arch.PageSize {
		t.Errorf("head region = %+v", regs[0])
	}
	if regs[1].Start != base+4*arch.PageSize || regs[1].Size != 2*arch.PageSize {
		t.Errorf("tail region = %+v", regs[1])
	}
	// Tail still translates and refers to the right object page.
	r, err := s.Table().Walk(base + 4*arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := regs[1].Obj.Frame(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.PA != f4 {
		t.Error("tail region lost its object offset")
	}
	if _, err := s.Table().Walk(base + 2*arch.PageSize); err == nil {
		t.Error("hole still mapped")
	}
}

func TestProtectSplitsAndUpdates(t *testing.T) {
	s, _ := testSpace(t)
	base, err := s.MapAnon(0x10000, 3*arch.PageSize, arch.PermRW, MapFixed|MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(base+arch.PageSize, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	regs := s.Regions()
	if len(regs) != 3 {
		t.Fatalf("regions = %d, want 3", len(regs))
	}
	if regs[1].Perm != arch.PermRead {
		t.Errorf("middle perm = %v", regs[1].Perm)
	}
	r, err := s.Table().Walk(base + arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.Perm != arch.PermRead {
		t.Errorf("translation perm = %v", r.Perm)
	}
	r, err = s.Table().Walk(base)
	if err != nil {
		t.Fatal(err)
	}
	if r.Perm != arch.PermRW {
		t.Errorf("head translation perm changed: %v", r.Perm)
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	before := pm.Stats().AllocatedBytes
	s, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MapAnon(0x10000, 8*arch.PageSize, arch.PermRW, MapFixed|MapPopulate); err != nil {
		t.Fatal(err)
	}
	s.Destroy()
	if after := pm.Stats().AllocatedBytes; after != before {
		t.Errorf("leak: %d bytes", after-before)
	}
}

// Property: random map/unmap sequences keep the region list sorted and
// non-overlapping, and every address inside a region translates after a
// fault while addresses outside all regions never do.
func TestPropertyRegionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := mem.New(mem.Config{DRAMSize: 128 << 20})
		s, err := NewSpace(pm)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			va := arch.VirtAddr(0x10000 + uint64(rng.Intn(64))*arch.PageSize)
			pages := uint64(rng.Intn(6) + 1)
			if rng.Intn(3) > 0 {
				_, _ = s.MapAnon(va, pages*arch.PageSize, arch.PermRW, MapFixed|MapPopulate)
			} else {
				_ = s.Unmap(va, pages*arch.PageSize)
			}
			regs := s.Regions()
			for j := 0; j < len(regs); j++ {
				if j > 0 && regs[j-1].End() > regs[j].Start {
					return false
				}
				if regs[j].Size == 0 {
					return false
				}
			}
		}
		// Every mapped page translates; a page just outside must not.
		for _, r := range s.Regions() {
			if _, err := s.Table().Walk(r.Start); err != nil {
				if s.HandleFault(r.Start, arch.AccessRead) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
