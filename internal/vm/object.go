// Package vm implements the BSD/Mach-derived virtual memory layer the
// SpaceJMP DragonFly prototype builds on (paper §4.1): VM objects abstract
// physical storage, and a Space (the BSD "vmspace") combines a list of
// region descriptors with one architecture-level page table.
//
// SpaceJMP segments are thin wrappers around VM objects; attaching a segment
// to an address space inserts a region referencing the object, and the page
// fault handler asks the object for frames.
package vm

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
)

// Object is a Mach-style VM object: a logical array of pages backed by
// physical frames, materialized on demand. Objects are reference counted;
// mappings and segments take references.
type Object struct {
	Name string
	Size uint64
	Tier mem.Tier
	// PageSize is the granularity of the object's pages (4 KiB or 2 MiB).
	// Huge objects back huge-page mappings: one order-9 frame block per
	// page, fewer page-table levels per translation.
	PageSize uint64

	mu     sync.Mutex
	pm     *mem.PhysMem
	frames map[uint64]arch.PhysAddr // page index -> frame (PageSize-sized)
	refs   int
	dead   bool

	// parent is the copy-on-write source: pages without an own frame are
	// served from the parent (read-only) until BreakCOW copies them — the
	// snapshotting optimization of paper §7.
	parent *Object

	// mappers is the reverse map: every Space with at least one region over
	// this object, counted per region. A COW break installs the private
	// frame only in the faulting space's table; the fault handler walks this
	// map to revoke the stale shared translation everywhere else. Guarded by
	// its own mutex — it is consulted while space locks are held, and o.mu
	// may be taken under a space lock (ABBA).
	mapMu   sync.Mutex
	mappers map[*Space]int
}

// order returns the buddy order of one page of the object.
func (o *Object) order() int {
	order := 0
	for ps := uint64(arch.PageSize); ps < o.PageSize; ps <<= 1 {
		order++
	}
	return order
}

// NewObject creates an object of the given size (rounded up to whole pages)
// with one reference held by the caller.
func NewObject(pm *mem.PhysMem, name string, size uint64, tier mem.Tier) *Object {
	return NewObjectPages(pm, name, size, tier, arch.PageSize)
}

// NewObjectPages creates an object backed by pages of the given size
// (arch.PageSize or arch.HugePageSize); size is rounded up accordingly.
func NewObjectPages(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, pageSize uint64) *Object {
	size = (size + pageSize - 1) &^ (pageSize - 1)
	return &Object{
		Name: name, Size: size, Tier: tier, PageSize: pageSize,
		pm: pm, frames: make(map[uint64]arch.PhysAddr), refs: 1,
	}
}

// NewObjectFromFrames reconstructs an object over frames that already hold
// content — the restore path after a power cycle, where NVM frames (and the
// allocator state covering them) survived.
func NewObjectFromFrames(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, frames map[uint64]arch.PhysAddr) *Object {
	return NewObjectFromFramesPages(pm, name, size, tier, arch.PageSize, frames)
}

// NewObjectFromFramesPages is NewObjectFromFrames for an explicit page size.
func NewObjectFromFramesPages(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, pageSize uint64, frames map[uint64]arch.PhysAddr) *Object {
	o := NewObjectPages(pm, name, size, tier, pageSize)
	for idx, pa := range frames {
		o.frames[idx] = pa
	}
	return o
}

// FrameMap returns a copy of the page-index -> frame mapping (what a
// checkpoint must record to reattach the object's memory later).
func (o *Object) FrameMap() map[uint64]arch.PhysAddr {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[uint64]arch.PhysAddr, len(o.frames))
	for idx, pa := range o.frames {
		out[idx] = pa
	}
	return out
}

// Ref takes an additional reference.
func (o *Object) Ref() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		panic("vm: Ref on destroyed object " + o.Name)
	}
	o.refs++
}

// Unref drops a reference; the last drop frees every backing frame.
func (o *Object) Unref() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		panic("vm: Unref on destroyed object " + o.Name)
	}
	o.refs--
	if o.refs > 0 {
		return
	}
	o.dead = true
	order := o.order()
	for idx, pa := range o.frames {
		delete(o.frames, idx)
		if err := o.pm.Free(pa, order); err != nil {
			panic("vm: freeing object frame: " + err.Error())
		}
	}
	if o.parent != nil {
		o.parent.Unref()
		o.parent = nil
	}
}

// Pages returns the number of pages (of PageSize each) the object spans.
func (o *Object) Pages() uint64 { return o.Size / o.PageSize }

// Frame returns the physical frame backing page idx. For ordinary pages it
// allocates (and zeroes) on first use — the page-cache behaviour of the
// BSD object. For COW pages without an own copy it returns the parent's
// frame; callers must map such pages read-only and call BreakCOW on the
// first write.
func (o *Object) Frame(idx uint64) (arch.PhysAddr, error) {
	if idx >= o.Pages() {
		return 0, fmt.Errorf("vm: page %d beyond object %q (%d pages)", idx, o.Name, o.Pages())
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return 0, fmt.Errorf("vm: object %q destroyed", o.Name)
	}
	if pa, ok := o.frames[idx]; ok {
		return pa, nil
	}
	if o.parent != nil {
		return o.parent.Frame(idx)
	}
	pa, err := o.pm.AllocFrames(o.order(), o.Tier)
	if err != nil {
		return 0, fmt.Errorf("vm: backing page %d of %q: %w", idx, o.Name, err)
	}
	o.frames[idx] = pa
	return pa, nil
}

// CloneCOW creates a copy-on-write child: reads are served from this
// object's frames until the child's pages are written (§7's snapshotting
// optimization). The child holds a reference on the parent.
func (o *Object) CloneCOW(name string) *Object {
	o.Ref()
	return &Object{
		Name: name, Size: o.Size, Tier: o.Tier, PageSize: o.PageSize,
		pm: o.pm, frames: make(map[uint64]arch.PhysAddr), refs: 1, parent: o,
	}
}

// IsCOW reports whether page idx is still shared with a parent (and must
// therefore be mapped read-only).
func (o *Object) IsCOW(idx uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.parent == nil {
		return false
	}
	_, own := o.frames[idx]
	return !own
}

// BreakCOW gives page idx its own frame, copying the parent's content.
// It is idempotent; returns the (possibly new) frame.
//
// o.mu is held for the whole operation (taking the parent's lock inside it,
// the same child→parent order Frame uses), so a break can never interleave
// with ForkFrozen swapping the frame maps or CollapseCOW retiring the
// parent mid-copy.
func (o *Object) BreakCOW(idx uint64) (arch.PhysAddr, error) {
	if idx >= o.Pages() {
		return 0, fmt.Errorf("vm: page %d beyond object %q", idx, o.Name)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return 0, fmt.Errorf("vm: object %q destroyed", o.Name)
	}
	if pa, ok := o.frames[idx]; ok {
		return pa, nil
	}
	if o.parent == nil {
		pa, err := o.pm.AllocFrames(o.order(), o.Tier)
		if err != nil {
			return 0, fmt.Errorf("vm: backing page %d of %q: %w", idx, o.Name, err)
		}
		o.frames[idx] = pa
		return pa, nil
	}
	src, err := o.parent.Frame(idx)
	if err != nil {
		return 0, err
	}
	dst, err := o.pm.AllocFrames(o.order(), o.Tier)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, o.PageSize)
	if err := o.pm.ReadAt(src, buf); err != nil {
		o.pm.Free(dst, o.order())
		return 0, err
	}
	if err := o.pm.WriteAt(dst, buf); err != nil {
		o.pm.Free(dst, o.order())
		return 0, err
	}
	o.frames[idx] = dst
	return dst, nil
}

// ForkFrozen splits off an immutable point-in-time view of the object: the
// returned frozen object takes over o's current frames wholesale, and o
// itself becomes a copy-on-write child of it — the inverse sharing
// direction of CloneCOW, which is what a snapshot-while-serving needs
// (writes to o after the fork land in private frames via BreakCOW and never
// reach the frozen view).
//
// The frozen object starts with two references: one owned by the caller,
// one held by o as its parent link. Any parent o already had is inherited
// by the frozen object (the reference moves; the chain stays intact for
// ResolveFrame).
//
// The caller must quiesce writers for the instant of the swap AND downgrade
// any installed writable translations of o afterwards (Space.DowngradeWrites),
// or in-flight stores would write through stale PTEs into the frozen frames.
func (o *Object) ForkFrozen(name string) *Object {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		panic("vm: ForkFrozen on destroyed object " + o.Name)
	}
	frozen := &Object{
		Name: name, Size: o.Size, Tier: o.Tier, PageSize: o.PageSize,
		pm: o.pm, frames: o.frames, refs: 2, parent: o.parent,
	}
	o.frames = make(map[uint64]arch.PhysAddr)
	o.parent = frozen
	return o.parent
}

// CollapseCOW folds released frozen parents back into o: while o's immediate
// parent is held by nobody else (refs == 1, i.e. only o's parent link), o
// adopts the parent's frames for every page it has not rewritten, frees the
// parent's superseded frames, and splices the grandparent in. Called after
// a frozen view's last external reference drops, it keeps fork chains from
// growing without bound and returns every private COW frame to the
// allocator — the leak-check contract of the fork subsystem.
func (o *Object) CollapseCOW() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		p := o.parent
		if p == nil {
			return
		}
		p.mu.Lock()
		if p.refs != 1 || p.dead {
			p.mu.Unlock()
			return // still shared by a live frozen view; keep the chain
		}
		order := o.order()
		for idx, pa := range p.frames {
			if _, own := o.frames[idx]; own {
				if err := o.pm.Free(pa, order); err != nil {
					panic("vm: freeing superseded COW frame: " + err.Error())
				}
				continue
			}
			o.frames[idx] = pa
		}
		p.frames = nil
		p.refs = 0
		p.dead = true
		o.parent = p.parent // the grandparent reference moves from p to o
		p.parent = nil
		p.mu.Unlock()
	}
}

// addMapper records one region of s over o.
func (o *Object) addMapper(s *Space) {
	o.mapMu.Lock()
	defer o.mapMu.Unlock()
	if o.mappers == nil {
		o.mappers = make(map[*Space]int)
	}
	o.mappers[s]++
}

// delMapper drops one region of s over o.
func (o *Object) delMapper(s *Space) {
	o.mapMu.Lock()
	defer o.mapMu.Unlock()
	if o.mappers[s]--; o.mappers[s] <= 0 {
		delete(o.mappers, s)
	}
}

// revokeStale removes the translation for page idx from every space mapping
// o except the one that just broke COW (its table already holds the private
// frame). Revoked pages re-fault and pick the private frame up from o's own
// map. Must be called with no space lock held: each revocation takes the
// target space's lock, and holding another space's lock here would deadlock
// against a concurrent fault in the opposite direction.
func (o *Object) revokeStale(except *Space, idx uint64) {
	o.mapMu.Lock()
	spaces := make([]*Space, 0, len(o.mappers))
	for s := range o.mappers {
		if s != except {
			spaces = append(spaces, s)
		}
	}
	o.mapMu.Unlock()
	for _, s := range spaces {
		s.revokePage(o, idx)
	}
}

// ResolveFrame returns the frame serving page idx through the COW chain
// without allocating anything: ok=false means no object in the chain ever
// materialized the page and it reads as zeros. This is the extraction path
// for frozen views — unlike Frame it cannot mutate the object.
func (o *Object) ResolveFrame(idx uint64) (arch.PhysAddr, bool) {
	o.mu.Lock()
	pa, ok := o.frames[idx]
	parent := o.parent
	o.mu.Unlock()
	if ok {
		return pa, true
	}
	if parent != nil {
		return parent.ResolveFrame(idx)
	}
	return 0, false
}

// ResolvedFrameMap returns the frames backing every materialized page,
// resolving each index through the COW parent chain. Unlike FrameMap it
// reflects what a reader of this object actually sees: after a frozen fork
// the object's own map holds only pages written since the fork, while the
// rest still live upstream. Persisting code must use this, never FrameMap,
// or a checkpoint taken mid-fork silently drops everything unwritten since.
func (o *Object) ResolvedFrameMap() map[uint64]arch.PhysAddr {
	out := make(map[uint64]arch.PhysAddr)
	for idx := uint64(0); idx < o.Pages(); idx++ {
		if pa, ok := o.ResolveFrame(idx); ok {
			out[idx] = pa
		}
	}
	return out
}

// Resident returns the number of pages currently backed by frames.
func (o *Object) Resident() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return uint64(len(o.frames))
}

// Populate allocates frames for every page (physical reservation at segment
// creation, paper §4.1: "Physical pages are reserved at the time a segment
// is created, and are not swappable"). On a COW object it materializes
// private copies of every page.
func (o *Object) Populate() error {
	for idx := uint64(0); idx < o.Pages(); idx++ {
		if o.IsCOW(idx) {
			if _, err := o.BreakCOW(idx); err != nil {
				return err
			}
			continue
		}
		if _, err := o.Frame(idx); err != nil {
			return err
		}
	}
	return nil
}
