// Package vm implements the BSD/Mach-derived virtual memory layer the
// SpaceJMP DragonFly prototype builds on (paper §4.1): VM objects abstract
// physical storage, and a Space (the BSD "vmspace") combines a list of
// region descriptors with one architecture-level page table.
//
// SpaceJMP segments are thin wrappers around VM objects; attaching a segment
// to an address space inserts a region referencing the object, and the page
// fault handler asks the object for frames.
package vm

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/mem"
)

// Object is a Mach-style VM object: a logical array of pages backed by
// physical frames, materialized on demand. Objects are reference counted;
// mappings and segments take references.
type Object struct {
	Name string
	Size uint64
	Tier mem.Tier
	// PageSize is the granularity of the object's pages (4 KiB or 2 MiB).
	// Huge objects back huge-page mappings: one order-9 frame block per
	// page, fewer page-table levels per translation.
	PageSize uint64

	mu     sync.Mutex
	pm     *mem.PhysMem
	frames map[uint64]arch.PhysAddr // page index -> frame (PageSize-sized)
	refs   int
	dead   bool

	// parent is the copy-on-write source: pages without an own frame are
	// served from the parent (read-only) until BreakCOW copies them — the
	// snapshotting optimization of paper §7.
	parent *Object
}

// order returns the buddy order of one page of the object.
func (o *Object) order() int {
	order := 0
	for ps := uint64(arch.PageSize); ps < o.PageSize; ps <<= 1 {
		order++
	}
	return order
}

// NewObject creates an object of the given size (rounded up to whole pages)
// with one reference held by the caller.
func NewObject(pm *mem.PhysMem, name string, size uint64, tier mem.Tier) *Object {
	return NewObjectPages(pm, name, size, tier, arch.PageSize)
}

// NewObjectPages creates an object backed by pages of the given size
// (arch.PageSize or arch.HugePageSize); size is rounded up accordingly.
func NewObjectPages(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, pageSize uint64) *Object {
	size = (size + pageSize - 1) &^ (pageSize - 1)
	return &Object{
		Name: name, Size: size, Tier: tier, PageSize: pageSize,
		pm: pm, frames: make(map[uint64]arch.PhysAddr), refs: 1,
	}
}

// NewObjectFromFrames reconstructs an object over frames that already hold
// content — the restore path after a power cycle, where NVM frames (and the
// allocator state covering them) survived.
func NewObjectFromFrames(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, frames map[uint64]arch.PhysAddr) *Object {
	return NewObjectFromFramesPages(pm, name, size, tier, arch.PageSize, frames)
}

// NewObjectFromFramesPages is NewObjectFromFrames for an explicit page size.
func NewObjectFromFramesPages(pm *mem.PhysMem, name string, size uint64, tier mem.Tier, pageSize uint64, frames map[uint64]arch.PhysAddr) *Object {
	o := NewObjectPages(pm, name, size, tier, pageSize)
	for idx, pa := range frames {
		o.frames[idx] = pa
	}
	return o
}

// FrameMap returns a copy of the page-index -> frame mapping (what a
// checkpoint must record to reattach the object's memory later).
func (o *Object) FrameMap() map[uint64]arch.PhysAddr {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[uint64]arch.PhysAddr, len(o.frames))
	for idx, pa := range o.frames {
		out[idx] = pa
	}
	return out
}

// Ref takes an additional reference.
func (o *Object) Ref() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		panic("vm: Ref on destroyed object " + o.Name)
	}
	o.refs++
}

// Unref drops a reference; the last drop frees every backing frame.
func (o *Object) Unref() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		panic("vm: Unref on destroyed object " + o.Name)
	}
	o.refs--
	if o.refs > 0 {
		return
	}
	o.dead = true
	order := o.order()
	for idx, pa := range o.frames {
		delete(o.frames, idx)
		if err := o.pm.Free(pa, order); err != nil {
			panic("vm: freeing object frame: " + err.Error())
		}
	}
	if o.parent != nil {
		o.parent.Unref()
		o.parent = nil
	}
}

// Pages returns the number of pages (of PageSize each) the object spans.
func (o *Object) Pages() uint64 { return o.Size / o.PageSize }

// Frame returns the physical frame backing page idx. For ordinary pages it
// allocates (and zeroes) on first use — the page-cache behaviour of the
// BSD object. For COW pages without an own copy it returns the parent's
// frame; callers must map such pages read-only and call BreakCOW on the
// first write.
func (o *Object) Frame(idx uint64) (arch.PhysAddr, error) {
	if idx >= o.Pages() {
		return 0, fmt.Errorf("vm: page %d beyond object %q (%d pages)", idx, o.Name, o.Pages())
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return 0, fmt.Errorf("vm: object %q destroyed", o.Name)
	}
	if pa, ok := o.frames[idx]; ok {
		return pa, nil
	}
	if o.parent != nil {
		return o.parent.Frame(idx)
	}
	pa, err := o.pm.AllocFrames(o.order(), o.Tier)
	if err != nil {
		return 0, fmt.Errorf("vm: backing page %d of %q: %w", idx, o.Name, err)
	}
	o.frames[idx] = pa
	return pa, nil
}

// CloneCOW creates a copy-on-write child: reads are served from this
// object's frames until the child's pages are written (§7's snapshotting
// optimization). The child holds a reference on the parent.
func (o *Object) CloneCOW(name string) *Object {
	o.Ref()
	return &Object{
		Name: name, Size: o.Size, Tier: o.Tier, PageSize: o.PageSize,
		pm: o.pm, frames: make(map[uint64]arch.PhysAddr), refs: 1, parent: o,
	}
}

// IsCOW reports whether page idx is still shared with a parent (and must
// therefore be mapped read-only).
func (o *Object) IsCOW(idx uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.parent == nil {
		return false
	}
	_, own := o.frames[idx]
	return !own
}

// BreakCOW gives page idx its own frame, copying the parent's content.
// It is idempotent; returns the (possibly new) frame.
func (o *Object) BreakCOW(idx uint64) (arch.PhysAddr, error) {
	if idx >= o.Pages() {
		return 0, fmt.Errorf("vm: page %d beyond object %q", idx, o.Name)
	}
	o.mu.Lock()
	if pa, ok := o.frames[idx]; ok {
		o.mu.Unlock()
		return pa, nil
	}
	parent := o.parent
	o.mu.Unlock()
	if parent == nil {
		return o.Frame(idx)
	}
	src, err := parent.Frame(idx)
	if err != nil {
		return 0, err
	}
	dst, err := o.pm.AllocFrames(o.order(), o.Tier)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, o.PageSize)
	if err := o.pm.ReadAt(src, buf); err != nil {
		o.pm.Free(dst, o.order())
		return 0, err
	}
	if err := o.pm.WriteAt(dst, buf); err != nil {
		o.pm.Free(dst, o.order())
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if pa, ok := o.frames[idx]; ok { // raced with another breaker
		if err := o.pm.Free(dst, o.order()); err != nil {
			return 0, err
		}
		return pa, nil
	}
	o.frames[idx] = dst
	return dst, nil
}

// Resident returns the number of pages currently backed by frames.
func (o *Object) Resident() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return uint64(len(o.frames))
}

// Populate allocates frames for every page (physical reservation at segment
// creation, paper §4.1: "Physical pages are reserved at the time a segment
// is created, and are not swappable"). On a COW object it materializes
// private copies of every page.
func (o *Object) Populate() error {
	for idx := uint64(0); idx < o.Pages(); idx++ {
		if o.IsCOW(idx) {
			if _, err := o.BreakCOW(idx); err != nil {
				return err
			}
			continue
		}
		if _, err := o.Frame(idx); err != nil {
			return err
		}
	}
	return nil
}
