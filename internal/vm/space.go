package vm

import (
	"fmt"
	"sort"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
	"spacejmp/internal/pt"
	"spacejmp/internal/stats"
)

// MapFlags control how a region is established.
type MapFlags uint8

const (
	// MapFixed requires the region at exactly the requested address and
	// fails on overlap — SpaceJMP's safe alternative to Linux mmap's
	// silent overwrite (paper §2.4).
	MapFixed MapFlags = 1 << iota
	// MapPopulate eagerly allocates frames and installs translations.
	// Without it, pages are mapped on first fault.
	MapPopulate
	// MapGlobal marks translations global: they survive untagged TLB
	// flushes, used for mappings shared by all address spaces.
	MapGlobal
)

// Region is a BSD region descriptor: a contiguous virtual range backed by a
// window of a VM object.
type Region struct {
	Start  arch.VirtAddr
	Size   uint64
	Perm   arch.Perm
	Obj    *Object
	ObjOff uint64 // byte offset of the region's first page inside Obj
	Flags  MapFlags
}

// End returns the first address past the region.
func (r *Region) End() arch.VirtAddr { return r.Start + arch.VirtAddr(r.Size) }

func (r *Region) contains(va arch.VirtAddr) bool { return va >= r.Start && va < r.End() }

// Stats counts VM-layer activity for a Space.
type Stats struct {
	Faults     uint64
	PagesMaped uint64
	Maps       uint64
	Unmaps     uint64
	COWBreaks  uint64
}

// Space is a vmspace: region descriptors plus the page table the hardware
// walks. One Space is one virtual address space *instance*; SpaceJMP VASes
// are shared sets of segments from which per-process Spaces are built.
type Space struct {
	mu      sync.Mutex
	pm      *mem.PhysMem
	table   *pt.Table
	regions []*Region // sorted by Start, non-overlapping
	stats   Stats
	obs     *stats.Sink

	// Shootdown, if set, is invoked after translations in [va, va+size)
	// are removed or downgraded, so the OS can invalidate TLB entries on
	// every core that may cache them (the simulator's IPI shootdown).
	Shootdown func(va arch.VirtAddr, size uint64)
}

// shoot invokes the shootdown hook if installed. Caller holds s.mu; the
// hook must not call back into the space.
func (s *Space) shoot(va arch.VirtAddr, size uint64) {
	if s.Shootdown != nil {
		s.Shootdown(va, size)
	}
}

// NewSpace creates an empty address space.
func NewSpace(pm *mem.PhysMem) (*Space, error) {
	table, err := pt.New(pm)
	if err != nil {
		return nil, err
	}
	return &Space{pm: pm, table: table}, nil
}

// Table exposes the page table (for CR3 loads and subtree linking).
func (s *Space) Table() *pt.Table { return s.table }

// SetObserver installs the machine-wide stats sink on the space and its
// page table. Nil disables observation.
func (s *Space) SetObserver(sink *stats.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = sink
	s.table.SetObserver(sink.PTObs())
}

// Stats returns a snapshot of the space's counters.
func (s *Space) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// regionAt returns the region containing va, or nil. Caller holds s.mu.
func (s *Space) regionAt(va arch.VirtAddr) *Region {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > va })
	if i < len(s.regions) && s.regions[i].contains(va) {
		return s.regions[i]
	}
	return nil
}

// overlaps reports whether [va, va+size) intersects any region. Caller
// holds s.mu.
func (s *Space) overlaps(va arch.VirtAddr, size uint64) bool {
	end := va + arch.VirtAddr(size)
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > va })
	return i < len(s.regions) && s.regions[i].Start < end
}

// findFree locates a free range of the given size at or above hint.
// Caller holds s.mu.
func (s *Space) findFree(hint arch.VirtAddr, size uint64) (arch.VirtAddr, error) {
	va := arch.AlignUp(hint, arch.PageSize)
	for _, r := range s.regions {
		if r.End() <= va {
			continue
		}
		if uint64(r.Start) >= uint64(va)+size {
			break
		}
		va = arch.AlignUp(r.End(), arch.PageSize)
	}
	if uint64(va)+size > arch.VASize {
		return 0, fmt.Errorf("vm: out of virtual address space")
	}
	return va, nil
}

// DefaultMapBase is where non-fixed mappings begin, clear of the
// traditional process image.
const DefaultMapBase arch.VirtAddr = 0x7000_0000

// Map inserts a region mapping size bytes of obj starting at objOff. With
// MapFixed the region is placed exactly at va; otherwise va is a hint. The
// object gains a reference. Returns the chosen base address.
func (s *Space) Map(va arch.VirtAddr, size uint64, perm arch.Perm, obj *Object, objOff uint64, flags MapFlags) (arch.VirtAddr, error) {
	ps := obj.PageSize
	if ps == 0 {
		ps = arch.PageSize
	}
	if size == 0 || size%ps != 0 {
		return 0, fmt.Errorf("vm: map size %d not a multiple of the object's %d-byte pages", size, ps)
	}
	if uint64(va)%ps != 0 {
		return 0, fmt.Errorf("vm: map address %v not aligned to %d-byte pages", va, ps)
	}
	if objOff%ps != 0 || objOff+size > obj.Size {
		return 0, fmt.Errorf("vm: window [%d,+%d) outside object %q", objOff, size, obj.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if flags&MapFixed != 0 {
		if !(va + arch.VirtAddr(size)).Canonical() {
			return 0, fmt.Errorf("vm: fixed mapping %v exceeds virtual address space", va)
		}
		if s.overlaps(va, size) {
			return 0, fmt.Errorf("vm: fixed mapping at %v overlaps an existing region", va)
		}
	} else {
		if va == 0 {
			va = DefaultMapBase
		}
		var err error
		if va, err = s.findFree(va, size); err != nil {
			return 0, err
		}
	}
	r := &Region{Start: va, Size: size, Perm: perm, Obj: obj, ObjOff: objOff, Flags: flags}
	obj.Ref()
	obj.addMapper(s)
	s.insert(r)
	s.stats.Maps++
	s.obs.VMMap()
	if flags&MapPopulate != 0 {
		if err := s.populate(r); err != nil {
			s.remove(r)
			obj.delMapper(s)
			obj.Unref()
			return 0, err
		}
	}
	return va, nil
}

// MapAnon creates a fresh anonymous object and maps it — the moral
// equivalent of anonymous mmap. The space holds the only reference.
func (s *Space) MapAnon(va arch.VirtAddr, size uint64, perm arch.Perm, flags MapFlags) (arch.VirtAddr, error) {
	size = arch.PagesIn(size) * arch.PageSize
	obj := NewObject(s.pm, fmt.Sprintf("anon@%#x", uint64(va)), size, mem.TierDRAM)
	base, err := s.Map(va, size, perm, obj, 0, flags)
	obj.Unref() // region holds its own reference
	return base, err
}

// insert adds r keeping the slice sorted. Caller holds s.mu.
func (s *Space) insert(r *Region) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Start > r.Start })
	s.regions = append(s.regions, nil)
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
}

// remove deletes r. Caller holds s.mu.
func (s *Space) remove(r *Region) {
	for i, cur := range s.regions {
		if cur == r {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return
		}
	}
}

// pageSize returns the granularity the region is mapped at.
func (r *Region) pageSize() uint64 {
	if r.Obj.PageSize != 0 {
		return r.Obj.PageSize
	}
	return arch.PageSize
}

// populate eagerly installs every page of r. Caller holds s.mu.
func (s *Space) populate(r *Region) error {
	for off := uint64(0); off < r.Size; off += r.pageSize() {
		if err := s.mapPage(r, r.Start+arch.VirtAddr(off)); err != nil {
			return err
		}
	}
	return nil
}

// mapPage installs the translation for the page containing va in region r.
// Pages still shared copy-on-write are mapped with write permission
// stripped, so the first store faults and breakCOW runs. Caller holds s.mu.
func (s *Space) mapPage(r *Region, va arch.VirtAddr) error {
	ps := r.pageSize()
	base := arch.AlignDown(va, ps)
	idx := (r.ObjOff + uint64(base-r.Start)) / ps
	frame, err := r.Obj.Frame(idx)
	if err != nil {
		return err
	}
	perm := r.Perm
	if r.Obj.IsCOW(idx) {
		perm &^= arch.PermWrite
	}
	if err := s.table.MapPage(base, frame, ps, perm, r.Flags&MapGlobal != 0); err != nil {
		return err
	}
	s.stats.PagesMaped++
	return nil
}

// breakCOW services a write fault on a copy-on-write page: the object gets
// a private frame and the translation is upgraded in place. Caller holds
// s.mu.
func (s *Space) breakCOW(r *Region, va arch.VirtAddr) error {
	ps := r.pageSize()
	base := arch.AlignDown(va, ps)
	idx := (r.ObjOff + uint64(base-r.Start)) / ps
	frame, err := r.Obj.BreakCOW(idx)
	if err != nil {
		return err
	}
	// Replace the read-only shared translation (if installed) with the
	// private writable one.
	if _, err := s.table.Walk(base); err == nil {
		if err := s.table.Unmap(base, ps); err != nil {
			return err
		}
		s.shoot(base, ps)
	}
	if err := s.table.MapPage(base, frame, ps, r.Perm, r.Flags&MapGlobal != 0); err != nil {
		return err
	}
	s.stats.PagesMaped++
	s.stats.COWBreaks++
	s.obs.VMCOWBreak()
	return nil
}

// revokePage removes any installed translation for page idx of obj from
// this space — the receiving side of Object.revokeStale. The page re-faults
// on next access and picks up the object's current frame. Safe to call on a
// space that never installed the page.
func (s *Space) revokePage(obj *Object, idx uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if r.Obj != obj {
			continue
		}
		ps := r.pageSize()
		off := idx * ps
		if off < r.ObjOff || off >= r.ObjOff+r.Size {
			continue
		}
		va := r.Start + arch.VirtAddr(off-r.ObjOff)
		if _, err := s.table.Walk(va); err != nil {
			continue
		}
		if err := s.table.Unmap(va, ps); err != nil {
			continue
		}
		s.shoot(va, ps)
	}
}

// DowngradeWrites strips the write bit from every *installed* leaf
// translation in [va, va+size), leaving the region descriptors untouched —
// the fork-time downgrade that makes the next store to a now-COW page fault
// into breakCOW instead of writing through a stale writable PTE into the
// frozen frames. Region permissions keep their write bit on purpose: the
// fault handler's COW branch requires r.Perm.CanWrite() to upgrade the page
// back in place. Pages whose translations were never installed need nothing
// (their first touch faults already).
func (s *Space) DowngradeWrites(va arch.VirtAddr, size uint64) error {
	end := va + arch.VirtAddr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if r.End() <= va || r.Start >= end || !r.Perm.CanWrite() {
			continue
		}
		ps := r.pageSize()
		lo, hi := r.Start, r.End()
		if lo < va {
			lo = arch.AlignDown(va, ps)
		}
		if hi > end {
			hi = end
		}
		for p := lo; p < hi; p += arch.VirtAddr(ps) {
			if _, err := s.table.Walk(p); err != nil {
				continue
			}
			if err := s.table.Protect(p, ps, r.Perm&^arch.PermWrite); err != nil {
				return err
			}
		}
	}
	s.shoot(va, size)
	return nil
}

// Unmap removes every mapping in [va, va+size), splitting regions at the
// range boundaries, and drops object references of fully removed regions.
func (s *Space) Unmap(va arch.VirtAddr, size uint64) error {
	if size == 0 || size%arch.PageSize != 0 || !va.PageAligned() {
		return fmt.Errorf("vm: unmap range [%v,+%d) not page-aligned", va, size)
	}
	end := va + arch.VirtAddr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	var keep []*Region
	var drop []*Region
	for _, r := range s.regions {
		switch {
		case r.End() <= va || r.Start >= end:
			keep = append(keep, r)
		case r.Start >= va && r.End() <= end:
			drop = append(drop, r)
		default:
			// Partial overlap: split into surviving head and/or tail.
			if r.Start < va {
				head := *r
				head.Size = uint64(va - r.Start)
				head.Obj.Ref()
				head.Obj.addMapper(s)
				keep = append(keep, &head)
			}
			if r.End() > end {
				tail := *r
				tail.Start = end
				tail.ObjOff = r.ObjOff + uint64(end-r.Start)
				tail.Size = uint64(r.End() - end)
				tail.Obj.Ref()
				tail.Obj.addMapper(s)
				keep = append(keep, &tail)
			}
			drop = append(drop, r)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].Start < keep[j].Start })
	// Tear down translations only where they exist; lazily mapped pages
	// that never faulted have no leaf entries, and Unmap of the page table
	// tolerates holes within the range.
	if err := s.table.Unmap(va, size); err != nil {
		return err
	}
	s.shoot(va, size)
	s.regions = keep
	for _, r := range drop {
		r.Obj.delMapper(s)
		r.Obj.Unref()
	}
	s.stats.Unmaps++
	s.obs.VMUnmap()
	return nil
}

// Protect changes permissions on [va, va+size). It updates both the region
// descriptors (splitting as needed) and any existing leaf translations.
func (s *Space) Protect(va arch.VirtAddr, size uint64, perm arch.Perm) error {
	end := va + arch.VirtAddr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Region
	for _, r := range s.regions {
		if r.End() <= va || r.Start >= end {
			out = append(out, r)
			continue
		}
		lo, hi := r.Start, r.End()
		if lo < va {
			head := *r
			head.Size = uint64(va - lo)
			head.Obj.Ref()
			head.Obj.addMapper(s)
			out = append(out, &head)
			lo = va
		}
		if hi > end {
			tail := *r
			tail.Start = end
			tail.ObjOff = r.ObjOff + uint64(end-r.Start)
			tail.Size = uint64(hi - end)
			tail.Obj.Ref()
			tail.Obj.addMapper(s)
			out = append(out, &tail)
			hi = end
		}
		mid := *r
		mid.Start = lo
		mid.ObjOff = r.ObjOff + uint64(lo-r.Start)
		mid.Size = uint64(hi - lo)
		mid.Perm = perm
		mid.Obj.Ref()
		mid.Obj.addMapper(s)
		out = append(out, &mid)
		r.Obj.delMapper(s)
		r.Obj.Unref()
		// Update only translations that are actually installed.
		for p := lo; p < hi; p += arch.PageSize {
			if _, err := s.table.Walk(p); err == nil {
				if err := s.table.Protect(p, arch.PageSize, perm); err != nil {
					return err
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	s.regions = out
	s.shoot(va, size)
	return nil
}

// HandleFault services a page fault: if the faulting address lies in a
// region whose permissions allow the access, the page is mapped in. It has
// the hw.FaultHandler shape via Space.Handler. After a COW break, stale
// translations of the page in every other mapping space are revoked before
// the faulting store retries — without this, read-only mappings installed
// pre-break would keep serving the shared (frozen) frame forever.
func (s *Space) HandleFault(va arch.VirtAddr, access arch.Access) error {
	s.mu.Lock()
	s.stats.Faults++
	s.obs.VMFault()
	r := s.regionAt(va)
	if r == nil {
		s.mu.Unlock()
		return fmt.Errorf("vm: segmentation fault: %v %v", access, va)
	}
	if !r.Perm.Allows(access.Perm()) {
		s.mu.Unlock()
		return fmt.Errorf("vm: protection fault: %v of %v in %v region", access, va, r.Perm)
	}
	base := arch.AlignDown(va, r.pageSize())
	idx := (r.ObjOff + uint64(base-r.Start)) / r.pageSize()
	if access == arch.AccessWrite && r.Obj.IsCOW(idx) {
		obj := r.Obj
		err := s.breakCOW(r, va)
		s.mu.Unlock() // revocation takes other spaces' locks; drop ours first
		if err == nil {
			obj.revokeStale(s, idx)
		}
		return err
	}
	err := s.mapPage(r, va)
	s.mu.Unlock()
	return err
}

// Handler adapts the space to the hardware fault-handler hook.
func (s *Space) Handler() hw.FaultHandler {
	return func(_ *hw.Core, f *hw.PageFault) error {
		base := arch.AlignDown(f.VA, arch.PageSize)
		if _, err := s.table.Walk(base); err == nil {
			// Permission fault on an installed translation: a write to a
			// copy-on-write page is fixable; anything else surfaces.
			s.mu.Lock()
			r := s.regionAt(f.VA)
			if r != nil && f.Access == arch.AccessWrite && r.Perm.CanWrite() {
				hbase := arch.AlignDown(f.VA, r.pageSize())
				idx := (r.ObjOff + uint64(hbase-r.Start)) / r.pageSize()
				if r.Obj.IsCOW(idx) {
					s.stats.Faults++
					s.obs.VMFault()
					obj := r.Obj
					err := s.breakCOW(r, f.VA)
					s.mu.Unlock()
					if err == nil {
						obj.revokeStale(s, idx)
					}
					return err
				}
			}
			s.mu.Unlock()
			return fmt.Errorf("vm: protection fault: %v %v", f.Access, f.VA)
		}
		return s.HandleFault(f.VA, f.Access)
	}
}

// Regions returns a copy of the region list (for inspection and tests).
func (s *Space) Regions() []Region {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Region, len(s.regions))
	for i, r := range s.regions {
		out[i] = *r
	}
	return out
}

// Destroy tears down the page table and drops all object references.
func (s *Space) Destroy() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		r.Obj.delMapper(s)
		r.Obj.Unref()
	}
	s.regions = nil
	s.table.Destroy()
}
