package vm

import (
	"fmt"
	"sync"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
)

// TestForkRevokesStaleTranslations is the cross-space coherence contract of
// a frozen fork: after a write breaks COW in one space, every other space
// with an installed translation of that page must stop serving the frozen
// frame. Two spaces map the object — a writable one (the store's write VAS)
// and a read-only one (the read VAS) — both with translations installed
// before the fork.
func TestForkRevokesStaleTranslations(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	obj := NewObject(pm, "store", 4*arch.PageSize, mem.TierDRAM)
	ws, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewSpace(pm)
	if err != nil {
		t.Fatal(err)
	}
	const base = arch.VirtAddr(0x10000)
	if _, err := ws.Map(base, obj.Size, arch.PermRW, obj, 0, MapFixed|MapPopulate); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Map(base, obj.Size, arch.PermRead, obj, 0, MapFixed|MapPopulate); err != nil {
		t.Fatal(err)
	}
	va := base + 2*arch.PageSize
	w, err := ws.Table().Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteAt(w.PA, []byte("pre-fork")); err != nil {
		t.Fatal(err)
	}

	frozen := obj.ForkFrozen("store@frozen")
	defer frozen.Unref()
	if err := ws.DowngradeWrites(base, obj.Size); err != nil {
		t.Fatal(err)
	}

	// The store retries after the permission fault: breakCOW in the write
	// space, then the stale read-space translation must be gone.
	h := ws.Handler()
	if err := h(nil, &hw.PageFault{VA: va, Access: arch.AccessWrite}); err != nil {
		t.Fatal(err)
	}
	w, err = ws.Table().Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteAt(w.PA, []byte("postfork")); err != nil {
		t.Fatal(err)
	}

	if _, err := rs.Table().Walk(va); err == nil {
		t.Fatal("read space still holds a translation of the broken page")
	}
	if err := rs.HandleFault(va, arch.AccessRead); err != nil {
		t.Fatal(err)
	}
	r, err := rs.Table().Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if r.PA != w.PA {
		t.Fatalf("read space resolves %#x, writer's private frame is %#x", r.PA, w.PA)
	}
	buf := make([]byte, 8)
	if err := pm.ReadAt(r.PA, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "postfork" {
		t.Fatalf("read space sees %q after the break, want %q", buf, "postfork")
	}

	// The frozen view still serves the pre-fork content.
	fpa, ok := frozen.ResolveFrame(2)
	if !ok {
		t.Fatal("frozen view lost page 2")
	}
	if err := pm.ReadAt(fpa, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pre-fork" {
		t.Fatalf("frozen view sees %q, want %q", buf, "pre-fork")
	}

	ws.Destroy()
	rs.Destroy()
}

// TestForkFrozenConcurrentWriters races writers against frozen-view readers
// across repeated fork/release rounds (run under -race): the view captured
// at each fork must never change while writers keep mutating the live
// object, and every private frame must be reclaimed once the views die.
func TestForkFrozenConcurrentWriters(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	const pages = 8
	live := NewObject(pm, "live", pages*arch.PageSize, mem.TierDRAM)
	stamp := func(idx uint64, gen int) []byte {
		return []byte(fmt.Sprintf("p%02d-g%06d", idx, gen))
	}
	for idx := uint64(0); idx < pages; idx++ {
		pa, err := live.Frame(idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.WriteAt(pa, stamp(idx, 0)); err != nil {
			t.Fatal(err)
		}
	}
	baseline := pm.AllocatedBytes()

	// quiesce plays the cluster's node mutex: writers hold it per write,
	// the forker holds it for the instant of the frame swap.
	var quiesce sync.Mutex
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			gen := 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := uint64((gen*2 + w) % pages)
				quiesce.Lock()
				pa, err := live.BreakCOW(idx)
				if err == nil {
					err = pm.WriteAt(pa, stamp(idx, gen))
				}
				quiesce.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				gen++
			}
		}(w)
	}

	read := func(o *Object, idx uint64) string {
		pa, ok := o.ResolveFrame(idx)
		if !ok {
			return ""
		}
		buf := make([]byte, 11)
		if err := pm.ReadAt(pa, buf); err != nil {
			t.Error(err)
			return ""
		}
		return string(buf)
	}

	const rounds = 20
	for round := 0; round < rounds; round++ {
		quiesce.Lock()
		frozen := live.ForkFrozen(fmt.Sprintf("live@%d", round))
		snapshot := make([]string, pages)
		for idx := uint64(0); idx < pages; idx++ {
			snapshot[idx] = read(frozen, idx)
		}
		quiesce.Unlock()

		// Writers are live again; the frozen view must not move.
		for pass := 0; pass < 50; pass++ {
			for idx := uint64(0); idx < pages; idx++ {
				if got := read(frozen, idx); got != snapshot[idx] {
					t.Fatalf("round %d: frozen page %d changed from %q to %q under concurrent writes",
						round, idx, snapshot[idx], got)
				}
			}
		}
		frozen.Unref()
		quiesce.Lock()
		live.CollapseCOW()
		quiesce.Unlock()
	}
	close(stop)
	writerWG.Wait()

	live.CollapseCOW()
	if got := pm.AllocatedBytes(); got != baseline {
		t.Fatalf("allocated bytes %d after releasing every view, want baseline %d", got, baseline)
	}
	live.Unref()
	if err := pm.CheckLeaks(0); err != nil {
		t.Fatal(err)
	}
}

// TestForkCollapseReclaimsFrames holds the release path to the leak-check
// contract page by page: each fork/write/release round must return to the
// same footprint, and the final teardown to zero.
func TestForkCollapseReclaimsFrames(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	const pages = 4
	live := NewObject(pm, "live", pages*arch.PageSize, mem.TierDRAM)
	if err := live.Populate(); err != nil {
		t.Fatal(err)
	}
	steady := pm.AllocatedBytes()
	for round := 0; round < 5; round++ {
		frozen := live.ForkFrozen(fmt.Sprintf("live@%d", round))
		for idx := uint64(0); idx < pages; idx++ {
			if _, err := live.BreakCOW(idx); err != nil {
				t.Fatal(err)
			}
		}
		// Private copies double the footprint while the view lives.
		if got := pm.AllocatedBytes(); got != 2*steady {
			t.Fatalf("round %d: allocated %d with view live, want %d", round, got, 2*steady)
		}
		frozen.Unref()
		live.CollapseCOW()
		if got := pm.AllocatedBytes(); got != steady {
			t.Fatalf("round %d: allocated %d after release, want %d", round, got, steady)
		}
	}
	live.Unref()
	if err := pm.CheckLeaks(0); err != nil {
		t.Fatal(err)
	}
}
