package vm

import (
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
)

func TestObjectCloneCOWSharesFrames(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	src := NewObject(pm, "src", 4*arch.PageSize, mem.TierDRAM)
	defer src.Unref()
	if err := src.Populate(); err != nil {
		t.Fatal(err)
	}
	f1, _ := src.Frame(1)
	if err := pm.WriteAt(f1, []byte("original")); err != nil {
		t.Fatal(err)
	}
	clone := src.CloneCOW("clone")
	defer clone.Unref()
	cf, err := clone.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	if cf != f1 {
		t.Error("COW clone does not share the parent's frame")
	}
	if !clone.IsCOW(1) || src.IsCOW(1) {
		t.Error("IsCOW wrong")
	}
	if clone.Resident() != 0 {
		t.Errorf("clone resident = %d", clone.Resident())
	}
}

func TestBreakCOWCopiesContent(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	src := NewObject(pm, "src", 2*arch.PageSize, mem.TierDRAM)
	defer src.Unref()
	f0, _ := src.Frame(0)
	if err := pm.WriteAt(f0, []byte("shared content")); err != nil {
		t.Fatal(err)
	}
	clone := src.CloneCOW("clone")
	defer clone.Unref()
	own, err := clone.BreakCOW(0)
	if err != nil {
		t.Fatal(err)
	}
	if own == f0 {
		t.Fatal("BreakCOW did not allocate a private frame")
	}
	buf := make([]byte, 14)
	if err := pm.ReadAt(own, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared content" {
		t.Errorf("private copy holds %q", buf)
	}
	// Idempotent.
	again, err := clone.BreakCOW(0)
	if err != nil || again != own {
		t.Errorf("second BreakCOW: %v %v", again, err)
	}
	// Divergence: writes to the parent no longer reach the broken page.
	if err := pm.WriteAt(f0, []byte("parent-changed")); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReadAt(own, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared content" {
		t.Error("broken page follows the parent")
	}
}

func TestCOWWriteFaultThroughMMU(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	src := NewObject(m.PM, "src", 4*arch.PageSize, mem.TierDRAM)
	defer src.Unref()
	if err := src.Populate(); err != nil {
		t.Fatal(err)
	}
	// Fill page 2 via a scratch mapping.
	f2, _ := src.Frame(2)
	if err := m.PM.Store64(f2+8, 4242); err != nil {
		t.Fatal(err)
	}
	clone := src.CloneCOW("clone")
	defer clone.Unref()

	space, err := NewSpace(m.PM)
	if err != nil {
		t.Fatal(err)
	}
	defer space.Destroy()
	base, err := space.Map(0x10000, 4*arch.PageSize, arch.PermRW, clone, 0, MapFixed)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.LoadCR3(space.Table(), arch.ASIDFlush)
	c.OnFault = space.Handler()

	// Read first: demand-maps the COW page read-only; value is shared.
	va := base + 2*arch.PageSize + 8
	if v, err := c.Load64(va); err != nil || v != 4242 {
		t.Fatalf("COW read = %d, %v", v, err)
	}
	// Write: permission fault -> breakCOW -> retried store succeeds.
	if err := c.Store64(va, 5555); err != nil {
		t.Fatalf("COW write fault not resolved: %v", err)
	}
	if v, _ := c.Load64(va); v != 5555 {
		t.Errorf("read back %d", v)
	}
	// The source is untouched.
	if v, _ := m.PM.Load64(f2 + 8); v != 4242 {
		t.Errorf("source page modified: %d", v)
	}
	if space.Stats().COWBreaks != 1 {
		t.Errorf("COW breaks = %d", space.Stats().COWBreaks)
	}
	// Subsequent writes to the same page do not fault again.
	faults := space.Stats().Faults
	if err := c.Store64(va+16, 1); err != nil {
		t.Fatal(err)
	}
	if space.Stats().Faults != faults {
		t.Error("write to broken page faulted again")
	}
}

func TestCOWWriteBeforeReadFaults(t *testing.T) {
	// A store to a never-touched COW page goes through the not-mapped
	// fault path and must land on a private frame directly.
	m := hw.NewMachine(hw.SmallTest())
	src := NewObject(m.PM, "src", arch.PageSize, mem.TierDRAM)
	defer src.Unref()
	f0, _ := src.Frame(0)
	if err := m.PM.Store64(f0, 7); err != nil {
		t.Fatal(err)
	}
	clone := src.CloneCOW("clone")
	defer clone.Unref()
	space, _ := NewSpace(m.PM)
	defer space.Destroy()
	base, err := space.Map(0x10000, arch.PageSize, arch.PermRW, clone, 0, MapFixed)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.LoadCR3(space.Table(), arch.ASIDFlush)
	c.OnFault = space.Handler()
	if err := c.Store64(base, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Load64(base + 8); v != 0 {
		t.Errorf("rest of COW page = %d, want copied source content 0", v)
	}
	if v, _ := m.PM.Load64(f0); v != 7 {
		t.Errorf("source modified: %d", v)
	}
	if v, _ := c.Load64(base); v != 9 {
		t.Errorf("written value = %d", v)
	}
}

func TestPopulateBreaksAllCOW(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	src := NewObject(pm, "src", 4*arch.PageSize, mem.TierDRAM)
	defer src.Unref()
	if err := src.Populate(); err != nil {
		t.Fatal(err)
	}
	clone := src.CloneCOW("clone")
	defer clone.Unref()
	if err := clone.Populate(); err != nil {
		t.Fatal(err)
	}
	if clone.Resident() != 4 {
		t.Errorf("populated clone resident = %d", clone.Resident())
	}
	for i := uint64(0); i < 4; i++ {
		if clone.IsCOW(i) {
			t.Errorf("page %d still COW after Populate", i)
		}
	}
}

func TestCOWChainAndRefcounts(t *testing.T) {
	pm := mem.New(mem.Config{DRAMSize: 64 << 20})
	base := pm.Stats().AllocatedBytes
	src := NewObject(pm, "src", 2*arch.PageSize, mem.TierDRAM)
	if err := src.Populate(); err != nil {
		t.Fatal(err)
	}
	c1 := src.CloneCOW("c1")
	c2 := c1.CloneCOW("c2") // grandchild chains through c1 to src
	f, err := c2.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	sf, _ := src.Frame(0)
	if f != sf {
		t.Error("grandchild does not share the root frame")
	}
	// Dropping the user's refs in root-first order must keep parents
	// alive (children hold references) and free everything at the end.
	src.Unref()
	c1.Unref()
	if _, err := c2.Frame(1); err != nil {
		t.Errorf("chain broken after parent Unref: %v", err)
	}
	c2.Unref()
	if got := pm.Stats().AllocatedBytes; got != base {
		t.Errorf("leak: %d bytes", got-base)
	}
}
