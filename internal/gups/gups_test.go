package gups

import (
	"errors"
	"testing"

	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/mem"
	"spacejmp/internal/tlb"
	"spacejmp/internal/urpc"
)

// gupsMachine has enough cores for MP with several windows and enough
// memory for the windows.
func gupsMachine() *hw.Machine {
	cfg := hw.MachineConfig{
		Name: "gups-test", Sockets: 2, CoresPerSocket: 6, GHz: 2.3,
		// A small TLB keeps the paper's regime (window size well beyond
		// TLB reach) at test-friendly window sizes.
		Mem: mem.Config{DRAMSize: 2 << 30}, TLB: tlb.Config{Sets: 16, Ways: 4}, Cost: hw.DefaultCost,
	}
	return hw.NewMachine(cfg)
}

func smallCfg(windows int) Config {
	return Config{Windows: windows, WindowSize: 1 << 20, UpdateSet: 16, Visits: 64, Seed: 7}
}

func TestAllDesignsApplySameUpdateCount(t *testing.T) {
	cfg := smallCfg(4)
	m := gupsMachine()
	sys := kernel.New(m)
	rj, err := RunSpaceJMP(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RunMAP(gupsMachine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunMP(gupsMachine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.Visits * cfg.UpdateSet)
	for _, r := range []Result{rj, rm, rp} {
		if r.Updates != want {
			t.Errorf("%s applied %d updates, want %d", r.Design, r.Updates, want)
		}
		if r.Cycles == 0 || r.MUPS <= 0 {
			t.Errorf("%s reported no work: %+v", r.Design, r)
		}
	}
}

func TestMAPCollapsesBeyondOneWindow(t *testing.T) {
	// Figure 8's headline: with one window all designs are fine; with
	// several, MAP pays page-table construction per switch and collapses.
	one, err := RunMAP(gupsMachine(), smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunMAP(gupsMachine(), smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.MUPS*4 > one.MUPS {
		t.Errorf("MAP with 4 windows (%.2f MUPS) not dramatically slower than 1 window (%.2f MUPS)",
			four.MUPS, one.MUPS)
	}
}

func TestSpaceJMPBeatsMAPOnManyWindows(t *testing.T) {
	cfg := smallCfg(4)
	sj, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunMAP(gupsMachine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sj.MUPS <= mp.MUPS {
		t.Errorf("SpaceJMP (%.2f MUPS) did not beat MAP (%.2f MUPS) at 4 windows", sj.MUPS, mp.MUPS)
	}
}

func TestSpaceJMPAtLeastMatchesMP(t *testing.T) {
	// "The SpaceJMP implementation performs at least as well as the
	// multi-process implementation" (§5.2).
	cfg := smallCfg(4)
	sj, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunMP(gupsMachine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sj.MUPS < mp.MUPS*0.95 {
		t.Errorf("SpaceJMP (%.2f MUPS) below MP (%.2f MUPS)", sj.MUPS, mp.MUPS)
	}
}

func TestTagsReduceTLBMisses(t *testing.T) {
	cfg := smallCfg(4)
	untagged, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseTags = true
	tagged, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.TLBMisses >= untagged.TLBMisses {
		t.Errorf("tags did not reduce misses: %d vs %d", tagged.TLBMisses, untagged.TLBMisses)
	}
}

func TestSwitchCountTracksWindowChanges(t *testing.T) {
	cfg := smallCfg(4)
	r, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One switch per window *change*: at 4 windows roughly 3/4 of visits
	// change windows; never more than one per visit.
	if r.Switches > uint64(cfg.Visits) || r.Switches < uint64(cfg.Visits)/2 {
		t.Errorf("switches = %d for %d visits over 4 windows", r.Switches, cfg.Visits)
	}
	one, err := RunSpaceJMP(kernel.New(gupsMachine()), smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Switches > 1 {
		t.Errorf("1-window run performed %d switches, want at most the initial one", one.Switches)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg(2)
	a, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpaceJMP(kernel.New(gupsMachine()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TLBMisses != b.TLBMisses {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRepeatedRunsOnOneSystem(t *testing.T) {
	// Teardown must leave the system reusable under the same names.
	sys := kernel.New(gupsMachine())
	for i := 0; i < 2; i++ {
		if _, err := RunSpaceJMP(sys, smallCfg(2)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestMPNeedsEnoughCores(t *testing.T) {
	if _, err := RunMP(gupsMachine(), smallCfg(100)); err == nil {
		t.Error("MP with more windows than cores accepted")
	}
}

func TestMPSurvivesMessageDrops(t *testing.T) {
	// The MP design on a lossy transport: the urpc retry/dedup protocol
	// absorbs dropped requests and responses, so the run completes with the
	// full update count — just slower than the loss-free run.
	cfg := smallCfg(3)
	clean, err := RunMP(gupsMachine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := gupsMachine()
	reg := fault.New(cfg.Seed)
	m.SetFaults(reg)
	reg.Enable(fault.URPCDrop, fault.Probability(0.2))
	lossy, err := RunMP(m, cfg)
	if err != nil {
		t.Fatalf("MP under 20%% drops: %v", err)
	}
	if lossy.Updates != clean.Updates {
		t.Errorf("lossy run applied %d updates, clean %d", lossy.Updates, clean.Updates)
	}
	if lossy.Cycles <= clean.Cycles {
		t.Errorf("lossy run (%d cycles) not slower than clean (%d): retries unbilled?",
			lossy.Cycles, clean.Cycles)
	}
}

func TestMPFailsCleanlyWhenChannelDead(t *testing.T) {
	cfg := smallCfg(2)
	m := gupsMachine()
	reg := fault.New(1)
	m.SetFaults(reg)
	reg.Enable(fault.URPCDrop, fault.Always())
	if _, err := RunMP(m, cfg); !errors.Is(err, urpc.ErrTimeout) {
		t.Errorf("MP on dead channel: %v, want urpc.ErrTimeout", err)
	}
}
