// Package gups reproduces the paper's GUPS experiment (§5.2, Figures 8
// and 9): random updates to a large logical table partitioned into windows,
// where only one window fits the virtual address space design at a time.
//
// Three designs are compared:
//
//   - MAP: one process remaps its window with mmap/munmap on every window
//     change, paying page-table construction on the critical path.
//   - MP: one window per slave process; a master sends update batches over
//     message passing (the paper used OpenMPI; we use the urpc layer).
//   - SpaceJMP: one VAS per window, all attached by a single process whose
//     thread switches between them.
//
// Updates and window choices follow the same deterministic pseudo-random
// sequence in all designs, so reported differences come from the mechanism
// alone. Performance is reported in MUPS — million updates per simulated
// second at the machine's clock.
package gups

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/stats"
	"spacejmp/internal/urpc"
	"spacejmp/internal/vm"
)

// Config parameterizes one GUPS run. The paper uses 1 GiB windows on M3;
// the default scales the window down (the effects — page-table work per
// remap, TLB pressure per window — scale with page count, not bytes).
type Config struct {
	Windows    int    // number of windows (address spaces), 1–128
	WindowSize uint64 // bytes per window
	UpdateSet  int    // updates applied per window visit (16 or 64)
	Visits     int    // number of window visits
	Seed       int64
	UseTags    bool // SpaceJMP only: assign TLB tags to the VASes
	// PageSize backs the SpaceJMP windows (0 or arch.PageSize for 4 KiB;
	// arch.HugePageSize for 2 MiB leaves with shorter walks and larger
	// TLB reach).
	PageSize uint64
}

// DefaultConfig mirrors the paper's setup scaled for simulation: windows
// are far larger than TLB reach (the paper's 1 GiB windows against a
// 1536-entry TLB), so random updates miss the TLB in every design and the
// differences between designs come from the window-change mechanism.
func DefaultConfig() Config {
	return Config{Windows: 4, WindowSize: 16 << 20, UpdateSet: 64, Visits: 256, Seed: 42}
}

// WithWindows returns a copy of the config with the window count set.
func (c Config) WithWindows(w int) Config {
	c.Windows = w
	return c
}

// Result reports one design's run.
type Result struct {
	Design    string
	Updates   uint64
	Cycles    uint64  // cycles on the driving core
	Seconds   float64 // simulated wall time
	MUPS      float64
	Switches  uint64 // address-space switches (SpaceJMP)
	TLBMisses uint64
	Faults    uint64
	// Stats is the observability delta over the measured section, when the
	// system's stats sink is enabled (nil otherwise).
	Stats *stats.Snapshot
}

func finish(r Result, m *hw.Machine) Result {
	r.Seconds = m.CyclesToNs(r.Cycles) / 1e9
	if r.Seconds > 0 {
		r.MUPS = float64(r.Updates) / r.Seconds / 1e6
	}
	return r
}

// updateStream yields the deterministic (window, offsets) visit sequence.
type updateStream struct {
	rng   *rand.Rand
	cfg   Config
	words uint64
}

func newStream(cfg Config) *updateStream {
	return &updateStream{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, words: cfg.WindowSize / 8}
}

func (s *updateStream) next() (window int, offsets []uint64) {
	window = s.rng.Intn(s.cfg.Windows)
	offsets = make([]uint64, s.cfg.UpdateSet)
	for i := range offsets {
		offsets[i] = uint64(s.rng.Intn(int(s.words))) * 8
	}
	return window, offsets
}

// windowBase is the fixed virtual address every design accesses its current
// window at.
const windowBase = core.GlobalBase

// mpiRoundTrip models the OpenMPI software stack the paper's MP baseline
// runs on (marshalling, matching, progress engine) on top of the raw
// shared-memory transport: roughly 0.65 µs per send/recv pair, ~1500
// cycles at 2.3 GHz. Raw URPC (Figure 7) is far cheaper, but the paper's
// GUPS baseline is MPI, not hand-rolled channels.
const mpiRoundTrip = 1500

// RunSpaceJMP runs the SpaceJMP design on sys: one VAS per window holding a
// window segment at windowBase, a single thread switching between them.
func RunSpaceJMP(sys *core.System, cfg Config) (Result, error) {
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return Result{}, err
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		return Result{}, err
	}
	handles := make([]core.Handle, cfg.Windows)
	for w := 0; w < cfg.Windows; w++ {
		vid, err := th.VASCreate(fmt.Sprintf("gups.v%d", w), 0o600)
		if err != nil {
			return Result{}, err
		}
		pageSize := cfg.PageSize
		if pageSize == 0 {
			pageSize = arch.PageSize
		}
		sid, err := th.SegAlloc(fmt.Sprintf("gups.win%d", w), windowBase, cfg.WindowSize, arch.PermRW, core.WithPageSize(pageSize))
		if err != nil {
			return Result{}, err
		}
		if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
			return Result{}, err
		}
		if cfg.UseTags {
			if err := th.VASCtl(vid, core.SetTag()); err != nil {
				return Result{}, err
			}
		}
		if handles[w], err = th.VASAttach(vid); err != nil {
			return Result{}, err
		}
	}
	// Warm-up: fault every window page in once, reaching the steady state
	// a long-running GUPS spends virtually all its time in (the paper's
	// runs apply updates for minutes; cold demand-paging is amortized to
	// nothing there).
	for _, h := range handles {
		if err := th.VASSwitch(h); err != nil {
			return Result{}, err
		}
		for off := uint64(0); off < cfg.WindowSize; off += arch.PageSize {
			if _, err := th.Load64(windowBase + arch.VirtAddr(off)); err != nil {
				return Result{}, err
			}
		}
	}
	stream := newStream(cfg)
	th.Core.ResetStats()
	statsBefore := sys.Stats()
	startCycles := th.Core.Cycles()
	startSwitches := sys.Switches()
	cur := -1
	for v := 0; v < cfg.Visits; v++ {
		w, offsets := stream.next()
		// Switch only on window changes; revisiting the current window
		// needs no OS interaction at all (with one window, SpaceJMP runs
		// switch-free, matching the paper's parity at one address space).
		if w != cur {
			if err := th.VASSwitch(handles[w]); err != nil {
				return Result{}, err
			}
			cur = w
		}
		for _, off := range offsets {
			va := windowBase + arch.VirtAddr(off)
			old, err := th.Load64(va)
			if err != nil {
				return Result{}, err
			}
			if err := th.Store64(va, old^uint64(off)); err != nil {
				return Result{}, err
			}
		}
	}
	st := th.Core.Stats()
	r := Result{
		Design:    "SpaceJMP",
		Updates:   uint64(cfg.Visits * cfg.UpdateSet),
		Cycles:    th.Core.Cycles() - startCycles,
		Switches:  sys.Switches() - startSwitches,
		TLBMisses: st.TLBMisses,
		Faults:    st.Faults,
		Stats:     sys.Stats().Delta(statsBefore),
	}
	// Tear down the segments so repeated runs can reuse the names.
	for w := 0; w < cfg.Windows; w++ {
		if err := th.VASSwitch(core.PrimaryHandle); err != nil {
			return Result{}, err
		}
		sid, err := th.SegFind(fmt.Sprintf("gups.win%d", w))
		if err != nil {
			return Result{}, err
		}
		vid, err := th.VASFind(fmt.Sprintf("gups.v%d", w))
		if err != nil {
			return Result{}, err
		}
		if err := th.VASDetach(handles[w]); err != nil {
			return Result{}, err
		}
		if err := th.SegDetachVAS(vid, sid); err != nil {
			return Result{}, err
		}
		if err := th.SegFree(sid); err != nil {
			return Result{}, err
		}
		if err := th.VASDestroy(vid); err != nil {
			return Result{}, err
		}
	}
	return finish(r, sys.M), nil
}

// RunMAP runs the remapping design: one address space, windows mapped in
// and out of the fixed range with eager population — the mmap/munmap cost
// sits on the critical path of every window change.
func RunMAP(m *hw.Machine, cfg Config) (Result, error) {
	space, err := vm.NewSpace(m.PM)
	if err != nil {
		return Result{}, err
	}
	defer space.Destroy()
	// The windows' backing objects persist (the kernel page cache holds
	// the pages); only the mappings churn.
	objs := make([]*vm.Object, cfg.Windows)
	for w := range objs {
		objs[w] = vm.NewObject(m.PM, fmt.Sprintf("map.win%d", w), cfg.WindowSize, 0)
		if err := objs[w].Populate(); err != nil {
			return Result{}, err
		}
		defer objs[w].Unref()
	}
	c := m.Cores[0]
	c.LoadCR3(space.Table(), arch.ASIDFlush)
	c.OnFault = space.Handler()
	c.ResetStats()
	start := c.Cycles()
	stream := newStream(cfg)
	cur := -1
	for v := 0; v < cfg.Visits; v++ {
		w, offsets := stream.next()
		if w != cur {
			before := space.Table().Stats()
			if cur >= 0 {
				if err := space.Unmap(windowBase, cfg.WindowSize); err != nil {
					return Result{}, err
				}
			}
			if _, err := space.Map(windowBase, cfg.WindowSize, arch.PermRW, objs[w], 0, vm.MapFixed|vm.MapPopulate); err != nil {
				return Result{}, err
			}
			c.ChargePT(hw.DeltaPT(before, space.Table().Stats()))
			c.AddCycles(2 * 357) // mmap + munmap syscall entries
			cur = w
		}
		for _, off := range offsets {
			va := windowBase + arch.VirtAddr(off)
			old, err := c.Load64(va)
			if err != nil {
				return Result{}, err
			}
			if err := c.Store64(va, old^uint64(off)); err != nil {
				return Result{}, err
			}
		}
	}
	st := c.Stats()
	return finish(Result{
		Design:    "MAP",
		Updates:   uint64(cfg.Visits * cfg.UpdateSet),
		Cycles:    c.Cycles() - start,
		TLBMisses: st.TLBMisses,
		Faults:    st.Faults,
	}, m), nil
}

// RunMP runs the multi-process design: each window lives in its own slave
// process (own address space, own core); the master ships update batches
// over message passing and blocks for the acknowledgment.
func RunMP(m *hw.Machine, cfg Config) (Result, error) {
	if cfg.Windows+1 > len(m.Cores) {
		return Result{}, fmt.Errorf("gups: MP needs %d cores, machine has %d", cfg.Windows+1, len(m.Cores))
	}
	type slave struct {
		space *vm.Space
		ep    *urpc.Endpoint
	}
	slaves := make([]*slave, cfg.Windows)
	for w := range slaves {
		space, err := vm.NewSpace(m.PM)
		if err != nil {
			return Result{}, err
		}
		defer space.Destroy()
		if _, err := space.MapAnon(windowBase, cfg.WindowSize, arch.PermRW, vm.MapFixed|vm.MapPopulate); err != nil {
			return Result{}, err
		}
		coreID := w + 1
		sc := m.Cores[coreID]
		sc.LoadCR3(space.Table(), arch.ASIDFlush)
		sc.OnFault = space.Handler()
		// Slaves reach steady state before the measured run: mappings are
		// populated and each page has been touched once.
		for off := uint64(0); off < cfg.WindowSize; off += arch.PageSize {
			if _, err := sc.Load64(windowBase + arch.VirtAddr(off)); err != nil {
				return Result{}, err
			}
		}
		sc.ResetStats()
		sl := &slave{space: space}
		sl.ep = urpc.Connect(m, 0, coreID, 64, func(req []byte) []byte {
			// Apply the batch of 8-byte offsets to the local window.
			for i := 0; i+8 <= len(req); i += 8 {
				off := binary.LittleEndian.Uint64(req[i:])
				va := windowBase + arch.VirtAddr(off)
				old, err := sc.Load64(va)
				if err != nil {
					return []byte("ERR")
				}
				if err := sc.Store64(va, old^off); err != nil {
					return []byte("ERR")
				}
			}
			return []byte("OK")
		})
		slaves[w] = sl
	}
	master := m.Cores[0]
	start := master.Cycles()
	stream := newStream(cfg)
	buf := make([]byte, cfg.UpdateSet*8)
	var misses uint64
	for v := 0; v < cfg.Visits; v++ {
		w, offsets := stream.next()
		for i, off := range offsets {
			binary.LittleEndian.PutUint64(buf[i*8:], off)
		}
		resp, err := slaves[w].ep.Call(buf)
		if err != nil {
			return Result{}, err
		}
		if string(resp) != "OK" {
			return Result{}, fmt.Errorf("gups: slave error")
		}
		master.AddCycles(mpiRoundTrip)
	}
	for _, sl := range slaves {
		misses += sl.ep.ServerCore().Stats().TLBMisses
	}
	return finish(Result{
		Design:    "MP",
		Updates:   uint64(cfg.Visits * cfg.UpdateSet),
		Cycles:    master.Cycles() - start,
		TLBMisses: misses,
	}, m), nil
}
