// Package urpc implements user-level RPC over shared-memory channels in the
// style of Barrelfish UMP / FastForward (paper §5.1, Figure 7): circular
// buffers of cache-line-sized messages polled by sender and receiver. Each
// line moved between cores costs a cache-line transfer, more when the cores
// sit on different sockets (URPC L vs URPC X in the figure).
//
// Calls execute the server handler inline but attribute every cycle to the
// correct simulated core: the client core is charged for its sends,
// receives, and the busy-wait while the server works; the server core is
// charged for its receives, dispatch, handler work, and sends. The paper's
// GUPS message-passing baseline (§5.2) is built on this layer too.
package urpc

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/hw"
)

// PayloadPerLine is the usable payload of one cache-line message after the
// sequence/valid header.
const PayloadPerLine = arch.CacheLineSize - 8

// DispatchCycles models the receiver's demultiplex-and-dispatch work per
// message batch.
const DispatchCycles = 60

// Lines returns the number of cache-line messages needed for n bytes. Every
// transfer uses at least one line (a 64-bit key rides in the header line).
func Lines(n int) uint64 {
	if n <= 0 {
		return 1
	}
	return uint64((n + PayloadPerLine - 1) / PayloadPerLine)
}

// Stats counts channel activity.
type Stats struct {
	Sends uint64
	Recvs uint64
	Lines uint64
}

// Channel is a one-directional ring of cache-line messages between two
// cores.
type Channel struct {
	m        *hw.Machine
	tx, rx   int
	ring     [][]byte
	head     int // next slot to read
	count    int // occupied slots
	perLine  uint64
	stats    Stats
	capacity int
}

// NewChannel creates a channel with the given number of message slots from
// core tx to core rx.
func NewChannel(m *hw.Machine, tx, rx, slots int) *Channel {
	perLine := m.Cfg.Cost.CacheLineXfer
	if !m.SameSocket(tx, rx) {
		perLine = m.Cfg.Cost.CacheLineXSoc
	}
	return &Channel{
		m: m, tx: tx, rx: rx,
		ring: make([][]byte, slots), capacity: slots,
		perLine: perLine,
	}
}

// CrossSocket reports whether the channel spans sockets.
func (c *Channel) CrossSocket() bool { return !c.m.SameSocket(c.tx, c.rx) }

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// Send enqueues a message, charging the sending core one cache-line
// transfer per line. Fails when the ring is full (the caller polls).
func (c *Channel) Send(payload []byte) error {
	if c.count == c.capacity {
		return fmt.Errorf("urpc: channel full (%d slots)", c.capacity)
	}
	lines := Lines(len(payload))
	c.m.Cores[c.tx].AddCycles(lines * c.perLine)
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.ring[(c.head+c.count)%c.capacity] = msg
	c.count++
	c.stats.Sends++
	c.stats.Lines += lines
	return nil
}

// Recv dequeues the oldest message, charging the receiving core per line
// plus dispatch. Fails when the ring is empty.
func (c *Channel) Recv() ([]byte, error) {
	if c.count == 0 {
		return nil, fmt.Errorf("urpc: channel empty")
	}
	msg := c.ring[c.head]
	c.ring[c.head] = nil
	c.head = (c.head + 1) % c.capacity
	c.count--
	c.m.Cores[c.rx].AddCycles(Lines(len(msg))*c.perLine + DispatchCycles)
	c.stats.Recvs++
	return msg, nil
}

// Len returns the number of queued messages.
func (c *Channel) Len() int { return c.count }

// Handler processes a request and produces a response. It runs with the
// server core's cycle counter active: any simulated memory work it performs
// through that core is charged there.
type Handler func(req []byte) []byte

// Endpoint is a bidirectional RPC binding between a client core and a
// server core.
type Endpoint struct {
	m              *hw.Machine
	client, server int
	req, resp      *Channel
	handler        Handler
}

// Connect binds a client core to a server core with the given handler.
func Connect(m *hw.Machine, clientCore, serverCore, slots int, h Handler) *Endpoint {
	return &Endpoint{
		m: m, client: clientCore, server: serverCore,
		req:     NewChannel(m, clientCore, serverCore, slots),
		resp:    NewChannel(m, serverCore, clientCore, slots),
		handler: h,
	}
}

// ServerCore returns the core the handler runs on.
func (e *Endpoint) ServerCore() *hw.Core { return e.m.Cores[e.server] }

// ClientCore returns the calling core.
func (e *Endpoint) ClientCore() *hw.Core { return e.m.Cores[e.client] }

// Call performs one RPC round trip and returns the response. The client
// core's cycle delta across Call is the client-perceived latency the paper
// plots in Figure 7.
func (e *Endpoint) Call(request []byte) ([]byte, error) {
	client := e.m.Cores[e.client]
	server := e.m.Cores[e.server]
	if err := e.req.Send(request); err != nil {
		return nil, err
	}
	// Server side: receive, dispatch, handle, respond.
	before := server.Cycles()
	req, err := e.req.Recv()
	if err != nil {
		return nil, err
	}
	response := e.handler(req)
	if err := e.resp.Send(response); err != nil {
		return nil, err
	}
	// The client busy-waits while the server works.
	client.AddCycles(server.Cycles() - before)
	return e.resp.Recv()
}

// CallLatency runs one call and returns the client-perceived latency in
// cycles.
func (e *Endpoint) CallLatency(request []byte) (uint64, error) {
	before := e.m.Cores[e.client].Cycles()
	if _, err := e.Call(request); err != nil {
		return 0, err
	}
	return e.m.Cores[e.client].Cycles() - before, nil
}
