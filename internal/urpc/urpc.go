// Package urpc implements user-level RPC over shared-memory channels in the
// style of Barrelfish UMP / FastForward (paper §5.1, Figure 7): circular
// buffers of cache-line-sized messages polled by sender and receiver. Each
// line moved between cores costs a cache-line transfer, more when the cores
// sit on different sockets (URPC L vs URPC X in the figure).
//
// Calls execute the server handler inline but attribute every cycle to the
// correct simulated core: the client core is charged for its sends,
// receives, and the busy-wait while the server works; the server core is
// charged for its receives, dispatch, handler work, and sends. The paper's
// GUPS message-passing baseline (§5.2) is built on this layer too.
//
// The transport is lossy under fault injection: an armed fault.URPCDrop
// point silently discards a message after the sender paid for it, and
// fault.URPCDelay stalls the sender. Endpoint.Call layers an at-most-once
// RPC protocol on top — sequence-numbered requests, a server-side duplicate
// cache, and bounded timeout/retry with exponential backoff — so callers
// see degraded latency rather than lost or doubly-applied operations.
package urpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
)

// PayloadPerLine is the usable payload of one cache-line message after the
// sequence/valid header.
const PayloadPerLine = arch.CacheLineSize - 8

// DispatchCycles models the receiver's demultiplex-and-dispatch work per
// message batch.
const DispatchCycles = 60

// DelayCycles is the stall charged to a sender when fault.URPCDelay fires:
// the line sits in the sender's store buffer while the interconnect is busy.
const DelayCycles = 5000

// DefaultTimeoutCycles is the client's initial busy-wait before it declares
// a request lost and retries; it doubles on every retry.
const DefaultTimeoutCycles = 1 << 14

// DefaultMaxRetries bounds how many times Call re-sends a request before
// giving up with ErrTimeout.
const DefaultMaxRetries = 8

// MaxBackoffShift caps the exponential backoff doubling: the busy-wait for
// retry t is TimeoutCycles << min(t, MaxBackoffShift). Without the cap a
// large MaxRetries shifts past 63 — in Go that makes the charge wrap to 0
// (a hot spin), and the charges on the way there jump the core's cycle
// counter by absurd amounts.
const MaxBackoffShift = 6

// ErrTimeout reports a Call whose request or response kept getting lost:
// every retry timed out without a matching response arriving. Call returns
// a *TimeoutError, which wraps both this sentinel and core.ErrTimeout.
var ErrTimeout = errors.New("urpc: call timed out")

// TimeoutError is the typed error a Call returns when it exhausts its
// retries. It carries the request sequence number and the retry count, and
// unwraps to both urpc.ErrTimeout and core.ErrTimeout so routing layers can
// distinguish a retryable transport timeout from a payload error.
type TimeoutError struct {
	Seq     uint64 // sequence number of the abandoned request
	Retries int    // re-sends performed before giving up
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("urpc: call timed out: seq %d after %d retries", e.Seq, e.Retries)
}

// Unwrap makes errors.Is(err, urpc.ErrTimeout) and errors.Is(err,
// core.ErrTimeout) both hold.
func (e *TimeoutError) Unwrap() []error { return []error{ErrTimeout, core.ErrTimeout} }

// ErrBudget reports a CallBudget abandoned because the caller's cycle
// budget ran out before a response arrived.
var ErrBudget = errors.New("urpc: call budget exhausted")

// BudgetError is the typed error CallBudget returns when the caller's
// remaining cycle budget runs out mid-retry. It unwraps to ErrBudget (so
// routing layers can answer a typed deadline refusal) and also to
// ErrTimeout/core.ErrTimeout — a budget exhaustion is a transport-level
// timeout as far as retryability and crash fencing are concerned, just a
// deadline-shaped one.
type BudgetError struct {
	Seq    uint64 // sequence number of the abandoned request
	Budget uint64 // the cycle budget the call started with
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("urpc: call budget exhausted: seq %d after %d cycles", e.Seq, e.Budget)
}

// Unwrap makes errors.Is hold for ErrBudget, ErrTimeout and core.ErrTimeout.
func (e *BudgetError) Unwrap() []error { return []error{ErrBudget, ErrTimeout, core.ErrTimeout} }

// Lines returns the number of cache-line messages needed for n bytes. Every
// transfer uses at least one line (a 64-bit key rides in the header line).
func Lines(n int) uint64 {
	if n <= 0 {
		return 1
	}
	return uint64((n + PayloadPerLine - 1) / PayloadPerLine)
}

// Stats counts channel activity.
type Stats struct {
	Sends  uint64
	Recvs  uint64
	Lines  uint64
	Drops  uint64 // messages paid for but lost to fault injection
	Delays uint64 // messages stalled by fault injection
}

// message is one ring slot: one cache line carrying at most PayloadPerLine
// payload bytes. The frame's sequence number and a last-fragment flag ride
// in the line's 8-byte header (already accounted for in PayloadPerLine),
// out of band of the payload, so transfer costs depend only on payload
// size. A value longer than one line is framed across consecutive slots and
// reassembled by the receiver — the multi-slot framing variable-length
// cluster values need.
type message struct {
	seq     uint64
	last    bool // final fragment of its frame
	payload []byte
}

// Channel is a one-directional ring of cache-line messages between two
// cores.
type Channel struct {
	m        *hw.Machine
	tx, rx   int
	ring     []message
	head     int // next slot to read
	count    int // occupied slots
	frames   int // complete frames queued
	perLine  uint64
	stats    Stats
	capacity int
}

// NewChannel creates a channel with the given number of message slots from
// core tx to core rx.
func NewChannel(m *hw.Machine, tx, rx, slots int) *Channel {
	perLine := m.Cfg.Cost.CacheLineXfer
	if !m.SameSocket(tx, rx) {
		perLine = m.Cfg.Cost.CacheLineXSoc
	}
	return &Channel{
		m: m, tx: tx, rx: rx,
		ring: make([]message, slots), capacity: slots,
		perLine: perLine,
	}
}

// CrossSocket reports whether the channel spans sockets.
func (c *Channel) CrossSocket() bool { return !c.m.SameSocket(c.tx, c.rx) }

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// Send enqueues one message, charging the sending core one cache-line
// transfer per line. A payload longer than one line is framed across that
// many ring slots; Send fails when the frame does not fit in the ring's
// free slots (the caller polls). An armed fault.URPCDrop point loses the
// whole frame after the sender paid for it — exactly how a lossy
// interconnect looks from the sending side.
func (c *Channel) Send(payload []byte) error { return c.sendSeq(0, payload) }

func (c *Channel) sendSeq(seq uint64, payload []byte) error {
	lines := Lines(len(payload))
	if c.count+int(lines) > c.capacity {
		return fmt.Errorf("urpc: channel full (%d of %d slots free, frame needs %d)",
			c.capacity-c.count, c.capacity, lines)
	}
	c.m.Cores[c.tx].AddCycles(lines * c.perLine)
	if c.m.Faults.Fire(fault.URPCDelay) {
		c.m.Cores[c.tx].AddCycles(DelayCycles)
		c.stats.Delays++
	}
	c.stats.Sends++
	c.stats.Lines += lines
	if c.m.Faults.Fire(fault.URPCDrop) {
		c.stats.Drops++
		return nil
	}
	// Fragment into cache-line slots. The final fragment carries the last
	// flag the receiver reassembles on; an empty payload is one empty,
	// last fragment (the 64-bit-key-in-header case).
	for i := uint64(0); i < lines; i++ {
		lo := int(i) * PayloadPerLine
		hi := lo + PayloadPerLine
		if hi > len(payload) {
			hi = len(payload)
		}
		frag := message{seq: seq, last: i == lines-1, payload: make([]byte, hi-lo)}
		copy(frag.payload, payload[lo:hi])
		c.ring[(c.head+c.count)%c.capacity] = frag
		c.count++
	}
	c.frames++
	return nil
}

// Recv dequeues the oldest message, reassembling its fragments and charging
// the receiving core per line plus one dispatch. Fails when the ring holds
// no complete frame.
func (c *Channel) Recv() ([]byte, error) {
	_, payload, err := c.recvSeq()
	return payload, err
}

func (c *Channel) recvSeq() (uint64, []byte, error) {
	if c.frames == 0 {
		return 0, nil, fmt.Errorf("urpc: channel empty")
	}
	var payload []byte
	var seq uint64
	var lines uint64
	for {
		msg := c.ring[c.head]
		c.ring[c.head] = message{}
		c.head = (c.head + 1) % c.capacity
		c.count--
		lines++
		seq = msg.seq
		payload = append(payload, msg.payload...)
		if msg.last {
			break
		}
	}
	c.frames--
	c.m.Cores[c.rx].AddCycles(lines*c.perLine + DispatchCycles)
	c.stats.Recvs++
	return seq, payload, nil
}

// Len returns the number of queued messages (complete frames, however many
// slots each occupies).
func (c *Channel) Len() int { return c.frames }

// Handler processes a request and produces a response. It runs with the
// server core's cycle counter active: any simulated memory work it performs
// through that core is charged there.
type Handler func(req []byte) []byte

// Endpoint is a bidirectional RPC binding between a client core and a
// server core.
type Endpoint struct {
	m              *hw.Machine
	client, server int
	req, resp      *Channel
	handler        Handler

	// MaxRetries and TimeoutCycles govern Call's retry loop on a lossy
	// channel; Connect sets the defaults.
	MaxRetries    int
	TimeoutCycles uint64

	nextSeq uint64 // client: next request sequence number

	// Server-side at-most-once duplicate cache: a retried request whose
	// original was already executed gets the cached response instead of
	// running the handler twice (the handler may not be idempotent —
	// GUPS's XOR updates are the in-repo example).
	lastSeq  uint64
	lastResp []byte

	retries uint64 // total re-sends across all Calls
}

// Connect binds a client core to a server core with the given handler.
func Connect(m *hw.Machine, clientCore, serverCore, slots int, h Handler) *Endpoint {
	return &Endpoint{
		m: m, client: clientCore, server: serverCore,
		req:     NewChannel(m, clientCore, serverCore, slots),
		resp:    NewChannel(m, serverCore, clientCore, slots),
		handler: h,

		MaxRetries:    DefaultMaxRetries,
		TimeoutCycles: DefaultTimeoutCycles,
		nextSeq:       1,
	}
}

// ServerCore returns the core the handler runs on.
func (e *Endpoint) ServerCore() *hw.Core { return e.m.Cores[e.server] }

// ClientCore returns the calling core.
func (e *Endpoint) ClientCore() *hw.Core { return e.m.Cores[e.client] }

// Retries returns the total number of request re-sends this endpoint has
// performed (0 on a loss-free channel).
func (e *Endpoint) Retries() uint64 { return e.retries }

// ChannelStats returns snapshots of the request and response channel
// counters, exposing drop/delay accounting to callers.
func (e *Endpoint) ChannelStats() (req, resp Stats) { return e.req.Stats(), e.resp.Stats() }

// Pending returns the frames sitting unconsumed in either ring. A drained
// endpoint reports zero: Call either completes a round trip (consuming the
// response and any stale retries) or times out with nothing queued.
func (e *Endpoint) Pending() int { return e.req.Len() + e.resp.Len() }

// backoff returns the busy-wait charge for a timed-out try: exponential in
// the retry count, capped at MaxBackoffShift doublings.
func (e *Endpoint) backoff(try int) uint64 {
	shift := uint(try)
	if shift > MaxBackoffShift {
		shift = MaxBackoffShift
	}
	return e.TimeoutCycles << shift
}

// Call performs one RPC round trip and returns the response. The client
// core's cycle delta across Call is the client-perceived latency the paper
// plots in Figure 7.
//
// Call is at-most-once under message loss: the request carries a sequence
// number, a lost request or response makes the client time out (charging
// the busy-wait, doubling each retry up to MaxBackoffShift) and re-send,
// and the server's duplicate cache ensures a re-executed round trip never
// runs the handler twice for the same sequence number. After MaxRetries
// lost round trips Call returns ErrTimeout.
func (e *Endpoint) Call(request []byte) ([]byte, error) { return e.CallBudget(request, 0) }

// CallBudget is Call under a cycle budget: budget == 0 is plain Call;
// otherwise the retry loop is capped so the call never burns the client
// core past the caller's remaining allowance — each timeout's backoff is
// clamped to the budget still unspent, and once the budget is dry the call
// stops retrying and returns a *BudgetError instead of riding out the full
// retry ladder. The guarantee callers leaning on deadlines get: cycles
// charged to the client core by backoff never exceed the budget.
func (e *Endpoint) CallBudget(request []byte, budget uint64) ([]byte, error) {
	client := e.m.Cores[e.client]
	server := e.m.Cores[e.server]
	start := client.Cycles()
	seq := e.nextSeq
	e.nextSeq++
	for try := 0; try <= e.MaxRetries; try++ {
		if budget != 0 && client.Cycles()-start >= budget {
			return nil, &BudgetError{Seq: seq, Budget: budget}
		}
		if try > 0 {
			e.retries++
			e.m.Observer().URPCRetry(e.client, seq, uint64(try))
		}
		if err := e.req.sendSeq(seq, request); err != nil {
			return nil, err
		}
		// Server side: receive, dispatch, handle, respond. An empty
		// request ring means the send was dropped in flight.
		before := server.Cycles()
		rseq, req, err := e.req.recvSeq()
		if err == nil {
			var response []byte
			if rseq != 0 && rseq == e.lastSeq {
				response = e.lastResp // duplicate of an executed request
			} else {
				response = e.handler(req)
				if rseq != 0 {
					e.lastSeq, e.lastResp = rseq, response
				}
			}
			if err := e.resp.sendSeq(rseq, response); err != nil {
				return nil, err
			}
		}
		// The client busy-waits while the server works.
		client.AddCycles(server.Cycles() - before)
		// Drain the response ring: stale responses from earlier retries
		// are discarded, a matching sequence number completes the call.
		for e.resp.Len() > 0 {
			sseq, resp, err := e.resp.recvSeq()
			if err != nil {
				break
			}
			if sseq == seq {
				return resp, nil
			}
		}
		// Nothing (or only stale traffic) arrived: time out and retry,
		// backing off exponentially — but a budgeted call never sleeps
		// past its remaining allowance.
		wait := e.backoff(try)
		if budget != 0 {
			spent := client.Cycles() - start
			if spent >= budget {
				return nil, &BudgetError{Seq: seq, Budget: budget}
			}
			if rem := budget - spent; wait > rem {
				wait = rem
			}
		}
		client.AddCycles(wait)
	}
	return nil, &TimeoutError{Seq: seq, Retries: e.MaxRetries}
}

// Bulk responses are streamed as kind-tagged frames so CallBulk can tell a
// length header from a data chunk even when loss reorders what arrives: one
// header frame (total response length) followed by data chunks, each small
// enough to fit the response ring, with the client draining between sends.
const (
	bulkHeader byte = 0
	bulkData   byte = 1
)

// bulkChunkBytes is the largest data-chunk payload one streamed frame may
// carry: the whole ring minus one slot of headroom, minus the kind tag.
func (e *Endpoint) bulkChunkBytes() int {
	return (e.resp.capacity-1)*PayloadPerLine - 1
}

// CallBulk performs one RPC round trip whose response may exceed the
// response ring's capacity. The request travels exactly as in Call; the
// response is streamed in bounded multi-slot chunks, the client consuming
// each chunk as it lands so the ring never overflows regardless of payload
// size. Loss anywhere — request, header, any chunk — surfaces as an
// incomplete reassembly and retries the whole call; the server's duplicate
// cache keeps the handler at-most-once, re-streaming the cached response.
func (e *Endpoint) CallBulk(request []byte) ([]byte, error) {
	client := e.m.Cores[e.client]
	server := e.m.Cores[e.server]
	seq := e.nextSeq
	e.nextSeq++
	for try := 0; try <= e.MaxRetries; try++ {
		if try > 0 {
			e.retries++
			e.m.Observer().URPCRetry(e.client, seq, uint64(try))
		}
		if err := e.req.sendSeq(seq, request); err != nil {
			return nil, err
		}
		before := server.Cycles()
		rseq, req, err := e.req.recvSeq()
		served := false
		var response []byte
		if err == nil {
			if rseq != 0 && rseq == e.lastSeq {
				response = e.lastResp // duplicate of an executed request
			} else {
				response = e.handler(req)
				if rseq != 0 {
					e.lastSeq, e.lastResp = rseq, response
				}
			}
			served = true
		}
		client.AddCycles(server.Cycles() - before)
		if served {
			if got, ok := e.streamResponse(seq, response); ok {
				return got, nil
			}
		}
		client.AddCycles(e.backoff(try))
	}
	return nil, &TimeoutError{Seq: seq, Retries: e.MaxRetries}
}

// streamResponse moves one bulk response across the response ring: the
// server sends the header then each chunk, the client draining after every
// send (both sides run inline here, each charged on its own core). It
// reports whether the complete response was reassembled; any dropped frame
// makes the caller retry the whole exchange.
func (e *Endpoint) streamResponse(seq uint64, response []byte) ([]byte, bool) {
	client := e.m.Cores[e.client]
	server := e.m.Cores[e.server]
	chunk := e.bulkChunkBytes()

	frames := make([][]byte, 0, 1+(len(response)+chunk-1)/chunk)
	hdr := make([]byte, 9)
	hdr[0] = bulkHeader
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(response)))
	frames = append(frames, hdr)
	for off := 0; off < len(response); off += chunk {
		end := off + chunk
		if end > len(response) {
			end = len(response)
		}
		frames = append(frames, append([]byte{bulkData}, response[off:end]...))
	}

	var got []byte
	var want uint64
	sawHeader := false
	for _, f := range frames {
		before := server.Cycles()
		if err := e.resp.sendSeq(seq, f); err != nil {
			return nil, false
		}
		// The client busy-waits through the server's send, then drains.
		client.AddCycles(server.Cycles() - before)
		for e.resp.Len() > 0 {
			sseq, frag, err := e.resp.recvSeq()
			if err != nil {
				break
			}
			if sseq != seq || len(frag) == 0 {
				continue // stale traffic from an earlier exchange
			}
			switch frag[0] {
			case bulkHeader:
				if len(frag) == 9 {
					want = binary.LittleEndian.Uint64(frag[1:])
					sawHeader = true
				}
			case bulkData:
				got = append(got, frag[1:]...)
			}
		}
	}
	if !sawHeader || uint64(len(got)) != want {
		return nil, false
	}
	return got, true
}

// CallLatency runs one call and returns the client-perceived latency in
// cycles.
func (e *Endpoint) CallLatency(request []byte) (uint64, error) {
	before := e.m.Cores[e.client].Cycles()
	if _, err := e.Call(request); err != nil {
		return 0, err
	}
	return e.m.Cores[e.client].Cycles() - before, nil
}
