package urpc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
)

func TestLines(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{{0, 1}, {1, 1}, {PayloadPerLine, 1}, {PayloadPerLine + 1, 2}, {4096, 74}}
	for _, c := range cases {
		if got := Lines(c.n); got != c.want {
			t.Errorf("Lines(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestChannelFIFO(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ch := NewChannel(m, 0, 1, 4)
	for i := 0; i < 4; i++ {
		if err := ch.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.Send([]byte{9}); err == nil {
		t.Error("send into full ring accepted")
	}
	for i := 0; i < 4; i++ {
		msg, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg[0] != byte(i) {
			t.Errorf("message %d out of order: %d", i, msg[0])
		}
	}
	if _, err := ch.Recv(); err == nil {
		t.Error("recv from empty ring succeeded")
	}
}

func TestChannelWrapAround(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ch := NewChannel(m, 0, 1, 2)
	seq := 0
	for round := 0; round < 5; round++ {
		if err := ch.Send([]byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
		seq++
		msg, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if int(msg[0]) != seq-1 {
			t.Errorf("wrap round %d: got %d", round, msg[0])
		}
	}
}

func TestCostAttribution(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ch := NewChannel(m, 0, 1, 8) // same socket
	tx, rx := m.Cores[0], m.Cores[1]
	t0, r0 := tx.Cycles(), rx.Cycles()
	payload := make([]byte, 200) // 4 lines
	if err := ch.Send(payload); err != nil {
		t.Fatal(err)
	}
	if got := tx.Cycles() - t0; got != 4*hw.DefaultCost.CacheLineXfer {
		t.Errorf("sender charged %d", got)
	}
	if _, err := ch.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := rx.Cycles() - r0; got != 4*hw.DefaultCost.CacheLineXfer+DispatchCycles {
		t.Errorf("receiver charged %d", got)
	}
}

func TestCrossSocketCostsMore(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest()) // cores 0,1 socket 0; 2,3 socket 1
	local := NewChannel(m, 0, 1, 4)
	cross := NewChannel(m, 0, 2, 4)
	if local.CrossSocket() || !cross.CrossSocket() {
		t.Fatal("socket detection wrong")
	}
	payload := make([]byte, 100)
	c0 := m.Cores[0].Cycles()
	if err := local.Send(payload); err != nil {
		t.Fatal(err)
	}
	localCost := m.Cores[0].Cycles() - c0
	c0 = m.Cores[0].Cycles()
	if err := cross.Send(payload); err != nil {
		t.Fatal(err)
	}
	crossCost := m.Cores[0].Cycles() - c0
	if crossCost <= localCost {
		t.Errorf("cross-socket send (%d) not costlier than local (%d)", crossCost, localCost)
	}
}

func TestRPCEcho(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		out := append([]byte("echo:"), req...)
		return out
	})
	resp, err := ep.Call([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:ping")) {
		t.Errorf("resp = %q", resp)
	}
}

func TestRPCLatencyGrowsWithSize(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ep := Connect(m, 0, 1, 8192, func(req []byte) []byte { return req })
	var prev uint64
	for _, size := range []int{4, 64, 4096, 65536} {
		lat, err := ep.CallLatency(make([]byte, size))
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Errorf("latency at %dB (%d) not above %d", size, lat, prev)
		}
		prev = lat
	}
}

func TestRPCCrossSocketSlower(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	local := Connect(m, 0, 1, 64, func(req []byte) []byte { return req })
	cross := Connect(m, 0, 2, 64, func(req []byte) []byte { return req })
	l, err := local.CallLatency(make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	x, err := cross.CallLatency(make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if x <= l {
		t.Errorf("cross-socket RPC (%d) not slower than local (%d)", x, l)
	}
}

func TestServerWorkReflectedInClientLatency(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	const work = 12345
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		m.Cores[1].AddCycles(work)
		return req
	})
	lat, err := ep.CallLatency([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if lat < work {
		t.Errorf("client latency %d does not include server work %d", lat, work)
	}
}

func TestPropertyMessagesNotCorrupted(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ep := Connect(m, 0, 1, 16, func(req []byte) []byte { return req })
	f := func(payload []byte) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		resp, err := ep.Call(payload)
		return err == nil && bytes.Equal(resp, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestManyEndpointsSharedServerCore(t *testing.T) {
	// Several clients call into one server core; its cycle counter
	// accumulates all the handler work (the Redis-baseline saturation
	// model).
	m := hw.NewMachine(hw.SmallTest())
	server := m.Cores[1]
	before := server.Cycles()
	var eps []*Endpoint
	for i := 0; i < 3; i++ {
		eps = append(eps, Connect(m, 0, 1, 8, func(req []byte) []byte {
			server.AddCycles(1000)
			return []byte(fmt.Sprintf("ok-%s", req))
		}))
	}
	for round := 0; round < 10; round++ {
		for _, ep := range eps {
			if _, err := ep.Call([]byte("r")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := server.Cycles() - before; got < 30*1000 {
		t.Errorf("server core accumulated only %d cycles", got)
	}
}

func TestCallTimesOutWhenEverythingDrops(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(11)
	m.SetFaults(reg)
	handled := 0
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte { handled++; return req })
	ep.MaxRetries = 3

	reg.Enable(fault.URPCDrop, fault.Always())
	before := m.Cores[0].Cycles()
	_, err := ep.Call([]byte("lost"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("call on dead channel: %v, want ErrTimeout", err)
	}
	if handled != 0 {
		t.Errorf("handler ran %d times on a dead channel", handled)
	}
	if got := ep.Retries(); got != 3 {
		t.Errorf("retries = %d, want 3", got)
	}
	// The client paid for every timeout window: at least the sum of the
	// exponentially backed-off waits.
	var waits uint64
	for try := 0; try <= 3; try++ {
		waits += DefaultTimeoutCycles << uint(try)
	}
	if got := m.Cores[0].Cycles() - before; got < waits {
		t.Errorf("client charged %d cycles, want >= %d of backoff", got, waits)
	}
	reqStats, _ := ep.ChannelStats()
	if reqStats.Drops != 4 {
		t.Errorf("request drops = %d, want 4", reqStats.Drops)
	}
	reg.Disable(fault.URPCDrop)

	// The channel heals: the next call completes and handler state is sane.
	resp, err := ep.Call([]byte("back"))
	if err != nil || !bytes.Equal(resp, []byte("back")) {
		t.Fatalf("call after heal: %q, %v", resp, err)
	}
	if handled != 1 {
		t.Errorf("handler ran %d times after heal, want 1", handled)
	}
}

func TestCallRetriesThroughLossyChannel(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(42)
	m.SetFaults(reg)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		return append([]byte("ok:"), req...)
	})
	reg.Enable(fault.URPCDrop, fault.Probability(0.4))
	for i := 0; i < 50; i++ {
		want := []byte(fmt.Sprintf("ok:msg%d", i))
		resp, err := ep.Call([]byte(fmt.Sprintf("msg%d", i)))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, want) {
			t.Fatalf("call %d: got %q, want %q", i, resp, want)
		}
	}
	reqStats, respStats := ep.ChannelStats()
	if reqStats.Drops+respStats.Drops == 0 {
		t.Error("probability(0.4) channel dropped nothing in 50 calls")
	}
	if ep.Retries() == 0 {
		t.Error("no retries despite drops")
	}
}

func TestAtMostOnceUnderResponseLoss(t *testing.T) {
	// The response to the first delivery is dropped; the retry must hit the
	// duplicate cache rather than rerunning the (non-idempotent) handler.
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(5)
	m.SetFaults(reg)
	counter := uint64(0)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		counter++ // XOR-style non-idempotent state change
		return []byte{byte(counter)}
	})
	// Hit 1 = request send (delivered), hit 2 = response send (dropped).
	reg.Enable(fault.URPCDrop, fault.OnNth(2))
	resp, err := ep.Call([]byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Errorf("handler ran %d times, want exactly 1", counter)
	}
	if len(resp) != 1 || resp[0] != 1 {
		t.Errorf("resp = %v, want cached first response", resp)
	}
	if ep.Retries() != 1 {
		t.Errorf("retries = %d, want 1", ep.Retries())
	}
}

func TestDelayInjectionChargesSender(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(9)
	m.SetFaults(reg)
	ch := NewChannel(m, 0, 1, 4)
	reg.Enable(fault.URPCDelay, fault.OnNth(1))
	before := m.Cores[0].Cycles()
	if err := ch.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if got := m.Cores[0].Cycles() - before; got < DelayCycles {
		t.Errorf("delayed send charged %d cycles, want >= %d", got, DelayCycles)
	}
	// The message still arrives.
	if msg, err := ch.Recv(); err != nil || !bytes.Equal(msg, []byte("slow")) {
		t.Errorf("delayed message lost: %q, %v", msg, err)
	}
	if ch.Stats().Delays != 1 {
		t.Errorf("delays = %d, want 1", ch.Stats().Delays)
	}
}

func TestCallBulkSizes(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		n := int(req[0]) | int(req[1])<<8 | int(req[2])<<16
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(i * 7)
		}
		return out
	})
	ring := 8 * PayloadPerLine
	for _, n := range []int{0, 1, 55, 56, 57, ring - 1, ring, ring + 1, 10 * ring} {
		resp, err := ep.CallBulk([]byte{byte(n), byte(n >> 8), byte(n >> 16)})
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if len(resp) != n {
			t.Fatalf("size %d: got %d bytes", n, len(resp))
		}
		for i, b := range resp {
			if b != byte(i*7) {
				t.Fatalf("size %d: byte %d corrupted (%d)", n, i, b)
			}
		}
	}
	if ep.Pending() != 0 {
		t.Errorf("pending frames after drained bulk calls: %d", ep.Pending())
	}
}

func TestCallBulkThroughLossyChannel(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(7)
	m.SetFaults(reg)
	calls := 0
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte {
		calls++ // non-idempotent: the duplicate cache must absorb retries
		return big
	})
	// A bulk exchange moves ~13 frames, so per-frame loss compounds
	// steeply; 5% still forces plenty of whole-call retries.
	reg.Enable(fault.URPCDrop, fault.Probability(0.05))
	for i := 0; i < 20; i++ {
		resp, err := ep.CallBulk([]byte{byte(i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, big) {
			t.Fatalf("call %d: %d bytes, corrupted or short", i, len(resp))
		}
	}
	if calls != 20 {
		t.Errorf("handler ran %d times for 20 calls, want exactly 20 (at-most-once)", calls)
	}
	if ep.Retries() == 0 {
		t.Error("5%% loss over multi-frame streams produced no retries")
	}
	if ep.Pending() != 0 {
		t.Errorf("pending frames after drain: %d", ep.Pending())
	}
}

func TestCallBulkTimesOutWhenEverythingDrops(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(1)
	m.SetFaults(reg)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte { return make([]byte, 1024) })
	reg.Enable(fault.URPCDrop, fault.Always())
	_, err := ep.CallBulk([]byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Retries != ep.MaxRetries {
		t.Errorf("timeout detail = %+v", err)
	}
}

// TestBackoffShiftCapped pins the fix for the unbounded exponential
// backoff: a large MaxRetries used to shift TimeoutCycles past 63 bits —
// the charges on the way there jumped the cycle counter by absurd amounts
// and at 64 the shift wrapped to a zero-cycle hot spin. The capped ladder
// keeps every wait at TimeoutCycles << MaxBackoffShift at most.
func TestBackoffShiftCapped(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(11)
	m.SetFaults(reg)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte { return req })
	ep.MaxRetries = 128 // would shift past 64 bits without the cap

	reg.Enable(fault.URPCDrop, fault.Always())
	before := m.Cores[0].Cycles()
	_, err := ep.Call([]byte("lost"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("call on dead channel: %v, want ErrTimeout", err)
	}
	got := m.Cores[0].Cycles() - before
	// 129 tries, each charging at most the capped backoff plus the send.
	maxWait := uint64(129) * (DefaultTimeoutCycles<<MaxBackoffShift + 1<<20)
	if got > maxWait {
		t.Errorf("client charged %d cycles; capped ladder allows at most %d", got, maxWait)
	}
	// And every timeout window actually charged something: a wrapped shift
	// would make late tries free (a hot spin).
	minWait := uint64(129) * DefaultTimeoutCycles
	if got < minWait {
		t.Errorf("client charged %d cycles, want >= %d (no zero-cycle spins)", got, minWait)
	}
}

// TestCallBudgetNeverSleepsPastBudget pins the deadline guarantee: with a
// cycle budget, the retry loop's backoff never burns the client core past
// the caller's remaining allowance, and exhaustion surfaces as a typed
// *BudgetError rather than riding out the full retry ladder.
func TestCallBudgetNeverSleepsPastBudget(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(11)
	m.SetFaults(reg)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte { return req })
	ep.MaxRetries = 64

	reg.Enable(fault.URPCDrop, fault.Always())
	budget := uint64(3 * DefaultTimeoutCycles)
	before := m.Cores[0].Cycles()
	_, err := ep.CallBudget([]byte("lost"), budget)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budgeted call on dead channel: %v, want ErrBudget", err)
	}
	// Budget exhaustion is still a retryable transport timeout end to end.
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("BudgetError must unwrap to ErrTimeout, got %v", err)
	}
	got := m.Cores[0].Cycles() - before
	// Backoff charges are clamped to the remaining budget, so the only
	// overrun allowed is the non-backoff work (sends) of the final try.
	slack := uint64(4096)
	if got > budget+slack {
		t.Errorf("budgeted call burned %d cycles, budget %d (+%d slack)", got, budget, slack)
	}
	reg.Disable(fault.URPCDrop)

	// A healthy budgeted call completes normally and charges the round
	// trip, not the budget.
	resp, err := ep.CallBudget([]byte("ok"), budget)
	if err != nil || !bytes.Equal(resp, []byte("ok")) {
		t.Fatalf("budgeted call on healthy channel: %q, %v", resp, err)
	}
}

// TestCallBudgetZeroIsUnbudgeted: budget 0 must behave exactly like Call.
func TestCallBudgetZeroIsUnbudgeted(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	reg := fault.New(11)
	m.SetFaults(reg)
	ep := Connect(m, 0, 1, 8, func(req []byte) []byte { return req })
	ep.MaxRetries = 2
	reg.Enable(fault.URPCDrop, fault.Always())
	_, err := ep.CallBudget([]byte("lost"), 0)
	var te *TimeoutError
	if !errors.As(err, &te) || te.Retries != 2 {
		t.Fatalf("unbudgeted call must ride the full retry ladder, got %v", err)
	}
}
