package chaos

import (
	"context"
	"fmt"
	"sort"
	"time"

	"spacejmp/internal/fault"
)

// StepReport is one step's observed outcome: the registry counters its rule
// accumulated over its armed window (for a kill step, Fired 1 on success).
type StepReport struct {
	Step   int    `json:"step"`
	Point  string `json:"point"`
	Target int    `json:"target"` // -1 = any
	Hits   uint64 `json:"hits"`
	Fired  uint64 `json:"fired"`
	Err    string `json:"err,omitempty"`
}

// ScheduleRun is a schedule playing out against a live registry. Wait
// blocks until every timed event has been applied and returns the reports;
// steps whose windows were still open when the schedule ended (For of zero)
// carry zero counters until FinalizeReports reads them.
type ScheduleRun struct {
	done    chan struct{}
	reports []StepReport
}

// scheduleEvent is one timed action on the registry (or an operator hook).
type scheduleEvent struct {
	at    time.Duration
	order int // arms sort before disarms at the same instant
	apply func()
}

// Ops are the operator actions a schedule's pseudo-point steps invoke on
// the cluster under test. Any nil hook turns its steps into recorded
// errors rather than panics, so a partial wiring (tests, single-store
// runs) stays usable.
type Ops struct {
	// Kill hard-kills a node (cluster.node.kill).
	Kill func(node int) error
	// AddNode brings up a new node and returns its id (cluster.node.add).
	// Rebalancing onto it is the hook's business — the runner's hook adds
	// then rebalances, so one step models the whole operator action.
	AddNode func() (int, error)
	// RemoveNode drains and decommissions a node (cluster.node.remove).
	RemoveNode func(node int) error
	// MigrateSlot moves one placement slot to a node (cluster.slot.migrate).
	MigrateSlot func(slot, dst int) error
}

// run executes one pseudo-point step, returning a description of what
// happened (for the narration log) or an error.
func (o Ops) run(st Step) (string, error) {
	switch st.Point {
	case PointNodeKill:
		if o.Kill == nil {
			return "", fmt.Errorf("no kill hook wired")
		}
		return fmt.Sprintf("killed node %d", *st.Target), o.Kill(*st.Target)
	case PointNodeAdd:
		if o.AddNode == nil {
			return "", fmt.Errorf("no add-node hook wired")
		}
		id, err := o.AddNode()
		return fmt.Sprintf("added node %d", id), err
	case PointNodeRemove:
		if o.RemoveNode == nil {
			return "", fmt.Errorf("no remove-node hook wired")
		}
		return fmt.Sprintf("removed node %d", *st.Target), o.RemoveNode(*st.Target)
	case PointSlotMigrate:
		if o.MigrateSlot == nil {
			return "", fmt.Errorf("no migrate-slot hook wired")
		}
		return fmt.Sprintf("migrated slot %d to node %d", *st.Slot, *st.Target), o.MigrateSlot(*st.Slot, *st.Target)
	}
	return "", fmt.Errorf("not a pseudo-point: %s", st.Point)
}

// StartSchedule begins executing steps against reg. Events at offset zero
// are applied before StartSchedule returns, so a caller that starts load
// right after is guaranteed the whole-run rules were armed first — that
// ordering is what makes a seeded scenario's fired totals reproducible.
// Later events play out on a goroutine until the context is cancelled;
// pseudo-point steps invoke the matching ops hook at their start offset.
// logf (nil ok) narrates events.
func StartSchedule(ctx context.Context, steps []Step, reg *fault.Registry, ops Ops, logf func(format string, args ...any)) *ScheduleRun {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	run := &ScheduleRun{
		done:    make(chan struct{}),
		reports: make([]StepReport, len(steps)),
	}
	var events []scheduleEvent
	for i, st := range steps {
		i, st := i, st
		run.reports[i] = StepReport{Step: i, Point: st.Point, Target: st.target()}
		if pseudoPoints[st.Point] {
			events = append(events, scheduleEvent{at: time.Duration(st.After), order: 0, apply: func() {
				what, err := ops.run(st)
				if err != nil {
					run.reports[i].Err = err.Error()
					logf("chaos: step %d: %s: %v", i, st.Point, err)
					return
				}
				run.reports[i].Hits, run.reports[i].Fired = 1, 1
				logf("chaos: step %d: %s", i, what)
			}})
			continue
		}
		policy, desc, err := st.Policy.build()
		if err != nil {
			// Validate rejects this before a runner ever gets here; a
			// hand-built schedule records it instead of panicking.
			run.reports[i].Err = err.Error()
			continue
		}
		events = append(events, scheduleEvent{at: time.Duration(st.After), order: 0, apply: func() {
			reg.EnableAt(st.Point, st.target(), desc, policy)
			logf("chaos: step %d: armed %s target %d (%s)", i, st.Point, st.target(), desc)
		}})
		if st.For > 0 {
			events = append(events, scheduleEvent{at: time.Duration(st.After) + time.Duration(st.For), order: 1, apply: func() {
				// Read the counters before DisableAt discards them.
				run.reports[i].Hits, run.reports[i].Fired = reg.StatusAt(st.Point, st.target())
				reg.DisableAt(st.Point, st.target())
				logf("chaos: step %d: disarmed %s target %d (%d/%d fired)", i, st.Point, st.target(), run.reports[i].Fired, run.reports[i].Hits)
			}})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].order < events[b].order
	})

	next := 0
	for next < len(events) && events[next].at <= 0 {
		events[next].apply()
		next++
	}
	if next >= len(events) {
		close(run.done)
		return run
	}
	go func() {
		defer close(run.done)
		start := time.Now()
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
		for _, ev := range events[next:] {
			if wait := ev.at - time.Since(start); wait > 0 {
				timer.Reset(wait)
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
			} else if ctx.Err() != nil {
				return
			}
			ev.apply()
		}
	}()
	return run
}

// Wait blocks until the schedule has applied every event (or its context
// was cancelled mid-run) and returns the step reports. The ctx here bounds
// the wait itself.
func (s *ScheduleRun) Wait(ctx context.Context) ([]StepReport, error) {
	select {
	case <-s.done:
		return s.reports, nil
	case <-ctx.Done():
		return s.reports, fmt.Errorf("chaos: schedule still running: %w", ctx.Err())
	}
}

// FinalizeReports fills in the counters of steps whose rules were armed to
// the end of the run (For of zero): their windows never closed, so their
// totals are read from the live registry now.
func FinalizeReports(reg *fault.Registry, steps []Step, reports []StepReport) {
	for i, st := range steps {
		if pseudoPoints[st.Point] || st.For > 0 || i >= len(reports) {
			continue
		}
		reports[i].Hits, reports[i].Fired = reg.StatusAt(st.Point, st.target())
	}
}

// Horizon returns the schedule's last event time — how long after start the
// final arm, disarm, or kill lands.
func Horizon(steps []Step) time.Duration {
	var h time.Duration
	for _, st := range steps {
		end := time.Duration(st.After) + time.Duration(st.For)
		if end > h {
			h = end
		}
	}
	return h
}
