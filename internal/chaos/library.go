package chaos

import "time"

// The scenario library: each entry is a named, self-contained disruption
// pattern over the clustered stack with the invariants it must hold. They
// run in the chaos smoke script and via `spacejmp-chaos -scenario <name>`;
// the JSON form of any of them (spacejmp-chaos -scenario x -dump) is a
// starting point for hand-written scenario files.

func u64(v uint64) *uint64         { return &v }
func f64(v float64) *float64       { return &v }
func intp(v int) *int              { return &v }
func dur(d time.Duration) Duration { return Duration(d) }

// Library returns fresh copies of every built-in scenario.
func Library() []*Spec {
	return []*Spec{
		clusterBaseline(),
		rollingNodeKills(),
		partitionThenHeal(),
		slowReplica(),
		checkpointCorruptionStorm(),
		acceptPressureFlood(),
		elasticAddRemove(),
		migrationTargetKilled(),
		tenantIsolationUnderKill(),
		shipUnderLoad(),
		slowNodeBrownout(),
		partitionDuringMigration(),
	}
}

// Lookup returns the named built-in scenario.
func Lookup(name string) (*Spec, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names lists the built-in scenario names in library order.
func Names() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return out
}

// clusterBaseline is the no-fault control: a mixed keyspace-sharded cluster
// must verify cleanly, exercise both serving paths, and drain leak-free.
// Every other scenario's invariants only mean something because this one
// holds with the chaos turned off.
func clusterBaseline() *Spec {
	return &Spec{
		Name:        "cluster-baseline",
		Description: "no faults: mixed GET/SET/MGET over both serving paths, clean drain",
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 2, Locals: 2},
		Load: LoadSpec{
			Conns: 8, Pipeline: 4, Requests: 128,
			SetPercent: 20, MGetPercent: 25, MGetKeys: 4,
			Keys: 256,
		},
		Invariants: Invariants{
			MinLocal:  1,
			MinRemote: 1,
		},
	}
}

// rollingNodeKills crashes both remote replicated nodes in sequence; each
// kill must promote its warm standby with zero lost updates while the load
// keeps verifying. This is the failover smoke in declarative form.
func rollingNodeKills() *Spec {
	return &Spec{
		Name:        "rolling-node-kills",
		Description: "crash remote nodes 2 then 3; each standby promotes, no update lost",
		Machine:     "M1",
		Cluster: ClusterSpec{
			Nodes: 4, Workers: 2, Locals: 1,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 8, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(2 * time.Millisecond), ProbeThreshold: 3,
			DeltaLog: 256,
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 384,
			SetPercent: 25, MGetPercent: 20, Keys: 256,
		},
		Steps: []Step{
			{Point: "cluster.node.crash", Target: intp(2), Policy: PolicySpec{Kind: "always"}, After: dur(150 * time.Millisecond)},
			{Point: "cluster.node.crash", Target: intp(3), Policy: PolicySpec{Kind: "always"}, After: dur(450 * time.Millisecond)},
		},
		Invariants: Invariants{
			Promotions:     u64(2),
			MinShips:       1,
			MaxLostUpdates: u64(0),
			MaxBusyFrac:    f64(0.5),
			Degraded:       intp(0),
			StepsMustFire:  true,
			MinTraceEvents: map[string]uint64{"promotion": 2},
		},
	}
}

// partitionThenHeal severs every urpc channel for a window mid-run, then
// heals it. During the partition remote commands time out as retryable
// -SHARDTIMEOUT refusals; after the heal the same keys must verify — a
// partition may slow the cluster down but must never corrupt it.
func partitionThenHeal() *Spec {
	return &Spec{
		Name:        "partition-then-heal",
		Description: "drop all urpc frames for 250ms, then heal; only retryable refusals allowed",
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 2, Locals: 2},
		Load: LoadSpec{
			Conns: 4, Pipeline: 2, Requests: 512,
			SetPercent: 20, Keys: 128,
		},
		Steps: []Step{
			{Point: "urpc.drop", Policy: PolicySpec{Kind: "always"}, After: dur(25 * time.Millisecond), For: dur(250 * time.Millisecond)},
		},
		Invariants: Invariants{
			MinLocal:      1,
			MinRemote:     1,
			MaxBusyFrac:   f64(0.9),
			StepsMustFire: true,
		},
	}
}

// slowReplica delays roughly half of all urpc transfers for the whole run
// on a replicated cluster: checkpoint shipping and probing slow down but
// must neither trip a spurious promotion nor degrade a range.
func slowReplica() *Spec {
	return &Spec{
		Name:        "slow-replica",
		Description: "delay ~half of urpc transfers all run; shipping lags, nobody false-promotes",
		Machine:     "small",
		Cluster: ClusterSpec{
			Nodes: 3, Workers: 2, Locals: 2,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 8, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(5 * time.Millisecond), ProbeThreshold: 3,
			DeltaLog: 256,
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 256,
			SetPercent: 60, Keys: 256,
		},
		Steps: []Step{
			{Point: "urpc.delay", Policy: PolicySpec{Kind: "probability", P: 0.5}},
		},
		Invariants: Invariants{
			MinShips:      1,
			Promotions:    u64(0),
			Degraded:      intp(0),
			StepsMustFire: true,
		},
	}
}

// checkpointCorruptionStorm tears every checkpoint header (the serving path
// never writes through the checkpoint's persistence hook, so client data is
// untouched), then crashes the replicated node: with no valid generation to
// promote from, the range must degrade — loudly, as terminal
// -SHARDDEGRADED errors — rather than serve stale data as fresh.
func checkpointCorruptionStorm() *Spec {
	return &Spec{
		Name:        "checkpoint-corruption-storm",
		Description: "tear every checkpoint header, then crash node 2: degrade, don't lie",
		Machine:     "small",
		Cluster: ClusterSpec{
			Nodes: 3, Workers: 2, Locals: 2,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 4, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(2 * time.Millisecond), ProbeThreshold: 3,
			DeltaLog: 256,
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 384,
			SetPercent: 40, Keys: 256,
		},
		Steps: []Step{
			// Checkpoint writes are payload then header; every-nth(2) lands
			// on each header, so no shipped generation ever validates.
			{Point: "mem.write.torn", Policy: PolicySpec{Kind: "every-nth", N: 2}},
			{Point: "cluster.node.crash", Target: intp(2), Policy: PolicySpec{Kind: "always"}, After: dur(400 * time.Millisecond)},
		},
		Invariants: Invariants{
			Promotions:     u64(0),
			Degraded:       intp(1),
			MaxErrorFrac:   f64(0.9),
			StepsMustFire:  true,
			MinTraceEvents: map[string]uint64{"node-state": 1},
		},
	}
}

// elasticAddRemove is the elastic-membership exercise: grow the cluster by
// one node mid-run (the add step rebalances a fair share of slots onto it
// under the live verifying load), then drain and retire that same node. The
// load must verify cleanly throughout — a command racing a slot flip may
// only ever see a retryable -MOVED, never a wrong answer — and both
// membership changes must land in the trace.
//
// Core budget on the small (4-core) machine: worker on core 0, the one
// remote seed node on core 1, the migration engine claims core 2, and the
// added node takes core 3.
func elasticAddRemove() *Spec {
	return &Spec{
		Name:        "elastic-add-remove",
		Description: "add node 3 and rebalance onto it mid-load, then drain and remove it; everything verifies",
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 1, Locals: 2},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 512,
			SetPercent: 30, Keys: 256,
		},
		Steps: []Step{
			{Point: "cluster.node.add", After: dur(100 * time.Millisecond)},
			{Point: "cluster.node.remove", Target: intp(3), After: dur(700 * time.Millisecond)},
		},
		Invariants: Invariants{
			// Rebalance moves a fair share (256/4 = 64 slots) onto node 3;
			// the remove drains them all back out again.
			MinSlotMoves:  64,
			MaxBusyFrac:   f64(0.9),
			StepsMustFire: true,
			MinTraceEvents: map[string]uint64{
				"slot-move":    64,
				"node-added":   1,
				"node-removed": 1,
			},
		},
	}
}

// migrationTargetKilled points a slot migration at a node armed to crash:
// the copy fails mid-import, the migration must abort and roll back — the
// source stays authoritative and the load keeps verifying against it. The
// failed move is counted exactly once and traced. StepsMustFire stays off:
// the migrate step erroring out is this scenario's point.
//
// Core budget on the small (4-core) machine: worker on core 0, remote
// nodes 1 and 2 on cores 1-2, the migration engine claims core 3.
func migrationTargetKilled() *Spec {
	return &Spec{
		Name:        "migration-target-killed",
		Description: "migrate a slot into a crashing node: abort, roll back, source stays authoritative",
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 1, Locals: 1},
		Load: LoadSpec{
			Conns: 4, Pipeline: 2, Requests: 256,
			SetPercent: 30, Keys: 128,
		},
		Steps: []Step{
			// Node 2 dies on its next dispatch from 50ms on; the migration at
			// 150ms targets it — either the crash already landed (the target
			// is rejected as unserving) or the import itself trips it. Slot
			// 142 holds keys of the k%06d/128 keyspace (slot 4, the old
			// choice, holds none — an empty slot sends no import chunks, so
			// nothing tripped the crash once the fast load had drained), which
			// guarantees at least one CLUSTER.IMPORT dispatch at the target
			// even when the load finishes before the crash step arms.
			{Point: "cluster.node.crash", Target: intp(2), Policy: PolicySpec{Kind: "always"}, After: dur(50 * time.Millisecond)},
			{Point: "cluster.slot.migrate", Slot: intp(142), Target: intp(2), After: dur(150 * time.Millisecond)},
		},
		Invariants: Invariants{
			SlotMoveFailures: u64(1),
			// A third of the keyspace routes to the dead node for the rest of
			// the run; those commands surface as retryable refusals.
			MaxBusyFrac:  f64(0.95),
			MaxErrorFrac: f64(0.9),
			MinTraceEvents: map[string]uint64{
				"slot-move-failed": 1,
			},
		},
	}
}

// tenantIsolationUnderKill runs two authenticated tenants over a replicated
// cluster and hard-kills a remote primary mid-load. The standby must promote
// with zero lost updates while both tenant views keep verifying — and the
// capability boundary must hold through the failover: every cross-view probe
// is answered -NOPERM by the promoted standby exactly as by the primary it
// replaced. A single data reply to a probe (a cross-view leak) fails the
// run, no matter how chaotic the failover window was.
func tenantIsolationUnderKill() *Spec {
	return &Spec{
		Name:        "tenant-isolation-under-kill",
		Description: "two tenants, primary killed mid-run: standby promotes, views verify, probes stay denied",
		Machine:     "M1",
		Cluster: ClusterSpec{
			Nodes: 4, Workers: 2, Locals: 1,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 8, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(2 * time.Millisecond), ProbeThreshold: 3,
			DeltaLog: 256,
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 384,
			SetPercent: 25, MGetPercent: 20, Keys: 256,
			Tenants: 2, Auth: true, CrossCheckEvery: 16,
		},
		Steps: []Step{
			{Point: PointNodeKill, Target: intp(2), After: dur(200 * time.Millisecond)},
		},
		Invariants: Invariants{
			Promotions:     u64(1),
			MinShips:       1,
			MaxLostUpdates: u64(0),
			MaxBusyFrac:    f64(0.5),
			Degraded:       intp(0),
			MinCrossDenied: 1,
			StepsMustFire:  true,
			MinTraceEvents: map[string]uint64{"promotion": 1},
		},
	}
}

// shipUnderLoad is the write-stall gate for fork-based checkpoint shipping:
// a write-heavy load hammers a replicated cluster whose aggressive ship
// cadence keeps forking frozen views and shipping them while the primary
// serves. The p99 bound is the regression tripwire — a ship that holds the
// node mutex for the segment copy (the pre-fork design) parks every
// concurrent write for the whole copy and blows the tail. The same run
// exercises follower reads end to end: every connection goes READONLY and
// the versioned staleness probes must never see a too-old value served
// silently.
func shipUnderLoad() *Spec {
	return &Spec{
		Name:        "ship-under-load",
		Description: "write-heavy load over constant fork-based ships: bounded p99, bounded-stale follower reads",
		Machine:     "small",
		Cluster: ClusterSpec{
			Nodes: 3, Workers: 1, Locals: 2,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 4, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(5 * time.Millisecond), ProbeThreshold: 5,
			DeltaLog:      1024,
			FollowerReads: true, StaleBound: dur(250 * time.Millisecond),
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 384,
			SetPercent: 60, Keys: 256,
			StaleReads: true, StaleBound: dur(2 * time.Second), StaleCheckEvery: 8,
		},
		Invariants: Invariants{
			MinShips:       4,
			Promotions:     u64(0),
			Degraded:       intp(0),
			MaxP99:         dur(500 * time.Millisecond),
			MinStaleProbes: 8,
			MinTraceEvents: map[string]uint64{
				"fork":            4,
				"checkpoint-ship": 4,
			},
		},
	}
}

// slowNodeBrownout is the overload-protection gate: node 2's health probes
// are dropped for a window mid-run while its data path stays healthy, and
// the probe threshold is parked out of reach so failover never triggers —
// the node is browned out, not dead. The monitor's probe failures feed the
// node's circuit breaker instead. The breaker is hair-trigger (threshold 1)
// because the healthy data path feeds it successes between probe ticks — a
// dropped probe must trip it while the load still runs, not after. While
// open, writes to node 2 shed fast with retryable -SHARDTIMEOUT and
// READONLY reads degrade to the node's frozen fork view (counted as
// degraded reads); the breaker recloses two ways — a write admitted as the
// half-open probe after the cooldown succeeds on the healthy data path, or
// the first successful monitor probe after the window — so open and close
// transitions both land in the trace ring, repeatedly, as the window keeps
// re-tripping it. The p99 bound is the brownout contract: one slow node
// must not drag the whole cluster's tail, because its writes fail fast and
// its reads never touch it. Commands carry a generous deadline budget so
// the budget-remaining histogram fills without a single -DEADLINE expected.
func slowNodeBrownout() *Spec {
	return &Spec{
		Name:        "slow-node-brownout",
		Description: "drop node 2's probes, not its data: breaker trips, writes shed, reads degrade to stale views, p99 stays bounded",
		Machine:     "small",
		Cluster: ClusterSpec{
			Nodes: 3, Workers: 1, Locals: 2,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 4, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(2 * time.Millisecond),
			// Parked out of reach: the brownout must never promote.
			ProbeThreshold: 999,
			DeltaLog:       1024,
			FollowerReads:  true, StaleBound: dur(2 * time.Second),
			// A short cooldown so open→half-open→closed cycles happen while
			// the load still runs; the probe-drop window re-trips each time.
			Breakers: true, BreakerThreshold: 1, BreakerCooldown: dur(15 * time.Millisecond),
			Deadline: dur(250 * time.Millisecond),
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 4, Requests: 1024,
			SetPercent: 30, MGetPercent: 10, MGetKeys: 4, Keys: 256,
			StaleReads: true, StaleBound: dur(4 * time.Second), StaleCheckEvery: 8,
		},
		Steps: []Step{
			{Point: "cluster.probe.drop", Target: intp(2), Policy: PolicySpec{Kind: "always"}, After: dur(50 * time.Millisecond), For: dur(300 * time.Millisecond)},
		},
		Invariants: Invariants{
			MinShips:         1,
			Promotions:       u64(0),
			Degraded:         intp(0),
			MinBreakerOpens:  1,
			MinDegradedReads: 8,
			MaxP99:           dur(500 * time.Millisecond),
			MinStaleProbes:   8,
			MaxBusyFrac:      f64(0.9),
			StepsMustFire:    true,
			MinTraceEvents: map[string]uint64{
				"breaker-state": 2, // at least one trip and one reclose
			},
		},
	}
}

// partitionDuringMigration is the ROADMAP's compound timeline: a probe-drop
// window declares node 2 dead (its standby promotes — a spurious promotion,
// the primary is alive but fenced) while a slot migration targeting that
// same node is in flight. The migration must abort cleanly (target not
// serving during promotion, source stays authoritative) or complete against
// whichever copy is authoritative when it lands — never half-apply — and
// the load must keep verifying through the race. StepsMustFire stays off:
// the migrate step aborting with an error is an acceptable outcome here.
//
// M1: worker core 0, remote replicated nodes 1-3 on cores 1-3, monitor and
// migration engine claim their own cores after that.
func partitionDuringMigration() *Spec {
	return &Spec{
		Name:        "partition-during-migration",
		Description: "probe-drop promotes node 2's standby while a migration targets it: abort or complete, never half-apply",
		Machine:     "M1",
		Cluster: ClusterSpec{
			Nodes: 4, Workers: 1, Locals: 1,
			Replicate: true, SegSize: 1 << 20,
			ShipEvery: 8, ShipInterval: dur(25 * time.Millisecond),
			ProbeInterval: dur(2 * time.Millisecond), ProbeThreshold: 3,
			DeltaLog: 1024,
		},
		Load: LoadSpec{
			Conns: 4, Pipeline: 2, Requests: 384,
			SetPercent: 30, Keys: 128,
		},
		Steps: []Step{
			// Probes to node 2 vanish at 100ms; threshold 3 declares it dead
			// and promotes the standby a few probe ticks later. The migration
			// at 150ms moves slot 142 (which holds keys of the k%06d/128
			// keyspace) into node 2 — landing before, during, or after the
			// promotion depending on scheduling, all of which must be safe.
			{Point: "cluster.probe.drop", Target: intp(2), Policy: PolicySpec{Kind: "always"}, After: dur(100 * time.Millisecond), For: dur(300 * time.Millisecond)},
			{Point: "cluster.slot.migrate", Slot: intp(142), Target: intp(2), After: dur(150 * time.Millisecond)},
		},
		Invariants: Invariants{
			Promotions:     u64(1),
			MinShips:       1,
			MaxLostUpdates: u64(0),
			Degraded:       intp(0),
			MaxBusyFrac:    f64(0.9),
			MaxErrorFrac:   f64(0.5),
			MinTraceEvents: map[string]uint64{"promotion": 1},
		},
	}
}

// acceptPressureFlood refuses a chunk of accepts and randomly drops live
// connections while the load reconnects through it: the server must shed
// connections without ever corrupting a surviving one.
func acceptPressureFlood() *Spec {
	return &Spec{
		Name:        "accept-pressure-flood",
		Description: "refuse 40% of accepts and drop 2% of conns; reconnecting load still verifies",
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 2, Locals: 2},
		Load: LoadSpec{
			Conns: 8, Pipeline: 4, Requests: 128,
			SetPercent: 20, Keys: 256,
			Reconnect: true,
		},
		Steps: []Step{
			{Point: "server.accept", Policy: PolicySpec{Kind: "probability", P: 0.4}},
			{Point: "server.conn.drop", Policy: PolicySpec{Kind: "probability", P: 0.02}},
		},
		Invariants: Invariants{
			MinDisconnects: 1,
			StepsMustFire:  true,
		},
	}
}
