// Package chaos is the declarative chaos-scenario layer over the clustered
// stack. A Scenario (Spec) is a timeline of steps, each arming one of the
// fault registry's named injection points with a trigger policy, a target,
// a start offset, and a duration — loadable from a Go struct or a JSON
// file. The Runner boots a clustered (optionally replicated) server, drives
// it with the closed-loop verifying load generator while the schedule plays
// out against the live registry, and then asserts the spec's declared
// invariants from the stats snapshot, the trace ring, and the drain checks:
// zero verification failures, bounded retryable-vs-terminal errors,
// expected promotion and degradation counts, leak-free zero-goroutine
// teardown.
//
// Determinism is inherited from the seeded registry and the seeded load
// generator: the same seed and spec replay the same per-rule firing
// pattern, so a scenario that exposes a bug is a reproducible regression
// test, not a flake (the library in library.go is exactly that — every past
// failure mode of the cluster stack as one declarative file each).
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"spacejmp/internal/cluster"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/stats"
)

// Schedule-only pseudo-points: instead of arming a registry rule, the step
// invokes an operator action on the router at its start offset.
const (
	// PointNodeKill calls Router.KillNode on its target — an operator-style
	// hard kill, distinct from cluster.node.crash (which arms the node's
	// own handler to die on its next dispatch).
	PointNodeKill = "cluster.node.kill"
	// PointNodeAdd calls Router.AddNode (then rebalances slots onto the new
	// node); it takes no target — the new node's id is the next free one.
	PointNodeAdd = "cluster.node.add"
	// PointNodeRemove calls Router.RemoveNode on its target: drain every
	// owned slot to the remaining nodes, then decommission.
	PointNodeRemove = "cluster.node.remove"
	// PointSlotMigrate calls Router.MigrateSlot(Slot, Target): move one
	// placement slot to the target node while the cluster serves.
	PointSlotMigrate = "cluster.slot.migrate"
)

// pseudoPoints are the schedule-only operator actions — they never touch
// the fault registry.
var pseudoPoints = map[string]bool{
	PointNodeKill:    true,
	PointNodeAdd:     true,
	PointNodeRemove:  true,
	PointSlotMigrate: true,
}

// MaxHorizon bounds how far into a run a step may reach (start offset plus
// duration); schedules are wall-clock timelines and an unbounded one would
// hang the runner.
const MaxHorizon = 5 * time.Minute

// Typed spec errors. Validation wraps them in a *SpecError carrying the
// step index and field, so errors.Is works on the category and the message
// still pinpoints the bad entry.
var (
	ErrBadSpec          = errors.New("chaos: bad scenario spec")
	ErrUnknownPoint     = errors.New("chaos: unknown fault point")
	ErrBadPolicy        = errors.New("chaos: bad trigger policy")
	ErrBadDuration      = errors.New("chaos: bad duration")
	ErrBadTarget        = errors.New("chaos: bad target")
	ErrOverlappingSteps = errors.New("chaos: overlapping steps")
)

// SpecError locates a validation failure: which step (-1 for spec-level
// problems), which field, and the typed category it wraps.
type SpecError struct {
	Step  int
	Field string
	Err   error
}

func (e *SpecError) Error() string {
	if e.Step < 0 {
		return fmt.Sprintf("%v: %s", e.Err, e.Field)
	}
	return fmt.Sprintf("%v: step %d, %s", e.Err, e.Step, e.Field)
}

func (e *SpecError) Unwrap() error { return e.Err }

func specErr(step int, field string, category error) error {
	return &SpecError{Step: step, Field: field, Err: category}
}

// Duration is a time.Duration that marshals as a human-readable string
// ("300ms") and unmarshals from either that form or a bare number of
// nanoseconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("%w: %q", ErrBadDuration, s)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("%w: %s", ErrBadDuration, bytes.TrimSpace(b))
	}
	*d = Duration(ns)
	return nil
}

// PolicySpec is a trigger policy in declarative form.
type PolicySpec struct {
	// Kind is one of: always, probability, on-nth, from-nth, every-nth.
	// Empty is allowed only on a cluster.node.kill step (kills have no
	// policy; they happen at their start offset).
	Kind string `json:"kind,omitempty"`
	// P is the per-hit firing probability for kind "probability".
	P float64 `json:"p,omitempty"`
	// N is the hit ordinal/stride for the *-nth kinds.
	N uint64 `json:"n,omitempty"`
}

// build compiles the declarative policy into a fault.Policy plus its
// introspection label.
func (p PolicySpec) build() (fault.Policy, string, error) {
	switch p.Kind {
	case "always":
		return fault.Always(), "always", nil
	case "probability":
		if p.P <= 0 || p.P > 1 {
			return nil, "", fmt.Errorf("%w: probability wants 0 < p <= 1, got %g", ErrBadPolicy, p.P)
		}
		return fault.Probability(p.P), fmt.Sprintf("p=%g", p.P), nil
	case "on-nth":
		if p.N < 1 {
			return nil, "", fmt.Errorf("%w: on-nth wants n >= 1", ErrBadPolicy)
		}
		return fault.OnNth(p.N), fmt.Sprintf("on-nth(%d)", p.N), nil
	case "from-nth":
		if p.N < 1 {
			return nil, "", fmt.Errorf("%w: from-nth wants n >= 1", ErrBadPolicy)
		}
		return fault.FromNth(p.N), fmt.Sprintf("from-nth(%d)", p.N), nil
	case "every-nth":
		if p.N < 1 {
			return nil, "", fmt.Errorf("%w: every-nth wants n >= 1", ErrBadPolicy)
		}
		return fault.EveryNth(p.N), fmt.Sprintf("every-nth(%d)", p.N), nil
	case "":
		return nil, "", fmt.Errorf("%w: missing kind", ErrBadPolicy)
	}
	return nil, "", fmt.Errorf("%w: unknown kind %q", ErrBadPolicy, p.Kind)
}

// Step is one scheduled disruption: arm Point with Policy for the window
// [After, After+For), scoped to Target when set. For of zero keeps the rule
// armed until the run ends. Pseudo-point steps (kill, add, remove, migrate)
// ignore Policy and For and invoke their operator action at After; a
// cluster.slot.migrate step names the slot to move in Slot and its
// destination node in Target.
type Step struct {
	Point  string     `json:"point"`
	Target *int       `json:"target,omitempty"`
	Slot   *int       `json:"slot,omitempty"`
	Policy PolicySpec `json:"policy,omitempty"`
	After  Duration   `json:"after,omitempty"`
	For    Duration   `json:"for,omitempty"`
}

func (s Step) target() int {
	if s.Target == nil {
		return fault.TargetAny
	}
	return *s.Target
}

// targetedPoints are the injection points whose components report a target
// identity; a Target on any other point would silently never match, so
// validation rejects it.
var targetedPoints = map[string]bool{
	fault.ClusterProbeDrop: true,
	fault.ClusterNodeCrash: true,
	PointNodeKill:          true,
}

var knownPoints = map[string]bool{
	fault.MemAlloc:         true,
	fault.MemWriteTorn:     true,
	fault.CoreSyscallCrash: true,
	fault.URPCDrop:         true,
	fault.URPCDelay:        true,
	fault.SrvAccept:        true,
	fault.SrvConnStall:     true,
	fault.SrvConnDrop:      true,
	fault.ClusterProbeDrop: true,
	fault.ClusterNodeCrash: true,
	PointNodeKill:          true,
	PointNodeAdd:           true,
	PointNodeRemove:        true,
	PointSlotMigrate:       true,
}

// ClusterSpec sizes the cluster under test; zero values take the cluster
// package's defaults. It mirrors cluster.Config field by field so a
// scenario file can pin any knob a test can.
type ClusterSpec struct {
	Nodes             int      `json:"nodes,omitempty"`
	Workers           int      `json:"workers,omitempty"`
	Mode              string   `json:"mode,omitempty"`
	Locals            int      `json:"locals,omitempty"`
	QueueDepth        int      `json:"queue_depth,omitempty"`
	SegSize           uint64   `json:"seg_size,omitempty"`
	Slots             int      `json:"slots,omitempty"`
	Replicate         bool     `json:"replicate,omitempty"`
	ShipEvery         int      `json:"ship_every,omitempty"`
	ShipInterval      Duration `json:"ship_interval,omitempty"`
	ProbeInterval     Duration `json:"probe_interval,omitempty"`
	ProbeThreshold    int      `json:"probe_threshold,omitempty"`
	DeltaLog          int      `json:"delta_log,omitempty"`
	MigrationDeltaLog int      `json:"migration_delta_log,omitempty"`
	// FollowerReads routes READONLY-connection reads to frozen fork views
	// of replicated remote nodes, bounded by StaleBound (see
	// cluster.ReplicationConfig).
	FollowerReads bool     `json:"follower_reads,omitempty"`
	StaleBound    Duration `json:"stale_bound,omitempty"`
	// Overload protection (see cluster.OverloadConfig): per-remote-node
	// circuit breakers, overload-degraded stale reads, and the worker-queue
	// watermark past which reads degrade. Deadline stamps every command
	// with a cycle budget derived from this wall-time allowance and the
	// machine's clock.
	Breakers         bool     `json:"breakers,omitempty"`
	BreakerThreshold int      `json:"breaker_threshold,omitempty"`
	BreakerCooldown  Duration `json:"breaker_cooldown,omitempty"`
	DegradedReads    bool     `json:"degraded_reads,omitempty"`
	QueueWatermark   int      `json:"queue_watermark,omitempty"`
	Deadline         Duration `json:"deadline,omitempty"`
}

// Config resolves the spec into a cluster.Config. The replication knobs
// stay flat in the JSON surface (scenario files predate the nesting) but
// land in the nested ReplicationConfig.
func (c ClusterSpec) Config() (cluster.Config, error) {
	mode, err := cluster.ParseMode(c.Mode)
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Nodes:             c.Nodes,
		Workers:           c.Workers,
		Mode:              mode,
		Locals:            c.Locals,
		QueueDepth:        c.QueueDepth,
		SegSize:           c.SegSize,
		Slots:             c.Slots,
		MigrationDeltaLog: c.MigrationDeltaLog,
		Replication: cluster.ReplicationConfig{
			Enabled:        c.Replicate,
			ShipEvery:      c.ShipEvery,
			ShipInterval:   time.Duration(c.ShipInterval),
			ProbeInterval:  time.Duration(c.ProbeInterval),
			ProbeThreshold: c.ProbeThreshold,
			DeltaLog:       c.DeltaLog,
			FollowerReads:  c.FollowerReads,
			StaleBound:     time.Duration(c.StaleBound),
		},
		Overload: cluster.OverloadConfig{
			Breakers:         c.Breakers,
			BreakerThreshold: c.BreakerThreshold,
			BreakerCooldown:  time.Duration(c.BreakerCooldown),
			DegradedReads:    c.DegradedReads,
			QueueWatermark:   c.QueueWatermark,
		},
	}, nil
}

// placement mirrors the cluster's Locals default so target validation sees
// the same node placement the booted cluster will.
func (c ClusterSpec) placement() (nodes int, local func(i int) bool) {
	nodes = c.Nodes
	if nodes <= 0 {
		nodes = 3
	}
	locals := c.Locals
	if locals <= 0 || locals > nodes {
		locals = (nodes + 1) / 2
	}
	mode := cluster.Mode(c.Mode)
	if c.Mode == "" {
		mode = cluster.ModeAuto
	}
	cfg := cluster.Config{Nodes: nodes, Locals: locals}
	return nodes, func(i int) bool { return mode.Local(i, cfg) }
}

// LoadSpec parameterizes the verifying load; zero values take the load
// generator's defaults.
type LoadSpec struct {
	Conns       int  `json:"conns,omitempty"`
	Pipeline    int  `json:"pipeline,omitempty"`
	Requests    int  `json:"requests,omitempty"`
	SetPercent  int  `json:"set_percent,omitempty"`
	MGetPercent int  `json:"mget_percent,omitempty"`
	MGetKeys    int  `json:"mget_keys,omitempty"`
	Keys        int  `json:"keys,omitempty"`
	ValueSize   int  `json:"value_size,omitempty"`
	Reconnect   bool `json:"reconnect,omitempty"`
	// Tenants with Auth boots the demo tenant registry and runs the load
	// multi-tenant: each connection authenticates as tenant i%Tenants and
	// works its own view. CrossCheckEvery interleaves probe GETs at another
	// tenant's view; the only correct answer is -NOPERM, and any data reply
	// is counted as a cross-view leak.
	Tenants         int  `json:"tenants,omitempty"`
	Auth            bool `json:"auth,omitempty"`
	CrossCheckEvery int  `json:"cross_check_every,omitempty"`
	// StaleReads opts every load connection into follower reads (READONLY)
	// and interleaves versioned staleness probes: a probe GET must answer
	// either a version no older than StaleBound or the typed -STALE
	// refusal; a stale version served silently is a violation (and
	// violations are always an invariant failure — there is no knob to
	// tolerate them). Requires cluster.follower_reads. StaleBound is the
	// verifying bound (defaults to 1s; set it to the cluster's bound plus
	// shipping slack), StaleCheckEvery the probe cadence (default 8).
	StaleReads      bool     `json:"stale_reads,omitempty"`
	StaleBound      Duration `json:"stale_bound,omitempty"`
	StaleCheckEvery int      `json:"stale_check_every,omitempty"`
}

// Invariants are the assertions a run must satisfy. Value fields of zero
// are strict bounds (MaxMismatches 0 = no mismatch tolerated — the usual
// chaos contract); pointer fields distinguish "unset" from "exactly zero".
type Invariants struct {
	// MaxMismatches bounds load-side verification failures (default 0).
	MaxMismatches uint64 `json:"max_mismatches,omitempty"`
	// MaxErrors bounds terminal error replies; when neither it nor
	// MaxErrorFrac is set, terminal errors must be zero.
	MaxErrors *uint64 `json:"max_errors,omitempty"`
	// MaxErrorFrac bounds terminal error replies as a fraction of commands.
	MaxErrorFrac *float64 `json:"max_error_frac,omitempty"`
	// MaxBusyFrac bounds retryable refusals (busy, shard timeouts) as a
	// fraction of commands; unset leaves them unbounded.
	MaxBusyFrac *float64 `json:"max_busy_frac,omitempty"`
	// Promotions, when set, is the exact standby-promotion count.
	Promotions *uint64 `json:"promotions,omitempty"`
	// MinShips is the minimum checkpoint generations shipped.
	MinShips uint64 `json:"min_ships,omitempty"`
	// MaxLostUpdates, when set, bounds updates lost across failover.
	MaxLostUpdates *uint64 `json:"max_lost_updates,omitempty"`
	// Degraded, when set, is the exact count of degraded key ranges at the
	// end of the run.
	Degraded *int `json:"degraded,omitempty"`
	// MinLocal / MinRemote are minimum command counts per serving path.
	MinLocal  uint64 `json:"min_local,omitempty"`
	MinRemote uint64 `json:"min_remote,omitempty"`
	// MinDisconnects is the minimum transport failures the load generator
	// must have survived (Reconnect runs).
	MinDisconnects uint64 `json:"min_disconnects,omitempty"`
	// MinSlotMoves is the minimum completed slot migrations.
	MinSlotMoves uint64 `json:"min_slot_moves,omitempty"`
	// SlotMoveFailures, when set, is the exact count of slot migrations that
	// aborted (source stayed authoritative).
	SlotMoveFailures *uint64 `json:"slot_move_failures,omitempty"`
	// MinCrossDenied is the minimum cross-tenant probes the load must have
	// seen denied with -NOPERM (tenant runs; proves the probes actually ran).
	// Any probe answered with data instead of a denial is a cross-view leak,
	// and leaks are always an invariant violation — there is no knob to
	// tolerate them.
	MinCrossDenied uint64 `json:"min_cross_denied,omitempty"`
	// MinStaleProbes is the minimum staleness probes the load must have
	// completed (stale-read runs; proves the bound was actually exercised,
	// the way MinCrossDenied proves tenant probes ran).
	MinStaleProbes uint64 `json:"min_stale_probes,omitempty"`
	// MinDegradedReads is the minimum reads served stale because the
	// primary was overloaded — the proof a brownout scenario actually
	// degraded gracefully instead of just erroring.
	MinDegradedReads uint64 `json:"min_degraded_reads,omitempty"`
	// MinBreakerOpens is the minimum circuit-breaker trips; pins that a
	// storm scenario actually drove a breaker open.
	MinBreakerOpens uint64 `json:"min_breaker_opens,omitempty"`
	// MaxP99, when set, bounds the load's end-to-end p99 command latency.
	// This is the write-stall invariant: a serving path that holds a node's
	// mutex across a checkpoint ship (instead of forking a frozen view and
	// shipping off-mutex) parks every concurrent command for the whole copy
	// and blows the tail; the bound keeps that regression out.
	MaxP99 Duration `json:"max_p99,omitempty"`
	// StepsMustFire requires every step to have fired at least once (for a
	// pseudo-point step: the operator action succeeded).
	StepsMustFire bool `json:"steps_must_fire,omitempty"`
	// MinTraceEvents maps trace event kind names ("promotion",
	// "checkpoint-ship", "node-state", ...) to minimum occurrence counts.
	MinTraceEvents map[string]uint64 `json:"min_trace_events,omitempty"`
}

// Spec is one declarative chaos scenario.
type Spec struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Seed        int64       `json:"seed,omitempty"`
	Machine     string      `json:"machine,omitempty"` // small (default), M1, M2, M3
	Cluster     ClusterSpec `json:"cluster,omitempty"`
	Load        LoadSpec    `json:"load,omitempty"`
	Steps       []Step      `json:"steps,omitempty"`
	Invariants  Invariants  `json:"invariants,omitempty"`
}

// ParseSpec decodes and validates a JSON scenario. Unknown fields are
// rejected, so a typo'd knob fails loudly instead of silently running a
// different scenario than the file describes.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		if errors.Is(err, ErrBadDuration) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// A second document in the stream is garbage, not a scenario.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after scenario object", ErrBadSpec)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// traceEventKinds enumerates the stats trace kinds an invariant may bound.
func traceEventKinds() map[string]bool {
	out := make(map[string]bool, stats.NumEvents)
	for k := 0; k < stats.NumEvents; k++ {
		out[stats.EventKind(k).String()] = true
	}
	return out
}

// Validate checks the spec top to bottom and returns the first problem as
// a *SpecError wrapping one of the typed categories above.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return specErr(-1, "name: required", ErrBadSpec)
	}
	if _, err := hw.NamedConfig(s.Machine); err != nil {
		return specErr(-1, fmt.Sprintf("machine: %v", err), ErrBadSpec)
	}
	if _, err := s.Cluster.Config(); err != nil {
		return specErr(-1, fmt.Sprintf("cluster: %v", err), ErrBadSpec)
	}
	nodes, localNode := s.Cluster.placement()

	if s.Load.Tenants < 0 {
		return specErr(-1, fmt.Sprintf("load.tenants: negative (%d)", s.Load.Tenants), ErrBadSpec)
	}
	if s.Load.Auth && s.Load.Tenants == 0 {
		return specErr(-1, "load.auth: requires load.tenants > 0", ErrBadSpec)
	}
	if s.Load.CrossCheckEvery > 0 && (!s.Load.Auth || s.Load.Tenants < 2) {
		return specErr(-1, "load.cross_check_every: probes need auth and at least two tenants", ErrBadSpec)
	}
	if s.Invariants.MinCrossDenied > 0 && (!s.Load.Auth || s.Load.Tenants < 2) {
		return specErr(-1, "invariants.min_cross_denied: needs auth and at least two tenants", ErrBadSpec)
	}
	if s.Cluster.FollowerReads && !s.Cluster.Replicate {
		return specErr(-1, "cluster.follower_reads: requires cluster.replicate", ErrBadSpec)
	}
	if s.Cluster.StaleBound < 0 {
		return specErr(-1, fmt.Sprintf("cluster.stale_bound: negative (%v)", time.Duration(s.Cluster.StaleBound)), ErrBadDuration)
	}
	if s.Load.StaleReads && !s.Cluster.FollowerReads {
		return specErr(-1, "load.stale_reads: requires cluster.follower_reads", ErrBadSpec)
	}
	if s.Load.StaleBound < 0 {
		return specErr(-1, fmt.Sprintf("load.stale_bound: negative (%v)", time.Duration(s.Load.StaleBound)), ErrBadDuration)
	}
	if (s.Load.StaleBound != 0 || s.Load.StaleCheckEvery != 0) && !s.Load.StaleReads {
		return specErr(-1, "load.stale_bound/stale_check_every: need load.stale_reads", ErrBadSpec)
	}
	if s.Invariants.MinStaleProbes > 0 && !s.Load.StaleReads {
		return specErr(-1, "invariants.min_stale_probes: needs load.stale_reads", ErrBadSpec)
	}
	if (s.Cluster.DegradedReads || s.Cluster.QueueWatermark > 0) && !s.Cluster.Replicate {
		return specErr(-1, "cluster.degraded_reads/queue_watermark: require cluster.replicate (degraded reads serve from fork views)", ErrBadSpec)
	}
	if s.Cluster.QueueWatermark < 0 {
		return specErr(-1, fmt.Sprintf("cluster.queue_watermark: negative (%d)", s.Cluster.QueueWatermark), ErrBadSpec)
	}
	if s.Cluster.BreakerThreshold < 0 {
		return specErr(-1, fmt.Sprintf("cluster.breaker_threshold: negative (%d)", s.Cluster.BreakerThreshold), ErrBadSpec)
	}
	if s.Cluster.BreakerCooldown < 0 {
		return specErr(-1, fmt.Sprintf("cluster.breaker_cooldown: negative (%v)", time.Duration(s.Cluster.BreakerCooldown)), ErrBadDuration)
	}
	if s.Cluster.Deadline < 0 {
		return specErr(-1, fmt.Sprintf("cluster.deadline: negative (%v)", time.Duration(s.Cluster.Deadline)), ErrBadDuration)
	}
	if (s.Cluster.BreakerThreshold > 0 || s.Cluster.BreakerCooldown > 0) && !s.Cluster.Breakers {
		return specErr(-1, "cluster.breaker_threshold/breaker_cooldown: need cluster.breakers", ErrBadSpec)
	}
	if s.Invariants.MinBreakerOpens > 0 && !s.Cluster.Breakers {
		return specErr(-1, "invariants.min_breaker_opens: needs cluster.breakers", ErrBadSpec)
	}
	if s.Invariants.MinDegradedReads > 0 && !s.Cluster.DegradedReads && s.Cluster.QueueWatermark == 0 && !s.Cluster.Breakers {
		return specErr(-1, "invariants.min_degraded_reads: needs an overload trigger (breakers, degraded_reads, or queue_watermark)", ErrBadSpec)
	}
	if s.Invariants.MaxP99 < 0 {
		return specErr(-1, fmt.Sprintf("invariants.max_p99: negative (%v)", time.Duration(s.Invariants.MaxP99)), ErrBadDuration)
	}

	for i, st := range s.Steps {
		if !knownPoints[st.Point] {
			return specErr(i, fmt.Sprintf("point %q", st.Point), ErrUnknownPoint)
		}
		if st.After < 0 {
			return specErr(i, fmt.Sprintf("after: negative (%v)", time.Duration(st.After)), ErrBadDuration)
		}
		if st.For < 0 {
			return specErr(i, fmt.Sprintf("for: negative (%v)", time.Duration(st.For)), ErrBadDuration)
		}
		if end := time.Duration(st.After) + time.Duration(st.For); end > MaxHorizon {
			return specErr(i, fmt.Sprintf("after+for: %v exceeds the %v horizon", end, MaxHorizon), ErrBadDuration)
		}
		if pseudoPoints[st.Point] {
			if st.Policy.Kind != "" && st.Policy.Kind != "always" {
				return specErr(i, fmt.Sprintf("policy: %s steps take none, got %q", st.Point, st.Policy.Kind), ErrBadPolicy)
			}
			if st.For != 0 {
				return specErr(i, "for: an operator action has no duration", ErrBadDuration)
			}
		} else if _, _, err := st.Policy.build(); err != nil {
			return specErr(i, err.Error(), ErrBadPolicy)
		}
		if st.Slot != nil && st.Point != PointSlotMigrate {
			return specErr(i, fmt.Sprintf("slot: only %s takes one", PointSlotMigrate), ErrBadSpec)
		}
		switch st.Point {
		case PointNodeAdd:
			if st.Target != nil {
				return specErr(i, "target: cluster.node.add assigns the next free id; it takes no target", ErrBadTarget)
			}
			continue
		case PointNodeRemove, PointSlotMigrate:
			// The target may name a node an earlier add step creates: ids are
			// assigned in order, so the upper bound grows with each add that
			// runs before this step.
			if st.Target == nil {
				return specErr(i, fmt.Sprintf("target: %s requires one", st.Point), ErrBadTarget)
			}
			maxNode := nodes
			for j, prior := range s.Steps {
				if prior.Point == PointNodeAdd &&
					(prior.After < st.After || (prior.After == st.After && j < i)) {
					maxNode++
				}
			}
			t := *st.Target
			if t < 0 || t >= maxNode {
				return specErr(i, fmt.Sprintf("target: node %d out of range [0,%d) (counting earlier adds)", t, maxNode), ErrBadTarget)
			}
			if st.Point == PointNodeRemove && t < nodes && localNode(t) {
				return specErr(i, fmt.Sprintf("target: node %d is co-resident; it cannot be removed", t), ErrBadTarget)
			}
			if st.Point == PointSlotMigrate {
				if st.Slot == nil {
					return specErr(i, fmt.Sprintf("slot: %s requires one", PointSlotMigrate), ErrBadSpec)
				}
				if *st.Slot < 0 || *st.Slot >= cluster.NumSlots {
					return specErr(i, fmt.Sprintf("slot: %d out of range [0,%d)", *st.Slot, cluster.NumSlots), ErrBadSpec)
				}
			}
			continue
		case PointNodeKill:
			if st.Target == nil {
				return specErr(i, "target: cluster.node.kill requires one", ErrBadTarget)
			}
		}
		if st.Target != nil {
			if !targetedPoints[st.Point] {
				return specErr(i, fmt.Sprintf("target: point %q fires untargeted; a targeted rule would never match", st.Point), ErrBadTarget)
			}
			t := *st.Target
			if t < 0 || t >= nodes {
				return specErr(i, fmt.Sprintf("target: node %d out of range [0,%d)", t, nodes), ErrBadTarget)
			}
			if (st.Point == PointNodeKill || st.Point == fault.ClusterNodeCrash) && localNode(t) {
				return specErr(i, fmt.Sprintf("target: node %d is co-resident; only remote nodes can die", t), ErrBadTarget)
			}
		}
	}

	// Two live windows on the same (point, target) would fight over one
	// registry rule — the second arm resets the first's counters and the
	// first disarm kills the second's window. Reject the ambiguity.
	type key struct {
		point  string
		target int
	}
	byRule := map[key][]int{}
	for i, st := range s.Steps {
		if pseudoPoints[st.Point] && st.Point != PointNodeKill {
			// Operator actions are instantaneous and own no registry rule;
			// two adds (or a remove after an add) never collide. Kills keep
			// the double-kill rule below.
			continue
		}
		k := key{st.Point, st.target()}
		byRule[k] = append(byRule[k], i)
	}
	for k, idxs := range byRule {
		if len(idxs) < 2 {
			continue
		}
		sort.Slice(idxs, func(a, b int) bool { return s.Steps[idxs[a]].After < s.Steps[idxs[b]].After })
		for j := 0; j+1 < len(idxs); j++ {
			cur, next := s.Steps[idxs[j]], s.Steps[idxs[j+1]]
			if k.point == PointNodeKill {
				// Two kills of one node: the second can never do anything.
				return specErr(idxs[j+1], fmt.Sprintf("point %q target %d killed twice", k.point, k.target), ErrOverlappingSteps)
			}
			if cur.For == 0 || time.Duration(cur.After)+time.Duration(cur.For) > time.Duration(next.After) {
				return specErr(idxs[j+1], fmt.Sprintf("point %q target %d: window overlaps step %d", k.point, k.target, idxs[j]), ErrOverlappingSteps)
			}
		}
	}

	kinds := traceEventKinds()
	for name := range s.Invariants.MinTraceEvents {
		if !kinds[name] {
			return specErr(-1, fmt.Sprintf("invariants.min_trace_events: unknown event kind %q", name), ErrBadSpec)
		}
	}
	if f := s.Invariants.MaxErrorFrac; f != nil && (*f < 0 || *f > 1) {
		return specErr(-1, fmt.Sprintf("invariants.max_error_frac: %g outside [0,1]", *f), ErrBadSpec)
	}
	if f := s.Invariants.MaxBusyFrac; f != nil && (*f < 0 || *f > 1) {
		return specErr(-1, fmt.Sprintf("invariants.max_busy_frac: %g outside [0,1]", *f), ErrBadSpec)
	}
	return nil
}
