package chaos

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"spacejmp/internal/fault"
)

// TestParseSpecValid round-trips a full-featured JSON scenario through the
// parser, including string durations and targeted steps.
func TestParseSpecValid(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "smoke",
		"seed": 9,
		"machine": "small",
		"cluster": {"nodes": 3, "workers": 2, "locals": 2, "replicate": true,
		            "ship_interval": "25ms", "probe_interval": 2000000},
		"load": {"conns": 4, "requests": 128, "reconnect": true},
		"steps": [
			{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "25ms", "for": "100ms"},
			{"point": "cluster.node.crash", "target": 2, "policy": {"kind": "always"}, "after": "200ms"}
		],
		"invariants": {"steps_must_fire": true, "min_trace_events": {"promotion": 1}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 9 || len(spec.Steps) != 2 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if got := time.Duration(spec.Steps[0].After); got != 25*time.Millisecond {
		t.Errorf("string duration: got %v", got)
	}
	if got := time.Duration(spec.Cluster.ProbeInterval); got != 2*time.Millisecond {
		t.Errorf("numeric duration: got %v", got)
	}
	if spec.Steps[1].target() != 2 {
		t.Errorf("target: got %d", spec.Steps[1].target())
	}
}

// TestParseSpecErrors checks every malformed-scenario class maps to its
// typed error, so callers can errors.Is on the category.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want error
	}{
		{"missing name", `{"machine": "small"}`, ErrBadSpec},
		{"unknown machine", `{"name": "x", "machine": "M9"}`, ErrBadSpec},
		{"unknown field", `{"name": "x", "bogus": 1}`, ErrBadSpec},
		{"trailing data", `{"name": "x"} {"name": "y"}`, ErrBadSpec},
		{"unknown point", `{"name": "x", "steps": [{"point": "disk.on.fire", "policy": {"kind": "always"}}]}`, ErrUnknownPoint},
		{"missing policy", `{"name": "x", "steps": [{"point": "urpc.drop"}]}`, ErrBadPolicy},
		{"unknown policy", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "sometimes"}}]}`, ErrBadPolicy},
		{"bad probability", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "probability", "p": 1.5}}]}`, ErrBadPolicy},
		{"zero nth", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "on-nth"}}]}`, ErrBadPolicy},
		{"unparseable duration", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "soon"}]}`, ErrBadDuration},
		{"negative after", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "-5ms"}]}`, ErrBadDuration},
		{"negative for", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "always"}, "for": -1}]}`, ErrBadDuration},
		{"past horizon", `{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "10h"}]}`, ErrBadDuration},
		{"target on untargeted point", `{"name": "x", "steps": [{"point": "urpc.drop", "target": 1, "policy": {"kind": "always"}}]}`, ErrBadTarget},
		{"target out of range", `{"name": "x", "steps": [{"point": "cluster.node.crash", "target": 7, "policy": {"kind": "always"}}]}`, ErrBadTarget},
		{"crash of local node", `{"name": "x", "steps": [{"point": "cluster.node.crash", "target": 0, "policy": {"kind": "always"}}]}`, ErrBadTarget},
		{"kill without target", `{"name": "x", "steps": [{"point": "cluster.node.kill"}]}`, ErrBadTarget},
		{"kill with policy", `{"name": "x", "steps": [{"point": "cluster.node.kill", "target": 2, "policy": {"kind": "probability", "p": 0.5}}]}`, ErrBadPolicy},
		{"kill with duration", `{"name": "x", "steps": [{"point": "cluster.node.kill", "target": 2, "for": "1s"}]}`, ErrBadDuration},
		{"overlapping windows", `{"name": "x", "steps": [
			{"point": "urpc.drop", "policy": {"kind": "always"}, "for": "0s"},
			{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "50ms", "for": "50ms"}]}`, ErrOverlappingSteps},
		{"double kill", `{"name": "x", "steps": [
			{"point": "cluster.node.kill", "target": 2},
			{"point": "cluster.node.kill", "target": 2, "after": "100ms"}]}`, ErrOverlappingSteps},
		{"unknown trace kind", `{"name": "x", "invariants": {"min_trace_events": {"warp-core-breach": 1}}}`, ErrBadSpec},
		{"error frac out of range", `{"name": "x", "invariants": {"max_error_frac": 1.5}}`, ErrBadSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("parsed without error: %+v", spec)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want category %v", err, tc.want)
			}
		})
	}
}

// TestSpecErrorLocatesStep checks the wrapper pinpoints the offending step.
func TestSpecErrorLocatesStep(t *testing.T) {
	spec := &Spec{Name: "x", Steps: []Step{
		{Point: fault.URPCDrop, Policy: PolicySpec{Kind: "always"}},
		{Point: "nope", Policy: PolicySpec{Kind: "always"}},
	}}
	err := spec.Validate()
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SpecError", err)
	}
	if se.Step != 1 || !errors.Is(err, ErrUnknownPoint) {
		t.Fatalf("located step %d (%v), want step 1 unknown-point", se.Step, err)
	}
}

// TestNonOverlappingWindowsAllowed: sequential windows on one point are the
// supported way to express on/off patterns and must validate.
func TestNonOverlappingWindowsAllowed(t *testing.T) {
	spec := &Spec{Name: "x", Steps: []Step{
		{Point: fault.URPCDrop, Policy: PolicySpec{Kind: "always"}, After: dur(10 * time.Millisecond), For: dur(40 * time.Millisecond)},
		{Point: fault.URPCDrop, Policy: PolicySpec{Kind: "always"}, After: dur(50 * time.Millisecond), For: dur(40 * time.Millisecond)},
		// Same point, different target namespace: never conflicts.
		{Point: fault.ClusterProbeDrop, Target: intp(1), Policy: PolicySpec{Kind: "always"}},
		{Point: fault.ClusterProbeDrop, Target: intp(2), Policy: PolicySpec{Kind: "always"}},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLibraryValidates: every shipped scenario must pass its own validator
// and survive a JSON round-trip (the scenarios double as example files).
func TestLibraryValidates(t *testing.T) {
	names := map[string]bool{}
	for _, spec := range Library() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if names[spec.Name] {
			t.Errorf("duplicate scenario name %q", spec.Name)
		}
		names[spec.Name] = true
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: round-trip: %v", spec.Name, err)
		}
		if back.Name != spec.Name || len(back.Steps) != len(spec.Steps) {
			t.Errorf("%s: round-trip changed the scenario", spec.Name)
		}
	}
	if _, ok := Lookup("rolling-node-kills"); !ok {
		t.Error("Lookup missed a library scenario")
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
}

// FuzzParseSpec hammers the JSON scenario parser: whatever the bytes, it
// must return a typed error or a spec that validates — never panic — and
// an accepted spec must survive a marshal/re-parse round-trip.
func FuzzParseSpec(f *testing.F) {
	for _, spec := range Library() {
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"name": "x", "steps": [{"point": "urpc.drop", "policy": {"kind": "always"}, "after": "-5ms"}]}`))
	f.Add([]byte(`{"name": "x", "steps": [{"point": "disk.on.fire"}]}`))
	f.Add([]byte(`{"name": "x", "steps": [{"point": "cluster.node.kill", "target": 99}]}`))
	f.Add([]byte(`{"name":"x","steps":[{"point":"urpc.drop","policy":{"kind":"always"},"for":"0s"},{"point":"urpc.drop","policy":{"kind":"always"},"after":"1ms"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v alongside a non-nil spec", err)
			}
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec fails its own validator: %v", verr)
		}
		out, merr := json.Marshal(spec)
		if merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
		if _, rerr := ParseSpec(out); rerr != nil {
			t.Fatalf("round-trip rejected: %v\ninput:  %q\noutput: %q", rerr, data, out)
		}
	})
}
