package chaos

import (
	"bytes"
	"testing"
	"time"

	"spacejmp/internal/fault"
)

// TestScenarioLibrary runs every shipped scenario end to end — cluster,
// load, schedule, admin delta stream, invariants — and requires each to
// pass. This is the acceptance gate: a library scenario that stops holding
// its invariants is a regression in the stack, not in the scenario.
func TestScenarioLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario runs take seconds each")
	}
	for _, spec := range Library() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rep, err := Run(spec, Options{Admin: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Passed {
				var buf bytes.Buffer
				rep.WriteText(&buf)
				t.Fatalf("invariants failed:\n%s", buf.String())
			}
			if len(spec.Steps) > 0 && rep.DeltasObserved < len(spec.Steps) {
				t.Fatalf("streamed %d deltas, want at least one per step (%d)",
					rep.DeltasObserved, len(spec.Steps))
			}
		})
	}
}

// determinismSpec is built for reproducibility: a non-replicated cluster
// (no free-running probe loop), whole-run steps only, and points whose hit
// counts are functions of the fixed command stream — so the per-rule seeded
// RNG streams make the fired totals a pure function of (seed, spec).
func determinismSpec() *Spec {
	return &Spec{
		Name:        "determinism-probe",
		Description: "fixed seed, deterministic-hit-count points; totals must replay exactly",
		Seed:        7,
		Machine:     "small",
		Cluster:     ClusterSpec{Nodes: 3, Workers: 2, Locals: 2},
		Load: LoadSpec{
			Conns: 2, Pipeline: 2, Requests: 128,
			SetPercent: 30, Keys: 64,
		},
		Steps: []Step{
			{Point: "urpc.delay", Policy: PolicySpec{Kind: "probability", P: 0.3}},
			{Point: "server.conn.stall", Policy: PolicySpec{Kind: "probability", P: 0.1}},
		},
		Invariants: Invariants{
			MinLocal:      1,
			MinRemote:     1,
			StepsMustFire: true,
		},
	}
}

// TestScenarioDeterminism runs the same seeded scenario twice and requires
// identical per-step hit/fired totals and identical invariant outcomes —
// the property that turns a chaos run into a reproducible regression test.
func TestScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scenario runs")
	}
	run := func() *Report {
		t.Helper()
		rep, err := Run(determinismSpec(), Options{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if !rep.Passed {
			var buf bytes.Buffer
			rep.WriteText(&buf)
			t.Fatalf("invariants failed:\n%s", buf.String())
		}
		// Busy replies would perturb how many commands reach the urpc path;
		// the load here is sized to stay under the admission limit.
		if rep.Load.Busy != 0 {
			t.Fatalf("run saw %d busy replies; determinism needs an uncontended run", rep.Load.Busy)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Hits != sb.Hits || sa.Fired != sb.Fired {
			t.Errorf("step %d (%s): run A %d/%d fired, run B %d/%d fired",
				i, sa.Point, sa.Fired, sa.Hits, sb.Fired, sb.Hits)
		}
		if sa.Fired == 0 {
			t.Errorf("step %d (%s): never fired; the comparison is vacuous", i, sa.Point)
		}
	}
	if len(a.Checks) != len(b.Checks) {
		t.Fatalf("check counts differ: %d vs %d", len(a.Checks), len(b.Checks))
	}
	for i := range a.Checks {
		if a.Checks[i].Name != b.Checks[i].Name || a.Checks[i].OK != b.Checks[i].OK {
			t.Errorf("check %q: run A ok=%v, run B ok=%v",
				a.Checks[i].Name, a.Checks[i].OK, b.Checks[i].OK)
		}
	}
	if a.Load.Commands != b.Load.Commands || a.Load.Mismatches != b.Load.Mismatches {
		t.Errorf("load totals differ: %d/%d commands, %d/%d mismatches",
			a.Load.Commands, b.Load.Commands, a.Load.Mismatches, b.Load.Mismatches)
	}
}

// TestScheduleTiming pins the schedule contract: zero-offset steps are
// armed before StartSchedule returns, windowed steps capture their counters
// at disarm, and Horizon reports the last event.
func TestScheduleTiming(t *testing.T) {
	steps := []Step{
		{Point: "urpc.delay", Policy: PolicySpec{Kind: "always"}},
		{Point: "urpc.drop", Policy: PolicySpec{Kind: "always"}, After: dur(30 * time.Millisecond), For: dur(40 * time.Millisecond)},
	}
	if got, want := Horizon(steps), 70*time.Millisecond; got != want {
		t.Fatalf("Horizon = %v, want %v", got, want)
	}

	reg := fault.New(1)
	run := StartSchedule(t.Context(), steps, reg, Ops{}, t.Logf)
	// Contract: the zero-offset rule is live before StartSchedule returns.
	if !reg.Fire("urpc.delay") {
		t.Fatal("zero-offset step not armed synchronously")
	}
	if reg.Fire("urpc.drop") {
		t.Fatal("windowed step armed before its offset")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !reg.Fire("urpc.drop") {
		if time.Now().After(deadline) {
			t.Fatal("windowed step never armed")
		}
		time.Sleep(time.Millisecond)
	}
	reports, err := run.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if reg.Fire("urpc.drop") {
		t.Fatal("windowed step still armed after its window")
	}
	if reports[1].Fired == 0 {
		t.Fatalf("windowed step report lost its counters: %+v", reports[1])
	}
	FinalizeReports(reg, steps, reports)
	if reports[0].Fired == 0 {
		t.Fatalf("whole-run step report not finalized: %+v", reports[0])
	}
}
