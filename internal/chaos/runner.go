package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"spacejmp/internal/cluster"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/overload"
	"spacejmp/internal/server"
	"spacejmp/internal/stats"
	"spacejmp/internal/tenant"
)

// Options tune one Runner invocation without touching the spec.
type Options struct {
	// Machine overrides the spec's machine config name.
	Machine string
	// Admin serves the HTTP admin surface on a loopback listener for the
	// run's duration and watches its own /stats/delta long-poll stream; the
	// observed delta count lands in Report.DeltasObserved and is asserted
	// (at least one delta per step) as the stats-delta check.
	Admin bool
	// Log receives progress lines; nil runs silently.
	Log io.Writer
}

// Check is one evaluated invariant.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Report is a finished run: what the load saw, what each step did, what
// the registry looked like at the end, and every invariant verdict.
type Report struct {
	Scenario       string              `json:"scenario"`
	Seed           int64               `json:"seed"`
	Elapsed        time.Duration       `json:"elapsed_ns"`
	Load           *server.LoadResult  `json:"load,omitempty"`
	Steps          []StepReport        `json:"steps,omitempty"`
	Faults         []fault.PointStatus `json:"faults,omitempty"`
	DeltasObserved int                 `json:"deltas_observed,omitempty"`
	Checks         []Check             `json:"checks"`
	Passed         bool                `json:"passed"`
}

// Failed returns the checks that did not hold.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// WriteText renders the report for a terminal.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario %s (seed %d): ", r.Scenario, r.Seed)
	if r.Passed {
		fmt.Fprintf(w, "PASS")
	} else {
		fmt.Fprintf(w, "FAIL")
	}
	fmt.Fprintf(w, " in %v\n", r.Elapsed.Round(time.Millisecond))
	if l := r.Load; l != nil {
		fmt.Fprintf(w, "  load: %d commands (%d get, %d set, %d mget), %d busy, %d errors, %d mismatches, %d disconnects\n",
			l.Commands, l.Gets, l.Sets, l.MGets, l.Busy, l.Errors, l.Mismatches, l.Disconnects)
		if l.CrossDenied > 0 || l.CrossLeaks > 0 || l.QuotaRejected > 0 {
			fmt.Fprintf(w, "  tenant: %d cross-view probes denied, %d leaks, %d quota rejections\n",
				l.CrossDenied, l.CrossLeaks, l.QuotaRejected)
		}
		if l.StaleProbes > 0 || l.StaleRejected > 0 || l.StaleViolations > 0 {
			fmt.Fprintf(w, "  stale: %d probes, %d -STALE refusals, %d bound violations\n",
				l.StaleProbes, l.StaleRejected, l.StaleViolations)
		}
	}
	for _, s := range r.Steps {
		tgt := "any"
		if s.Target != fault.TargetAny {
			tgt = fmt.Sprintf("%d", s.Target)
		}
		line := fmt.Sprintf("  step %d: %s target %s fired %d/%d", s.Step, s.Point, tgt, s.Fired, s.Hits)
		if s.Err != "" {
			line += " err=" + s.Err
		}
		fmt.Fprintln(w, line)
	}
	if r.DeltasObserved > 0 {
		fmt.Fprintf(w, "  stats/delta: %d deltas streamed\n", r.DeltasObserved)
	}
	for _, c := range r.Checks {
		mark := "ok"
		if !c.OK {
			mark = "FAIL"
		}
		if c.Detail != "" {
			fmt.Fprintf(w, "  check %-18s %-4s %s\n", c.Name, mark, c.Detail)
		} else {
			fmt.Fprintf(w, "  check %-18s %s\n", c.Name, mark)
		}
	}
}

// quiesceTimeout bounds each post-load wait for asynchronous machinery
// (promotions, ships, degradations) to reach its declared count; generous
// because the race detector slows everything down.
const quiesceTimeout = 15 * time.Second

// Run boots the scenario's cluster under a verifying load, plays the
// schedule, and evaluates the invariants. A non-nil error means the run
// could not be staged (bad spec, boot failure); invariant violations are
// reported in Report.Checks with Passed false, not as errors.
func Run(spec *Spec, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logf := func(string, ...any) {}
	if opts.Log != nil {
		logf = func(format string, args ...any) { fmt.Fprintf(opts.Log, format+"\n", args...) }
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}

	machine := spec.Machine
	if opts.Machine != "" {
		machine = opts.Machine
	}
	hwCfg, err := hw.NamedConfig(machine)
	if err != nil {
		return nil, err
	}
	clCfg, err := spec.Cluster.Config()
	if err != nil {
		return nil, err
	}
	if clCfg.Replication.Enabled {
		// Replication rides NVM checkpoint generations; give machines
		// configured without (enough) persistent memory room to hold them.
		if hwCfg.Mem.NVMSize == 0 {
			hwCfg.Mem.NVMSize = 256 << 20
		}
		if hwCfg.Mem.NVMSuperblock == 0 {
			sb := hwCfg.Mem.NVMSize / 4
			if sb > 64<<20 {
				sb = 64 << 20
			}
			hwCfg.Mem.NVMSuperblock = sb
		}
	}

	goroutineBase := runtime.NumGoroutine()
	start := time.Now()
	m := hw.NewMachine(hwCfg)
	reg := fault.New(seed)
	m.SetFaults(reg)
	sys := kernel.New(m)
	sys.EnableStats(8192)
	obs := m.Observer()
	frameBase := m.PM.AllocatedBytes()

	router, err := cluster.New(sys, clCfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster boot: %w", err)
	}

	// Tenant runs boot the demo registry over the cluster's node stores; the
	// load generator authenticates with the matching demo credentials.
	var tenants *tenant.Registry
	if spec.Load.Tenants > 0 {
		nodeCount, _ := spec.Cluster.placement()
		tenants, err = tenant.NewDemo(spec.Load.Tenants,
			tenant.Config{Nodes: nodeCount, Stats: obs}, tenant.Quotas{})
		if err != nil {
			router.Close()
			return nil, fmt.Errorf("chaos: tenant registry: %w", err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		router.Close()
		return nil, err
	}
	srvCfg := server.Config{QueueDepth: clCfg.QueueDepth, Tenants: tenants}
	srvCfg.CyclesPerMilli = uint64(hwCfg.GHz * 1e6)
	if d := time.Duration(spec.Cluster.Deadline); d > 0 {
		srvCfg.DeadlineCycles = overload.Cycles(d, hwCfg.GHz)
	}
	srv := server.NewWithBackend(sys, ln, srvCfg, router)
	logf("chaos: %s: serving on %s (machine %s, seed %d)", spec.Name, srv.Addr(), hwCfg.Name, seed)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Optional admin surface plus its own /stats/delta watcher — the run
	// observes itself over the same HTTP long-poll a human would.
	var admin *http.Server
	var deltaCount chan int
	if opts.Admin {
		aln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown()
			return nil, err
		}
		admin = &http.Server{Handler: server.AdminHandler(sys, router, tenants)}
		go admin.Serve(aln)
		deltaCount = make(chan int, 1)
		go watchDeltas(ctx, aln.Addr().String(), deltaCount)
		logf("chaos: admin on http://%s", aln.Addr())
	}

	sched := StartSchedule(ctx, spec.Steps, reg, Ops{
		Kill: router.KillNode,
		AddNode: func() (int, error) {
			id, err := router.AddNode()
			if err != nil {
				return 0, err
			}
			// One step is the whole operator action: bring the node up AND
			// move a fair share of slots onto it under the live load.
			if _, err := router.RebalanceInto(id); err != nil {
				return id, err
			}
			return id, nil
		},
		RemoveNode:  router.RemoveNode,
		MigrateSlot: router.MigrateSlot,
	}, logf)

	loadCfg := server.LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       spec.Load.Conns,
		Pipeline:    spec.Load.Pipeline,
		Requests:    spec.Load.Requests,
		SetPercent:  spec.Load.SetPercent,
		MGetPercent: spec.Load.MGetPercent,
		MGetKeys:    spec.Load.MGetKeys,
		Keys:        spec.Load.Keys,
		ValueSize:   spec.Load.ValueSize,
		Seed:        seed,
		Reconnect:   spec.Load.Reconnect,

		Tenants:         spec.Load.Tenants,
		Auth:            spec.Load.Auth,
		CrossCheckEvery: spec.Load.CrossCheckEvery,

		StaleReads:      spec.Load.StaleReads,
		StaleBound:      time.Duration(spec.Load.StaleBound),
		StaleCheckEvery: spec.Load.StaleCheckEvery,
	}
	res, loadErr := server.RunLoad(loadCfg)
	logf("chaos: load done: %d commands, %d busy, %d errors, %d mismatches",
		res.Commands, res.Busy, res.Errors, res.Mismatches)

	// The schedule may reach past the load (a late crash lands on probe
	// traffic); let it finish before judging anything.
	schedCtx, schedCancel := context.WithTimeout(ctx, Horizon(spec.Steps)+5*time.Second)
	reports, schedErr := sched.Wait(schedCtx)
	schedCancel()

	// Quiesce: asynchronous failover machinery (probe -> ship -> promote)
	// needs wall time to reach the declared counts; poll, bounded.
	inv := &spec.Invariants
	if p := inv.Promotions; p != nil && *p > 0 {
		waitUntil(quiesceTimeout, func() bool { return obs.ClusterPromotionsTotal() >= *p })
	}
	if inv.MinShips > 0 {
		waitUntil(quiesceTimeout, func() bool { return obs.ClusterShipsTotal() >= inv.MinShips })
	}
	if d := inv.Degraded; d != nil && *d > 0 {
		waitUntil(quiesceTimeout, func() bool { return countDegraded(router.Health()) >= *d })
	}
	if inv.MinSlotMoves > 0 {
		waitUntil(quiesceTimeout, func() bool { return obs.ClusterSlotMovesTotal() >= inv.MinSlotMoves })
	}
	if inv.MinDegradedReads > 0 {
		waitUntil(quiesceTimeout, func() bool { return obs.ClusterDegradedReadsTotal() >= inv.MinDegradedReads })
	}
	if inv.MinBreakerOpens > 0 {
		waitUntil(quiesceTimeout, func() bool { return obs.ClusterBreakerOpensTotal() >= inv.MinBreakerOpens })
	}

	FinalizeReports(reg, spec.Steps, reports)
	faults := reg.Points()
	health := router.Health()
	pending := router.PendingFrames()

	cancel() // stop the delta watcher before tearing the admin surface down
	deltas := 0
	if deltaCount != nil {
		deltas = <-deltaCount
	}
	if admin != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(sctx)
		scancel()
	}
	shutdownErr := srv.Shutdown()
	leakErr := m.PM.CheckLeaks(frameBase)
	goroutinesOK := waitUntil(5*time.Second, func() bool { return runtime.NumGoroutine() <= goroutineBase })

	snap := sys.Stats()
	rep := &Report{
		Scenario:       spec.Name,
		Seed:           seed,
		Elapsed:        time.Since(start),
		Load:           res,
		Steps:          reports,
		Faults:         faults,
		DeltasObserved: deltas,
	}
	evaluate(rep, spec, snap, health, runState{
		loadErr:      loadErr,
		schedErr:     schedErr,
		shutdownErr:  shutdownErr,
		leakErr:      leakErr,
		pending:      pending,
		goroutinesOK: goroutinesOK,
		adminOn:      opts.Admin,
		tracer:       obs.Tracer(),
	})
	return rep, nil
}

// runState carries the teardown-side evidence into invariant evaluation.
type runState struct {
	loadErr      error
	schedErr     error
	shutdownErr  error
	leakErr      error
	pending      int
	goroutinesOK bool
	adminOn      bool
	tracer       *stats.Tracer
}

func evaluate(rep *Report, spec *Spec, snap *stats.Snapshot, health []server.NodeHealth, st runState) {
	inv := &spec.Invariants
	res := rep.Load
	add := func(name string, ok bool, detail string) {
		rep.Checks = append(rep.Checks, Check{Name: name, OK: ok, Detail: detail})
	}
	errDetail := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}

	add("load-transport", st.loadErr == nil, errDetail(st.loadErr))
	add("schedule", st.schedErr == nil, errDetail(st.schedErr))
	add("verify", res.Mismatches <= inv.MaxMismatches,
		fmt.Sprintf("%d mismatches (max %d)", res.Mismatches, inv.MaxMismatches))
	if spec.Load.StaleReads {
		// The staleness bound is absolute, like tenant isolation: a stale
		// version served silently is always a failure.
		add("stale-violations", res.StaleViolations == 0,
			fmt.Sprintf("%d staleness-bound violations (none allowed)", res.StaleViolations))
		if inv.MinStaleProbes > 0 {
			add("stale-probes", res.StaleProbes >= inv.MinStaleProbes,
				fmt.Sprintf("%d staleness probes completed (min %d)", res.StaleProbes, inv.MinStaleProbes))
		}
	}
	if inv.MaxP99 > 0 {
		p99 := time.Duration(res.Latency.Quantile(0.99))
		add("latency-p99", p99 <= time.Duration(inv.MaxP99),
			fmt.Sprintf("p99 %v (max %v)", p99, time.Duration(inv.MaxP99)))
	}
	if spec.Load.Tenants > 1 && spec.Load.Auth {
		// Isolation is absolute: any data reply to a cross-view probe is a
		// leak, regardless of what the scenario otherwise tolerates.
		add("cross-leaks", res.CrossLeaks == 0,
			fmt.Sprintf("%d cross-view leaks (none allowed)", res.CrossLeaks))
		if inv.MinCrossDenied > 0 {
			add("cross-denied", res.CrossDenied >= inv.MinCrossDenied,
				fmt.Sprintf("%d cross-view probes denied (min %d)", res.CrossDenied, inv.MinCrossDenied))
		}
	}

	switch {
	case inv.MaxErrorFrac != nil:
		limit := uint64(*inv.MaxErrorFrac * float64(res.Commands))
		add("errors", res.Errors <= limit, fmt.Sprintf("%d terminal errors (max %d = %g of %d)",
			res.Errors, limit, *inv.MaxErrorFrac, res.Commands))
	case inv.MaxErrors != nil:
		add("errors", res.Errors <= *inv.MaxErrors,
			fmt.Sprintf("%d terminal errors (max %d)", res.Errors, *inv.MaxErrors))
	default:
		add("errors", res.Errors == 0, fmt.Sprintf("%d terminal errors (none allowed)", res.Errors))
	}
	if inv.MaxBusyFrac != nil {
		limit := uint64(*inv.MaxBusyFrac * float64(res.Commands))
		add("busy", res.Busy <= limit, fmt.Sprintf("%d retryable refusals (max %d = %g of %d)",
			res.Busy, limit, *inv.MaxBusyFrac, res.Commands))
	}

	var repl stats.ReplicationSnap
	var mig stats.MigrationSnap
	var ovl stats.OverloadSnap
	var local, remote uint64
	if snap != nil && snap.Cluster != nil {
		local, remote = snap.Cluster.Local, snap.Cluster.Remote
		if snap.Cluster.Replication != nil {
			repl = *snap.Cluster.Replication
		}
		if snap.Cluster.Migration != nil {
			mig = *snap.Cluster.Migration
		}
		if snap.Cluster.Overload != nil {
			ovl = *snap.Cluster.Overload
		}
	}
	if p := inv.Promotions; p != nil {
		add("promotions", repl.Promotions == *p,
			fmt.Sprintf("%d promotions (want exactly %d)", repl.Promotions, *p))
	}
	if inv.MinShips > 0 {
		add("ships", repl.Ships >= inv.MinShips,
			fmt.Sprintf("%d checkpoint ships (min %d)", repl.Ships, inv.MinShips))
	}
	if l := inv.MaxLostUpdates; l != nil {
		add("lost-updates", repl.LostUpdates <= *l,
			fmt.Sprintf("%d lost updates (max %d)", repl.LostUpdates, *l))
	}
	if inv.MinSlotMoves > 0 {
		add("slot-moves", mig.SlotMoves >= inv.MinSlotMoves,
			fmt.Sprintf("%d slot migrations (min %d)", mig.SlotMoves, inv.MinSlotMoves))
	}
	if f := inv.SlotMoveFailures; f != nil {
		add("slot-move-failures", mig.SlotMoveFailures == *f,
			fmt.Sprintf("%d failed slot migrations (want exactly %d)", mig.SlotMoveFailures, *f))
	}
	if d := inv.Degraded; d != nil {
		got := countDegraded(health)
		add("degraded", got == *d, fmt.Sprintf("%d degraded ranges (want exactly %d)", got, *d))
	}
	if inv.MinDegradedReads > 0 {
		add("degraded-reads", ovl.DegradedReads >= inv.MinDegradedReads,
			fmt.Sprintf("%d reads degraded to stale views (min %d)", ovl.DegradedReads, inv.MinDegradedReads))
	}
	if inv.MinBreakerOpens > 0 {
		add("breaker-opens", ovl.BreakerOpens >= inv.MinBreakerOpens,
			fmt.Sprintf("%d breaker trips (min %d)", ovl.BreakerOpens, inv.MinBreakerOpens))
	}
	if inv.MinLocal > 0 {
		add("local", local >= inv.MinLocal,
			fmt.Sprintf("%d commands on the shared-VAS path (min %d)", local, inv.MinLocal))
	}
	if inv.MinRemote > 0 {
		add("remote", remote >= inv.MinRemote,
			fmt.Sprintf("%d commands over urpc (min %d)", remote, inv.MinRemote))
	}
	if inv.MinDisconnects > 0 {
		add("disconnects", res.Disconnects >= inv.MinDisconnects,
			fmt.Sprintf("%d disconnects survived (min %d)", res.Disconnects, inv.MinDisconnects))
	}
	if inv.StepsMustFire {
		ok := true
		detail := ""
		for _, s := range rep.Steps {
			if s.Fired == 0 || s.Err != "" {
				ok = false
				detail = fmt.Sprintf("step %d (%s) never fired", s.Step, s.Point)
				if s.Err != "" {
					detail += ": " + s.Err
				}
				break
			}
		}
		add("steps-fired", ok, detail)
	}
	for _, name := range sortedKeys(inv.MinTraceEvents) {
		want := inv.MinTraceEvents[name]
		got := traceCountByName(st.tracer, name)
		add("trace:"+name, got >= want, fmt.Sprintf("%d %s events (min %d)", got, name, want))
	}

	if st.adminOn {
		add("stats-delta", rep.DeltasObserved >= len(spec.Steps),
			fmt.Sprintf("%d deltas streamed (min %d: one per step)", rep.DeltasObserved, len(spec.Steps)))
	}
	add("shutdown", st.shutdownErr == nil, errDetail(st.shutdownErr))
	add("drain-frames", st.leakErr == nil, errDetail(st.leakErr))
	add("drain-pending", st.pending == 0, fmt.Sprintf("%d urpc frames pending", st.pending))
	add("drain-goroutines", st.goroutinesOK, "goroutine count back to baseline")

	rep.Passed = true
	for _, c := range rep.Checks {
		if !c.OK {
			rep.Passed = false
			break
		}
	}
}

func countDegraded(health []server.NodeHealth) int {
	n := 0
	for _, h := range health {
		if h.Degraded {
			n++
		}
	}
	return n
}

func traceCountByName(t *stats.Tracer, name string) uint64 {
	for k := 0; k < stats.NumEvents; k++ {
		if stats.EventKind(k).String() == name {
			return t.Count(stats.EventKind(k))
		}
	}
	return 0
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// watchDeltas loops on the admin surface's /stats/delta long-poll for the
// run's duration and reports how many changed deltas it saw — the live
// observer the acceptance criteria ask for, exercised on every Admin run.
func watchDeltas(ctx context.Context, addr string, out chan<- int) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	count := 0
	defer func() { out <- count }()
	cursor := ""
	for ctx.Err() == nil {
		url := "http://" + addr + "/stats/delta?wait=250ms"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			return
		}
		var body struct {
			Cursor  uint64 `json:"cursor"`
			Changed bool   `json:"changed"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			// A lost cursor (410) restarts the stream from scratch.
			cursor = ""
			if resp.StatusCode != http.StatusGone {
				return
			}
			continue
		}
		if body.Changed {
			count++
		}
		cursor = fmt.Sprintf("%d", body.Cursor)
	}
}
