package stats

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets: bucket 0 holds the value 0,
// bucket i (i ≥ 1) holds values v with bits.Len64(v) == i, i.e. the range
// [2^(i-1), 2^i).
const histBuckets = 65

// Hist is a lock-free log2-bucketed histogram. Observations are a handful
// of atomic adds, so recording from concurrently running cores is safe and
// cheap; quantiles are approximate (bucket upper bound).
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Safe on nil (disabled).
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snap copies the histogram into an immutable HistSnap. Safe on nil
// (returns a zero snapshot).
func (h *Hist) Snap() HistSnap {
	if h == nil {
		return HistSnap{}
	}
	return h.snapshot()
}

// snapshot copies the histogram into an immutable HistSnap.
func (h *Hist) snapshot() HistSnap {
	s := HistSnap{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
		Buckets: make([]uint64, histBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnap is an immutable histogram snapshot. Buckets[i] counts values in
// [2^(i-1), 2^i); Buckets[0] counts exact zeros.
type HistSnap struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the upper
// edge of the log2 bucket where the q-th observation falls.
func (h HistSnap) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			hi := uint64(1) << uint(i)
			if hi-1 > h.Max && h.Max != 0 {
				return h.Max
			}
			return hi - 1
		}
	}
	return h.Max
}

// sub returns the bucket-wise difference h − before (for Snapshot.Delta).
// Max is not subtractable and is carried from the later snapshot.
func (h HistSnap) sub(before HistSnap) HistSnap {
	out := HistSnap{
		Count: h.Count - before.Count,
		Sum:   h.Sum - before.Sum,
		Max:   h.Max,
	}
	if len(h.Buckets) > 0 {
		out.Buckets = make([]uint64, len(h.Buckets))
		copy(out.Buckets, h.Buckets)
		for i := range before.Buckets {
			if i < len(out.Buckets) {
				out.Buckets[i] -= before.Buckets[i]
			}
		}
	}
	return out
}
