package stats

import "sync/atomic"

// Tenant-layer counters. Multi-tenant serving gives every RESP command an
// identity dimension; the sink keeps one counter block per registered
// tenant (indexed by registration order, the tenant registry's index) so
// the admin surface can show per-tenant commands, payload bytes, quota
// rejections, and capability denials without touching the registry's own
// locks. Same contract as the rest of the sink: nil-safe and atomic.

// TenantCounters is one tenant's serving activity.
type TenantCounters struct {
	commands atomic.Uint64
	bytes    atomic.Uint64
	quota    atomic.Uint64
	denials  atomic.Uint64
}

// tenantCounters is the sink's tenant block.
type tenantCounters struct {
	table atomic.Pointer[[]TenantCounters]
}

// InstallTenants grows the per-tenant counter table to hold at least n
// tenants, preserving existing totals — tenants register incrementally and
// a fresh table would zero history. Safe on nil.
func (s *Sink) InstallTenants(n int) {
	if s == nil {
		return
	}
	old := s.tenants.table.Load()
	if old != nil && len(*old) >= n {
		return
	}
	table := make([]TenantCounters, n)
	if old != nil {
		for i := range *old {
			table[i].commands.Store((*old)[i].commands.Load())
			table[i].bytes.Store((*old)[i].bytes.Load())
			table[i].quota.Store((*old)[i].quota.Load())
			table[i].denials.Store((*old)[i].denials.Load())
		}
	}
	s.tenants.table.Store(&table)
}

func (s *Sink) tenant(i int) *TenantCounters {
	if s == nil {
		return nil
	}
	table := s.tenants.table.Load()
	if table == nil || i < 0 || i >= len(*table) {
		return nil
	}
	return &(*table)[i]
}

// TenantCommand records one admitted command of n payload bytes for the
// tenant at index i. Safe on nil.
func (s *Sink) TenantCommand(i int, n uint64) {
	if t := s.tenant(i); t != nil {
		t.commands.Add(1)
		t.bytes.Add(n)
	}
}

// TenantQuotaRejected records one quota rejection at admission. Safe on nil.
func (s *Sink) TenantQuotaRejected(i int) {
	if t := s.tenant(i); t != nil {
		t.quota.Add(1)
	}
}

// TenantDenied records one capability denial (a cross-view address the
// tenant held no capability for). Safe on nil.
func (s *Sink) TenantDenied(i int) {
	if t := s.tenant(i); t != nil {
		t.denials.Add(1)
	}
}

// TenantQuotaRejectedTotal returns the running quota-rejection count summed
// over tenants — a single pass over atomics, safe to poll mid-run.
func (s *Sink) TenantQuotaRejectedTotal() uint64 {
	if s == nil {
		return 0
	}
	table := s.tenants.table.Load()
	if table == nil {
		return 0
	}
	var total uint64
	for i := range *table {
		total += (*table)[i].quota.Load()
	}
	return total
}

// TenantDeniedTotal returns the running capability-denial count summed over
// tenants, safe to poll mid-run.
func (s *Sink) TenantDeniedTotal() uint64 {
	if s == nil {
		return 0
	}
	table := s.tenants.table.Load()
	if table == nil {
		return 0
	}
	var total uint64
	for i := range *table {
		total += (*table)[i].denials.Load()
	}
	return total
}
