// Package stats is the machine-wide observability layer: low-overhead,
// race-safe counters and an optional bounded trace ring, threaded through
// the simulated hardware (hw, tlb, pt, mem), the VM layer, and the OS
// personalities.
//
// The design contract is zero cost when disabled: every component holds an
// optional *Sink (or a sub-counter pointer taken from one) and consults it
// unconditionally; all methods are safe on a nil receiver and reduce to a
// single pointer comparison when observability is off — the same pattern
// package fault uses for its registry. When enabled, all mutation goes
// through sync/atomic, so counters can be read mid-run from any goroutine
// and recorded under `go test -race` from concurrently running cores.
//
// Cycle accounting is by category (Cat): the hardware attributes every
// cycle it charges to a category (TLB probe, page walk, flushing CR3 write,
// tagged switch, data access, NVM write, kernel page-table manipulation,
// syscall control path), so a benchmark's wall-clock claim can be
// decomposed the way the paper's §6 hardware-counter plots are.
package stats

import (
	"sync/atomic"

	"spacejmp/internal/arch"
)

// Cat is a cycle-accounting category. Every cycle the simulated hardware
// charges is attributed to exactly one category.
type Cat uint8

const (
	// CatOther holds cycles charged through the generic AddCycles path
	// (application work, URPC transfers) that no specific category claims.
	CatOther Cat = iota
	// CatSyscall is OS control-path work: syscall entry and the
	// personality's per-operation overhead.
	CatSyscall
	// CatSwitch is tagged CR3 writes plus switch bookkeeping — the cost of
	// moving a core between address spaces while retaining the TLB.
	CatSwitch
	// CatFlush is untagged CR3 writes: the flushing form of the switch,
	// whose cost is dominated by the implicit full TLB invalidation.
	CatFlush
	// CatShootdown is remote-TLB invalidation work. The calibrated cost
	// model charges shootdowns no cycles today; the category exists so the
	// taxonomy is stable when a cost is added (event counts live in
	// Sink.Shootdown*).
	CatShootdown
	// CatTLBProbe is TLB lookup cycles (hits and the probe part of misses).
	CatTLBProbe
	// CatWalk is page-walker memory references on TLB misses.
	CatWalk
	// CatPT is kernel page-table manipulation: PTE writes/clears and table
	// node allocation/free during map, unmap, and attach.
	CatPT
	// CatData is data-side cache-line accesses (loads and DRAM stores).
	CatData
	// CatNVMWrite is data stores that land in the persistent NVM tier.
	CatNVMWrite

	// NumCats is the number of cycle categories.
	NumCats = int(CatNVMWrite) + 1
)

var catNames = [NumCats]string{
	"other", "syscall", "switch", "flush", "shootdown",
	"tlb-probe", "walk", "pt", "data", "nvm-write",
}

func (c Cat) String() string {
	if int(c) < NumCats {
		return catNames[c]
	}
	return "cat(?)"
}

// Op identifies a SpaceJMP syscall for per-syscall latency accounting.
type Op uint8

const (
	OpVASCreate Op = iota
	OpVASFind
	OpVASAttach
	OpVASDetach
	OpVASSwitch
	OpVASClone
	OpVASCtl
	OpVASDestroy
	OpSegAlloc
	OpSegFind
	OpSegAttach
	OpSegDetach
	OpSegClone
	OpSegCtl
	OpSegFree

	// NumOps is the number of accounted syscalls.
	NumOps = int(OpSegFree) + 1
)

var opNames = [NumOps]string{
	"vas_create", "vas_find", "vas_attach", "vas_detach", "vas_switch",
	"vas_clone", "vas_ctl", "vas_destroy",
	"seg_alloc", "seg_find", "seg_attach", "seg_detach", "seg_clone",
	"seg_ctl", "seg_free",
}

func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return "op(?)"
}

// CoreCounters is one core's cycle accounting by category. Cores hold a
// pointer to their slot and add with a single atomic op per charge.
type CoreCounters struct {
	cycles [NumCats]atomic.Uint64
}

// AddCycles attributes n cycles to category cat. Safe on nil (disabled).
func (c *CoreCounters) AddCycles(cat Cat, n uint64) {
	if c == nil {
		return
	}
	c.cycles[cat].Add(n)
}

// Cycles returns the cycles attributed to cat so far.
func (c *CoreCounters) Cycles(cat Cat) uint64 {
	if c == nil {
		return 0
	}
	return c.cycles[cat].Load()
}

// PTCounters counts page-table node and entry activity machine-wide. The
// pt package records into it directly when a table has an observer set.
type PTCounters struct {
	tablesAllocated atomic.Uint64
	tablesFreed     atomic.Uint64
	entriesSet      atomic.Uint64
	entriesCleared  atomic.Uint64
	walks           atomic.Uint64
	walkRefs        atomic.Uint64
}

// TableAllocated records one table-node allocation. Safe on nil.
func (p *PTCounters) TableAllocated() {
	if p != nil {
		p.tablesAllocated.Add(1)
	}
}

// TableFreed records one table-node free. Safe on nil.
func (p *PTCounters) TableFreed() {
	if p != nil {
		p.tablesFreed.Add(1)
	}
}

// EntrySet records one PTE write. Safe on nil.
func (p *PTCounters) EntrySet() {
	if p != nil {
		p.entriesSet.Add(1)
	}
}

// EntryCleared records one PTE clear. Safe on nil.
func (p *PTCounters) EntryCleared() {
	if p != nil {
		p.entriesCleared.Add(1)
	}
}

// Walk records one page walk touching refs table nodes. Safe on nil.
func (p *PTCounters) Walk(refs int) {
	if p != nil {
		p.walks.Add(1)
		p.walkRefs.Add(uint64(refs))
	}
}

// asidCounters is per-address-space-tag TLB activity.
type asidCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// Sink is the machine-wide collector. One Sink serves one hw.Machine; all
// recording methods are safe on a nil *Sink and safe to call from any
// number of goroutines.
type Sink struct {
	cores []CoreCounters
	asids []asidCounters // indexed by arch.ASID, length arch.MaxASID+1

	// PT is the machine-wide page-table counter block; tables record into
	// it via SetObserver(sink.PTObs()).
	PT PTCounters

	tlbFlushes        atomic.Uint64
	tlbFlushedEntries atomic.Uint64

	shootdowns     atomic.Uint64
	shootdownPages atomic.Uint64

	nvmWrites    atomic.Uint64
	nvmWriteByte atomic.Uint64

	vmMaps      atomic.Uint64
	vmUnmaps    atomic.Uint64
	vmFaults    atomic.Uint64
	vmCOWBreaks atomic.Uint64

	urpcRetries atomic.Uint64
	faultsFired atomic.Uint64

	lockWaitNs     Hist // real time a vas_switch spent blocked acquiring segment locks
	lockHoldCycles Hist // simulated cycles a lock set was held between switches

	syscalls [NumOps]Hist // per-syscall latency in simulated cycles

	// server is the serving-layer block (connections, commands, latency,
	// per-shard counters); see server.go.
	server serverCounters

	// cluster is the cluster-layer block (local/remote routing counts and
	// per-mode cycle histograms); see cluster.go.
	cluster clusterCounters

	// tenants is the multi-tenant serving block (per-tenant commands,
	// bytes, quota rejections, capability denials); see tenant.go.
	tenants tenantCounters

	tracer atomic.Pointer[Tracer]
}

// NewSink creates a collector for a machine with the given core count.
func NewSink(cores int) *Sink {
	return &Sink{
		cores: make([]CoreCounters, cores),
		asids: make([]asidCounters, int(arch.MaxASID)+1),
	}
}

// Core returns core i's category-cycle counter block, or nil when the sink
// is nil or i is out of range — callers hold the result and charge through
// its nil-safe methods.
func (s *Sink) Core(i int) *CoreCounters {
	if s == nil || i < 0 || i >= len(s.cores) {
		return nil
	}
	return &s.cores[i]
}

// PTObs returns the machine-wide page-table counter block (nil-safe).
func (s *Sink) PTObs() *PTCounters {
	if s == nil {
		return nil
	}
	return &s.PT
}

// TLBHit records a TLB hit while the core ran under the given tag.
func (s *Sink) TLBHit(asid arch.ASID) {
	if s != nil {
		s.asids[asid].hits.Add(1)
	}
}

// TLBMiss records a TLB miss while the core ran under the given tag.
func (s *Sink) TLBMiss(asid arch.ASID) {
	if s != nil {
		s.asids[asid].misses.Add(1)
	}
}

// TLBEvict records the eviction of an entry belonging to the given tag.
func (s *Sink) TLBEvict(asid arch.ASID) {
	if s != nil {
		s.asids[asid].evictions.Add(1)
	}
}

// TLBFlush records one flush operation that invalidated entries entries.
func (s *Sink) TLBFlush(entries int) {
	if s != nil {
		s.tlbFlushes.Add(1)
		s.tlbFlushedEntries.Add(uint64(entries))
	}
}

// Shootdown records one remote-TLB shootdown covering pages pages that
// invalidated entries entries across all cores.
func (s *Sink) Shootdown(pages uint64, entries int) {
	if s != nil {
		s.shootdowns.Add(1)
		s.shootdownPages.Add(pages)
		s.tlbFlushedEntries.Add(uint64(entries))
	}
}

// NVMWrite records a data write of n bytes landing in the NVM tier.
func (s *Sink) NVMWrite(n int) {
	if s != nil {
		s.nvmWrites.Add(1)
		s.nvmWriteByte.Add(uint64(n))
	}
}

// VMMap records one vm.Space region map.
func (s *Sink) VMMap() {
	if s != nil {
		s.vmMaps.Add(1)
	}
}

// VMUnmap records one vm.Space region unmap.
func (s *Sink) VMUnmap() {
	if s != nil {
		s.vmUnmaps.Add(1)
	}
}

// VMFault records one VM-layer page fault (demand paging or COW break).
func (s *Sink) VMFault() {
	if s != nil {
		s.vmFaults.Add(1)
	}
}

// VMCOWBreak records one copy-on-write break: a write faulted on a shared
// page and the object allocated a private frame for it.
func (s *Sink) VMCOWBreak() {
	if s != nil {
		s.vmCOWBreaks.Add(1)
	}
}

// VMCOWBreaksTotal returns the running COW-break count — a single atomic
// load, safe to poll while the machine runs.
func (s *Sink) VMCOWBreaksTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.vmCOWBreaks.Load()
}

// LockWait records ns nanoseconds of real time a switch spent acquiring a
// VAS's segment lock set (≈0 when uncontended).
func (s *Sink) LockWait(ns uint64) {
	if s != nil {
		s.lockWaitNs.Observe(ns)
	}
}

// LockHold records the simulated cycles a thread held a VAS's segment lock
// set before switching away.
func (s *Sink) LockHold(cycles uint64) {
	if s != nil {
		s.lockHoldCycles.Observe(cycles)
	}
}

// Syscall records one completed syscall of kind op taking the given number
// of simulated cycles.
func (s *Sink) Syscall(op Op, cycles uint64) {
	if s != nil {
		s.syscalls[op].Observe(cycles)
	}
}

// URPCRetry records one request re-send by a urpc endpoint and traces it.
func (s *Sink) URPCRetry(core int, seq, try uint64) {
	if s == nil {
		return
	}
	s.urpcRetries.Add(1)
	s.Trace(Event{Kind: EvURPCRetry, Core: core, A: seq, B: try})
}

// FaultFired records the firing of a fault-injection point and traces it.
func (s *Sink) FaultFired(name string) {
	if s == nil {
		return
	}
	s.faultsFired.Add(1)
	s.Trace(Event{Kind: EvFault, Core: -1, Label: name})
}

// VASSwitch traces one vas_switch by the thread on the given core.
func (s *Sink) VASSwitch(core, pid int, handle uint64) {
	if s != nil {
		s.Trace(Event{Kind: EvVASSwitch, Core: core, PID: pid, A: handle})
	}
}

// SegAttach traces a segment being attached to a VAS.
func (s *Sink) SegAttach(core, pid int, vid, sid uint64) {
	if s != nil {
		s.Trace(Event{Kind: EvSegAttach, Core: core, PID: pid, A: vid, B: sid})
	}
}

// SetTracer installs (or, with nil, removes) the bounded trace ring.
func (s *Sink) SetTracer(t *Tracer) {
	if s != nil {
		s.tracer.Store(t)
	}
}

// Tracer returns the installed trace ring, or nil.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer.Load()
}

// Trace records an event into the ring, if one is installed. The nil-tracer
// fast path is a single atomic pointer load.
func (s *Sink) Trace(e Event) {
	if s == nil {
		return
	}
	if t := s.tracer.Load(); t != nil {
		t.Record(e)
	}
}
