package stats

import (
	"fmt"
	"sync/atomic"
)

// Cluster-layer counters. The cluster router serves every command one of
// two ways — a VAS switch onto a co-resident shard's store, or a urpc call
// to a remote shard node — and the whole point of the layer (paper §5.3,
// Figure 7) is comparing what the two modes cost. The sink therefore keeps,
// besides per-node routing counts, a cycle histogram per mode: the worker
// core's simulated-cycle delta across one request, so the local and remote
// distributions can be read side by side from one snapshot.

// clusterCounters is the sink's cluster-layer block.
type clusterCounters struct {
	local    atomic.Uint64 // commands served on the shared-VAS fast path
	remote   atomic.Uint64 // commands served over urpc
	timeouts atomic.Uint64 // remote commands whose retries were exhausted

	localCycles  Hist // worker-core cycles per locally-served command
	remoteCycles Hist // worker-core cycles per remotely-served command
	urpcCycles   Hist // cycles of the urpc Call alone (transfer + dispatch + server work)

	// Replication and failover activity (replicated clusters only).
	ships         atomic.Uint64 // checkpoint generations shipped to replicas
	shipBytes     atomic.Uint64 // segment-image payload bytes moved
	shipFailures  atomic.Uint64 // ships abandoned (transport or checkpoint failure)
	probes        atomic.Uint64 // health probes sent
	probeFailures atomic.Uint64 // probes that timed out, were dropped, or hit a dead node
	promotions    atomic.Uint64 // replicas promoted to serve a dead node's range
	deltaReplayed atomic.Uint64 // post-checkpoint delta entries replayed at promotion
	lostUpdates   atomic.Uint64 // updates lost to delta-window overflow or replay failure

	// Elastic-membership activity (slot migrations, node join/leave).
	slotMoves        atomic.Uint64 // slots whose ownership flipped after a full copy
	slotMoveFailures atomic.Uint64 // migrations aborted and rolled back
	migKeysMoved     atomic.Uint64 // keys copied into migration targets
	migBytes         atomic.Uint64 // key+value payload bytes streamed during migrations
	migDeltaReplayed atomic.Uint64 // writes replayed from migration delta logs
	movedRetries     atomic.Uint64 // -MOVED refusals sent to commands racing a flip
	nodesAdded       atomic.Uint64 // nodes joined mid-run
	nodesRemoved     atomic.Uint64 // nodes drained and retired mid-run

	// COW-fork activity (fork-based checkpoint shipping + follower reads).
	forks           atomic.Uint64 // frozen views forked off live shards
	forkReleases    atomic.Uint64 // frozen views released and reclaimed
	forkInvalidates atomic.Uint64 // views fenced off by promotion or slot flip
	followerReads   atomic.Uint64 // read commands served from a frozen view
	staleRejected   atomic.Uint64 // follower reads refused with -STALE past the bound

	shipNs Hist // wall ns per fork-based image extraction + apply, off-mutex

	// Overload protection (deadline budgets, breakers, degradation).
	deadlineExpired  atomic.Uint64 // commands refused with -DEADLINE (budget exhausted)
	shed             atomic.Uint64 // remote dispatches refused fast by an open breaker
	degradedReads    atomic.Uint64 // reads served stale because the primary was overloaded
	breakerOpens     atomic.Uint64 // breaker transitions into open
	breakerHalfOpens atomic.Uint64 // breaker transitions into half-open
	breakerCloses    atomic.Uint64 // breaker transitions back to closed

	budgetRemaining Hist // cycles left on the budget when a budgeted command finished

	nodes    atomic.Pointer[[]NodeCounters]
	slotKeys atomic.Pointer[[]atomic.Uint64]
}

// NodeCounters is one shard node's routing activity: how many commands the
// router served against it locally, remotely, and how many remote calls
// timed out. Multi-key commands count once per node they touch.
type NodeCounters struct {
	local    atomic.Uint64
	remote   atomic.Uint64
	timeouts atomic.Uint64
}

// InstallClusterNodes sizes the per-node counter table. Safe on nil.
func (s *Sink) InstallClusterNodes(n int) {
	if s == nil {
		return
	}
	table := make([]NodeCounters, n)
	s.cluster.nodes.Store(&table)
}

// EnsureClusterNodes grows the per-node counter table to hold at least n
// nodes, preserving existing totals — the install path for nodes joining a
// live cluster, where a fresh table would zero history. Increments racing
// the copy can be lost; the counters are advisory. Safe on nil.
func (s *Sink) EnsureClusterNodes(n int) {
	if s == nil {
		return
	}
	old := s.cluster.nodes.Load()
	if old != nil && len(*old) >= n {
		return
	}
	table := make([]NodeCounters, n)
	if old != nil {
		for i := range *old {
			table[i].local.Store((*old)[i].local.Load())
			table[i].remote.Store((*old)[i].remote.Load())
			table[i].timeouts.Store((*old)[i].timeouts.Load())
		}
	}
	s.cluster.nodes.Store(&table)
}

// InstallClusterSlots sizes the per-slot key-count table (one entry per
// placement slot; each records the key count observed when that slot last
// migrated). Safe on nil.
func (s *Sink) InstallClusterSlots(n int) {
	if s == nil {
		return
	}
	table := make([]atomic.Uint64, n)
	s.cluster.slotKeys.Store(&table)
}

func (s *Sink) clusterNode(node int) *NodeCounters {
	nodes := s.cluster.nodes.Load()
	if nodes == nil || node < 0 || node >= len(*nodes) {
		return nil
	}
	return &(*nodes)[node]
}

// ClusterLocal records one command (or one node's share of a multi-key
// command) served on the shared-VAS fast path, with the worker-core cycles
// it cost. Safe on nil.
func (s *Sink) ClusterLocal(node int, cycles uint64) {
	if s == nil {
		return
	}
	s.cluster.local.Add(1)
	s.cluster.localCycles.Observe(cycles)
	if nc := s.clusterNode(node); nc != nil {
		nc.local.Add(1)
	}
}

// ClusterRemote records one command (or one node's share of a multi-key
// command) served over urpc, with the worker-core cycles it cost end to
// end, and traces it. Safe on nil.
func (s *Sink) ClusterRemote(node int, cycles uint64) {
	if s == nil {
		return
	}
	s.cluster.remote.Add(1)
	s.cluster.remoteCycles.Observe(cycles)
	if nc := s.clusterNode(node); nc != nil {
		nc.remote.Add(1)
	}
	s.Trace(Event{Kind: EvRemoteCall, Core: -1, A: uint64(node), B: cycles})
}

// ClusterURPCCall records the cycle cost of one urpc round trip by itself
// (cache-line transfers, dispatch, and the server-side execution, but not
// the router's serialize/route work around it). Safe on nil.
func (s *Sink) ClusterURPCCall(cycles uint64) {
	if s != nil {
		s.cluster.urpcCycles.Observe(cycles)
	}
}

// ClusterTimeout records one remote call abandoned after retry exhaustion.
// Safe on nil.
func (s *Sink) ClusterTimeout(node int) {
	if s == nil {
		return
	}
	s.cluster.timeouts.Add(1)
	if nc := s.clusterNode(node); nc != nil {
		nc.timeouts.Add(1)
	}
}

// ClusterShip records one checkpoint generation shipped to a node's
// replica, with the image payload bytes moved, and traces it. Safe on nil.
func (s *Sink) ClusterShip(node int, bytes uint64) {
	if s == nil {
		return
	}
	s.cluster.ships.Add(1)
	s.cluster.shipBytes.Add(bytes)
	s.Trace(Event{Kind: EvCheckpointShip, Core: -1, A: uint64(node), B: bytes})
}

// ClusterShipFailure records one abandoned checkpoint ship. Safe on nil.
func (s *Sink) ClusterShipFailure(node int) {
	if s != nil {
		s.cluster.shipFailures.Add(1)
	}
}

// ClusterProbe records one health probe and its outcome. Safe on nil.
func (s *Sink) ClusterProbe(ok bool) {
	if s == nil {
		return
	}
	s.cluster.probes.Add(1)
	if !ok {
		s.cluster.probeFailures.Add(1)
	}
}

// ClusterNodeState traces a node health-state transition. Safe on nil.
func (s *Sink) ClusterNodeState(node int, state string) {
	if s != nil {
		s.Trace(Event{Kind: EvNodeState, Core: -1, A: uint64(node), Label: state})
	}
}

// ClusterPromotion records one replica promotion: how many buffered delta
// entries were replayed onto the standby and how many updates were lost
// (delta-window overflow or replay failure). Safe on nil.
func (s *Sink) ClusterPromotion(node int, replayed, lost uint64) {
	if s == nil {
		return
	}
	s.cluster.promotions.Add(1)
	s.cluster.deltaReplayed.Add(replayed)
	s.cluster.lostUpdates.Add(lost)
	ev := Event{Kind: EvPromotion, Core: -1, A: uint64(node), B: replayed}
	if lost > 0 {
		ev.Label = fmt.Sprintf("%d", lost)
	}
	s.Trace(ev)
}

// ClusterLostUpdates adds updates that can no longer be recovered — a range
// degraded with a non-empty delta buffer. Safe on nil.
func (s *Sink) ClusterLostUpdates(count uint64) {
	if s != nil && count > 0 {
		s.cluster.lostUpdates.Add(count)
	}
}

// ClusterPromotionsTotal returns the running promotion count — a single
// atomic load, safe to poll while the cluster runs.
func (s *Sink) ClusterPromotionsTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.promotions.Load()
}

// ClusterShipsTotal returns the running count of shipped generations.
func (s *Sink) ClusterShipsTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.ships.Load()
}

// ClusterRemoteTotal returns the running count of remotely-served commands.
// A single atomic load — safe to poll while the cluster runs, unlike a full
// Snapshot of a live machine.
func (s *Sink) ClusterRemoteTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.remote.Load()
}

// ClusterLocalTotal returns the running count of locally-served commands.
func (s *Sink) ClusterLocalTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.local.Load()
}

// ClusterSlotMoved records one completed slot migration: keys and payload
// bytes streamed to the new owner, delta-log writes replayed during the
// copy, and the slot's key count at flip time. Traced. Safe on nil.
func (s *Sink) ClusterSlotMoved(slot, src, dst int, keys, bytes, replayed uint64) {
	if s == nil {
		return
	}
	s.cluster.slotMoves.Add(1)
	s.cluster.migKeysMoved.Add(keys)
	s.cluster.migBytes.Add(bytes)
	s.cluster.migDeltaReplayed.Add(replayed)
	if table := s.cluster.slotKeys.Load(); table != nil && slot >= 0 && slot < len(*table) {
		(*table)[slot].Store(keys)
	}
	s.Trace(Event{Kind: EvSlotMove, Core: -1, A: uint64(slot), B: keys,
		Label: fmt.Sprintf("%d->%d", src, dst)})
}

// ClusterSlotMoveFailed records one migration aborted and rolled back;
// the source stays authoritative. Traced with the reason. Safe on nil.
func (s *Sink) ClusterSlotMoveFailed(slot, src, dst int, reason string) {
	if s == nil {
		return
	}
	s.cluster.slotMoveFailures.Add(1)
	s.Trace(Event{Kind: EvSlotMoveFailed, Core: -1, A: uint64(slot),
		Label: fmt.Sprintf("%d->%d: %s", src, dst, reason)})
}

// ClusterMovedRetry records one -MOVED refusal sent to a command that raced
// a slot flip (the client retries against the new table). Safe on nil.
func (s *Sink) ClusterMovedRetry() {
	if s != nil {
		s.cluster.movedRetries.Add(1)
	}
}

// ClusterNodeAdded records and traces a node joining the live cluster.
// Safe on nil.
func (s *Sink) ClusterNodeAdded(node int) {
	if s == nil {
		return
	}
	s.cluster.nodesAdded.Add(1)
	s.Trace(Event{Kind: EvNodeAdded, Core: -1, A: uint64(node)})
}

// ClusterNodeRemoved records and traces a node drained and retired from the
// live cluster. Safe on nil.
func (s *Sink) ClusterNodeRemoved(node int) {
	if s == nil {
		return
	}
	s.cluster.nodesRemoved.Add(1)
	s.Trace(Event{Kind: EvNodeRemoved, Core: -1, A: uint64(node)})
}

// ClusterFork records one frozen view forked off node's live shard at
// generation gen, and traces it. Safe on nil.
func (s *Sink) ClusterFork(node int, gen uint64) {
	if s == nil {
		return
	}
	s.cluster.forks.Add(1)
	s.Trace(Event{Kind: EvFork, Core: -1, A: uint64(node), B: gen})
}

// ClusterForkRelease records one frozen view released: its private frames
// went back to the allocator. Traced. Safe on nil.
func (s *Sink) ClusterForkRelease(node int, gen uint64) {
	if s == nil {
		return
	}
	s.cluster.forkReleases.Add(1)
	s.Trace(Event{Kind: EvForkRelease, Core: -1, A: uint64(node), B: gen})
}

// ClusterForkInvalidate records views fenced off a node by a promotion or
// slot-migration flip. Traced with the reason. Safe on nil.
func (s *Sink) ClusterForkInvalidate(node int, views uint64, reason string) {
	if s == nil {
		return
	}
	s.cluster.forkInvalidates.Add(views)
	s.Trace(Event{Kind: EvForkInvalidate, Core: -1, A: uint64(node), B: views, Label: reason})
}

// ClusterFollowerRead records one read command answered from a frozen view
// (or warm standby) instead of the primary. Safe on nil.
func (s *Sink) ClusterFollowerRead() {
	if s != nil {
		s.cluster.followerReads.Add(1)
	}
}

// ClusterStaleRejected records one follower read refused with -STALE because
// the freshest view exceeded the staleness bound. Safe on nil.
func (s *Sink) ClusterStaleRejected() {
	if s != nil {
		s.cluster.staleRejected.Add(1)
	}
}

// ClusterDeadlineExpired records one command refused with -DEADLINE: its
// cycle budget ran out before (or during) a dispatch. Safe on nil.
func (s *Sink) ClusterDeadlineExpired() {
	if s != nil {
		s.cluster.deadlineExpired.Add(1)
	}
}

// ClusterShed records one remote dispatch refused fast because node's
// breaker was open — no channel wait, no retry ladder. Safe on nil.
func (s *Sink) ClusterShed(node int) {
	if s == nil {
		return
	}
	s.cluster.shed.Add(1)
	if nc := s.clusterNode(node); nc != nil {
		nc.timeouts.Add(1)
	}
}

// ClusterDegradedRead records one read served from a frozen view because the
// primary was overloaded (breaker open or queue past the watermark) — the
// graceful-degradation counterpart of a plain follower read. Safe on nil.
func (s *Sink) ClusterDegradedRead() {
	if s != nil {
		s.cluster.degradedReads.Add(1)
	}
}

// ClusterBreaker records and traces one circuit-breaker transition on node.
// Safe on nil.
func (s *Sink) ClusterBreaker(node int, from, to string) {
	if s == nil {
		return
	}
	switch to {
	case "open":
		s.cluster.breakerOpens.Add(1)
	case "half-open":
		s.cluster.breakerHalfOpens.Add(1)
	case "closed":
		s.cluster.breakerCloses.Add(1)
	}
	s.Trace(Event{Kind: EvBreakerState, Core: -1, A: uint64(node), Label: from + "->" + to})
}

// ClusterBudgetRemaining observes the cycles left on a command's deadline
// budget when it finished — the margin distribution that shows how close
// the cluster runs to its deadlines. Safe on nil.
func (s *Sink) ClusterBudgetRemaining(cycles uint64) {
	if s != nil {
		s.cluster.budgetRemaining.Observe(cycles)
	}
}

// ClusterDegradedReadsTotal returns the running count of overload-degraded
// reads — a single atomic load, safe to poll while the cluster runs.
func (s *Sink) ClusterDegradedReadsTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.degradedReads.Load()
}

// ClusterBreakerOpensTotal returns the running count of breaker transitions
// into open.
func (s *Sink) ClusterBreakerOpensTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.breakerOpens.Load()
}

// ClusterDeadlineExpiredTotal returns the running count of -DEADLINE
// refusals.
func (s *Sink) ClusterDeadlineExpiredTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.deadlineExpired.Load()
}

// ClusterShipDuration records the wall-clock nanoseconds one fork-based ship
// spent extracting and applying the image — all off the node mutex. Safe on
// nil.
func (s *Sink) ClusterShipDuration(ns uint64) {
	if s != nil {
		s.cluster.shipNs.Observe(ns)
	}
}

// ClusterForksTotal returns the running count of frozen views forked — a
// single atomic load, safe to poll while the cluster runs.
func (s *Sink) ClusterForksTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.forks.Load()
}

// ClusterFollowerReadsTotal returns the running count of follower reads.
func (s *Sink) ClusterFollowerReadsTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.followerReads.Load()
}

// ClusterStaleRejectedTotal returns the running count of -STALE refusals.
func (s *Sink) ClusterStaleRejectedTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.staleRejected.Load()
}

// ClusterSlotMovesTotal returns the running count of completed slot
// migrations — a single atomic load, safe to poll while the cluster runs.
func (s *Sink) ClusterSlotMovesTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.slotMoves.Load()
}

// ClusterSlotMoveFailuresTotal returns the running count of migrations
// aborted and rolled back.
func (s *Sink) ClusterSlotMoveFailuresTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.slotMoveFailures.Load()
}

// ClusterNodesAddedTotal returns the running count of mid-run node joins.
func (s *Sink) ClusterNodesAddedTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.nodesAdded.Load()
}

// ClusterNodesRemovedTotal returns the running count of mid-run node
// removals.
func (s *Sink) ClusterNodesRemovedTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.nodesRemoved.Load()
}
