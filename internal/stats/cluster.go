package stats

import "sync/atomic"

// Cluster-layer counters. The cluster router serves every command one of
// two ways — a VAS switch onto a co-resident shard's store, or a urpc call
// to a remote shard node — and the whole point of the layer (paper §5.3,
// Figure 7) is comparing what the two modes cost. The sink therefore keeps,
// besides per-node routing counts, a cycle histogram per mode: the worker
// core's simulated-cycle delta across one request, so the local and remote
// distributions can be read side by side from one snapshot.

// clusterCounters is the sink's cluster-layer block.
type clusterCounters struct {
	local    atomic.Uint64 // commands served on the shared-VAS fast path
	remote   atomic.Uint64 // commands served over urpc
	timeouts atomic.Uint64 // remote commands whose retries were exhausted

	localCycles  Hist // worker-core cycles per locally-served command
	remoteCycles Hist // worker-core cycles per remotely-served command
	urpcCycles   Hist // cycles of the urpc Call alone (transfer + dispatch + server work)

	nodes atomic.Pointer[[]NodeCounters]
}

// NodeCounters is one shard node's routing activity: how many commands the
// router served against it locally, remotely, and how many remote calls
// timed out. Multi-key commands count once per node they touch.
type NodeCounters struct {
	local    atomic.Uint64
	remote   atomic.Uint64
	timeouts atomic.Uint64
}

// InstallClusterNodes sizes the per-node counter table. Safe on nil.
func (s *Sink) InstallClusterNodes(n int) {
	if s == nil {
		return
	}
	table := make([]NodeCounters, n)
	s.cluster.nodes.Store(&table)
}

func (s *Sink) clusterNode(node int) *NodeCounters {
	nodes := s.cluster.nodes.Load()
	if nodes == nil || node < 0 || node >= len(*nodes) {
		return nil
	}
	return &(*nodes)[node]
}

// ClusterLocal records one command (or one node's share of a multi-key
// command) served on the shared-VAS fast path, with the worker-core cycles
// it cost. Safe on nil.
func (s *Sink) ClusterLocal(node int, cycles uint64) {
	if s == nil {
		return
	}
	s.cluster.local.Add(1)
	s.cluster.localCycles.Observe(cycles)
	if nc := s.clusterNode(node); nc != nil {
		nc.local.Add(1)
	}
}

// ClusterRemote records one command (or one node's share of a multi-key
// command) served over urpc, with the worker-core cycles it cost end to
// end, and traces it. Safe on nil.
func (s *Sink) ClusterRemote(node int, cycles uint64) {
	if s == nil {
		return
	}
	s.cluster.remote.Add(1)
	s.cluster.remoteCycles.Observe(cycles)
	if nc := s.clusterNode(node); nc != nil {
		nc.remote.Add(1)
	}
	s.Trace(Event{Kind: EvRemoteCall, Core: -1, A: uint64(node), B: cycles})
}

// ClusterURPCCall records the cycle cost of one urpc round trip by itself
// (cache-line transfers, dispatch, and the server-side execution, but not
// the router's serialize/route work around it). Safe on nil.
func (s *Sink) ClusterURPCCall(cycles uint64) {
	if s != nil {
		s.cluster.urpcCycles.Observe(cycles)
	}
}

// ClusterTimeout records one remote call abandoned after retry exhaustion.
// Safe on nil.
func (s *Sink) ClusterTimeout(node int) {
	if s == nil {
		return
	}
	s.cluster.timeouts.Add(1)
	if nc := s.clusterNode(node); nc != nil {
		nc.timeouts.Add(1)
	}
}

// ClusterRemoteTotal returns the running count of remotely-served commands.
// A single atomic load — safe to poll while the cluster runs, unlike a full
// Snapshot of a live machine.
func (s *Sink) ClusterRemoteTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.remote.Load()
}

// ClusterLocalTotal returns the running count of locally-served commands.
func (s *Sink) ClusterLocalTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.cluster.local.Load()
}
