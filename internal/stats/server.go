package stats

import "sync/atomic"

// Serving-layer counters. The RESP front-end (internal/server) is the one
// component whose concurrency is real rather than simulated — many
// connection goroutines feeding a sharded worker pool — so its counters
// follow the same contract as the rest of the sink: nil-safe, atomic, and
// exported through the Snapshot path.

// ShardCounters is one worker shard's activity. Shards hold a pointer to
// their slot and record through nil-safe methods, exactly as cores do with
// CoreCounters.
type ShardCounters struct {
	conns    atomic.Uint64
	commands atomic.Uint64
	busy     atomic.Uint64
	queueMax atomic.Uint64
}

// Conn records one connection assigned to this shard. Safe on nil.
func (c *ShardCounters) Conn() {
	if c != nil {
		c.conns.Add(1)
	}
}

// Command records one command executed by this shard. Safe on nil.
func (c *ShardCounters) Command() {
	if c != nil {
		c.commands.Add(1)
	}
}

// Busy records one request rejected because this shard's queue was full.
// Safe on nil.
func (c *ShardCounters) Busy() {
	if c != nil {
		c.busy.Add(1)
	}
}

// QueueDepth records an observed queue depth, keeping the high-water mark.
// Safe on nil.
func (c *ShardCounters) QueueDepth(d int) {
	if c == nil {
		return
	}
	v := uint64(d)
	for {
		cur := c.queueMax.Load()
		if v <= cur || c.queueMax.CompareAndSwap(cur, v) {
			return
		}
	}
}

// serverCounters is the sink's serving-layer block.
type serverCounters struct {
	connsAccepted atomic.Uint64
	connsClosed   atomic.Uint64
	commands      atomic.Uint64
	busy          atomic.Uint64

	pipeline  Hist // commands in flight on a connection when one completes
	queue     Hist // shard queue depth sampled at enqueue
	latencyNs Hist // per-command wall latency (enqueue → reply ready)

	shards atomic.Pointer[[]ShardCounters]
}

// InstallServerShards sizes the per-shard counter table and returns one
// *ShardCounters per shard for workers to hold. Returns nil on a nil sink
// (the nil pointers still record safely).
func (s *Sink) InstallServerShards(n int) []*ShardCounters {
	if s == nil {
		return make([]*ShardCounters, n)
	}
	table := make([]ShardCounters, n)
	s.server.shards.Store(&table)
	out := make([]*ShardCounters, n)
	for i := range table {
		out[i] = &table[i]
	}
	return out
}

// ConnAccepted records (and traces) one accepted connection.
func (s *Sink) ConnAccepted(conn, shard uint64) {
	if s == nil {
		return
	}
	s.server.connsAccepted.Add(1)
	s.Trace(Event{Kind: EvConnOpen, Core: -1, A: conn, B: shard})
}

// ConnClosed records (and traces) one connection teardown that served the
// given number of commands.
func (s *Sink) ConnClosed(conn, commands uint64) {
	if s == nil {
		return
	}
	s.server.connsClosed.Add(1)
	s.Trace(Event{Kind: EvConnClose, Core: -1, A: conn, B: commands})
}

// ServerCommand records one completed command with its wall latency.
func (s *Sink) ServerCommand(latNs uint64) {
	if s == nil {
		return
	}
	s.server.commands.Add(1)
	s.server.latencyNs.Observe(latNs)
}

// ServerBusy records one backpressure rejection.
func (s *Sink) ServerBusy() {
	if s != nil {
		s.server.busy.Add(1)
	}
}

// ServerBusyTotal returns the running count of backpressure rejections.
// Unlike a full Snapshot — which copies the cores' non-atomic cycle
// counters and so must wait for quiescence — this is a single atomic load,
// safe to poll while workers run.
func (s *Sink) ServerBusyTotal() uint64 {
	if s == nil {
		return 0
	}
	return s.server.busy.Load()
}

// ServerPipeline records the pipeline depth observed on a connection.
func (s *Sink) ServerPipeline(d int) {
	if s != nil {
		s.server.pipeline.Observe(uint64(d))
	}
}

// ServerQueue records a shard queue depth observed at enqueue.
func (s *Sink) ServerQueue(d int) {
	if s != nil {
		s.server.queue.Observe(uint64(d))
	}
}
