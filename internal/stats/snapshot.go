package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"spacejmp/internal/arch"
)

// CoreSnap is one core's view in a Snapshot. Cycles is the core's total
// cycle counter; ByCat decomposes the cycles charged while observability
// was enabled (the two agree when stats were on for the whole run).
type CoreSnap struct {
	ID        int               `json:"id"`
	Cycles    uint64            `json:"cycles"`
	ByCat     map[string]uint64 `json:"by_cat,omitempty"`
	TLBHits   uint64            `json:"tlb_hits"`
	TLBMisses uint64            `json:"tlb_misses"`
	Faults    uint64            `json:"faults"`
	CR3Loads  uint64            `json:"cr3_loads"`
}

// TLBSnap aggregates TLB activity machine-wide.
type TLBSnap struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Evictions      uint64 `json:"evictions"`
	Flushes        uint64 `json:"flushes"`
	FlushedEntries uint64 `json:"flushed_entries"`
}

// HitRate returns hits/(hits+misses), or 0 with no probes.
func (t TLBSnap) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// ASIDSnap is one address-space tag's TLB activity.
type ASIDSnap struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits/(hits+misses), or 0 with no probes.
func (a ASIDSnap) HitRate() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Hits) / float64(total)
}

// PTSnap is machine-wide page-table activity. NodesTouched is the
// cumulative count of table nodes the hardware walker referenced.
type PTSnap struct {
	NodesAllocated uint64 `json:"nodes_allocated"`
	NodesFreed     uint64 `json:"nodes_freed"`
	NodesTouched   uint64 `json:"nodes_touched"`
	EntriesSet     uint64 `json:"entries_set"`
	EntriesCleared uint64 `json:"entries_cleared"`
	Walks          uint64 `json:"walks"`
}

// NVMSnap counts data writes into the persistent tier.
type NVMSnap struct {
	Writes       uint64 `json:"writes"`
	WrittenBytes uint64 `json:"written_bytes"`
}

// VMSnap counts VM-layer activity across observed spaces.
type VMSnap struct {
	Maps      uint64 `json:"maps"`
	Unmaps    uint64 `json:"unmaps"`
	Faults    uint64 `json:"faults"`
	COWBreaks uint64 `json:"cow_breaks"`
}

// ShardSnap is one worker shard's serving activity.
type ShardSnap struct {
	Conns    uint64 `json:"conns"`
	Commands uint64 `json:"commands"`
	Busy     uint64 `json:"busy"`
	QueueMax uint64 `json:"queue_max"`
}

// ServerSnap is the serving layer's view: connection and command totals,
// backpressure rejections, and the pipeline/queue/latency histograms, plus
// the per-shard breakdown.
type ServerSnap struct {
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsClosed   uint64 `json:"conns_closed"`
	Commands      uint64 `json:"commands"`
	Busy          uint64 `json:"busy"`

	Pipeline   HistSnap `json:"pipeline"`
	QueueDepth HistSnap `json:"queue_depth"`
	LatencyNs  HistSnap `json:"latency_ns"`

	Shards []ShardSnap `json:"shards,omitempty"`
}

// NodeSnap is one cluster shard node's routing activity.
type NodeSnap struct {
	Local    uint64 `json:"local"`
	Remote   uint64 `json:"remote"`
	Timeouts uint64 `json:"timeouts"`
}

// ReplicationSnap is the replication/failover side of the cluster layer:
// checkpoint shipping, health probing, and promotion activity.
type ReplicationSnap struct {
	Ships         uint64 `json:"ships"`
	ShipBytes     uint64 `json:"ship_bytes"`
	ShipFailures  uint64 `json:"ship_failures"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Promotions    uint64 `json:"promotions"`
	DeltaReplayed uint64 `json:"delta_replayed"`
	LostUpdates   uint64 `json:"lost_updates"`
}

func (r ReplicationSnap) zero() bool { return r == ReplicationSnap{} }

// MigrationSnap is the elastic-membership side of the cluster layer: slot
// migrations, node join/leave, and the -MOVED retries clients absorbed
// while slots flipped. SlotKeys maps slot → key count observed when that
// slot last migrated (point-in-time, not monotonic).
type MigrationSnap struct {
	SlotMoves        uint64         `json:"slot_moves"`
	SlotMoveFailures uint64         `json:"slot_move_failures"`
	KeysMoved        uint64         `json:"keys_moved"`
	BytesMoved       uint64         `json:"bytes_moved"`
	DeltaReplayed    uint64         `json:"delta_replayed"`
	MovedRetries     uint64         `json:"moved_retries"`
	NodesAdded       uint64         `json:"nodes_added"`
	NodesRemoved     uint64         `json:"nodes_removed"`
	SlotKeys         map[int]uint64 `json:"slot_keys,omitempty"`
}

func (m MigrationSnap) zero() bool {
	return m.SlotMoves == 0 && m.SlotMoveFailures == 0 && m.KeysMoved == 0 &&
		m.BytesMoved == 0 && m.DeltaReplayed == 0 && m.MovedRetries == 0 &&
		m.NodesAdded == 0 && m.NodesRemoved == 0 && len(m.SlotKeys) == 0
}

// ForkSnap is the COW-fork side of the cluster layer: frozen views forked
// for checkpoint shipping and follower reads, their lifecycle (release,
// fence invalidation), the read traffic they absorbed, and how long
// fork-based ships spent off the node mutex.
type ForkSnap struct {
	Forks         uint64   `json:"forks"`
	Releases      uint64   `json:"releases"`
	Invalidated   uint64   `json:"invalidated"`
	FollowerReads uint64   `json:"follower_reads"`
	StaleRejected uint64   `json:"stale_rejected"`
	ShipNs        HistSnap `json:"ship_ns"`
}

func (f ForkSnap) zero() bool {
	return f.Forks == 0 && f.Releases == 0 && f.Invalidated == 0 &&
		f.FollowerReads == 0 && f.StaleRejected == 0 && f.ShipNs.Count == 0
}

// OverloadSnap is the overload-protection side of the cluster layer:
// deadline-budget refusals, breaker-shed dispatches, degraded (stale)
// reads, breaker transition counts, and the budget-margin distribution.
type OverloadSnap struct {
	DeadlineExpired  uint64   `json:"deadline_expired"`
	Shed             uint64   `json:"shed"`
	DegradedReads    uint64   `json:"degraded_reads"`
	BreakerOpens     uint64   `json:"breaker_opens"`
	BreakerHalfOpens uint64   `json:"breaker_half_opens"`
	BreakerCloses    uint64   `json:"breaker_closes"`
	BudgetRemaining  HistSnap `json:"budget_remaining"`
}

func (o OverloadSnap) zero() bool {
	return o.DeadlineExpired == 0 && o.Shed == 0 && o.DegradedReads == 0 &&
		o.BreakerOpens == 0 && o.BreakerHalfOpens == 0 && o.BreakerCloses == 0 &&
		o.BudgetRemaining.Count == 0
}

// TenantSnap is one tenant's serving activity: admitted commands and their
// payload bytes, quota rejections at admission, and capability denials on
// cross-view addresses. Index order follows tenant registration order.
type TenantSnap struct {
	Commands        uint64 `json:"commands"`
	Bytes           uint64 `json:"bytes"`
	QuotaRejections uint64 `json:"quota_rejections"`
	CapDenials      uint64 `json:"cap_denials"`
}

func (t TenantSnap) zero() bool { return t == TenantSnap{} }

// ClusterSnap is the cluster layer's view: how many commands were served on
// the shared-VAS fast path versus over urpc, what each mode cost in worker
// cycles, and the per-node breakdown.
type ClusterSnap struct {
	Local    uint64 `json:"local"`
	Remote   uint64 `json:"remote"`
	Timeouts uint64 `json:"timeouts"`

	LocalCycles    HistSnap `json:"local_cycles"`
	RemoteCycles   HistSnap `json:"remote_cycles"`
	URPCCallCycles HistSnap `json:"urpc_call_cycles"`

	Replication *ReplicationSnap `json:"replication,omitempty"`
	Migration   *MigrationSnap   `json:"migration,omitempty"`
	Fork        *ForkSnap        `json:"fork,omitempty"`
	Overload    *OverloadSnap    `json:"overload,omitempty"`

	Nodes []NodeSnap `json:"nodes,omitempty"`
}

// Snapshot is an immutable, point-in-time copy of every counter the
// observability layer maintains. It shares no memory with the live Sink:
// mutating the machine after Snapshot() leaves the snapshot unchanged.
type Snapshot struct {
	Cores    []CoreSnap             `json:"cores,omitempty"`
	Cycles   map[string]uint64      `json:"cycles_by_cat,omitempty"`
	TLB      TLBSnap                `json:"tlb"`
	ASIDs    map[arch.ASID]ASIDSnap `json:"asids,omitempty"`
	PT       PTSnap                 `json:"pt"`
	NVM      NVMSnap                `json:"nvm"`
	VM       VMSnap                 `json:"vm"`
	Syscalls map[string]HistSnap    `json:"syscalls,omitempty"`
	Server   *ServerSnap            `json:"server,omitempty"`
	Cluster  *ClusterSnap           `json:"cluster,omitempty"`
	Tenants  []TenantSnap           `json:"tenants,omitempty"`

	LockWaitNs     HistSnap `json:"lock_wait_ns"`
	LockHoldCycles HistSnap `json:"lock_hold_cycles"`

	Shootdowns     uint64 `json:"shootdowns"`
	ShootdownPages uint64 `json:"shootdown_pages"`
	URPCRetries    uint64 `json:"urpc_retries"`
	FaultsInjected uint64 `json:"faults_injected"`
	Switches       uint64 `json:"switches"`

	TraceRecorded uint64 `json:"trace_recorded"`
	TraceDropped  uint64 `json:"trace_dropped"`
}

// Snapshot copies the sink-owned counters into an immutable Snapshot.
// Per-core total cycles and MMU counters are owned by the hardware layer;
// hw.Machine.StatsSnapshot completes them. Returns nil on a nil sink.
func (s *Sink) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	snap := &Snapshot{
		Cores:  make([]CoreSnap, len(s.cores)),
		Cycles: make(map[string]uint64, NumCats),
		ASIDs:  map[arch.ASID]ASIDSnap{},
		PT: PTSnap{
			NodesAllocated: s.PT.tablesAllocated.Load(),
			NodesFreed:     s.PT.tablesFreed.Load(),
			NodesTouched:   s.PT.walkRefs.Load(),
			EntriesSet:     s.PT.entriesSet.Load(),
			EntriesCleared: s.PT.entriesCleared.Load(),
			Walks:          s.PT.walks.Load(),
		},
		NVM: NVMSnap{Writes: s.nvmWrites.Load(), WrittenBytes: s.nvmWriteByte.Load()},
		VM:  VMSnap{Maps: s.vmMaps.Load(), Unmaps: s.vmUnmaps.Load(), Faults: s.vmFaults.Load(), COWBreaks: s.vmCOWBreaks.Load()},

		LockWaitNs:     s.lockWaitNs.snapshot(),
		LockHoldCycles: s.lockHoldCycles.snapshot(),

		Shootdowns:     s.shootdowns.Load(),
		ShootdownPages: s.shootdownPages.Load(),
		URPCRetries:    s.urpcRetries.Load(),
		FaultsInjected: s.faultsFired.Load(),
	}
	for i := range s.cores {
		by := make(map[string]uint64, NumCats)
		for c := 0; c < NumCats; c++ {
			if v := s.cores[i].cycles[c].Load(); v != 0 {
				by[Cat(c).String()] = v
				snap.Cycles[Cat(c).String()] += v
			}
		}
		snap.Cores[i] = CoreSnap{ID: i, ByCat: by}
	}
	snap.TLB.Flushes = s.tlbFlushes.Load()
	snap.TLB.FlushedEntries = s.tlbFlushedEntries.Load()
	for asid := range s.asids {
		a := ASIDSnap{
			Hits:      s.asids[asid].hits.Load(),
			Misses:    s.asids[asid].misses.Load(),
			Evictions: s.asids[asid].evictions.Load(),
		}
		if a.Hits == 0 && a.Misses == 0 && a.Evictions == 0 {
			continue
		}
		snap.ASIDs[arch.ASID(asid)] = a
		snap.TLB.Hits += a.Hits
		snap.TLB.Misses += a.Misses
		snap.TLB.Evictions += a.Evictions
	}
	snap.Syscalls = map[string]HistSnap{}
	for op := 0; op < NumOps; op++ {
		if h := s.syscalls[op].snapshot(); h.Count != 0 {
			snap.Syscalls[Op(op).String()] = h
		}
	}
	if srv := (&s.server); srv.connsAccepted.Load() != 0 || srv.commands.Load() != 0 || srv.busy.Load() != 0 {
		ss := &ServerSnap{
			ConnsAccepted: srv.connsAccepted.Load(),
			ConnsClosed:   srv.connsClosed.Load(),
			Commands:      srv.commands.Load(),
			Busy:          srv.busy.Load(),
			Pipeline:      srv.pipeline.snapshot(),
			QueueDepth:    srv.queue.snapshot(),
			LatencyNs:     srv.latencyNs.snapshot(),
		}
		if shards := srv.shards.Load(); shards != nil {
			ss.Shards = make([]ShardSnap, len(*shards))
			for i := range *shards {
				sh := &(*shards)[i]
				ss.Shards[i] = ShardSnap{
					Conns:    sh.conns.Load(),
					Commands: sh.commands.Load(),
					Busy:     sh.busy.Load(),
					QueueMax: sh.queueMax.Load(),
				}
			}
		}
		snap.Server = ss
	}
	if cl := (&s.cluster); cl.local.Load() != 0 || cl.remote.Load() != 0 || cl.timeouts.Load() != 0 ||
		cl.ships.Load() != 0 || cl.probes.Load() != 0 || cl.shipFailures.Load() != 0 ||
		cl.slotMoves.Load() != 0 || cl.slotMoveFailures.Load() != 0 ||
		cl.nodesAdded.Load() != 0 || cl.nodesRemoved.Load() != 0 ||
		cl.forks.Load() != 0 || cl.followerReads.Load() != 0 || cl.staleRejected.Load() != 0 ||
		cl.deadlineExpired.Load() != 0 || cl.shed.Load() != 0 || cl.degradedReads.Load() != 0 ||
		cl.breakerOpens.Load() != 0 {
		cs := &ClusterSnap{
			Local:          cl.local.Load(),
			Remote:         cl.remote.Load(),
			Timeouts:       cl.timeouts.Load(),
			LocalCycles:    cl.localCycles.snapshot(),
			RemoteCycles:   cl.remoteCycles.snapshot(),
			URPCCallCycles: cl.urpcCycles.snapshot(),
		}
		rep := ReplicationSnap{
			Ships:         cl.ships.Load(),
			ShipBytes:     cl.shipBytes.Load(),
			ShipFailures:  cl.shipFailures.Load(),
			Probes:        cl.probes.Load(),
			ProbeFailures: cl.probeFailures.Load(),
			Promotions:    cl.promotions.Load(),
			DeltaReplayed: cl.deltaReplayed.Load(),
			LostUpdates:   cl.lostUpdates.Load(),
		}
		if !rep.zero() {
			cs.Replication = &rep
		}
		mig := MigrationSnap{
			SlotMoves:        cl.slotMoves.Load(),
			SlotMoveFailures: cl.slotMoveFailures.Load(),
			KeysMoved:        cl.migKeysMoved.Load(),
			BytesMoved:       cl.migBytes.Load(),
			DeltaReplayed:    cl.migDeltaReplayed.Load(),
			MovedRetries:     cl.movedRetries.Load(),
			NodesAdded:       cl.nodesAdded.Load(),
			NodesRemoved:     cl.nodesRemoved.Load(),
		}
		if table := cl.slotKeys.Load(); table != nil {
			for i := range *table {
				if v := (*table)[i].Load(); v != 0 {
					if mig.SlotKeys == nil {
						mig.SlotKeys = map[int]uint64{}
					}
					mig.SlotKeys[i] = v
				}
			}
		}
		if !mig.zero() {
			cs.Migration = &mig
		}
		fk := ForkSnap{
			Forks:         cl.forks.Load(),
			Releases:      cl.forkReleases.Load(),
			Invalidated:   cl.forkInvalidates.Load(),
			FollowerReads: cl.followerReads.Load(),
			StaleRejected: cl.staleRejected.Load(),
			ShipNs:        cl.shipNs.snapshot(),
		}
		if !fk.zero() {
			cs.Fork = &fk
		}
		ov := OverloadSnap{
			DeadlineExpired:  cl.deadlineExpired.Load(),
			Shed:             cl.shed.Load(),
			DegradedReads:    cl.degradedReads.Load(),
			BreakerOpens:     cl.breakerOpens.Load(),
			BreakerHalfOpens: cl.breakerHalfOpens.Load(),
			BreakerCloses:    cl.breakerCloses.Load(),
			BudgetRemaining:  cl.budgetRemaining.snapshot(),
		}
		if !ov.zero() {
			cs.Overload = &ov
		}
		if nodes := cl.nodes.Load(); nodes != nil {
			cs.Nodes = make([]NodeSnap, len(*nodes))
			for i := range *nodes {
				nc := &(*nodes)[i]
				cs.Nodes[i] = NodeSnap{
					Local:    nc.local.Load(),
					Remote:   nc.remote.Load(),
					Timeouts: nc.timeouts.Load(),
				}
			}
		}
		snap.Cluster = cs
	}
	if table := s.tenants.table.Load(); table != nil {
		tenants := make([]TenantSnap, len(*table))
		var any bool
		for i := range *table {
			tc := &(*table)[i]
			tenants[i] = TenantSnap{
				Commands:        tc.commands.Load(),
				Bytes:           tc.bytes.Load(),
				QuotaRejections: tc.quota.Load(),
				CapDenials:      tc.denials.Load(),
			}
			any = any || !tenants[i].zero()
		}
		if any {
			snap.Tenants = tenants
		}
	}
	if t := s.tracer.Load(); t != nil {
		snap.TraceRecorded = t.Recorded()
		snap.TraceDropped = t.Dropped()
	}
	return snap
}

// Delta returns this snapshot minus an earlier one, counter by counter —
// the per-measurement view a benchmark prints. A nil before is treated as
// all-zero. Histogram Max fields carry the later snapshot's value.
func (s *Snapshot) Delta(before *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	out := *s
	if before == nil {
		before = &Snapshot{}
	}
	out.Cores = make([]CoreSnap, len(s.Cores))
	for i, c := range s.Cores {
		d := c
		d.ByCat = subMap(c.ByCat, nil)
		if i < len(before.Cores) {
			b := before.Cores[i]
			d.Cycles -= b.Cycles
			d.TLBHits -= b.TLBHits
			d.TLBMisses -= b.TLBMisses
			d.Faults -= b.Faults
			d.CR3Loads -= b.CR3Loads
			d.ByCat = subMap(c.ByCat, b.ByCat)
		}
		out.Cores[i] = d
	}
	out.Cycles = subMap(s.Cycles, before.Cycles)
	out.TLB = TLBSnap{
		Hits:           s.TLB.Hits - before.TLB.Hits,
		Misses:         s.TLB.Misses - before.TLB.Misses,
		Evictions:      s.TLB.Evictions - before.TLB.Evictions,
		Flushes:        s.TLB.Flushes - before.TLB.Flushes,
		FlushedEntries: s.TLB.FlushedEntries - before.TLB.FlushedEntries,
	}
	out.ASIDs = map[arch.ASID]ASIDSnap{}
	for asid, a := range s.ASIDs {
		b := before.ASIDs[asid]
		d := ASIDSnap{Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses, Evictions: a.Evictions - b.Evictions}
		if d.Hits != 0 || d.Misses != 0 || d.Evictions != 0 {
			out.ASIDs[asid] = d
		}
	}
	out.PT = PTSnap{
		NodesAllocated: s.PT.NodesAllocated - before.PT.NodesAllocated,
		NodesFreed:     s.PT.NodesFreed - before.PT.NodesFreed,
		NodesTouched:   s.PT.NodesTouched - before.PT.NodesTouched,
		EntriesSet:     s.PT.EntriesSet - before.PT.EntriesSet,
		EntriesCleared: s.PT.EntriesCleared - before.PT.EntriesCleared,
		Walks:          s.PT.Walks - before.PT.Walks,
	}
	out.NVM = NVMSnap{Writes: s.NVM.Writes - before.NVM.Writes, WrittenBytes: s.NVM.WrittenBytes - before.NVM.WrittenBytes}
	out.VM = VMSnap{Maps: s.VM.Maps - before.VM.Maps, Unmaps: s.VM.Unmaps - before.VM.Unmaps, Faults: s.VM.Faults - before.VM.Faults, COWBreaks: s.VM.COWBreaks - before.VM.COWBreaks}
	out.Syscalls = map[string]HistSnap{}
	for op, h := range s.Syscalls {
		d := h.sub(before.Syscalls[op])
		if d.Count != 0 {
			out.Syscalls[op] = d
		}
	}
	if s.Server != nil {
		b := before.Server
		if b == nil {
			b = &ServerSnap{}
		}
		d := &ServerSnap{
			ConnsAccepted: s.Server.ConnsAccepted - b.ConnsAccepted,
			ConnsClosed:   s.Server.ConnsClosed - b.ConnsClosed,
			Commands:      s.Server.Commands - b.Commands,
			Busy:          s.Server.Busy - b.Busy,
			Pipeline:      s.Server.Pipeline.sub(b.Pipeline),
			QueueDepth:    s.Server.QueueDepth.sub(b.QueueDepth),
			LatencyNs:     s.Server.LatencyNs.sub(b.LatencyNs),
		}
		d.Shards = make([]ShardSnap, len(s.Server.Shards))
		for i, sh := range s.Server.Shards {
			ds := sh // QueueMax is a high-water mark; carry the later value
			if i < len(b.Shards) {
				ds.Conns -= b.Shards[i].Conns
				ds.Commands -= b.Shards[i].Commands
				ds.Busy -= b.Shards[i].Busy
			}
			d.Shards[i] = ds
		}
		out.Server = d
	}
	if s.Cluster != nil {
		b := before.Cluster
		if b == nil {
			b = &ClusterSnap{}
		}
		d := &ClusterSnap{
			Local:          s.Cluster.Local - b.Local,
			Remote:         s.Cluster.Remote - b.Remote,
			Timeouts:       s.Cluster.Timeouts - b.Timeouts,
			LocalCycles:    s.Cluster.LocalCycles.sub(b.LocalCycles),
			RemoteCycles:   s.Cluster.RemoteCycles.sub(b.RemoteCycles),
			URPCCallCycles: s.Cluster.URPCCallCycles.sub(b.URPCCallCycles),
		}
		if s.Cluster.Replication != nil {
			br := ReplicationSnap{}
			if b.Replication != nil {
				br = *b.Replication
			}
			r := s.Cluster.Replication
			dr := ReplicationSnap{
				Ships:         r.Ships - br.Ships,
				ShipBytes:     r.ShipBytes - br.ShipBytes,
				ShipFailures:  r.ShipFailures - br.ShipFailures,
				Probes:        r.Probes - br.Probes,
				ProbeFailures: r.ProbeFailures - br.ProbeFailures,
				Promotions:    r.Promotions - br.Promotions,
				DeltaReplayed: r.DeltaReplayed - br.DeltaReplayed,
				LostUpdates:   r.LostUpdates - br.LostUpdates,
			}
			d.Replication = &dr
		}
		if s.Cluster.Migration != nil {
			bm := MigrationSnap{}
			if b.Migration != nil {
				bm = *b.Migration
			}
			m := s.Cluster.Migration
			dm := MigrationSnap{
				SlotMoves:        m.SlotMoves - bm.SlotMoves,
				SlotMoveFailures: m.SlotMoveFailures - bm.SlotMoveFailures,
				KeysMoved:        m.KeysMoved - bm.KeysMoved,
				BytesMoved:       m.BytesMoved - bm.BytesMoved,
				DeltaReplayed:    m.DeltaReplayed - bm.DeltaReplayed,
				MovedRetries:     m.MovedRetries - bm.MovedRetries,
				NodesAdded:       m.NodesAdded - bm.NodesAdded,
				NodesRemoved:     m.NodesRemoved - bm.NodesRemoved,
				// Point-in-time counts, not monotonic: carry the later view.
				SlotKeys: m.SlotKeys,
			}
			d.Migration = &dm
		}
		if s.Cluster.Fork != nil {
			bf := ForkSnap{}
			if b.Fork != nil {
				bf = *b.Fork
			}
			f := s.Cluster.Fork
			df := ForkSnap{
				Forks:         f.Forks - bf.Forks,
				Releases:      f.Releases - bf.Releases,
				Invalidated:   f.Invalidated - bf.Invalidated,
				FollowerReads: f.FollowerReads - bf.FollowerReads,
				StaleRejected: f.StaleRejected - bf.StaleRejected,
				ShipNs:        f.ShipNs.sub(bf.ShipNs),
			}
			d.Fork = &df
		}
		if s.Cluster.Overload != nil {
			bo := OverloadSnap{}
			if b.Overload != nil {
				bo = *b.Overload
			}
			o := s.Cluster.Overload
			do := OverloadSnap{
				DeadlineExpired:  o.DeadlineExpired - bo.DeadlineExpired,
				Shed:             o.Shed - bo.Shed,
				DegradedReads:    o.DegradedReads - bo.DegradedReads,
				BreakerOpens:     o.BreakerOpens - bo.BreakerOpens,
				BreakerHalfOpens: o.BreakerHalfOpens - bo.BreakerHalfOpens,
				BreakerCloses:    o.BreakerCloses - bo.BreakerCloses,
				BudgetRemaining:  o.BudgetRemaining.sub(bo.BudgetRemaining),
			}
			d.Overload = &do
		}
		d.Nodes = make([]NodeSnap, len(s.Cluster.Nodes))
		for i, n := range s.Cluster.Nodes {
			dn := n
			if i < len(b.Nodes) {
				dn.Local -= b.Nodes[i].Local
				dn.Remote -= b.Nodes[i].Remote
				dn.Timeouts -= b.Nodes[i].Timeouts
			}
			d.Nodes[i] = dn
		}
		out.Cluster = d
	}
	if len(s.Tenants) > 0 {
		out.Tenants = make([]TenantSnap, len(s.Tenants))
		for i, t := range s.Tenants {
			d := t
			if i < len(before.Tenants) {
				b := before.Tenants[i]
				d.Commands -= b.Commands
				d.Bytes -= b.Bytes
				d.QuotaRejections -= b.QuotaRejections
				d.CapDenials -= b.CapDenials
			}
			out.Tenants[i] = d
		}
	}
	out.LockWaitNs = s.LockWaitNs.sub(before.LockWaitNs)
	out.LockHoldCycles = s.LockHoldCycles.sub(before.LockHoldCycles)
	out.Shootdowns = s.Shootdowns - before.Shootdowns
	out.ShootdownPages = s.ShootdownPages - before.ShootdownPages
	out.URPCRetries = s.URPCRetries - before.URPCRetries
	out.FaultsInjected = s.FaultsInjected - before.FaultsInjected
	out.Switches = s.Switches - before.Switches
	out.TraceRecorded = s.TraceRecorded - before.TraceRecorded
	out.TraceDropped = s.TraceDropped - before.TraceDropped
	return &out
}

func subMap(a, b map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(a))
	for k, v := range a {
		if d := v - b[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteText renders the snapshot as a human-readable counter table.
func (s *Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cycles by category\n")
	var total uint64
	for _, name := range sortedKeys(s.Cycles) {
		fmt.Fprintf(tw, "  %s\t%d\n", name, s.Cycles[name])
		total += s.Cycles[name]
	}
	fmt.Fprintf(tw, "  total\t%d\n", total)

	fmt.Fprintf(tw, "tlb\thits %d\tmisses %d\thit-rate %.4f\n", s.TLB.Hits, s.TLB.Misses, s.TLB.HitRate())
	fmt.Fprintf(tw, "\tevictions %d\tflushes %d\tflushed-entries %d\n", s.TLB.Evictions, s.TLB.Flushes, s.TLB.FlushedEntries)
	asids := make([]arch.ASID, 0, len(s.ASIDs))
	for a := range s.ASIDs {
		asids = append(asids, a)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, a := range asids {
		v := s.ASIDs[a]
		fmt.Fprintf(tw, "  asid %d\thits %d\tmisses %d\thit-rate %.4f\tevictions %d\n",
			a, v.Hits, v.Misses, v.HitRate(), v.Evictions)
	}

	fmt.Fprintf(tw, "pt\tnodes-alloc %d\tnodes-freed %d\tnodes-touched %d\n",
		s.PT.NodesAllocated, s.PT.NodesFreed, s.PT.NodesTouched)
	fmt.Fprintf(tw, "\tentries-set %d\tentries-cleared %d\twalks %d\n",
		s.PT.EntriesSet, s.PT.EntriesCleared, s.PT.Walks)
	fmt.Fprintf(tw, "vm\tmaps %d\tunmaps %d\tfaults %d\tcow-breaks %d\n", s.VM.Maps, s.VM.Unmaps, s.VM.Faults, s.VM.COWBreaks)
	if s.NVM.Writes != 0 {
		fmt.Fprintf(tw, "nvm\twrites %d\tbytes %d\n", s.NVM.Writes, s.NVM.WrittenBytes)
	}
	fmt.Fprintf(tw, "switches\t%d\tshootdowns %d (%d pages)\n", s.Switches, s.Shootdowns, s.ShootdownPages)
	if s.URPCRetries != 0 || s.FaultsInjected != 0 {
		fmt.Fprintf(tw, "failures\turpc-retries %d\tfaults-injected %d\n", s.URPCRetries, s.FaultsInjected)
	}
	if s.LockWaitNs.Count != 0 {
		fmt.Fprintf(tw, "lock-wait-ns\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
			s.LockWaitNs.Count, s.LockWaitNs.Mean(), s.LockWaitNs.Quantile(0.99), s.LockWaitNs.Max)
	}
	if s.LockHoldCycles.Count != 0 {
		fmt.Fprintf(tw, "lock-hold-cyc\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
			s.LockHoldCycles.Count, s.LockHoldCycles.Mean(), s.LockHoldCycles.Quantile(0.99), s.LockHoldCycles.Max)
	}
	if len(s.Syscalls) > 0 {
		fmt.Fprintf(tw, "syscall latency (cycles)\n")
		for _, op := range sortedHistKeys(s.Syscalls) {
			h := s.Syscalls[op]
			fmt.Fprintf(tw, "  %s\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
				op, h.Count, h.Mean(), h.Quantile(0.99), h.Max)
		}
	}
	if srv := s.Server; srv != nil {
		fmt.Fprintf(tw, "server\tconns %d/%d\tcommands %d\tbusy %d\n",
			srv.ConnsClosed, srv.ConnsAccepted, srv.Commands, srv.Busy)
		fmt.Fprintf(tw, "  latency-ns\tn %d\tmean %.0f\tp50 ≤%d\tp99 ≤%d\tmax %d\n",
			srv.LatencyNs.Count, srv.LatencyNs.Mean(),
			srv.LatencyNs.Quantile(0.50), srv.LatencyNs.Quantile(0.99), srv.LatencyNs.Max)
		fmt.Fprintf(tw, "  pipeline\tmean %.1f\tmax %d\tqueue mean %.1f max %d\n",
			srv.Pipeline.Mean(), srv.Pipeline.Max, srv.QueueDepth.Mean(), srv.QueueDepth.Max)
		for i, sh := range srv.Shards {
			fmt.Fprintf(tw, "  shard %d\tconns %d\tcommands %d\tbusy %d\tqueue-max %d\n",
				i, sh.Conns, sh.Commands, sh.Busy, sh.QueueMax)
		}
	}
	if cl := s.Cluster; cl != nil {
		fmt.Fprintf(tw, "cluster\tlocal %d\tremote %d\ttimeouts %d\n", cl.Local, cl.Remote, cl.Timeouts)
		if cl.LocalCycles.Count != 0 {
			fmt.Fprintf(tw, "  local-cyc\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
				cl.LocalCycles.Count, cl.LocalCycles.Mean(), cl.LocalCycles.Quantile(0.99), cl.LocalCycles.Max)
		}
		if cl.RemoteCycles.Count != 0 {
			fmt.Fprintf(tw, "  remote-cyc\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
				cl.RemoteCycles.Count, cl.RemoteCycles.Mean(), cl.RemoteCycles.Quantile(0.99), cl.RemoteCycles.Max)
		}
		if cl.URPCCallCycles.Count != 0 {
			fmt.Fprintf(tw, "  urpc-call-cyc\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
				cl.URPCCallCycles.Count, cl.URPCCallCycles.Mean(), cl.URPCCallCycles.Quantile(0.99), cl.URPCCallCycles.Max)
		}
		if r := cl.Replication; r != nil {
			fmt.Fprintf(tw, "  replication\tships %d (%d B, %d failed)\tprobes %d (%d failed)\n",
				r.Ships, r.ShipBytes, r.ShipFailures, r.Probes, r.ProbeFailures)
			fmt.Fprintf(tw, "  failover\tpromotions %d\tdelta-replayed %d\tlost-updates %d\n",
				r.Promotions, r.DeltaReplayed, r.LostUpdates)
		}
		if m := cl.Migration; m != nil {
			fmt.Fprintf(tw, "  migration\tslot-moves %d (%d failed)\tkeys %d (%d B)\tdelta-replayed %d\tmoved-retries %d\n",
				m.SlotMoves, m.SlotMoveFailures, m.KeysMoved, m.BytesMoved, m.DeltaReplayed, m.MovedRetries)
			fmt.Fprintf(tw, "  membership\tnodes-added %d\tnodes-removed %d\n",
				m.NodesAdded, m.NodesRemoved)
		}
		if f := cl.Fork; f != nil {
			fmt.Fprintf(tw, "  fork\tforks %d\treleases %d\tinvalidated %d\tfollower-reads %d\tstale-rejected %d\n",
				f.Forks, f.Releases, f.Invalidated, f.FollowerReads, f.StaleRejected)
			if f.ShipNs.Count != 0 {
				fmt.Fprintf(tw, "  ship-ns\tn %d\tmean %.0f\tp99 ≤%d\tmax %d\n",
					f.ShipNs.Count, f.ShipNs.Mean(), f.ShipNs.Quantile(0.99), f.ShipNs.Max)
			}
		}
		if o := cl.Overload; o != nil {
			fmt.Fprintf(tw, "  overload\tdeadline-expired %d\tshed %d\tdegraded-reads %d\n",
				o.DeadlineExpired, o.Shed, o.DegradedReads)
			fmt.Fprintf(tw, "  breakers\topens %d\thalf-opens %d\tcloses %d\n",
				o.BreakerOpens, o.BreakerHalfOpens, o.BreakerCloses)
			if o.BudgetRemaining.Count != 0 {
				fmt.Fprintf(tw, "  budget-left-cyc\tn %d\tmean %.0f\tp50 ≤%d\tmax %d\n",
					o.BudgetRemaining.Count, o.BudgetRemaining.Mean(),
					o.BudgetRemaining.Quantile(0.50), o.BudgetRemaining.Max)
			}
		}
		for i, n := range cl.Nodes {
			fmt.Fprintf(tw, "  node %d\tlocal %d\tremote %d\ttimeouts %d\n", i, n.Local, n.Remote, n.Timeouts)
		}
	}
	for i, t := range s.Tenants {
		if t.zero() {
			continue
		}
		fmt.Fprintf(tw, "tenant %d\tcommands %d\tbytes %d\tquota-rejected %d\tcap-denied %d\n",
			i, t.Commands, t.Bytes, t.QuotaRejections, t.CapDenials)
	}
	if s.TraceRecorded != 0 {
		fmt.Fprintf(tw, "trace\trecorded %d\tdropped %d\n", s.TraceRecorded, s.TraceDropped)
	}
	return tw.Flush()
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedHistKeys(m map[string]HistSnap) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
