package stats

import (
	"encoding/json"
	"sync"
	"testing"

	"spacejmp/internal/arch"
)

// TestNilSafety: every recording and reading method must be a no-op on a nil
// receiver — this is the disabled fast path every component relies on.
func TestNilSafety(t *testing.T) {
	var s *Sink
	s.TLBHit(1)
	s.TLBMiss(1)
	s.TLBEvict(1)
	s.TLBFlush(4)
	s.Shootdown(2, 8)
	s.NVMWrite(64)
	s.VMMap()
	s.VMUnmap()
	s.VMFault()
	s.LockWait(100)
	s.LockHold(100)
	s.Syscall(OpVASSwitch, 10)
	s.URPCRetry(0, 1, 2)
	s.FaultFired("x")
	s.VASSwitch(0, 1, 2)
	s.SegAttach(0, 1, 2, 3)
	s.SetTracer(NewTracer(4))
	s.Trace(Event{Kind: EvVASSwitch})
	if s.Tracer() != nil || s.Core(0) != nil || s.PTObs() != nil || s.Snapshot() != nil {
		t.Error("nil sink returned non-nil sub-objects")
	}

	var c *CoreCounters
	c.AddCycles(CatData, 5)
	if c.Cycles(CatData) != 0 {
		t.Error("nil CoreCounters recorded cycles")
	}

	var p *PTCounters
	p.TableAllocated()
	p.TableFreed()
	p.EntrySet()
	p.EntryCleared()
	p.Walk(4)

	var h *Hist
	h.Observe(7)
	if h.Count() != 0 {
		t.Error("nil Hist recorded")
	}

	var tr *Tracer
	tr.Record(Event{Kind: EvFault})
	if tr.Events() != nil || tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Count(EvFault) != 0 {
		t.Error("nil Tracer retained state")
	}

	var snap *Snapshot
	if snap.Delta(nil) != nil {
		t.Error("nil snapshot delta is non-nil")
	}
}

// TestConcurrentCounters hammers every counter family from many goroutines
// and verifies the snapshot totals are exact. Run under -race this also
// proves the recording paths are data-race free.
func TestConcurrentCounters(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	s := NewSink(2)
	s.SetTracer(NewTracer(16))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := s.Core(w % 2)
			for i := 0; i < perWorker; i++ {
				cc.AddCycles(CatWalk, 3)
				s.TLBHit(arch.ASID(w % 4))
				s.TLBMiss(arch.ASID(w % 4))
				s.TLBEvict(1)
				s.PTObs().Walk(4)
				s.PTObs().EntrySet()
				s.NVMWrite(8)
				s.Syscall(OpVASSwitch, uint64(i))
				s.LockWait(uint64(i))
				s.VASSwitch(w, w, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	const total = workers * perWorker
	if got := snap.Cycles[CatWalk.String()]; got != 3*total {
		t.Errorf("walk cycles = %d, want %d", got, 3*total)
	}
	if snap.TLB.Hits != total || snap.TLB.Misses != total || snap.TLB.Evictions != total {
		t.Errorf("tlb = %+v, want %d each", snap.TLB, total)
	}
	if snap.TLB.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", snap.TLB.HitRate())
	}
	if snap.PT.Walks != total || snap.PT.NodesTouched != 4*total || snap.PT.EntriesSet != total {
		t.Errorf("pt = %+v", snap.PT)
	}
	if snap.NVM.Writes != total || snap.NVM.WrittenBytes != 8*total {
		t.Errorf("nvm = %+v", snap.NVM)
	}
	if h := snap.Syscalls[OpVASSwitch.String()]; h.Count != total {
		t.Errorf("vas_switch latencies = %d, want %d", h.Count, total)
	}
	if snap.LockWaitNs.Count != total {
		t.Errorf("lock waits = %d, want %d", snap.LockWaitNs.Count, total)
	}
	// Per-kind trace counts survive ring overflow (capacity 16 << total).
	if got := s.Tracer().Count(EvVASSwitch); got != total {
		t.Errorf("traced switches = %d, want %d", got, total)
	}
	if snap.TraceRecorded != total || snap.TraceDropped != total-16 {
		t.Errorf("trace recorded/dropped = %d/%d", snap.TraceRecorded, snap.TraceDropped)
	}
}

// TestSnapshotImmutability: a snapshot must not change when the live sink
// keeps counting.
func TestSnapshotImmutability(t *testing.T) {
	s := NewSink(1)
	s.Core(0).AddCycles(CatData, 10)
	s.TLBHit(2)
	s.PTObs().Walk(4)
	before := s.Snapshot()
	buf, err := before.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate everything the snapshot covers.
	s.Core(0).AddCycles(CatData, 99)
	s.TLBHit(2)
	s.TLBFlush(7)
	s.PTObs().Walk(4)
	s.Syscall(OpSegAlloc, 123)
	after, err := before.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(after) {
		t.Errorf("snapshot changed under mutation:\nbefore %s\nafter  %s", buf, after)
	}
	if before.TLB.Hits != 1 || before.Cycles[CatData.String()] != 10 {
		t.Errorf("snapshot values wrong: %+v", before)
	}
}

// TestSnapshotDelta verifies counter-by-counter subtraction.
func TestSnapshotDelta(t *testing.T) {
	s := NewSink(1)
	s.Core(0).AddCycles(CatWalk, 5)
	s.TLBMiss(1)
	s.Syscall(OpVASSwitch, 10)
	before := s.Snapshot()
	s.Core(0).AddCycles(CatWalk, 7)
	s.TLBMiss(1)
	s.TLBMiss(1)
	s.Syscall(OpVASSwitch, 20)
	d := s.Snapshot().Delta(before)
	if d.Cycles[CatWalk.String()] != 7 {
		t.Errorf("delta walk cycles = %d, want 7", d.Cycles[CatWalk.String()])
	}
	if d.TLB.Misses != 2 {
		t.Errorf("delta misses = %d, want 2", d.TLB.Misses)
	}
	h := d.Syscalls[OpVASSwitch.String()]
	if h.Count != 1 || h.Sum != 20 {
		t.Errorf("delta vas_switch hist = %+v, want count 1 sum 20", h)
	}
	// Delta against nil is the snapshot itself.
	if full := s.Snapshot().Delta(nil); full.TLB.Misses != 3 {
		t.Errorf("delta(nil) misses = %d, want 3", full.TLB.Misses)
	}
}

// TestTraceRingOverflow: the ring keeps the newest capacity events in order,
// Recorded/Dropped account for the rest, and per-kind counts are exact.
func TestTraceRingOverflow(t *testing.T) {
	tr := NewTracer(8)
	const n = 20
	for i := 0; i < n; i++ {
		tr.Record(Event{Kind: EvVASSwitch, Core: 0, A: uint64(i)})
	}
	if tr.Recorded() != n {
		t.Errorf("recorded = %d, want %d", tr.Recorded(), n)
	}
	if tr.Dropped() != n-8 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), n-8)
	}
	ev := tr.Events()
	if len(ev) != 8 {
		t.Fatalf("retained %d events, want 8", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(n - 8 + i + 1) // oldest retained first, 1-based seq
		if e.Seq != wantSeq || e.A != wantSeq-1 {
			t.Errorf("event %d: seq=%d a=%d, want seq=%d", i, e.Seq, e.A, wantSeq)
		}
	}
	if tr.Count(EvVASSwitch) != n || tr.Count(EvFault) != 0 {
		t.Errorf("counts = %d/%d", tr.Count(EvVASSwitch), tr.Count(EvFault))
	}
	// Events JSON-encode (the exporter path).
	if _, err := json.Marshal(ev); err != nil {
		t.Errorf("events not encodable: %v", err)
	}
}

// TestTracerBelowCapacity: no wrap, events in insertion order, zero dropped.
func TestTracerBelowCapacity(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: EvFault, Label: "a"})
	tr.Record(Event{Kind: EvSegAttach, A: 1, B: 2})
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Kind != EvFault || ev[1].Kind != EvSegAttach {
		t.Errorf("events = %+v", ev)
	}
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Errorf("seqs = %d, %d", ev[0].Seq, ev[1].Seq)
	}
}

// TestHistQuantiles checks the log2 histogram's mean, max, and quantile
// upper bounds.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("hist = count %d sum %d max %d", s.Count, s.Sum, s.Max)
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// The median observation is 50; its log2 bucket [32,64) reports 63.
	if q := s.Quantile(0.5); q != 63 {
		t.Errorf("p50 = %d, want 63", q)
	}
	// The top quantile is clamped to the observed max.
	if q := s.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %d, want 100", q)
	}
	if q := s.Quantile(0.0); q > 1 {
		t.Errorf("p0 = %d, want ≤1", q)
	}

	var zeros Hist
	zeros.Observe(0)
	if q := zeros.snapshot().Quantile(0.99); q != 0 {
		t.Errorf("all-zero p99 = %d", q)
	}
}

// TestCatOpNames: every category and op has a distinct name (the snapshot
// keys), and out-of-range values don't panic.
func TestCatOpNames(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCats; c++ {
		name := Cat(c).String()
		if name == "" || seen[name] {
			t.Errorf("cat %d name %q empty or duplicate", c, name)
		}
		seen[name] = true
	}
	for o := 0; o < NumOps; o++ {
		name := Op(o).String()
		if name == "" || seen[name] {
			t.Errorf("op %d name %q empty or duplicate", o, name)
		}
		seen[name] = true
	}
	_ = Cat(200).String()
	_ = Op(200).String()
	_ = EventKind(200).String()
}
