package stats

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvVASSwitch is one vas_switch: A = the handle switched to.
	EvVASSwitch EventKind = iota
	// EvSegAttach is a segment attach: A = VAS id, B = segment id.
	EvSegAttach
	// EvFault is a fault-injection point firing: Label = the point name.
	EvFault
	// EvURPCRetry is a urpc request re-send: A = sequence number, B = try.
	EvURPCRetry
	// EvConnOpen is a serving-layer connection accept: A = connection id,
	// B = the shard it was assigned to.
	EvConnOpen
	// EvConnClose is a serving-layer connection teardown: A = connection
	// id, B = commands served on it.
	EvConnClose
	// EvRemoteCall is one cluster command served over urpc: A = the shard
	// node it was routed to, B = the worker-core cycles it cost end to end.
	EvRemoteCall
	// EvNodeState is a cluster node health transition: A = the node,
	// Label = the state entered.
	EvNodeState
	// EvCheckpointShip is one checkpoint generation shipped to a node's
	// replica: A = the node, B = payload bytes moved.
	EvCheckpointShip
	// EvPromotion is a replica promoted to serve a dead node's key range:
	// A = the node, B = delta entries replayed; Label carries the lost
	// update count when the delta window overflowed.
	EvPromotion
	// EvSlotMove is one slot migrated between nodes: A = the slot,
	// B = keys moved; Label = "src->dst".
	EvSlotMove
	// EvSlotMoveFailed is a slot migration aborted and rolled back:
	// A = the slot; Label = "src->dst: reason".
	EvSlotMoveFailed
	// EvNodeAdded is a node joined to the live cluster: A = the node.
	EvNodeAdded
	// EvNodeRemoved is a node drained and retired from the live cluster:
	// A = the node.
	EvNodeRemoved
	// EvFork is a frozen COW view forked off a node's live shard:
	// A = the node, B = the fork generation.
	EvFork
	// EvForkRelease is a frozen view released, its private frames returned
	// to the allocator: A = the node, B = the fork generation.
	EvForkRelease
	// EvForkInvalidate is outstanding frozen views fenced off a node by a
	// promotion or slot flip: A = the node, B = views invalidated,
	// Label = the reason.
	EvForkInvalidate
	// EvBreakerState is a node circuit-breaker transition: A = the node,
	// Label = "from->to" ("closed->open", "open->half-open", ...).
	EvBreakerState

	// NumEvents is the number of event kinds.
	NumEvents = int(EvBreakerState) + 1
)

var eventNames = [NumEvents]string{"vas-switch", "seg-attach", "fault", "urpc-retry", "conn-open", "conn-close", "remote-call", "node-state", "checkpoint-ship", "promotion", "slot-move", "slot-move-failed", "node-added", "node-removed", "fork", "fork-release", "fork-invalidate", "breaker-state"}

func (k EventKind) String() string {
	if int(k) < NumEvents {
		return eventNames[k]
	}
	return "event(?)"
}

// Event is one typed trace record. Seq is a 1-based total order over all
// recorded events, assigned by the Tracer; A and B are kind-specific
// payloads; Core is -1 when no core is attributable.
type Event struct {
	Seq   uint64    `json:"seq"`
	Kind  EventKind `json:"-"`
	Core  int       `json:"core"`
	PID   int       `json:"pid,omitempty"`
	A     uint64    `json:"a,omitempty"`
	B     uint64    `json:"b,omitempty"`
	Label string    `json:"label,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case EvVASSwitch:
		return fmt.Sprintf("#%d vas-switch core=%d pid=%d handle=%d", e.Seq, e.Core, e.PID, e.A)
	case EvSegAttach:
		return fmt.Sprintf("#%d seg-attach core=%d pid=%d vas=%d seg=%d", e.Seq, e.Core, e.PID, e.A, e.B)
	case EvFault:
		return fmt.Sprintf("#%d fault %s", e.Seq, e.Label)
	case EvURPCRetry:
		return fmt.Sprintf("#%d urpc-retry core=%d seq=%d try=%d", e.Seq, e.Core, e.A, e.B)
	case EvConnOpen:
		return fmt.Sprintf("#%d conn-open conn=%d shard=%d", e.Seq, e.A, e.B)
	case EvConnClose:
		return fmt.Sprintf("#%d conn-close conn=%d commands=%d", e.Seq, e.A, e.B)
	case EvRemoteCall:
		return fmt.Sprintf("#%d remote-call node=%d cycles=%d", e.Seq, e.A, e.B)
	case EvNodeState:
		return fmt.Sprintf("#%d node-state node=%d state=%s", e.Seq, e.A, e.Label)
	case EvCheckpointShip:
		return fmt.Sprintf("#%d checkpoint-ship node=%d bytes=%d", e.Seq, e.A, e.B)
	case EvPromotion:
		if e.Label != "" {
			return fmt.Sprintf("#%d promotion node=%d replayed=%d lost=%s", e.Seq, e.A, e.B, e.Label)
		}
		return fmt.Sprintf("#%d promotion node=%d replayed=%d", e.Seq, e.A, e.B)
	case EvSlotMove:
		return fmt.Sprintf("#%d slot-move slot=%d keys=%d %s", e.Seq, e.A, e.B, e.Label)
	case EvSlotMoveFailed:
		return fmt.Sprintf("#%d slot-move-failed slot=%d %s", e.Seq, e.A, e.Label)
	case EvNodeAdded:
		return fmt.Sprintf("#%d node-added node=%d", e.Seq, e.A)
	case EvNodeRemoved:
		return fmt.Sprintf("#%d node-removed node=%d", e.Seq, e.A)
	case EvFork:
		return fmt.Sprintf("#%d fork node=%d gen=%d", e.Seq, e.A, e.B)
	case EvForkRelease:
		return fmt.Sprintf("#%d fork-release node=%d gen=%d", e.Seq, e.A, e.B)
	case EvForkInvalidate:
		return fmt.Sprintf("#%d fork-invalidate node=%d views=%d reason=%s", e.Seq, e.A, e.B, e.Label)
	case EvBreakerState:
		return fmt.Sprintf("#%d breaker-state node=%d %s", e.Seq, e.A, e.Label)
	}
	return fmt.Sprintf("#%d %v", e.Seq, e.Kind)
}

// Tracer is a bounded ring of trace events. When the ring is full the
// oldest events are overwritten; per-kind totals keep counting, so event
// counts survive overflow even though the events themselves do not.
type Tracer struct {
	mu       sync.Mutex
	ring     []Event
	recorded uint64 // total events ever recorded

	counts [NumEvents]atomic.Uint64
}

// NewTracer creates a ring holding at most capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record appends an event, assigning its sequence number and overwriting
// the oldest event if the ring is full. Safe on nil.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if int(e.Kind) < NumEvents {
		t.counts[e.Kind].Add(1)
	}
	t.mu.Lock()
	t.recorded++
	e.Seq = t.recorded
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[int((t.recorded-1)%uint64(cap(t.ring)))] = e
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.ring))
	if t.recorded <= uint64(cap(t.ring)) {
		copy(out, t.ring)
		return out
	}
	// Ring has wrapped: the oldest retained event sits right after the
	// write cursor.
	head := int(t.recorded % uint64(cap(t.ring)))
	n := copy(out, t.ring[head:])
	copy(out[n:], t.ring[:head])
	return out
}

// Recorded returns the total number of events ever recorded.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// Dropped returns how many events were overwritten by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recorded <= uint64(cap(t.ring)) {
		return 0
	}
	return t.recorded - uint64(cap(t.ring))
}

// Count returns the total number of events of kind k ever recorded,
// including events since overwritten — the counter a regression test
// compares against System.Switches().
func (t *Tracer) Count(k EventKind) uint64 {
	if t == nil || int(k) >= NumEvents {
		return 0
	}
	return t.counts[k].Load()
}
