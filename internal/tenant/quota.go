package tenant

import (
	"errors"
	"fmt"
)

// Quotas bounds one tenant's footprint. Zero values mean unlimited.
type Quotas struct {
	// MaxBytes caps the tenant's admitted live value bytes in the shared
	// segments.
	MaxBytes uint64 `json:"max_bytes,omitempty"`
	// MaxKeys caps the tenant's admitted live key count.
	MaxKeys uint64 `json:"max_keys,omitempty"`
	// Rate is the sustained command rate (commands/sec) through a token
	// bucket; Burst is the bucket depth (defaults to Rate).
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
}

func (q Quotas) withDefaults() Quotas {
	if q.Rate > 0 && q.Burst <= 0 {
		q.Burst = q.Rate
	}
	return q
}

// ErrOverQuota is the admission rejection: the command would push the
// tenant past a configured budget. The wrapping error says which one.
var ErrOverQuota = errors.New("tenant: over quota")

// TakeToken admits one command through the tenant's rate bucket. Quota
// rejections are counted in the tenant's stats block.
func (t *Tenant) TakeToken() error {
	if t.quotas.Rate <= 0 {
		return nil
	}
	t.mu.Lock()
	now := t.reg.now()
	t.tokens += now.Sub(t.filled).Seconds() * t.quotas.Rate
	if t.tokens > t.quotas.Burst {
		t.tokens = t.quotas.Burst
	}
	t.filled = now
	ok := t.tokens >= 1
	if ok {
		t.tokens--
	}
	t.mu.Unlock()
	if !ok {
		t.reg.sink.TenantQuotaRejected(t.index)
		return fmt.Errorf("%w: tenant %q over command rate %.0f/s", ErrOverQuota, t.id, t.quotas.Rate)
	}
	return nil
}

// ChargeSet admits a SET of valLen bytes against the byte and key budgets,
// charging optimistically. The returned undo reverses the charge and must
// be called if the store rejects the write (full segment, shard error);
// on success the charge stands and undo is discarded.
func (t *Tenant) ChargeSet(key string, valLen int) (undo func(), err error) {
	t.mu.Lock()
	old, existed := t.sizes[key]
	newBytes := t.bytes - uint64(old) + uint64(valLen)
	newKeys := t.keys
	if !existed {
		newKeys++
	}
	switch {
	case t.quotas.MaxBytes > 0 && newBytes > t.quotas.MaxBytes:
		err = fmt.Errorf("%w: tenant %q over byte budget %d", ErrOverQuota, t.id, t.quotas.MaxBytes)
	case t.quotas.MaxKeys > 0 && newKeys > t.quotas.MaxKeys:
		err = fmt.Errorf("%w: tenant %q over key budget %d", ErrOverQuota, t.id, t.quotas.MaxKeys)
	}
	if err != nil {
		t.mu.Unlock()
		t.reg.sink.TenantQuotaRejected(t.index)
		return nil, err
	}
	t.bytes, t.keys = newBytes, newKeys
	t.sizes[key] = uint32(valLen)
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		t.bytes += uint64(old) - uint64(valLen)
		if existed {
			t.sizes[key] = old
		} else {
			t.keys--
			delete(t.sizes, key)
		}
		t.mu.Unlock()
	}, nil
}

// SettleDel credits a confirmed DEL back to the budgets.
func (t *Tenant) SettleDel(key string) {
	t.mu.Lock()
	if old, ok := t.sizes[key]; ok {
		t.bytes -= uint64(old)
		t.keys--
		delete(t.sizes, key)
	}
	t.mu.Unlock()
}

// Count records one admitted command of n payload bytes in the tenant's
// stats block.
func (t *Tenant) Count(n int) {
	t.reg.sink.TenantCommand(t.index, uint64(n))
}

// Usage returns the tenant's admitted live bytes and keys.
func (t *Tenant) Usage() (bytes, keys uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes, t.keys
}
