package tenant

import (
	"errors"
	"testing"
	"time"

	"spacejmp/internal/caps"
	"spacejmp/internal/core"
	"spacejmp/internal/stats"
)

func TestRegisterAndAuthenticate(t *testing.T) {
	r := New(Config{Nodes: 3})
	if _, err := r.Register("acme", "sesame", Quotas{}); err != nil {
		t.Fatal(err)
	}

	got, err := r.Authenticate("acme", "sesame")
	if err != nil || got.ID() != "acme" {
		t.Fatalf("Authenticate = %v, %v", got, err)
	}
	// Wrong secret and unknown id must be the same denial: both wrap
	// core.ErrDenied and neither says which half was wrong.
	if _, err := r.Authenticate("acme", "wrong"); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("wrong secret: err = %v, want core.ErrDenied", err)
	}
	if _, err := r.Authenticate("ghost", "sesame"); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("unknown id: err = %v, want core.ErrDenied", err)
	}

	if _, err := r.Register("acme", "again", Quotas{}); !errors.Is(err, core.ErrExists) {
		t.Fatalf("duplicate register: err = %v, want core.ErrExists", err)
	}
	for _, bad := range []string{"", "a:b", "a b", "a\tb", "a\x7fb"} {
		if _, err := r.Register(bad, "s", Quotas{}); !errors.Is(err, core.ErrInvalid) {
			t.Fatalf("Register(%q): err = %v, want core.ErrInvalid", bad, err)
		}
	}
}

// TestAttachIsolation is the capability boundary itself: a tenant attaches
// its own view freely but holds no capability for a peer's, so the
// cross-view attach is a typed denial — never a miss.
func TestAttachIsolation(t *testing.T) {
	sink := stats.NewSink(1)
	r, err := NewDemo(2, Config{Nodes: 2, Stats: sink}, Quotas{})
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := r.Lookup(DemoID(0))
	t1, _ := r.Lookup(DemoID(1))

	if err := r.Attach(t0, t0.ID(), caps.RightRead|caps.RightWrite); err != nil {
		t.Fatalf("own view attach: %v", err)
	}
	if err := r.Attach(t0, t1.ID(), caps.RightRead); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("cross-view attach: err = %v, want core.ErrDenied", err)
	}
	// An unregistered view is indistinguishable from a denied one.
	if err := r.Attach(t0, "ghost", caps.RightRead); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("unknown view attach: err = %v, want core.ErrDenied", err)
	}
	if got := sink.TenantDeniedTotal(); got != 2 {
		t.Fatalf("TenantDeniedTotal = %d, want 2", got)
	}
}

// TestGrantAndRevoke walks the Barrelfish sharing story: a read-only grant
// opens exactly read access, revocation transitively closes it again, and
// every transition bumps the generation so cached attachments re-check.
func TestGrantAndRevoke(t *testing.T) {
	r, err := NewDemo(3, Config{Nodes: 2}, Quotas{})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := r.Lookup(DemoID(1))
	t2, _ := r.Lookup(DemoID(2))

	gen := r.Generation()
	if err := r.Grant(DemoID(0), DemoID(1), caps.RightRead); err != nil {
		t.Fatal(err)
	}
	if r.Generation() == gen {
		t.Fatal("grant did not bump the generation")
	}

	if err := r.Attach(t1, DemoID(0), caps.RightRead); err != nil {
		t.Fatalf("attach after read grant: %v", err)
	}
	// The grant carried read only; writes stay denied.
	if err := r.Attach(t1, DemoID(0), caps.RightWrite); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("write through read grant: err = %v, want core.ErrDenied", err)
	}
	// The grant was to t1; t2 holds nothing.
	if err := r.Attach(t2, DemoID(0), caps.RightRead); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("ungranted tenant: err = %v, want core.ErrDenied", err)
	}

	gen = r.Generation()
	if err := r.Revoke(DemoID(0)); err != nil {
		t.Fatal(err)
	}
	if r.Generation() == gen {
		t.Fatal("revoke did not bump the generation")
	}
	if err := r.Attach(t1, DemoID(0), caps.RightRead); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("attach after revoke: err = %v, want core.ErrDenied", err)
	}
	// The owner's own set survives revocation: only minted children died.
	t0, _ := r.Lookup(DemoID(0))
	if err := r.Attach(t0, DemoID(0), caps.RightRead|caps.RightWrite); err != nil {
		t.Fatalf("owner after revoke: %v", err)
	}

	if err := r.Grant("ghost", DemoID(1), caps.RightRead); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("grant from unknown: err = %v, want core.ErrNotFound", err)
	}
	if err := r.Revoke("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("revoke unknown: err = %v, want core.ErrNotFound", err)
	}
}

func TestByteAndKeyQuotas(t *testing.T) {
	r := New(Config{})
	tn, err := r.Register("q", "s", Quotas{MaxBytes: 100, MaxKeys: 2})
	if err != nil {
		t.Fatal(err)
	}

	undoA, err := tn.ChargeSet("a", 60)
	if err != nil {
		t.Fatal(err)
	}
	_ = undoA
	if _, err := tn.ChargeSet("b", 60); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over byte budget: err = %v, want ErrOverQuota", err)
	}
	// Overwriting a key charges the delta, not the sum.
	if _, err := tn.ChargeSet("a", 90); err != nil {
		t.Fatalf("overwrite within budget: %v", err)
	}
	if b, k := tn.Usage(); b != 90 || k != 1 {
		t.Fatalf("usage = (%d, %d), want (90, 1)", b, k)
	}

	undoB, err := tn.ChargeSet("b", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.ChargeSet("c", 1); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over key budget: err = %v, want ErrOverQuota", err)
	}
	// A rolled-back charge frees its budget again.
	undoB()
	if _, err := tn.ChargeSet("c", 1); err != nil {
		t.Fatalf("charge after rollback: %v", err)
	}

	tn.SettleDel("a")
	if b, k := tn.Usage(); b != 1 || k != 1 {
		t.Fatalf("usage after del = (%d, %d), want (1, 1)", b, k)
	}
	// Deleting an uncharged key is a no-op credit.
	tn.SettleDel("never")
	if b, k := tn.Usage(); b != 1 || k != 1 {
		t.Fatalf("usage after no-op del = (%d, %d), want (1, 1)", b, k)
	}
}

func TestCommandRateBucket(t *testing.T) {
	clock := time.Unix(0, 0)
	r := New(Config{Now: func() time.Time { return clock }})
	tn, err := r.Register("rl", "s", Quotas{Rate: 10, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}

	if err := tn.TakeToken(); err != nil {
		t.Fatal(err)
	}
	if err := tn.TakeToken(); err != nil {
		t.Fatal(err)
	}
	if err := tn.TakeToken(); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("empty bucket: err = %v, want ErrOverQuota", err)
	}
	// 100ms at 10/s refills exactly one token.
	clock = clock.Add(100 * time.Millisecond)
	if err := tn.TakeToken(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := tn.TakeToken(); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("refilled exactly one: err = %v, want ErrOverQuota", err)
	}
	// A long idle stretch caps at Burst, not Rate*dt.
	clock = clock.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if err := tn.TakeToken(); err != nil {
			t.Fatalf("token %d after idle: %v", i, err)
		}
	}
	if err := tn.TakeToken(); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("bucket deeper than burst: err = %v, want ErrOverQuota", err)
	}
}

func TestDemoRegistry(t *testing.T) {
	r, err := NewDemo(3, Config{Nodes: 2}, Quotas{MaxKeys: 7})
	if err != nil {
		t.Fatal(err)
	}
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "t0" || ids[2] != "t2" {
		t.Fatalf("IDs = %v, want [t0 t1 t2]", ids)
	}
	for i, info := range r.List() {
		if info.ID != DemoID(i) || info.Quotas.MaxKeys != 7 {
			t.Fatalf("List()[%d] = %+v", i, info)
		}
	}
	if _, err := r.Authenticate(DemoID(1), DemoSecret(1)); err != nil {
		t.Fatal(err)
	}
}
