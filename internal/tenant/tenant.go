// Package tenant implements multi-tenant serving over the multi-VAS store:
// the paper's protection story (§4.2, lockable segments + ACLs on named
// VASes) turned into a serving feature. A Registry holds one entry per
// tenant; registering a tenant composes its view — a per-tenant VAS object
// plus one segment object per shard store, named through the tenant-scoped
// names in internal/redis ("t:<id>:cluster.s0.data", ...) — and mints the
// tenant a capability set over that view through internal/caps, the
// Barrelfish path: the registry's root cspace owns every view object and
// Kernel.Mint derives each tenant's read/write/grant subset from it.
//
// Enforcement happens at admission in the serving layer. A connection
// authenticates (AUTH <tenant> <secret>), its keys are qualified with the
// tenant's view prefix, and any explicitly cross-view address must pass a
// capability check over the target view's VAS and segment objects — a
// tenant holding no capability gets a typed -NOPERM denial, never a
// missing-key miss. Tenants can share views the Barrelfish way: Grant
// mints a subset of the owner's rights into another tenant's cspace, and
// Revoke transitively invalidates every grant minted from the owner's
// capabilities.
package tenant

import (
	"crypto/subtle"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/caps"
	"spacejmp/internal/core"
	"spacejmp/internal/redis"
	"spacejmp/internal/stats"
)

// Config sizes a registry.
type Config struct {
	// Nodes is the number of shard stores a tenant's view spans: 1 for the
	// single-store pool backend, the cluster's node count otherwise.
	// Defaults to 1.
	Nodes int
	// Stats receives per-tenant counters. Nil disables accounting.
	Stats *stats.Sink
	// Now overrides the token-bucket clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Registry is the tenant directory: credentials, capability spaces, quota
// state, and per-tenant accounting indices.
type Registry struct {
	kernel *caps.Kernel
	root   *caps.CSpace // owner capabilities for every view object
	nodes  int
	sink   *stats.Sink
	now    func() time.Time

	mu      sync.RWMutex
	tenants map[string]*Tenant
	order   []string // registration order, for stats indices and listings

	gen atomic.Uint64 // bumped on register/grant/revoke; connections re-check cached views
}

// New creates an empty registry.
func New(cfg Config) *Registry {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	// The kernel only mints and revokes object capabilities here — it never
	// allocates RAM — so it needs no physical memory behind it.
	return &Registry{
		kernel:  caps.NewKernel(nil),
		root:    caps.NewCSpace(),
		nodes:   cfg.Nodes,
		sink:    cfg.Stats,
		now:     cfg.Now,
		tenants: map[string]*Tenant{},
	}
}

// Tenant is one registered tenant: its credentials, its capability space,
// and its quota state. Obtained from Authenticate or Lookup; safe for
// concurrent use by many connections.
type Tenant struct {
	reg    *Registry
	id     string
	secret string
	index  int // stats table slot
	cspace *caps.CSpace
	quotas Quotas

	// View object identities (this tenant's own view).
	viewID uint64   // TypeVAS object
	segIDs []uint64 // TypeSegment objects, one per shard store

	// Slots of this tenant's own-view capabilities in its cspace — the
	// mint sources for Grant and the revocation anchors for Revoke.
	ownSlots []caps.Slot

	// Quota state, under mu.
	mu     sync.Mutex
	bytes  uint64            // admitted live value bytes
	keys   uint64            // admitted live keys
	sizes  map[string]uint32 // per-key admitted value size
	tokens float64           // command-rate bucket level
	filled time.Time         // last bucket refill
}

// ID returns the tenant's identifier.
func (t *Tenant) ID() string { return t.id }

// Index returns the tenant's stats-table slot.
func (t *Tenant) Index() int { return t.index }

// QuotaConfig returns the tenant's configured quotas.
func (t *Tenant) QuotaConfig() Quotas { return t.quotas }

// viewObjectID names a view object in capability space: the FNV-64a of its
// tenant-scoped registry name.
func viewObjectID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// baseNames returns the shared store instance node i's view slice is
// composed over.
func (r *Registry) baseNames(i int) redis.Names {
	if r.nodes == 1 {
		return redis.DefaultNames
	}
	return redis.ShardNames(i)
}

// Register creates a tenant: a fresh cspace, one VAS view object plus one
// segment object per shard store registered in the root cspace with full
// rights, and a read/write/grant capability set minted from the root into
// the tenant's cspace. The id must be usable inside a key prefix: no
// colons, spaces, or control bytes.
func (r *Registry) Register(id, secret string, q Quotas) (*Tenant, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	q = q.withDefaults()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[id]; ok {
		return nil, fmt.Errorf("%w: tenant %q already registered", core.ErrExists, id)
	}
	t := &Tenant{
		reg:    r,
		id:     id,
		secret: secret,
		index:  len(r.order),
		cspace: caps.NewCSpace(),
		quotas: q,
		viewID: viewObjectID(redis.TenantKey(id, "view")),
		sizes:  map[string]uint32{},
		tokens: q.Burst,
		filled: r.now(),
	}
	// Compose the view: register its objects in the root cspace (owner
	// capabilities, full rights) and mint the tenant's own set from them.
	mint := func(kind caps.Type, objID uint64) error {
		slot := r.root.Insert(&caps.Capability{Type: kind, Rights: caps.RightsAll, ObjID: objID})
		got, err := r.kernel.Mint(r.root, slot, t.cspace, caps.RightRead|caps.RightWrite|caps.RightGrant)
		if err != nil {
			return err
		}
		t.ownSlots = append(t.ownSlots, got)
		return nil
	}
	if err := mint(caps.TypeVAS, t.viewID); err != nil {
		return nil, err
	}
	for i := 0; i < r.nodes; i++ {
		segID := viewObjectID(redis.TenantNames(id, r.baseNames(i)).Seg)
		t.segIDs = append(t.segIDs, segID)
		if err := mint(caps.TypeSegment, segID); err != nil {
			return nil, err
		}
	}
	r.tenants[id] = t
	r.order = append(r.order, id)
	r.sink.InstallTenants(len(r.order))
	r.gen.Add(1)
	return t, nil
}

func checkID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: tenant: empty id", core.ErrInvalid)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c == ':' || c <= ' ' || c == 0x7f {
			return fmt.Errorf("%w: tenant: id %q contains %q", core.ErrInvalid, id, c)
		}
	}
	return nil
}

// Authenticate resolves credentials to a tenant. Both the unknown-id and
// wrong-secret paths return the same capability-denial error (wrapping
// core.ErrDenied) after a constant-time compare, so replies don't leak
// which half was wrong.
func (r *Registry) Authenticate(id, secret string) (*Tenant, error) {
	r.mu.RLock()
	t := r.tenants[id]
	r.mu.RUnlock()
	against := ""
	if t != nil {
		against = t.secret
	}
	if subtle.ConstantTimeCompare([]byte(secret), []byte(against)) != 1 || t == nil {
		return nil, fmt.Errorf("%w: tenant: invalid credentials", core.ErrDenied)
	}
	return t, nil
}

// Lookup resolves a tenant id without authenticating.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Generation returns the registry's change counter. Connections cache
// resolved view attachments keyed by this; any register, grant, or revoke
// bumps it and forces re-checks.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Attach authorizes caller to attach target tenant's view with the given
// rights: the caller's cspace must hold a live capability for the target's
// VAS object and for every one of its segment objects, each allowing want.
// This is the §4.2 check run on every segment attach — an address outside
// the caller's capability set fails here, before any store lookup, so
// cross-tenant access is a typed denial rather than a miss. The error
// wraps core.ErrDenied.
func (r *Registry) Attach(caller *Tenant, target string, want caps.Right) error {
	r.mu.RLock()
	to := r.tenants[target]
	r.mu.RUnlock()
	deny := func() error {
		r.sink.TenantDenied(caller.index)
		return fmt.Errorf("%w: tenant %q holds no capability for tenant %q's view (rights %b)",
			core.ErrDenied, caller.id, target, want)
	}
	if to == nil {
		// An unregistered target view is indistinguishable from one the
		// caller has no capability for.
		return deny()
	}
	find := func(kind caps.Type, objID uint64) bool {
		_, ok := caller.cspace.Find(func(c *caps.Capability) bool {
			return c.Type == kind && c.ObjID == objID && c.Rights.Allows(want)
		})
		return ok
	}
	if !find(caps.TypeVAS, to.viewID) {
		return deny()
	}
	for _, segID := range to.segIDs {
		if !find(caps.TypeSegment, segID) {
			return deny()
		}
	}
	return nil
}

// Grant mints a subset of the owner's view capabilities into another
// tenant's cspace — the Barrelfish way of sharing a view (§4.2). The mint
// sources are the owner's own capabilities, so the kernel enforces that the
// owner holds grant right and that rights is a subset; the minted children
// hang off the owner's capabilities and die with Revoke.
func (r *Registry) Grant(owner, to string, rights caps.Right) error {
	r.mu.RLock()
	from, dst := r.tenants[owner], r.tenants[to]
	r.mu.RUnlock()
	if from == nil || dst == nil {
		return fmt.Errorf("%w: tenant: unknown tenant in grant %q -> %q", core.ErrNotFound, owner, to)
	}
	for _, slot := range from.ownSlots {
		if _, err := r.kernel.Mint(from.cspace, slot, dst.cspace, rights); err != nil {
			return err
		}
	}
	r.gen.Add(1)
	return nil
}

// Revoke transitively invalidates every capability minted from the owner's
// view capabilities — all cross-tenant grants on its view, including
// re-grants — and bumps the generation so cached attachments re-check.
func (r *Registry) Revoke(owner string) error {
	r.mu.RLock()
	from := r.tenants[owner]
	r.mu.RUnlock()
	if from == nil {
		return fmt.Errorf("%w: tenant: unknown tenant %q", core.ErrNotFound, owner)
	}
	for _, slot := range from.ownSlots {
		if err := r.kernel.Revoke(from.cspace, slot); err != nil {
			return err
		}
	}
	r.gen.Add(1)
	return nil
}

// Info is one tenant's listing for the admin surface.
type Info struct {
	ID     string `json:"id"`
	Quotas Quotas `json:"quotas"`
	Bytes  uint64 `json:"bytes"` // admitted live value bytes
	Keys   uint64 `json:"keys"`  // admitted live keys
}

// List returns every tenant in registration order.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.order))
	for _, id := range r.order {
		t := r.tenants[id]
		b, k := t.Usage()
		out = append(out, Info{ID: id, Quotas: t.quotas, Bytes: b, Keys: k})
	}
	return out
}

// IDs returns every tenant id in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// DemoID and DemoSecret name the i'th tenant of a demo registry — the
// convention the server flags, the load generator, and the chaos runner
// share ("t0"/"s0", "t1"/"s1", ...).
func DemoID(i int) string     { return fmt.Sprintf("t%d", i) }
func DemoSecret(i int) string { return fmt.Sprintf("s%d", i) }

// NewDemo builds a registry with n demo tenants sharing one quota config —
// what `spacejmp-server -tenants n` and the chaos runner boot.
func NewDemo(n int, cfg Config, q Quotas) (*Registry, error) {
	r := New(cfg)
	for i := 0; i < n; i++ {
		if _, err := r.Register(DemoID(i), DemoSecret(i), q); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// String renders a terse tenant list for logs.
func (r *Registry) String() string {
	return "tenants[" + strings.Join(r.IDs(), " ") + "]"
}
