package safety

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR form produced by Program.String. The grammar
// is line-oriented:
//
//	func name(%a, %b) {
//	entry:
//	  %p = malloc
//	  switch 1
//	  %x = vcast %p, 2
//	  store %p, %x
//	  condbr %c, then, else
//	}
//
// Comments start with ';' and run to end of line.
func Parse(src string) (*Program, error) {
	p := &Program{Funcs: map[string]*Func{}, Entry: "main"}
	var curFn *Func
	var curBlk *Block
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("safety: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if curFn != nil {
				return nil, fail("nested func")
			}
			rest := strings.TrimPrefix(line, "func ")
			open := strings.IndexByte(rest, '(')
			closeP := strings.IndexByte(rest, ')')
			if open < 0 || closeP < open || !strings.HasSuffix(rest, "{") {
				return nil, fail("malformed func header %q", line)
			}
			name := strings.TrimSpace(rest[:open])
			var params []string
			for _, prm := range strings.Split(rest[open+1:closeP], ",") {
				if prm = strings.TrimSpace(prm); prm != "" {
					params = append(params, prm)
				}
			}
			curFn = &Func{Name: name, Params: params}
		case line == "}":
			if curFn == nil {
				return nil, fail("stray }")
			}
			p.Funcs[curFn.Name] = curFn
			curFn, curBlk = nil, nil
		case strings.HasSuffix(line, ":"):
			if curFn == nil {
				return nil, fail("label outside func")
			}
			curBlk = &Block{Name: strings.TrimSuffix(line, ":")}
			curFn.Blocks = append(curFn.Blocks, curBlk)
		default:
			if curBlk == nil {
				return nil, fail("instruction outside block")
			}
			ins, err := parseInstr(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			curBlk.Instrs = append(curBlk.Instrs, ins)
		}
	}
	if curFn != nil {
		return nil, fmt.Errorf("safety: unterminated func %s", curFn.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse for tests and fixtures; it panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInstr(line string) (*Instr, error) {
	ins := &Instr{VAS: NoVAS}
	rest := line
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("value without assignment: %q", line)
		}
		ins.Dst = strings.TrimSpace(line[:eq])
		rest = strings.TrimSpace(line[eq+1:])
	}
	op, operands, _ := strings.Cut(rest, " ")
	operands = strings.TrimSpace(operands)
	args := splitOperands(operands)
	switch op {
	case "switch":
		ins.Op = OpSwitch
		if len(args) != 1 {
			return nil, fmt.Errorf("switch wants 1 operand")
		}
		if v, err := strconv.Atoi(args[0]); err == nil {
			ins.VAS = v
		} else {
			ins.Args = args
		}
	case "vcast":
		ins.Op = OpVCast
		if len(args) != 2 {
			return nil, fmt.Errorf("vcast wants value, vas")
		}
		v, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, fmt.Errorf("vcast vas must be a constant: %q", args[1])
		}
		ins.Args = args[:1]
		ins.VAS = v
	case "alloca":
		ins.Op = OpAlloca
	case "global":
		ins.Op = OpGlobal
		if len(args) != 1 {
			return nil, fmt.Errorf("global wants a symbol")
		}
		ins.Global = args[0]
	case "malloc":
		ins.Op = OpMalloc
	case "copy":
		ins.Op = OpCopy
		ins.Args = args
	case "arith":
		ins.Op = OpArith
		ins.Args = args
	case "phi":
		ins.Op = OpPhi
		// [%a, blk], [%b, blk]
		for _, part := range strings.Split(operands, "]") {
			part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), ","))
			part = strings.TrimPrefix(part, "[")
			if part == "" {
				continue
			}
			val, blk, ok := strings.Cut(part, ",")
			if !ok {
				return nil, fmt.Errorf("malformed phi arm %q", part)
			}
			ins.Args = append(ins.Args, strings.TrimSpace(val))
			ins.Blocks = append(ins.Blocks, strings.TrimSpace(blk))
		}
		if len(ins.Args) == 0 {
			return nil, fmt.Errorf("phi with no arms")
		}
	case "load":
		ins.Op = OpLoad
		ins.Args = args
	case "store":
		ins.Op = OpStore
		if len(args) != 2 {
			return nil, fmt.Errorf("store wants pointer, value")
		}
		ins.Args = args
	case "call":
		ins.Op = OpCall
		open := strings.IndexByte(operands, '(')
		closeP := strings.LastIndexByte(operands, ')')
		if open < 0 || closeP < open {
			return nil, fmt.Errorf("malformed call %q", operands)
		}
		ins.Callee = strings.TrimSpace(operands[:open])
		for _, a := range strings.Split(operands[open+1:closeP], ",") {
			if a = strings.TrimSpace(a); a != "" {
				ins.Args = append(ins.Args, a)
			}
		}
	case "ret":
		ins.Op = OpRet
		ins.Args = args
	case "br":
		ins.Op = OpBr
		if len(args) != 1 {
			return nil, fmt.Errorf("br wants a target")
		}
		ins.Blocks = args
	case "condbr":
		ins.Op = OpCondBr
		if len(args) != 3 {
			return nil, fmt.Errorf("condbr wants cond, then, else")
		}
		ins.Args = args[:1]
		ins.Blocks = args[1:]
	case "const":
		ins.Op = OpConst
		if len(args) != 1 {
			return nil, fmt.Errorf("const wants a literal")
		}
		v, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return nil, err
		}
		ins.Const = v
	case "checkderef":
		ins.Op = OpCheckDeref
		ins.Args = args
	case "checkstore":
		ins.Op = OpCheckStore
		ins.Args = args
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
	return ins, nil
}

func splitOperands(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
