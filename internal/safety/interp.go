package safety

import (
	"errors"
	"fmt"
)

// The interpreter executes IR programs over a miniature multi-VAS memory
// model with tagged pointers: every pointer carries the address space it
// was created in (or the common region). Raw execution dereferences
// through the *currently active* VAS — exactly like hardware — so a
// wrong-VAS dereference silently reads that VAS's memory. The Oracle mode
// records such violations (the dynamic ground truth the static analysis is
// tested against), and the Checked mode traps at the check instructions
// inserted by Instrument.

// ErrCheckFailed is returned when an inserted runtime check traps.
var ErrCheckFailed = errors.New("safety: runtime check failed")

// Value is an interpreter value: an integer or a tagged pointer.
type Value struct {
	IsPtr  bool
	VAS    int  // provenance tag (pointer only)
	Common bool // pointer into the common region
	Addr   uint64
	Int    int64
}

func (v Value) String() string {
	if !v.IsPtr {
		return fmt.Sprintf("%d", v.Int)
	}
	if v.Common {
		return fmt.Sprintf("ptr(common,%#x)", v.Addr)
	}
	return fmt.Sprintf("ptr(v%d,%#x)", v.VAS, v.Addr)
}

// Violation records one dynamic safety violation observed by the oracle.
type Violation struct {
	Fn    string
	Block string
	Index int
	Kind  DiagKind
	Note  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s#%d: %s: %s", v.Fn, v.Block, v.Index, v.Kind, v.Note)
}

// Mode selects the interpreter's checking behaviour.
type Mode int

const (
	// ModeRaw executes like hardware: wrong-VAS dereferences silently
	// access the active VAS's memory.
	ModeRaw Mode = iota
	// ModeOracle executes like ModeRaw but records every violation of
	// the §3.3 rules.
	ModeOracle
	// ModeChecked additionally traps when an inserted checkderef or
	// checkstore fails.
	ModeChecked
)

// Interp executes a program.
type Interp struct {
	prog *Program
	mode Mode

	cur        int // active VAS
	common     map[uint64]Value
	vases      map[int]map[uint64]Value
	nextAddr   uint64
	violations []Violation
	steps      int

	// MaxSteps bounds execution (loops in random programs).
	MaxSteps int
}

// NewInterp creates an interpreter starting in VAS 0.
func NewInterp(p *Program, mode Mode) *Interp {
	return &Interp{
		prog: p, mode: mode,
		common: map[uint64]Value{}, vases: map[int]map[uint64]Value{0: {}},
		nextAddr: 0x1000, MaxSteps: 100000,
	}
}

// Violations returns the oracle's recorded violations.
func (ip *Interp) Violations() []Violation { return ip.violations }

// CurrentVAS returns the active address space after execution.
func (ip *Interp) CurrentVAS() int { return ip.cur }

func (ip *Interp) vasMem(id int) map[uint64]Value {
	m, ok := ip.vases[id]
	if !ok {
		m = map[uint64]Value{}
		ip.vases[id] = m
	}
	return m
}

// Run executes the entry function with integer-zero arguments and returns
// its result (zero Value for void returns).
func (ip *Interp) Run() (Value, error) {
	f := ip.prog.EntryFunc()
	if f == nil {
		return Value{}, fmt.Errorf("safety: no entry function")
	}
	env := map[string]Value{}
	for _, prm := range f.Params {
		env[prm] = Value{}
	}
	return ip.call(f, env)
}

func (ip *Interp) call(f *Func, env map[string]Value) (Value, error) {
	blk := f.Entry()
	prevBlock := ""
	for {
		var branched bool
		for idx, ins := range blk.Instrs {
			ip.steps++
			if ip.steps > ip.MaxSteps {
				return Value{}, fmt.Errorf("safety: step limit exceeded")
			}
			switch ins.Op {
			case OpSwitch:
				if ins.VAS != NoVAS {
					ip.cur = ins.VAS
				} else {
					ip.cur = int(env[ins.Args[0]].Int)
				}
			case OpVCast:
				v := env[ins.Args[0]]
				v.IsPtr = true
				v.Common = false
				v.VAS = ins.VAS
				env[ins.Dst] = v
			case OpAlloca, OpGlobal:
				addr := ip.alloc()
				env[ins.Dst] = Value{IsPtr: true, Common: true, Addr: addr}
			case OpMalloc:
				addr := ip.alloc()
				env[ins.Dst] = Value{IsPtr: true, VAS: ip.cur, Addr: addr}
			case OpCopy:
				env[ins.Dst] = env[ins.Args[0]]
			case OpArith:
				a, b := env[ins.Args[0]], env[ins.Args[1]]
				switch {
				case a.IsPtr:
					a.Addr += uint64(b.Int)
					env[ins.Dst] = a
				case b.IsPtr:
					b.Addr += uint64(a.Int)
					env[ins.Dst] = b
				default:
					env[ins.Dst] = Value{Int: a.Int + b.Int}
				}
			case OpPhi:
				picked := false
				for k, src := range ins.Blocks {
					if src == prevBlock {
						env[ins.Dst] = env[ins.Args[k]]
						picked = true
						break
					}
				}
				if !picked {
					return Value{}, fmt.Errorf("safety: phi in %s has no arm for pred %q", blk.Name, prevBlock)
				}
			case OpLoad:
				p := env[ins.Args[0]]
				ip.observeDeref(f.Name, blk.Name, idx, p)
				env[ins.Dst] = ip.loadFrom(p)
			case OpStore:
				p := env[ins.Args[0]]
				v := env[ins.Args[1]]
				ip.observeDeref(f.Name, blk.Name, idx, p)
				ip.observeStore(f.Name, blk.Name, idx, p, v)
				ip.storeTo(p, v)
			case OpCall:
				callee := ip.prog.Funcs[ins.Callee]
				cenv := map[string]Value{}
				for k, prm := range callee.Params {
					if k < len(ins.Args) {
						cenv[prm] = env[ins.Args[k]]
					}
				}
				ret, err := ip.call(callee, cenv)
				if err != nil {
					return Value{}, err
				}
				if ins.Dst != "" {
					env[ins.Dst] = ret
				}
			case OpRet:
				if len(ins.Args) > 0 {
					return env[ins.Args[0]], nil
				}
				return Value{}, nil
			case OpBr:
				prevBlock, blk, branched = blk.Name, f.Block(ins.Blocks[0]), true
			case OpCondBr:
				tgt := ins.Blocks[1]
				if env[ins.Args[0]].Int != 0 {
					tgt = ins.Blocks[0]
				}
				prevBlock, blk, branched = blk.Name, f.Block(tgt), true
			case OpConst:
				env[ins.Dst] = Value{Int: ins.Const}
			case OpCheckDeref:
				p := env[ins.Args[0]]
				if ip.mode == ModeChecked && derefViolates(p, ip.cur) {
					return Value{}, fmt.Errorf("%w: deref of %v while VAS %d active", ErrCheckFailed, p, ip.cur)
				}
			case OpCheckStore:
				p, v := env[ins.Args[0]], env[ins.Args[1]]
				if ip.mode == ModeChecked && checkStoreTraps(p, v, ip.cur) {
					return Value{}, fmt.Errorf("%w: store of %v to %v while VAS %d active", ErrCheckFailed, v, p, ip.cur)
				}
			}
			if branched {
				break
			}
		}
		if !branched {
			return Value{}, fmt.Errorf("safety: block %s fell through", blk.Name)
		}
	}
}

func (ip *Interp) alloc() uint64 {
	a := ip.nextAddr
	ip.nextAddr += 16
	return a
}

// loadFrom reads through a pointer with hardware semantics: the address is
// resolved in the common region if the pointer targets it, otherwise in
// the *currently active* VAS regardless of the pointer's provenance.
func (ip *Interp) loadFrom(p Value) Value {
	if !p.IsPtr {
		return Value{} // wild integer deref reads zero
	}
	if p.Common {
		return ip.common[p.Addr]
	}
	return ip.vasMem(ip.cur)[p.Addr]
}

func (ip *Interp) storeTo(p, v Value) {
	if !p.IsPtr {
		return
	}
	if p.Common {
		ip.common[p.Addr] = v
		return
	}
	ip.vasMem(ip.cur)[p.Addr] = v
}

// derefViolates implements the dynamic deref rule: a non-common pointer
// may only be dereferenced while its VAS is active (§3.3).
func derefViolates(p Value, cur int) bool {
	return p.IsPtr && !p.Common && p.VAS != cur
}

// storeRuleViolated is the oracle's provenance-based store rule (§3.3):
// a pointer may be stored to the common region, or within the region of
// its own VAS; storing a common-region pointer outside the common region,
// or a pointer into another VAS's region, is a violation. (Whether the
// *target* is dereferenced in the right VAS is the deref rule, observed
// separately at the same instruction.)
func storeRuleViolated(p, v Value) bool {
	if !v.IsPtr || !p.IsPtr || p.Common {
		return false
	}
	return v.Common || v.VAS != p.VAS
}

// checkStoreTraps is the inserted runtime check exactly as §4.3 words it:
// "either p points to the common region or p and v both point to the
// current VAS".
func checkStoreTraps(p, v Value, cur int) bool {
	if !v.IsPtr || !p.IsPtr {
		return false
	}
	if p.Common {
		return false
	}
	return p.VAS != cur || v.Common || v.VAS != cur
}

func (ip *Interp) observeDeref(fn, blk string, idx int, p Value) {
	if ip.mode == ModeRaw {
		return
	}
	if derefViolates(p, ip.cur) {
		ip.violations = append(ip.violations, Violation{fn, blk, idx, DiagDeref,
			fmt.Sprintf("deref of %v while VAS %d active", p, ip.cur)})
	}
}

func (ip *Interp) observeStore(fn, blk string, idx int, p, v Value) {
	if ip.mode == ModeRaw {
		return
	}
	if storeRuleViolated(p, v) {
		ip.violations = append(ip.violations, Violation{fn, blk, idx, DiagStore,
			fmt.Sprintf("store of %v to %v while VAS %d active", v, p, ip.cur)})
	}
}
