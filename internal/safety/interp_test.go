package safety

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInterpBasicExecution(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  %c = const 42
  store %p, %c
  %x = load %p
  ret %x
}`)
	v, err := NewInterp(p, ModeRaw).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 42 {
		t.Errorf("result = %v", v)
	}
}

func TestInterpControlFlowAndPhi(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  %c = const 1
  condbr %c, a, b
a:
  %x = const 10
  br join
b:
  %y = const 20
  br join
join:
  %r = phi [%x, a], [%y, b]
  ret %r
}`)
	v, err := NewInterp(p, ModeRaw).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 10 {
		t.Errorf("took wrong branch: %v", v)
	}
}

func TestInterpCallAndReturn(t *testing.T) {
	p := MustParse(`
func double(%n) {
entry:
  %r = arith %n, %n
  ret %r
}
func main() {
entry:
  %c = const 21
  %r = call double(%c)
  ret %r
}`)
	v, err := NewInterp(p, ModeRaw).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 42 {
		t.Errorf("call result = %v", v)
	}
}

func TestInterpVASIsolation(t *testing.T) {
	// The same address in two VASes holds different data; a wrong-VAS
	// deref silently reads the active VAS's memory (hardware semantics).
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  %c1 = const 111
  store %p, %c1
  switch 2
  %x = load %p
  ret %x
}`)
	ip := NewInterp(p, ModeOracle)
	v, err := ip.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 0 {
		t.Errorf("cross-VAS load returned %v, want VAS 2's (empty) memory", v)
	}
	viol := ip.Violations()
	if len(viol) != 1 || viol[0].Kind != DiagDeref {
		t.Errorf("oracle violations = %v", viol)
	}
}

func TestInterpLoopWithStepLimit(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  br entry
}`)
	ip := NewInterp(p, ModeRaw)
	ip.MaxSteps = 100
	if _, err := ip.Run(); err == nil {
		t.Error("infinite loop not bounded")
	}
}

func TestInstrumentInsertsOnlyWhereNeeded(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  %x = load %p
  switch 2
  %y = load %p
  ret
}`)
	inst, diags := Instrument(p)
	if len(diags) != 1 {
		t.Fatalf("diags = %v", diags)
	}
	text := inst.String()
	if strings.Count(text, "checkderef") != 1 {
		t.Errorf("want exactly one checkderef:\n%s", text)
	}
	// The check must precede the second load, not the first.
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, "checkderef") {
			if !strings.Contains(lines[i+1], "%y = load") {
				t.Errorf("check not immediately before the unsafe load:\n%s", text)
			}
		}
	}
	// The instrumented program still validates and parses.
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("instrumented program does not reparse: %v", err)
	}
}

func TestCheckedModeTrapsOnViolation(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %x = load %p
  ret
}`)
	inst, _ := Instrument(p)
	_, err := NewInterp(inst, ModeChecked).Run()
	if !errors.Is(err, ErrCheckFailed) {
		t.Errorf("checked run: %v", err)
	}
}

func TestCheckedModeAllowsVCast(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %q = vcast %p, 2
  %x = load %q
  ret
}`)
	inst, _ := Instrument(p)
	if _, err := NewInterp(inst, ModeChecked).Run(); err != nil {
		t.Errorf("vcast-corrected program trapped: %v", err)
	}
}

func TestCheckedModeStoreTrap(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %q = malloc
  store %q, %p
  ret
}`)
	inst, _ := Instrument(p)
	_, err := NewInterp(inst, ModeChecked).Run()
	if !errors.Is(err, ErrCheckFailed) {
		t.Errorf("illegal pointer store not trapped: %v", err)
	}
}

// --- Random program generation for the property tests. ---

type progGen struct {
	rng   *rand.Rand
	vals  []string
	n     int
	lines []string
}

func (g *progGen) fresh() string {
	g.n++
	v := fmt.Sprintf("%%v%d", g.n)
	g.vals = append(g.vals, v)
	return v
}

func (g *progGen) pick() string { return g.vals[g.rng.Intn(len(g.vals))] }

func (g *progGen) emit(format string, args ...any) {
	g.lines = append(g.lines, "  "+fmt.Sprintf(format, args...))
}

func (g *progGen) step() {
	switch g.rng.Intn(10) {
	case 0:
		g.emit("switch %d", g.rng.Intn(3))
	case 1:
		g.emit("%s = malloc", g.fresh())
	case 2:
		g.emit("%s = alloca", g.fresh())
	case 3:
		g.emit("%s = const %d", g.fresh(), g.rng.Intn(100))
	case 4:
		g.emit("%s = copy %s", g.fresh(), g.pick())
	case 5:
		g.emit("%s = vcast %s, %d", g.fresh(), g.pick(), g.rng.Intn(3))
	case 6:
		g.emit("%s = load %s", g.fresh(), g.pick())
	case 7, 8:
		g.emit("store %s, %s", g.pick(), g.pick())
	case 9:
		g.emit("%s = arith %s, %s", g.fresh(), g.pick(), g.pick())
	}
}

// randProgram builds a random straight-line-plus-one-diamond program.
func randProgram(rng *rand.Rand) *Program {
	g := &progGen{rng: rng}
	g.lines = append(g.lines, "func main() {", "entry:")
	g.emit("%s = malloc", g.fresh())
	for i := 0; i < 10+rng.Intn(15); i++ {
		g.step()
	}
	cond := g.fresh()
	g.emit("%s = const %d", cond, rng.Intn(2))
	g.lines = append(g.lines, fmt.Sprintf("  condbr %s, left, right", cond), "left:")
	for i := 0; i < 5; i++ {
		g.step()
	}
	g.lines = append(g.lines, "  br join", "right:")
	for i := 0; i < 5; i++ {
		g.step()
	}
	g.lines = append(g.lines, "  br join", "join:")
	for i := 0; i < 5+rng.Intn(10); i++ {
		g.step()
	}
	g.lines = append(g.lines, "  ret", "}")
	return MustParse(strings.Join(g.lines, "\n"))
}

// Soundness: every violation the dynamic oracle observes happens at an
// instruction the static analysis flagged (with the same kind).
func TestPropertyAnalysisSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		a := Analyze(p)
		flagged := map[string]bool{}
		for _, d := range a.Diagnostics() {
			flagged[fmt.Sprintf("%s/%s/%d/%s", d.Fn, d.Block, d.Index, d.Kind)] = true
		}
		ip := NewInterp(p, ModeOracle)
		if _, err := ip.Run(); err != nil {
			return true // step limit etc.; nothing to verify
		}
		// Soundness is guaranteed for the *first* violation only: once an
		// unchecked violation has executed, memory may hold pointers whose
		// provenance the static abstraction no longer covers (a checked
		// program would have trapped before reaching that state).
		if vs := ip.Violations(); len(vs) > 0 {
			v := vs[0]
			if !flagged[fmt.Sprintf("%s/%s/%d/%s", v.Fn, v.Block, v.Index, v.Kind)] {
				t.Logf("seed %d: unflagged first violation %v in\n%s", seed, v, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Exactness of instrumentation: the checked run traps if and only if the
// oracle observes at least one violation on the same input.
func TestPropertyChecksTrapExactlyOnViolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		oracle := NewInterp(p, ModeOracle)
		if _, err := oracle.Run(); err != nil {
			return true
		}
		inst, _ := Instrument(p)
		_, err := NewInterp(inst, ModeChecked).Run()
		trapped := errors.Is(err, ErrCheckFailed)
		violated := len(oracle.Violations()) > 0
		if trapped != violated {
			t.Logf("seed %d: trapped=%v violated=%v\n%s", seed, trapped, violated, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Safe programs stay uninstrumented-equivalent: a program with no
// diagnostics runs identically checked and raw.
func TestPropertyNoDiagsNoChecks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		a := Analyze(p)
		if len(a.Diagnostics()) > 0 {
			return true
		}
		inst, _ := Instrument(p)
		return !strings.Contains(inst.String(), "check")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
