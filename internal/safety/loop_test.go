package safety

import (
	"errors"
	"testing"
)

// Loops exercise the fixpoint of the dataflow: a switch inside a loop body
// makes VASin at the loop head the union of the entry VAS and the switched
// VAS.

func TestLoopAccumulatesVASin(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  %n = const 3
  br head
head:
  %x = load %p
  switch 2
  %c = const 0
  condbr %c, head, exit
exit:
  ret
}`)
	a := Analyze(p)
	// At the loop head the active VAS may be 1 (first iteration) or 2
	// (back edge), so the load must be flagged.
	in := a.InAt("main", "head", 0)
	if !in.Has(1) || !in.Has(2) {
		t.Errorf("VASin at loop head = %v, want {v1,v2}", in)
	}
	d := a.Diagnostics()
	if len(d) != 1 || d[0].Block != "head" {
		t.Errorf("diags = %v", d)
	}
}

func TestLoopSafeWhenVASStable(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  br head
head:
  %x = load %p
  %c = const 0
  condbr %c, head, exit
exit:
  %y = load %p
  ret
}`)
	a := Analyze(p)
	if d := a.Diagnostics(); len(d) != 0 {
		t.Errorf("stable-VAS loop flagged: %v", d)
	}
}

func TestLoopCarriedPointerPhi(t *testing.T) {
	// A pointer rotated through a phi across iterations where the VAS
	// also rotates: the analysis must catch the mismatch.
	p := MustParse(`
func main() {
entry:
  switch 1
  %p0 = malloc
  br head
head:
  %p = phi [%p0, entry], [%q, body]
  %x = load %p
  br body
body:
  switch 2
  %q = malloc
  %c = const 0
  condbr %c, head, exit
exit:
  ret
}`)
	a := Analyze(p)
	found := false
	for _, d := range a.Diagnostics() {
		if d.Block == "head" && d.Kind == DiagDeref {
			found = true
		}
	}
	if !found {
		t.Errorf("loop-carried cross-VAS pointer not flagged: %v", a.Diagnostics())
	}
	// The dynamic run (two iterations) violates on the second trip.
	inst, _ := Instrument(p)
	if _, err := NewInterp(inst, ModeChecked).Run(); err == nil {
		// The condbr constant 0 exits after one iteration... take the
		// loop body once but exit before re-entering head; in that case
		// no violation occurs and not trapping is correct. Force the
		// second iteration instead:
		p2 := MustParse(`
func main() {
entry:
  switch 1
  %p0 = malloc
  %one = const 1
  %zero = const 0
  br head
head:
  %it = phi [%zero, entry], [%one, body]
  %x = load %p0
  condbr %it, exit, body
body:
  switch 2
  br head
exit:
  ret
}`)
		inst2, _ := Instrument(p2)
		if _, err := NewInterp(inst2, ModeChecked).Run(); !errors.Is(err, ErrCheckFailed) {
			t.Errorf("second-iteration violation not trapped: %v", err)
		}
	}
}
